// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5), one per experiment, plus ablations for the
// design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package eventnet

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/exp"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
	"eventnet/internal/optimize"
	"eventnet/internal/sim"
	"eventnet/internal/trace"
)

// compileApps is the app set for the full-pipeline compile benchmarks:
// the five paper applications (the in-text 0.013-0.023 s column) plus
// bandwidth-cap-80, the stateful-scale workload the incremental pipeline
// is measured on (docs/BENCHMARKS.md records the trajectory).
func compileApps() []apps.App {
	return append(apps.All(), apps.BandwidthCap(80))
}

// BenchmarkTableCompileApps times the full compilation pipeline on the
// default backend (incremental FDD through the sharded ETS engine).
func BenchmarkTableCompileApps(b *testing.B) {
	for _, a := range compileApps() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(a.Prog, a.Topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableCompileAppsDNF times the same pipeline on the reference
// DNF/strand backend — the from-scratch baseline the incremental FDD
// path is measured against (CHANGES.md records the comparison).
func BenchmarkTableCompileAppsDNF(b *testing.B) {
	old := nkc.DefaultBackend
	nkc.DefaultBackend = nkc.BackendDNF
	defer func() { nkc.DefaultBackend = old }()
	for _, a := range compileApps() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(a.Prog, a.Topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableCompileScale times the full pipeline on the large sweeps
// the incremental engine opened (bandwidth-cap-200 needs 201 events —
// past the old 64-event tag word — and ids-fattree-4 compiles multi-hop
// routes over a 20-switch data-center fabric).
func BenchmarkTableCompileScale(b *testing.B) {
	for _, a := range apps.Scale() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(a.Prog, a.Topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableOptimizeApps times the Section 5.3 trie heuristic on the
// applications' configuration sets.
func BenchmarkTableOptimizeApps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = exp.TableOptimize()
	}
}

// BenchmarkFig10FirewallDelaySweep runs a reduced Figure 10 sweep
// (0-1000 ms in 500 ms steps, 2 runs per point, both planes).
func BenchmarkFig10FirewallDelaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig10(1000, 500, 2)
	}
}

// BenchmarkFig11Firewall regenerates the firewall timelines.
func BenchmarkFig11Firewall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig11()
	}
}

// BenchmarkFig12LearningSwitch regenerates the flood-count comparison.
func BenchmarkFig12LearningSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig12()
	}
}

// BenchmarkFig13Authentication regenerates the authentication timelines.
func BenchmarkFig13Authentication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig13()
	}
}

// BenchmarkFig14BandwidthCap regenerates the cap comparison (n=10).
func BenchmarkFig14BandwidthCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig14()
	}
}

// BenchmarkFig15IDS regenerates the IDS timelines.
func BenchmarkFig15IDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig15()
	}
}

// BenchmarkFig16aRingBandwidth regenerates the bandwidth-vs-diameter
// series for diameters 2-4.
func BenchmarkFig16aRingBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig16a([]int{2, 3, 4})
	}
}

// BenchmarkFig16bRingConvergence regenerates the discovery-time series.
func BenchmarkFig16bRingConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig16b([]int{3, 4, 5})
	}
}

// BenchmarkFig17HeuristicRandom regenerates the random-configuration
// optimizer measurement (5 trials of 64 configs).
func BenchmarkFig17HeuristicRandom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = exp.Fig17(5, int64(i))
	}
}

// BenchmarkAblationOracleCost measures the Definition 6 oracle on
// runtime-generated traces of growing length (DESIGN.md: oracle-first
// testing).
func BenchmarkAblationOracleCost(b *testing.B) {
	a := apps.Firewall()
	sys, err := Compile(a.Prog, a.Topo)
	if err != nil {
		b.Fatal(err)
	}
	hosts := a.Topo.HostLocs()
	for _, pings := range []int{2, 8, 32} {
		m := sys.NewMachine(1, false)
		for i := 0; i < pings; i++ {
			m.Inject("H1", netkat.Packet{apps.FieldDst: apps.H(4)})
			m.Inject("H4", netkat.Packet{apps.FieldDst: apps.H(1)})
			if err := m.RunToQuiescence(); err != nil {
				b.Fatal(err)
			}
		}
		nt := m.NetTrace()
		b.Run(benchName("pings", pings), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := trace.CheckNES(nt, sys.NES, hosts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGreedyVsOptimal compares the trie heuristic against
// brute force on 4-config instances (DESIGN.md ablation).
func BenchmarkAblationGreedyVsOptimal(b *testing.B) {
	mk := func(seed int) []optimize.RuleSet {
		configs := make([]optimize.RuleSet, 4)
		for i := range configs {
			configs[i] = optimize.RuleSet{}
			for id := 0; id < 10; id++ {
				if (seed+i*7+id*3)%3 == 0 {
					configs[i][id] = true
				}
			}
		}
		return configs
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimize.Greedy(mk(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimize.Optimal(mk(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRuntimeStep measures the Figure 7 machine's per-step cost on a
// busy firewall run.
func BenchmarkRuntimeStep(b *testing.B) {
	a := apps.Firewall()
	sys, err := Compile(a.Prog, a.Topo)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := sys.NewMachine(int64(i), false)
		for j := 0; j < 8; j++ {
			m.Inject("H1", netkat.Packet{apps.FieldDst: apps.H(4)})
		}
		b.StartTimer()
		if err := m.RunToQuiescence(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures the simulator's event-processing rate
// on a saturated ring.
func BenchmarkSimThroughput(b *testing.B) {
	a := apps.Ring(4)
	sys, err := Compile(a.Prog, a.Topo)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sys.NewSim(sim.PlaneKindTagged, sim.DefaultParams(), int64(i))
		rate := s.Params.LinkBandwidth / float64(s.Params.PayloadBytes)
		sim.StartBulk(s, "H1", "H2", 0, 0.5, rate, 0)
		s.Run(1)
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "-0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%10]}, buf...)
		n /= 10
	}
	return prefix + "-" + string(buf)
}
