package eventnet

import (
	"fmt"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/netkat"
	"eventnet/internal/sim"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// ExampleCompile is the README quickstart: compile the paper's stateful
// firewall to an event-driven transition system and its NES.
func ExampleCompile() {
	app := Firewall()
	sys, err := Compile(app.Prog, app.Topo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("states: %d\n", len(sys.ETS.Vertices))
	fmt.Printf("events: %d\n", len(sys.NES.Events))
	fmt.Printf("has rules: %v\n", sys.TotalRules() > 0)
	// Output:
	// states: 2
	// events: 1
	// has rules: true
}

// ExampleMachine_Inject drives the compiled firewall on the Figure 7
// abstract machine and checks the recorded trace against the paper's
// event-driven consistency oracle (Definition 6).
func ExampleMachine_Inject() {
	app := Firewall()
	sys, err := Compile(app.Prog, app.Topo)
	if err != nil {
		panic(err)
	}
	m := sys.NewMachine(1, false)
	if err := m.Inject("H1", netkat.Packet{apps.FieldDst: apps.H(4)}); err != nil {
		panic(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		panic(err)
	}
	fmt.Println("trace consistent:", sys.CheckTrace(m.NetTrace()) == nil)
	// Output:
	// trace consistent: true
}

// TestCompileAllApps: the public pipeline compiles every paper
// application and reports sensible totals.
func TestCompileAllApps(t *testing.T) {
	for _, a := range apps.All() {
		sys, err := Compile(a.Prog, a.Topo)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if sys.TotalRules() == 0 {
			t.Errorf("%s: no rules", a.Name)
		}
		if len(sys.NES.Events) != len(sys.ETS.Events) {
			t.Errorf("%s: event mismatch", a.Name)
		}
	}
}

// TestFacadeEndToEnd drives the README quickstart through the facade.
func TestFacadeEndToEnd(t *testing.T) {
	app := Firewall()
	sys, err := Compile(app.Prog, app.Topo)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.NewMachine(1, false)
	if err := m.Inject("H1", netkat.Packet{apps.FieldDst: apps.H(4)}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrace(m.NetTrace()); err != nil {
		t.Fatalf("oracle: %v", err)
	}

	s := sys.NewSim(sim.PlaneKindTagged, sim.DefaultParams(), 1)
	sim.EnableEcho(s, "H4")
	st := sim.StartPings(s, "H1", "H4", 0, 0.1, 3, 0)
	s.Run(2)
	if st.Succeeded() != 3 {
		t.Fatalf("sim pings: %d/3", st.Succeeded())
	}
}

// TestCompileRejectsBadPrograms: the facade surfaces pipeline errors.
func TestCompileRejectsBadPrograms(t *testing.T) {
	tp := topo.Firewall()
	// A cyclic program is rejected by the loop-free builder.
	toggle := stateful.UnionC(
		stateful.SeqC(
			stateful.CPred{P: stateful.PState{Index: 0, Value: 0}},
			stateful.CLinkState{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}, Sets: []stateful.StateSet{{Index: 0, Value: 1}}},
		),
		stateful.SeqC(
			stateful.CPred{P: stateful.PState{Index: 0, Value: 1}},
			stateful.CLinkState{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}, Sets: []stateful.StateSet{{Index: 0, Value: 0}}},
		),
	)
	if _, err := Compile(Program{Cmd: toggle, Init: stateful.State{0}}, tp); err == nil {
		t.Error("cyclic program accepted")
	}
	// Star over links is outside the compiled fragment.
	loopy := stateful.CStar{P: stateful.CLink{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}}
	if _, err := Compile(Program{Cmd: loopy, Init: stateful.State{0}}, tp); err == nil {
		t.Error("star over links accepted")
	}
}
