// Command snkc is the Stateful NetKAT compiler driver: it takes a program
// (a source file, or one of the built-in paper applications), runs the
// full pipeline — projection, event extraction, ETS checks, NES
// construction, flow-table generation — and prints the artifacts.
//
// Usage:
//
//	snkc -app firewall
//	snkc -src prog.snk -init 0,0 -topo star
//	snkc -app ids -optimize
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/flowtable"
	"eventnet/internal/nkc"
	"eventnet/internal/optimize"
	"eventnet/internal/stateful"
	"eventnet/internal/syntax"
	"eventnet/internal/topo"
)

func main() {
	appName := flag.String("app", "", "built-in application: firewall, learning-switch, authentication, bandwidth-cap, ids, ring, walled-garden, distributed-firewall, ids-fattree")
	backend := flag.String("backend", "fdd", "table-generation backend: fdd (decision diagrams, default) or dnf (strand/DNF reference)")
	srcPath := flag.String("src", "", "Stateful NetKAT source file")
	topoName := flag.String("topo", "firewall", "topology for -src: firewall, learning-switch, star, ring")
	initVec := flag.String("init", "0", "initial state vector for -src, e.g. 0,0")
	ringD := flag.Int("diameter", 3, "ring diameter (for ring app/topology)")
	capN := flag.Int("cap", 10, "bandwidth cap n")
	arity := flag.Int("arity", 4, "fat-tree arity k for ids-fattree (k=10 is the 125-switch 10x workload)")
	doOpt := flag.Bool("optimize", false, "run the Section 5.3 rule-sharing heuristic")
	showTables := flag.Bool("tables", false, "print per-configuration flow tables")
	unroll := flag.Int("unroll", 4, "unrolling bound for programs with state-graph loops")
	flag.Parse()

	switch *backend {
	case "fdd":
		nkc.DefaultBackend = nkc.BackendFDD
	case "dnf":
		nkc.DefaultBackend = nkc.BackendDNF
	default:
		fmt.Fprintf(os.Stderr, "snkc: unknown backend %q (want fdd or dnf)\n", *backend)
		os.Exit(1)
	}

	prog, tp, name, err := loadProgram(*appName, *srcPath, *topoName, *initVec, *ringD, *capN, *arity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snkc:", err)
		os.Exit(1)
	}

	if rep, err := ets.AnalyzeLoops(prog); err == nil && rep.HasLoops {
		fmt.Printf("note: the state graph has loops (locality %v); compiling a %d-round unrolling\n", rep.LocalityOK, *unroll)
		e, err := ets.BuildUnrolled(prog, tp, *unroll)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snkc: ETS:", err)
			os.Exit(1)
		}
		report(e, name, *doOpt, *showTables)
		return
	}
	e, err := ets.Build(prog, tp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snkc: ETS:", err)
		os.Exit(1)
	}
	report(e, name, *doOpt, *showTables)
}

// report prints the compiled artifacts.
func report(e *ets.ETS, name string, doOpt, showTables bool) {
	n, err := e.ToNES()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snkc: NES:", err)
		os.Exit(1)
	}
	ld, err := n.LocallyDetermined()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snkc: locality:", err)
		os.Exit(1)
	}
	fmt.Printf("program %s\n\n", name)
	fmt.Print(e)
	fmt.Println()
	fmt.Print(n)
	fmt.Printf("locally determined: %v\n", ld)

	total := 0
	for _, v := range e.Vertices {
		total += v.Tables.TotalRules()
	}
	fmt.Printf("flow rules (all configurations): %d\n", total)

	if showTables {
		for _, v := range e.Vertices {
			fmt.Printf("\nconfiguration %v:\n%v", v.State, v.Tables)
		}
	}

	if doOpt {
		var tabs []flowtable.Tables
		for _, v := range e.Vertices {
			tabs = append(tabs, v.Tables)
		}
		configs, _ := optimize.FromTables(tabs)
		g, err := optimize.Greedy(configs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snkc: optimize:", err)
			os.Exit(1)
		}
		fmt.Printf("optimized rules (trie heuristic): %d -> %d (%.1f%% saved)\n",
			optimize.Naive(configs), g.TotalRules(),
			100*float64(optimize.Naive(configs)-g.TotalRules())/float64(optimize.Naive(configs)))
	}
}

func loadProgram(appName, srcPath, topoName, initVec string, ringD, capN, arity int) (stateful.Program, *topo.Topology, string, error) {
	if appName != "" {
		var a apps.App
		switch appName {
		case "firewall":
			a = apps.Firewall()
		case "learning-switch":
			a = apps.LearningSwitch()
		case "authentication":
			a = apps.Authentication()
		case "bandwidth-cap":
			a = apps.BandwidthCap(capN)
		case "ids":
			a = apps.IDS()
		case "ring":
			a = apps.Ring(ringD)
		case "walled-garden":
			a = apps.WalledGarden()
		case "distributed-firewall":
			a = apps.DistributedFirewall()
		case "ids-fattree":
			a = apps.IDSFatTree(arity)
		default:
			return stateful.Program{}, nil, "", fmt.Errorf("unknown app %q", appName)
		}
		return a.Prog, a.Topo, a.Name, nil
	}
	if srcPath == "" {
		return stateful.Program{}, nil, "", fmt.Errorf("one of -app or -src is required")
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return stateful.Program{}, nil, "", err
	}
	var init []int
	for _, part := range strings.Split(initVec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return stateful.Program{}, nil, "", fmt.Errorf("bad -init: %v", err)
		}
		init = append(init, v)
	}
	prog, err := syntax.ParseProgram(string(src), init)
	if err != nil {
		return stateful.Program{}, nil, "", err
	}
	var tp *topo.Topology
	switch topoName {
	case "firewall":
		tp = topo.Firewall()
	case "learning-switch":
		tp = topo.LearningSwitch()
	case "star":
		tp = topo.Star()
	case "ring":
		tp = topo.Ring(ringD)
	default:
		return stateful.Program{}, nil, "", fmt.Errorf("unknown topology %q", topoName)
	}
	return prog, tp, srcPath, nil
}
