// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) and prints them in order. Use -quick for a
// reduced Figure 10 sweep and smaller ring diameters.
//
//	experiments           # full reproduction (a few minutes)
//	experiments -quick    # seconds
//	experiments -only fig14,fig17
package main

import (
	"flag"
	"fmt"
	"strings"

	"eventnet/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated subset: fig10..fig17, tables")
	flag.Parse()

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[strings.ToLower(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("tables") {
		fmt.Println(exp.TableCompile())
		fmt.Println(exp.TableOptimize())
	}
	if sel("fig10") {
		if *quick {
			fmt.Println(exp.Fig10(1000, 250, 3))
		} else {
			fmt.Println(exp.Fig10(5000, 100, 10))
		}
	}
	if sel("fig11") {
		fmt.Println(exp.Fig11())
	}
	if sel("fig12") {
		fmt.Println(exp.Fig12())
	}
	if sel("fig13") {
		fmt.Println(exp.Fig13())
	}
	if sel("fig14") {
		fmt.Println(exp.Fig14())
	}
	if sel("fig15") {
		fmt.Println(exp.Fig15())
	}
	if sel("fig16a") {
		ds := []int{2, 3, 4, 5, 6, 7, 8}
		if *quick {
			ds = []int{2, 4, 6}
		}
		fmt.Println(exp.Fig16a(ds))
	}
	if sel("fig16b") {
		ds := []int{3, 4, 5, 6, 7, 8}
		if *quick {
			ds = []int{3, 5, 7}
		}
		fmt.Println(exp.Fig16b(ds))
	}
	if sel("fig17") {
		trials := 20
		if *quick {
			trials = 5
		}
		fmt.Println(exp.Fig17(trials, 42))
	}
}
