// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) and prints them in order, plus the scale sweep
// opened by the incremental compilation pipeline and the dataplane
// throughput comparison (compiled indexed matchers vs linear scan). Use
// -quick for a reduced Figure 10 sweep, smaller ring diameters, and a
// shorter throughput stream, and -json for machine-readable output (one
// JSON object per line, suitable for tracking the benchmark trajectory
// across PRs — see docs/BENCHMARKS.md).
//
//	experiments                  # full reproduction (a few minutes)
//	experiments -quick           # seconds
//	experiments -only fig14,fig17
//	experiments -json -only scale
//	experiments -json -only throughput
//	experiments -json -only swap
//	experiments -json -only chaos   # chaos audit; exit 1 on any violation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"

	"eventnet/internal/exp"
)

// result is the machine-readable form of one experiment's output.
// RunSeq is a monotonic emission counter (ties rows of one invocation
// together and orders them); the GOMAXPROCS/NumCPU pair records the
// machine context a benchmark row was measured under.
type result struct {
	Kind       string     `json:"kind"` // "table" or "timeline"
	Name       string     `json:"name"`
	RunSeq     int64      `json:"run_seq"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Title      string     `json:"title"`
	Columns    []string   `json:"columns,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
	// Timelines flatten to rows of [series, time, flow, outcome].
}

var asJSON bool
var runSeq atomic.Int64

// emit prints a table or timeline either human-readably or as one JSON
// line.
func emit(name string, v any) {
	if !asJSON {
		fmt.Println(v)
		return
	}
	var r result
	switch t := v.(type) {
	case *exp.Table:
		r = result{Kind: "table", Name: name, Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	case *exp.Timeline:
		r = result{Kind: "timeline", Name: name, Title: t.Title, Columns: []string{"series", "time_s", "flow", "outcome"}}
		for _, series := range []struct {
			label string
			pts   []exp.TimelinePoint
		}{{"correct", t.Correct}, {"uncoordinated", t.Uncoord}} {
			for _, p := range series.pts {
				mark := "ok"
				if !p.OK {
					mark = "drop"
				}
				r.Rows = append(r.Rows, []string{series.label, fmt.Sprintf("%.2f", p.Time), p.Flow, mark})
			}
		}
	default:
		panic(fmt.Sprintf("experiments: unknown result type %T", v))
	}
	r.RunSeq = runSeq.Add(1)
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.NumCPU = runtime.NumCPU()
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated subset: fig10..fig17, tables, scale, scale-cores, compile, throughput, swap, chaos, trace")
	flag.BoolVar(&asJSON, "json", false, "emit one JSON object per experiment instead of text")
	flag.Parse()

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[strings.ToLower(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("tables") {
		emit("table-compile", exp.TableCompile())
		emit("table-optimize", exp.TableOptimize())
	}
	if sel("scale") {
		emit("scale", exp.TableCompileScale())
	}
	if sel("compile") {
		swaps := 12
		if *quick {
			swaps = 6
		}
		res := exp.CompileBench(swaps)
		emit("compile", res.Compile)
		emit("compile-swap", res.Swap)
	}
	if sel("scale-cores") {
		packets := 200000
		if *quick {
			packets = 20000
		}
		res, err := exp.Scale(packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scale-cores:", err)
			os.Exit(1)
		}
		emit("scale-cores", res.Table)
	}
	if sel("throughput") {
		probes := 2000000
		if *quick {
			probes = 200000
		}
		emit("throughput", exp.Throughput(probes))
	}
	if sel("swap") {
		packets := 98304
		if *quick {
			packets = 32768
		}
		res := exp.Swap(packets)
		emit("swap", res.Table)
		if res.Mixed != 0 || res.Dropped != 0 {
			fmt.Fprintf(os.Stderr, "experiments: swap audit FAILED: %d mixed, %d dropped\n", res.Mixed, res.Dropped)
			os.Exit(1)
		}
	}
	if sel("trace") {
		packets := 48
		if *quick {
			packets = 12
		}
		emit("trace", exp.Trace(packets))
	}
	if sel("chaos") {
		rounds, seeds := 800, []int64{1, 2}
		if *quick {
			rounds, seeds = 200, []int64{1}
		}
		res, err := exp.Chaos(rounds, seeds, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: chaos: %v\n", err)
			os.Exit(1)
		}
		emit("chaos", res.Table)
		if res.Violations != 0 {
			fmt.Fprintf(os.Stderr, "experiments: chaos audit FAILED: %d violations over %d audited deliveries\n",
				res.Violations, res.Audited)
			for i, r := range res.Reproducers {
				fmt.Fprintf(os.Stderr, "reproducer: %s\n", r)
				if i < len(res.FlightDumps) && res.FlightDumps[i] != nil {
					d := res.FlightDumps[i]
					path := fmt.Sprintf("chaos-flight-%d.json", i)
					if b, err := json.Marshal(d); err == nil && os.WriteFile(path, b, 0o644) == nil {
						fmt.Fprintf(os.Stderr, "flight dump: %s (%d records)\n", path, len(d.Records))
					}
				}
			}
			os.Exit(1)
		}
	}
	if sel("fig10") {
		if *quick {
			emit("fig10", exp.Fig10(1000, 250, 3))
		} else {
			emit("fig10", exp.Fig10(5000, 100, 10))
		}
	}
	if sel("fig11") {
		emit("fig11", exp.Fig11())
	}
	if sel("fig12") {
		emit("fig12", exp.Fig12())
	}
	if sel("fig13") {
		emit("fig13", exp.Fig13())
	}
	if sel("fig14") {
		emit("fig14", exp.Fig14())
	}
	if sel("fig15") {
		emit("fig15", exp.Fig15())
	}
	if sel("fig16a") {
		ds := []int{2, 3, 4, 5, 6, 7, 8}
		if *quick {
			ds = []int{2, 4, 6}
		}
		emit("fig16a", exp.Fig16a(ds))
	}
	if sel("fig16b") {
		ds := []int{3, 4, 5, 6, 7, 8}
		if *quick {
			ds = []int{3, 5, 7}
		}
		emit("fig16b", exp.Fig16b(ds))
	}
	if sel("fig17") {
		trials := 20
		if *quick {
			trials = 5
		}
		emit("fig17", exp.Fig17(trials, 42))
	}
}
