package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"text/tabwriter"

	"eventnet/internal/obs"
)

// getJSON fetches one endpoint and decodes the response into v.
func getJSON(cl *http.Client, url string, v any) error {
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("GET %s: %s", url, e.Error)
		}
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.Unmarshal(body, v)
}

// cmdStatus pretty-prints /status.
func cmdStatus(cl *http.Client, base string, out io.Writer) error {
	var raw json.RawMessage
	if err := getJSON(cl, base+"/status", &raw); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err := out.Write(buf.Bytes())
	return err
}

// cmdStats prints /stats as sorted key-value lines (stable output for
// operators diffing two invocations).
func cmdStats(cl *http.Client, base string, out io.Writer) error {
	var stats map[string]any
	if err := getJSON(cl, base+"/stats", &stats); err != nil {
		return err
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for _, k := range keys {
		v := stats[k]
		if f, ok := v.(float64); ok && f == float64(int64(f)) {
			v = int64(f)
		}
		fmt.Fprintf(tw, "%s\t%v\n", k, v)
	}
	return tw.Flush()
}

// cmdDump fetches /debug/flight and renders the flight record: header
// (capacity, truncation, evictions) then one line per record in the
// canonical (gen, seq, kind, branch) order the daemon emits.
func cmdDump(cl *http.Client, base string, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw dump JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d obs.FlightDump
	if err := getJSON(cl, base+"/debug/flight", &d); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(&d)
	}
	fmt.Fprintf(out, "flight record: %d records, ring cap %d/worker, %d evicted\n",
		len(d.Records), d.RingCap, d.Evicted)
	if d.Truncated {
		fmt.Fprintf(out, "TRUNCATED: history before gen %d was overwritten (rings overflowed)\n", d.TruncatedGen)
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GEN\tSEQ\tKIND\tDETAIL")
	for _, r := range d.Records {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\n", r.Gen, r.Seq, r.Kind, flightDetail(r))
	}
	return tw.Flush()
}

// flightDetail renders the kind-specific half of one flight record.
func flightDetail(r obs.FlightWireRec) string {
	switch r.Kind {
	case "deliver":
		return fmt.Sprintf("sw=%d host=%s epoch=%d v=%d branch=%d", r.Switch, r.Host, r.Epoch, r.Version, r.Branch)
	case "detect":
		return fmt.Sprintf("sw=%d events=%v epoch=%d v=%d branch=%d", r.Switch, r.Events, r.Epoch, r.Version, r.Branch)
	case "swap":
		s := fmt.Sprintf("phase=%s", r.Phase)
		if r.Phase == "flip" {
			s += fmt.Sprintf(" from=%d to=%d", r.From, r.To)
		} else if r.To != 0 || r.Phase == "retire" {
			s += fmt.Sprintf(" to=%d", r.To)
		}
		return s + fmt.Sprintf(" epoch=%d", r.Epoch)
	case "stats":
		if r.Stats == nil {
			return "(empty)"
		}
		return fmt.Sprintf("+gens=%d +hops=%d +deliv=%d +inj=%d +events=%d pending=%d",
			r.Stats.Generations, r.Stats.Hops, r.Stats.Deliveries, r.Stats.Injections, r.Stats.Events, r.Stats.Pending)
	}
	return ""
}
