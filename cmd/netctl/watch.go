package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"eventnet/internal/obs"
)

// tailOptions configure one event-feed tail.
type tailOptions struct {
	kinds string // comma-separated kind filter, "" = all
	limit int    // stop after this many events, 0 = unlimited
	buf   int    // server-side subscriber buffer, 0 = server default
	print func(out io.Writer, raw []byte, ev obs.Event) bool
}

// tail follows /watch, reconnecting with exponential backoff on any
// stream loss. It returns nil when the limit is reached or the daemon
// announces shutdown (the terminal {"kind":"shutdown"} event), and an
// error only on a non-retryable response (4xx).
func tail(cl *http.Client, base string, out io.Writer, o tailOptions) error {
	q := url.Values{}
	if o.kinds != "" {
		q.Set("kinds", o.kinds)
	}
	if o.buf > 0 {
		q.Set("buf", fmt.Sprint(o.buf))
	}
	target := base + "/watch"
	if len(q) > 0 {
		target += "?" + q.Encode()
	}

	const backoffMin, backoffMax = 500 * time.Millisecond, 10 * time.Second
	backoff := backoffMin
	seen := 0
	for {
		err := func() error {
			resp, err := cl.Get(target)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return &fatalError{fmt.Errorf("GET /watch: %s", resp.Status)}
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				line := sc.Bytes()
				if len(line) == 0 {
					continue
				}
				backoff = backoffMin // healthy stream: reset the backoff
				var ev obs.Event
				if err := json.Unmarshal(line, &ev); err != nil {
					continue
				}
				if o.print(out, line, ev) {
					seen++
				}
				if ev.Kind == obs.KindShutdown {
					return &doneError{}
				}
				if o.limit > 0 && seen >= o.limit {
					return &doneError{}
				}
			}
			if err := sc.Err(); err != nil {
				return err
			}
			return fmt.Errorf("stream closed")
		}()
		switch err.(type) {
		case *doneError:
			return nil
		case *fatalError:
			return err.(*fatalError).err
		}
		fmt.Fprintf(out, "# disconnected (%v); reconnecting in %s\n", err, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// doneError and fatalError thread tail's two exit reasons out of the
// per-connection closure.
type doneError struct{}

func (*doneError) Error() string { return "done" }

type fatalError struct{ err error }

func (f *fatalError) Error() string { return f.err.Error() }

// formatEvent renders one feed event as a single aligned line.
func formatEvent(ev obs.Event) string {
	switch ev.Kind {
	case obs.KindDelivery:
		return fmt.Sprintf("delivery  gen=%-6d host=%-4s epoch=%d v=%d fields=%s",
			ev.Gen, ev.Host, ev.Epoch, ev.Version, fmtFields(ev.Fields))
	case obs.KindEvent:
		return fmt.Sprintf("event     gen=%-6d sw=%-3d events=%v epoch=%d v=%d",
			ev.Gen, ev.Switch, ev.Events, ev.Epoch, ev.Version)
	case obs.KindSwap:
		s := fmt.Sprintf("swap      phase=%-7s from=%d to=%d", ev.Phase, ev.From, ev.To)
		if ev.Inflight > 0 {
			s += fmt.Sprintf(" inflight=%d", ev.Inflight)
		}
		if ev.CompileMS > 0 {
			s += fmt.Sprintf(" compile_ms=%.1f", ev.CompileMS)
		}
		return s
	case obs.KindStats:
		if ev.Stats == nil {
			return fmt.Sprintf("stats     gen=%-6d (empty)", ev.Gen)
		}
		return fmt.Sprintf("stats     gen=%-6d +hops=%d +deliv=%d +inj=%d +events=%d pending=%d",
			ev.Gen, ev.Stats.Hops, ev.Stats.Deliveries, ev.Stats.Injections, ev.Stats.Events, ev.Stats.Pending)
	case obs.KindTrace:
		if ev.Trace == nil {
			return fmt.Sprintf("trace     gen=%-6d (empty)", ev.Gen)
		}
		return fmt.Sprintf("trace     id=%-5d host=%-4s hops=%d truncated=%v",
			ev.Trace.ID, ev.Trace.Host, len(ev.Trace.Hops), ev.Trace.Truncated)
	case obs.KindAlert:
		if ev.Alert == nil {
			return fmt.Sprintf("alert     %s %s", ev.Phase, ev.Note)
		}
		return fmt.Sprintf("alert     %-5s %s value=%d threshold=%d since_gen=%d",
			ev.Phase, ev.Alert.Name, ev.Alert.Value, ev.Alert.Threshold, ev.Alert.SinceGen)
	case obs.KindShutdown:
		return fmt.Sprintf("shutdown  %s (dropped=%d)", ev.Note, ev.Dropped)
	case obs.KindMeta:
		return fmt.Sprintf("meta      %s dropped=%d", ev.Note, ev.Dropped)
	}
	return fmt.Sprintf("%-9s gen=%d", ev.Kind, ev.Gen)
}

// fmtFields renders a packet's fields deterministically (maps iterate
// in random order; operators diff these lines).
func fmtFields(f map[string]int) string {
	if len(f) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, f[k])
	}
	b.WriteByte('}')
	return b.String()
}

// cmdWatch tails the event feed.
func cmdWatch(cl *http.Client, base string, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	kinds := fs.String("kinds", "", "comma-separated event kinds (delivery,event,swap,stats,trace,alert,meta)")
	limit := fs.Int("n", 0, "stop after N events (0 = until shutdown or interrupt)")
	raw := fs.Bool("raw", false, "print raw NDJSON lines instead of formatted ones")
	buf := fs.Int("buf", 0, "server-side subscriber buffer (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return tail(cl, base, out, tailOptions{
		kinds: *kinds, limit: *limit, buf: *buf,
		print: func(out io.Writer, line []byte, ev obs.Event) bool {
			if *raw {
				fmt.Fprintf(out, "%s\n", line)
			} else {
				fmt.Fprintln(out, formatEvent(ev))
			}
			return true
		},
	})
}

// cmdTrace follows stitched packet journeys, one block per journey.
func cmdTrace(cl *http.Client, base string, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	limit := fs.Int("n", 0, "stop after N journeys (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return tail(cl, base, out, tailOptions{
		kinds: obs.KindTrace, limit: *limit,
		print: func(out io.Writer, _ []byte, ev obs.Event) bool {
			j := ev.Trace
			if j == nil {
				return false
			}
			trunc := ""
			if j.Truncated {
				trunc = " TRUNCATED"
			}
			fmt.Fprintf(out, "journey id=%d host=%s gen=%d epoch=%d v=%d hops=%d%s\n",
				j.ID, j.Host, j.Gen, j.Epoch, j.Version, len(j.Hops), trunc)
			for _, h := range j.Hops {
				switch h.Kind {
				case "deliver":
					fmt.Fprintf(out, "  gen=%-6d deliver host=%s\n", h.Gen, h.Host)
				default:
					fmt.Fprintf(out, "  gen=%-6d %-7s sw=%-3d in=%-2d rank=%-3d out=%d branch=%d\n",
						h.Gen, h.Kind, h.Switch, h.InPort, h.Rank, h.Out, h.Branch)
				}
			}
			return true
		},
	})
}
