// Command netctl is the operator CLI for a running netd: one binary
// that answers "what is the daemon doing right now" without curl, jq,
// or a metrics stack.
//
//	netctl [-addr URL] status            # program, epoch, swap history
//	netctl [-addr URL] stats             # counters, uptime, build info
//	netctl [-addr URL] top [-interval 2s] [-once] [-count N]
//	                                     # refreshing rate + p50/p99 table
//	                                     # from /metrics histogram deltas
//	netctl [-addr URL] watch [-kinds a,b] [-n N] [-raw]
//	                                     # tail the live event feed with
//	                                     # reconnect + backoff
//	netctl [-addr URL] trace [-n N]      # follow stitched packet journeys
//	netctl [-addr URL] dump [-json]      # fetch + pretty-print the
//	                                     # flight record (/debug/flight)
//
// top computes quantiles client-side from consecutive /metrics scrapes:
// the daemon exports power-of-two cumulative buckets, netctl
// de-cumulates them, subtracts the previous scrape, and interpolates
// p50/p99 inside the winning bucket (obs.Histogram.Quantile) — so the
// table shows the latency of the last interval, not the process
// lifetime. watch exits 0 when the daemon announces shutdown (the
// terminal {"kind":"shutdown"} event) and reconnects on any other
// stream loss. See docs/OPS.md for the full runbook.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `netctl: operator CLI for netd

usage: netctl [-addr URL] <command> [flags]

commands:
  status   program, epoch, swap history, engine snapshot
  stats    engine counters, uptime, build and runtime info
  top      refreshing rate and p50/p99 latency table from /metrics
  watch    tail the /watch event feed (NDJSON) with reconnect
  trace    follow stitched packet journeys
  dump     fetch and pretty-print the flight record

run "netctl <command> -h" for per-command flags
`)
}

// normalizeAddr accepts ":8080", "host:8080" or a full URL.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + strings.TrimRight(addr, "/")
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "netd base URL (\":8080\" and \"host:8080\" also accepted)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := normalizeAddr(*addr)
	// One-shot requests get a deadline; the streaming commands must not
	// (a tail is supposed to sit on the socket forever).
	cl := &http.Client{Timeout: 30 * time.Second}
	streamCl := &http.Client{}

	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "status":
		err = cmdStatus(cl, base, os.Stdout)
	case "stats":
		err = cmdStats(cl, base, os.Stdout)
	case "top":
		err = cmdTop(cl, base, os.Stdout, rest)
	case "watch":
		err = cmdWatch(streamCl, base, os.Stdout, rest)
	case "trace":
		err = cmdTrace(streamCl, base, os.Stdout, rest)
	case "dump":
		err = cmdDump(cl, base, os.Stdout, rest)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "netctl: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netctl:", err)
		os.Exit(1)
	}
}
