package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"eventnet/internal/obs"
)

// snapshot is one parsed /metrics scrape. Histograms are de-cumulated
// back into the engine's power-of-two bucket layout so obs.Histogram's
// Sub/Quantile apply unchanged.
type snapshot struct {
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*obs.Histogram
}

// parseMetrics reads a Prometheus text exposition and keeps everything
// under the eventnet_ prefix (names are stored with the prefix and the
// counter _total suffix stripped). It understands exactly the shape
// obs.WritePrometheus emits: power-of-two `le` bounds in ascending
// order, one +Inf terminator, `_sum`/`_count` trailers.
func parseMetrics(r io.Reader) (*snapshot, error) {
	s := &snapshot{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*obs.Histogram{},
	}
	types := map[string]string{} // bare name -> counter|gauge|histogram
	lastCum := map[string]int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
		}
		if !strings.HasPrefix(name, "eventnet_") {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			hname := shortName(strings.TrimSuffix(name, "_bucket"))
			le := labelValue(labels, "le")
			if le == "+Inf" || le == "" {
				continue
			}
			bound, err := strconv.ParseInt(le, 10, 64)
			if err != nil || bound < 1 {
				continue
			}
			// Bounds are 1<<i, so the bucket index is the bit length - 1.
			idx := bits.Len64(uint64(bound)) - 1
			if idx >= obs.HistBuckets {
				continue
			}
			h := s.hists[hname]
			if h == nil {
				h = &obs.Histogram{}
				s.hists[hname] = h
			}
			cum := int64(val)
			h.Count[idx] = cum - lastCum[hname]
			lastCum[hname] = cum
		case strings.HasSuffix(name, "_sum"):
			hname := shortName(strings.TrimSuffix(name, "_sum"))
			if types[strings.TrimSuffix(name, "_sum")] == "histogram" || s.hists[hname] != nil {
				h := s.hists[hname]
				if h == nil {
					h = &obs.Histogram{}
					s.hists[hname] = h
				}
				h.Sum = int64(val)
			}
		case strings.HasSuffix(name, "_count"):
			// Recomputable from the buckets; skip.
		case types[name] == "counter" || strings.HasSuffix(name, "_total"):
			s.counters[shortName(strings.TrimSuffix(name, "_total"))] = int64(val)
		default:
			s.gauges[shortName(name)] = int64(val)
		}
	}
	return s, sc.Err()
}

// shortName strips the exposition prefix for display.
func shortName(name string) string { return strings.TrimPrefix(name, "eventnet_") }

// labelValue extracts one label from a {k="v",...} block.
func labelValue(labels, key string) string {
	i := strings.Index(labels, key+"=\"")
	if i < 0 {
		return ""
	}
	rest := labels[i+len(key)+2:]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// scrape fetches and parses one /metrics exposition.
func scrape(cl *http.Client, base string) (*snapshot, error) {
	resp, err := cl.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return parseMetrics(resp.Body)
}

// topHists is the display order of the latency table; histograms with
// no observations at all are elided.
var topHists = []string{"hop_ns", "delivery_latency_ns", "generation_occupancy", "queue_depth", "swap_drain_ns", "compile_ns"}

// topRates is the display order of the rate header.
var topRates = []string{"hops", "deliveries", "injections", "events_fired", "ttl_drops", "rule_drops"}

// renderTop writes one refresh of the top table: counter rates over the
// interval, then per-histogram interval quantiles (falling back to
// lifetime quantiles, marked "cum", when the interval saw nothing).
func renderTop(out io.Writer, prev, cur *snapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	var hdr []string
	for _, name := range topRates {
		if _, ok := cur.counters[name]; !ok {
			continue
		}
		rate := float64(cur.counters[name]-prev.counters[name]) / secs
		hdr = append(hdr, fmt.Sprintf("%s/s %.0f", name, rate))
	}
	hdr = append(hdr, fmt.Sprintf("pending %d", cur.gauges["pending_packets"]))
	if n := cur.gauges["alerts_active"]; n > 0 {
		hdr = append(hdr, fmt.Sprintf("ALERTS %d", n))
	}
	fmt.Fprintln(out, strings.Join(hdr, "  "))

	// Compiler memory line: only once the controller has compiled something
	// (all three gauges stay zero until the first fresh build).
	if cur.gauges["compiler_fdd_nodes"] > 0 || cur.gauges["compiler_arena_bytes"] > 0 {
		fmt.Fprintf(out, "compiler: %d fdd nodes  %d interned  arena %s (hw %s)\n",
			cur.gauges["compiler_fdd_nodes"], cur.gauges["compiler_intern_entries"],
			fmtQ(float64(cur.gauges["compiler_arena_bytes"])),
			fmtQ(float64(cur.gauges["compiler_arena_high_water_bytes"])))
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "HISTOGRAM\tRATE/S\tP50\tP99\tMEAN\tWINDOW")
	for _, name := range topHists {
		ch := cur.hists[name]
		if ch == nil || ch.Total() == 0 {
			continue
		}
		window := "interval"
		d := *ch
		if ph := prev.hists[name]; ph != nil {
			d = ch.Sub(*ph)
		}
		if d.Total() == 0 {
			// Nothing this interval: show lifetime so the row stays useful.
			d, window = *ch, "cum"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%s\t%s\t%s\n",
			name, float64(d.Total())/secs,
			fmtQ(d.Quantile(0.50)), fmtQ(d.Quantile(0.99)), fmtQ(d.Mean()), window)
	}
	tw.Flush()
}

// fmtQ renders a quantile estimate compactly (the buckets are powers of
// two, so sub-integer precision would be noise).
func fmtQ(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// cmdTop scrapes /metrics on an interval and renders rate + quantile
// tables from the deltas. -once prints a single refresh (two scrapes,
// one interval apart); -count N stops after N refreshes.
func cmdTop(cl *http.Client, base string, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one refresh and exit")
	count := fs.Int("count", 0, "stop after N refreshes (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prev, err := scrape(cl, base)
	if err != nil {
		return err
	}
	for n := 0; ; {
		time.Sleep(*interval)
		cur, err := scrape(cl, base)
		if err != nil {
			return err
		}
		renderTop(out, prev, cur, *interval)
		prev = cur
		n++
		if *once || (*count > 0 && n >= *count) {
			return nil
		}
		fmt.Fprintln(out)
	}
}
