package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"eventnet/internal/obs"
)

func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		":8080":          "http://127.0.0.1:8080",
		"box:9/":         "http://box:9",
		"http://box:9":   "http://box:9",
		"https://box/":   "https://box",
		"127.0.0.1:8080": "http://127.0.0.1:8080",
	} {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseMetricsRoundTrip: what obs.Metrics writes, netctl reads back
// — counters, gauges, and de-cumulated histograms whose quantiles match
// the source's.
func TestParseMetricsRoundTrip(t *testing.T) {
	m := obs.NewMetrics(0)
	m.Add(obs.CtrHops, 1234)
	m.Add(obs.CtrDeliveries, 99)
	m.SetGauge(obs.GaugePending, 7)
	for i := 0; i < 900; i++ {
		m.Observe(obs.HistHopNs, 10)
	}
	for i := 0; i < 100; i++ {
		m.Observe(obs.HistHopNs, 1000)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := parseMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.counters["hops"] != 1234 || s.counters["deliveries"] != 99 {
		t.Errorf("counters = %v", s.counters)
	}
	if s.gauges["pending_packets"] != 7 {
		t.Errorf("pending_packets = %d, want 7", s.gauges["pending_packets"])
	}
	h := s.hists["hop_ns"]
	if h == nil || h.Total() != 1000 {
		t.Fatalf("hop_ns round-trip lost mass: %+v", h)
	}
	want := m.Histogram(obs.HistHopNs)
	if h.Quantile(0.5) != want.Quantile(0.5) || h.Quantile(0.99) != want.Quantile(0.99) {
		t.Errorf("quantiles drifted: parsed p50/p99 %v/%v, source %v/%v",
			h.Quantile(0.5), h.Quantile(0.99), want.Quantile(0.5), want.Quantile(0.99))
	}
	if h.Sum != want.Sum {
		t.Errorf("sum = %d, want %d", h.Sum, want.Sum)
	}
}

// TestCmdTopOnce: one refresh against a live daemon-shaped /metrics;
// rates reflect the delta between the two scrapes.
func TestCmdTopOnce(t *testing.T) {
	m := obs.NewMetrics(0)
	var scrapes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		// Advance between scrapes so the delta is nonzero.
		if scrapes.Add(1) > 1 {
			m.Add(obs.CtrHops, 5000)
			for i := 0; i < 100; i++ {
				m.Observe(obs.HistHopNs, 100)
			}
		}
		m.WritePrometheus(w)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := cmdTop(ts.Client(), ts.URL, &out, []string{"-once", "-interval", "10ms"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "hops/s") {
		t.Errorf("top output missing the rate header:\n%s", got)
	}
	if !strings.Contains(got, "hop_ns") || !strings.Contains(got, "P99") {
		t.Errorf("top output missing the histogram table:\n%s", got)
	}
	if !strings.Contains(got, "interval") {
		t.Errorf("top output not marked as interval-windowed:\n%s", got)
	}
}

// TestTailLimitAndReconnect: the tail survives a dropped stream
// (reconnects and keeps counting) and stops at -n.
func TestTailLimitAndReconnect(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		fl := w.(http.Flusher)
		enc := json.NewEncoder(w)
		// Three events per connection, then the server hangs up.
		for i := 0; i < 3; i++ {
			enc.Encode(obs.Event{Kind: obs.KindStats, Gen: int64(i), Stats: &obs.StatsDelta{Hops: 1}})
		}
		fl.Flush()
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := tail(ts.Client(), ts.URL, &out, tailOptions{
		limit: 5,
		print: func(out io.Writer, _ []byte, ev obs.Event) bool {
			fmt.Fprintln(out, formatEvent(ev))
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := conns.Load(); got != 2 {
		t.Errorf("tail used %d connections for 5 events at 3/connection, want 2", got)
	}
	if got := strings.Count(out.String(), "stats"); got != 5 {
		t.Errorf("printed %d events, want 5:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "# disconnected") {
		t.Errorf("reconnect not surfaced:\n%s", out.String())
	}
}

// TestTailShutdownEvent: the daemon's terminal shutdown event ends the
// tail cleanly — no reconnect attempt, exit nil.
func TestTailShutdownEvent(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		enc := json.NewEncoder(w)
		enc.Encode(obs.Event{Kind: obs.KindDelivery, Host: "H4"})
		enc.Encode(obs.Event{Kind: obs.KindShutdown, Note: "server shutting down"})
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := tail(ts.Client(), ts.URL, &out, tailOptions{
		print: func(out io.Writer, _ []byte, ev obs.Event) bool {
			fmt.Fprintln(out, formatEvent(ev))
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if conns.Load() != 1 {
		t.Errorf("tail reconnected after shutdown (%d connections)", conns.Load())
	}
	if !strings.Contains(out.String(), "shutdown") {
		t.Errorf("shutdown event not printed:\n%s", out.String())
	}
}

// TestCmdWatchRaw: -raw passes NDJSON through untouched, the kinds
// filter reaches the query string, and a 4xx is fatal (no retry loop).
func TestCmdWatchRaw(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("kinds"); got != "swap,stats" {
			t.Errorf("kinds query = %q", got)
		}
		json.NewEncoder(w).Encode(obs.Event{Kind: obs.KindSwap, Phase: "flip", Seq: 42})
	}))
	defer ts.Close()
	var out bytes.Buffer
	if err := cmdWatch(ts.Client(), ts.URL, &out, []string{"-raw", "-n", "1", "-kinds", "swap,stats"}); err != nil {
		t.Fatal(err)
	}
	var ev obs.Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &ev); err != nil || ev.Seq != 42 {
		t.Fatalf("raw output not NDJSON passthrough: %q (%v)", out.String(), err)
	}

	notFound := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer notFound.Close()
	if err := cmdWatch(notFound.Client(), notFound.URL, &out, []string{"-n", "1"}); err == nil {
		t.Fatal("404 /watch did not fail fast")
	}
}

// TestCmdDump: the flight dump renders its header and canonical rows,
// and -json passes the wire form through.
func TestCmdDump(t *testing.T) {
	f := obs.NewFlight(16, 1)
	f.Shard(0).Add(obs.FlightRec{Kind: obs.FlightDeliver, Gen: 3, Seq: 7, Switch: 2, Host: "H4", Epoch: 1})
	f.Shard(0).Add(obs.FlightRec{Kind: obs.FlightDetect, Gen: 3, Seq: 7, Switch: 2, Bits: "\x04", Epoch: 1})
	f.Serial(obs.FlightRec{Kind: obs.FlightSwap, Phase: "flip", From: 0, To: 1, Gen: 4})
	d := f.Dump()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/flight" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(d)
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := cmdDump(ts.Client(), ts.URL, &out, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"3 records", "ring cap 16", "detect", "host=H4", "phase=flip"} {
		if !strings.Contains(got, want) {
			t.Errorf("dump output missing %q:\n%s", want, got)
		}
	}
	// Canonical order survives rendering: detect before deliver at equal
	// (gen, seq).
	if strings.Index(got, "detect") > strings.Index(got, "deliver") {
		t.Errorf("rows out of canonical order:\n%s", got)
	}

	out.Reset()
	if err := cmdDump(ts.Client(), ts.URL, &out, []string{"-json"}); err != nil {
		t.Fatal(err)
	}
	var rt obs.FlightDump
	if err := json.Unmarshal(out.Bytes(), &rt); err != nil || len(rt.Records) != 3 {
		t.Fatalf("-json round trip: %v (%d records)", err, len(rt.Records))
	}
}

// TestCmdStatusStats: plain passthrough commands against canned
// endpoints.
func TestCmdStatusStats(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/status":
			fmt.Fprint(w, `{"program":"firewall","epoch":2}`)
		case "/stats":
			fmt.Fprint(w, `{"uptime_s":1.5,"deliveries":42,"program":"firewall"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := cmdStatus(ts.Client(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"program": "firewall"`) {
		t.Errorf("status output: %s", out.String())
	}
	out.Reset()
	if err := cmdStats(ts.Client(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "deliveries") || !strings.Contains(got, "42") {
		t.Errorf("stats output: %s", got)
	}
	// Sorted, so diffable: deliveries before program before uptime_s.
	if !(strings.Index(got, "deliveries") < strings.Index(got, "program") && strings.Index(got, "program") < strings.Index(got, "uptime_s")) {
		t.Errorf("stats keys not sorted:\n%s", got)
	}
}

// TestFormatEventDeterministic: packet fields render in sorted order so
// operator diffs are stable.
func TestFormatEventDeterministic(t *testing.T) {
	ev := obs.Event{Kind: obs.KindDelivery, Host: "H4", Fields: map[string]int{"src": 101, "dst": 104, "id": 9}}
	want := formatEvent(ev)
	for i := 0; i < 20; i++ {
		if got := formatEvent(ev); got != want {
			t.Fatalf("formatEvent nondeterministic: %q vs %q", got, want)
		}
	}
	if !strings.Contains(want, "dst=104 id=9 src=101") {
		t.Errorf("fields not sorted: %q", want)
	}
}
