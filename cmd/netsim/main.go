// Command netsim runs one timed scenario on an application, under the
// correct (tagged) data plane or the uncoordinated baseline, and prints a
// ping timeline — the raw material of Figures 11-15.
//
// Usage:
//
//	netsim -app firewall -plane tagged
//	netsim -app firewall -plane uncoord -delay 2.5
//	netsim -app bandwidth-cap -cap 10 -pings 18
//	netsim -app ids -dataplane scan   # linear-scan reference dataplane
package main

import (
	"flag"
	"fmt"
	"os"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/exp"
	"eventnet/internal/sim"
)

func main() {
	appName := flag.String("app", "firewall", "application: firewall, learning-switch, authentication, bandwidth-cap, ids, ring")
	plane := flag.String("plane", "tagged", "data plane: tagged (correct) or uncoord (baseline)")
	dpMode := flag.String("dataplane", "indexed", "forwarding engine: indexed (compiled matchers) or scan (linear)")
	delay := flag.Float64("delay", 2.0, "uncoordinated install delay, seconds")
	pings := flag.Int("pings", 12, "pings per scripted flow")
	capN := flag.Int("cap", 10, "bandwidth cap n")
	ringD := flag.Int("diameter", 3, "ring diameter")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var a apps.App
	switch *appName {
	case "firewall":
		a = apps.Firewall()
	case "learning-switch":
		a = apps.LearningSwitch()
	case "authentication":
		a = apps.Authentication()
	case "bandwidth-cap":
		a = apps.BandwidthCap(*capN)
	case "ids":
		a = apps.IDS()
	case "ring":
		a = apps.Ring(*ringD)
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown app %q\n", *appName)
		os.Exit(1)
	}
	kind := sim.PlaneKindTagged
	if *plane == "uncoord" {
		kind = sim.PlaneKindUncoord
	} else if *plane != "tagged" {
		fmt.Fprintf(os.Stderr, "netsim: unknown plane %q\n", *plane)
		os.Exit(1)
	}
	mode, ok := dataplane.ParseMode(*dpMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "netsim: unknown dataplane %q (want indexed or scan)\n", *dpMode)
		os.Exit(1)
	}

	n, err := exp.BuildNES(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	p := sim.DefaultParams()
	p.InstallDelay = *delay
	s := sim.New(a.Topo, sim.NewPlaneMode(kind, n, mode), p, *seed)

	// Scripted flows per application.
	type flow struct {
		src, dst string
		start    float64
	}
	var flows []flow
	switch *appName {
	case "firewall", "bandwidth-cap":
		sim.EnableEcho(s, "H1")
		sim.EnableEcho(s, "H4")
		flows = []flow{{"H4", "H1", 0.5}, {"H1", "H4", 2.0}, {"H4", "H1", 4.0}}
		if *appName == "bandwidth-cap" {
			flows = []flow{{"H1", "H4", 0.5}}
		}
	case "learning-switch":
		sim.EnableEcho(s, "H1")
		flows = []flow{{"H4", "H1", 0.5}}
	case "authentication", "ids":
		for _, h := range []string{"H1", "H2", "H3", "H4"} {
			sim.EnableEcho(s, h)
		}
		flows = []flow{
			{"H4", "H3", 0.5}, {"H4", "H1", 2.0}, {"H4", "H3", 3.5},
			{"H4", "H2", 5.0}, {"H4", "H3", 6.5},
		}
	case "ring":
		sim.EnableEcho(s, "H2")
		flows = []flow{{"H1", "H2", 0.5}}
	}

	var stats []*sim.PingStats
	var labels []string
	for i, f := range flows {
		stats = append(stats, sim.StartPings(s, f.src, f.dst, f.start, 0.25, *pings, 1000*(i+1)))
		labels = append(labels, f.src+"->"+f.dst)
	}
	s.Run(20)

	fmt.Printf("app=%s plane=%s delay=%.1fs\n", a.Name, *plane, *delay)
	for i, st := range stats {
		fmt.Printf("flow %-8s: %d/%d pings succeeded\n", labels[i], st.Succeeded(), len(st.Pings))
		for _, pg := range st.Pings {
			mark := "drop"
			if pg.Replied {
				mark = fmt.Sprintf("rtt=%.1fms", 1000*(pg.ReplyAt-pg.SentAt))
			}
			fmt.Printf("  t=%6.2fs %s %s\n", pg.SentAt, labels[i], mark)
		}
	}
}
