package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/obs"
)

// watchServer is a daemon with full observability attached, as main()
// builds it.
func watchServer(t *testing.T) (*httptest.Server, *server, *obs.Obs, *ctrl.Controller) {
	t.Helper()
	a := apps.Firewall()
	o := &obs.Obs{
		Metrics:        obs.NewMetrics(2),
		Bus:            obs.NewBus(),
		Trace:          obs.NewTracer(1, 2),
		Flight:         obs.NewFlight(0, 2),
		Watch:          obs.NewWatchdog(obs.WatchOptions{}),
		DeliverySample: 1,
	}
	c := ctrl.New(a.Topo, ctrl.Options{Workers: 2, Obs: o})
	t.Cleanup(c.Close)
	if err := c.Load(a.Name, a.Prog); err != nil {
		t.Fatal(err)
	}
	s, handler := newServer(c, o)
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts, s, o, c
}

// watchNDJSON attaches a line-decoding consumer to /watch and returns a
// snapshot function plus a cancel.
func watchNDJSON(t *testing.T, ts *httptest.Server, query string) (func() []obs.Event, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/watch"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/watch content type %q", ct)
	}
	var mu sync.Mutex
	var events []obs.Event
	go func() {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var ev obs.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue
			}
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	snap := func() []obs.Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]obs.Event{}, events...)
	}
	return snap, cancel
}

// waitFor polls a snapshot until the predicate holds or the deadline
// passes (the feed is asynchronous by design).
func waitFor(t *testing.T, snap func() []obs.Event, what string, pred func([]obs.Event) bool) []obs.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if evs := snap(); pred(evs) {
			return evs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; got %+v", what, snap())
	return nil
}

// TestNetdWatchFeed drives the NDJSON feed end to end: deliveries with
// materialized fields, swap phase events in order, and — after the old
// epoch retired — a fresh subscriber that must never see a stale-epoch
// delivery (the bus has no replay; only live traffic is published).
func TestNetdWatchFeed(t *testing.T) {
	ts, _, _, _ := watchServer(t)

	snap, cancel := watchNDJSON(t, ts, "?kinds=delivery,swap")
	defer cancel()

	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)
	waitFor(t, snap, "delivery event", func(evs []obs.Event) bool {
		for _, ev := range evs {
			if ev.Kind == obs.KindDelivery && ev.Host == "H4" && len(ev.Fields) > 0 && ev.Epoch == 0 {
				return true
			}
		}
		return false
	})

	call(t, ts, "POST", "/swap", map[string]any{"app": "bandwidth-cap", "cap": 5}, 200)
	evs := waitFor(t, snap, "swap retire", func(evs []obs.Event) bool {
		for _, ev := range evs {
			if ev.Kind == obs.KindSwap && ev.Phase == "retire" {
				return true
			}
		}
		return false
	})
	var phases []string
	for _, ev := range evs {
		if ev.Kind == obs.KindSwap {
			phases = append(phases, ev.Phase)
		}
	}
	if len(phases) < 3 || phases[0] != "stage" || phases[1] != "flip" || phases[len(phases)-1] != "retire" {
		t.Fatalf("swap phases on /watch = %v, want stage, flip, ..., retire", phases)
	}
	cancel()

	// A subscriber attached after the retire sees only the new epoch:
	// every delivery it observes must carry epoch 1. This is the no-stale-
	// epoch property across StageSwap.
	snap2, cancel2 := watchNDJSON(t, ts, "?kinds=delivery")
	defer cancel2()
	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H4", "fields": map[string]int{"dst": apps.H(1), "src": apps.H(4)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)
	evs = waitFor(t, snap2, "post-swap delivery", func(evs []obs.Event) bool {
		return len(evs) > 0
	})
	for _, ev := range evs {
		if ev.Kind == obs.KindDelivery && ev.Epoch != 1 {
			t.Fatalf("stale-epoch delivery on post-swap subscription: %+v", ev)
		}
	}
}

// TestNetdWatchSlowConsumer pins the backpressure contract: a /watch
// client that never reads cannot stall the engine — injections and
// quiesce complete promptly, overflow is dropped and counted.
func TestNetdWatchSlowConsumer(t *testing.T) {
	ts, _, o, _ := watchServer(t)

	// Subscribe with a 1-event buffer and never read the body.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/watch?buf=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Open the return path, then flood: every delivery is published at
		// sample rate 1, far outrunning the unread subscriber.
		call(t, ts, "POST", "/inject", map[string]any{
			"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)},
		}, 200)
		call(t, ts, "POST", "/quiesce", nil, 200)
		for i := 0; i < 20; i++ {
			call(t, ts, "POST", "/inject", map[string]any{
				"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)}, "count": 50,
			}, 200)
		}
		call(t, ts, "POST", "/quiesce", nil, 200)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engine stalled behind an unread /watch subscriber")
	}
	if o.Bus.Dropped() == 0 {
		t.Fatal("no drops counted; the flood should have overrun the 1-event buffer")
	}
	if got := o.Metrics.Counter(obs.CtrDeliveries); got < 1000 {
		t.Fatalf("CtrDeliveries = %d, want >= 1000 (traffic kept flowing)", got)
	}
}

// TestNetdWatchSSE checks the SSE framing with nothing but a plain
// bufio.Scanner: "event:" and "data:" lines separated by blanks, every
// data payload valid JSON, heartbeats carrying the subscriber's
// cumulative drop count.
func TestNetdWatchSSE(t *testing.T) {
	ts, s, _, _ := watchServer(t)
	s.heartbeat = 50 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)

	sc := bufio.NewScanner(resp.Body)
	var sawDelivery, sawHeartbeat bool
	var lastEvent string
	deadline := time.AfterFunc(10*time.Second, cancel)
	defer deadline.Stop()
	for sc.Scan() && !(sawDelivery && sawHeartbeat) {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			lastEvent = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev obs.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("SSE data is not JSON: %v in %q", err, line)
			}
			if ev.Kind != lastEvent {
				t.Fatalf("SSE event name %q but payload kind %q", lastEvent, ev.Kind)
			}
			switch ev.Kind {
			case obs.KindDelivery:
				sawDelivery = true
			case obs.KindMeta:
				sawHeartbeat = true
			}
		case line != "":
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if !sawDelivery || !sawHeartbeat {
		t.Fatalf("SSE stream ended early: delivery=%v heartbeat=%v", sawDelivery, sawHeartbeat)
	}
}

// TestNetdMetricsAndHealth covers the scrape surface: /metrics exposes
// the engine counters in Prometheus text form, /stats carries the v2
// schema fields, and /healthz degrades to 503 once the engine stops.
func TestNetdMetricsAndHealth(t *testing.T) {
	ts, _, _, c := watchServer(t)

	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	resp.Body.Close()
	body := sb.String()
	for _, want := range []string{
		"# TYPE eventnet_hops_total counter",
		"eventnet_deliveries_total 1",
		"eventnet_compiles_total 1",
		"# TYPE eventnet_hop_ns histogram",
		"eventnet_watch_subscribers 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	stats := call(t, ts, "GET", "/stats", nil, 200)
	if stats["schema_version"].(float64) != statsSchemaVersion {
		t.Fatalf("stats schema_version: %v", stats)
	}
	if stats["version"] != "dev" || stats["gomaxprocs"].(float64) < 1 || stats["num_cpu"].(float64) < 1 {
		t.Fatalf("stats build/runtime info: %v", stats)
	}
	if _, ok := stats["uptime_s"].(float64); !ok {
		t.Fatalf("stats uptime: %v", stats)
	}

	if out := call(t, ts, "GET", "/healthz", nil, 200); out["ok"] != true {
		t.Fatalf("healthz while serving: %v", out)
	}
	c.Close()
	if out := call(t, ts, "GET", "/healthz", nil, 503); out["reason"] != "engine stopped" {
		t.Fatalf("healthz after close: %v", out)
	}
}
