package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
)

// call drives one API request and decodes the JSON response.
func call(t *testing.T, ts *httptest.Server, method, path string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %v", method, path, resp.StatusCode, wantCode, out)
	}
	return out
}

// TestNetdSmoke is the daemon's end-to-end lifecycle: start, inject
// traffic, submit a program, hot-swap to it, verify knowledge carried and
// traffic kept flowing, reject invalid submissions, and shut down
// cleanly.
func TestNetdSmoke(t *testing.T) {
	a := apps.Firewall()
	c := ctrl.New(a.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load(a.Name, a.Prog); err != nil {
		t.Fatal(err)
	}
	_, handler := newServer(c, nil)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	if out := call(t, ts, "GET", "/healthz", nil, 200); out["ok"] != true {
		t.Fatalf("healthz: %v", out)
	}

	// Open the firewall's return path.
	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)

	// Submit a bandwidth cap; compilation is validated at submission.
	out := call(t, ts, "POST", "/program", map[string]any{"app": "bandwidth-cap", "cap": 3}, 200)
	if out["staged"] != "bandwidth-cap-3" || out["states"].(float64) != 5 {
		t.Fatalf("program submission: %v", out)
	}

	// Hot-swap to the staged program; the firewall's event maps over.
	rep := call(t, ts, "POST", "/swap", nil, 200)
	if rep["to"] != "bandwidth-cap-3" || rep["carried_events"].(float64) != 1 {
		t.Fatalf("swap report: %v", rep)
	}

	// The carried knowledge keeps the return path open under the cap.
	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H4", "fields": map[string]int{"dst": apps.H(1), "src": apps.H(4)},
	}, 200)
	call(t, ts, "POST", "/quiesce", nil, 200)
	stats := call(t, ts, "GET", "/stats", nil, 200)
	if stats["deliveries"].(float64) != 2 || stats["pending"].(float64) != 0 {
		t.Fatalf("stats after swap: %v", stats)
	}

	status := call(t, ts, "GET", "/status", nil, 200)
	if status["program"] != "bandwidth-cap-3" || status["epoch"].(float64) != 1 {
		t.Fatalf("status: %v", status)
	}

	// Source submission over the daemon's topology, then swap inline.
	src := "pt=2 & dst=H4; pt<-1; (1:1)=>(4:1); pt<-2"
	call(t, ts, "POST", "/program", map[string]any{"name": "oneway", "source": src, "init": []int{0}}, 200)
	rep2 := call(t, ts, "POST", "/swap", nil, 200)
	if rep2["to"] != "oneway" {
		t.Fatalf("source swap: %v", rep2)
	}

	// Invalid submissions are rejected without disturbing the program.
	call(t, ts, "POST", "/program", map[string]any{"app": "no-such-app"}, 400)
	call(t, ts, "POST", "/program", map[string]any{"app": "ids"}, 400) // star topology != firewall topology
	call(t, ts, "POST", "/program", map[string]any{"source": "pt=2; ("}, 400)
	call(t, ts, "POST", "/swap", nil, 400) // nothing staged
	call(t, ts, "POST", "/inject", map[string]any{"host": "H9"}, 400)

	if st := call(t, ts, "GET", "/status", nil, 200); st["program"] != "oneway" {
		t.Fatalf("bad submissions disturbed the running program: %v", st)
	}

	// Graceful shutdown is idempotent.
	c.Close()
	c.Close()
}

// TestNetdInjectBatch covers the batched ingress endpoint: one boundary
// admits the whole batch, bad packets are rejected per index without
// sinking the rest, and an all-bad batch is a client error.
func TestNetdInjectBatch(t *testing.T) {
	a := apps.Firewall()
	c := ctrl.New(a.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load(a.Name, a.Prog); err != nil {
		t.Fatal(err)
	}
	_, handler := newServer(c, nil)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	out := call(t, ts, "POST", "/inject-batch", map[string]any{
		"packets": []map[string]any{
			{"host": "H1", "fields": map[string]int{"dst": apps.H(4), "src": apps.H(1)}, "count": 3},
			{"host": "H9", "fields": map[string]int{"dst": apps.H(1)}},
			{"host": "H4", "fields": map[string]int{"dst": apps.H(1), "src": apps.H(4)}},
		},
	}, 200)
	if out["injected"].(float64) != 4 {
		t.Fatalf("batch: %v", out)
	}
	rej := out["rejected"].([]any)
	if len(rej) != 1 || rej[0].(map[string]any)["index"].(float64) != 3 {
		t.Fatalf("rejects: %v", rej)
	}
	call(t, ts, "POST", "/quiesce", nil, 200)
	stats := call(t, ts, "GET", "/stats", nil, 200)
	// The three H1->H4 packets deliver and open the firewall's return
	// path, but the H4->H1 packet shares their admission boundary — it is
	// forwarded before the outgoing-arrival event is known, so it drops,
	// exactly as four sequential Injects without a drain between would.
	if stats["deliveries"].(float64) != 3 {
		t.Fatalf("stats after batch: %v", stats)
	}

	call(t, ts, "POST", "/inject-batch", map[string]any{
		"packets": []map[string]any{{"host": "H9"}},
	}, 400)
	call(t, ts, "POST", "/inject-batch", map[string]any{"packets": []map[string]any{}}, 400)
}
