package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
)

// TestNetdErrorPaths drives every client-error path of the API and
// verifies two things per case: the documented status code, and that the
// daemon remains fully serviceable afterwards (the error left no stuck
// state behind). Raw-body cases cover malformed JSON, which the typed
// call helper cannot produce.
func TestNetdErrorPaths(t *testing.T) {
	a := apps.Firewall()
	c := ctrl.New(a.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load(a.Name, a.Prog); err != nil {
		t.Fatal(err)
	}
	_, handler := newServer(c, nil)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	rawCall := func(path, body string, wantCode int) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s %q: status %d, want %d", path, body, resp.StatusCode, wantCode)
		}
	}
	serviceable := func() {
		t.Helper()
		if out := call(t, ts, "GET", "/healthz", nil, 200); out["ok"] != true {
			t.Fatalf("daemon unhealthy: %v", out)
		}
		call(t, ts, "POST", "/inject", map[string]any{
			"host": "H1", "fields": map[string]int{"dst": apps.H(4)},
		}, 200)
		call(t, ts, "POST", "/quiesce", nil, 200)
	}

	cases := []struct {
		name string
		path string
		body any    // typed body, or...
		raw  string // ...a raw byte body for malformed-JSON cases
		code int
	}{
		{name: "program malformed JSON", path: "/program", raw: `{"app": "fire`, code: 400},
		{name: "program neither app nor source", path: "/program", body: map[string]any{}, code: 400},
		{name: "program unknown app", path: "/program", body: map[string]any{"app": "no-such-app"}, code: 400},
		{name: "program wrong topology", path: "/program", body: map[string]any{"app": "failover-diamond"}, code: 400},
		{name: "program unparsable source", path: "/program", body: map[string]any{"source": "filter (((", "init": []int{0}}, code: 400},
		{name: "swap malformed JSON", path: "/swap", raw: `[`, code: 400},
		{name: "swap with nothing staged", path: "/swap", body: nil, code: 400},
		{name: "swap unknown app inline", path: "/swap", body: map[string]any{"app": "no-such-app"}, code: 400},
		{name: "inject malformed JSON", path: "/inject", raw: `{"host": 3}`, code: 400},
		{name: "inject unknown host", path: "/inject", body: map[string]any{"host": "H9", "fields": map[string]int{"dst": 1}}, code: 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.raw != "" {
				rawCall(tc.path, tc.raw, tc.code)
			} else {
				call(t, ts, "POST", tc.path, tc.body, tc.code)
			}
			serviceable()
		})
	}

	// Double-swap: the staged program is consumed by the first swap, so
	// an immediate second body-less swap has nothing to apply.
	call(t, ts, "POST", "/program", map[string]any{"app": "bandwidth-cap", "cap": 3}, 200)
	call(t, ts, "POST", "/swap", nil, 200)
	out := call(t, ts, "POST", "/swap", nil, 400)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "no staged program") {
		t.Fatalf("double swap error: %v", out)
	}
	serviceable()

	// Inject after quiesce: a quiesced engine is idle, not stopped —
	// traffic must keep flowing.
	call(t, ts, "POST", "/quiesce", nil, 200)
	call(t, ts, "POST", "/inject", map[string]any{
		"host": "H1", "fields": map[string]int{"dst": apps.H(4)}, "count": 8,
	}, 200)
	serviceable()

	// A failed swap must not consume a staged program: stage, force a
	// conflict-free failure via an inline unknown app, then the staged
	// program still swaps.
	call(t, ts, "POST", "/program", map[string]any{"app": "firewall"}, 200)
	call(t, ts, "POST", "/swap", map[string]any{"app": "no-such-app"}, 400)
	call(t, ts, "POST", "/swap", nil, 200)
	serviceable()
}
