package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"eventnet/internal/obs"
)

// TestWatchShutdownEvent is the graceful-shutdown contract of the feed:
// a tailing client observes the terminal {"kind":"shutdown"} event when
// the daemon begins shutting down (what the SIGTERM path triggers via
// beginShutdown), and the stream ends — no unexplained EOF.
func TestWatchShutdownEvent(t *testing.T) {
	ts, s, _, c := watchServer(t)
	snap, cancel := watchNDJSON(t, ts, "")
	defer cancel()

	// Traffic first, so the terminal event demonstrably arrives after a
	// live feed (not on an idle stream).
	call(t, ts, "POST", "/inject", injectRequest{Host: "H1", Fields: map[string]int{"dst": 104, "src": 101}}, 200)
	c.Quiesce()
	waitFor(t, snap, "a delivery before shutdown", func(evs []obs.Event) bool {
		for _, ev := range evs {
			if ev.Kind == obs.KindDelivery {
				return true
			}
		}
		return false
	})

	s.beginShutdown()
	evs := waitFor(t, snap, "the terminal shutdown event", func(evs []obs.Event) bool {
		return len(evs) > 0 && evs[len(evs)-1].Kind == obs.KindShutdown
	})
	last := evs[len(evs)-1]
	if last.Note == "" {
		t.Errorf("shutdown event carries no note: %+v", last)
	}
	for _, ev := range evs[:len(evs)-1] {
		if ev.Kind == obs.KindShutdown {
			t.Fatalf("shutdown event published twice: %v", evs)
		}
	}

	// A subscriber attaching *after* shutdown began is told immediately.
	snap2, cancel2 := watchNDJSON(t, ts, "?kinds=trace")
	defer cancel2()
	waitFor(t, snap2, "immediate shutdown for a late subscriber", func(evs []obs.Event) bool {
		return len(evs) == 1 && evs[0].Kind == obs.KindShutdown
	})
}

// TestDebugFlightEndpoint: /debug/flight serves the recorder dump with
// the traffic the daemon just forwarded, and repeated fetches agree on
// a quiescent engine (the dump is non-consuming).
func TestDebugFlightEndpoint(t *testing.T) {
	ts, _, _, c := watchServer(t)
	call(t, ts, "POST", "/inject", injectRequest{Host: "H1", Fields: map[string]int{"dst": 104, "src": 101}, Count: 5}, 200)
	c.Quiesce()

	fetch := func() *obs.FlightDump {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/debug/flight")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/flight status %d", resp.StatusCode)
		}
		var d obs.FlightDump
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return &d
	}
	d := fetch()
	if len(d.Records) == 0 {
		t.Fatal("flight dump empty after traffic")
	}
	if d.RingCap != obs.DefaultFlightCap {
		t.Errorf("ring_cap = %d, want the default", d.RingCap)
	}
	delivers := 0
	for _, r := range d.Records {
		if r.Kind == "deliver" {
			delivers++
		}
	}
	if delivers == 0 {
		t.Fatalf("no deliver records among %d", len(d.Records))
	}
	a, _ := json.Marshal(d)
	b, _ := json.Marshal(fetch())
	if string(a) != string(b) {
		t.Fatal("repeated quiescent dumps differ; /debug/flight consumed the recorder")
	}
}

// TestHealthzAlerts: an active watchdog alert degrades /healthz (200,
// degraded: true, the alert listed) without failing liveness.
func TestHealthzAlerts(t *testing.T) {
	ts, _, o, _ := watchServer(t)
	if out := call(t, ts, "GET", "/healthz", nil, 200); out["degraded"] != false {
		t.Fatalf("fresh daemon degraded: %v", out)
	}
	// Drive the watchdog directly (the engine runs Check at boundaries;
	// the daemon is idle here, so nothing races this).
	o.Metrics.SetGauge(obs.GaugePending, 1<<20)
	o.Watch.Check(1, o.Metrics, o.Bus)
	out := call(t, ts, "GET", "/healthz", nil, 200)
	if out["ok"] != true || out["degraded"] != true {
		t.Fatalf("alerting daemon: %v, want ok but degraded", out)
	}
	alerts, ok := out["alerts"].([]any)
	if !ok || len(alerts) != 1 {
		t.Fatalf("alerts = %v, want one", out["alerts"])
	}
	if a := alerts[0].(map[string]any); a["name"] != obs.AlertQueueSaturation {
		t.Fatalf("alert = %v, want queue_saturation", a)
	}
	o.Metrics.SetGauge(obs.GaugePending, 0)
	o.Watch.Check(2, o.Metrics, o.Bus)
	if out := call(t, ts, "GET", "/healthz", nil, 200); out["degraded"] != false {
		t.Fatalf("cleared daemon still degraded: %v", out)
	}
}

// TestMetricsIncludesRuntime: /metrics carries the Go runtime families
// and the new recorder/watchdog gauges alongside the engine's, on one
// scrape.
func TestMetricsIncludesRuntime(t *testing.T) {
	ts, _, _, _ := watchServer(t)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"eventnet_hops_total", "eventnet_go_goroutines", "eventnet_go_gc_pause_p99_seconds", "eventnet_flight_evicted_records", "eventnet_alerts_active"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
