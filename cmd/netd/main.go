// Command netd is the long-running network daemon: it loads a Stateful
// NetKAT program, serves traffic through the live dataplane engine, and
// exposes a northbound HTTP/JSON API to reprogram the network *while it
// forwards* — the zero-downtime consistent hot-swap of internal/ctrl.
//
//	netd -app firewall -addr :8080 -workers 4
//
// API (all JSON):
//
//	GET  /healthz   liveness
//	GET  /status    program, epoch, swap history, engine snapshot
//	GET  /stats     per-switch hop counts, event views, queue depths
//	POST /program   submit a program: {"app":"bandwidth-cap","cap":20}
//	                or {"name":"p2","source":"...","init":[0]}; compiles
//	                and stages it, returns its shape
//	POST /swap      hot-swap to the staged (or inline) program; returns
//	                the swap report once the old program has drained
//	POST /inject    {"host":"H1","fields":{"dst":104},"count":3}
//	POST /inject-batch
//	                {"packets":[{"host":"H1","fields":{"dst":104}},...]};
//	                the whole batch is admitted at one engine boundary,
//	                bad packets rejected per index
//	POST /quiesce   block until all queued traffic has drained
//
// Programs submitted by name reuse the built-in applications; programs
// submitted as source are parsed over the daemon's topology. Successive
// revisions compile as deltas through the controller's cross-generation
// cache. SIGINT/SIGTERM shut down gracefully: the HTTP server stops
// accepting, in-flight requests finish, and the engine stops leak-free.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/syntax"
	"eventnet/internal/topo"
)

// server is the northbound API over one controller.
type server struct {
	c *ctrl.Controller

	mu     sync.Mutex
	staged *stagedProgram
	nextID atomic.Int64 // auto-assigned packet ids for count-injections
}

type stagedProgram struct {
	name string
	prog stateful.Program
}

// programRequest is the body of POST /program and POST /swap.
type programRequest struct {
	Name     string `json:"name"`
	App      string `json:"app"`
	Cap      int    `json:"cap"`
	Diameter int    `json:"diameter"`
	Cycles   int    `json:"cycles"` // fail/recover cycles for the failover apps
	Source   string `json:"source"`
	Init     []int  `json:"init"`
}

// injectRequest is the body of POST /inject.
type injectRequest struct {
	Host   string         `json:"host"`
	Fields map[string]int `json:"fields"`
	Count  int            `json:"count"`
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// appByName resolves a built-in application.
func appByName(req programRequest) (apps.App, error) {
	switch req.App {
	case "firewall":
		return apps.Firewall(), nil
	case "learning-switch":
		return apps.LearningSwitch(), nil
	case "authentication":
		return apps.Authentication(), nil
	case "bandwidth-cap":
		n := req.Cap
		if n <= 0 {
			n = 10
		}
		return apps.BandwidthCap(n), nil
	case "ids":
		return apps.IDS(), nil
	case "walled-garden":
		return apps.WalledGarden(), nil
	case "distributed-firewall":
		return apps.DistributedFirewall(), nil
	case "ring":
		d := req.Diameter
		if d <= 0 {
			d = 3
		}
		return apps.Ring(d), nil
	case "ids-fattree":
		return apps.IDSFatTree(4), nil
	case "failover-diamond":
		return apps.FailoverDiamond(cyclesOrDefault(req)).App, nil
	case "failover-wan":
		return apps.FailoverWAN(cyclesOrDefault(req)).App, nil
	case "failover-fattree":
		return apps.FailoverFatTree(4, cyclesOrDefault(req)).App, nil
	}
	return apps.App{}, fmt.Errorf("unknown app %q", req.App)
}

func cyclesOrDefault(req programRequest) int {
	if req.Cycles > 0 {
		return req.Cycles
	}
	return 4
}

// topoKey fingerprints a topology for compatibility checks: programs can
// only be swapped onto the network they were written for.
func topoKey(t *topo.Topology) string {
	return fmt.Sprintf("%v|%v|%v", t.Switches, t.Hosts, t.Links)
}

// resolve turns a program request into a named program over the daemon's
// topology.
func (s *server) resolve(req programRequest) (string, stateful.Program, error) {
	switch {
	case req.App != "":
		a, err := appByName(req)
		if err != nil {
			return "", stateful.Program{}, err
		}
		if topoKey(a.Topo) != topoKey(s.c.Topology()) {
			return "", stateful.Program{}, fmt.Errorf("app %s runs on a different topology than this daemon", a.Name)
		}
		name := req.Name
		if name == "" {
			name = a.Name
		}
		return name, a.Prog, nil
	case req.Source != "":
		prog, err := syntax.ParseProgram(req.Source, req.Init)
		if err != nil {
			return "", stateful.Program{}, fmt.Errorf("parsing program: %w", err)
		}
		name := req.Name
		if name == "" {
			name = "submitted"
		}
		return name, prog, nil
	}
	return "", stateful.Program{}, fmt.Errorf("one of \"app\" or \"source\" is required")
}

func (s *server) handleProgram(w http.ResponseWriter, r *http.Request) {
	var req programRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	name, prog, err := s.resolve(req)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Compile now: submission validates the program and warms the
	// cross-generation cache, so the later swap is a pure cache hit.
	p, err := s.c.Compile(name, prog)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	s.staged = &stagedProgram{name: name, prog: prog}
	s.mu.Unlock()
	rules := 0
	for _, cfg := range p.NES.Configs {
		rules += cfg.Tables.TotalRules()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged":     name,
		"states":     len(p.NES.Configs),
		"events":     len(p.NES.Events),
		"rules":      rules,
		"compile_ms": float64(p.Compile.Microseconds()) / 1000,
	})
}

func (s *server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req programRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
	}
	var name string
	var prog stateful.Program
	fromStaged := req.App == "" && req.Source == ""
	if fromStaged {
		s.mu.Lock()
		st := s.staged
		s.mu.Unlock()
		if st == nil {
			fail(w, http.StatusBadRequest, "no staged program; POST /program first or inline one")
			return
		}
		name, prog = st.name, st.prog
	} else {
		var err error
		if name, prog, err = s.resolve(req); err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	rep, err := s.c.Swap(name, prog)
	if err != nil {
		// The staged program is kept: a failed swap (e.g. one already in
		// progress) must not force the client to resubmit.
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	if fromStaged {
		s.mu.Lock()
		if s.staged != nil && s.staged.name == name {
			s.staged = nil // consumed on success only
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, rep)
}

// expand turns one inject request into its injections: Count copies,
// id-disambiguated when the expansion would otherwise duplicate headers.
func (s *server) expand(ins []dataplane.Injection, req injectRequest) []dataplane.Injection {
	n := req.Count
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		fields := netkat.Packet{}
		for f, v := range req.Fields {
			fields[f] = v
		}
		if n > 1 {
			fields["id"] = int(s.nextID.Add(1))
		}
		ins = append(ins, dataplane.Injection{Host: req.Host, Fields: fields})
	}
	return ins
}

func (s *server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Count-expansions go through the batched ingress: one admission
	// boundary for the whole request instead of one per packet.
	ins := s.expand(nil, req)
	for _, err := range s.c.InjectBatch(ins) {
		if err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"injected": len(ins)})
}

// injectBatchRequest is the body of POST /inject-batch.
type injectBatchRequest struct {
	Packets []injectRequest `json:"packets"`
}

// batchReject reports one rejected packet of a batch.
type batchReject struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

func (s *server) handleInjectBatch(w http.ResponseWriter, r *http.Request) {
	var req injectBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Packets) == 0 {
		fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	var ins []dataplane.Injection
	for _, p := range req.Packets {
		ins = s.expand(ins, p)
	}
	// Partial-batch semantics, like the engine's: bad packets are
	// reported per index, the rest are admitted at one boundary.
	var rejected []batchReject
	for i, err := range s.c.InjectBatch(ins) {
		if err != nil {
			rejected = append(rejected, batchReject{Index: i, Error: err.Error()})
		}
	}
	code := http.StatusOK
	if len(rejected) == len(ins) {
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]any{
		"injected": len(ins) - len(rejected),
		"rejected": rejected,
	})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Status())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.c.Status()
	writeJSON(w, http.StatusOK, map[string]any{
		"program":     st.Program,
		"epoch":       st.Epoch,
		"swapping":    st.Swapping,
		"generation":  st.Engine.Generation,
		"processed":   st.Engine.Processed,
		"deliveries":  st.Engine.Deliveries,
		"ttl_dropped": st.Engine.TTLDropped,
		"pending":     st.Engine.Pending,
		"switches":    st.Engine.Switches,
	})
}

func (s *server) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	s.c.Quiesce()
	writeJSON(w, http.StatusOK, map[string]any{"quiesced": true})
}

// newServer wires the API routes (split out for the smoke test).
func newServer(c *ctrl.Controller) (*server, http.Handler) {
	s := &server{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /program", s.handleProgram)
	mux.HandleFunc("POST /swap", s.handleSwap)
	mux.HandleFunc("POST /inject", s.handleInject)
	mux.HandleFunc("POST /inject-batch", s.handleInjectBatch)
	mux.HandleFunc("POST /quiesce", s.handleQuiesce)
	return s, mux
}

func main() {
	appName := flag.String("app", "firewall", "initial application (firewall, learning-switch, authentication, bandwidth-cap, ids, walled-garden, distributed-firewall, ring, ids-fattree, failover-diamond, failover-wan, failover-fattree)")
	capN := flag.Int("cap", 10, "bandwidth cap n (for -app bandwidth-cap)")
	diameter := flag.Int("diameter", 3, "ring diameter (for -app ring)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "forwarding workers")
	mode := flag.String("dataplane", "indexed", "forwarding mode: indexed or scan")
	flag.Parse()

	m, ok := dataplane.ParseMode(*mode)
	if !ok {
		log.Fatalf("netd: unknown -dataplane %q", *mode)
	}
	a, err := appByName(programRequest{App: *appName, Cap: *capN, Diameter: *diameter})
	if err != nil {
		log.Fatalf("netd: %v", err)
	}

	// Bound the delivery log: a daemon must not retain every packet it
	// ever delivered.
	c := ctrl.New(a.Topo, ctrl.Options{Workers: *workers, Mode: m, DeliveryLog: 1 << 16})
	if err := c.Load(a.Name, a.Prog); err != nil {
		log.Fatalf("netd: loading %s: %v", a.Name, err)
	}
	_, handler := newServer(c)
	srv := &http.Server{Addr: *addr, Handler: handler}

	go func() {
		log.Printf("netd: serving %s on %s (%d workers, %s dataplane)", a.Name, *addr, *workers, m)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("netd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("netd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("netd: shutdown: %v", err)
	}
	c.Close()
}
