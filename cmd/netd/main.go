// Command netd is the long-running network daemon: it loads a Stateful
// NetKAT program, serves traffic through the live dataplane engine, and
// exposes a northbound HTTP/JSON API to reprogram the network *while it
// forwards* — the zero-downtime consistent hot-swap of internal/ctrl.
//
//	netd -app firewall -addr :8080 -workers 4
//
// API (all JSON):
//
//	GET  /healthz   liveness; 503 with a reason when the engine stopped
//	                or a swap has wedged past its drain timeout; active
//	                watchdog alerts ride along as degradation reasons
//	GET  /status    program, epoch, swap history, engine snapshot
//	GET  /stats     engine counters, uptime, build and runtime info
//	GET  /metrics   Prometheus text exposition, including Go runtime
//	                metrics (see docs/OBSERVABILITY.md)
//	GET  /debug/flight
//	                flight-recorder dump: bounded full-fidelity recent
//	                history in deterministic order (see docs/OPS.md)
//	GET  /watch     live event feed: deliveries (sampled), detections,
//	                swap phases, stats deltas, journey traces. NDJSON by
//	                default; SSE with ?sse=1 or Accept: text/event-stream.
//	                ?kinds=swap,stats filters; ?buf=N sizes the
//	                subscriber buffer. A slow consumer never stalls the
//	                engine — overflow is dropped and counted, and the
//	                drop total rides on the periodic meta heartbeat.
//	POST /program   submit a program: {"app":"bandwidth-cap","cap":20}
//	                or {"name":"p2","source":"...","init":[0]}; compiles
//	                and stages it, returns its shape
//	POST /swap      hot-swap to the staged (or inline) program; returns
//	                the swap report once the old program has drained
//	POST /inject    {"host":"H1","fields":{"dst":104},"count":3}
//	POST /inject-batch
//	                {"packets":[{"host":"H1","fields":{"dst":104}},...]};
//	                the whole batch is admitted at one engine boundary,
//	                bad packets rejected per index
//	POST /quiesce   block until all queued traffic has drained
//
// Programs submitted by name reuse the built-in applications; programs
// submitted as source are parsed over the daemon's topology. Successive
// revisions compile as deltas through the controller's cross-generation
// cache. SIGINT/SIGTERM shut down gracefully: the HTTP server stops
// accepting, open /watch streams receive a terminal {"kind":"shutdown"}
// event, in-flight requests finish, and the engine stops leak-free.
// SIGQUIT dumps the flight record to stderr and keeps serving.
// -debug-addr starts a second listener with net/http/pprof and expvar
// (kept off the public API address on purpose).
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/obs"
	"eventnet/internal/stateful"
	"eventnet/internal/syntax"
	"eventnet/internal/topo"
)

// version is the build identity, overridable at link time:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/netd
var version = "dev"

// statsSchemaVersion is bumped whenever the /stats shape changes.
const statsSchemaVersion = 2

// server is the northbound API over one controller.
type server struct {
	c     *ctrl.Controller
	obs   *obs.Obs // nil when observability is disabled
	start time.Time

	// watchBuf is the default per-subscriber event buffer of /watch;
	// heartbeat paces the keep-alive (and drop-total) meta events.
	watchBuf  int
	heartbeat time.Duration

	// shutdownCh is closed when graceful shutdown begins; every open
	// /watch stream writes a terminal {"kind":"shutdown"} event and
	// returns, so tailing clients see an explicit end-of-feed instead of
	// an unexplained EOF.
	shutdownCh   chan struct{}
	shutdownOnce sync.Once

	mu     sync.Mutex
	staged *stagedProgram
	nextID atomic.Int64 // auto-assigned packet ids for count-injections
}

// beginShutdown signals open /watch streams to terminate cleanly. Safe
// to call more than once; must be called before http.Server.Shutdown,
// which waits for those streams to finish.
func (s *server) beginShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
}

type stagedProgram struct {
	name string
	prog stateful.Program
}

// programRequest is the body of POST /program and POST /swap.
type programRequest struct {
	Name     string `json:"name"`
	App      string `json:"app"`
	Cap      int    `json:"cap"`
	Diameter int    `json:"diameter"`
	Cycles   int    `json:"cycles"` // fail/recover cycles for the failover apps
	Source   string `json:"source"`
	Init     []int  `json:"init"`
}

// injectRequest is the body of POST /inject.
type injectRequest struct {
	Host   string         `json:"host"`
	Fields map[string]int `json:"fields"`
	Count  int            `json:"count"`
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// appByName resolves a built-in application.
func appByName(req programRequest) (apps.App, error) {
	switch req.App {
	case "firewall":
		return apps.Firewall(), nil
	case "learning-switch":
		return apps.LearningSwitch(), nil
	case "authentication":
		return apps.Authentication(), nil
	case "bandwidth-cap":
		n := req.Cap
		if n <= 0 {
			n = 10
		}
		return apps.BandwidthCap(n), nil
	case "ids":
		return apps.IDS(), nil
	case "walled-garden":
		return apps.WalledGarden(), nil
	case "distributed-firewall":
		return apps.DistributedFirewall(), nil
	case "ring":
		d := req.Diameter
		if d <= 0 {
			d = 3
		}
		return apps.Ring(d), nil
	case "ids-fattree":
		return apps.IDSFatTree(4), nil
	case "failover-diamond":
		return apps.FailoverDiamond(cyclesOrDefault(req)).App, nil
	case "failover-wan":
		return apps.FailoverWAN(cyclesOrDefault(req)).App, nil
	case "failover-fattree":
		return apps.FailoverFatTree(4, cyclesOrDefault(req)).App, nil
	}
	return apps.App{}, fmt.Errorf("unknown app %q", req.App)
}

func cyclesOrDefault(req programRequest) int {
	if req.Cycles > 0 {
		return req.Cycles
	}
	return 4
}

// topoKey fingerprints a topology for compatibility checks: programs can
// only be swapped onto the network they were written for.
func topoKey(t *topo.Topology) string {
	return fmt.Sprintf("%v|%v|%v", t.Switches, t.Hosts, t.Links)
}

// resolve turns a program request into a named program over the daemon's
// topology.
func (s *server) resolve(req programRequest) (string, stateful.Program, error) {
	switch {
	case req.App != "":
		a, err := appByName(req)
		if err != nil {
			return "", stateful.Program{}, err
		}
		if topoKey(a.Topo) != topoKey(s.c.Topology()) {
			return "", stateful.Program{}, fmt.Errorf("app %s runs on a different topology than this daemon", a.Name)
		}
		name := req.Name
		if name == "" {
			name = a.Name
		}
		return name, a.Prog, nil
	case req.Source != "":
		prog, err := syntax.ParseProgram(req.Source, req.Init)
		if err != nil {
			return "", stateful.Program{}, fmt.Errorf("parsing program: %w", err)
		}
		name := req.Name
		if name == "" {
			name = "submitted"
		}
		return name, prog, nil
	}
	return "", stateful.Program{}, fmt.Errorf("one of \"app\" or \"source\" is required")
}

func (s *server) handleProgram(w http.ResponseWriter, r *http.Request) {
	var req programRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	name, prog, err := s.resolve(req)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Compile now: submission validates the program and warms the
	// cross-generation cache, so the later swap is a pure cache hit.
	p, err := s.c.Compile(name, prog)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	s.staged = &stagedProgram{name: name, prog: prog}
	s.mu.Unlock()
	rules := 0
	for _, cfg := range p.NES.Configs {
		rules += cfg.Tables.TotalRules()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged":     name,
		"states":     len(p.NES.Configs),
		"events":     len(p.NES.Events),
		"rules":      rules,
		"compile_ms": float64(p.Compile.Microseconds()) / 1000,
	})
}

func (s *server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req programRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
	}
	var name string
	var prog stateful.Program
	fromStaged := req.App == "" && req.Source == ""
	if fromStaged {
		s.mu.Lock()
		st := s.staged
		s.mu.Unlock()
		if st == nil {
			fail(w, http.StatusBadRequest, "no staged program; POST /program first or inline one")
			return
		}
		name, prog = st.name, st.prog
	} else {
		var err error
		if name, prog, err = s.resolve(req); err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	rep, err := s.c.Swap(name, prog)
	if err != nil {
		// The staged program is kept: a failed swap (e.g. one already in
		// progress) must not force the client to resubmit.
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	if fromStaged {
		s.mu.Lock()
		if s.staged != nil && s.staged.name == name {
			s.staged = nil // consumed on success only
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, rep)
}

// expand turns one inject request into its injections: Count copies,
// id-disambiguated when the expansion would otherwise duplicate headers.
func (s *server) expand(ins []dataplane.Injection, req injectRequest) []dataplane.Injection {
	n := req.Count
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		fields := netkat.Packet{}
		for f, v := range req.Fields {
			fields[f] = v
		}
		if n > 1 {
			fields["id"] = int(s.nextID.Add(1))
		}
		ins = append(ins, dataplane.Injection{Host: req.Host, Fields: fields})
	}
	return ins
}

func (s *server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Count-expansions go through the batched ingress: one admission
	// boundary for the whole request instead of one per packet.
	ins := s.expand(nil, req)
	for _, err := range s.c.InjectBatch(ins) {
		if err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"injected": len(ins)})
}

// injectBatchRequest is the body of POST /inject-batch.
type injectBatchRequest struct {
	Packets []injectRequest `json:"packets"`
}

// batchReject reports one rejected packet of a batch.
type batchReject struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

func (s *server) handleInjectBatch(w http.ResponseWriter, r *http.Request) {
	var req injectBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Packets) == 0 {
		fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	var ins []dataplane.Injection
	for _, p := range req.Packets {
		ins = s.expand(ins, p)
	}
	// Partial-batch semantics, like the engine's: bad packets are
	// reported per index, the rest are admitted at one boundary.
	var rejected []batchReject
	for i, err := range s.c.InjectBatch(ins) {
		if err != nil {
			rejected = append(rejected, batchReject{Index: i, Error: err.Error()})
		}
	}
	code := http.StatusOK
	if len(rejected) == len(ins) {
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]any{
		"injected": len(ins) - len(rejected),
		"rejected": rejected,
	})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Status())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.c.Status()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": statsSchemaVersion,
		"version":        version,
		"go_version":     runtime.Version(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"num_cpu":        runtime.NumCPU(),
		"uptime_s":       time.Since(s.start).Seconds(),
		"program":        st.Program,
		"epoch":          st.Epoch,
		"swapping":       st.Swapping,
		"generation":     st.Engine.Generation,
		"processed":      st.Engine.Processed,
		"deliveries":     st.Engine.Deliveries,
		"ttl_dropped":    st.Engine.TTLDropped,
		"pending":        st.Engine.Pending,
		"switches":       st.Engine.Switches,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ok, reason := s.c.Health()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	// Watchdog alerts are degradation, not death: the daemon stays 200
	// (it is alive and forwarding) but reports why it is unhappy, so a
	// probe that wants to alert on degraded can read "degraded".
	alerts := s.c.Alerts()
	resp := map[string]any{"ok": ok, "reason": reason, "degraded": len(alerts) > 0}
	if len(alerts) > 0 {
		resp["alerts"] = alerts
	}
	writeJSON(w, code, resp)
}

// handleFlight serves the flight-recorder dump: the bounded recent
// history of deliveries, detections, swap phases and boundary stats, in
// canonical deterministic order. The dump runs at an engine barrier, so
// it is a consistent snapshot, and it does not consume the rings.
func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	d := s.c.FlightDump()
	if d == nil {
		fail(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleMetrics serves the Prometheus text exposition. The watch gauges
// are refreshed here — scrape time — rather than on the engine's hot
// path.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Metrics == nil {
		fail(w, http.StatusNotFound, "observability disabled")
		return
	}
	if b := s.obs.Bus; b != nil {
		s.obs.Metrics.SetGauge(obs.GaugeWatchSubscribers, int64(b.Subscribers()))
		s.obs.Metrics.SetGauge(obs.GaugeWatchDropped, b.Dropped())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.Metrics.WritePrometheus(w)
	// Go runtime health (GC pause, scheduler latency, heap) rides on the
	// same exposition so one scrape covers engine and runtime.
	if err := obs.WriteRuntimeMetrics(w); err != nil {
		log.Printf("netd: runtime metrics: %v", err)
	}
}

// handleWatch streams the live event feed. Backpressure is strictly
// bounded: the subscription buffer absorbs bursts, overflow is dropped
// and counted on the bus side (never blocking a barrier), and the
// writer below is the only place that ever waits on the client.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Bus == nil {
		fail(w, http.StatusNotFound, "observability disabled")
		return
	}
	buf := s.watchBuf
	if v, err := strconv.Atoi(r.URL.Query().Get("buf")); err == nil && v > 0 && v <= 1<<16 {
		buf = v
	}
	var kinds []string
	if ks := r.URL.Query().Get("kinds"); ks != "" {
		kinds = strings.Split(ks, ",")
	}
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, canFlush := w.(http.Flusher)

	sub := s.obs.Bus.Subscribe(buf, kinds...)
	defer sub.Close()
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	write := func(ev obs.Event) bool {
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: ", ev.Kind); err != nil {
				return false
			}
		}
		if err := enc.Encode(ev); err != nil { // Encode appends the newline
			return false
		}
		if sse {
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return false
			}
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.shutdownCh:
			// Graceful shutdown: drain whatever is already buffered, then
			// say goodbye explicitly so the client can distinguish a clean
			// stop from a crash.
			for {
				select {
				case ev := <-sub.C:
					if !write(ev) {
						return
					}
				default:
					write(obs.Event{Kind: obs.KindShutdown, Note: "server shutting down", Dropped: sub.Dropped()})
					return
				}
			}
		case ev := <-sub.C:
			if !write(ev) {
				return
			}
		case <-hb.C:
			// The heartbeat doubles as the drop-count surface: a consumer
			// too slow for its buffer learns exactly how much it missed.
			if !write(obs.Event{Kind: obs.KindMeta, Note: "heartbeat", Dropped: sub.Dropped()}) {
				return
			}
		}
	}
}

func (s *server) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	s.c.Quiesce()
	writeJSON(w, http.StatusOK, map[string]any{"quiesced": true})
}

// newServer wires the API routes (split out for the smoke test). o is
// the observability layer the controller was built with; nil disables
// /metrics and /watch.
func newServer(c *ctrl.Controller, o *obs.Obs) (*server, http.Handler) {
	s := &server{
		c: c, obs: o, start: time.Now(),
		watchBuf: 256, heartbeat: 15 * time.Second,
		shutdownCh: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("POST /program", s.handleProgram)
	mux.HandleFunc("POST /swap", s.handleSwap)
	mux.HandleFunc("POST /inject", s.handleInject)
	mux.HandleFunc("POST /inject-batch", s.handleInjectBatch)
	mux.HandleFunc("POST /quiesce", s.handleQuiesce)
	return s, mux
}

func main() {
	appName := flag.String("app", "firewall", "initial application (firewall, learning-switch, authentication, bandwidth-cap, ids, walled-garden, distributed-firewall, ring, ids-fattree, failover-diamond, failover-wan, failover-fattree)")
	capN := flag.Int("cap", 10, "bandwidth cap n (for -app bandwidth-cap)")
	diameter := flag.Int("diameter", 3, "ring diameter (for -app ring)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "forwarding workers")
	mode := flag.String("dataplane", "indexed", "forwarding mode: indexed or scan")
	traceSample := flag.Int("trace-sample", 64, "trace every Nth injected packet (0 disables journey tracing)")
	deliverySample := flag.Int("delivery-sample", 16, "publish every Nth delivery on /watch (0 disables the delivery feed)")
	watchBuf := flag.Int("watch-buf", 256, "default per-subscriber /watch event buffer")
	flightCap := flag.Int("flight-cap", obs.DefaultFlightCap, "flight-recorder ring capacity per worker (0 uses the default)")
	debugAddr := flag.String("debug-addr", "", "listen address for the pprof/expvar debug server (empty disables it)")
	flag.Parse()

	m, ok := dataplane.ParseMode(*mode)
	if !ok {
		log.Fatalf("netd: unknown -dataplane %q", *mode)
	}
	a, err := appByName(programRequest{App: *appName, Cap: *capN, Diameter: *diameter})
	if err != nil {
		log.Fatalf("netd: %v", err)
	}

	// The daemon always runs with full observability: the hot path is
	// zero-alloc with metrics on (CI-pinned), so there is nothing to gain
	// from a switch.
	o := &obs.Obs{
		Metrics:        obs.NewMetrics(*workers),
		Bus:            obs.NewBus(),
		Flight:         obs.NewFlight(*flightCap, *workers),
		Watch:          obs.NewWatchdog(obs.WatchOptions{}),
		DeliverySample: *deliverySample,
	}
	if *traceSample > 0 {
		o.Trace = obs.NewTracer(*traceSample, *workers)
	}

	// Bound the delivery log: a daemon must not retain every packet it
	// ever delivered. A wedged swap dumps the flight record to stderr
	// automatically so the stuck drain can be diagnosed post hoc.
	c := ctrl.New(a.Topo, ctrl.Options{
		Workers: *workers, Mode: m, DeliveryLog: 1 << 16, Obs: o,
		OnWedgeDump: func(d *obs.FlightDump) {
			if d == nil {
				return
			}
			b, err := json.Marshal(d)
			if err != nil {
				log.Printf("netd: wedge flight dump: %v", err)
				return
			}
			log.Printf("netd: swap wedged; flight dump (%d records): %s", len(d.Records), b)
		},
	})
	if err := c.Load(a.Name, a.Prog); err != nil {
		log.Fatalf("netd: loading %s: %v", a.Name, err)
	}
	s, handler := newServer(c, o)
	s.watchBuf = *watchBuf
	srv := &http.Server{Addr: *addr, Handler: handler}

	go func() {
		log.Printf("netd: %s serving %s on %s (%d workers, %s dataplane)", version, a.Name, *addr, *workers, m)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("netd: %v", err)
		}
	}()

	if *debugAddr != "" {
		// pprof and expvar live on their own listener so profiling access
		// can be firewalled separately from the public API. The handlers
		// are registered explicitly: the side-effect registration of
		// net/http/pprof only reaches http.DefaultServeMux.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("netd: debug server (pprof, expvar) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil && err != http.ErrServerClosed {
				log.Printf("netd: debug server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	for got := range sig {
		if got == syscall.SIGQUIT {
			// Operator snapshot: dump the flight record and keep serving.
			// (Notify on SIGQUIT replaces the runtime's stack-dump-and-die
			// default, which is exactly the point.)
			if d := c.FlightDump(); d != nil {
				if b, err := json.Marshal(d); err == nil {
					log.Printf("netd: SIGQUIT flight dump (%d records): %s", len(d.Records), b)
				}
			}
			continue
		}
		break
	}
	log.Printf("netd: shutting down")
	s.beginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("netd: shutdown: %v", err)
	}
	c.Close()
}
