package trace

import (
	"testing"

	"eventnet/internal/netkat"
)

// benchTrace builds a synthetic 200-point network trace of sequential
// firewall-style journeys.
func benchTrace() (*NetTrace, map[netkat.Location]bool) {
	hosts := map[netkat.Location]bool{loc(101, 0): true, loc(104, 0): true}
	nt := &NetTrace{}
	p := netkat.Packet{"dst": 104}
	for i := 0; i < 25; i++ {
		a := nt.Append(dp(p, loc(101, 0), true))
		b := nt.Append(dp(p, loc(1, 2), false))
		c := nt.Append(dp(p, loc(1, 1), true))
		d := nt.Append(dp(p, loc(4, 1), false))
		e := nt.Append(dp(p, loc(4, 2), true))
		f := nt.Append(dp(p, loc(104, 0), false))
		nt.Trees = append(nt.Trees, []int{a, b, c, d, e, f})
	}
	return nt, hosts
}

func BenchmarkHappensBefore(b *testing.B) {
	nt, _ := benchTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HappensBefore(nt)
	}
}

func BenchmarkValidate(b *testing.B) {
	nt, hosts := benchTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := nt.Validate(hosts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckUpdate(b *testing.B) {
	nt, hosts := benchTrace()
	u, _, _ := firewallish()
	// All journeys are outgoing; the first one triggers the event.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := CheckUpdate(nt, u, nil, hosts); err != nil {
			b.Fatal(err)
		}
	}
}
