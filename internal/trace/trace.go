// Package trace implements the semantic machinery of Section 2 of the
// paper: network traces, the happens-before relation (Definition 1),
// membership in Traces(C), first occurrences FO(ntr, U), and the
// correctness checkers for event-driven consistent updates (Definition 2)
// and network event structures (Definition 6).
//
// The checkers are deliberately independent of the runtime in
// internal/runtime: they judge recorded executions from the definitions
// alone, so they can validate the correct implementation and convict the
// uncoordinated baseline.
package trace

import (
	"fmt"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// NetTrace is a network trace ntr = (lp0 lp1 ..., T): an interleaved
// sequence of located packets together with the set T of packet traces,
// each an increasing sequence of indices into the located-packet sequence.
type NetTrace struct {
	Packets []netkat.DPacket
	Trees   [][]int
}

// Append adds a trace point and returns its index.
func (nt *NetTrace) Append(d netkat.DPacket) int {
	nt.Packets = append(nt.Packets, d)
	return len(nt.Packets) - 1
}

// PacketTrace returns the trace points of tree t.
func (nt *NetTrace) PacketTrace(t []int) []netkat.DPacket {
	out := make([]netkat.DPacket, len(t))
	for i, k := range t {
		out[i] = nt.Packets[k]
	}
	return out
}

// Validate checks the three conditions of the network-trace definition:
// every index belongs to some packet trace; every packet trace is
// increasing and starts at a host; and the successor graph forms a family
// of trees (each index has at most one predecessor).
func (nt *NetTrace) Validate(hosts map[netkat.Location]bool) error {
	covered := make([]bool, len(nt.Packets))
	parent := map[int]int{}
	for ti, t := range nt.Trees {
		if len(t) == 0 {
			return fmt.Errorf("trace: tree %d is empty", ti)
		}
		if !hosts[nt.Packets[t[0]].Loc] || !nt.Packets[t[0]].Out {
			return fmt.Errorf("trace: tree %d does not start at a host emission (starts at %v)", ti, nt.Packets[t[0]])
		}
		for i, k := range t {
			if k < 0 || k >= len(nt.Packets) {
				return fmt.Errorf("trace: tree %d index %d out of range", ti, k)
			}
			covered[k] = true
			if i > 0 {
				if k <= t[i-1] {
					return fmt.Errorf("trace: tree %d is not increasing at position %d", ti, i)
				}
				if p, ok := parent[k]; ok && p != t[i-1] {
					return fmt.Errorf("trace: index %d has two predecessors (%d and %d)", k, p, t[i-1])
				}
				parent[k] = t[i-1]
			}
		}
	}
	for k, ok := range covered {
		if !ok {
			return fmt.Errorf("trace: index %d belongs to no packet trace", k)
		}
	}
	return nil
}

// HB is the happens-before relation of Definition 1, closed transitively.
type HB struct {
	n     int
	reach []uint64 // n x ceil(n/64) bit matrix: reach[i*w+j/64] bit j
	w     int
}

// HappensBefore computes the least partial order that respects (a) the
// total order induced by the trace at each switch and (b) the order along
// each packet trace.
func HappensBefore(nt *NetTrace) *HB {
	n := len(nt.Packets)
	w := (n + 63) / 64
	hb := &HB{n: n, w: w, reach: make([]uint64, n*w)}
	// Direct edges.
	adj := make([][]int, n)
	// (a) same-switch chains: for each node ID, consecutive occurrences.
	last := map[int]int{}
	for i, lp := range nt.Packets {
		if j, ok := last[lp.Loc.Switch]; ok {
			adj[j] = append(adj[j], i)
		}
		last[lp.Loc.Switch] = i
	}
	// (b) per-packet-trace chains.
	for _, t := range nt.Trees {
		for i := 0; i+1 < len(t); i++ {
			adj[t[i]] = append(adj[t[i]], t[i+1])
		}
	}
	// Transitive closure: edges only go forward, so a reverse sweep works.
	for i := n - 1; i >= 0; i-- {
		row := hb.reach[i*w : (i+1)*w]
		for _, j := range adj[i] {
			row[j/64] |= 1 << uint(j%64)
			rj := hb.reach[j*w : (j+1)*w]
			for k := 0; k < w; k++ {
				row[k] |= rj[k]
			}
		}
	}
	return hb
}

// Before reports lp_i ≺ lp_j.
func (hb *HB) Before(i, j int) bool {
	return hb.reach[i*hb.w+j/64]&(1<<uint(j%64)) != 0
}

// InTraces reports whether a packet trace belongs to Traces(C): it starts
// at a host, each consecutive pair is a C-step, and it is complete — it
// either ends absorbed at a host or at a located packet with no C-successor
// (a packet C drops). Completeness is what lets the oracle distinguish "C
// dropped this packet" from "the packet was processed by a different C".
func InTraces(c netkat.DConfig, pt []netkat.DPacket, hosts map[netkat.Location]bool) bool {
	if len(pt) == 0 || !hosts[pt[0].Loc] || !pt[0].Out {
		return false
	}
	for i := 0; i+1 < len(pt); i++ {
		found := false
		for _, next := range c.DStep(pt[i]) {
			if next.Equal(pt[i+1]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	last := pt[len(pt)-1]
	if hosts[last.Loc] && !last.Out {
		return true // absorbed at a host
	}
	return len(c.DStep(last)) == 0 // dropped by C
}

// Update is an event-driven consistent update (U, E): the sequence
// C0 -e0-> C1 -e1-> ... -en-> Cn+1, with len(Configs) == len(Events)+1.
type Update struct {
	Configs []netkat.DConfig
	Events  []nes.Event
}

// FirstOccurrences computes FO(ntr, U): the indices k0 < ... < kn where
// each ki is the first occurrence of event ei after k(i-1), some packet
// trace through ki is in Traces(Ci), and no *pending* event occurs after
// kn. It reports ok=false if no such sequence exists.
//
// `pending` is the set of events that would extend the update: events
// enabled after U's events but not consumed by U. A packet that merely
// re-matches the pattern of a consumed event (the bandwidth cap's renamed
// copies, a second firewall-opening packet) is not an occurrence — an NES
// event happens at most once — and a pattern match of a not-yet-enabled
// event (the IDS's H4->H2 traffic in the initial state) triggers nothing.
// The caller computes pending from the NES's enabling relation.
func FirstOccurrences(nt *NetTrace, u Update, pending []nes.Event, hosts map[netkat.Location]bool) ([]int, bool) {
	ks := make([]int, 0, len(u.Events))
	prev := -1
	for i, e := range u.Events {
		ki := -1
		for j := prev + 1; j < len(nt.Packets); j++ {
			if e.MatchesD(nt.Packets[j]) {
				ki = j
				break
			}
		}
		if ki < 0 {
			return nil, false
		}
		// The event must be triggered by a packet processed in the
		// immediately preceding configuration Ci.
		ok := false
		for _, t := range nt.Trees {
			hasKi := false
			for _, k := range t {
				if k == ki {
					hasKi = true
					break
				}
			}
			if hasKi && InTraces(u.Configs[i], nt.PacketTrace(t), hosts) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, false
		}
		ks = append(ks, ki)
		prev = ki
	}
	// No pending event may occur after kn.
	for j := prev + 1; j < len(nt.Packets); j++ {
		for _, e := range pending {
			if e.MatchesD(nt.Packets[j]) {
				return nil, false
			}
		}
	}
	return ks, true
}

// Violation describes how a network trace breaks Definition 2.
type Violation struct {
	Tree   int
	Reason string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("trace: packet trace %d: %s", v.Tree, v.Reason)
}

// CheckUpdate verifies Definition 2: the network trace is correct with
// respect to the update (U, E) — every packet trace is processed entirely
// by one configuration, packets wholly before event ei see only
// configurations up to Ci, and packets wholly after see only Ci+1 onward.
func CheckUpdate(nt *NetTrace, u Update, pending []nes.Event, hosts map[netkat.Location]bool) error {
	if len(u.Configs) != len(u.Events)+1 {
		return fmt.Errorf("trace: malformed update: %d configs for %d events", len(u.Configs), len(u.Events))
	}
	ks, ok := FirstOccurrences(nt, u, pending, hosts)
	if !ok {
		return fmt.Errorf("trace: FO(ntr, U) does not exist")
	}
	hb := HappensBefore(nt)
	for ti, t := range nt.Trees {
		pt := nt.PacketTrace(t)
		inC := make([]bool, len(u.Configs))
		any := false
		for c := range u.Configs {
			inC[c] = InTraces(u.Configs[c], pt, hosts)
			any = any || inC[c]
		}
		if !any {
			return &Violation{Tree: ti, Reason: "not processed entirely by any single configuration"}
		}
		for i, ki := range ks {
			allBefore := true
			allAfter := true
			for _, j := range t {
				if !hb.Before(j, ki) {
					allBefore = false
				}
				if !hb.Before(ki, j) {
					allAfter = false
				}
			}
			if allBefore {
				okPre := false
				for c := 0; c <= i; c++ {
					if inC[c] {
						okPre = true
						break
					}
				}
				if !okPre {
					return &Violation{Tree: ti, Reason: fmt.Sprintf("happens wholly before event %d (index %d) but is not processed by any of C0..C%d (update too early)", i, ki, i)}
				}
			}
			if allAfter {
				okPost := false
				for c := i + 1; c < len(u.Configs); c++ {
					if inC[c] {
						okPost = true
						break
					}
				}
				if !okPost {
					return &Violation{Tree: ti, Reason: fmt.Sprintf("happens wholly after event %d (index %d) but is not processed by any of C%d..C%d (update too late)", i, ki, i+1, len(u.Configs)-1)}
				}
			}
		}
	}
	return nil
}

// CheckNES verifies Definition 6: the network trace is correct with
// respect to the NES — some event sequence allowed by the NES (possibly
// empty) makes the trace correct per Definition 2. For each candidate
// sequence, the forbidden "pending" events are those enabled at the
// sequence's final event-set but not consumed by it: their occurrence
// would have extended the update.
func CheckNES(nt *NetTrace, n *nes.NES, hosts map[netkat.Location]bool) error {
	seqs, err := n.AllowedSequences()
	if err != nil {
		return err
	}
	all := append([][]int{{}}, seqs...)
	var lastErr error
	for _, seq := range all {
		u, final, ok := updateFor(n, seq)
		if !ok {
			continue
		}
		var pending []nes.Event
		for _, ev := range n.Events {
			if !final.Has(ev.ID) && n.Enables(final, ev.ID) && n.Con(final.With(ev.ID)) {
				pending = append(pending, ev)
			}
		}
		if err := CheckUpdate(nt, u, pending, hosts); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no allowed event sequence matches the trace")
	}
	return fmt.Errorf("trace: no allowed sequence of the NES makes the trace correct (last: %v)", lastErr)
}

// updateFor builds the update g(∅) -e0-> g({e0}) -e1-> ... for an allowed
// sequence, returning also the sequence's final event-set.
func updateFor(n *nes.NES, seq []int) (Update, nes.Set, bool) {
	u := Update{}
	s := nes.Empty
	c, ok := n.ConfigAt(s)
	if !ok {
		return Update{}, s, false
	}
	u.Configs = append(u.Configs, n.Configs[c].Rel)
	for _, e := range seq {
		s = s.With(e)
		c, ok := n.ConfigAt(s)
		if !ok {
			return Update{}, s, false
		}
		u.Configs = append(u.Configs, n.Configs[c].Rel)
		u.Events = append(u.Events, n.Events[e])
	}
	return u, s, true
}
