package trace

import (
	"testing"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

func loc(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }

func dp(fields netkat.Packet, l netkat.Location, out bool) netkat.DPacket {
	return netkat.DPacket{Pkt: fields, Loc: l, Out: out}
}

// tableConfig is a hand-written DConfig for oracle tests: a map from
// directed points to successors.
type tableConfig map[string][]netkat.DPacket

func (c tableConfig) DStep(d netkat.DPacket) []netkat.DPacket { return c[d.Key()] }

func (c tableConfig) add(from netkat.DPacket, to ...netkat.DPacket) { c[from.Key()] = to }

func TestValidate(t *testing.T) {
	hosts := map[netkat.Location]bool{loc(101, 0): true}
	p := netkat.Packet{"dst": 1}
	nt := &NetTrace{}
	nt.Append(dp(p, loc(101, 0), true))
	nt.Append(dp(p, loc(1, 2), false))
	nt.Trees = [][]int{{0, 1}}
	if err := nt.Validate(hosts); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	// Uncovered index.
	nt2 := &NetTrace{}
	nt2.Append(dp(p, loc(101, 0), true))
	nt2.Append(dp(p, loc(1, 2), false))
	nt2.Trees = [][]int{{0}}
	if err := nt2.Validate(hosts); err == nil {
		t.Error("uncovered index accepted")
	}
	// Non-host root.
	nt3 := &NetTrace{}
	nt3.Append(dp(p, loc(1, 2), false))
	nt3.Trees = [][]int{{0}}
	if err := nt3.Validate(hosts); err == nil {
		t.Error("non-host root accepted")
	}
	// Two parents for one index.
	nt4 := &NetTrace{}
	nt4.Append(dp(p, loc(101, 0), true))
	nt4.Append(dp(p, loc(101, 0), true))
	nt4.Append(dp(p, loc(1, 2), false))
	nt4.Trees = [][]int{{0, 2}, {1, 2}}
	if err := nt4.Validate(hosts); err == nil {
		t.Error("two-parent trace accepted")
	}
}

// TestHappensBefore checks both generators and transitivity on a trace
// shaped like the paper's Figure 2 discussion.
func TestHappensBefore(t *testing.T) {
	p := netkat.Packet{"dst": 1}
	q := netkat.Packet{"dst": 2}
	nt := &NetTrace{}
	// Packet p: host -> s4 -> s1; packet q: host2 -> s1 later.
	i0 := nt.Append(dp(p, loc(101, 0), true)) // 0
	i1 := nt.Append(dp(p, loc(4, 1), false))  // 1 at s4
	i2 := nt.Append(dp(p, loc(1, 1), false))  // 2 at s1
	i3 := nt.Append(dp(q, loc(102, 0), true)) // 3
	i4 := nt.Append(dp(q, loc(1, 2), false))  // 4 at s1 (after 2)
	nt.Trees = [][]int{{i0, i1, i2}, {i3, i4}}
	hb := HappensBefore(nt)

	if !hb.Before(i0, i2) {
		t.Error("packet-trace order not transitive")
	}
	if !hb.Before(i2, i4) {
		t.Error("same-switch order missing (both at s1)")
	}
	if !hb.Before(i1, i4) {
		t.Error("transitivity through s1 missing")
	}
	if hb.Before(i4, i1) {
		t.Error("happens-before not antisymmetric")
	}
	if hb.Before(i3, i1) {
		t.Error("unrelated events ordered")
	}
	if hb.Before(i1, i1) {
		t.Error("happens-before not irreflexive")
	}
}

func TestInTraces(t *testing.T) {
	hosts := map[netkat.Location]bool{loc(101, 0): true, loc(104, 0): true}
	p := netkat.Packet{"dst": 104}
	h1 := dp(p, loc(101, 0), true)
	in1 := dp(p, loc(1, 2), false)
	out1 := dp(p, loc(1, 1), true)
	in4 := dp(p, loc(4, 1), false)
	out4 := dp(p, loc(4, 2), true)
	h4 := dp(p, loc(104, 0), false)

	fwd := tableConfig{}
	fwd.add(h1, in1)
	fwd.add(in1, out1)
	fwd.add(out1, in4)
	fwd.add(in4, out4)
	fwd.add(out4, h4)

	full := []netkat.DPacket{h1, in1, out1, in4, out4, h4}
	if !InTraces(fwd, full, hosts) {
		t.Error("complete delivery rejected")
	}
	// A proper prefix is not complete (the packet has a successor).
	if InTraces(fwd, full[:4], hosts) {
		t.Error("incomplete prefix accepted")
	}
	// A drop under a config with no successor is complete.
	drop := tableConfig{}
	drop.add(h1, in1)
	if !InTraces(drop, []netkat.DPacket{h1, in1}, hosts) {
		t.Error("dropped-packet trace rejected")
	}
	// Traces must start at a host emission.
	if InTraces(fwd, full[1:], hosts) {
		t.Error("non-host start accepted")
	}
	// A wrong intermediate step fails.
	bad := []netkat.DPacket{h1, in1, in4}
	if InTraces(fwd, bad, hosts) {
		t.Error("skipping step accepted")
	}
}

// firewallish builds a two-config update: C0 drops dst=101 at s4, C1
// forwards it; both forward dst=104 from s1 to s4.
func firewallish() (Update, []nes.Event, map[netkat.Location]bool) {
	hosts := map[netkat.Location]bool{loc(101, 0): true, loc(104, 0): true}
	out := netkat.Packet{"dst": 104}
	back := netkat.Packet{"dst": 101}
	mk := func(withBack bool) tableConfig {
		c := tableConfig{}
		c.add(dp(out, loc(101, 0), true), dp(out, loc(1, 2), false))
		c.add(dp(out, loc(1, 2), false), dp(out, loc(1, 1), true))
		c.add(dp(out, loc(1, 1), true), dp(out, loc(4, 1), false))
		c.add(dp(out, loc(4, 1), false), dp(out, loc(4, 2), true))
		c.add(dp(out, loc(4, 2), true), dp(out, loc(104, 0), false))
		c.add(dp(back, loc(104, 0), true), dp(back, loc(4, 2), false))
		if withBack {
			c.add(dp(back, loc(4, 2), false), dp(back, loc(4, 1), true))
			c.add(dp(back, loc(4, 1), true), dp(back, loc(1, 1), false))
			c.add(dp(back, loc(1, 1), false), dp(back, loc(1, 2), true))
			c.add(dp(back, loc(1, 2), true), dp(back, loc(101, 0), false))
		}
		return c
	}
	g := netkat.NewConj()
	g.AddEq("dst", 104)
	ev := nes.Event{ID: 0, Guard: g, Loc: loc(4, 1), Occurrence: 1}
	return Update{Configs: []netkat.DConfig{mk(false), mk(true)}, Events: []nes.Event{ev}}, []nes.Event{ev}, hosts
}

// TestCheckUpdateAccepts: the canonical correct firewall trace.
func TestCheckUpdateAccepts(t *testing.T) {
	u, _, hosts := firewallish()
	out := netkat.Packet{"dst": 104}
	back := netkat.Packet{"dst": 101}
	nt := &NetTrace{}
	nt.Append(dp(out, loc(101, 0), true))  // 0
	nt.Append(dp(out, loc(1, 2), false))   // 1
	nt.Append(dp(out, loc(1, 1), true))    // 2
	nt.Append(dp(out, loc(4, 1), false))   // 3 = k0
	nt.Append(dp(out, loc(4, 2), true))    // 4
	nt.Append(dp(out, loc(104, 0), false)) // 5
	nt.Append(dp(back, loc(104, 0), true)) // 6 (after hearing)
	nt.Append(dp(back, loc(4, 2), false))  // 7
	nt.Append(dp(back, loc(4, 1), true))   // 8
	nt.Append(dp(back, loc(1, 1), false))  // 9
	nt.Append(dp(back, loc(1, 2), true))   // 10
	nt.Append(dp(back, loc(101, 0), false))
	nt.Trees = [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	if err := CheckUpdate(nt, u, nil, hosts); err != nil {
		t.Fatalf("correct trace rejected: %v", err)
	}
}

// TestCheckUpdateTooLate: after the event is heard at H4, dropping the
// reply violates the "not too late" clause.
func TestCheckUpdateTooLate(t *testing.T) {
	u, _, hosts := firewallish()
	out := netkat.Packet{"dst": 104}
	back := netkat.Packet{"dst": 101}
	nt := &NetTrace{}
	nt.Append(dp(out, loc(101, 0), true))
	nt.Append(dp(out, loc(1, 2), false))
	nt.Append(dp(out, loc(1, 1), true))
	nt.Append(dp(out, loc(4, 1), false)) // k0
	nt.Append(dp(out, loc(4, 2), true))
	nt.Append(dp(out, loc(104, 0), false))
	nt.Append(dp(back, loc(104, 0), true)) // 6
	nt.Append(dp(back, loc(4, 2), false))  // 7: dropped here (C0 behavior)
	nt.Trees = [][]int{{0, 1, 2, 3, 4, 5}, {6, 7}}
	err := CheckUpdate(nt, u, nil, hosts)
	if err == nil {
		t.Fatal("too-late drop accepted")
	}
	v, ok := err.(*Violation)
	if !ok || v.Tree != 1 {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCheckUpdateFlexibleWindow: a reply sent concurrently with the event
// (H4 has not heard) may be dropped — the definition's flexibility.
func TestCheckUpdateFlexibleWindow(t *testing.T) {
	u, _, hosts := firewallish()
	out := netkat.Packet{"dst": 104}
	back := netkat.Packet{"dst": 101}
	nt := &NetTrace{}
	nt.Append(dp(back, loc(104, 0), true)) // 0: H4 sends before hearing
	nt.Append(dp(out, loc(101, 0), true))  // 1
	nt.Append(dp(out, loc(1, 2), false))
	nt.Append(dp(out, loc(1, 1), true))
	nt.Append(dp(out, loc(4, 1), false)) // 4 = k0
	nt.Append(dp(out, loc(4, 2), true))
	nt.Append(dp(out, loc(104, 0), false))
	nt.Append(dp(back, loc(4, 2), false)) // 7: drop is allowed (not wholly after)
	nt.Trees = [][]int{{0, 7}, {1, 2, 3, 4, 5, 6}}
	if err := CheckUpdate(nt, u, nil, hosts); err != nil {
		t.Fatalf("concurrent drop rejected: %v", err)
	}
}

// TestFirstOccurrencesPendingRejects: a pending (enabled, unconsumed)
// event occurring after kn invalidates FO.
func TestFirstOccurrencesPendingRejects(t *testing.T) {
	u, evs, hosts := firewallish()
	out := netkat.Packet{"dst": 104}
	nt := &NetTrace{}
	nt.Append(dp(out, loc(101, 0), true))
	nt.Append(dp(out, loc(1, 2), false))
	nt.Append(dp(out, loc(1, 1), true))
	nt.Append(dp(out, loc(4, 1), false)) // matches the event
	nt.Append(dp(out, loc(4, 2), true))
	nt.Append(dp(out, loc(104, 0), false))
	nt.Trees = [][]int{{0, 1, 2, 3, 4, 5}}
	// Empty update, the event pending: must fail.
	empty := Update{Configs: u.Configs[:1]}
	if _, ok := FirstOccurrences(nt, empty, evs, hosts); ok {
		t.Error("pending event after kn accepted")
	}
	// Full update consuming the event: must succeed.
	if _, ok := FirstOccurrences(nt, u, nil, hosts); !ok {
		t.Error("consumed event rejected")
	}
}
