package dataplane

import (
	"sync"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// Packet is one packet presented to (or emitted by) the dataplane: header
// fields plus its location and the Section 4.1 metadata — the
// configuration tag selecting which compiled configuration processes it
// and the event digest it gossips.
type Packet struct {
	Fields  netkat.Packet
	Switch  int
	Port    int // ingress port on input, egress port on output
	Version int // configuration tag (index into the NES's configs)
	Digest  nes.Set
}

// Plan is an NES with every (configuration, switch) flow table compiled
// to a Matcher, plus the program's header Schema and (built lazily, for
// the Engine's hop loop) the flat-lowered mirror of every matcher. Plans
// are immutable after construction and safe for concurrent use.
type Plan struct {
	mode     Mode
	nes      *nes.NES
	matchers []map[int]Matcher // [config][switch]

	// Schema construction and flat lowering are deferred until an Engine
	// adopts the plan: the sim planes and runtime.Machine forward through
	// the map-form matchers and never pay for either (ModeScan plans in
	// particular stay the cheap wrap-without-copying they always were).
	schemaOnce sync.Once
	schema     *Schema
	flatOnce   sync.Once
	flats      []map[int]*flatTable // [config][switch]
}

// ForNES compiles a plan for the NES in the given mode. ModeScan wraps
// the existing tables without copying; ModeIndexed compiles each table's
// index once, amortizing it over every packet forwarded afterwards.
func ForNES(n *nes.NES, mode Mode) *Plan {
	p := &Plan{mode: mode, nes: n, matchers: make([]map[int]Matcher, len(n.Configs))}
	for ci := range n.Configs {
		ms := make(map[int]Matcher, len(n.Configs[ci].Tables))
		for sw, t := range n.Configs[ci].Tables {
			if mode == ModeScan {
				ms[sw] = Scan{Table: t}
			} else {
				ms[sw] = Compile(t)
			}
		}
		p.matchers[ci] = ms
	}
	return p
}

// Schema returns the plan's header schema, building it on first use.
func (p *Plan) Schema() *Schema {
	p.schemaOnce.Do(func() { p.schema = SchemaFor(p.nes) })
	return p.schema
}

// ensureFlat lowers every matcher of the plan to its flat form, once.
func (p *Plan) ensureFlat() {
	p.flatOnce.Do(func() {
		s := p.Schema()
		p.flats = make([]map[int]*flatTable, len(p.matchers))
		for ci, ms := range p.matchers {
			fm := make(map[int]*flatTable, len(ms))
			for sw, m := range ms {
				switch t := m.(type) {
				case *CompiledTable:
					fm[sw] = newFlatIndexed(t, s)
				case Scan:
					fm[sw] = newFlatScan(t.Table, s)
				}
			}
			p.flats[ci] = fm
		}
	})
}

// planCache memoizes indexed plans keyed by program identity (the *nes.NES
// value: one compiled program = one NES instance), so the many short-lived
// machines the runtime property tests spin up over one NES compile its
// indexes exactly once.
//
// The multi-program world of the live controller makes the lifecycle
// explicit: a retired program's plan must be droppable (Invalidate), a
// dropped entry must recompile from the NES's *current* tables on the next
// PlanFor, and filling the cache must never evict the plans that active
// programs are forwarding with mid-swap — so eviction removes the
// least-recently-used half instead of clearing wholesale.
var (
	planMu    sync.Mutex
	planCache = map[*nes.NES]*planEntry{}
	planTick  uint64
)

// planEntry stamps a cached plan with its last use for LRU eviction.
type planEntry struct {
	plan *Plan
	used uint64
}

// planCacheLimit bounds planCache; past it the least-recently-used half
// is evicted.
const planCacheLimit = 128

// PlanFor returns the cached indexed plan for the NES, compiling it on
// first use.
func PlanFor(n *nes.NES) *Plan {
	planMu.Lock()
	defer planMu.Unlock()
	planTick++
	if e, ok := planCache[n]; ok {
		e.used = planTick
		return e.plan
	}
	if len(planCache) >= planCacheLimit {
		evictOldestLocked(len(planCache) / 2)
	}
	p := ForNES(n, ModeIndexed)
	planCache[n] = &planEntry{plan: p, used: planTick}
	return p
}

// evictOldestLocked drops the k least-recently-used entries.
func evictOldestLocked(k int) {
	for ; k > 0; k-- {
		var victim *nes.NES
		oldest := uint64(0)
		for n, e := range planCache {
			if victim == nil || e.used < oldest {
				victim, oldest = n, e.used
			}
		}
		if victim == nil {
			return
		}
		delete(planCache, victim)
	}
}

// Invalidate drops the cached plan for a program, releasing the NES and
// its compiled indexes. The live controller calls this after retiring a
// program: the cache key is the NES identity, so without invalidation the
// cache would pin every program a long-lived process ever ran — and a
// later PlanFor for the same NES would serve the stale pre-swap plan
// rather than compiling the tables as they stand.
func Invalidate(n *nes.NES) {
	planMu.Lock()
	delete(planCache, n)
	planMu.Unlock()
}

// PlanCacheLen reports the number of cached plans (for tests and
// monitoring).
func PlanCacheLen() int {
	planMu.Lock()
	defer planMu.Unlock()
	return len(planCache)
}

// PlanForMode resolves the plan for a forwarding mode: scan plans wrap
// the tables in place (cheap, never cached), indexed plans come from the
// shared cache. The sim planes and the Engine both dispatch through
// this.
func PlanForMode(n *nes.NES, mode Mode) *Plan {
	if mode == ModeScan {
		return ForNES(n, ModeScan)
	}
	return PlanFor(n)
}

// Mode returns the plan's forwarding mode.
func (p *Plan) Mode() Mode { return p.mode }

// Matcher returns the matcher for a configuration's switch, or nil when
// the configuration installs no table there (default drop).
func (p *Plan) Matcher(version, sw int) Matcher {
	if version < 0 || version >= len(p.matchers) {
		return nil
	}
	return p.matchers[version][sw]
}

// Process is the amortized batch API: every input packet is matched
// against its (version, switch) table and the emitted copies are appended
// to out — same switch, egress port in Port, version and digest carried
// through unchanged. Passing out's previous backing array (out[:0])
// across calls makes the steady state allocation-free apart from the
// clones rewriting action groups need.
func (p *Plan) Process(in []Packet, out []Packet) []Packet {
	var scratch []flowtable.Output // reused across the batch
	for i := range in {
		pk := &in[i]
		m := p.Matcher(pk.Version, pk.Switch)
		if m == nil {
			continue
		}
		scratch = m.Process(scratch[:0], pk.Fields, pk.Port, 0)
		for _, o := range scratch {
			out = append(out, Packet{
				Fields:  o.Pkt,
				Switch:  pk.Switch,
				Port:    o.Port,
				Version: pk.Version,
				Digest:  pk.Digest,
			})
		}
	}
	return out
}

// Merged builds the Section 5.3 deployment shape: one table per switch
// holding every configuration's rules behind an exact version guard, so a
// single physical table serves all configurations and a packet's tag
// selects its slice. Looking up (pkt, port, tag c) in a merged table is
// equivalent to looking up (pkt, port, 0) in configuration c's own table:
// guards with the same mask and different values never admit the same
// tag, and the stable priority sort preserves each configuration's
// internal rule order. This is where guard partitioning pays off most —
// the linear scan walks every configuration's rules, the compiled matcher
// jumps straight to the tag's partition.
func Merged(n *nes.NES) flowtable.Tables {
	return mergedInto(flowtable.Tables{}, n, 0, guardBits(len(n.Configs)))
}

// guardBits returns the tag width covering n configurations.
func guardBits(n int) int {
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	return bits
}

// mergedInto appends every configuration of n, tag-offset by off, into
// dst under exact guards of the given width.
func mergedInto(dst flowtable.Tables, n *nes.NES, off, bits int) flowtable.Tables {
	for ci := range n.Configs {
		guard := flowtable.ExactGuard(uint32(off+ci), bits)
		for sw, t := range n.Configs[ci].Tables {
			var rs []flowtable.Rule
			for _, r := range t.Rules {
				m := r.Match.Clone()
				m.Guard = guard
				// The IR is guard-free, so the re-guarded copy shares it.
				rs = append(rs, flowtable.Rule{Priority: r.Priority, Match: m, Groups: r.Groups, IR: r.IR})
			}
			dst.Get(sw).AddAll(rs)
		}
	}
	return dst
}

// MergedPair builds the staged-install deployment shape of a live program
// swap: one physical table per switch holding *both* programs' rules —
// the running program's configurations at tags [0, |P|) and the incoming
// program's behind fresh exact version guards at tags [off, off+|P'|),
// with off = |P|. Installing this table is phase one of the two-phase
// update: it changes the forwarding of no in-flight packet (their tags
// all lie below off and exact guards with the same mask never admit
// another program's tags), yet the moment ingress tagging flips to
// off+c, packets follow P' rules exclusively. The returned offset is the
// tag displacement of the new program's configurations.
func MergedPair(old, new_ *nes.NES) (flowtable.Tables, int) {
	off := len(old.Configs)
	bits := guardBits(off + len(new_.Configs))
	dst := mergedInto(flowtable.Tables{}, old, 0, bits)
	dst = mergedInto(dst, new_, off, bits)
	return dst, off
}

// Flat returns the plan's flat matcher for a configuration's switch (ok
// is false when the configuration installs no table there). The flat
// mirror is lowered on first use.
func (p *Plan) Flat(version, sw int) (FlatMatcher, bool) {
	p.ensureFlat()
	if version < 0 || version >= len(p.flats) {
		return FlatMatcher{}, false
	}
	ft, ok := p.flats[version][sw]
	if !ok {
		return FlatMatcher{}, false
	}
	return FlatMatcher{schema: p.Schema(), ft: ft}, true
}
