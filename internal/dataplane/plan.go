package dataplane

import (
	"sync"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// Packet is one packet presented to (or emitted by) the dataplane: header
// fields plus its location and the Section 4.1 metadata — the
// configuration tag selecting which compiled configuration processes it
// and the event digest it gossips.
type Packet struct {
	Fields  netkat.Packet
	Switch  int
	Port    int // ingress port on input, egress port on output
	Version int // configuration tag (index into the NES's configs)
	Digest  nes.Set
}

// Plan is an NES with every (configuration, switch) flow table compiled
// to a Matcher. Plans are immutable after construction and safe for
// concurrent use.
type Plan struct {
	mode     Mode
	matchers []map[int]Matcher // [config][switch]
}

// ForNES compiles a plan for the NES in the given mode. ModeScan wraps
// the existing tables without copying; ModeIndexed compiles each table's
// index once, amortizing it over every packet forwarded afterwards.
func ForNES(n *nes.NES, mode Mode) *Plan {
	p := &Plan{mode: mode, matchers: make([]map[int]Matcher, len(n.Configs))}
	for ci := range n.Configs {
		ms := make(map[int]Matcher, len(n.Configs[ci].Tables))
		for sw, t := range n.Configs[ci].Tables {
			if mode == ModeScan {
				ms[sw] = Scan{Table: t}
			} else {
				ms[sw] = Compile(t)
			}
		}
		p.matchers[ci] = ms
	}
	return p
}

// planCache memoizes indexed plans per NES, so the many short-lived
// machines the runtime property tests spin up over one NES compile its
// indexes exactly once. The cache is bounded: when it fills, it is
// cleared wholesale rather than pinning every NES a long-lived process
// ever compiled — a cold plan rebuilds in microseconds.
var (
	planMu    sync.Mutex
	planCache = map[*nes.NES]*Plan{}
)

// planCacheLimit bounds planCache; past it the cache resets.
const planCacheLimit = 128

// PlanFor returns the cached indexed plan for the NES, compiling it on
// first use.
func PlanFor(n *nes.NES) *Plan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	if len(planCache) >= planCacheLimit {
		clear(planCache)
	}
	p := ForNES(n, ModeIndexed)
	planCache[n] = p
	return p
}

// PlanForMode resolves the plan for a forwarding mode: scan plans wrap
// the tables in place (cheap, never cached), indexed plans come from the
// shared cache. The sim planes and the Engine both dispatch through
// this.
func PlanForMode(n *nes.NES, mode Mode) *Plan {
	if mode == ModeScan {
		return ForNES(n, ModeScan)
	}
	return PlanFor(n)
}

// Mode returns the plan's forwarding mode.
func (p *Plan) Mode() Mode { return p.mode }

// Matcher returns the matcher for a configuration's switch, or nil when
// the configuration installs no table there (default drop).
func (p *Plan) Matcher(version, sw int) Matcher {
	if version < 0 || version >= len(p.matchers) {
		return nil
	}
	return p.matchers[version][sw]
}

// Process is the amortized batch API: every input packet is matched
// against its (version, switch) table and the emitted copies are appended
// to out — same switch, egress port in Port, version and digest carried
// through unchanged. Passing out's previous backing array (out[:0])
// across calls makes the steady state allocation-free apart from the
// clones rewriting action groups need.
func (p *Plan) Process(in []Packet, out []Packet) []Packet {
	var scratch []flowtable.Output // reused across the batch
	for i := range in {
		pk := &in[i]
		m := p.Matcher(pk.Version, pk.Switch)
		if m == nil {
			continue
		}
		scratch = m.Process(scratch[:0], pk.Fields, pk.Port, 0)
		for _, o := range scratch {
			out = append(out, Packet{
				Fields:  o.Pkt,
				Switch:  pk.Switch,
				Port:    o.Port,
				Version: pk.Version,
				Digest:  pk.Digest,
			})
		}
	}
	return out
}

// Merged builds the Section 5.3 deployment shape: one table per switch
// holding every configuration's rules behind an exact version guard, so a
// single physical table serves all configurations and a packet's tag
// selects its slice. Looking up (pkt, port, tag c) in a merged table is
// equivalent to looking up (pkt, port, 0) in configuration c's own table:
// guards with the same mask and different values never admit the same
// tag, and the stable priority sort preserves each configuration's
// internal rule order. This is where guard partitioning pays off most —
// the linear scan walks every configuration's rules, the compiled matcher
// jumps straight to the tag's partition.
func Merged(n *nes.NES) flowtable.Tables {
	bits := 1
	for 1<<uint(bits) < len(n.Configs) {
		bits++
	}
	merged := flowtable.Tables{}
	for ci := range n.Configs {
		guard := flowtable.ExactGuard(uint32(ci), bits)
		for sw, t := range n.Configs[ci].Tables {
			var rs []flowtable.Rule
			for _, r := range t.Rules {
				m := r.Match.Clone()
				m.Guard = guard
				rs = append(rs, flowtable.Rule{Priority: r.Priority, Match: m, Groups: r.Groups})
			}
			merged.Get(sw).AddAll(rs)
		}
	}
	return merged
}
