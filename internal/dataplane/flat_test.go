package dataplane_test

import (
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// TestFlatMatcherEquivalence is the flat-path acceptance property: on
// every reachable state of every application, for randomized packets,
// in-ports and tags, forwarding through the schema-interned flat
// lowering (both the indexed and the linear-scan plane) is byte-equal to
// forwarding the map-form packet through the map-form matchers.
func TestFlatMatcherEquivalence(t *testing.T) {
	for _, a := range propApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			hosts := hostAddrs(a.Topo)
			r := rand.New(rand.NewSource(71))
			for _, st := range states {
				pol := stateful.Project(a.Prog.Cmd, st)
				tables, err := nkc.Compile(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: %v", st, err)
				}
				schema := dataplane.SchemaForTables(tables)
				for _, sw := range tables.Switches() {
					tbl := tables[sw]
					ref := dataplane.Scan{Table: tbl}
					flatIdx := dataplane.CompileFlat(tbl, schema)
					flatScan := dataplane.FlatScanOf(tbl, schema)
					if flatIdx.Len() != ref.Len() || flatScan.Len() != ref.Len() {
						t.Fatalf("state %v sw %d: rule counts differ", st, sw)
					}
					for i := 0; i < 200; i++ {
						pkt, port, tag := randProbe(r, hosts)
						want := ref.Process(nil, pkt, port, tag)
						gotIdx := flatIdx.Process(nil, pkt, port, tag)
						gotScan := flatScan.Process(nil, pkt, port, tag)
						if !sameOutputs(gotIdx, want) || !sameOutputs(gotScan, want) {
							t.Fatalf("state %v sw %d pkt %v port %d tag %d:\nflat-indexed %v\nflat-scan %v\nmap %v\ntable:\n%v",
								st, sw, pkt, port, tag, gotIdx, gotScan, want, tbl)
						}
					}
				}
			}
		})
	}
}

// flatConfig drives journeys through flat matchers (the flat analogue of
// matcherConfig), for the netkat.Eval leg of the equivalence property.
type flatConfig struct {
	ms   map[int]dataplane.FlatMatcher
	has  map[int]bool
	topo *topo.Topology
}

func (c flatConfig) DStep(d netkat.DPacket) []netkat.DPacket {
	var outs []netkat.DPacket
	switch {
	case c.topo.IsHostNode(d.Loc.Switch):
		if !d.Out {
			return nil
		}
		h, _ := c.topo.HostByID(d.Loc.Switch)
		outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Attach})
	case d.Out:
		if lk, ok := c.topo.LinkFrom(d.Loc); ok {
			if h, isHost := c.topo.HostByID(lk.Dst.Switch); isHost {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Loc()})
			} else {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: lk.Dst})
			}
		}
	default:
		if c.has[d.Loc.Switch] {
			for _, o := range c.ms[d.Loc.Switch].Process(nil, d.Pkt, d.Loc.Port, 0) {
				outs = append(outs, netkat.DPacket{Pkt: o.Pkt, Loc: netkat.Location{Switch: d.Loc.Switch, Port: o.Port}, Out: true})
			}
		}
	}
	return outs
}

// TestFlatEvalEquivalence closes the triangle for the flat path:
// journeying host emissions through flat matchers visits exactly the
// directed packets the map-form linear scan visits, and every final
// header netkat.Eval predicts for the state's projected policy is
// reached — on every reachable state.
func TestFlatEvalEquivalence(t *testing.T) {
	cases := []apps.App{apps.Firewall(), apps.LearningSwitch(), apps.Authentication(), apps.BandwidthCap(10), apps.IDS(), apps.WalledGarden(), apps.DistributedFirewall(), apps.Ring(3), apps.IDSFatTree(4)}
	for _, a := range cases {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			hosts := hostAddrs(a.Topo)
			for _, st := range states {
				pol := stateful.Project(a.Prog.Cmd, st)
				tables, err := nkc.Compile(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: %v", st, err)
				}
				schema := dataplane.SchemaForTables(tables)
				flat := flatConfig{ms: map[int]dataplane.FlatMatcher{}, has: map[int]bool{}, topo: a.Topo}
				scan := matcherConfig{ms: map[int]dataplane.Matcher{}, topo: a.Topo}
				for _, sw := range tables.Switches() {
					flat.ms[sw] = dataplane.CompileFlat(tables[sw], schema)
					flat.has[sw] = true
					scan.ms[sw] = dataplane.Scan{Table: tables[sw]}
				}
				var lps []netkat.LocatedPacket
				for _, lk := range a.Topo.AllLinks() {
					h, ok := a.Topo.HostByID(lk.Dst.Switch)
					if !ok {
						continue
					}
					for _, dst := range hosts {
						lps = append(lps,
							netkat.LocatedPacket{Pkt: netkat.Packet{"dst": dst, "src": h.ID}, Loc: h.Loc()},
							netkat.LocatedPacket{Pkt: netkat.Packet{"dst": dst, "sig": 1, "probe": 7}, Loc: h.Loc()})
					}
				}
				for _, lp := range lps {
					start := netkat.DPacket{Pkt: lp.Pkt, Loc: lp.Loc, Out: true}
					visF, reachF := journey(t, flat, start)
					visS, _ := journey(t, scan, start)
					if len(visF) != len(visS) {
						t.Fatalf("state %v from %v: flat visits %d, scan visits %d", st, lp, len(visF), len(visS))
					}
					for k := range visF {
						if !visS[k] {
							t.Fatalf("state %v from %v: flat visits %s, scan does not", st, lp, k)
						}
					}
					h, _ := a.Topo.HostByID(lp.Loc.Switch)
					ingress := netkat.LocatedPacket{Pkt: lp.Pkt, Loc: h.Attach}
					for _, want := range netkat.Eval(pol, ingress) {
						if !reachF[want.Key()] {
							t.Fatalf("state %v: Eval predicts %v from %v but the flat matchers never reach it", st, want, ingress)
						}
					}
				}
			}
		})
	}
}

// TestMergedPairFlatSharedSchema pins the swap-epoch schema property:
// the staged MergedPair table — one physical table holding both
// programs' rules behind disjoint guards — compiles flat under ONE
// schema spanning both programs (SchemaForPair), and looking up a packet
// under either program's tag is byte-equal to that program's own
// per-config map-form table. Interning through the shared schema cannot
// change the matched rule.
func TestMergedPairFlatSharedSchema(t *testing.T) {
	old := buildNES(t, apps.Firewall())
	new_ := buildNES(t, apps.BandwidthCap(10))
	tables, off := dataplane.MergedPair(old, new_)
	schema := dataplane.SchemaForPair(old, new_)
	hostsOld := hostAddrs(apps.Firewall().Topo)
	r := rand.New(rand.NewSource(97))
	for _, sw := range tables.Switches() {
		flat := dataplane.CompileFlat(tables[sw], schema)
		check := func(tag uint32, ref dataplane.Matcher) {
			for i := 0; i < 100; i++ {
				pkt, port, _ := randProbe(r, hostsOld)
				got := flat.Process(nil, pkt, port, tag)
				want := ref.Process(nil, pkt, port, 0)
				if !sameOutputs(got, want) {
					t.Fatalf("sw %d tag %d pkt %v port %d:\nflat-merged %v\nper-config %v", sw, tag, pkt, port, got, want)
				}
			}
		}
		for ci := range old.Configs {
			ref := dataplane.Matcher(dataplane.Scan{Table: &flowtable.Table{}})
			if tbl, ok := old.Configs[ci].Tables[sw]; ok {
				ref = dataplane.Scan{Table: tbl}
			}
			check(uint32(ci), ref)
		}
		for ci := range new_.Configs {
			ref := dataplane.Matcher(dataplane.Scan{Table: &flowtable.Table{}})
			if tbl, ok := new_.Configs[ci].Tables[sw]; ok {
				ref = dataplane.Scan{Table: tbl}
			}
			check(uint32(off+ci), ref)
		}
	}
}

// TestEngineFlatDeliveryHeaders pins the egress conversion end-to-end:
// for a seeded workload on both planes, the engine's delivered headers
// (flat vals + inert carrier materialized at the accessor) are byte-equal
// between the indexed and scan planes and carry inert fields through
// unchanged.
func TestEngineFlatDeliveryHeaders(t *testing.T) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(10), apps.WalledGarden()} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			batches := loadBatches(t, a, 2, 40)
			// Tag every injection with an inert marker to prove carriage.
			for _, b := range batches {
				for i := range b {
					b[i].Fields["trace_marker"] = 1000 + i
				}
			}
			idx := runEngine(t, a, dataplane.Options{Workers: 2}, batches)
			scan := runEngine(t, a, dataplane.Options{Workers: 2, Mode: dataplane.ModeScan}, batches)
			if len(idx) == 0 {
				t.Fatal("workload delivered nothing; test is vacuous")
			}
			if !sameDeliveries(idx, scan) {
				t.Fatalf("flat deliveries differ between planes: %d vs %d", len(idx), len(scan))
			}
			for _, d := range idx {
				if _, ok := d.Fields["trace_marker"]; !ok {
					t.Fatalf("delivery to %s lost its inert field: %v", d.Host, d.Fields)
				}
			}
		})
	}
}

// TestInjectRejectsOutOfDomainValues: flat values are int32; rather than
// silently truncating (which would diverge from the map-form and
// netkat.Eval semantics), Inject rejects schema-field values outside the
// domain.
func TestInjectRejectsOutOfDomainValues(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{})
	if err := e.Inject("H1", netkat.Packet{"dst": 1 << 40}); err == nil {
		t.Fatal("Inject accepted a header value outside the int32 flat-value domain")
	}
	if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatalf("in-domain injection rejected: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
