package dataplane

import (
	"math"
	"math/rand"
	"sort"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// Injection is one host emission a LoadGen produced.
type Injection struct {
	Host   string
	Fields netkat.Packet
}

// Probe is one raw matcher probe: a packet presented at a switch ingress
// port under a version tag, the unit of the matcher throughput harness.
type Probe struct {
	Switch int
	InPort int
	Tag    uint32
	Fields netkat.Packet
}

// LoadGen is a deterministic traffic source for the line-rate harness: a
// seeded stream of host-to-host injections (for the Engine) and raw
// matcher probes (for the throughput benchmarks), drawn from the
// topology's real hosts, ports, and the NES's configuration universe so
// the generated traffic exercises the installed rules rather than the
// default-drop path.
type LoadGen struct {
	rng     *rand.Rand
	seed    int64 // caller's seed, pre-mix (Derive starts from it)
	hosts   []topo.Host
	swPorts map[int][]int // switch -> plausible ingress ports
	sws     []int
	configs int
}

// seedMix is the splitmix64 finalizer: a bijective avalanche over uint64.
// Both the generator seed and every derived stream pass through it, so
// the raw seed's bit pattern never reaches math/rand directly and no
// arithmetic relation between two seeds survives into the streams.
func seedMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed is the documented seed-derivation rule:
//
//	stream(seed, k) = mix(mix(seed) ^ mix(k+1))
//
// where mix is the splitmix64 finalizer. Because mix avalanches each
// argument independently before they combine, linear seed schedules
// cannot alias: stream(s, k) and stream(s+d, k-d) share no structure, so
// per-switch or per-worker generators derived from consecutive stream
// indices never collide with a neighboring base seed. (The +1 keeps
// stream 0 distinct from the base generator itself.)
func streamSeed(seed, stream int64) int64 {
	return int64(seedMix(seedMix(uint64(seed)) ^ seedMix(uint64(stream)+1)))
}

// NewLoadGen builds a generator for the NES over its topology. Equal
// seeds yield equal streams; the seed is finalizer-mixed before use (see
// streamSeed), so numerically adjacent seeds produce unrelated traffic.
func NewLoadGen(n *nes.NES, t *topo.Topology, seed int64) *LoadGen {
	g := &LoadGen{
		rng:     rand.New(rand.NewSource(int64(seedMix(uint64(seed))))),
		seed:    seed,
		swPorts: map[int][]int{},
		configs: len(n.Configs),
	}
	g.hosts = append(g.hosts, t.Hosts...)
	sort.Slice(g.hosts, func(i, j int) bool { return g.hosts[i].Name < g.hosts[j].Name })
	seen := map[netkat.Location]bool{}
	addPort := func(l netkat.Location) {
		if t.IsHostNode(l.Switch) || seen[l] {
			return
		}
		seen[l] = true
		g.swPorts[l.Switch] = append(g.swPorts[l.Switch], l.Port)
	}
	for _, lk := range t.AllLinks() {
		addPort(lk.Src)
		addPort(lk.Dst)
	}
	for _, h := range g.hosts {
		addPort(h.Attach)
	}
	g.sws = append(g.sws, t.Switches...)
	sort.Ints(g.sws)
	for sw := range g.swPorts {
		sort.Ints(g.swPorts[sw])
	}
	return g
}

// Derive returns an independent generator for a numbered substream
// (per-switch, per-worker, per-scenario): the same topology tables, a
// fresh rng seeded by streamSeed(seed, stream). Unlike ad-hoc seed+k
// offsets, derived streams cannot alias across base seeds.
func (g *LoadGen) Derive(stream int64) *LoadGen {
	d := *g
	d.seed = streamSeed(g.seed, stream)
	d.rng = rand.New(rand.NewSource(int64(seedMix(uint64(d.seed)))))
	return &d
}

// Injections returns k host emissions with random (src, dst) host pairs,
// carrying the workload's src/dst convention so application rules match.
func (g *LoadGen) Injections(k int) []Injection {
	out := make([]Injection, 0, k)
	for i := 0; i < k; i++ {
		src := g.hosts[g.rng.Intn(len(g.hosts))]
		dst := g.hosts[g.rng.Intn(len(g.hosts))]
		out = append(out, Injection{
			Host:   src.Name,
			Fields: netkat.Packet{"dst": dst.ID, "src": src.ID, "id": i},
		})
	}
	return out
}

// ArrivalDist selects the shape of a batch-size (arrival) process.
type ArrivalDist int

const (
	// ArrivalUniform draws batch sizes uniformly around the mean.
	ArrivalUniform ArrivalDist = iota
	// ArrivalBursty is an on/off process: mostly near-idle rounds with
	// occasional bursts several times the mean.
	ArrivalBursty
	// ArrivalHeavyTail draws from a discrete power law: most rounds are
	// tiny, rare rounds are tens of times the mean.
	ArrivalHeavyTail
)

// String renders the distribution name.
func (d ArrivalDist) String() string {
	switch d {
	case ArrivalBursty:
		return "bursty"
	case ArrivalHeavyTail:
		return "heavy-tail"
	}
	return "uniform"
}

// BatchSizes draws `rounds` per-generation injection counts from the
// distribution, each at least 1, targeting roughly `mean` per round.
// The draw consumes the generator's stream, so it is deterministic per
// seed and interleaves reproducibly with Injections/Probes calls.
func (g *LoadGen) BatchSizes(rounds int, dist ArrivalDist, mean int) []int {
	if mean < 1 {
		mean = 1
	}
	out := make([]int, rounds)
	for i := range out {
		switch dist {
		case ArrivalBursty:
			// One round in four is a burst of ~3-4x the mean; the rest
			// idle along at a fraction of it.
			if g.rng.Intn(4) == 0 {
				out[i] = 3*mean + g.rng.Intn(mean+1)
			} else {
				out[i] = 1 + g.rng.Intn((mean+3)/4)
			}
		case ArrivalHeavyTail:
			// Inverse-power sampling, exponent ~1.3, capped at 50x mean.
			u := g.rng.Float64()
			if u < 1e-4 {
				u = 1e-4
			}
			s := int(0.4 * float64(mean) / math.Pow(u, 1.3))
			if s < 1 {
				s = 1
			}
			if limit := 50 * mean; s > limit {
				s = limit
			}
			out[i] = s
		default:
			out[i] = 1 + g.rng.Intn(2*mean-1)
		}
	}
	return out
}

// Probes returns k matcher probes: a random switch, one of its real
// ingress ports, a random configuration tag, and fields addressing a
// random host pair.
func (g *LoadGen) Probes(k int) []Probe {
	out := make([]Probe, 0, k)
	for i := 0; i < k; i++ {
		sw := g.sws[g.rng.Intn(len(g.sws))]
		ports := g.swPorts[sw]
		port := 1
		if len(ports) > 0 {
			port = ports[g.rng.Intn(len(ports))]
		}
		src := g.hosts[g.rng.Intn(len(g.hosts))]
		dst := g.hosts[g.rng.Intn(len(g.hosts))]
		out = append(out, Probe{
			Switch: sw,
			InPort: port,
			Tag:    uint32(g.rng.Intn(g.configs)),
			Fields: netkat.Packet{"dst": dst.ID, "src": src.ID},
		})
	}
	return out
}
