package dataplane

import (
	"math/rand"
	"sort"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// Injection is one host emission a LoadGen produced.
type Injection struct {
	Host   string
	Fields netkat.Packet
}

// Probe is one raw matcher probe: a packet presented at a switch ingress
// port under a version tag, the unit of the matcher throughput harness.
type Probe struct {
	Switch int
	InPort int
	Tag    uint32
	Fields netkat.Packet
}

// LoadGen is a deterministic traffic source for the line-rate harness: a
// seeded stream of host-to-host injections (for the Engine) and raw
// matcher probes (for the throughput benchmarks), drawn from the
// topology's real hosts, ports, and the NES's configuration universe so
// the generated traffic exercises the installed rules rather than the
// default-drop path.
type LoadGen struct {
	rng     *rand.Rand
	hosts   []topo.Host
	swPorts map[int][]int // switch -> plausible ingress ports
	sws     []int
	configs int
}

// NewLoadGen builds a generator for the NES over its topology. Equal
// seeds yield equal streams.
func NewLoadGen(n *nes.NES, t *topo.Topology, seed int64) *LoadGen {
	g := &LoadGen{rng: rand.New(rand.NewSource(seed)), swPorts: map[int][]int{}, configs: len(n.Configs)}
	g.hosts = append(g.hosts, t.Hosts...)
	sort.Slice(g.hosts, func(i, j int) bool { return g.hosts[i].Name < g.hosts[j].Name })
	seen := map[netkat.Location]bool{}
	addPort := func(l netkat.Location) {
		if t.IsHostNode(l.Switch) || seen[l] {
			return
		}
		seen[l] = true
		g.swPorts[l.Switch] = append(g.swPorts[l.Switch], l.Port)
	}
	for _, lk := range t.AllLinks() {
		addPort(lk.Src)
		addPort(lk.Dst)
	}
	for _, h := range g.hosts {
		addPort(h.Attach)
	}
	g.sws = append(g.sws, t.Switches...)
	sort.Ints(g.sws)
	for sw := range g.swPorts {
		sort.Ints(g.swPorts[sw])
	}
	return g
}

// Injections returns k host emissions with random (src, dst) host pairs,
// carrying the workload's src/dst convention so application rules match.
func (g *LoadGen) Injections(k int) []Injection {
	out := make([]Injection, 0, k)
	for i := 0; i < k; i++ {
		src := g.hosts[g.rng.Intn(len(g.hosts))]
		dst := g.hosts[g.rng.Intn(len(g.hosts))]
		out = append(out, Injection{
			Host:   src.Name,
			Fields: netkat.Packet{"dst": dst.ID, "src": src.ID, "id": i},
		})
	}
	return out
}

// Probes returns k matcher probes: a random switch, one of its real
// ingress ports, a random configuration tag, and fields addressing a
// random host pair.
func (g *LoadGen) Probes(k int) []Probe {
	out := make([]Probe, 0, k)
	for i := 0; i < k; i++ {
		sw := g.sws[g.rng.Intn(len(g.sws))]
		ports := g.swPorts[sw]
		port := 1
		if len(ports) > 0 {
			port = ports[g.rng.Intn(len(ports))]
		}
		src := g.hosts[g.rng.Intn(len(g.hosts))]
		dst := g.hosts[g.rng.Intn(len(g.hosts))]
		out = append(out, Probe{
			Switch: sw,
			InPort: port,
			Tag:    uint32(g.rng.Intn(g.configs)),
			Fields: netkat.Packet{"dst": dst.ID, "src": src.ID},
		})
	}
	return out
}
