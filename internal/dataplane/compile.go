package dataplane

import (
	"sort"

	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
)

// CompiledTable is a flow table compiled into an indexed matcher.
//
// Rules are sliced three ways, mirroring how a packet narrows the search:
//
//  1. Version-guard partition: rules are grouped by guard mask, and within
//     a mask by their masked value, so a packet's tag selects the (at most
//     one per mask) group of rules whose guards admit it — an O(#masks)
//     step instead of a per-rule guard check. Compiled per-configuration
//     tables have a single all-pass group; merged Section 5.3 tables have
//     one group per configuration.
//  2. In-port: within a group, rules split into exact-port buckets plus
//     one wildcard bucket (whose ExcludePorts are verified per rule).
//  3. Discriminating fields: within a bucket, the compiler picks the
//     equality-tested fields shared by all rules (or, failing that, the
//     single most-tested field) and hashes rules by their required values.
//     Rules not constraining the chosen fields form a small rank-ordered
//     fallback list — the decision-tree residue for wildcard/exclusion
//     rules.
//
// Lookup hashes the packet's values for each candidate bucket's key
// fields (integer FNV mixing — no per-packet maps or strings), then
// rank-merges the hash hits with the fallback list, fully verifying each
// candidate with flowtable.Match.Matches so indexing can never change
// semantics, only skip rules that provably cannot win.
type CompiledTable struct {
	rules []flowtable.Rule // priority order; rank = index
	parts []guardPart      // ascending mask
}

// guardPart is one guard-mask partition.
type guardPart struct {
	mask   uint32
	groups map[uint32]*portIndex // masked guard value -> rules
}

// portIndex splits a guard group by ingress port.
type portIndex struct {
	byPort map[int]*bucket
	wild   *bucket // InPort == Wildcard rules, or nil
}

// bucket indexes the rules of one (guard group, in-port) cell.
type bucket struct {
	keyFields []string           // nil: no index, everything in fallback
	index     map[uint64][]int32 // value hash -> ranks, ascending
	fallback  []int32            // ranks, ascending
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashFields folds the packet's values of the key fields into one hash.
// The second result is false when the packet lacks a key field — in which
// case no indexed rule can match, since every indexed rule tests all key
// fields for equality and an absent field fails an equality match (the
// exact semantics of flowtable.Match.Matches).
func hashFields(pkt netkat.Packet, keyFields []string) (uint64, bool) {
	h := uint64(fnvOffset64)
	for _, f := range keyFields {
		v, ok := pkt[f]
		if !ok {
			return 0, false
		}
		h ^= uint64(uint32(v))
		h *= fnvPrime64
	}
	return h, true
}

// Compile builds the indexed matcher for one switch's table. The table's
// rules are copied, so later table mutation does not affect the matcher.
func Compile(t *flowtable.Table) *CompiledTable {
	ct := &CompiledTable{rules: append([]flowtable.Rule{}, t.Rules...)}

	// 1. Guard partition.
	type cellKey struct {
		mask, value uint32
		port        int // flowtable.Wildcard for the wildcard bucket
	}
	cells := map[cellKey][]int32{}
	for i := range ct.rules {
		m := &ct.rules[i].Match
		k := cellKey{mask: m.Guard.Mask, value: m.Guard.Value & m.Guard.Mask, port: m.InPort}
		cells[k] = append(cells[k], int32(i))
	}

	partByMask := map[uint32]*guardPart{}
	for k, ranks := range cells {
		p := partByMask[k.mask]
		if p == nil {
			p = &guardPart{mask: k.mask, groups: map[uint32]*portIndex{}}
			partByMask[k.mask] = p
		}
		g := p.groups[k.value]
		if g == nil {
			g = &portIndex{byPort: map[int]*bucket{}}
			p.groups[k.value] = g
		}
		b := buildBucket(ct.rules, ranks)
		if k.port == flowtable.Wildcard {
			g.wild = b
		} else {
			g.byPort[k.port] = b
		}
	}
	for _, p := range partByMask {
		ct.parts = append(ct.parts, *p)
	}
	sort.Slice(ct.parts, func(i, j int) bool { return ct.parts[i].mask < ct.parts[j].mask })
	return ct
}

// buildBucket picks the bucket's discriminating fields and hashes its
// rules by them. ranks arrive ascending (rules were walked in order).
func buildBucket(rules []flowtable.Rule, ranks []int32) *bucket {
	b := &bucket{}

	// Fields equality-tested by every rule in the bucket.
	freq := map[string]int{}
	for _, r := range ranks {
		for f := range rules[r].Match.Fields {
			freq[f]++
		}
	}
	var shared []string
	best, bestN := "", 0
	for f, n := range freq {
		if n == len(ranks) {
			shared = append(shared, f)
		}
		if n > bestN || (n == bestN && (best == "" || f < best)) {
			best, bestN = f, n
		}
	}
	switch {
	case len(shared) > 0:
		sort.Strings(shared)
		b.keyFields = shared
	case bestN > 0:
		b.keyFields = []string{best}
	default:
		// No rule tests any field: pure port/guard/exclusion rules.
		b.fallback = ranks
		return b
	}

	b.index = map[uint64][]int32{}
	for _, r := range ranks {
		// A rule's index key is the hash of its required values — the same
		// fold a matching packet's values produce. A rule missing a key
		// field is not indexable and scans from the fallback list.
		if h, ok := hashFields(netkat.Packet(rules[r].Match.Fields), b.keyFields); ok {
			b.index[h] = append(b.index[h], r)
		} else {
			b.fallback = append(b.fallback, r)
		}
	}
	return b
}

// bestIn scans the bucket's candidates for the packet and returns the
// lowest matching rank below bound, or bound if none beats it. Candidate
// lists are rank-ascending, so each list is scanned only until its first
// full match (or past bound).
func (b *bucket) bestIn(rules []flowtable.Rule, pkt netkat.Packet, inPort int, tag uint32, bound int32) int32 {
	if b == nil {
		return bound
	}
	if b.keyFields != nil {
		if h, ok := hashFields(pkt, b.keyFields); ok {
			for _, r := range b.index[h] {
				if r >= bound {
					break
				}
				if rules[r].Match.Matches(pkt, inPort, tag) {
					bound = r
					break
				}
			}
		}
	}
	for _, r := range b.fallback {
		if r >= bound {
			break
		}
		if rules[r].Match.Matches(pkt, inPort, tag) {
			bound = r
			break
		}
	}
	return bound
}

// Lookup implements Matcher: the winning rule is the minimum-rank match
// over every bucket the packet's tag and in-port select.
func (c *CompiledTable) Lookup(pkt netkat.Packet, inPort int, tag uint32) (*flowtable.Rule, bool) {
	best := int32(len(c.rules))
	for pi := range c.parts {
		p := &c.parts[pi]
		g := p.groups[tag&p.mask]
		if g == nil {
			continue
		}
		best = g.byPort[inPort].bestIn(c.rules, pkt, inPort, tag, best)
		best = g.wild.bestIn(c.rules, pkt, inPort, tag, best)
	}
	if best == int32(len(c.rules)) {
		return nil, false
	}
	return &c.rules[best], true
}

// Process implements Matcher.
func (c *CompiledTable) Process(dst []flowtable.Output, pkt netkat.Packet, inPort int, tag uint32) []flowtable.Output {
	r, ok := c.Lookup(pkt, inPort, tag)
	if !ok {
		return dst
	}
	return r.AppendApply(dst, pkt)
}

// Len implements Matcher.
func (c *CompiledTable) Len() int { return len(c.rules) }
