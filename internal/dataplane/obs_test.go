package dataplane_test

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/obs"
)

// fullObs is a fully-enabled layer sized for w workers: metrics, bus,
// tracing every injection, every delivery sampled, flight recorder
// (rings big enough that these workloads never truncate), watchdog.
func fullObs(w int) *obs.Obs {
	return &obs.Obs{
		Metrics:        obs.NewMetrics(w),
		Bus:            obs.NewBus(),
		Trace:          obs.NewTracer(1, w),
		Flight:         obs.NewFlight(1<<16, w),
		Watch:          obs.NewWatchdog(obs.WatchOptions{}),
		DeliverySample: 1,
	}
}

// TestEngineObsPreservesDeterminism is the acceptance property of the
// whole layer: attaching full metrics + per-packet tracing + an active
// bus subscriber changes nothing about the delivery sequence, at any
// worker count, against the obs-off baseline.
func TestEngineObsPreservesDeterminism(t *testing.T) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(10), apps.IDSFatTree(4)} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			batches := loadBatches(t, a, 3, 60)
			base := runEngine(t, a, dataplane.Options{Workers: 1}, batches)
			if len(base) == 0 {
				t.Fatalf("workload delivered nothing; test is vacuous")
			}
			for _, w := range []int{1, 2, 4, 8} {
				o := fullObs(w)
				sub := o.Bus.Subscribe(4) // deliberately tiny: drops must not perturb anything
				got := runEngine(t, a, dataplane.Options{Workers: w, Obs: o}, batches)
				sub.Close()
				if !sameDeliveries(base, got) {
					t.Fatalf("obs-on deliveries differ at %d workers: %d vs %d packets", w, len(base), len(got))
				}
				if o.Metrics.Counter(obs.CtrDeliveries) != int64(len(base)) {
					t.Fatalf("CtrDeliveries = %d, want %d", o.Metrics.Counter(obs.CtrDeliveries), len(base))
				}
			}
		})
	}
}

// TestEngineJourneyTrace pins journey stitching: every injection traced,
// each emitted journey is complete (not truncated), hop records arrive
// in canonical order, and a delivered packet's journey ends with a
// deliver record naming the right host.
func TestEngineJourneyTrace(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	o := fullObs(2)
	sub := o.Bus.Subscribe(256, obs.KindTrace)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2, Obs: o})
	// The firewall's outbound flow H1->H4 is delivered and enables the
	// return path.
	if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	deliveries := e.Deliveries()
	if len(deliveries) == 0 {
		t.Fatal("firewall outbound packet was not delivered")
	}
	sub.Close()
	var journeys []*obs.Journey
	for ev := range sub.C {
		if ev.Trace != nil {
			journeys = append(journeys, ev.Trace)
		}
	}
	if len(journeys) != 1 {
		t.Fatalf("got %d journeys, want 1", len(journeys))
	}
	j := journeys[0]
	if j.Truncated {
		t.Fatalf("journey truncated: %+v", j)
	}
	if j.Host != "H1" {
		t.Fatalf("journey injection host = %q, want H1", j.Host)
	}
	if len(j.Hops) < 2 {
		t.Fatalf("journey has %d hop records, want at least a forward and a deliver", len(j.Hops))
	}
	delivers := 0
	for i, h := range j.Hops {
		if i > 0 {
			prev := j.Hops[i-1]
			if h.Gen < prev.Gen || (h.Gen == prev.Gen && h.Seq < prev.Seq) {
				t.Fatalf("hop records out of canonical order at %d: %+v after %+v", i, h, prev)
			}
		}
		if h.Kind == "deliver" {
			delivers++
			if h.Host != deliveries[delivers-1].Host {
				t.Fatalf("deliver record host %q, want %q", h.Host, deliveries[delivers-1].Host)
			}
		}
	}
	if delivers != len(deliveries) {
		t.Fatalf("journey carries %d deliver records for %d deliveries", delivers, len(deliveries))
	}
	if got := o.Metrics.Counter(obs.CtrTraces); got != 1 {
		t.Fatalf("CtrTraces = %d, want 1", got)
	}
}

// TestEngineObsBusFeed checks the boundary publishers end to end on one
// run: delivery samples with materialized fields, a stats delta whose
// counters move, and swap flip/drain/retire phase events in order.
func TestEngineObsBusFeed(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	o := fullObs(1)
	sub := o.Bus.Subscribe(1024)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 1, Obs: o})
	if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Swap to a different program mid-life, then drain.
	n2 := buildNES(t, apps.BandwidthCap(8))
	sw, err := e.StageSwap(dataplane.SwapSpec{NES: n2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	<-sw.Done()
	sub.Close()

	var sawDelivery, sawStats bool
	var statHops int64
	var phases []string
	for ev := range sub.C {
		switch ev.Kind {
		case obs.KindDelivery:
			sawDelivery = true
			if len(ev.Fields) == 0 || ev.Host == "" {
				t.Fatalf("delivery event missing fields/host: %+v", ev)
			}
		case obs.KindStats:
			sawStats = true
			if ev.Stats == nil {
				t.Fatalf("stats event without a delta: %+v", ev)
			}
			statHops += ev.Stats.Hops
		case obs.KindSwap:
			phases = append(phases, ev.Phase)
		}
	}
	if !sawDelivery {
		t.Fatal("no delivery event on the bus")
	}
	if !sawStats {
		t.Fatal("no stats delta on the bus")
	}
	if statHops <= 0 {
		t.Fatalf("stats deltas summed to %d hops; counters never moved", statHops)
	}
	if len(phases) == 0 || phases[0] != "flip" || phases[len(phases)-1] != "retire" {
		t.Fatalf("swap phases = %v, want flip ... retire", phases)
	}
	if got := o.Metrics.Counter(obs.CtrSwapRetires); got != 1 {
		t.Fatalf("CtrSwapRetires = %d, want 1", got)
	}
	if got := o.Metrics.HistCount(obs.HistSwapDrainNs); got != 1 {
		t.Fatalf("HistSwapDrainNs count = %d, want 1", got)
	}
}
