package dataplane_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/obs"
)

// flightRun replays one deterministic workload with the recorder
// attached and returns the engine's flight dump.
func flightRun(t *testing.T, a apps.App, workers, flightCap int, batches [][]dataplane.Injection) *obs.FlightDump {
	t.Helper()
	n := buildNES(t, a)
	o := &obs.Obs{
		Metrics: obs.NewMetrics(workers),
		Flight:  obs.NewFlight(flightCap, workers),
	}
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: workers, Obs: o})
	for _, batch := range batches {
		for _, in := range batch {
			if err := e.Inject(in.Host, in.Fields); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return e.FlightDump()
}

// TestEngineFlightDeterminism is the recorder's acceptance property:
// the dump is bit-identical at 1, 2, 4 and 8 workers. Records carry no
// wall-clock stamps and sort in the canonical (gen, seq, kind, branch)
// order, so equal executions must serialize to equal bytes — any
// divergence means a record leaked scheduling (which shard ran what) or
// timing into its fields.
func TestEngineFlightDeterminism(t *testing.T) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(10)} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			batches := loadBatches(t, a, 3, 60)
			var ref []byte
			refWorkers := 0
			for _, w := range []int{1, 2, 4, 8} {
				d := flightRun(t, a, w, 1<<16, batches)
				if len(d.Records) == 0 {
					t.Fatalf("%d workers: empty flight dump; test is vacuous", w)
				}
				if d.Truncated {
					t.Fatalf("%d workers: dump truncated under a 64k ring; workload outgrew the test", w)
				}
				b, err := json.Marshal(d)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref, refWorkers = b, w
					continue
				}
				if !bytes.Equal(ref, b) {
					t.Fatalf("flight dump differs between %d and %d workers:\n%d: %.400s\n%d: %.400s",
						refWorkers, w, refWorkers, ref, w, b)
				}
			}
		})
	}
}

// TestEngineFlightTruncation: a ring too small for the workload marks
// the dump truncated and keeps exactly the complete generation suffix —
// the untruncated run's records above the cutoff, nothing more, nothing
// less, nothing reordered.
func TestEngineFlightTruncation(t *testing.T) {
	a := apps.BandwidthCap(10)
	batches := loadBatches(t, a, 6, 80)
	full := flightRun(t, a, 2, 1<<16, batches)
	small := flightRun(t, a, 2, 32, batches)
	if full.Truncated {
		t.Fatal("full run truncated; raise the reference ring")
	}
	if !small.Truncated {
		t.Fatalf("a 32-record ring held %d records without overflow; test is vacuous", len(small.Records))
	}
	var want []obs.FlightWireRec
	for _, r := range full.Records {
		if r.Gen > small.TruncatedGen {
			want = append(want, r)
		}
	}
	if len(want) == 0 {
		t.Fatalf("cutoff gen %d leaves no records; test is vacuous", small.TruncatedGen)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(small.Records)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("truncated dump is not the suffix of the full dump above gen %d:\nwant %d records, got %d",
			small.TruncatedGen, len(want), len(small.Records))
	}
	if small.Evicted == 0 {
		t.Error("truncated dump reports zero evictions")
	}
}

// TestEngineFlightSwapPhases: a hot swap leaves its stage-to-retire
// trail in the recorder, in order.
func TestEngineFlightSwapPhases(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	o := fullObs(1)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 1, Obs: o})
	in := loadBatches(t, a, 1, 1)[0][0]
	if err := e.Inject(in.Host, in.Fields); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	n2 := buildNES(t, apps.BandwidthCap(8))
	sw, err := e.StageSwap(dataplane.SwapSpec{NES: n2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	<-sw.Done()
	var phases []string
	for _, r := range e.FlightDump().Records {
		if r.Kind == "swap" {
			phases = append(phases, r.Phase)
		}
	}
	if len(phases) == 0 || phases[0] != "flip" || phases[len(phases)-1] != "retire" {
		t.Fatalf("swap phases in flight record = %v, want flip ... retire", phases)
	}
}
