package dataplane_test

import (
	"fmt"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/obs"
)

// BenchmarkMatcherThroughput is the headline comparison: forwarding a
// seeded probe stream through the merged (all-configurations,
// version-guarded) tables, indexed vs linear scan. docs/BENCHMARKS.md
// records the derived packets/sec and speedups; exp.Throughput emits the
// same comparison as an experiment row.
func BenchmarkMatcherThroughput(b *testing.B) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(40), apps.BandwidthCap(200), apps.IDSFatTree(4)} {
		n := buildNES(b, a)
		merged := dataplane.Merged(n)
		lg := dataplane.NewLoadGen(n, a.Topo, 11)
		indexed := map[int]dataplane.Matcher{}
		scan := map[int]dataplane.Matcher{}
		rules := 0
		for _, sw := range merged.Switches() {
			indexed[sw] = dataplane.Compile(merged[sw])
			scan[sw] = dataplane.Scan{Table: merged[sw]}
			rules += merged[sw].Len()
		}
		// Keep only probes at switches that install rules (fabric switches
		// off every route drop everything; both matchers would no-op).
		var probes []dataplane.Probe
		for _, p := range lg.Probes(8192) {
			if indexed[p.Switch] != nil {
				probes = append(probes, p)
			}
		}
		run := func(ms map[int]dataplane.Matcher) func(*testing.B) {
			return func(b *testing.B) {
				var buf []flowtable.Output
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := &probes[i%len(probes)]
					buf = ms[p.Switch].Process(buf[:0], p.Fields, p.InPort, p.Tag)
				}
			}
		}
		b.Run(fmt.Sprintf("%s-%drules/indexed", a.Name, rules), run(indexed))
		b.Run(fmt.Sprintf("%s-%drules/scan", a.Name, rules), run(scan))
	}
}

// BenchmarkEngineForwardCold measures first-batch engine forwarding: a
// fresh engine per iteration (built outside the timed region), so every
// iteration pays the cold-start costs — ring growth, matcher plan
// warm-up, free-list population — that the steady-state benchmark below
// deliberately excludes. ns/op divided by hops/op gives per-hop cost;
// hops/op is stable because the workload is seeded.
func BenchmarkEngineForwardCold(b *testing.B) {
	a := apps.BandwidthCap(40)
	n := buildNES(b, a)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			lg := dataplane.NewLoadGen(n, a.Topo, 13)
			batch := lg.Injections(256)
			var hops int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: workers})
				b.StartTimer()
				for _, in := range batch {
					if err := e.Inject(in.Host, in.Fields); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				hops += e.Processed()
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkEngineForwardSteady is the multi-core acceptance benchmark:
// one warm engine per worker count, each iteration a 256-packet
// InjectBatch plus a run to quiescence. The warm-up rounds before the
// timer absorb the cold-start skew the old combined benchmark mixed
// into every worker count, so ns/op here is the steady-state cost the
// scale-cores sweep measures, and the reported ns/hop and pps are
// directly comparable across worker counts. The delivery log is bounded
// so long runs do not accrete.
func BenchmarkEngineForwardSteady(b *testing.B) {
	a := apps.BandwidthCap(40)
	n := buildNES(b, a)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: workers, DeliveryLog: 1 << 14})
			lg := dataplane.NewLoadGen(n, a.Topo, 13)
			batch := lg.Injections(256)
			round := func() {
				if _, errs := e.InjectBatch(batch); errs != nil {
					b.Fatal(errs)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				round()
			}
			h0 := e.Processed()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			hops := float64(e.Processed()-h0) / float64(b.N)
			b.ReportMetric(hops, "hops/op")
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(e.Processed()-h0)/b.Elapsed().Seconds(), "hops/s")
				b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "pps")
			}
		})
	}
}

// BenchmarkEngineForwardObs is the telemetry overhead gate: the exact
// steady-state workload of BenchmarkEngineForwardSteady (one worker),
// metrics-off vs the full observability layer — sharded metrics, 1/64
// journey tracing, delivery sampling, and a live bus subscriber
// draining the feed. CI compares the two ns/op and fails the build when
// metrics-on exceeds metrics-off by more than 5% (docs/OBSERVABILITY.md
// explains why the margin holds: all hot-path recording is plain stores
// into per-worker shards, folded only at chunk barriers).
func BenchmarkEngineForwardObs(b *testing.B) {
	a := apps.BandwidthCap(40)
	n := buildNES(b, a)
	run := func(b *testing.B, o *obs.Obs) {
		e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 1, DeliveryLog: 1 << 14, Obs: o})
		lg := dataplane.NewLoadGen(n, a.Topo, 13)
		batch := lg.Injections(256)
		round := func() {
			if _, errs := e.InjectBatch(batch); errs != nil {
				b.Fatal(errs)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			round()
		}
		h0 := e.Processed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round()
		}
		b.StopTimer()
		b.ReportMetric(float64(e.Processed()-h0)/float64(b.N), "hops/op")
	}
	withSub := func(b *testing.B, o *obs.Obs) {
		sub := o.Bus.Subscribe(1024)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range sub.C {
			}
		}()
		defer func() { sub.Close(); <-drained }()
		run(b, o)
	}
	b.Run("metrics-off", func(b *testing.B) { run(b, nil) })
	b.Run("metrics-on", func(b *testing.B) {
		withSub(b, &obs.Obs{
			Metrics:        obs.NewMetrics(1),
			Bus:            obs.NewBus(),
			Trace:          obs.NewTracer(obs.DefaultSample, 1),
			DeliverySample: 16,
		})
	})
	// metrics-flight is the PR-9 full-stack leg: everything metrics-on
	// carries plus the flight recorder and the watchdog. CI gates it
	// against metrics-off at the same 1.05x ratio (the leg name must not
	// contain "metrics-on" or "metrics-off"; the gate matches substrings).
	b.Run("metrics-flight", func(b *testing.B) {
		withSub(b, &obs.Obs{
			Metrics:        obs.NewMetrics(1),
			Bus:            obs.NewBus(),
			Trace:          obs.NewTracer(obs.DefaultSample, 1),
			Flight:         obs.NewFlight(0, 1),
			Watch:          obs.NewWatchdog(obs.WatchOptions{}),
			DeliverySample: 16,
		})
	})
}
