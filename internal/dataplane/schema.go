package dataplane

import (
	"fmt"
	"math/bits"
	"sort"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// maxSchemaFields caps a schema at the width of the flat packet's
// presence bitmap. A program's header universe is derived from its rules
// and event guards — a handful of fields in every workload this system
// compiles — so the cap is a sanity bound in the spirit of nes.MaxEvents,
// not a practical limit.
const maxSchemaFields = 64

// Schema is a compiled program's header schema: every field name the
// program can test or write, interned to a small dense integer. It is
// built once per Plan (from the NES's flow tables and event guards) and
// shared by every matcher of that plan, so a packet interned at ingress
// stays valid at every switch and configuration of its program.
//
// Fields outside the schema are *inert*: no rule tests or writes them, so
// they cannot influence forwarding and pass through a journey unchanged.
// The flat representation therefore carries only schema fields; inert
// fields ride along on the shared, immutable ingress map and are folded
// back in at delivery (see materialize).
//
// Schemas are immutable after construction and safe for concurrent use.
type Schema struct {
	fields []string       // index -> name, sorted for determinism
	index  map[string]int // name -> index
}

// NewSchema interns the given field names (deduplicated, sorted). It
// panics beyond maxSchemaFields; see the constant.
func NewSchema(names []string) *Schema {
	uniq := map[string]bool{}
	for _, f := range names {
		uniq[f] = true
	}
	s := &Schema{index: make(map[string]int, len(uniq))}
	for f := range uniq {
		s.fields = append(s.fields, f)
	}
	sort.Strings(s.fields)
	if len(s.fields) > maxSchemaFields {
		panic(fmt.Sprintf("dataplane: program uses %d header fields; the flat packet representation caps at %d", len(s.fields), maxSchemaFields))
	}
	for i, f := range s.fields {
		s.index[f] = i
	}
	return s
}

// SchemaFor builds the schema of one compiled program: the union of every
// field its flow tables match, exclude, or set, plus every packet field
// its event guards test ("sw" and "pt" are location pseudo-fields,
// resolved statically against each event's location — see compileEvents —
// and never interned).
func SchemaFor(n *nes.NES) *Schema {
	return NewSchema(programFields(n))
}

// SchemaForPair builds one schema spanning both programs of a staged
// swap: the deployment shape of a live update (dataplane.MergedPair) is a
// single physical table holding both programs' rules, so its compiled
// form must intern both field universes consistently.
func SchemaForPair(old, new_ *nes.NES) *Schema {
	return NewSchema(append(programFields(old), programFields(new_)...))
}

// programFields collects the field names of one program (with possible
// duplicates; NewSchema dedups).
func programFields(n *nes.NES) []string {
	var out []string
	for ci := range n.Configs {
		for _, t := range n.Configs[ci].Tables {
			out = appendTableFields(out, t)
		}
	}
	for _, ev := range n.Events {
		for _, f := range ev.Guard.EqFields() {
			if f != netkat.FieldSw && f != netkat.FieldPt {
				out = append(out, f)
			}
		}
		for _, f := range ev.Guard.NeqFields() {
			if f != netkat.FieldSw && f != netkat.FieldPt {
				out = append(out, f)
			}
		}
	}
	return out
}

// SchemaForTables builds a schema from flow tables alone (no event
// guards) — the form standalone matcher tests use for merged tables.
func SchemaForTables(ts flowtable.Tables) *Schema {
	var out []string
	for _, t := range ts {
		out = appendTableFields(out, t)
	}
	return NewSchema(out)
}

func appendTableFields(out []string, t *flowtable.Table) []string {
	for ri := range t.Rules {
		r := &t.Rules[ri]
		for f := range r.Match.Fields {
			out = append(out, f)
		}
		for f := range r.Match.Excludes {
			out = append(out, f)
		}
		for _, g := range r.Groups {
			for f := range g.Sets {
				out = append(out, f)
			}
		}
	}
	return out
}

// Len returns the number of interned fields — the width of every flat
// value array of this schema.
func (s *Schema) Len() int { return len(s.fields) }

// Index returns the interned index of a field name.
func (s *Schema) Index(f string) (int, bool) {
	i, ok := s.index[f]
	return i, ok
}

// Field returns the name behind an interned index.
func (s *Schema) Field(i int) string { return s.fields[i] }

// intern loads a packet's schema fields into the flat value array in one
// pass, returning the presence bitmap (bit i set ⇔ field i present) and
// the inert carrier: nil when every field was interned (the common
// case), else the ingress map itself, retained by reference — its
// non-schema fields are inert by construction (no rule can test or
// write them), so the engine never copies them, it only reads them back
// at the egress conversion. vals must be at least Len() long; slots
// without a presence bit are left as-is (matching and materialization
// read values only under their bit, so recycled arrays need no zeroing).
// This is the single ingress-boundary conversion.
// Flat values are int32: header values in this system are host
// addresses, ports and small program constants. The boundaries enforce
// the domain — ValidateDomain runs at both injection entry points
// (Inject and InjectAsync) and lowerValue panics on out-of-range rule
// constants at compile time — so interning can never silently truncate
// and diverge from the map-form semantics.
func (s *Schema) intern(fields netkat.Packet, vals []int32) (uint64, netkat.Packet) {
	pres := uint64(0)
	n := 0
	for f, v := range fields {
		if i, ok := s.index[f]; ok {
			vals[i] = int32(v)
			pres |= 1 << uint(i)
			n++
		}
	}
	if n == len(fields) {
		return pres, nil
	}
	return pres, fields
}

// ValidateDomain rejects packets with header values outside the int32
// flat-value domain (uniformly, inert fields included). Both injection
// entry points call it, so a served-mode client gets the error back
// rather than a silent drop at the admission barrier.
func ValidateDomain(fields netkat.Packet) error {
	for f, v := range fields {
		if int(int32(v)) != v {
			return fmt.Errorf("dataplane: header field %q value %d outside the int32 flat-value domain", f, v)
		}
	}
	return nil
}

// materialize rebuilds the full header map of a flat packet: the inert
// fields of its retained ingress map (those outside the schema; schema
// fields reflect the current flat values instead) plus the current value
// of every present schema field. This is the single egress-boundary
// conversion — the only place the hot path ever builds a header map.
func (s *Schema) materialize(inert netkat.Packet, vals []int32, pres uint64) netkat.Packet {
	out := make(netkat.Packet, len(inert)+bits.OnesCount64(pres))
	for f, v := range inert {
		if _, ok := s.index[f]; !ok {
			out[f] = v
		}
	}
	for p := pres; p != 0; p &= p - 1 {
		i := bits.TrailingZeros64(p)
		out[s.fields[i]] = int(vals[i])
	}
	return out
}
