package dataplane_test

import (
	"sort"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/runtime"
)

// runEngine injects the batches round by round (Run between batches, so
// event reactions influence later stamps) and returns the delivery
// sequence.
func runEngine(t *testing.T, a apps.App, opts dataplane.Options, batches [][]dataplane.Injection) []dataplane.Delivery {
	t.Helper()
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, opts)
	for _, batch := range batches {
		for _, in := range batch {
			if err := e.Inject(in.Host, in.Fields); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return e.Deliveries()
}

// loadBatches derives a deterministic multi-round workload from the
// engine's load generator.
func loadBatches(t *testing.T, a apps.App, rounds, perRound int) [][]dataplane.Injection {
	t.Helper()
	n := buildNES(t, a)
	lg := dataplane.NewLoadGen(n, a.Topo, 7)
	var out [][]dataplane.Injection
	for i := 0; i < rounds; i++ {
		out = append(out, lg.Injections(perRound))
	}
	return out
}

func sameDeliveries(a, b []dataplane.Delivery) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Host != b[i].Host || !a[i].Fields.Equal(b[i].Fields) {
			return false
		}
	}
	return true
}

// TestEngineDeterministicAcrossWorkers is the acceptance property for the
// sharded engine: the delivery sequence (not just multiset) is identical
// at 1, 2 and 4 workers, under both forwarding modes. Run with -race in
// CI, this doubles as the engine's race test.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	cases := []apps.App{apps.Firewall(), apps.BandwidthCap(10), apps.IDSFatTree(4)}
	for _, a := range cases {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			batches := loadBatches(t, a, 3, 60)
			base := runEngine(t, a, dataplane.Options{Workers: 1}, batches)
			if len(base) == 0 {
				t.Fatalf("workload delivered nothing; test is vacuous")
			}
			for _, w := range []int{2, 4} {
				got := runEngine(t, a, dataplane.Options{Workers: w}, batches)
				if !sameDeliveries(base, got) {
					t.Fatalf("deliveries differ between 1 and %d workers: %d vs %d packets", w, len(base), len(got))
				}
			}
			scan := runEngine(t, a, dataplane.Options{Workers: 4, Mode: dataplane.ModeScan}, batches)
			if !sameDeliveries(base, scan) {
				t.Fatalf("scan plane deliveries differ from indexed: %d vs %d packets", len(base), len(scan))
			}
		})
	}
}

// TestEngineTaggedSemantics drives the stateful firewall scenario through
// the engine: incoming traffic is dropped until the outgoing packet's
// arrival at s4 enables the event, after which the return path opens —
// the Section 4 behavior, with the event reaction taking effect on the
// very next injection.
func TestEngineTaggedSemantics(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2})

	in := func(host string, fields netkat.Packet) {
		t.Helper()
		if err := e.Inject(host, fields); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}

	in("H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)})
	if got := len(e.DeliveredTo("H1")); got != 0 {
		t.Fatalf("incoming delivered before the outgoing event: %d packets", got)
	}
	in("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)})
	if got := len(e.DeliveredTo("H4")); got != 1 {
		t.Fatalf("outgoing not delivered: %d packets", got)
	}
	if e.View(4).Count() == 0 {
		t.Fatalf("s4 did not detect the outgoing-arrival event; view %v", e.View(4))
	}
	in("H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)})
	if got := len(e.DeliveredTo("H1")); got != 1 {
		t.Fatalf("incoming still dropped after the event: %d packets", got)
	}
}

// deliveryKeys canonicalizes a delivery multiset.
func deliveryKeys(ds []dataplane.Delivery) []string {
	out := make([]string, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Host+"|"+d.Fields.Key())
	}
	sort.Strings(out)
	return out
}

// TestEngineMatchesMachine cross-checks the engine against the Figure 7
// reference machine on a scripted firewall scenario: injecting the same
// packets round by round (quiescence between rounds) must deliver the
// same multiset, for several machine schedules.
func TestEngineMatchesMachine(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	script := []struct {
		host   string
		fields netkat.Packet
	}{
		{"H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)}},
		{"H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}},
		{"H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)}},
		{"H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1), "id": 2}},
		{"H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4), "id": 2}},
	}

	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 4})
	for _, s := range script {
		if err := e.Inject(s.host, s.fields); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	want := deliveryKeys(e.Deliveries())

	for seed := int64(1); seed <= 5; seed++ {
		m := runtime.New(n, a.Topo, seed, false)
		for _, s := range script {
			if err := m.Inject(s.host, s.fields); err != nil {
				t.Fatal(err)
			}
			if err := m.RunToQuiescence(); err != nil {
				t.Fatal(err)
			}
		}
		var got []dataplane.Delivery
		for _, d := range m.Deliveries {
			got = append(got, dataplane.Delivery{Host: d.Host, Fields: d.Fields})
		}
		gk := deliveryKeys(got)
		if len(gk) != len(want) {
			t.Fatalf("seed %d: machine delivered %d, engine %d", seed, len(gk), len(want))
		}
		for i := range gk {
			if gk[i] != want[i] {
				t.Fatalf("seed %d: delivery multiset differs at %d: %s vs %s", seed, i, gk[i], want[i])
			}
		}
	}
}
