package dataplane

import (
	"testing"

	"eventnet/internal/obs"
)

// obsFull builds a fully-enabled observability layer: metrics, bus,
// tracing at the given sample rate, flight recorder and watchdog — the
// zero-alloc pin below covers every hot-path recorder at once.
func obsFull(sample int) *obs.Obs {
	return &obs.Obs{
		Metrics:        obs.NewMetrics(1),
		Bus:            obs.NewBus(),
		Trace:          obs.NewTracer(sample, 1),
		Flight:         obs.NewFlight(0, 1),
		Watch:          obs.NewWatchdog(obs.WatchOptions{}),
		DeliverySample: 1,
	}
}

// TestEngineHopLoopZeroAllocObs pins the tentpole property of the
// observability layer: the steady-state hop loop still allocates
// nothing with metrics on, *every* packet traced (sample rate 1 —
// stricter than the CI-advertised 1/64), and the flight recorder
// capturing every delivery and detection. All hot-path recording must
// be plain stores into preallocated shards; the 600-generation window
// contains no boundary, so nothing may defer allocation into the
// measured loop either.
func TestEngineHopLoopZeroAllocObs(t *testing.T) {
	o := obsFull(1)
	e, pkt := loopEngineOpts(t, Options{Workers: 1, Obs: o})
	if err := e.Inject("H1", pkt); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil { // warm-up journey
		t.Fatal(err)
	}
	if err := e.Inject("H1", pkt); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(600, func() { e.generation() }); n != 0 {
		t.Fatalf("hop loop with metrics+tracing allocates %.3f times per generation; want 0", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The layer actually recorded: hops counted, the traced journey's
	// records were captured (the TTL reclaim completes it at the final
	// boundary).
	if got := o.Metrics.Counter(obs.CtrHops); got == 0 {
		t.Fatalf("CtrHops = 0 after a TTL journey; metrics were not recorded")
	}
	if got := o.Metrics.Counter(obs.CtrTTLDrops); got == 0 {
		t.Fatalf("CtrTTLDrops = 0; the loop workload must end in TTL reclaim")
	}
	if got := o.Metrics.HistCount(obs.HistHopNs); got == 0 {
		t.Fatalf("hop-latency histogram empty; chunk timing was not folded")
	}
	if d := e.FlightDump(); len(d.Records) == 0 {
		t.Fatalf("flight record empty; the recorder was not written")
	}
}

// TestEngineObsCountersMatchSnapshot cross-checks the folded counters
// against the engine's own accounting on the same run.
func TestEngineObsCountersMatchSnapshot(t *testing.T) {
	o := obsFull(1)
	e, pkt := loopEngineOpts(t, Options{Workers: 1, Obs: o})
	for i := 0; i < 3; i++ {
		if err := e.Inject("H1", pkt); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Snapshot()
	if got, want := o.Metrics.Counter(obs.CtrHops), s.Processed; got != want {
		t.Fatalf("CtrHops = %d, Snapshot.Processed = %d", got, want)
	}
	if got, want := o.Metrics.Counter(obs.CtrTTLDrops), s.TTLDropped; got != want {
		t.Fatalf("CtrTTLDrops = %d, Snapshot.TTLDropped = %d", got, want)
	}
	if got := o.Metrics.Counter(obs.CtrInjections); got != 3 {
		t.Fatalf("CtrInjections = %d, want 3", got)
	}
	if got, want := o.Metrics.Counter(obs.CtrGenerations), s.Generation; got != want {
		// Generations with zero hops (quiescence probes) are not counted;
		// every counted one must exist.
		if got > want {
			t.Fatalf("CtrGenerations = %d > engine generation %d", got, want)
		}
	}
}
