package dataplane_test

import (
	"fmt"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
)

// Example compiles the stateful firewall, pushes a seeded batch of
// traffic through the sharded engine, and reports the deliveries. The
// load generator's fixed seed makes every count deterministic; the
// packets/sec figure depends on the machine, so only its positivity is
// printed.
func Example() {
	a := apps.Firewall()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		panic(err)
	}
	n, err := e.ToNES()
	if err != nil {
		panic(err)
	}

	eng := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2})
	lg := dataplane.NewLoadGen(n, a.Topo, 7)

	// Two rounds of 50: the first round's outgoing H1->H4 packet enables
	// the firewall event at s4, so the second round's incoming H4->H1
	// traffic is stamped with the open configuration and gets through.
	injected := 0
	start := time.Now()
	for round := 0; round < 2; round++ {
		for _, in := range lg.Injections(50) {
			if err := eng.Inject(in.Host, in.Fields); err != nil {
				panic(err)
			}
			injected++
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
	}
	pps := float64(eng.Processed()) / time.Since(start).Seconds()

	fmt.Printf("injected %d packets over %d switch-hops\n", injected, eng.Processed())
	fmt.Printf("delivered: H1=%d H4=%d\n", len(eng.DeliveredTo("H1")), len(eng.DeliveredTo("H4")))
	fmt.Printf("throughput measured: %v\n", pps > 0)
	// Output:
	// injected 100 packets over 133 switch-hops
	// delivered: H1=16 H4=17
	// throughput measured: true
}
