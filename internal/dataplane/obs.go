package dataplane

import (
	"time"

	"eventnet/internal/nes"
	"eventnet/internal/obs"
)

// Boundary-time observability: everything here runs in serial engine
// contexts (boundary(), Do closures, the generation tail), where
// workers are quiescent and allocation is fine. The hop loop's only
// observability work is the plain shard stores in hop/drain; this file
// is where those shards are folded, the bus is fed, and journeys are
// stitched.

// detRec is one event detection captured on the hop loop for the bus: a
// plain struct store into the worker's preallocated ring (nes.Set is a
// string, so the copy does not allocate).
type detRec struct {
	sw      int32
	epoch   int32
	version int32
	seq     int64
	gen     int64
	events  nes.Set
}

// detRingCap bounds each worker's per-boundary detection ring;
// overflow is counted and folded into the bus drop counter.
const detRingCap = 256

// obsDeltaCounters is the number of counters tracked for stats-delta
// bus events; deltaCtrs names them in StatsDelta field order.
const obsDeltaCounters = 8

var deltaCtrs = [obsDeltaCounters]obs.Counter{
	obs.CtrGenerations, obs.CtrHops, obs.CtrInjections, obs.CtrDeliveries,
	obs.CtrRuleDrops, obs.CtrTTLDrops, obs.CtrEventsFired, obs.CtrDrainedHops,
}

// flushObs is the boundary fold: publish shard deltas into the metrics
// atomics, refresh gauges, drain detection rings and delivery samples
// onto the bus, stitch and emit completed journeys, and publish a stats
// delta when anything moved. Serial context only.
func (e *Engine) flushObs() {
	if e.met != nil {
		e.met.Fold()
		e.met.SetGauge(obs.GaugePending, int64(e.pending()))
		e.met.SetGauge(obs.GaugeEpoch, int64(e.cur().epoch))
		e.met.SetGauge(obs.GaugePrograms, int64(len(e.progs)))
		dl := len(e.deliveries)
		for _, wk := range e.ws {
			dl += len(wk.dlog)
		}
		e.met.SetGauge(obs.GaugeDeliveryLog, int64(dl))
		if e.bus != nil {
			e.met.SetGauge(obs.GaugeWatchSubscribers, int64(e.bus.Subscribers()))
			e.met.SetGauge(obs.GaugeWatchDropped, e.bus.Dropped())
		}
		if e.flight != nil {
			e.met.SetGauge(obs.GaugeFlightEvicted, e.flight.Evicted())
		}
		e.nowNs = time.Now().UnixNano()
	}
	if e.bus != nil {
		for _, wk := range e.ws {
			for i := 0; i < wk.detN; i++ {
				r := &wk.detRing[i]
				e.bus.Publish(obs.Event{
					Kind: obs.KindEvent, Gen: r.gen,
					Epoch: int(r.epoch), Version: int(r.version),
					Switch: int(r.sw), PacketSeq: r.seq,
					Events: r.events.Elems(),
				})
			}
			wk.detN = 0
			if wk.detDrops != 0 {
				e.bus.CountDropped(wk.detDrops)
				wk.detDrops = 0
			}
		}
	}
	e.flushDeliverySamples()
	if e.tracer != nil {
		done, drops := e.tracer.Flush(e.gen)
		if e.met != nil {
			if drops > 0 {
				e.met.Add(obs.CtrTraceRecDrops, drops)
			}
			for _, j := range done {
				e.met.Inc(obs.CtrTraces)
				if j.Truncated {
					e.met.Inc(obs.CtrTracesTruncated)
				}
			}
			e.met.SetGauge(obs.GaugeTracePending, int64(e.tracer.Pending()))
			e.met.SetGauge(obs.GaugeTraceOrphans, e.tracer.Orphans())
		}
		if e.bus != nil {
			for _, j := range done {
				e.bus.Publish(obs.Event{
					Kind: obs.KindTrace, Gen: e.gen, Epoch: j.Epoch,
					Trace: j,
				})
			}
		}
	}
	if e.bus != nil && e.met != nil && e.bus.Active() {
		var cur [obsDeltaCounters]int64
		any := false
		for i, c := range deltaCtrs {
			cur[i] = e.met.Counter(c)
			if cur[i] != e.lastPub[i] {
				any = true
			}
		}
		if any {
			e.bus.Publish(obs.Event{
				Kind: obs.KindStats, Gen: e.gen, Epoch: e.cur().epoch,
				Stats: &obs.StatsDelta{
					Generations: cur[0] - e.lastPub[0],
					Hops:        cur[1] - e.lastPub[1],
					Injections:  cur[2] - e.lastPub[2],
					Deliveries:  cur[3] - e.lastPub[3],
					RuleDrops:   cur[4] - e.lastPub[4],
					TTLDrops:    cur[5] - e.lastPub[5],
					Events:      cur[6] - e.lastPub[6],
					DrainedHops: cur[7] - e.lastPub[7],
					Pending:     e.met.Gauge(obs.GaugePending),
					DeliveryLog: e.met.Gauge(obs.GaugeDeliveryLog),
				},
			})
			e.lastPub = cur
		}
	}
	// The flight recorder gets its own boundary stats record, on its own
	// delta baseline: the bus delta above only advances while someone is
	// subscribed, and a flight dump must read the same whether or not a
	// /watch client happened to be attached (determinism across equal
	// executions). The recorded deltas are engine totals — worker-count
	// independent by the fold.
	if e.flight != nil && e.met != nil {
		var cur [obsDeltaCounters]int64
		any := false
		for i, c := range deltaCtrs {
			cur[i] = e.met.Counter(c)
			if cur[i] != e.lastFl[i] {
				any = true
			}
		}
		if any {
			e.flight.Serial(obs.FlightRec{
				Kind: obs.FlightStats, Gen: e.gen, Seq: e.seq,
				Epoch: int32(e.cur().epoch),
				Stats: &obs.StatsDelta{
					Generations: cur[0] - e.lastFl[0],
					Hops:        cur[1] - e.lastFl[1],
					Injections:  cur[2] - e.lastFl[2],
					Deliveries:  cur[3] - e.lastFl[3],
					RuleDrops:   cur[4] - e.lastFl[4],
					TTLDrops:    cur[5] - e.lastFl[5],
					Events:      cur[6] - e.lastFl[6],
					DrainedHops: cur[7] - e.lastFl[7],
					Pending:     int64(e.pending()),
					DeliveryLog: e.met.Gauge(obs.GaugeDeliveryLog),
				},
			})
			e.lastFl = cur
		}
	}
	if e.watch != nil {
		e.watch.Check(e.gen, e.met, e.bus)
	}
}

// FlightDump stitches the flight recorder's rings at a generation
// barrier (Do), where worker-ring writers are quiescent. Nil when no
// recorder is attached. The dump is repeatable — the rings are not
// consumed.
func (e *Engine) FlightDump() *obs.FlightDump {
	if e.flight == nil {
		return nil
	}
	var d *obs.FlightDump
	e.Do(func() { d = e.flight.Dump() })
	return d
}

// flushDeliverySamples publishes every Nth delivery (N =
// Obs.DeliverySample, counted across the merged order of appearance)
// from the per-worker log tails. It runs at boundaries and at the top
// of mergeDeliveries — the cursors index into dlog, which the merge
// resets — so every delivery is counted exactly once. Field maps are
// materialized here, never on the hop loop.
func (e *Engine) flushDeliverySamples() {
	if e.bus == nil || e.dsample <= 0 {
		for _, wk := range e.ws {
			wk.dlogFlushed = len(wk.dlog)
		}
		return
	}
	active := e.bus.Active()
	for _, wk := range e.ws {
		for i := wk.dlogFlushed; i < len(wk.dlog); i++ {
			e.dcount++
			if active && e.dcount%int64(e.dsample) == 0 {
				d := &wk.dlog[i]
				e.bus.Publish(obs.Event{
					Kind: obs.KindDelivery, Gen: e.gen,
					Epoch: d.stamp.Epoch, Version: d.stamp.Version,
					Host: d.host, PacketSeq: d.seq, Branch: d.branch,
					Fields: map[string]int(d.schema.materialize(d.inert, d.vals, d.pres)),
				})
			}
		}
		wk.dlogFlushed = len(wk.dlog)
	}
}

// foldChunkTime observes the chunk's amortized per-hop latency into the
// worker's shard: one pair of clock reads per chunk (hundreds of hops),
// not per hop, keeps the metrics-on overhead inside the CI gate.
func (wk *worker) foldChunkTime(t0 int64) {
	if wk.ms == nil {
		return
	}
	if wk.chunkHops > 0 {
		el := time.Now().UnixNano() - t0
		if el < 0 {
			el = 0
		}
		wk.ms.ObserveN(obs.HistHopNs, el/wk.chunkHops, wk.chunkHops)
	}
	wk.chunkHops = 0
}
