package dataplane_test

import (
	"testing"

	"eventnet/internal/dataplane"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
)

// TestLowerRuleIRMatchesMapPath holds the flat-IR fast path and the
// map-form lowering together: on every reachable state of every
// application, every compiled rule carries a flat IR, and lowering
// through it is identical to rederiving the sorted literal arrays from
// the Match maps. This is the oracle that lets the hot path skip the
// map-form intermediate.
func TestLowerRuleIRMatchesMapPath(t *testing.T) {
	for _, a := range propApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range states {
				pol := stateful.Project(a.Prog.Cmd, st)
				tables, err := nkc.Compile(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: %v", st, err)
				}
				schema := dataplane.SchemaForTables(tables)
				for _, sw := range tables.Switches() {
					for i := range tables[sw].Rules {
						r := &tables[sw].Rules[i]
						if r.IR == nil {
							t.Fatalf("state %v sw %d rule %d: compiler emitted no flat IR", st, sw, i)
						}
						if !dataplane.LowerIRMatchesMap(r, schema) {
							t.Fatalf("state %v sw %d rule %d: IR lowering diverges from map lowering\nrule: %+v\nIR: %+v",
								st, sw, i, *r, *r.IR)
						}
					}
				}
			}
		})
	}
}
