package dataplane

import (
	"fmt"
	"time"

	"eventnet/internal/nes"
	"eventnet/internal/obs"
)

// Batched ingress: the per-packet Inject boundary (host resolution,
// schema interning, domain validation, and — in served mode — one
// lock/boundary round trip per packet) is the measured bottleneck ahead
// of the ~100ns hop loop. A batch amortizes the program lookup and the
// admission boundary over the whole slice while keeping per-packet
// semantics bit-identical to sequential injection.

// batchErr records a per-packet failure at index i of a batch, lazily
// allocating the error slice (the steady state is an error-free batch).
func batchErr(errs []error, n, i int, err error) []error {
	if errs == nil {
		errs = make([]error, n)
	}
	errs[i] = err
	return errs
}

// InjectBatch admits a batch of packets, semantically identical to
// calling InjectStamped for each element in order: packets are stamped
// and queued in slice order, a packet that fails validation (unknown
// host, out-of-domain value) is skipped without consuming a sequence
// slot, and the rest of the batch is still admitted. stamps[i] is the
// (epoch, version) stamp of packet i; errs is nil when every packet was
// admitted, otherwise errs[i] non-nil marks the rejected packets (and
// stamps[i] is zero). Synchronous mode only, like Inject; the fields
// maps are retained read-only when they carry non-schema fields.
func (e *Engine) InjectBatch(ins []Injection) ([]Stamp, []error) {
	stamps := make([]Stamp, len(ins))
	var errs []error
	cp := e.cur()
	width := cp.schema.Len()
	wk := e.ws[0]
	var now int64
	if e.met != nil {
		// One clock read stamps the whole batch (they are admitted at one
		// boundary anyway).
		now = time.Now().UnixNano()
		e.nowNs = now
	}
	for bi := range ins {
		in := &ins[bi]
		h, ok := e.hostBy[in.Host]
		if !ok {
			errs = batchErr(errs, len(ins), bi, fmt.Errorf("dataplane: unknown host %q", in.Host))
			continue
		}
		if err := ValidateDomain(in.Fields); err != nil {
			errs = batchErr(errs, len(ins), bi, err)
			continue
		}
		i := e.swIdx[h.Attach.Switch]
		st := Stamp{Epoch: cp.epoch, Version: cp.gAt(cp.views[i])}
		e.seq++
		vals := wk.takeVals(width)
		pres, inert := cp.schema.intern(in.Fields, vals)
		var tid int32
		if e.met != nil {
			wk.ms.Inc(obs.CtrInjections)
		}
		if e.tracer != nil {
			tid = e.tracer.Sample(in.Host, e.seq, e.gen, st.Epoch, st.Version)
		}
		e.rings[i].push(&qpkt{
			vals:    vals,
			pres:    pres,
			inert:   inert,
			inPort:  h.Attach.Port,
			epoch:   st.Epoch,
			version: st.Version,
			digest:  nes.Empty,
			seq:     e.seq,
			tns:     now,
			trace:   tid,
		})
		cp.inflight++
		stamps[bi] = st
	}
	return stamps, errs
}

// InjectAsyncBatch queues a batch for admission at one boundary of a
// serving engine: validation (host and value domain) happens here,
// per-packet, outside the boundary, and the admissible packets are
// cloned and enqueued under one lock — one supervisor round trip for
// the whole batch instead of one per packet. errs follows the
// InjectBatch convention (nil = all admitted). On a non-serving engine
// the batch is admitted inline.
func (e *Engine) InjectAsyncBatch(ins []Injection) []error {
	var errs []error
	reqs := make([]injectReq, 0, len(ins))
	for bi := range ins {
		in := &ins[bi]
		if _, ok := e.hostBy[in.Host]; !ok {
			errs = batchErr(errs, len(ins), bi, fmt.Errorf("dataplane: unknown host %q", in.Host))
			continue
		}
		if err := ValidateDomain(in.Fields); err != nil {
			errs = batchErr(errs, len(ins), bi, err)
			continue
		}
		reqs = append(reqs, injectReq{host: in.Host, fields: in.Fields.Clone()})
	}
	e.wmu.Lock()
	if !e.serving {
		e.wmu.Unlock()
		for i := range reqs {
			// Validated above; cannot fail.
			e.Inject(reqs[i].host, reqs[i].fields)
		}
		return errs
	}
	e.inbox = append(e.inbox, reqs...)
	e.boundReq.Store(true)
	e.cond.Broadcast()
	e.wmu.Unlock()
	return errs
}
