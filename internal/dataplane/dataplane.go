// Package dataplane is the high-throughput packet-forwarding engine: it
// *compiles* each switch's prioritized flow table (flowtable.Table) into an
// indexed matcher instead of scanning it rule by rule, and forwards traffic
// through those matchers on a sharded, deterministic worker engine that
// carries the version-tag and event-digest semantics of Section 4.1 of the
// paper on the fast path.
//
// The layers, bottom up:
//
//   - Matcher (compile.go): one switch's table compiled per
//     (version-guard partition, in-port) into an exact-match hash index
//     over the discriminating header fields, with a rank-merged fallback
//     list for wildcard/exclusion rules. Lookup is O(1)+verification
//     instead of O(rules); the hot path performs no per-packet map or
//     string construction.
//   - Schema + flat lowering (schema.go, flat.go): a per-program
//     FieldSchema interns every header field the program can test or
//     write to a dense integer; rules, action groups and event guards
//     lower once to flat (fieldIdx, value) arrays, and the engine's
//     packets become fixed-width []int32 value arrays with a presence
//     bitmap — in-place field writes, no maps or strings on the hop
//     loop, conversion exactly once at ingress and delivery.
//   - Plan (plan.go): every (configuration, switch) table of an NES
//     compiled once, cached per NES, with an amortized batch API and the
//     lazily-lowered flat mirror. Merged builds the Section 5.3
//     deployment shape — one table per switch holding all
//     configurations' rules behind exact version guards — whose guard
//     partitions are where indexing pays off most.
//   - Engine (engine.go): per-switch forwarding workers fed by ring-buffer
//     queues, processing packets in deterministic bulk-synchronous
//     generations. Switches keep local event views, react to locally
//     detected events immediately, and gossip digests on every emitted
//     packet, so ETS transitions remain event-driven consistent under
//     concurrent load.
//   - LoadGen (loadgen.go): a deterministic line-rate traffic source for
//     the throughput harness (exp.Throughput, cmd/experiments -only
//     throughput) and the package benchmarks.
//
// See docs/DATAPLANE.md for the compilation scheme, the batch/worker
// architecture, and why fast-path tag+digest handling preserves the
// paper's Theorem 1.
package dataplane

import (
	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
)

// Mode selects a forwarding implementation: the compiled index or the
// reference linear scan (the baseline in benchmarks and the -dataplane
// CLI selectors).
type Mode int

// Modes.
const (
	ModeIndexed Mode = iota
	ModeScan
)

// ParseMode maps the CLI spelling to a Mode.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "indexed":
		return ModeIndexed, true
	case "scan":
		return ModeScan, true
	}
	return ModeIndexed, false
}

// String renders the mode as its CLI spelling.
func (m Mode) String() string {
	if m == ModeScan {
		return "scan"
	}
	return "indexed"
}

// Matcher matches packets against one switch's flow table. Both the
// compiled index and the linear-scan reference implement it; equivalence
// is property-tested on every reachable configuration of every
// application.
type Matcher interface {
	// Lookup returns the highest-priority rule admitting the packet.
	Lookup(pkt netkat.Packet, inPort int, tag uint32) (*flowtable.Rule, bool)
	// Process applies the winning rule's action groups, appending the
	// emitted copies to dst (untouched when no rule matches: default
	// drop). Reusing dst across calls keeps the hot path allocation-free
	// apart from the clones rewriting groups inherently need.
	Process(dst []flowtable.Output, pkt netkat.Packet, inPort int, tag uint32) []flowtable.Output
	// Len returns the number of rules behind the matcher.
	Len() int
}

// Scan is the reference Matcher: a priority-ordered linear scan over the
// underlying table, one flowtable.Match.Matches call per rule.
type Scan struct{ Table *flowtable.Table }

// Lookup implements Matcher.
func (s Scan) Lookup(pkt netkat.Packet, inPort int, tag uint32) (*flowtable.Rule, bool) {
	rs := s.Table.Rules
	for i := range rs {
		if rs[i].Match.Matches(pkt, inPort, tag) {
			return &rs[i], true
		}
	}
	return nil, false
}

// Process implements Matcher.
func (s Scan) Process(dst []flowtable.Output, pkt netkat.Packet, inPort int, tag uint32) []flowtable.Output {
	return s.Table.AppendProcess(dst, pkt, inPort, tag)
}

// Len implements Matcher.
func (s Scan) Len() int { return s.Table.Len() }
