package dataplane

import (
	"testing"

	"eventnet/internal/netkat"
)

// TestEngineBatchedIngressSteadyAlloc pins the allocation budget of the
// steady-state batched ingress + hop loop: once the engine's rings,
// free lists and emission index are warm, an InjectBatch of unroutable
// packets (dropped at their first hop, so nothing accretes in the
// delivery log) followed by a full drain allocates only the returned
// stamps slice — the hop loop itself stays allocation-free, the
// property TestEngineHopLoopZeroAlloc pins for the per-packet path.
func TestEngineBatchedIngressSteadyAlloc(t *testing.T) {
	e, _ := loopEngine(t)
	ins := make([]Injection, 64)
	for i := range ins {
		// dst != 99 matches no rule: one hop, then drained.
		ins[i] = Injection{Host: "H1", Fields: netkat.Packet{"dst": 7}}
	}
	cycle := func() {
		if _, errs := e.InjectBatch(ins); errs != nil {
			t.Fatalf("batch rejected: %v", errs)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ { // warm rings, freelists, emitBuf
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 1 {
		t.Fatalf("steady-state batched cycle allocates %.1f times per batch, want <= 1 (the stamps slice)", avg)
	}
}
