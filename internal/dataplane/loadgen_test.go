package dataplane_test

import (
	"fmt"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
)

func loadGenFixture(t *testing.T, seed int64) *dataplane.LoadGen {
	t.Helper()
	a := apps.Firewall()
	et, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := et.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	return dataplane.NewLoadGen(n, a.Topo, seed)
}

func injectionKey(is []dataplane.Injection) string {
	s := ""
	for _, in := range is {
		s += fmt.Sprintf("%s|%s;", in.Host, in.Fields.Key())
	}
	return s
}

// TestLoadGenSeedDivergence: the documented derivation rule means linear
// seed schedules cannot alias — (seed 1, stream 2) and (seed 2, stream 1)
// produce different traffic, as do adjacent base seeds and a stream vs
// its parent. Equal (seed, stream) pairs stay reproducible.
func TestLoadGenSeedDivergence(t *testing.T) {
	const k = 256
	s1, s2 := loadGenFixture(t, 1), loadGenFixture(t, 2)
	if injectionKey(loadGenFixture(t, 1).Injections(k)) != injectionKey(loadGenFixture(t, 1).Injections(k)) {
		t.Fatal("equal seeds must reproduce the stream")
	}
	if injectionKey(loadGenFixture(t, 1).Injections(k)) == injectionKey(loadGenFixture(t, 2).Injections(k)) {
		t.Fatal("adjacent base seeds alias")
	}
	// The classical aliasing bug: per-stream generators derived as
	// seed+stream collide across (1,2) and (2,1). Derive must not.
	d12 := s1.Derive(2)
	d21 := s2.Derive(1)
	k12, k21 := injectionKey(d12.Injections(k)), injectionKey(d21.Injections(k))
	if k12 == k21 {
		t.Fatal("Derive aliases across (seed 1, stream 2) and (seed 2, stream 1)")
	}
	if k12 == injectionKey(loadGenFixture(t, 1).Injections(k)) {
		t.Fatal("derived stream equals its parent")
	}
	if k12 != injectionKey(loadGenFixture(t, 1).Derive(2).Injections(k)) {
		t.Fatal("equal (seed, stream) must reproduce")
	}
}

// TestLoadGenBatchSizes: every distribution is deterministic per seed,
// produces positive sizes, and the bursty and heavy-tailed shapes show
// the spread they exist for.
func TestLoadGenBatchSizes(t *testing.T) {
	const rounds, mean = 400, 8
	for _, dist := range []dataplane.ArrivalDist{
		dataplane.ArrivalUniform, dataplane.ArrivalBursty, dataplane.ArrivalHeavyTail,
	} {
		a := loadGenFixture(t, 9).BatchSizes(rounds, dist, mean)
		b := loadGenFixture(t, 9).BatchSizes(rounds, dist, mean)
		min, max, total := a[0], a[0], 0
		for i, s := range a {
			if s != b[i] {
				t.Fatalf("%v: round %d differs across equal seeds", dist, i)
			}
			if s < 1 {
				t.Fatalf("%v: empty batch at round %d", dist, i)
			}
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			total += s
		}
		if dist != dataplane.ArrivalUniform && max < 2*mean {
			t.Fatalf("%v: max batch %d shows no burst (mean %d)", dist, max, mean)
		}
		if dist == dataplane.ArrivalHeavyTail && min > mean {
			t.Fatalf("%v: min batch %d — no small rounds", dist, min)
		}
		if total == 0 {
			t.Fatalf("%v: no traffic", dist)
		}
	}
}
