package dataplane_test

import (
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// propApps is the property-test application set: the paper five plus the
// ring and every extension app.
func propApps() []apps.App {
	out := apps.All()
	out = append(out, apps.Ring(3), apps.WalledGarden(), apps.DistributedFirewall(), apps.IDSFatTree(4))
	return out
}

func buildNES(t testing.TB, a apps.App) *nes.NES {
	t.Helper()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("%s: ets.Build: %v", a.Name, err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatalf("%s: ToNES: %v", a.Name, err)
	}
	return n
}

// sameOutputs compares two output sequences exactly: the same winning
// rule must fire, so order and contents coincide.
func sameOutputs(a, b []flowtable.Output) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Port != b[i].Port || !a[i].Pkt.Equal(b[i].Pkt) {
			return false
		}
	}
	return true
}

// randProbe draws a packet/port/tag triple from the app's plausible value
// universe: host addresses plus small integers, over the fields the
// applications test.
func randProbe(r *rand.Rand, hosts []int) (netkat.Packet, int, uint32) {
	vals := append([]int{0, 1, 2}, hosts...)
	pkt := netkat.Packet{}
	for _, f := range []string{"dst", "src", "sig", "kind"} {
		if r.Intn(3) > 0 {
			pkt[f] = vals[r.Intn(len(vals))]
		}
	}
	tag := uint32(0)
	if r.Intn(4) == 0 {
		tag = uint32(r.Intn(8))
	}
	return pkt, r.Intn(6), tag
}

func hostAddrs(tp *topo.Topology) []int {
	var out []int
	for _, lk := range tp.AllLinks() {
		if h, ok := tp.HostByID(lk.Dst.Switch); ok {
			out = append(out, h.ID)
		}
	}
	return out
}

// TestMatcherEquivalence is the core acceptance property: on every
// reachable state of every application, for randomized packets, in-ports
// and tags, the compiled matcher's outputs are identical to the linear
// scan of the same table.
func TestMatcherEquivalence(t *testing.T) {
	for _, a := range propApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			hosts := hostAddrs(a.Topo)
			r := rand.New(rand.NewSource(23))
			for _, st := range states {
				pol := stateful.Project(a.Prog.Cmd, st)
				tables, err := nkc.Compile(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: %v", st, err)
				}
				for _, sw := range tables.Switches() {
					tbl := tables[sw]
					ct := dataplane.Compile(tbl)
					scan := dataplane.Scan{Table: tbl}
					if ct.Len() != scan.Len() {
						t.Fatalf("state %v sw %d: rule count %d != %d", st, sw, ct.Len(), scan.Len())
					}
					for i := 0; i < 200; i++ {
						pkt, port, tag := randProbe(r, hosts)
						got := ct.Process(nil, pkt, port, tag)
						want := scan.Process(nil, pkt, port, tag)
						if !sameOutputs(got, want) {
							t.Fatalf("state %v sw %d pkt %v port %d tag %d:\nindexed %v\nscan    %v\ntable:\n%v",
								st, sw, pkt, port, tag, got, want, tbl)
						}
					}
				}
			}
		})
	}
}

// matcherConfig realizes the configuration relation through compiled
// matchers (the dataplane analogue of nkc.CompiledConfig), for the
// netkat.Eval leg of the equivalence property.
type matcherConfig struct {
	ms   map[int]dataplane.Matcher
	topo *topo.Topology
}

func (c matcherConfig) DStep(d netkat.DPacket) []netkat.DPacket {
	var outs []netkat.DPacket
	switch {
	case c.topo.IsHostNode(d.Loc.Switch):
		if !d.Out {
			return nil
		}
		h, _ := c.topo.HostByID(d.Loc.Switch)
		outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Attach})
	case d.Out:
		if lk, ok := c.topo.LinkFrom(d.Loc); ok {
			if h, isHost := c.topo.HostByID(lk.Dst.Switch); isHost {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Loc()})
			} else {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: lk.Dst})
			}
		}
	default:
		if m, ok := c.ms[d.Loc.Switch]; ok {
			for _, o := range m.Process(nil, d.Pkt, d.Loc.Port, 0) {
				outs = append(outs, netkat.DPacket{Pkt: o.Pkt, Loc: netkat.Location{Switch: d.Loc.Switch, Port: o.Port}, Out: true})
			}
		}
	}
	return outs
}

// journey drives a DConfig exhaustively from a start point, returning the
// visited directed-packet set and the reached located-packet set.
func journey(t *testing.T, cfg netkat.DConfig, start netkat.DPacket) (map[string]bool, map[string]bool) {
	t.Helper()
	visited := map[string]bool{}
	reached := map[string]bool{}
	frontier := []netkat.DPacket{start}
	for steps := 0; len(frontier) > 0; steps++ {
		if steps > 10000 {
			t.Fatalf("journey from %v did not terminate", start)
		}
		var next []netkat.DPacket
		for _, d := range frontier {
			k := d.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			reached[d.LP().Key()] = true
			next = append(next, cfg.DStep(d)...)
		}
		frontier = next
	}
	return visited, reached
}

// TestMatcherEvalEquivalence closes the triangle with the reference
// evaluator: journeying host emissions through the compiled matchers
// visits exactly the directed packets the linear-scan tables visit, and
// every output netkat.Eval predicts for the state's projected policy is
// reached.
func TestMatcherEvalEquivalence(t *testing.T) {
	cases := []apps.App{apps.Firewall(), apps.LearningSwitch(), apps.Authentication(), apps.BandwidthCap(10), apps.IDS(), apps.WalledGarden(), apps.DistributedFirewall(), apps.Ring(3), apps.IDSFatTree(4)}
	for _, a := range cases {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			hosts := hostAddrs(a.Topo)
			for _, st := range states {
				pol := stateful.Project(a.Prog.Cmd, st)
				tables, err := nkc.Compile(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: %v", st, err)
				}
				indexed := matcherConfig{ms: map[int]dataplane.Matcher{}, topo: a.Topo}
				scan := matcherConfig{ms: map[int]dataplane.Matcher{}, topo: a.Topo}
				for _, sw := range tables.Switches() {
					indexed.ms[sw] = dataplane.Compile(tables[sw])
					scan.ms[sw] = dataplane.Scan{Table: tables[sw]}
				}
				var lps []netkat.LocatedPacket
				for _, lk := range a.Topo.AllLinks() {
					h, ok := a.Topo.HostByID(lk.Dst.Switch)
					if !ok {
						continue
					}
					for _, dst := range hosts {
						lps = append(lps,
							netkat.LocatedPacket{Pkt: netkat.Packet{"dst": dst, "src": h.ID}, Loc: h.Loc()},
							netkat.LocatedPacket{Pkt: netkat.Packet{"dst": dst, "sig": 1}, Loc: h.Loc()})
					}
				}
				for _, lp := range lps {
					start := netkat.DPacket{Pkt: lp.Pkt, Loc: lp.Loc, Out: true}
					visI, reachI := journey(t, indexed, start)
					visS, _ := journey(t, scan, start)
					if len(visI) != len(visS) {
						t.Fatalf("state %v from %v: indexed visits %d, scan visits %d", st, lp, len(visI), len(visS))
					}
					for k := range visI {
						if !visS[k] {
							t.Fatalf("state %v from %v: indexed visits %s, scan does not", st, lp, k)
						}
					}
					// The policy processes packets at switch ingress; the host
					// emission enters at the attachment port.
					h, _ := a.Topo.HostByID(lp.Loc.Switch)
					ingress := netkat.LocatedPacket{Pkt: lp.Pkt, Loc: h.Attach}
					for _, want := range netkat.Eval(pol, ingress) {
						if !reachI[want.Key()] {
							t.Fatalf("state %v: Eval predicts %v from %v but the matchers never reach it", st, want, ingress)
						}
					}
				}
			}
		})
	}
}

// TestMergedGuardEquivalence checks the Section 5.3 deployment shape: a
// merged table looked up under tag c behaves exactly like configuration
// c's own table, through both the guard-partitioned index and the linear
// scan.
func TestMergedGuardEquivalence(t *testing.T) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(10), apps.IDS()} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			n := buildNES(t, a)
			merged := dataplane.Merged(n)
			hosts := hostAddrs(a.Topo)
			r := rand.New(rand.NewSource(31))
			for _, sw := range merged.Switches() {
				ct := dataplane.Compile(merged[sw])
				mscan := dataplane.Scan{Table: merged[sw]}
				for ci := range n.Configs {
					cfgTbl, ok := n.Configs[ci].Tables[sw]
					var ref dataplane.Matcher = dataplane.Scan{Table: &flowtable.Table{}}
					if ok {
						ref = dataplane.Scan{Table: cfgTbl}
					}
					for i := 0; i < 100; i++ {
						pkt, port, _ := randProbe(r, hosts)
						tag := uint32(ci)
						got := ct.Process(nil, pkt, port, tag)
						viaScan := mscan.Process(nil, pkt, port, tag)
						want := ref.Process(nil, pkt, port, 0)
						if !sameOutputs(got, want) || !sameOutputs(viaScan, want) {
							t.Fatalf("sw %d config %d pkt %v port %d:\nindexed %v\nmerged-scan %v\nper-config %v",
								sw, ci, pkt, port, got, viaScan, want)
						}
					}
				}
			}
		})
	}
}

// TestPlanBatchProcess: the amortized batch API produces exactly the
// outputs of per-packet scan processing — same emissions in the same
// order, version and digest carried through — and is stable under output
// buffer reuse.
func TestPlanBatchProcess(t *testing.T) {
	a := apps.BandwidthCap(10)
	n := buildNES(t, a)
	indexed := dataplane.ForNES(n, dataplane.ModeIndexed)
	scan := dataplane.ForNES(n, dataplane.ModeScan)
	lg := dataplane.NewLoadGen(n, a.Topo, 41)
	var in []dataplane.Packet
	for i, p := range lg.Probes(300) {
		in = append(in, dataplane.Packet{
			Fields:  p.Fields,
			Switch:  p.Switch,
			Port:    p.InPort,
			Version: i % len(n.Configs),
			Digest:  nes.Singleton(i % 3),
		})
	}
	want := scan.Process(in, nil)
	if len(want) == 0 {
		t.Fatal("batch produced no outputs; test is vacuous")
	}
	var out []dataplane.Packet
	for round := 0; round < 2; round++ { // second round reuses the buffer
		out = indexed.Process(in, out[:0])
		if len(out) != len(want) {
			t.Fatalf("round %d: %d outputs, want %d", round, len(out), len(want))
		}
		for i := range out {
			g, w := out[i], want[i]
			if g.Switch != w.Switch || g.Port != w.Port || g.Version != w.Version || g.Digest != w.Digest || !g.Fields.Equal(w.Fields) {
				t.Fatalf("round %d output %d: got %+v want %+v", round, i, g, w)
			}
		}
	}
}
