package dataplane

import (
	"sort"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// This file is the flat (schema-interned) mirror of the matcher layer:
// every flowtable.Rule of a compiled plan is lowered once, at
// plan-compile time, into integer-indexed match/action arrays, and
// lookups run directly on a flat packet's value array and presence
// bitmap — no map lookups, no string hashing, no per-packet allocation.
//
// Lowering is a bijection on rule structure: one flatRule per rule in the
// same priority rank order, one flatGroup per action group in the same
// order, every literal translated through the plan's Schema. Because the
// schema interning is injective (one index per field name) and both the
// rules and the packets are translated through the same schema, a flat
// lookup selects exactly the rank the map-form lookup selects — the
// equivalence is property-tested on every reachable state of every
// application (flat_test.go).
//
// The indexed flat table reuses the map-form CompiledTable's bucketing
// verbatim: the guard partition, port buckets, discriminating-field
// choice, hash maps, and fallback lists are shared (the FNV fold over a
// rule's required values is identical whether the values are read from a
// map or a flat array), so the two forms cannot disagree on which
// candidates are probed, only verify them at different speeds.

// flatRule is one rule lowered against a schema.
type flatRule struct {
	guardValue uint32 // pre-masked
	guardMask  uint32
	inPort     int32 // flowtable.Wildcard for the wildcard bucket
	exPorts    []int32
	eqIdx      []int32 // equality literals: field index ...
	eqVal      []int32 // ... and required value, parallel
	eqMask     uint64  // presence bits of every equality field
	neqIdx     []int32 // exclusion literals: field index ...
	neqVal     []int32 // ... and excluded value, parallel
	groups     []flatGroup
}

// flatGroup is one action group lowered against a schema: in-place field
// writes plus the presence bits they establish.
type flatGroup struct {
	setIdx  []int32
	setVal  []int32
	setMask uint64
	outPort int32
}

// matches is flowtable.Match.Matches on the flat form: an absent field
// (presence bit clear) fails an equality literal and passes an exclusion
// literal.
func (r *flatRule) matches(vals []int32, pres uint64, inPort int, tag uint32) bool {
	if tag&r.guardMask != r.guardValue {
		return false
	}
	if r.inPort != flowtable.Wildcard {
		if int(r.inPort) != inPort {
			return false
		}
	} else {
		for _, p := range r.exPorts {
			if int(p) == inPort {
				return false
			}
		}
	}
	if pres&r.eqMask != r.eqMask {
		return false
	}
	for i, fi := range r.eqIdx {
		if vals[fi] != r.eqVal[i] {
			return false
		}
	}
	for i, fi := range r.neqIdx {
		if pres&(1<<uint(fi)) != 0 && vals[fi] == r.neqVal[i] {
			return false
		}
	}
	return true
}

// flatTable is one switch's table in flat form: rules in priority rank
// order, plus (in indexed mode) the guard-partition/port/hash structure
// shared with the map-form CompiledTable.
type flatTable struct {
	schema  *Schema
	rules   []flatRule
	parts   []flatPart
	indexed bool
}

// flatPart mirrors guardPart.
type flatPart struct {
	mask   uint32
	groups map[uint32]*flatPortIndex
}

// flatPortIndex mirrors portIndex.
type flatPortIndex struct {
	byPort map[int]*flatBucket
	wild   *flatBucket
}

// flatBucket mirrors bucket: the hash and fallback candidate lists are
// the *same slices and maps* as the map-form bucket's (hash values
// coincide, see hashFlat); only the key fields are resolved to schema
// indices.
type flatBucket struct {
	keyIdx   []int32 // nil: no index, everything in fallback
	index    map[uint64][]int32
	fallback []int32
}

// hashFlat folds the packet's values of the key fields into one hash —
// the identical FNV fold hashFields performs on the map form (both fold
// uint32 truncations of the same values in the same field order), so the
// shared bucket hash maps serve both forms. The second result is false
// when a key field is absent: no indexed rule can then match.
func hashFlat(vals []int32, pres uint64, keyIdx []int32) (uint64, bool) {
	h := uint64(fnvOffset64)
	for _, fi := range keyIdx {
		if pres&(1<<uint(fi)) == 0 {
			return 0, false
		}
		h ^= uint64(uint32(vals[fi]))
		h *= fnvPrime64
	}
	return h, true
}

// bestIn mirrors bucket.bestIn on the flat form.
func (b *flatBucket) bestIn(rules []flatRule, vals []int32, pres uint64, inPort int, tag uint32, bound int32) int32 {
	if b == nil {
		return bound
	}
	if b.keyIdx != nil {
		if h, ok := hashFlat(vals, pres, b.keyIdx); ok {
			for _, r := range b.index[h] {
				if r >= bound {
					break
				}
				if rules[r].matches(vals, pres, inPort, tag) {
					bound = r
					break
				}
			}
		}
	}
	for _, r := range b.fallback {
		if r >= bound {
			break
		}
		if rules[r].matches(vals, pres, inPort, tag) {
			bound = r
			break
		}
	}
	return bound
}

// lookup returns the winning rule's rank, or -1 on default drop. Scan
// mode walks the rules in priority order; indexed mode rank-merges the
// guard partition's candidate lists exactly as CompiledTable.Lookup.
func (ft *flatTable) lookup(vals []int32, pres uint64, inPort int, tag uint32) int32 {
	if !ft.indexed {
		for i := range ft.rules {
			if ft.rules[i].matches(vals, pres, inPort, tag) {
				return int32(i)
			}
		}
		return -1
	}
	best := int32(len(ft.rules))
	for pi := range ft.parts {
		p := &ft.parts[pi]
		g := p.groups[tag&p.mask]
		if g == nil {
			continue
		}
		best = g.byPort[inPort].bestIn(ft.rules, vals, pres, inPort, tag, best)
		best = g.wild.bestIn(ft.rules, vals, pres, inPort, tag, best)
	}
	if best == int32(len(ft.rules)) {
		return -1
	}
	return best
}

// newFlatIndexed lowers a CompiledTable against a schema, sharing its
// bucket structure.
func newFlatIndexed(ct *CompiledTable, s *Schema) *flatTable {
	ft := &flatTable{schema: s, indexed: true, rules: lowerRules(ct.rules, s)}
	ft.parts = make([]flatPart, len(ct.parts))
	for pi := range ct.parts {
		p := &ct.parts[pi]
		fp := flatPart{mask: p.mask, groups: make(map[uint32]*flatPortIndex, len(p.groups))}
		for v, g := range p.groups {
			fpi := &flatPortIndex{byPort: make(map[int]*flatBucket, len(g.byPort))}
			for pt, b := range g.byPort {
				fpi.byPort[pt] = lowerBucket(b, s)
			}
			if g.wild != nil {
				fpi.wild = lowerBucket(g.wild, s)
			}
			fp.groups[v] = fpi
		}
		ft.parts[pi] = fp
	}
	return ft
}

// newFlatScan lowers a table for the linear-scan reference plane.
func newFlatScan(t *flowtable.Table, s *Schema) *flatTable {
	return &flatTable{schema: s, rules: lowerRules(t.Rules, s)}
}

func lowerBucket(b *bucket, s *Schema) *flatBucket {
	fb := &flatBucket{index: b.index, fallback: b.fallback}
	for _, f := range b.keyFields {
		i, ok := s.Index(f)
		if !ok {
			panic("dataplane: bucket key field missing from plan schema")
		}
		fb.keyIdx = append(fb.keyIdx, int32(i))
	}
	return fb
}

func lowerRules(rs []flowtable.Rule, s *Schema) []flatRule {
	out := make([]flatRule, len(rs))
	for i := range rs {
		out[i] = lowerRule(&rs[i], s)
	}
	return out
}

func lowerRule(r *flowtable.Rule, s *Schema) flatRule {
	m := &r.Match
	fr := flatRule{
		guardValue: m.Guard.Value & m.Guard.Mask,
		guardMask:  m.Guard.Mask,
		inPort:     int32(m.InPort),
	}
	for _, p := range m.ExcludePorts {
		fr.exPorts = append(fr.exPorts, int32(p))
	}
	if r.IR != nil {
		lowerIR(&fr, r, s)
		return fr
	}
	for _, f := range sortedFieldKeys(m.Fields) {
		i := mustIndex(s, f)
		fr.eqIdx = append(fr.eqIdx, i)
		fr.eqVal = append(fr.eqVal, lowerValue(m.Fields[f]))
		fr.eqMask |= 1 << uint(i)
	}
	exFields := make([]string, 0, len(m.Excludes))
	for f := range m.Excludes {
		exFields = append(exFields, f)
	}
	sort.Strings(exFields)
	for _, f := range exFields {
		i := mustIndex(s, f)
		for _, v := range m.Excludes[f] {
			fr.neqIdx = append(fr.neqIdx, i)
			fr.neqVal = append(fr.neqVal, lowerValue(v))
		}
	}
	for _, g := range r.Groups {
		fg := flatGroup{outPort: int32(g.OutPort)}
		for _, f := range sortedFieldKeys(g.Sets) {
			i := mustIndex(s, f)
			fg.setIdx = append(fg.setIdx, i)
			fg.setVal = append(fg.setVal, lowerValue(g.Sets[f]))
			fg.setMask |= 1 << uint(i)
		}
		fr.groups = append(fr.groups, fg)
	}
	return fr
}

// lowerIR fills a flat rule's field literals and action groups from the
// compiler's pre-sorted flat IR, skipping the map-form rederivation (key
// gathering + sort.Strings per rule and per group) entirely. The IR
// invariants — EqFields strictly ascending, Neq pairs sorted by (field,
// value) with no entry for an Eq field, Groups parallel to Rule.Groups —
// make this a straight array walk producing byte-for-byte the same flat
// rule as the map path; TestLowerRuleIRMatchesMapPath holds the two
// together.
func lowerIR(fr *flatRule, r *flowtable.Rule, s *Schema) {
	ir := r.IR
	for fi, f := range ir.EqFields {
		i := mustIndex(s, f)
		fr.eqIdx = append(fr.eqIdx, i)
		fr.eqVal = append(fr.eqVal, lowerValue(ir.EqValues[fi]))
		fr.eqMask |= 1 << uint(i)
	}
	for fi, f := range ir.NeqFields {
		fr.neqIdx = append(fr.neqIdx, mustIndex(s, f))
		fr.neqVal = append(fr.neqVal, lowerValue(ir.NeqValues[fi]))
	}
	for gi := range ir.Groups {
		g := &ir.Groups[gi]
		fg := flatGroup{outPort: int32(r.Groups[gi].OutPort)}
		for fi, f := range g.SetFields {
			i := mustIndex(s, f)
			fg.setIdx = append(fg.setIdx, i)
			fg.setVal = append(fg.setVal, lowerValue(g.SetValues[fi]))
			fg.setMask |= 1 << uint(i)
		}
		fr.groups = append(fr.groups, fg)
	}
}

// lowerValue checks a rule/guard constant into the int32 flat-value
// domain at lowering (compile) time; see Schema.intern for the domain.
func lowerValue(v int) int32 {
	if int(int32(v)) != v {
		panic("dataplane: rule constant out of the int32 flat-value domain")
	}
	return int32(v)
}

func mustIndex(s *Schema, f string) int32 {
	i, ok := s.Index(f)
	if !ok {
		panic("dataplane: rule field " + f + " missing from plan schema")
	}
	return int32(i)
}

func sortedFieldKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// flatEvent is one NES event precompiled against a schema for the
// engine's detection step: its guard's packet-field literals as interned
// index/value arrays. "sw" and "pt" literals are resolved statically
// against the event's own location (Event.Matches only consults the
// guard at that location); an event whose guard is statically false
// there can never fire and is dropped from the per-switch candidate
// lists entirely.
type flatEvent struct {
	id     int
	port   int
	eqIdx  []int32
	eqVal  []int32
	eqMask uint64
	neqIdx []int32
	neqVal []int32
}

// matches evaluates the precompiled guard on a flat packet (the location
// was already narrowed by the per-switch candidate list and the port
// field).
func (fe *flatEvent) matches(vals []int32, pres uint64) bool {
	if pres&fe.eqMask != fe.eqMask {
		return false
	}
	for i, fi := range fe.eqIdx {
		if vals[fi] != fe.eqVal[i] {
			return false
		}
	}
	for i, fi := range fe.neqIdx {
		if pres&(1<<uint(fi)) != 0 && vals[fi] == fe.neqVal[i] {
			return false
		}
	}
	return true
}

// lowerEvent compiles one event's guard; live is false when the guard is
// statically unsatisfiable at the event's location.
func lowerEvent(ev nes.Event, s *Schema) (flatEvent, bool) {
	fe := flatEvent{id: ev.ID, port: ev.Loc.Port}
	for _, f := range ev.Guard.EqFields() {
		v, _ := ev.Guard.Eq(f)
		switch f {
		case netkat.FieldSw:
			if v != ev.Loc.Switch {
				return flatEvent{}, false
			}
		case netkat.FieldPt:
			if v != ev.Loc.Port {
				return flatEvent{}, false
			}
		default:
			i := mustIndex(s, f)
			fe.eqIdx = append(fe.eqIdx, i)
			fe.eqVal = append(fe.eqVal, lowerValue(v))
			fe.eqMask |= 1 << uint(i)
		}
	}
	for _, f := range ev.Guard.NeqFields() {
		for _, v := range ev.Guard.Neq(f) {
			switch f {
			case netkat.FieldSw:
				if v == ev.Loc.Switch {
					return flatEvent{}, false
				}
			case netkat.FieldPt:
				if v == ev.Loc.Port {
					return flatEvent{}, false
				}
			default:
				i := mustIndex(s, f)
				fe.neqIdx = append(fe.neqIdx, i)
				fe.neqVal = append(fe.neqVal, lowerValue(v))
			}
		}
	}
	return fe, true
}

// FlatMatcher is the exported face of one flat-lowered table: it accepts
// map-form packets, interns them against its schema per call (on the
// stack — the matcher itself allocates nothing), and emits map-form
// outputs. The Engine does not use this path — it interns once at
// ingress — but equivalence tests drive it to prove the flat lowering
// byte-equal to the map-form matchers, and it is the embedding surface
// for callers that want flat matching without the engine.
type FlatMatcher struct {
	schema *Schema
	ft     *flatTable
}

// CompileFlat lowers a table's compiled index against a schema (which
// must cover every field the table mentions — SchemaForTables or a
// program schema).
func CompileFlat(t *flowtable.Table, s *Schema) FlatMatcher {
	return FlatMatcher{schema: s, ft: newFlatIndexed(Compile(t), s)}
}

// FlatScanOf lowers a table for linear-scan flat matching.
func FlatScanOf(t *flowtable.Table, s *Schema) FlatMatcher {
	return FlatMatcher{schema: s, ft: newFlatScan(t, s)}
}

// Len returns the number of rules behind the matcher.
func (m FlatMatcher) Len() int { return len(m.ft.rules) }

// Process interns the packet, finds the winning rule on the flat path,
// applies its groups on flat copies, and materializes the emitted
// packets back to map form, appending to dst (untouched on default
// drop).
func (m FlatMatcher) Process(dst []flowtable.Output, pkt netkat.Packet, inPort int, tag uint32) []flowtable.Output {
	var buf [maxSchemaFields]int32
	vals := buf[:m.schema.Len()]
	if err := ValidateDomain(pkt); err != nil {
		// Truncating would silently diverge from the map-form semantics,
		// so refuse loudly; the Engine rejects such packets at injection
		// with an error.
		panic("dataplane: FlatMatcher.Process: " + err.Error())
	}
	pres, inert := m.schema.intern(pkt, vals)
	ri := m.ft.lookup(vals, pres, inPort, tag)
	if ri < 0 {
		return dst
	}
	var tmp [maxSchemaFields]int32
	for gi := range m.ft.rules[ri].groups {
		g := &m.ft.rules[ri].groups[gi]
		gv := tmp[:len(vals)]
		copy(gv, vals)
		for si, fi := range g.setIdx {
			gv[fi] = g.setVal[si]
		}
		dst = append(dst, flowtable.Output{Pkt: m.schema.materialize(inert, gv, pres|g.setMask), Port: int(g.outPort)})
	}
	return dst
}
