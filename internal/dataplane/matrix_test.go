package dataplane_test

import (
	"fmt"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
)

// This file is the determinism matrix: the delivery sequence — hosts,
// header fields, and (epoch, version) stamps, in order — must be
// bit-identical at every worker count, on either matcher plane, whether
// packets arrive one at a time or in batches, and at any chunk budget.
// The matrix is the acceptance test for the chunked engine's sort-free
// parallel merge: any observable difference from the 1-worker reference
// is a bug, not a tolerance.

// matrixRun is one cell of the matrix.
type matrixRun struct {
	opts    dataplane.Options
	batched bool
}

func (m matrixRun) String() string {
	return fmt.Sprintf("workers=%d mode=%v chunk=%d batched=%v",
		m.opts.Workers, m.opts.Mode, m.opts.ChunkGens, m.batched)
}

// matrixCells enumerates the full worker × mode × ingress grid.
func matrixCells(workerCounts []int) []matrixRun {
	var out []matrixRun
	for _, m := range []dataplane.Mode{dataplane.ModeIndexed, dataplane.ModeScan} {
		for _, batched := range []bool{false, true} {
			for _, w := range workerCounts {
				out = append(out, matrixRun{opts: dataplane.Options{Workers: w, Mode: m}, batched: batched})
			}
		}
	}
	return out
}

// runCell replays the batches on a fresh engine (Run between rounds, so
// event reactions influence later stamps) and returns the stamped
// delivery sequence. When swapTo is non-nil, the midpoint round stages a
// program swap one generation into its batch's journey, so old-epoch
// packets are in flight across the flip.
func runCell(t *testing.T, a apps.App, batches [][]dataplane.Injection, mr matrixRun, swapTo apps.App) []dataplane.Delivery {
	t.Helper()
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, mr.opts)
	swapAt := -1
	if swapTo.Name != "" {
		swapAt = len(batches) / 2
	}
	for r, batch := range batches {
		if mr.batched {
			_, errs := e.InjectBatch(batch)
			for _, err := range errs {
				if err != nil {
					t.Fatalf("%v: %v", mr, err)
				}
			}
		} else {
			for _, in := range batch {
				if _, err := e.InjectStamped(in.Host, in.Fields); err != nil {
					t.Fatalf("%v: %v", mr, err)
				}
			}
		}
		if r == swapAt {
			e.Step(1)
			next := buildNES(t, swapTo)
			mapping, _ := ctrl.EventMapping(n, next)
			if _, err := e.StageSwap(dataplane.SwapSpec{NES: next, MapEvent: mapping}); err != nil {
				t.Fatalf("%v: stage swap: %v", mr, err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatalf("%v: %v", mr, err)
		}
	}
	return e.Deliveries()
}

// sameStamped compares delivery sequences exactly, stamps included,
// returning the first diverging index or -1 when identical.
func sameStamped(a, b []dataplane.Delivery) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return len(a)
		}
		return len(b)
	}
	for i := range a {
		if a[i].Host != b[i].Host || a[i].Stamp != b[i].Stamp || !a[i].Fields.Equal(b[i].Fields) {
			return i
		}
	}
	return -1
}

// failoverBatches scripts a failover workload: data traffic Src -> Dst
// every round, with fail/recover notifications interleaved so the
// program walks its state chain and the stamps change version mid-run.
func failoverBatches(t *testing.T, f apps.Failover, rounds, perRound int) [][]dataplane.Injection {
	t.Helper()
	src, ok := f.Topo.HostByName(f.Src)
	if !ok {
		t.Fatalf("%s: no host %s", f.Name, f.Src)
	}
	dst, ok := f.Topo.HostByName(f.Dst)
	if !ok {
		t.Fatalf("%s: no host %s", f.Name, f.Dst)
	}
	var out [][]dataplane.Injection
	id := 0
	for r := 0; r < rounds; r++ {
		var b []dataplane.Injection
		if r%2 == 1 {
			notif := f.FailPkt.Clone()
			if (r/2)%2 == 1 {
				notif = f.RecoverPkt.Clone()
			}
			b = append(b, dataplane.Injection{Host: f.Monitor, Fields: notif})
		}
		for i := 0; i < perRound; i++ {
			b = append(b, dataplane.Injection{Host: f.Src,
				Fields: netkat.Packet{"dst": dst.ID, "src": src.ID, "id": id}})
			id++
		}
		out = append(out, b)
	}
	return out
}

// TestEngineDeliveryMatrix: paper applications plus the failover
// families, across the full worker × mode × ingress grid. Every cell's
// stamped delivery sequence must equal the 1-worker per-packet indexed
// reference bit for bit.
func TestEngineDeliveryMatrix(t *testing.T) {
	workerCounts := []int{1, 2, 3, 4, 8}
	type tc struct {
		app     apps.App
		batches [][]dataplane.Injection
	}
	var cases []tc
	for _, a := range []apps.App{apps.Firewall(), apps.Authentication(), apps.BandwidthCap(10), apps.IDSFatTree(4)} {
		cases = append(cases, tc{app: a, batches: loadBatches(t, a, 3, 50)})
	}
	for _, f := range []apps.Failover{apps.FailoverDiamond(3), apps.FailoverWAN(3)} {
		cases = append(cases, tc{app: f.App, batches: failoverBatches(t, f, 6, 20)})
	}
	for _, c := range cases {
		c := c
		t.Run(c.app.Name, func(t *testing.T) {
			cells := matrixCells(workerCounts)
			ref := runCell(t, c.app, c.batches, cells[0], apps.App{})
			if len(ref) == 0 {
				t.Fatal("workload delivered nothing; the matrix is vacuous")
			}
			for _, mr := range cells[1:] {
				got := runCell(t, c.app, c.batches, mr, apps.App{})
				if i := sameStamped(ref, got); i != -1 {
					t.Fatalf("%v diverges from %v at delivery %d (%d vs %d total)",
						mr, cells[0], i, len(ref), len(got))
				}
			}
		})
	}
}

// TestEngineSwapStampMatrix: the matrix with a program swap staged
// mid-run while packets are in flight, and the chunk budget varied down
// to one generation per chunk. Epoch-1 stamps must appear (the flip is
// observable) and the full stamped sequence — which packet drained under
// the old epoch, which under the new — must be identical in every cell.
func TestEngineSwapStampMatrix(t *testing.T) {
	a := apps.Firewall()
	batches := loadBatches(t, a, 4, 40)
	var cells []matrixRun
	for _, base := range matrixCells([]int{1, 2, 4, 8}) {
		for _, cg := range []int{0, 1, 3} {
			mr := base
			mr.opts.ChunkGens = cg
			cells = append(cells, mr)
		}
	}
	ref := runCell(t, a, batches, cells[0], a)
	if len(ref) == 0 {
		t.Fatal("workload delivered nothing; the matrix is vacuous")
	}
	epochs := map[int]int{}
	for _, d := range ref {
		epochs[d.Stamp.Epoch]++
	}
	if epochs[0] == 0 || epochs[1] == 0 {
		t.Fatalf("swap not observable in stamps: per-epoch deliveries %v", epochs)
	}
	for _, mr := range cells[1:] {
		got := runCell(t, a, batches, mr, a)
		if i := sameStamped(ref, got); i != -1 {
			t.Fatalf("%v diverges from %v at delivery %d (%d vs %d total)",
				mr, cells[0], i, len(ref), len(got))
		}
	}
}
