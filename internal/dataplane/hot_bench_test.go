package dataplane

import (
	"testing"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// loopEngine builds an engine over a hand-made program whose rules
// forward a packet around a 4-switch cycle forever (the hop TTL
// eventually discards it). The workload isolates the steady-state hop
// loop: no deliveries (so no egress conversions), one event that fires
// on the first lap and stays known, a rewriting action group on every
// hop (an in-place flat write). After one warm-up journey the engine's
// rings, outboxes, free lists and digest strings are all steady, and a
// generation executes exactly one switch-hop with zero allocations —
// the property BenchmarkEngineHopLoop measures and
// TestEngineHopLoopZeroAlloc pins.
func loopEngine(tb testing.TB) (*Engine, netkat.Packet) {
	return loopEngineOpts(tb, Options{Workers: 1})
}

// loopEngineOpts is loopEngine with caller-chosen engine options — the
// observability alloc guard attaches metrics and tracing to the same
// workload.
func loopEngineOpts(tb testing.TB, opts Options) (*Engine, netkat.Packet) {
	tb.Helper()
	t := topo.New()
	loc := func(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }
	for sw := 1; sw <= 4; sw++ {
		t.AddSwitch(sw)
	}
	t.AddBiLink(loc(1, 2), loc(2, 1))
	t.AddBiLink(loc(2, 2), loc(3, 1))
	t.AddBiLink(loc(3, 2), loc(4, 1))
	t.AddBiLink(loc(4, 2), loc(1, 1))
	t.AddHost(topo.HostID(1), "H1", loc(1, 3))

	tables := flowtable.Tables{}
	for sw := 1; sw <= 4; sw++ {
		tables.Get(sw).Add(flowtable.Rule{
			Priority: 1,
			Match:    flowtable.Match{InPort: flowtable.Wildcard, Fields: map[string]int{"dst": 99}},
			Groups:   []flowtable.ActionGroup{{Sets: map[string]int{"hop": sw}, OutPort: 2}},
		})
	}
	guard := netkat.NewConj()
	guard.AddEq("dst", 99)
	n, err := nes.New(
		[]nes.Event{{ID: 0, Guard: guard, Loc: loc(1, 1), Occurrence: 1}},
		map[nes.Set]int{nes.Empty: 0, nes.Singleton(0): 0},
		[]nes.Config{{ID: 0, Label: "loop", Tables: tables}},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return NewEngine(n, t, opts), netkat.Packet{"dst": 99}
}

// BenchmarkEngineHopLoop measures the engine's steady-state hop loop in
// isolation: one packet in flight, one switch-hop per generation,
// injections refreshed outside the timer when the TTL reclaims the
// packet. ns/op is ns/hop directly (hops/op confirms ~1), and the
// steady-state loop performs no allocation — the companion
// TestEngineHopLoopZeroAlloc asserts exactly 0 and runs in CI.
func BenchmarkEngineHopLoop(b *testing.B) {
	e, pkt := loopEngine(b)
	// Warm-up: one full TTL journey saturates views, rings and buffers.
	if err := e.Inject("H1", pkt); err != nil {
		b.Fatal(err)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	start := e.processed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.pending() == 0 {
			b.StopTimer()
			if err := e.Inject("H1", pkt); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		e.generation()
	}
	b.StopTimer()
	b.ReportMetric(float64(e.processed-start)/float64(b.N), "hops/op")
	_ = e.Run() // reclaim the in-flight packet
}

// TestEngineHopLoopZeroAlloc pins the tentpole allocation property: the
// steady-state hop loop (forward, detect, gossip, merge) allocates
// nothing. 600 generations stay below the hop TTL, so the measured
// window contains no injection and no TTL reclaim.
func TestEngineHopLoopZeroAlloc(t *testing.T) {
	e, pkt := loopEngine(t)
	if err := e.Inject("H1", pkt); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil { // warm-up journey
		t.Fatal(err)
	}
	if err := e.Inject("H1", pkt); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(600, func() { e.generation() }); n != 0 {
		t.Fatalf("steady-state hop loop allocates %.3f times per generation; want 0", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot(); got.TTLDropped == 0 {
		t.Fatalf("loop workload should end in TTL reclaim; snapshot %+v", got)
	}
}
