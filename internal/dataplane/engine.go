package dataplane

import (
	"fmt"
	"sort"
	"sync"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// qpkt is an in-flight packet inside the engine. seq totally orders the
// packets of a generation (assigned deterministically at the generation
// barrier); branch distinguishes the copies one rule emission produced.
type qpkt struct {
	fields  netkat.Packet
	inPort  int
	version int
	digest  nes.Set
	seq     int64
	branch  int32
}

// ring is a growable ring buffer of packets: each switch's ingress queue.
// The engine's generation barrier makes every ring single-producer (the
// merge step) single-consumer (the owning worker), so no locking is
// needed; the barrier's happens-before edge publishes the contents.
type ring struct {
	buf        []qpkt
	head, tail int // tail is one past the last element; len = tail-head
}

func (r *ring) len() int { return r.tail - r.head }

func (r *ring) push(p qpkt) {
	if r.tail-r.head == len(r.buf) {
		grown := make([]qpkt, max(8, 2*len(r.buf)))
		n := r.copyOut(grown)
		r.buf, r.head, r.tail = grown, 0, n
	}
	r.buf[r.tail%len(r.buf)] = p
	r.tail++
}

func (r *ring) pop() qpkt {
	p := r.buf[r.head%len(r.buf)]
	r.buf[r.head%len(r.buf)] = qpkt{} // release references
	r.head++
	if r.head == r.tail {
		r.head, r.tail = 0, 0
	}
	return p
}

// copyOut copies the queued packets into dst in order, returning the count.
func (r *ring) copyOut(dst []qpkt) int {
	n := 0
	for i := r.head; i < r.tail; i++ {
		dst[n] = r.buf[i%len(r.buf)]
		n++
	}
	return n
}

// Delivery is a packet received by a host.
type Delivery struct {
	Host   string
	Fields netkat.Packet
}

// outEntry is one packet emitted during a generation, tagged with its
// destination and its deterministic merge key (parent seq, branch).
type outEntry struct {
	dst int // switch index, or -1 for a host delivery
	hos string
	pkt qpkt
}

// worker owns a shard of switches during a generation. All its fields are
// private to one goroutine between barriers.
type worker struct {
	outbox    []outEntry
	obuf      []flowtable.Output // matcher scratch
	processed int64
}

// Options configure an Engine.
type Options struct {
	// Workers is the number of forwarding workers (shards). Defaults to 1.
	// The delivery sequence is identical for every worker count.
	Workers int
	// Mode selects indexed matchers (default) or the linear-scan baseline.
	Mode Mode
}

// Engine is the sharded forwarding engine: per-switch state (event view,
// ingress ring) sharded over worker goroutines, processing packets in
// bulk-synchronous generations (one generation = every queued packet
// forwarded one hop).
//
// The tagged semantics of Section 4.1 run on the fast path exactly as in
// the Figure 7 machine: a packet is forwarded by the configuration its
// tag names (never the switch's current view), locally detected events
// update the switch's view immediately, and every emitted copy gossips
// the digest digest ∪ oldView ∪ newlyEnabled. Because forwarding depends
// only on the packet's own tag and fields, and each switch's queue is
// merged into a deterministic order at the generation barrier, the
// delivery sequence is bit-identical for any worker count — sharding
// changes wall-clock time, never behavior.
type Engine struct {
	NES  *nes.NES
	Topo *topo.Topology

	plan     *Plan
	workers  int
	switches []int       // sorted switch IDs; shard w owns indices i ≡ w (mod workers)
	swIdx    map[int]int // switch ID -> index
	views    []nes.Set   // per switch index, owner-worker mutated
	rings    []*ring     // per switch index, filled at barriers

	// Hot-path topology lookups, precomputed: Topology.LinkFrom rebuilds
	// the whole link slice per call, which would put an allocation on
	// every emitted packet.
	links map[netkat.Location]topo.Link
	hosts map[int]topo.Host // host node ID -> host

	seq        int64
	processed  int64
	deliveries []Delivery
}

// NewEngine builds an engine over a compiled NES and its topology.
func NewEngine(n *nes.NES, t *topo.Topology, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = 1
	}
	e := &Engine{
		NES:      n,
		Topo:     t,
		workers:  w,
		swIdx:    map[int]int{},
		switches: append([]int{}, t.Switches...),
	}
	sort.Ints(e.switches)
	for i, sw := range e.switches {
		e.swIdx[sw] = i
	}
	e.views = make([]nes.Set, len(e.switches))
	e.rings = make([]*ring, len(e.switches))
	for i := range e.rings {
		e.rings[i] = &ring{}
	}
	e.links = map[netkat.Location]topo.Link{}
	for _, lk := range t.AllLinks() {
		e.links[lk.Src] = lk
	}
	e.hosts = map[int]topo.Host{}
	for _, h := range t.Hosts {
		e.hosts[h.ID] = h
	}
	e.plan = PlanForMode(n, opts.Mode)
	return e
}

// gAt mirrors runtime.Machine.gAt: the configuration for a view, falling
// back to the largest family member below it.
func (e *Engine) gAt(v nes.Set) int {
	if c, ok := e.NES.ConfigAt(v); ok {
		return c
	}
	best := nes.Empty
	for _, f := range e.NES.Family() {
		if f.SubsetOf(v) && best.SubsetOf(f) {
			best = f
		}
	}
	c, _ := e.NES.ConfigAt(best)
	return c
}

// Inject stamps a packet entering from the named host with the ingress
// switch's current configuration tag (the IN rule) and queues it. Inject
// must not race with Run; the usual shape is inject a batch, run, repeat.
func (e *Engine) Inject(host string, fields netkat.Packet) error {
	h, ok := e.Topo.HostByName(host)
	if !ok {
		return fmt.Errorf("dataplane: unknown host %q", host)
	}
	i := e.swIdx[h.Attach.Switch]
	e.seq++
	e.rings[i].push(qpkt{
		fields:  fields.Clone(),
		inPort:  h.Attach.Port,
		version: e.gAt(e.views[i]),
		digest:  nes.Empty,
		seq:     e.seq,
	})
	return nil
}

// maxGenerations bounds Run against forwarding loops.
const maxGenerations = 1 << 16

// Run forwards every queued packet to quiescence: generations of one hop
// each, switches sharded over the configured workers, a barrier and a
// deterministic queue merge between generations.
func (e *Engine) Run() error {
	ws := make([]*worker, e.workers)
	for i := range ws {
		ws[i] = &worker{}
	}
	var all []outEntry
	for gen := 0; ; gen++ {
		if gen > maxGenerations {
			return fmt.Errorf("dataplane: no quiescence within %d generations", maxGenerations)
		}
		pending := 0
		for _, r := range e.rings {
			pending += r.len()
		}
		if pending == 0 {
			return nil
		}

		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wk := ws[w]
				wk.outbox = wk.outbox[:0]
				for i := w; i < len(e.switches); i += e.workers {
					e.drain(wk, i)
				}
			}(w)
		}
		wg.Wait()

		// Barrier: merge every worker's emissions into the per-switch
		// rings in the deterministic (parent seq, branch) order, and
		// assign fresh seqs in that same order so the next generation is
		// ordered no matter which worker produced what.
		all = all[:0]
		for _, wk := range ws {
			all = append(all, wk.outbox...)
			e.processed += wk.processed
			wk.processed = 0
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := &all[i], &all[j]
			if a.pkt.seq != b.pkt.seq {
				return a.pkt.seq < b.pkt.seq
			}
			return a.pkt.branch < b.pkt.branch
		})
		for i := range all {
			en := &all[i]
			if en.dst < 0 {
				e.deliveries = append(e.deliveries, Delivery{Host: en.hos, Fields: en.pkt.fields})
				continue
			}
			e.seq++
			en.pkt.seq = e.seq
			en.pkt.branch = 0
			e.rings[en.dst].push(en.pkt)
		}
	}
}

// drain processes every packet queued at switch index i (the SWITCH rule,
// one hop) on the calling worker.
func (e *Engine) drain(wk *worker, i int) {
	r := e.rings[i]
	sw := e.switches[i]
	for r.len() > 0 {
		p := r.pop()
		wk.processed++

		// Event handling: learn from the digest, detect newly enabled
		// events this packet's arrival matches, update the local view.
		view := e.views[i]
		known := view.Union(p.digest)
		lp := netkat.LocatedPacket{Pkt: p.fields, Loc: netkat.Location{Switch: sw, Port: p.inPort}}
		newly := e.NES.NewlyEnabled(known, lp)
		e.views[i] = known.Union(newly)
		outDigest := p.digest.Union(view).Union(newly)

		// Forward with the packet's tagged configuration.
		m := e.plan.Matcher(p.version, sw)
		if m == nil {
			continue
		}
		wk.obuf = m.Process(wk.obuf[:0], p.fields, p.inPort, 0)
		for bi, o := range wk.obuf {
			lk, ok := e.links[netkat.Location{Switch: sw, Port: o.Port}]
			if !ok {
				continue // unconnected port: leaves the modeled network
			}
			out := qpkt{
				fields:  o.Pkt,
				inPort:  lk.Dst.Port,
				version: p.version,
				digest:  outDigest,
				seq:     p.seq,
				branch:  int32(bi),
			}
			if h, isHost := e.hosts[lk.Dst.Switch]; isHost {
				wk.outbox = append(wk.outbox, outEntry{dst: -1, hos: h.Name, pkt: out})
			} else {
				wk.outbox = append(wk.outbox, outEntry{dst: e.swIdx[lk.Dst.Switch], pkt: out})
			}
		}
	}
}

// Deliveries returns every packet delivered to a host, in the engine's
// deterministic delivery order.
func (e *Engine) Deliveries() []Delivery { return e.deliveries }

// DeliveredTo returns the packets delivered to the named host.
func (e *Engine) DeliveredTo(host string) []netkat.Packet {
	var out []netkat.Packet
	for _, d := range e.deliveries {
		if d.Host == host {
			out = append(out, d.Fields)
		}
	}
	return out
}

// View returns a switch's current event view.
func (e *Engine) View(sw int) nes.Set { return e.views[e.swIdx[sw]] }

// Processed returns how many switch-hops the engine has executed — the
// numerator of a packets/sec measurement.
func (e *Engine) Processed() int64 { return e.processed }
