package dataplane

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/obs"
	"eventnet/internal/topo"
)

// qpkt is an in-flight packet inside the engine, in the flat interned
// representation: vals holds the value of every schema field whose
// presence bit is set (indices are relative to the packet's epoch's
// Schema), and inert is the immutable snapshot of the ingress fields
// outside the schema, shared by every copy of the injection (nil when
// there are none) — no rule can test or write those, so they are only
// read again at the egress conversion. Field writes on the hop loop
// mutate vals in place; a fresh array is taken (from the worker's free
// list) only when one rule emission fans out into several copies.
//
// seq totally orders the packets of a generation (assigned
// deterministically at the generation barrier); branch distinguishes the
// copies one rule emission produced; epoch names the program generation
// whose rules must process the packet (per-packet consistency across live
// swaps: the pair (epoch, version) pins the packet to one configuration
// of one program for its whole journey).
type qpkt struct {
	vals    []int32
	pres    uint64
	inert   netkat.Packet
	inPort  int
	epoch   int
	version int
	digest  nes.Set
	seq     int64
	branch  int32
	hops    int32 // switch-hops taken so far (TTL against forwarding loops)
	tns     int64 // injection timestamp (ns), 0 when metrics are off
	trace   int32 // journey trace ID, 0 = untraced (see internal/obs)
}

// ring is a growable ring buffer of packets: each switch's ingress queue.
// The engine's generation barrier makes every ring single-producer (the
// merge step) single-consumer (the owning worker), so no locking is
// needed; the barrier's happens-before edge publishes the contents.
type ring struct {
	buf        []qpkt
	head, tail int // tail is one past the last element; len = tail-head
}

func (r *ring) len() int { return r.tail - r.head }

func (r *ring) push(p *qpkt) {
	if r.tail-r.head == len(r.buf) {
		grown := make([]qpkt, max(8, 2*len(r.buf)))
		n := r.copyOut(grown)
		r.buf, r.head, r.tail = grown, 0, n
	}
	r.buf[r.tail%len(r.buf)] = *p
	r.tail++
}

// peekRef returns the head packet in place, without dequeuing: the hop
// loop processes it through the pointer (it only appends to worker
// outboxes, never to the ring it is draining) and then drop releases the
// slot — saving the ~100-byte struct copy a by-value pop would make on
// every hop.
func (r *ring) peekRef() *qpkt { return &r.buf[r.head%len(r.buf)] }

// drop releases the head slot after peekRef processing.
func (r *ring) drop() {
	r.buf[r.head%len(r.buf)] = qpkt{} // release references
	r.head++
	if r.head == r.tail {
		r.head, r.tail = 0, 0
	}
}

// copyOut copies the queued packets into dst in order, returning the count.
func (r *ring) copyOut(dst []qpkt) int {
	n := 0
	for i := r.head; i < r.tail; i++ {
		dst[n] = r.buf[i%len(r.buf)]
		n++
	}
	return n
}

// Stamp is the consistency metadata assigned to a packet at ingress: the
// program epoch and the configuration tag within that program. A packet
// is forwarded exclusively by configuration Version of epoch Epoch.
type Stamp struct {
	Epoch   int
	Version int
}

// Delivery is a packet received by a host, with the stamp that carried it.
type Delivery struct {
	Host   string
	Fields netkat.Packet
	Stamp  Stamp
}

// outEntry is one ring-bound packet emitted during a generation, tagged
// with its destination switch index. Host deliveries never enter the
// outbox: the producing worker appends them straight to its private
// delivery log (worker.dlog), keyed for the lazy canonical merge.
type outEntry struct {
	dst int32 // destination switch index
	pkt qpkt
}

// emitRec records, per parent packet of a generation, where that
// parent's ring-bound emissions live: entries [start, start+n) of worker
// w's outbox, in branch order. The generation's parents have dense seqs
// (genLo, genLo+len(emitBuf)], so the record array is indexed by
// seq-genLo-1 and every slot is written by exactly one worker (the one
// draining the parent's ring) — a disjoint-write index that replaces the
// old ref-sort merge. off is the prefix sum of n over preceding parents,
// filled serially between the drain and consume phases; it makes the
// fresh seq of every pushed packet (seqBase+1+off+j) computable by any
// worker without coordination.
type emitRec struct {
	w     int32
	start int32
	n     int32
	off   int32
}

// Destination kinds of portDest.
const (
	destNone = iota // unconnected port: the packet leaves the modeled network
	destSwitch
	destHost
)

// portDest is the precomputed destination of one (switch, egress port)
// pair: the peer switch's index and ingress port, or the host it
// delivers to.
type portDest struct {
	kind int8
	idx  int32 // destination switch index (destSwitch)
	port int32 // destination ingress port (destSwitch)
	host string
}

// flatDelivery is a host delivery retained in the flat representation;
// the header map is materialized at the accessor boundary
// (Deliveries/DeliveredTo/CopyDeliveries), keeping the hop loop
// allocation-free. seq and branch are the delivery's genealogy key (the
// parent packet's seq and the emitting group index): the lazy merge
// sorts per-worker logs by (seq, branch), which reproduces the canonical
// delivery sequence the eager per-generation merge used to materialize
// (see docs/DATAPLANE.md, "Lazy delivery logs").
type flatDelivery struct {
	host   string
	vals   []int32
	pres   uint64
	inert  netkat.Packet
	schema *Schema
	stamp  Stamp
	seq    int64
	branch int32
}

// materialize converts the retained delivery to its public form.
func (d *flatDelivery) materialize() Delivery {
	return Delivery{Host: d.host, Fields: d.schema.materialize(d.inert, d.vals, d.pres), Stamp: d.stamp}
}

// worker owns a shard of switches during a generation. All its fields are
// private to one goroutine between rendezvous points.
type worker struct {
	id         int32
	outbox     []outEntry
	dlog       []flatDelivery // private delivery log, merged lazily
	free       [][]int32      // recycled flat value arrays
	processed  int64
	drained    int64 // old-epoch hops during a transition
	ttlDropped int64 // packets discarded by the hop TTL

	// Observability state, nil/zero when the layer is off. ms and ts are
	// this worker's private metric and trace shards (plain writes on the
	// hop loop, folded at boundaries); detRing is the preallocated
	// event-detection ring drained into the bus at boundaries; gen
	// mirrors the engine generation for trace records (each worker
	// advances its own copy inside a chunk, so no worker ever reads the
	// engine's e.gen mid-chunk); chunkHops accumulates hops over a chunk
	// for the per-chunk hop-latency fold; dlogFlushed is the
	// delivery-sampling cursor into dlog.
	ms          *obs.Shard
	ts          *obs.TraceShard
	fs          *obs.FlightShard
	swID        []int32 // switch index -> ID, shared immutable (trace records)
	detRing     []detRec
	detN        int
	detDrops    int64
	gen         int64
	chunkHops   int64
	dlogFlushed int

	// pushE/pushN tally this worker's ring pushes by program epoch during
	// the consume phase (at most two epochs are ever live); the serial
	// generation tail folds them into per-epoch inflight counts.
	pushE [2]int
	pushN [2]int64

	// curPS memoizes the last epoch's progState within one generation
	// (reset at the generation start: the progs list only changes at
	// rendezvous points).
	curPS    *progState
	curEpoch int
}

// beginGen resets the worker's per-generation state.
func (wk *worker) beginGen() {
	wk.outbox = wk.outbox[:0]
	wk.curPS, wk.curEpoch = nil, -1
}

// countPush tallies one ring push by program epoch.
func (wk *worker) countPush(epoch int) {
	if wk.pushN[0] == 0 {
		wk.pushE[0] = epoch
	}
	if wk.pushE[0] == epoch {
		wk.pushN[0]++
		return
	}
	if wk.pushN[1] == 0 {
		wk.pushE[1] = epoch
	}
	if wk.pushE[1] == epoch {
		wk.pushN[1]++
		return
	}
	panic("dataplane: more than two live epochs")
}

// maxFreeVals bounds a worker's free list. Injections drain worker 0's
// list, and fan-out copies drain the local one, but a drop-heavy shard
// on a multi-worker engine could otherwise accumulate one array per
// dropped packet forever; past the bound, arrays are released to the GC
// instead.
const maxFreeVals = 1024

// recycle returns a flat value array to the worker's free list.
func (wk *worker) recycle(v []int32) {
	if v != nil && len(wk.free) < maxFreeVals {
		wk.free = append(wk.free, v)
	}
}

// takeVals returns a value array of width n, recycled when one of the
// right width is available (widths differ only across program epochs;
// stale arrays from a retired epoch are dropped as encountered).
func (wk *worker) takeVals(n int) []int32 {
	for k := len(wk.free); k > 0; k = len(wk.free) {
		v := wk.free[k-1]
		wk.free[k-1] = nil
		wk.free = wk.free[:k-1]
		if len(v) == n {
			return v
		}
	}
	return make([]int32, n)
}

// copyVals duplicates a flat value array, preferring a recycled array.
func (wk *worker) copyVals(src []int32) []int32 {
	v := wk.takeVals(len(src))
	copy(v, src)
	return v
}

// Options configure an Engine.
type Options struct {
	// Workers is the number of forwarding workers (shards). Defaults to 1.
	// The delivery sequence is identical for every worker count.
	Workers int
	// Mode selects indexed matchers (default) or the linear-scan baseline.
	Mode Mode
	// DeliveryLog bounds how many deliveries the engine retains (0 =
	// unlimited, the synchronous-mode default for tests and experiments
	// that audit every delivery). A long-running service must set it:
	// when the log exceeds the bound its older half is dropped, and
	// CopyDeliveries keeps addressing by absolute index.
	DeliveryLog int
	// ChunkGens caps how many generations the workers run between
	// boundaries (control requests, async admissions, swap flips,
	// delivery-log trims). Within a chunk workers rendezvous only with
	// each other — never with the supervisor — and a pending boundary
	// request ends the chunk at the next generation edge, so the cap
	// bounds boundary latency without being its normal trigger. 0 means
	// the default (64). Chunking is unobservable in the delivery
	// sequence; the torture tests randomize it to prove that.
	ChunkGens int
	// Obs attaches the observability layer (nil = fully off, zero cost).
	// Hot-path recording is plain per-worker shard writes; folding, bus
	// publication, and trace stitching happen at boundaries. Nothing in
	// the layer can change the delivery sequence.
	Obs *obs.Obs
}

// progState is one live program generation: its NES, its compiled plan
// (with the flat mirror resolved to dense per-switch-index arrays), its
// header schema, its per-switch precompiled event candidates, and the
// per-switch event views *relative to that program's event universe*.
// During a swap two progStates coexist — the draining old program and
// the current one — and a packet's epoch selects which one forwards it.
// Packets are interned under their epoch's schema at ingress and only
// ever matched by that epoch's flat tables, so the two epochs' schemas
// never need to agree (see docs/DATAPLANE.md on schema soundness across
// swap epochs).
type progState struct {
	epoch    int
	nes      *nes.NES
	plan     *Plan
	schema   *Schema
	flat     [][]*flatTable // [config][switch index]
	evAt     [][]flatEvent  // [switch index] -> candidate events there
	views    []nes.Set      // per switch index, owner-worker mutated
	armed    []armedSlot    // per switch index, owner-worker mutated
	inflight int64          // packets of this epoch queued in rings (maintained at barriers)
}

// armedSlot memoizes, per switch, which local events are enabled and
// consistent from one knowledge set: detection asks this for every hop,
// but the answer only changes when the switch learns something — so the
// expensive part of nes.NewlyEnabled (an Enables/Con family walk per
// candidate event) runs at event-log boundaries, not per packet. The
// slot is owned by the switch's worker, like the view it shadows.
type armedSlot struct {
	valid bool
	known nes.Set
	armed nes.Set
}

// newProgState compiles the engine-resident form of a program: the plan's
// flat mirror resolved against the engine's switch indexing, and the
// per-switch event candidate lists with guards lowered to interned
// literals.
func (e *Engine) newProgState(epoch int, n *nes.NES) *progState {
	plan := PlanForMode(n, e.mode)
	plan.ensureFlat()
	ps := &progState{
		epoch:  epoch,
		nes:    n,
		plan:   plan,
		schema: plan.Schema(),
		views:  make([]nes.Set, len(e.switches)),
		armed:  make([]armedSlot, len(e.switches)),
	}
	ps.flat = make([][]*flatTable, len(plan.flats))
	for ci := range plan.flats {
		row := make([]*flatTable, len(e.switches))
		for sw, ft := range plan.flats[ci] {
			if i, ok := e.swIdx[sw]; ok {
				row[i] = ft
			}
		}
		ps.flat[ci] = row
	}
	ps.evAt = make([][]flatEvent, len(e.switches))
	for _, ev := range n.Events {
		i, ok := e.swIdx[ev.Loc.Switch]
		if !ok {
			continue
		}
		if fe, live := lowerEvent(ev, plan.Schema()); live {
			ps.evAt[i] = append(ps.evAt[i], fe)
		}
	}
	return ps
}

// detect is nes.NewlyEnabled on the flat form: the per-switch candidate
// list restricts the scan to events located here (preserving ascending
// event order, so the result is identical), guard evaluation runs on
// interned indices, and the enabled-and-consistent filter comes from the
// per-switch armed memo. Whether e joins the result is decided per event
// against `known` alone (exactly as NewlyEnabled: the out-set check there
// is pure deduplication, and each candidate appears once here), so
// factoring the Enables/Con part through the memo cannot change the
// result. Steady state — no new knowledge, no firing event — the hop
// performs no allocation.
func (ps *progState) detect(swIdx, inPort int, vals []int32, pres uint64, known nes.Set) nes.Set {
	cands := ps.evAt[swIdx]
	if len(cands) == 0 {
		return nes.Empty
	}
	sl := &ps.armed[swIdx]
	if !sl.valid || sl.known != known {
		sl.known, sl.armed, sl.valid = known, ps.nes.ArmedFrom(known), true
	}
	if sl.armed == nes.Empty {
		return nes.Empty
	}
	out := nes.Empty
	for ci := range cands {
		fe := &cands[ci]
		if fe.port != inPort || !sl.armed.Has(fe.id) || out.Has(fe.id) {
			continue
		}
		if fe.matches(vals, pres) {
			out = out.With(fe.id)
		}
	}
	return out
}

// gAt mirrors runtime.Machine.gAt: the configuration for a view, falling
// back to the largest family member below it.
func (ps *progState) gAt(v nes.Set) int {
	if c, ok := ps.nes.ConfigAt(v); ok {
		return c
	}
	best := nes.Empty
	for _, f := range ps.nes.Family() {
		if f.SubsetOf(v) && best.SubsetOf(f) {
			best = f
		}
	}
	c, _ := ps.nes.ConfigAt(best)
	return c
}

// SwapSpec describes a staged program replacement.
type SwapSpec struct {
	// NES is the incoming program, fully compiled.
	NES *nes.NES
	// MapEvent maps old-program event IDs to new-program event IDs (-1 =
	// no counterpart); len must equal the old program's event count. A nil
	// map carries no knowledge across the swap.
	MapEvent []int
}

// SwapStats reports what one completed swap did.
type SwapStats struct {
	StagedAt, FlipAt, RetiredAt time.Time
	FlipGen, RetireGen          int64 // engine generation numbers
	// TransitionHops is the number of switch-hops executed between flip
	// and retire (both epochs); DrainedHops counts only old-epoch hops.
	TransitionHops int64
	DrainedHops    int64
	// CarriedEvents is the total event knowledge admitted into the new
	// program's switch views at the flip barrier (summed over switches).
	CarriedEvents int
}

// Swap is the handle for one staged program replacement. Done is closed
// when the old program has fully drained and been retired; Stats is valid
// after Done.
type Swap struct {
	done  chan struct{}
	stats SwapStats
}

// Done returns a channel closed when the swap has completed.
func (s *Swap) Done() <-chan struct{} { return s.done }

// Stats returns the swap's statistics; call only after Done.
func (s *Swap) Stats() SwapStats { return s.stats }

// Engine is the sharded forwarding engine: per-switch state (event view,
// ingress ring) sharded over worker goroutines, processing packets in
// bulk-synchronous generations (one generation = every queued packet
// forwarded one hop).
//
// The tagged semantics of Section 4.1 run on the fast path exactly as in
// the Figure 7 machine: a packet is forwarded by the configuration its
// tag names (never the switch's current view), locally detected events
// update the switch's view immediately, and every emitted copy gossips
// the digest digest ∪ oldView ∪ newlyEnabled. Because forwarding depends
// only on the packet's own tag and fields, and each switch's queue is
// merged into a deterministic order at the generation barrier, the
// delivery sequence is bit-identical for any worker count — sharding
// changes wall-clock time, never behavior.
//
// On top of the per-NES tags the engine supports *live program swaps*
// (StageSwap): packets additionally carry a program epoch, the engine
// keeps one progState per live epoch, and a two-phase discipline — flip
// ingress tagging at a generation barrier, drain the old epoch, retire —
// replaces the whole program without pausing forwarding. See
// docs/CONTROLLER.md.
//
// The engine has two driving modes. In synchronous mode (the original
// API: Inject, Run) the caller owns the engine between calls and nothing
// is concurrent. In served mode (Start) a supervisor goroutine runs
// generations continuously; interaction goes through InjectAsync, Do,
// Snapshot and Quiesce, all of which are applied atomically at generation
// barriers. Stop shuts the supervisor down idempotently and leak-free.
type Engine struct {
	// NES and Topo are the engine's initial program and its topology.
	// After a swap NES still names the *initial* program; use Snapshot
	// for the live state.
	NES  *nes.NES
	Topo *topo.Topology

	mode     Mode
	workers  int
	switches []int                // sorted switch IDs; shard w owns indices i ≡ w (mod workers)
	swIdx    map[int]int          // switch ID -> index
	hostBy   map[string]topo.Host // host name -> host (Topology.HostByName is a linear scan)
	rings    []*ring              // per switch index, filled at barriers
	hops     []int64              // per switch index, switch-hops executed (owner-worker mutated)

	progs []*progState // live program epochs; the last is current for ingress
	swap  *swapHandle  // active transition, nil otherwise

	// Hot-path topology lookups, precomputed as dense per-switch-index,
	// per-egress-port destination tables: a map lookup per emitted packet
	// (let alone Topology.LinkFrom, which rebuilds the link slice per
	// call) is measurable at line rate.
	dests [][]portDest

	seq          int64
	gen          int64
	processed    int64
	deliveries   []flatDelivery
	deliveryBase int // absolute index of deliveries[0] (log trimming)
	deliveryCap  int
	dropped      int64 // packets discarded by the hop TTL
	ws           []*worker

	// Chunked-generation state. ringLo/genLo delimit the dense seq window
	// of the packets currently queued in rings — the next generation's
	// parents are exactly seqs (ringLo, seq] — and emitBuf is the
	// per-parent emission index of the generation in flight (see emitRec).
	// genPushes is the generation's ring-bound emission count, computed by
	// the serial prefix pass. chunkGens caps generations per chunk;
	// boundReq asks the running chunk to end at the next generation edge;
	// ph is the worker rendezvous.
	ringLo    int64
	genLo     int64
	emitBuf   []emitRec
	genPushes int64
	chunkGens int
	boundReq  atomic.Bool
	ph        phaser

	// Observability (all nil when Options.Obs was nil). nowNs is a
	// coarse wall-clock cache for delivery-latency stamps: written only
	// in serial phases (boundaries and every 8th generation tail), read
	// by workers through the phaser's happens-before edges, so the hop
	// loop never calls time.Now. lastPub holds the counter values of the
	// previous stats-delta bus event.
	eobs    *obs.Obs
	met     *obs.Metrics
	bus     *obs.Bus
	tracer  *obs.Tracer
	flight  *obs.Flight
	watch   *obs.Watchdog
	dsample int // publish every Nth delivery on the bus (0 = none)
	nowNs   int64
	dcount  int64 // deliveries seen by the boundary sampler
	lastPub [obsDeltaCounters]int64
	lastFl  [obsDeltaCounters]int64 // previous flight stats record's counters

	// Served-mode coordination. wmu guards inbox, ctl, serving, stopping
	// and idle; cond (on wmu) wakes the supervisor and Quiesce/waiters.
	wmu      sync.Mutex
	cond     *sync.Cond
	inbox    []injectReq
	ctl      []ctlReq
	serving  bool
	stopping bool
	idle     bool
	started  bool
	doneCh   chan struct{}
}

// swapHandle is the engine-internal state of an active transition.
type swapHandle struct {
	spec SwapSpec
	s    *Swap
}

type injectReq struct {
	host   string
	fields netkat.Packet
}

type ctlReq struct {
	f    func()
	done chan struct{}
}

// NewEngine builds an engine over a compiled NES and its topology.
func NewEngine(n *nes.NES, t *topo.Topology, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = 1
	}
	e := &Engine{
		NES:         n,
		Topo:        t,
		mode:        opts.Mode,
		workers:     w,
		swIdx:       map[int]int{},
		switches:    append([]int{}, t.Switches...),
		deliveryCap: opts.DeliveryLog,
		doneCh:      make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.wmu)
	slices.Sort(e.switches)
	for i, sw := range e.switches {
		e.swIdx[sw] = i
	}
	e.rings = make([]*ring, len(e.switches))
	for i := range e.rings {
		e.rings[i] = &ring{}
	}
	e.hops = make([]int64, len(e.switches))
	e.dests = make([][]portDest, len(e.switches))
	hosts := map[int]topo.Host{}
	e.hostBy = map[string]topo.Host{}
	for _, h := range t.Hosts {
		hosts[h.ID] = h
		e.hostBy[h.Name] = h
	}
	for _, lk := range t.AllLinks() {
		i, ok := e.swIdx[lk.Src.Switch]
		if !ok || lk.Src.Port < 0 {
			continue
		}
		for len(e.dests[i]) <= lk.Src.Port {
			e.dests[i] = append(e.dests[i], portDest{})
		}
		d := &e.dests[i][lk.Src.Port]
		if h, isHost := hosts[lk.Dst.Switch]; isHost {
			d.kind = destHost
			d.host = h.Name
			d.port = int32(lk.Dst.Port)
		} else {
			d.kind = destSwitch
			d.idx = int32(e.swIdx[lk.Dst.Switch])
			d.port = int32(lk.Dst.Port)
		}
	}
	e.progs = []*progState{e.newProgState(0, n)}
	e.ws = make([]*worker, w)
	for i := range e.ws {
		e.ws[i] = &worker{id: int32(i)}
	}
	e.chunkGens = opts.ChunkGens
	if e.chunkGens <= 0 {
		e.chunkGens = defaultChunkGens
	}
	if opts.Obs.Enabled() {
		e.attachObs(opts.Obs)
	}
	return e
}

// attachObs wires the observability layer: every worker gets its
// preallocated metric shard, trace ring, and detection ring up front, so
// nothing on the hot path ever allocates observability state.
func (e *Engine) attachObs(o *obs.Obs) {
	e.eobs = o
	e.met = o.Metrics
	e.bus = o.Bus
	e.tracer = o.Trace
	e.flight = o.Flight
	e.watch = o.Watch
	e.dsample = o.DeliverySample
	if e.met != nil {
		e.met.EnsureShards(e.workers)
	}
	if e.tracer != nil {
		e.tracer.EnsureShards(e.workers)
	}
	if e.flight != nil {
		e.flight.EnsureShards(e.workers)
	}
	swID := make([]int32, len(e.switches))
	for i, sw := range e.switches {
		swID[i] = int32(sw)
	}
	for i, wk := range e.ws {
		wk.swID = swID
		if e.met != nil {
			wk.ms = e.met.Shard(i)
		}
		if e.tracer != nil {
			wk.ts = e.tracer.Shard(i)
		}
		if e.flight != nil {
			wk.fs = e.flight.Shard(i)
		}
		if e.bus != nil {
			wk.detRing = make([]detRec, detRingCap)
		}
	}
	e.nowNs = time.Now().UnixNano()
}

// cur returns the program current for ingress stamping.
func (e *Engine) cur() *progState { return e.progs[len(e.progs)-1] }

// prog returns the progState for an absolute epoch (nil if retired or
// unknown).
func (e *Engine) prog(epoch int) *progState {
	i := epoch - e.progs[0].epoch
	if i < 0 || i >= len(e.progs) {
		return nil
	}
	return e.progs[i]
}

// Inject stamps a packet entering from the named host with the current
// program's ingress-switch configuration tag (the IN rule) and queues it.
// Synchronous mode only: Inject must not race with Run or a served
// engine; use InjectAsync (or Do) there.
//
// The schema fields of `fields` are copied out at the call; if the map
// carries fields outside the program's schema it is additionally
// retained (read-only) as the packet's inert-field carrier, so the
// caller must not mutate it afterwards. InjectAsync hands the engine its
// own copy and has no such restriction.
func (e *Engine) Inject(host string, fields netkat.Packet) error {
	_, err := e.InjectStamped(host, fields)
	return err
}

// InjectStamped is Inject returning the (epoch, version) stamp the packet
// was pinned to — the identity of the exact rule set that will carry it,
// which swap-consistency checks verify deliveries against. Same
// synchronization contract as Inject.
func (e *Engine) InjectStamped(host string, fields netkat.Packet) (Stamp, error) {
	h, ok := e.hostBy[host]
	if !ok {
		return Stamp{}, fmt.Errorf("dataplane: unknown host %q", host)
	}
	// Validation precedes the seq increment: the chunked generation
	// machinery relies on the queued packets forming a dense seq window
	// (ringLo, seq], so a rejected injection must not consume a seq.
	if err := ValidateDomain(fields); err != nil {
		return Stamp{}, err
	}
	cp := e.cur()
	i := e.swIdx[h.Attach.Switch]
	st := Stamp{Epoch: cp.epoch, Version: cp.gAt(cp.views[i])}
	e.seq++
	// The ingress boundary: one pass interns the schema fields into the
	// flat array and resolves the inert remainder (shared read-only by
	// every copy of the journey; usually nil). The value array comes from
	// worker 0's free list when one of the right width is available —
	// injection runs at boundaries, when workers are quiescent — so a
	// workload whose packets expire in the network recirculates arrays
	// instead of growing a free list forever.
	vals := e.ws[0].takeVals(cp.schema.Len())
	pres, inert := cp.schema.intern(fields, vals)
	var tns int64
	var tid int32
	if e.met != nil {
		e.ws[0].ms.Inc(obs.CtrInjections)
		tns = time.Now().UnixNano()
		e.nowNs = tns
	}
	if e.tracer != nil {
		tid = e.tracer.Sample(host, e.seq, e.gen, st.Epoch, st.Version)
	}
	e.rings[i].push(&qpkt{
		vals:    vals,
		pres:    pres,
		inert:   inert,
		inPort:  h.Attach.Port,
		epoch:   st.Epoch,
		version: st.Version,
		digest:  nes.Empty,
		seq:     e.seq,
		tns:     tns,
		trace:   tid,
	})
	cp.inflight++
	return st, nil
}

// maxGenerations bounds Run against forwarding loops.
const maxGenerations = 1 << 16

// maxPacketHops is the per-packet TTL: a packet that has taken this many
// switch-hops is discarded at its next pop. No legitimate journey in the
// supported (loop-free-ETS) fragment approaches it — topology diameters
// are single digits — but a submitted program whose *rules* forward in a
// topology cycle would otherwise keep one packet circulating forever,
// and in served mode that would wedge the daemon: the serve loop runs
// generations while packets are pending, a draining epoch could never
// retire, and Quiesce would never return. The TTL bounds every packet's
// lifetime, so quiescence (and swap drains) always arrive.
const maxPacketHops = 1024

// pending returns the number of packets queued in the rings.
func (e *Engine) pending() int {
	n := 0
	for _, r := range e.rings {
		n += r.len()
	}
	return n
}

// Run forwards every queued packet to quiescence: generations of one hop
// each, switches sharded over the configured workers, run in chunks of
// up to ChunkGens generations between boundaries. Control requests
// staged while the engine was idle (e.g. StageSwap in synchronous mode)
// are applied at the first boundary.
func (e *Engine) Run() error {
	total := 0
	for {
		e.boundary()
		if e.pending() == 0 {
			return nil
		}
		if total >= maxGenerations {
			return fmt.Errorf("dataplane: no quiescence within %d generations", maxGenerations)
		}
		total += e.runChunk(min(e.chunkGens, maxGenerations-total))
	}
}

// Step runs at most n generations and returns the number executed,
// stopping early at quiescence. Synchronous mode only. It is the
// deterministic mid-flight hook: tests stage swaps between Step calls to
// place the flip boundary at an exact point of a packet's journey.
func (e *Engine) Step(n int) int {
	ran := 0
	for ran < n {
		e.boundary()
		if e.pending() == 0 {
			break
		}
		ran += e.runChunk(min(n-ran, e.chunkGens))
	}
	return ran
}

// boundary is the between-chunks point: queued control closures run,
// swap bookkeeping advances, (in served mode) asynchronous injections
// are admitted, and a bounded delivery log over its high-water mark is
// folded and trimmed. Everything here sees quiescent engine state.
func (e *Engine) boundary() {
	e.boundReq.Store(false)
	e.runControl()
	e.retireIfDrained()
	e.admitInbox()
	if e.deliveryCap > 0 {
		n := 0
		for _, wk := range e.ws {
			n += len(wk.dlog)
		}
		if n > e.deliveryCap/2 {
			e.mergeDeliveries()
		}
	}
	if e.eobs != nil {
		e.flushObs()
	}
}

// runControl executes queued control closures.
func (e *Engine) runControl() {
	for {
		e.wmu.Lock()
		reqs := e.ctl
		e.ctl = nil
		e.wmu.Unlock()
		if len(reqs) == 0 {
			return
		}
		for _, r := range reqs {
			r.f()
			close(r.done)
		}
	}
}

// admitInbox injects queued asynchronous packets (served mode).
func (e *Engine) admitInbox() {
	e.wmu.Lock()
	reqs := e.inbox
	e.inbox = nil
	e.wmu.Unlock()
	for _, r := range reqs {
		// Host and value domain were validated at InjectAsync time;
		// errors cannot occur.
		e.Inject(r.host, r.fields)
	}
}

// retireIfDrained completes an active transition once the old epoch has
// no packets left in flight.
func (e *Engine) retireIfDrained() {
	if e.swap == nil || len(e.progs) < 2 {
		return
	}
	old := e.progs[0]
	if old.inflight > 0 {
		return
	}
	e.progs = e.progs[1:]
	s := e.swap.s
	s.stats.RetiredAt = time.Now()
	s.stats.RetireGen = e.gen
	e.swap = nil
	if e.met != nil {
		e.met.Inc(obs.CtrSwapRetires)
		e.met.Observe(obs.HistSwapDrainNs, s.stats.RetiredAt.Sub(s.stats.FlipAt).Nanoseconds())
		e.met.SetGauge(obs.GaugeSwapDraining, 0)
	}
	if e.bus != nil {
		e.bus.Publish(obs.Event{
			Kind: obs.KindSwap, Phase: "retire",
			To: e.cur().epoch, Gen: e.gen, Epoch: e.cur().epoch,
			Inflight: s.stats.DrainedHops,
		})
	}
	if e.flight != nil {
		e.flight.Serial(obs.FlightRec{
			Kind: obs.FlightSwap, Phase: "retire",
			To: int32(e.cur().epoch), Epoch: int32(e.cur().epoch),
			Gen: e.gen, Seq: e.seq,
		})
	}
	close(s.done)
}

// drain processes every packet queued at switch index i (the SWITCH rule,
// one hop) on the calling worker. This is the engine's hot loop, and it
// runs entirely on the flat representation: matching, event detection and
// field writes touch only interned indices, value arrays mutate in place
// (copied only when one emission fans out), and every early exit recycles
// the packet's value array — steady state, the loop allocates nothing.
func (e *Engine) drain(wk *worker, i int) {
	r := e.rings[i]
	if r.len() == 0 {
		return
	}
	if wk.ms != nil {
		wk.ms.Observe(obs.HistQueueDepth, int64(r.len()))
	}
	oldEpoch := -1
	var newPS *progState
	if e.swap != nil && len(e.progs) == 2 {
		oldEpoch = e.progs[0].epoch
		newPS = e.progs[1]
	}
	dests := e.dests[i]
	for r.len() > 0 {
		p := r.peekRef()
		rec := &e.emitBuf[p.seq-e.genLo-1]
		rec.w, rec.start = wk.id, int32(len(wk.outbox))
		e.hop(wk, i, dests, p, oldEpoch, newPS)
		rec.n = int32(len(wk.outbox)) - rec.start
		r.drop()
	}
}

// hop forwards one queued packet one switch-hop: the body of the drain
// loop, factored so every early exit releases the ring slot through one
// drop call.
func (e *Engine) hop(wk *worker, i int, dests []portDest, p *qpkt, oldEpoch int, newPS *progState) {
	if p.hops >= maxPacketHops {
		wk.ttlDropped++
		if wk.ms != nil {
			wk.ms.Inc(obs.CtrTTLDrops)
		}
		if p.trace != 0 {
			wk.traceRec(p, i, obs.HopTTLDrop, -1, 0, "")
		}
		wk.recycle(p.vals)
		return // forwarding loop: discard (see maxPacketHops)
	}
	wk.processed++
	e.hops[i]++

	ps := wk.curPS
	if ps == nil || p.epoch != wk.curEpoch {
		ps = e.prog(p.epoch)
		if ps == nil {
			if p.trace != 0 {
				wk.traceRec(p, i, obs.HopStale, -1, 0, "")
			}
			wk.recycle(p.vals)
			return // stamped by a retired epoch; cannot happen post-drain
		}
		wk.curPS, wk.curEpoch = ps, p.epoch
	}

	// Event handling: learn from the digest, detect newly enabled
	// events this packet's arrival matches, update the local view.
	view := ps.views[i]
	known := view.Union(p.digest)
	newly := ps.detect(i, p.inPort, p.vals, p.pres, known)
	ps.views[i] = known.Union(newly)
	outDigest := p.digest.Union(view).Union(newly)
	if newly != nes.Empty {
		// Detection is rare; both records are plain stores, drained at
		// the next boundary.
		if wk.ms != nil {
			wk.ms.Add(obs.CtrEventsFired, int64(newly.Count()))
		}
		if wk.detRing != nil {
			if wk.detN < len(wk.detRing) {
				wk.detRing[wk.detN] = detRec{
					sw: int32(e.switches[i]), epoch: int32(p.epoch),
					version: int32(p.version), seq: p.seq, gen: wk.gen,
					events: newly,
				}
				wk.detN++
			} else {
				wk.detDrops++
			}
		}
		if wk.fs != nil {
			wk.fs.Add(obs.FlightRec{
				Kind: obs.FlightDetect, Switch: int32(e.switches[i]),
				Branch: p.branch, Epoch: int32(p.epoch), Version: int32(p.version),
				Gen: wk.gen, Seq: p.seq, Bits: string(newly),
			})
		}
	}

	// Live knowledge transfer during a transition: an event the old
	// program detects at this switch is admitted into the *new*
	// program's view here too (through the event mapping), so
	// detections made by draining packets are not lost to the
	// successor. Detection happens exactly once per event, at one
	// switch, so this rule together with the flip-time replay is the
	// complete carry-over discipline (docs/CONTROLLER.md).
	if newPS != nil && p.epoch == oldEpoch {
		wk.drained++
		if newly != nes.Empty {
			if mapped := mapEvents(newly, e.swap.spec.MapEvent); mapped != nes.Empty {
				newPS.views[i] = newPS.nes.Admit(newPS.views[i], mapped)
			}
		}
	}

	// Forward with the packet's tagged configuration of its epoch.
	ft := ps.flat[p.version][i]
	if ft == nil {
		if wk.ms != nil {
			wk.ms.Inc(obs.CtrRuleDrops)
		}
		if p.trace != 0 {
			wk.traceRec(p, i, obs.HopStale, -1, 0, "")
		}
		wk.recycle(p.vals)
		return
	}
	ri := ft.lookup(p.vals, p.pres, p.inPort, 0)
	if ri < 0 {
		if wk.ms != nil {
			wk.ms.Inc(obs.CtrRuleDrops)
		}
		if p.trace != 0 {
			wk.traceRec(p, i, obs.HopRuleDrop, -1, 0, "")
		}
		wk.recycle(p.vals)
		return // default drop
	}
	groups := ft.rules[ri].groups
	// Each group applies its writes to the packet *as it arrived*, so
	// the last emitting group inherits p.vals in place and earlier
	// ones copy the pristine array first.
	last := -1
	for gi := range groups {
		if pt := int(groups[gi].outPort); pt >= 0 && pt < len(dests) && dests[pt].kind != destNone {
			last = gi
		}
	}
	if last < 0 {
		if wk.ms != nil {
			wk.ms.Inc(obs.CtrRuleDrops)
		}
		if p.trace != 0 {
			wk.traceRec(p, i, obs.HopRuleDrop, ri, 0, "")
		}
		wk.recycle(p.vals)
		return // drop, or every copy leaves the modeled network
	}
	outStart := len(wk.outbox)
	for gi := 0; gi <= last; gi++ {
		g := &groups[gi]
		pt := int(g.outPort)
		if pt < 0 || pt >= len(dests) {
			continue // unconnected port: leaves the modeled network
		}
		d := &dests[pt]
		if d.kind == destNone {
			continue
		}
		vals := p.vals
		if gi != last {
			vals = wk.copyVals(p.vals)
		}
		for si, fi := range g.setIdx {
			vals[fi] = g.setVal[si]
		}
		if d.kind == destHost {
			// Host deliveries bypass the merge entirely: retention stays
			// flat in the worker's private log, keyed (parent seq, branch)
			// for the lazy canonical sort. The packet's progState is live
			// here, so its schema resolves.
			wk.dlog = append(wk.dlog, flatDelivery{
				host:   d.host,
				vals:   vals,
				pres:   p.pres | g.setMask,
				inert:  p.inert,
				schema: ps.schema,
				stamp:  Stamp{Epoch: p.epoch, Version: p.version},
				seq:    p.seq,
				branch: int32(gi),
			})
			if wk.ms != nil {
				wk.ms.Inc(obs.CtrDeliveries)
				if p.tns != 0 {
					wk.ms.Observe(obs.HistDeliveryNs, e.nowNs-p.tns)
				}
			}
			if wk.fs != nil {
				wk.fs.Add(obs.FlightRec{
					Kind: obs.FlightDeliver, Switch: int32(e.switches[i]),
					Branch: int32(gi), Epoch: int32(p.epoch), Version: int32(p.version),
					Gen: wk.gen, Seq: p.seq, Host: d.host,
				})
			}
			if p.trace != 0 {
				wk.traceRecB(p, i, obs.HopDeliver, ri, 0, int32(gi), d.host)
			}
			continue
		}
		wk.outbox = append(wk.outbox, outEntry{dst: d.idx, pkt: qpkt{
			vals:    vals,
			pres:    p.pres | g.setMask,
			inert:   p.inert,
			inPort:  int(d.port),
			epoch:   p.epoch,
			version: p.version,
			digest:  outDigest,
			seq:     p.seq,
			branch:  int32(gi),
			hops:    p.hops + 1,
			tns:     p.tns,
			trace:   p.trace,
		}})
	}
	if p.trace != 0 {
		wk.traceRec(p, i, obs.HopForward, ri, int32(len(wk.outbox)-outStart), "")
	}
}

// traceRec appends one trace record for the packet being consumed at
// switch index i (the record's Branch is the packet's own branch).
func (wk *worker) traceRec(p *qpkt, i int, kind obs.HopKind, rank int32, out int32, host string) {
	wk.traceRecB(p, i, kind, rank, out, p.branch, host)
}

// traceRecB is traceRec with an explicit branch (deliver records carry
// the emitting group index instead of the packet's branch). The switch
// index is translated to its ID through the worker's engine-shared
// switches slice at flush-readability cost zero: the slice is immutable
// after construction.
func (wk *worker) traceRecB(p *qpkt, i int, kind obs.HopKind, rank int32, out, branch int32, host string) {
	wk.ts.Add(obs.HopRec{
		Trace: p.trace, Kind: kind, Switch: wk.swID[i], InPort: int32(p.inPort),
		Rank: rank, Out: out, Branch: branch,
		Epoch: int32(p.epoch), Version: int32(p.version),
		Gen: wk.gen, Seq: p.seq, Host: host,
	})
}

// mapEvents maps an old-program event set through a MapEvent table.
func mapEvents(s nes.Set, mapEvent []int) nes.Set {
	out := nes.Empty
	for _, ev := range s.Elems() {
		if ev < len(mapEvent) && mapEvent[ev] >= 0 {
			out = out.With(mapEvent[ev])
		}
	}
	return out
}

// StageSwap stages a live program replacement. At the next generation
// barrier the engine installs the new program's plan, computes the new
// per-switch views by canonical event-history replay of the mapped old
// views, and flips ingress stamping to the new epoch; old-epoch packets
// keep draining through the old rules until none remain, at which point
// the old program is retired and the returned handle's Done channel
// closes. Forwarding never pauses. Only one swap may be active at a time.
//
// In synchronous mode the flip applies immediately (the engine is
// quiescent between calls by contract); in served mode it applies at the
// next barrier, and StageSwap returns once it has.
func (e *Engine) StageSwap(spec SwapSpec) (*Swap, error) {
	if spec.NES == nil {
		return nil, fmt.Errorf("dataplane: StageSwap needs a compiled NES")
	}
	s := &Swap{done: make(chan struct{})}
	s.stats.StagedAt = time.Now()
	var err error
	e.Do(func() { err = e.flip(spec, s) })
	if err != nil {
		return nil, err
	}
	return s, nil
}

// flip runs at a generation barrier: phase one and two of the update.
func (e *Engine) flip(spec SwapSpec, s *Swap) error {
	if e.swap != nil {
		return fmt.Errorf("dataplane: a swap is already in progress")
	}
	old := e.cur()
	if spec.MapEvent != nil && len(spec.MapEvent) != len(old.nes.Events) {
		return fmt.Errorf("dataplane: MapEvent has %d entries for %d old events", len(spec.MapEvent), len(old.nes.Events))
	}
	np := e.newProgState(old.epoch+1, spec.NES)
	carried := 0
	for i := range np.views {
		if spec.MapEvent != nil {
			np.views[i] = spec.NES.Replay(mapEvents(old.views[i], spec.MapEvent))
			carried += np.views[i].Count()
		} else {
			np.views[i] = nes.Empty
		}
	}
	e.progs = append(e.progs, np)
	e.swap = &swapHandle{spec: spec, s: s}
	s.stats.FlipAt = time.Now()
	s.stats.FlipGen = e.gen
	s.stats.CarriedEvents = carried
	if e.met != nil {
		e.met.Inc(obs.CtrSwapFlips)
		e.met.SetGauge(obs.GaugeSwapDraining, 1)
	}
	if e.bus != nil {
		e.bus.Publish(obs.Event{
			Kind: obs.KindSwap, Phase: "flip",
			From: old.epoch, To: np.epoch, Gen: e.gen, Epoch: np.epoch,
		})
	}
	if e.flight != nil {
		e.flight.Serial(obs.FlightRec{
			Kind: obs.FlightSwap, Phase: "flip",
			From: int32(old.epoch), To: int32(np.epoch), Epoch: int32(np.epoch),
			Gen: e.gen, Seq: e.seq,
		})
	}
	e.retireIfDrained() // nothing in flight: flip and retire at one barrier
	if e.swap != nil {
		if e.bus != nil {
			e.bus.Publish(obs.Event{
				Kind: obs.KindSwap, Phase: "drain",
				From: old.epoch, To: np.epoch, Gen: e.gen, Epoch: np.epoch,
				Inflight: old.inflight,
			})
		}
		if e.flight != nil {
			e.flight.Serial(obs.FlightRec{
				Kind: obs.FlightSwap, Phase: "drain",
				From: int32(old.epoch), To: int32(np.epoch), Epoch: int32(np.epoch),
				Gen: e.gen, Seq: e.seq,
			})
		}
	}
	return nil
}

// ---- Served mode ----------------------------------------------------

// Start launches the supervisor goroutine: the engine runs generations
// continuously, admitting InjectAsync packets and control requests at
// barriers. Start is idempotent; after Stop the engine stays stopped.
func (e *Engine) Start() {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.started || e.stopping {
		return
	}
	e.started = true
	e.serving = true
	go e.serve()
}

// Stop shuts the supervisor down: a running chunk ends at its next
// generation edge, remaining control requests are honored, queued
// packets stay in the rings, and every engine goroutine exits. Stop is
// idempotent —
// stopping twice, stopping mid-batch, or stopping a never-started engine
// are all safe — and returns only when the supervisor has exited.
func (e *Engine) Stop() {
	e.wmu.Lock()
	if !e.started {
		e.stopping = true // a later Start stays a no-op
		e.wmu.Unlock()
		return
	}
	e.stopping = true
	e.boundReq.Store(true) // end a running chunk at the next generation edge
	e.cond.Broadcast()
	e.wmu.Unlock()
	<-e.doneCh
}

// serve is the supervisor loop: boundaries (control, admissions, swap
// bookkeeping) interleaved with chunks of up to ChunkGens generations.
// Requests arriving mid-chunk raise boundReq, so the chunk ends at the
// next generation edge and boundary latency stays ~one generation.
func (e *Engine) serve() {
	defer close(e.doneCh)
	for {
		e.boundary()
		e.wmu.Lock()
		if e.stopping {
			e.serving = false
			e.cond.Broadcast()
			e.wmu.Unlock()
			e.runControl() // honor requests racing with Stop
			return
		}
		e.wmu.Unlock()
		if e.pending() > 0 {
			e.runChunk(e.chunkGens)
			continue
		}
		// Idle: wait for injections, control requests, or stop.
		e.wmu.Lock()
		for !e.stopping && len(e.inbox) == 0 && len(e.ctl) == 0 {
			e.idle = true
			e.cond.Broadcast()
			e.cond.Wait()
		}
		e.idle = false
		e.wmu.Unlock()
	}
}

// InjectAsync queues a packet for admission at the next generation
// barrier. Safe for concurrent use while the engine is serving; on a
// non-serving engine it is plain Inject.
func (e *Engine) InjectAsync(host string, fields netkat.Packet) error {
	if _, ok := e.hostBy[host]; !ok {
		return fmt.Errorf("dataplane: unknown host %q", host)
	}
	if err := ValidateDomain(fields); err != nil {
		return err
	}
	e.wmu.Lock()
	if !e.serving {
		e.wmu.Unlock()
		return e.Inject(host, fields)
	}
	e.inbox = append(e.inbox, injectReq{host: host, fields: fields.Clone()})
	e.boundReq.Store(true)
	e.cond.Broadcast()
	e.wmu.Unlock()
	return nil
}

// Do runs f atomically with respect to generations: on a serving engine
// it executes at the next barrier (blocking until done), otherwise
// inline. f sees quiescent engine state and may call the synchronous API
// (Inject, StageSwap internals, state accessors).
func (e *Engine) Do(f func()) {
	e.wmu.Lock()
	if !e.serving {
		e.wmu.Unlock()
		f()
		return
	}
	req := ctlReq{f: f, done: make(chan struct{})}
	e.ctl = append(e.ctl, req)
	e.boundReq.Store(true)
	e.cond.Broadcast()
	e.wmu.Unlock()
	<-req.done
}

// Quiesce blocks until the serving engine has no queued packets, no
// pending injections, and no active transition (it returns immediately on
// a non-serving engine, which is quiescent between calls by contract).
func (e *Engine) Quiesce() {
	for {
		e.wmu.Lock()
		if !e.serving {
			e.wmu.Unlock()
			return
		}
		for !(e.idle && len(e.inbox) == 0 && len(e.ctl) == 0) {
			if !e.serving {
				e.wmu.Unlock()
				return
			}
			e.cond.Wait()
		}
		e.wmu.Unlock()
		// The supervisor is idle: confirm nothing is in flight (it only
		// parks when rings are empty and no swap is draining).
		done := true
		e.Do(func() { done = e.pending() == 0 && e.swap == nil })
		if done {
			return
		}
	}
}

// Snapshot is a barrier-consistent view of the engine for monitoring.
type Snapshot struct {
	Epoch      int   // current ingress epoch
	Programs   int   // live program epochs (2 during a transition)
	Swapping   bool  // a transition is draining
	Generation int64 // generations executed
	Pending    int   // packets queued in rings
	Processed  int64 // total switch-hops executed
	Deliveries int   // packets delivered to hosts (total, beyond log retention)
	TTLDropped int64 // packets discarded by the forwarding-loop TTL
	States     int   // configurations of the current program
	Events     int   // events of the current program
	Switches   []SwitchStat
}

// SwitchStat is one switch's live state.
type SwitchStat struct {
	ID    int
	Hops  int64 // switch-hops executed here
	View  []int // current program's event view
	Queue int   // packets queued
}

// Snapshot returns a barrier-consistent snapshot (safe while serving).
func (e *Engine) Snapshot() Snapshot {
	var s Snapshot
	e.Do(func() {
		cp := e.cur()
		delivered := e.deliveryBase + len(e.deliveries)
		for _, wk := range e.ws {
			delivered += len(wk.dlog) // not yet folded; counting stays lazy
		}
		s = Snapshot{
			Epoch:      cp.epoch,
			Programs:   len(e.progs),
			Swapping:   e.swap != nil,
			Generation: e.gen,
			Pending:    e.pending(),
			Processed:  e.processed,
			Deliveries: delivered,
			TTLDropped: e.dropped,
			States:     len(cp.nes.Configs),
			Events:     len(cp.nes.Events),
		}
		for i, sw := range e.switches {
			s.Switches = append(s.Switches, SwitchStat{
				ID:    sw,
				Hops:  e.hops[i],
				View:  cp.views[i].Elems(),
				Queue: e.rings[i].len(),
			})
		}
	})
	return s
}

// mergeDeliveries folds the per-worker delivery logs into the global
// canonical sequence. Each worker appended its shard's deliveries
// lock-free during chunks, keyed (parent seq, branch) — the same
// genealogy keys the old eager merge sorted every generation. Parent
// seqs grow strictly across generations, so everything gathered here
// sorts after everything gathered before: sorting just the new tail
// yields the globally sorted log, and the merged prefix never moves.
// Must run with workers quiescent (synchronous mode, or inside Do).
func (e *Engine) mergeDeliveries() {
	n := 0
	for _, wk := range e.ws {
		n += len(wk.dlog)
	}
	if n == 0 {
		return
	}
	if e.eobs != nil {
		e.flushDeliverySamples() // the sampler's dlog cursors reset below
	}
	start := len(e.deliveries)
	for _, wk := range e.ws {
		e.deliveries = append(e.deliveries, wk.dlog...)
		for i := range wk.dlog {
			wk.dlog[i] = flatDelivery{} // release references
		}
		wk.dlog = wk.dlog[:0]
		wk.dlogFlushed = 0
	}
	tail := e.deliveries[start:]
	// (parent seq, branch) keys are unique per delivery, so the unstable
	// sort is deterministic.
	slices.SortFunc(tail, func(a, b flatDelivery) int {
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return int(a.branch) - int(b.branch)
	})
	// Trim to the bound (absolute indexing preserved via deliveryBase) so
	// a long-running service does not retain every packet it delivered.
	if e.deliveryCap > 0 && len(e.deliveries) > e.deliveryCap {
		drop := len(e.deliveries) - e.deliveryCap/2
		e.deliveryBase += drop
		e.deliveries = append(e.deliveries[:0], e.deliveries[drop:]...)
	}
}

// CopyDeliveries returns a barrier-consistent copy of the retained
// deliveries from absolute index `from` on (safe while serving), with
// header maps materialized from the flat retention — the egress
// conversion happens here, once per delivery read, not on the hop loop.
// With a bounded delivery log, deliveries older than the retention
// window are gone; Snapshot.Deliveries still counts them.
func (e *Engine) CopyDeliveries(from int) []Delivery {
	var out []Delivery
	e.Do(func() {
		e.mergeDeliveries()
		i := from - e.deliveryBase
		if i < 0 {
			i = 0
		}
		for ; i < len(e.deliveries); i++ {
			out = append(out, e.deliveries[i].materialize())
		}
	})
	return out
}

// ---- Synchronous-mode accessors --------------------------------------

// Deliveries returns every packet delivered to a host, in the engine's
// deterministic delivery order, materialized from the flat retention.
// Synchronous mode only; use CopyDeliveries on a serving engine.
func (e *Engine) Deliveries() []Delivery {
	e.mergeDeliveries()
	out := make([]Delivery, len(e.deliveries))
	for i := range e.deliveries {
		out[i] = e.deliveries[i].materialize()
	}
	return out
}

// DeliveredTo returns the packets delivered to the named host.
func (e *Engine) DeliveredTo(host string) []netkat.Packet {
	e.mergeDeliveries()
	var out []netkat.Packet
	for i := range e.deliveries {
		if e.deliveries[i].host == host {
			d := &e.deliveries[i]
			out = append(out, d.schema.materialize(d.inert, d.vals, d.pres))
		}
	}
	return out
}

// View returns a switch's current event view (of the current program).
func (e *Engine) View(sw int) nes.Set { return e.cur().views[e.swIdx[sw]] }

// Epoch returns the current ingress program epoch.
func (e *Engine) Epoch() int { return e.cur().epoch }

// Serving reports whether the supervisor goroutine is running. Unlike
// Snapshot it never does a barrier round trip, so it stays answerable
// even when the engine is wedged — health checks depend on that.
func (e *Engine) Serving() bool {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.serving
}

// Processed returns how many switch-hops the engine has executed — the
// numerator of a packets/sec measurement.
func (e *Engine) Processed() int64 { return e.processed }
