package dataplane

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eventnet/internal/obs"
)

// This file is the chunked generation machinery: how the engine runs
// many bulk-synchronous generations between boundaries without touching
// the supervisor, a lock, or a sort.
//
// A *chunk* is up to ChunkGens generations executed back-to-back. For
// its duration the worker goroutines are persistent — spawned once at
// chunk entry, exited at chunk end — and coordinate through a
// sense-reversing spin rendezvous (phaser) instead of a WaitGroup per
// generation. Each generation has two parallel phases:
//
//	drain:   every worker forwards its shard's queued packets one hop,
//	         recording per-parent emission spans in the shared emitBuf
//	         (disjoint writes: each parent belongs to exactly one ring).
//	consume: every worker walks the emission index in parent-seq order
//	         and pushes *its own switches'* packets into their rings,
//	         computing each packet's fresh seq from the serially
//	         prefix-summed offsets — the deterministic merge without a
//	         sort and without a single-threaded packet-move loop.
//
// Between the phases the lead worker (the calling goroutine, shard 0)
// runs two tiny serial steps: the prefix sums, and the generation tail
// (counter folds, swap accounting, retirement, continue/stop). See
// docs/DATAPLANE.md for why this is observationally identical to the
// one-generation-per-rendezvous engine it replaced.

// defaultChunkGens is the Options.ChunkGens default: long enough to
// amortize chunk entry/exit, short enough that a bounded delivery log
// is trimmed promptly even without boundary requests.
const defaultChunkGens = 64

// phaser is the in-chunk rendezvous: workers arrive and spin until the
// lead releases the next phase by advancing the gate ticket. Spinning
// backs off to runtime.Gosched, so the chunk makes progress (slowly, in
// rotation) even at GOMAXPROCS=1. The atomics carry the happens-before
// edges that publish emitBuf, outboxes, and rings between phases.
type phaser struct {
	arrived atomic.Int32
	gate    atomic.Uint64
	stop    atomic.Bool
}

func (p *phaser) reset() {
	p.arrived.Store(0)
	p.gate.Store(0)
	p.stop.Store(false)
}

// await is the non-lead side: arrive at the rendezvous, then wait for
// the lead to open the next phase. Returns the new ticket.
func (p *phaser) await(ticket uint64) uint64 {
	p.arrived.Add(1)
	next := ticket + 1
	for i := 0; p.gate.Load() < next; i++ {
		if i > 128 {
			runtime.Gosched()
		}
	}
	return next
}

// gather is the lead side: wait for every other worker to arrive.
func (p *phaser) gather(workers int) {
	for i := 0; p.arrived.Load() < int32(workers-1); i++ {
		if i > 128 {
			runtime.Gosched()
		}
	}
	p.arrived.Store(0)
}

// release opens the next phase for the waiting workers.
func (p *phaser) release() { p.gate.Add(1) }

// generation runs exactly one generation (test and benchmark hook).
func (e *Engine) generation() { e.runChunk(1) }

// runChunk runs up to budget generations without boundary work, ending
// early at quiescence or on a boundary request. Returns generations run.
// An empty engine runs one vacuous generation — callers gate on
// pending() — so the hot entry path performs no ring scan.
func (e *Engine) runChunk(budget int) int {
	if budget <= 0 {
		return 0
	}
	e.beginGen()
	if e.workers == 1 {
		return e.chunkLead(budget)
	}
	e.ph.reset()
	gen0 := e.gen
	var wg sync.WaitGroup
	for w := 1; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.chunkWorker(w, gen0)
		}(w)
	}
	ran := e.chunkLead(budget)
	wg.Wait()
	return ran
}

// beginGen prepares the emission index for the next generation: one
// record per parent packet. The queued packets' seqs are exactly the
// dense window (ringLo, seq] — injections are admitted only at
// boundaries and never consume a seq on rejection — so the index needs
// no zeroing: every slot is written by the worker draining its parent.
func (e *Engine) beginGen() {
	e.genLo = e.ringLo
	p := int(e.seq - e.ringLo)
	if cap(e.emitBuf) < p {
		e.emitBuf = make([]emitRec, p)
	}
	e.emitBuf = e.emitBuf[:p]
}

// chunkLead is the calling goroutine's side of a chunk: it drains and
// consumes shard 0 like any worker, and runs the serial steps between
// phases. With one worker there is no phaser traffic at all.
func (e *Engine) chunkLead(budget int) int {
	wk := e.ws[0]
	solo := e.workers == 1
	ran := 0
	var t0 int64
	if wk.ms != nil {
		t0 = time.Now().UnixNano()
	}
	for {
		e.gen++
		ran++
		wk.gen = e.gen
		wk.beginGen()
		for i := 0; i < len(e.switches); i += e.workers {
			e.drain(wk, i)
		}
		if !solo {
			e.ph.gather(e.workers)
		}
		e.genPrefix()
		if !solo {
			e.ph.release()
		}
		e.genConsume(0)
		if !solo {
			e.ph.gather(e.workers)
		}
		live := e.genFinish()
		if !live || ran >= budget || e.boundReq.Load() {
			if !solo {
				e.ph.stop.Store(true)
				e.ph.release()
			}
			wk.foldChunkTime(t0)
			return ran
		}
		e.beginGen()
		if !solo {
			e.ph.release()
		}
	}
}

// chunkWorker is a non-lead worker's side of a chunk. gen0 is the
// engine generation at chunk entry: each worker advances its own copy
// (wk.gen) in lockstep with the lead's e.gen++, so trace records can
// carry the generation without any worker reading e.gen mid-chunk.
func (e *Engine) chunkWorker(w int, gen0 int64) {
	wk := e.ws[w]
	ticket := uint64(0)
	var t0 int64
	if wk.ms != nil {
		t0 = time.Now().UnixNano()
	}
	for {
		gen0++
		wk.gen = gen0
		wk.beginGen()
		for i := w; i < len(e.switches); i += e.workers {
			e.drain(wk, i)
		}
		ticket = e.ph.await(ticket) // drain done; wait for prefix sums
		e.genConsume(w)
		ticket = e.ph.await(ticket) // consume done; wait for the tail
		if e.ph.stop.Load() {
			wk.foldChunkTime(t0)
			return
		}
	}
}

// genPrefix is the serial step between drain and consume: prefix-sum
// the per-parent ring-bound emission counts, so every worker can place
// every pushed packet's fresh seq independently.
func (e *Engine) genPrefix() {
	off := int32(0)
	buf := e.emitBuf
	for p := range buf {
		buf[p].off = off
		off += buf[p].n
	}
	e.genPushes = int64(off)
}

// genConsume pushes this worker's switches' share of the generation's
// emissions into their rings, walking the emission index in parent-seq
// order (then branch order within a parent) — exactly the order the old
// ref-sort merge produced. Fresh seqs are dense over the ring-bound
// emissions in that order: seqBase+1+off+j is the same assignment the
// serial e.seq++ loop made, computed without coordination. Each ring is
// written only by its owning worker, and each outbox entry only by the
// worker that owns its destination, so all writes are disjoint.
func (e *Engine) genConsume(w int) {
	k := e.workers
	base := e.seq
	wk := e.ws[w]
	buf := e.emitBuf
	for p := range buf {
		rec := &buf[p]
		if rec.n == 0 {
			continue
		}
		src := e.ws[rec.w].outbox[rec.start : rec.start+rec.n]
		for j := range src {
			en := &src[j]
			if int(en.dst)%k != w {
				continue
			}
			en.pkt.seq = base + 1 + int64(rec.off) + int64(j)
			en.pkt.branch = 0
			e.rings[en.dst].push(&en.pkt)
			wk.countPush(en.pkt.epoch)
		}
	}
}

// genFinish is the serial generation tail, run with all workers at the
// rendezvous: fold per-worker counters into engine totals and per-epoch
// inflight counts, advance the seq window, account the transition, and
// decide retirement exactly where the counts are freshly exact (the
// transition window closes at the generation that drained the last old
// packet, not at the next boundary). Returns false at quiescence.
func (e *Engine) genFinish() bool {
	genHops, genDrained := int64(0), int64(0)
	// The generation consumed every queued packet; the rings now hold
	// exactly what consume pushed back, so per-epoch inflight counts are
	// recomputed from scratch.
	for _, ps := range e.progs {
		ps.inflight = 0
	}
	for _, wk := range e.ws {
		e.processed += wk.processed
		genHops += wk.processed
		genDrained += wk.drained
		e.dropped += wk.ttlDropped
		if wk.ms != nil {
			wk.chunkHops += wk.processed // folded by foldChunkTime at chunk exit
		}
		wk.processed, wk.drained, wk.ttlDropped = 0, 0, 0
		for s := 0; s < 2; s++ {
			if wk.pushN[s] != 0 {
				if ps := e.prog(wk.pushE[s]); ps != nil {
					ps.inflight += wk.pushN[s]
				}
				wk.pushN[s] = 0
			}
		}
	}
	e.ringLo = e.seq
	e.seq += e.genPushes
	if e.swap != nil {
		e.swap.s.stats.TransitionHops += genHops
		e.swap.s.stats.DrainedHops += genDrained
	}
	// Serial metrics tail: plain stores into the lead's shard (the lead
	// *is* worker 0, and every other worker is parked at the rendezvous),
	// so the per-generation cost is a handful of array writes. The
	// wall-clock cache refreshes every 8th generation — delivery-latency
	// stamps trade that much resolution for keeping time.Now off the
	// per-generation path (the log2 buckets absorb it).
	if ms := e.ws[0].ms; ms != nil && genHops > 0 {
		ms.Inc(obs.CtrGenerations)
		ms.Add(obs.CtrHops, genHops)
		ms.Observe(obs.HistGenOccupancy, genHops)
		if genDrained != 0 {
			ms.Add(obs.CtrDrainedHops, genDrained)
		}
		if e.gen&7 == 0 {
			e.nowNs = time.Now().UnixNano()
		}
	}
	e.retireIfDrained()
	return e.genPushes > 0
}
