package dataplane_test

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
)

// Batched-ingress equivalence: InjectBatch of N packets must be
// observationally identical to N sequential InjectStamped calls — same
// stamps returned, same stamped delivery sequence, same hop and TTL
// counters — and per-packet failures must reject exactly the bad
// packets while the rest of the batch is admitted unchanged.

// runRounds replays the rounds through inject (Run between rounds) and
// returns the collected stamps plus the final engine.
func runRounds(t *testing.T, a apps.App, batches [][]dataplane.Injection,
	inject func(e *dataplane.Engine, batch []dataplane.Injection) []dataplane.Stamp) (*dataplane.Engine, []dataplane.Stamp) {
	t.Helper()
	e := dataplane.NewEngine(buildNES(t, a), a.Topo, dataplane.Options{Workers: 2})
	var stamps []dataplane.Stamp
	for _, batch := range batches {
		stamps = append(stamps, inject(e, batch)...)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return e, stamps
}

// TestInjectBatchEquivalence: batch of N ≡ N sequential injections, for
// stamps, stamped deliveries, and the engine counters.
func TestInjectBatchEquivalence(t *testing.T) {
	for _, a := range []apps.App{apps.Firewall(), apps.BandwidthCap(10), apps.IDSFatTree(4)} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			batches := loadBatches(t, a, 3, 60)
			seqEng, seqStamps := runRounds(t, a, batches, func(e *dataplane.Engine, batch []dataplane.Injection) []dataplane.Stamp {
				var out []dataplane.Stamp
				for _, in := range batch {
					st, err := e.InjectStamped(in.Host, in.Fields)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, st)
				}
				return out
			})
			batEng, batStamps := runRounds(t, a, batches, func(e *dataplane.Engine, batch []dataplane.Injection) []dataplane.Stamp {
				stamps, errs := e.InjectBatch(batch)
				if errs != nil {
					t.Fatalf("clean batch returned errors: %v", errs)
				}
				return stamps
			})
			if len(seqStamps) != len(batStamps) {
				t.Fatalf("stamp counts differ: %d vs %d", len(seqStamps), len(batStamps))
			}
			for i := range seqStamps {
				if seqStamps[i] != batStamps[i] {
					t.Fatalf("stamp %d differs: %+v vs %+v", i, seqStamps[i], batStamps[i])
				}
			}
			if i := sameStamped(seqEng.Deliveries(), batEng.Deliveries()); i != -1 {
				t.Fatalf("deliveries diverge at %d", i)
			}
			ss, bs := seqEng.Snapshot(), batEng.Snapshot()
			if ss.Processed != bs.Processed || ss.TTLDropped != bs.TTLDropped || ss.Deliveries != bs.Deliveries {
				t.Fatalf("counters differ: sequential hops=%d ttl=%d delivered=%d, batched hops=%d ttl=%d delivered=%d",
					ss.Processed, ss.TTLDropped, ss.Deliveries, bs.Processed, bs.TTLDropped, bs.Deliveries)
			}
			if len(seqEng.Deliveries()) == 0 {
				t.Fatal("workload delivered nothing; equivalence is vacuous")
			}
		})
	}
}

// TestInjectBatchPartialErrors pins the partial-batch semantics: a
// packet that fails validation is reported at its own index (zero
// stamp), consumes nothing, and the rest of the batch is admitted —
// exactly a sequential loop that skips the failures.
func TestInjectBatchPartialErrors(t *testing.T) {
	a := apps.Firewall()
	good := loadBatches(t, a, 1, 6)[0]
	bad := make([]dataplane.Injection, 0, len(good)+2)
	bad = append(bad, good[:2]...)
	bad = append(bad, dataplane.Injection{Host: "NoSuchHost", Fields: netkat.Packet{"dst": apps.H(1)}})
	bad = append(bad, good[2:4]...)
	bad = append(bad, dataplane.Injection{Host: "H1", Fields: netkat.Packet{"dst": 1 << 40}})
	bad = append(bad, good[4:]...)

	e := dataplane.NewEngine(buildNES(t, a), a.Topo, dataplane.Options{Workers: 2})
	stamps, errs := e.InjectBatch(bad)
	if errs == nil {
		t.Fatal("batch with invalid packets returned nil errs")
	}
	for i := range bad {
		wantErr := i == 2 || i == 5
		if (errs[i] != nil) != wantErr {
			t.Fatalf("errs[%d] = %v, want error: %v", i, errs[i], wantErr)
		}
		if wantErr && stamps[i] != (dataplane.Stamp{}) {
			t.Fatalf("failed packet %d got a stamp: %+v", i, stamps[i])
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// The reference: inject only the good packets sequentially.
	ref := dataplane.NewEngine(buildNES(t, a), a.Topo, dataplane.Options{Workers: 2})
	for _, in := range good {
		if _, err := ref.InjectStamped(in.Host, in.Fields); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if i := sameStamped(ref.Deliveries(), e.Deliveries()); i != -1 {
		t.Fatalf("partial batch deliveries diverge from skip-sequential reference at %d", i)
	}
}

// TestInjectAsyncBatchServed: on a serving engine the whole batch is
// admitted at one boundary, with validation errors surfaced
// synchronously per packet, and the result matches a synchronous run of
// the same batch.
func TestInjectAsyncBatchServed(t *testing.T) {
	a := apps.Firewall()
	batch := loadBatches(t, a, 1, 40)[0]
	withBad := append(append([]dataplane.Injection{}, batch...),
		dataplane.Injection{Host: "NoSuchHost", Fields: netkat.Packet{"dst": apps.H(1)}})

	e := dataplane.NewEngine(buildNES(t, a), a.Topo, dataplane.Options{Workers: 2})
	e.Start()
	errs := e.InjectAsyncBatch(withBad)
	if errs == nil || errs[len(withBad)-1] == nil {
		t.Fatalf("served batch did not surface the invalid packet: %v", errs)
	}
	for i := range batch {
		if errs[i] != nil {
			t.Fatalf("valid packet %d rejected: %v", i, errs[i])
		}
	}
	e.Quiesce()
	got := e.CopyDeliveries(0)
	e.Stop()

	ref := dataplane.NewEngine(buildNES(t, a), a.Topo, dataplane.Options{Workers: 2})
	if _, errs := ref.InjectBatch(batch); errs != nil {
		t.Fatalf("reference batch errored: %v", errs)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if i := sameStamped(ref.Deliveries(), got); i != -1 {
		t.Fatalf("served batch deliveries diverge from synchronous reference at %d", i)
	}
	if len(got) == 0 {
		t.Fatal("served batch delivered nothing; equivalence is vacuous")
	}
}
