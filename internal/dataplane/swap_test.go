package dataplane_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// TestEngineStopIdempotentLeakFree: netd restarts engines around swaps,
// so shutdown must be idempotent (Stop twice, Stop before Start, Stop
// mid-batch) and leak no goroutines across many start/stop cycles. The
// engine also stays usable synchronously after Stop: packets stranded
// mid-batch drain with a plain Run.
func TestEngineStopIdempotentLeakFree(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	lg := dataplane.NewLoadGen(n, a.Topo, 3)

	baseline := runtime.NumGoroutine()

	// Stop on a never-started engine, twice.
	e0 := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2})
	e0.Stop()
	e0.Stop()

	for cycle := 0; cycle < 8; cycle++ {
		e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2})
		e.Start()
		e.Start() // idempotent
		for _, in := range lg.Injections(60) {
			if err := e.InjectAsync(in.Host, in.Fields); err != nil {
				t.Fatal(err)
			}
		}
		e.Stop() // mid-batch: traffic likely still queued
		e.Stop() // idempotent
		// The supervisor is gone; the synchronous API still drains what
		// was left behind, and a post-Stop Start must stay a no-op.
		e.Start()
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at baseline, %d after start/stop cycles", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineQuiesceUnderLoad: Quiesce returns only once served traffic
// has fully drained, and the delivery count is then stable.
func TestEngineQuiesceUnderLoad(t *testing.T) {
	a := apps.BandwidthCap(10)
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2})
	e.Start()
	defer e.Stop()
	lg := dataplane.NewLoadGen(n, a.Topo, 5)
	for _, in := range lg.Injections(200) {
		if err := e.InjectAsync(in.Host, in.Fields); err != nil {
			t.Fatal(err)
		}
	}
	e.Quiesce()
	s := e.Snapshot()
	if s.Pending != 0 {
		t.Fatalf("quiesced with %d packets pending", s.Pending)
	}
	if s.Deliveries == 0 {
		t.Fatal("workload delivered nothing; test is vacuous")
	}
}

// TestPlanInvalidation: plans are keyed by program identity and must be
// explicitly droppable — after a swap retires a program, a stale plan
// must not be servable for its NES. Without Invalidate the cache would
// keep serving the index compiled from the old tables; with it, the next
// PlanFor compiles the tables as they stand.
func TestPlanInvalidation(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	p1 := dataplane.PlanFor(n)
	if dataplane.PlanFor(n) != p1 {
		t.Fatal("PlanFor did not cache by program identity")
	}

	// Find a probe that forwards under configuration 0.
	var probeSw, probePort int
	var probePkt netkat.Packet
	found := false
	for sw, tbl := range n.Configs[0].Tables {
		for _, r := range tbl.Rules {
			if len(r.Groups) == 0 || r.Match.InPort == flowtable.Wildcard {
				continue
			}
			probeSw, probePort = sw, r.Match.InPort
			probePkt = netkat.Packet{}
			for f, v := range r.Match.Fields {
				probePkt[f] = v
			}
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no forwarding rule to probe")
	}
	if out := p1.Matcher(0, probeSw).Process(nil, probePkt, probePort, 0); len(out) == 0 {
		t.Fatal("probe does not forward under the original plan")
	}

	// The program is "recompiled in place": a shadowing drop rule lands at
	// the top of the table while the NES value is reused.
	n.Configs[0].Tables[probeSw].Add(flowtable.Rule{
		Priority: 1 << 30,
		Match:    flowtable.Match{InPort: flowtable.Wildcard},
	})

	// The cache still serves the stale pre-change plan — this is exactly
	// why retirement must invalidate.
	if stale := dataplane.PlanFor(n); stale != p1 {
		t.Fatal("cache rebuilt without invalidation; staleness test is vacuous")
	}

	dataplane.Invalidate(n)
	p2 := dataplane.PlanFor(n)
	if p2 == p1 {
		t.Fatal("Invalidate did not drop the plan")
	}
	if out := p2.Matcher(0, probeSw).Process(nil, probePkt, probePort, 0); len(out) != 0 {
		t.Fatal("recompiled plan still serves the stale rules")
	}
	dataplane.Invalidate(n) // idempotent
}

// TestPlanCacheEvictionKeepsHot: filling the cache past its limit evicts
// least-recently-used plans, never the ones in active use — a swap's two
// live programs must survive arbitrary cache pressure.
func TestPlanCacheEvictionKeepsHot(t *testing.T) {
	hot := &nes.NES{}
	ph := dataplane.PlanFor(hot)
	for i := 0; i < 400; i++ {
		dataplane.PlanFor(&nes.NES{})
		if i%40 == 0 && dataplane.PlanFor(hot) != ph {
			t.Fatalf("hot plan evicted at insert %d", i)
		}
	}
	if dataplane.PlanFor(hot) != ph {
		t.Fatal("hot plan evicted under cache pressure")
	}
	if l := dataplane.PlanCacheLen(); l > 129 {
		t.Fatalf("cache grew without bound: %d entries", l)
	}
	dataplane.Invalidate(hot)
}

// TestMergedPairStagedInstall: the phase-one staged table — both
// programs' rules behind disjoint exact guards — forwards every old tag
// exactly like the old program's own table and every offset new tag
// exactly like the new program's, through both the compiled index and
// the linear scan.
func TestMergedPairStagedInstall(t *testing.T) {
	old := buildNES(t, apps.Firewall())
	new_ := buildNES(t, apps.BandwidthCap(8))
	merged, off := dataplane.MergedPair(old, new_)
	if off != len(old.Configs) {
		t.Fatalf("offset %d, want %d", off, len(old.Configs))
	}
	hosts := hostAddrs(apps.Firewall().Topo)
	r := rand.New(rand.NewSource(17))
	for _, sw := range merged.Switches() {
		ct := dataplane.Compile(merged[sw])
		mscan := dataplane.Scan{Table: merged[sw]}
		check := func(n *nes.NES, base int) {
			for ci := range n.Configs {
				var ref dataplane.Matcher = dataplane.Scan{Table: &flowtable.Table{}}
				if tbl, ok := n.Configs[ci].Tables[sw]; ok {
					ref = dataplane.Scan{Table: tbl}
				}
				for i := 0; i < 60; i++ {
					pkt, port, _ := randProbe(r, hosts)
					tag := uint32(base + ci)
					got := ct.Process(nil, pkt, port, tag)
					viaScan := mscan.Process(nil, pkt, port, tag)
					want := ref.Process(nil, pkt, port, 0)
					if !sameOutputs(got, want) || !sameOutputs(viaScan, want) {
						t.Fatalf("sw %d tag %d (base %d config %d) pkt %v port %d:\nindexed %v\nmerged-scan %v\nper-config %v",
							sw, tag, base, ci, pkt, port, got, viaScan, want)
					}
				}
			}
		}
		check(old, 0)
		check(new_, off)
	}
}

// loopNES builds a pathological program whose rules forward every packet
// around the s1<->s4 cycle forever — the shape a bad northbound
// submission could install.
func loopNES(t *testing.T) *nes.NES {
	t.Helper()
	tables := flowtable.Tables{}
	for _, sw := range []int{1, 4} {
		tables.Get(sw).Add(flowtable.Rule{
			Priority: 1,
			Match:    flowtable.Match{InPort: flowtable.Wildcard},
			Groups:   []flowtable.ActionGroup{{OutPort: 1}},
		})
	}
	n, err := nes.New(nil, map[nes.Set]int{nes.Empty: 0}, []nes.Config{{ID: 0, Tables: tables}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEngineHopTTL: a forwarding loop must not wedge the engine. The
// per-packet TTL discards the circulating packet, so a synchronous Run
// quiesces and — the case that matters for the daemon — a served engine
// still quiesces, drains swaps, and stops.
func TestEngineHopTTL(t *testing.T) {
	tp := apps.Firewall().Topo
	n := loopNES(t)

	e := dataplane.NewEngine(n, tp, dataplane.Options{Workers: 2})
	if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("looping packet did not quiesce under the TTL: %v", err)
	}
	if got := len(e.Deliveries()); got != 0 {
		t.Fatalf("looping packet delivered %d times", got)
	}
	if p := e.Processed(); p < 1000 || p > 1100 {
		t.Fatalf("TTL fired at %d hops", p)
	}

	// Served mode: Quiesce must return despite the loop.
	es := dataplane.NewEngine(n, tp, dataplane.Options{Workers: 2})
	es.Start()
	defer es.Stop()
	if err := es.InjectAsync("H1", netkat.Packet{"dst": apps.H(4)}); err != nil {
		t.Fatal(err)
	}
	es.Quiesce()
	if s := es.Snapshot(); s.Pending != 0 || s.TTLDropped != 1 {
		t.Fatalf("served loop not TTL-drained: %+v", s)
	}
}

// TestDeliveryLogBound: with DeliveryLog set, the engine retains a
// bounded window while total counts and absolute CopyDeliveries indices
// keep working — the memory guarantee a long-running daemon needs.
func TestDeliveryLogBound(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	e := dataplane.NewEngine(n, a.Topo, dataplane.Options{DeliveryLog: 8})
	const total = 40
	for i := 0; i < total; i++ {
		if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1), "id": i}); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Snapshot()
	if s.Deliveries != total {
		t.Fatalf("total delivery count %d, want %d", s.Deliveries, total)
	}
	retained := e.CopyDeliveries(0)
	if len(retained) > 8 {
		t.Fatalf("log retained %d deliveries, bound is 8", len(retained))
	}
	last := e.CopyDeliveries(total - 1)
	if len(last) != 1 || last[0].Fields["id"] != total-1 {
		t.Fatalf("absolute indexing broken after trim: %+v", last)
	}
}
