package dataplane

import (
	"reflect"

	"eventnet/internal/flowtable"
)

// LowerIRMatchesMap is the test hook for the flat-IR fast path: it lowers
// the rule twice — once through its compiler-emitted IR and once with the
// IR stripped, forcing the map-form rederivation — and reports whether
// the two flat rules are identical. Rules without IR report false so the
// property test also catches the compiler silently ceasing to emit it.
func LowerIRMatchesMap(r *flowtable.Rule, s *Schema) bool {
	if r.IR == nil {
		return false
	}
	fast := lowerRule(r, s)
	stripped := *r
	stripped.IR = nil
	slow := lowerRule(&stripped, s)
	return reflect.DeepEqual(fast, slow)
}
