package nes

import (
	"testing"

	"eventnet/internal/netkat"
)

func benchNES(b *testing.B) *NES {
	b.Helper()
	var events []Event
	family := map[Set]int{Empty: 0}
	configs := []Config{{ID: 0}}
	s := Empty
	for i := 0; i < 11; i++ {
		events = append(events, mkEventB(i))
		s = s.With(i)
		family[s] = i + 1
		configs = append(configs, Config{ID: i + 1})
	}
	n, err := New(events, family, configs)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func mkEventB(id int) Event {
	return Event{ID: id, Guard: guard("dst", 104), Loc: netkat.Location{Switch: 4, Port: 1}, Occurrence: id + 1}
}

func BenchmarkCon(b *testing.B) {
	n := benchNES(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Con(FromMask(0b1111))
	}
}

func BenchmarkEnables(b *testing.B) {
	n := benchNES(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Enables(FromMask(0b1111), 4)
	}
}

func BenchmarkAllowedSequences(b *testing.B) {
	n := benchNES(b)
	for i := 0; i < b.N; i++ {
		if _, err := n.AllowedSequences(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimallyInconsistent(b *testing.B) {
	n := benchNES(b)
	for i := 0; i < b.N; i++ {
		if _, err := n.MinimallyInconsistent(); err != nil {
			b.Fatal(err)
		}
	}
}
