package nes

import (
	"math/rand"
	"testing"
)

// The detection and replay fast paths (Enables' allocation-free diff,
// ArmedFrom's one-pass family fold, Admit's counting form) must agree
// with the definitional forms of Section 3.1 on arbitrary families.
// These reference implementations are the definitions, transcribed.

func enablesRef(n *NES, x Set, e int) bool {
	if !n.Con(x) {
		return false
	}
	for _, f := range n.familyList {
		if f.Has(e) && f.Without(e).SubsetOf(x) {
			return true
		}
	}
	return false
}

func armedRef(n *NES, known Set) Set {
	out := Empty
	for _, ev := range n.Events {
		if known.Has(ev.ID) {
			continue
		}
		if enablesRef(n, known, ev.ID) && n.Con(known.With(ev.ID)) {
			out = out.With(ev.ID)
		}
	}
	return out
}

func admitRef(n *NES, view, candidates Set) Set {
	for {
		changed := false
		for _, e := range candidates.Elems() {
			if view.Has(e) {
				continue
			}
			if enablesRef(n, view, e) && n.Con(view.With(e)) {
				view = view.With(e)
				changed = true
			}
		}
		if !changed {
			return view
		}
	}
}

// randNES builds an NES over `events` events with a random family (the
// empty set plus `members` random subsets).
func randNES(t *testing.T, r *rand.Rand, events, members int) *NES {
	t.Helper()
	evs := make([]Event, events)
	for i := range evs {
		evs[i] = mkEvent(i, i%3+1, 1)
	}
	family := map[Set]int{Empty: 0}
	for m := 0; m < members; m++ {
		s := Empty
		for e := 0; e < events; e++ {
			if r.Intn(3) == 0 {
				s = s.With(e)
			}
		}
		family[s] = 0
	}
	configs := []Config{{ID: 0, Label: "[r]"}}
	n, err := New(evs, family, configs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randSet(r *rand.Rand, events int) Set {
	s := Empty
	for e := 0; e < events; e++ {
		if r.Intn(2) == 0 {
			s = s.With(e)
		}
	}
	return s
}

func TestFastPathsMatchDefinitions(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const events = 10
	for trial := 0; trial < 200; trial++ {
		n := randNES(t, r, events, 1+r.Intn(8))
		x := randSet(r, events)
		for e := 0; e < events; e++ {
			if got, want := n.Enables(x, e), enablesRef(n, x, e); got != want {
				t.Fatalf("trial %d: Enables(%v, %d) = %v, ref %v\nfamily %v", trial, x, e, got, want, n.familyList)
			}
		}
		if got, want := n.ArmedFrom(x), armedRef(n, x); got != want {
			t.Fatalf("trial %d: ArmedFrom(%v) = %v, ref %v\nfamily %v", trial, x, got, want, n.familyList)
		}
		view, cands := randSet(r, events), randSet(r, events)
		if got, want := n.Admit(view, cands), admitRef(n, view, cands); got != want {
			t.Fatalf("trial %d: Admit(%v, %v) = %v, ref %v\nfamily %v", trial, view, cands, got, want, n.familyList)
		}
	}
}

// TestFastPathsChainAndConflict pins the fast paths on the canonical
// shapes the apps exercise: chains (bandwidth cap) and conflicts.
func TestFastPathsChainAndConflict(t *testing.T) {
	n := chainNES(t, 6)
	view := Empty
	for i := 0; i < 6; i++ {
		if got := n.ArmedFrom(view); got != Singleton(i) {
			t.Fatalf("chain armed from %v = %v, want {%d}", view, got, i)
		}
		view = view.With(i)
	}
	all := view
	if got := n.Replay(all); got != all {
		t.Fatalf("chain replay of full set = %v, want %v", got, all)
	}
	// Dropping a middle link truncates replay at the gap.
	holed := all.Without(2)
	if got := n.Replay(holed); got != Empty.With(0).With(1) {
		t.Fatalf("chain replay with hole = %v, want {0,1}", got)
	}

	c := conflictNES(t, 1, 2)
	if got := c.Replay(Empty.With(0).With(1)); got != Singleton(0) {
		t.Fatalf("conflict replay = %v, want {0} (ascending admission, then con fails)", got)
	}
}
