// Package nes implements network event structures (Section 2,
// Definitions 3-5 of the paper): event structures in Winskel's sense — a
// set of events with a consistency predicate and an enabling relation —
// extended with a map g assigning a network configuration to every
// event-set.
//
// Event-sets are encoded as immutable little-endian bitsets (8 events per
// byte), generalizing the paper's strategy of encoding each event-set as a
// flat integer tag carried in a packet header field (Section 4.1): the tag
// is simply wider than one machine word when a program needs more than 64
// events (e.g. bandwidth-cap-200's 201 occurrence-renamed events).
package nes

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxEvents is the capacity of a Set — a sanity bound on tag width, far
// above any reachable-state budget (stateful exploration caps at 4096
// states, and a loop-free ETS has fewer events than edges).
const MaxEvents = 4096

// Set is a set of event IDs encoded as a little-endian bitset packed 8
// events per byte, kept canonical (no trailing zero bytes) so that ==,
// map-key identity, and set equality coincide. The zero value is the
// empty set. Sets are immutable; all operations return new sets.
type Set string

// Empty is the empty event-set.
const Empty Set = ""

// Singleton returns the set {e}.
func Singleton(e int) Set {
	b := make([]byte, e/8+1)
	b[e/8] = 1 << uint(e%8)
	return Set(b)
}

// FromMask builds a Set from a uint64 bitmask (bit i ⇒ event i): the old
// single-word representation, kept for small-universe tests and tools.
func FromMask(m uint64) Set {
	var b []byte
	for m != 0 {
		b = append(b, byte(m))
		m >>= 8
	}
	return Set(b)
}

// Has reports whether e is in the set.
func (s Set) Has(e int) bool {
	i := e / 8
	return i < len(s) && s[i]&(1<<uint(e%8)) != 0
}

// With returns s ∪ {e}.
func (s Set) With(e int) Set {
	i := e / 8
	bit := byte(1) << uint(e%8)
	if i < len(s) && s[i]&bit != 0 {
		return s
	}
	n := len(s)
	if i+1 > n {
		n = i + 1
	}
	b := make([]byte, n)
	copy(b, s)
	b[i] |= bit
	return Set(b)
}

// Without returns s \ {e}.
func (s Set) Without(e int) Set {
	i := e / 8
	bit := byte(1) << uint(e%8)
	if i >= len(s) || s[i]&bit == 0 {
		return s
	}
	b := []byte(s)
	b[i] &^= bit
	return Set(trim(b))
}

// Union returns s ∪ t. When one operand contains the other the result is
// that operand itself (pointer-equal, no copy): digest gossip on the
// engine's hop loop unions a packet's digest with switch views that have
// long since absorbed it, and rebuilding the canonical string there would
// put an allocation on every hop.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	if len(t) > len(s) {
		s, t = t, s
	}
	i := 0
	for ; i < len(t); i++ {
		if t[i]&^s[i] != 0 {
			break
		}
	}
	if i == len(t) {
		return s // t ⊆ s: no change, no copy
	}
	b := []byte(s)
	for ; i < len(t); i++ {
		b[i] |= t[i]
	}
	return Set(b)
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	changed := false
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			changed = true
			break
		}
	}
	if !changed {
		return s
	}
	b := []byte(s)
	for i := 0; i < n; i++ {
		b[i] &^= t[i]
	}
	return Set(trim(b))
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false // canonical form: s's top byte is nonzero
	}
	for i := 0; i < len(s); i++ {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Count returns |s|.
func (s Set) Count() int {
	n := 0
	for i := 0; i < len(s); i++ {
		n += bits.OnesCount8(s[i])
	}
	return n
}

// Less orders sets as the little-endian integers they encode (the order
// the uint64 representation used to give), for deterministic iteration.
func (s Set) Less(t Set) bool {
	if len(s) != len(t) {
		return len(s) < len(t) // canonical form: longer means a higher bit
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != t[i] {
			return s[i] < t[i]
		}
	}
	return false
}

// Elems returns the event IDs in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	for i := 0; i < len(s); i++ {
		for b := s[i]; b != 0; b &= b - 1 {
			out = append(out, i*8+bits.TrailingZeros8(b))
		}
	}
	return out
}

// MinusCount returns |s \ t| without allocating.
func (s Set) MinusCount(t Set) int {
	n := 0
	for i := 0; i < len(s); i++ {
		var tb byte
		if i < len(t) {
			tb = t[i]
		}
		n += bits.OnesCount8(s[i] &^ tb)
	}
	return n
}

// diffWithin reports s \ t ⊆ {e} without allocating — the inner
// predicate of the enabling relation (f.Without(e).SubsetOf(x) spelled
// so the hot detection path never materializes the intermediate set).
func (s Set) diffWithin(t Set, e int) bool {
	ei, eb := e/8, byte(1)<<uint(e%8)
	for i := 0; i < len(s); i++ {
		var tb byte
		if i < len(t) {
			tb = t[i]
		}
		d := s[i] &^ tb
		if i == ei {
			d &^= eb
		}
		if d != 0 {
			return false
		}
	}
	return true
}

// minusSingleton returns (e, true) when s \ t is exactly the singleton
// {e}, allocation-free. One pass over a family with this predicate
// yields every event the knowledge set t enables: F \ t = {e} ⇔ t ⊢ e
// for e ∉ t (see NES.ArmedFrom).
func (s Set) minusSingleton(t Set) (int, bool) {
	e, cnt := -1, 0
	for i := 0; i < len(s); i++ {
		var tb byte
		if i < len(t) {
			tb = t[i]
		}
		for d := s[i] &^ tb; d != 0; d &= d - 1 {
			if cnt++; cnt > 1 {
				return -1, false
			}
			e = i*8 + bits.TrailingZeros8(d)
		}
	}
	return e, cnt == 1
}

// trim drops trailing zero bytes, restoring canonical form.
func trim(b []byte) []byte {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return b[:n]
}

// String renders the set as {e0,e3,...}.
func (s Set) String() string {
	parts := make([]string, 0, s.Count())
	for _, e := range s.Elems() {
		parts = append(parts, fmt.Sprint(e))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
