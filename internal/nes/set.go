// Package nes implements network event structures (Section 2,
// Definitions 3-5 of the paper): event structures in Winskel's sense — a
// set of events with a consistency predicate and an enabling relation —
// extended with a map g assigning a network configuration to every
// event-set.
//
// Event-sets are encoded as uint64 bitmasks, mirroring the paper's
// implementation strategy of encoding each event-set as a flat integer tag
// carried in a packet header field (Section 4.1).
package nes

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxEvents is the capacity of a Set.
const MaxEvents = 64

// Set is a set of event IDs encoded as a bitmask.
type Set uint64

// Empty is the empty event-set.
const Empty Set = 0

// Singleton returns the set {e}.
func Singleton(e int) Set { return 1 << uint(e) }

// Has reports whether e is in the set.
func (s Set) Has(e int) bool { return s&Singleton(e) != 0 }

// With returns s ∪ {e}.
func (s Set) With(e int) Set { return s | Singleton(e) }

// Without returns s \ {e}.
func (s Set) Without(e int) Set { return s &^ Singleton(e) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Count returns |s|.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Elems returns the event IDs in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	for e := 0; s != 0; e++ {
		if s.Has(e) {
			out = append(out, e)
			s = s.Without(e)
		}
	}
	return out
}

// String renders the set as {e0,e3,...}.
func (s Set) String() string {
	parts := make([]string, 0, s.Count())
	for _, e := range s.Elems() {
		parts = append(parts, fmt.Sprint(e))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
