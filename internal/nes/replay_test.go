package nes

import "testing"

// TestReplay: canonical event-history replay admits exactly the largest
// valid-execution prefix of the candidate knowledge — the state-mapping
// rule of live program swaps.
func TestReplay(t *testing.T) {
	n := chainNES(t, 3) // family {} ⊂ {0} ⊂ {0,1} ⊂ {0,1,2}
	cases := []struct {
		in, want Set
	}{
		{Empty, Empty},
		{FromMask(0b001), FromMask(0b001)},
		{FromMask(0b010), Empty},           // e1 without its enabler e0
		{FromMask(0b101), FromMask(0b001)}, // e2 stranded, e0 admitted
		{FromMask(0b111), FromMask(0b111)}, // full history replays fully
		{FromMask(0b110), Empty},           // no enabler at all
	}
	for _, c := range cases {
		if got := n.Replay(c.in); got != c.want {
			t.Fatalf("Replay(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestAdmit: admission into an established view is monotone — the view
// never loses knowledge — and refuses candidates inconsistent with it.
func TestAdmit(t *testing.T) {
	n := chainNES(t, 3)
	// Out-of-order candidates settle through the fixpoint passes.
	if got := n.Admit(FromMask(0b001), FromMask(0b110)); got != FromMask(0b111) {
		t.Fatalf("chained admission: got %v", got)
	}
	if got := n.Admit(FromMask(0b011), Empty); got != FromMask(0b011) {
		t.Fatalf("empty admission changed the view: %v", got)
	}

	c := conflictNES(t, 1, 2) // family {}, {e0}, {e1}: e0 and e1 conflict
	// The view already holds e1; the conflicting e0 must be refused even
	// though it would be admissible from scratch.
	if got := c.Admit(FromMask(0b10), FromMask(0b01)); got != FromMask(0b10) {
		t.Fatalf("conflicting candidate admitted: %v", got)
	}
	// From scratch, greedy canonical order picks the lower ID.
	if got := c.Replay(FromMask(0b11)); got != FromMask(0b01) {
		t.Fatalf("conflict replay: got %v", got)
	}
}

// TestAdmitDuplicate: re-admitting knowledge the view already holds is a
// no-op. Duplicate event notifications are routine under gossip (the
// same digest arrives on every packet of a flow) and under event storms,
// so admission must be idempotent — a view can only ever grow by genuine
// news.
func TestAdmitDuplicate(t *testing.T) {
	n := chainNES(t, 3)
	for _, mask := range []uint64{0b000, 0b001, 0b011, 0b111} {
		v := FromMask(mask)
		if got := n.Admit(v, v); got != v {
			t.Fatalf("Admit(%v, %v) = %v, want the view unchanged", v, v, got)
		}
	}
	// Duplicating a strict subset of the view is equally inert.
	if got := n.Admit(FromMask(0b111), FromMask(0b001)); got != FromMask(0b111) {
		t.Fatalf("subset re-admission changed the view: %v", got)
	}
	// Replay is a fixpoint of itself: replaying what a replay admitted
	// admits exactly the same set, even when the original candidates were
	// partly stranded.
	for _, mask := range []uint64{0b000, 0b101, 0b110, 0b111} {
		once := n.Replay(FromMask(mask))
		if twice := n.Replay(once); twice != once {
			t.Fatalf("Replay not idempotent on %v: %v then %v", FromMask(mask), once, twice)
		}
	}
	// Idempotence holds around conflicts too: a settled view absorbs its
	// own duplicate without re-litigating the refused branch.
	c := conflictNES(t, 1, 2)
	v := c.Replay(FromMask(0b11))
	if got := c.Admit(v, v); got != v {
		t.Fatalf("conflict view not stable under duplication: %v vs %v", got, v)
	}
}
