package nes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eventnet/internal/netkat"
)

func TestSetOps(t *testing.T) {
	s := Empty.With(0).With(3)
	if !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Error("Has broken")
	}
	if s.Count() != 2 {
		t.Error("Count broken")
	}
	if got := s.Elems(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Elems: %v", got)
	}
	if !Empty.SubsetOf(s) || !s.SubsetOf(s) || s.SubsetOf(Singleton(0)) {
		t.Error("SubsetOf broken")
	}
	if s.Without(3) != Singleton(0) {
		t.Error("Without broken")
	}
	if s.String() != "{0,3}" {
		t.Errorf("String: %q", s.String())
	}
}

func TestSetLaws(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := FromMask(a), FromMask(b)
		return x.Union(y) == y.Union(x) &&
			x.SubsetOf(x.Union(y)) &&
			x.Union(x) == x &&
			(x.SubsetOf(y) == (x.Union(y) == y)) &&
			x.Minus(y) == FromMask(a&^b) &&
			x.Union(y).Minus(y) == FromMask(a&^b) &&
			x.Less(y) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// guard builds a trivial event guard.
func guard(field string, v int) *netkat.Conj {
	c := netkat.NewConj()
	c.AddEq(field, v)
	return c
}

func mkEvent(id, sw, pt int) Event {
	return Event{ID: id, Guard: guard("dst", 100+id), Loc: netkat.Location{Switch: sw, Port: pt}, Occurrence: 1}
}

// chainNES builds the family {}, {e0}, {e0,e1}, ... (authentication
// shape), with event i at switch i+1.
func chainNES(t *testing.T, n int) *NES {
	t.Helper()
	var events []Event
	family := map[Set]int{Empty: 0}
	configs := []Config{{ID: 0, Label: "[0]"}}
	s := Empty
	for i := 0; i < n; i++ {
		events = append(events, mkEvent(i, i+1, 1))
		s = s.With(i)
		family[s] = i + 1
		configs = append(configs, Config{ID: i + 1, Label: "[chain]"})
	}
	nes, err := New(events, family, configs)
	if err != nil {
		t.Fatal(err)
	}
	return nes
}

// diamondNES: two independent events (Figure 3a): family {}, {e0}, {e1},
// {e0,e1}.
func diamondNES(t *testing.T, sw0, sw1 int) *NES {
	t.Helper()
	events := []Event{mkEvent(0, sw0, 1), mkEvent(1, sw1, 1)}
	family := map[Set]int{Empty: 0, Singleton(0): 1, Singleton(1): 2, Singleton(0).With(1): 3}
	configs := []Config{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	n, err := New(events, family, configs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// conflictNES: two mutually exclusive events (Figure 3b): family {},
// {e0}, {e1} — con({e0,e1}) fails.
func conflictNES(t *testing.T, sw0, sw1 int) *NES {
	t.Helper()
	events := []Event{mkEvent(0, sw0, 1), mkEvent(1, sw1, 1)}
	family := map[Set]int{Empty: 0, Singleton(0): 1, Singleton(1): 2}
	configs := []Config{{ID: 0}, {ID: 1}, {ID: 2}}
	n, err := New(events, family, configs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConDownwardClosed(t *testing.T) {
	n := chainNES(t, 3)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := FromMask(r.Uint64() & 7)
		if !n.Con(x) {
			continue
		}
		for _, e := range x.Elems() {
			if !n.Con(x.Without(e)) {
				t.Fatalf("con not downward closed at %v", x)
			}
		}
	}
}

func TestEnablesMonotone(t *testing.T) {
	// Definition 3: (X ⊢ e) ∧ X ⊆ Y ∧ con(Y) ⟹ Y ⊢ e.
	n := chainNES(t, 3)
	for xm := uint64(0); xm < 8; xm++ {
		x := FromMask(xm)
		for e := 0; e < 3; e++ {
			if !n.Enables(x, e) {
				continue
			}
			for ym := uint64(0); ym < 8; ym++ {
				y := FromMask(ym)
				if x.SubsetOf(y) && n.Con(y) && !n.Enables(y, e) {
					t.Fatalf("enabling not monotone: %v ⊢ %d but %v ⊬ %d", x, e, y, e)
				}
			}
		}
	}
}

func TestChainEnabling(t *testing.T) {
	n := chainNES(t, 3)
	if !n.Enables(Empty, 0) {
		t.Error("e0 not initially enabled")
	}
	if n.Enables(Empty, 1) {
		t.Error("e1 enabled before e0")
	}
	if !n.Enables(Singleton(0), 1) {
		t.Error("e1 not enabled after e0")
	}
}

func TestEventSetsMatchFamily(t *testing.T) {
	for _, n := range []*NES{chainNES(t, 4), diamondNES(t, 1, 2), conflictNES(t, 1, 1)} {
		fam := n.Family()
		sets := n.EventSets()
		if len(fam) != len(sets) {
			t.Fatalf("family %v vs event-sets %v", fam, sets)
		}
		for i := range fam {
			if fam[i] != sets[i] {
				t.Fatalf("family %v vs event-sets %v", fam, sets)
			}
		}
	}
}

func TestAllowedSequences(t *testing.T) {
	n := diamondNES(t, 1, 2)
	seqs, err := n.AllowedSequences()
	if err != nil {
		t.Fatal(err)
	}
	// e0; e1; e0,e1; e1,e0 — four nonempty sequences.
	if len(seqs) != 4 {
		t.Fatalf("sequences: %v", seqs)
	}

	c := conflictNES(t, 1, 1)
	seqs, err = c.AllowedSequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("conflict sequences: %v", seqs)
	}
}

func TestMinimallyInconsistent(t *testing.T) {
	c := conflictNES(t, 1, 1)
	mis, err := c.MinimallyInconsistent()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 1 || mis[0] != Singleton(0).With(1) {
		t.Fatalf("minimally inconsistent: %v", mis)
	}
	d := diamondNES(t, 1, 2)
	mis, err = d.MinimallyInconsistent()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("diamond has inconsistent sets: %v", mis)
	}
}

// TestLocallyDetermined separates program P2 (conflict at one switch,
// implementable) from program P1 (conflict across switches, not
// implementable) — the Section 2 examples.
func TestLocallyDetermined(t *testing.T) {
	p2 := conflictNES(t, 2, 2) // both events at s2: OK
	ld, err := p2.LocallyDetermined()
	if err != nil {
		t.Fatal(err)
	}
	if !ld {
		t.Error("same-switch conflict rejected")
	}
	p1 := conflictNES(t, 2, 4) // events at s2 and s4: action at a distance
	ld, err = p1.LocallyDetermined()
	if err != nil {
		t.Fatal(err)
	}
	if ld {
		t.Error("cross-switch conflict accepted")
	}
}

func TestNewlyEnabled(t *testing.T) {
	n := chainNES(t, 2)
	lp0 := netkat.LocatedPacket{Pkt: netkat.Packet{"dst": 100}, Loc: netkat.Location{Switch: 1, Port: 1}}
	lp1 := netkat.LocatedPacket{Pkt: netkat.Packet{"dst": 101}, Loc: netkat.Location{Switch: 2, Port: 1}}
	if got := n.NewlyEnabled(Empty, lp0); got != Singleton(0) {
		t.Errorf("e0 not detected: %v", got)
	}
	// e1's packet at its location does not fire before e0 is known.
	if got := n.NewlyEnabled(Empty, lp1); got != Empty {
		t.Errorf("e1 fired prematurely: %v", got)
	}
	if got := n.NewlyEnabled(Singleton(0), lp1); got != Singleton(1) {
		t.Errorf("e1 not detected after e0: %v", got)
	}
	// Wrong guard, right location: nothing fires.
	bad := netkat.LocatedPacket{Pkt: netkat.Packet{"dst": 999}, Loc: netkat.Location{Switch: 1, Port: 1}}
	if got := n.NewlyEnabled(Empty, bad); got != Empty {
		t.Errorf("guard ignored: %v", got)
	}
}

func TestMatchesD(t *testing.T) {
	e := mkEvent(0, 4, 1)
	in := netkat.DPacket{Pkt: netkat.Packet{"dst": 100}, Loc: netkat.Location{Switch: 4, Port: 1}}
	out := in
	out.Out = true
	if !e.MatchesD(in) {
		t.Error("ingress match failed")
	}
	if e.MatchesD(out) {
		t.Error("egress matched (events are arrivals)")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, map[Set]int{}, nil); err == nil {
		t.Error("missing empty set accepted")
	}
	if _, err := New(nil, map[Set]int{Empty: 5}, []Config{{}}); err == nil {
		t.Error("dangling config index accepted")
	}
	events := make([]Event, MaxEvents+1)
	if _, err := New(events, map[Set]int{Empty: 0}, []Config{{}}); err == nil {
		t.Error("too many events accepted")
	}
}

// TestUnionUnchangedReturnsReceiver pins the digest-gossip fast path:
// when one operand contains the other, Union returns that operand itself
// — same backing bytes, no allocation — because the engine's hop loop
// unions every packet's digest with views that have usually already
// absorbed it, and a rebuild there would put an allocation on every hop.
func TestUnionUnchangedReturnsReceiver(t *testing.T) {
	big := FromMask(0b10110111)
	small := FromMask(0b00000101)
	if got := big.Union(small); got != big {
		t.Fatalf("Union(big, small) = %v, want big %v", got, big)
	}
	if got := small.Union(big); got != big {
		t.Fatalf("Union(small, big) = %v, want big %v", got, big)
	}
	if got := testing.AllocsPerRun(200, func() {
		_ = big.Union(small)
		_ = small.Union(big)
		_ = big.Union(big)
		_ = big.Union(Empty)
		_ = Empty.Union(big)
	}); got != 0 {
		t.Fatalf("no-change Union allocates %.3f times per run; want 0", got)
	}
	// A genuinely growing union must still build the right set.
	if got, want := big.Union(FromMask(0b01000000)), FromMask(0b11110111); got != want {
		t.Fatalf("growing Union = %v, want %v", got, want)
	}
}
