package nes

import (
	"fmt"
	"sort"
	"sync"

	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
)

// Event is one event of an NES: the arrival at Loc of a packet satisfying
// Guard. Occurrence distinguishes renamed copies of the same (Guard, Loc)
// pair along an execution (Section 3.1: events encountered multiple times
// are renamed), e.g. the n packets counted by the bandwidth cap.
type Event struct {
	ID         int
	Guard      *netkat.Conj
	Loc        netkat.Location
	Occurrence int // 1-based
}

// Matches reports whether the located packet matches the event:
// sw = sw' ∧ pt = pt' ∧ pkt ⊨ ϕ (Section 2).
func (e Event) Matches(lp netkat.LocatedPacket) bool {
	return lp.Loc == e.Loc && e.Guard.Eval(lp)
}

// MatchesD reports whether a directed trace point matches the event:
// events model packet arrivals, so only ingress-directed points match.
func (e Event) MatchesD(d netkat.DPacket) bool {
	return !d.Out && e.Matches(d.LP())
}

// String renders the event.
func (e Event) String() string {
	s := fmt.Sprintf("(%v, %v)", e.Guard, e.Loc)
	if e.Occurrence > 1 {
		s += fmt.Sprintf("_%d", e.Occurrence)
	}
	return s
}

// Config is one network configuration of the NES: its compiled flow
// tables and its configuration relation (used by the trace oracle).
type Config struct {
	ID     int
	Label  string // diagnostic, e.g. the state vector "[1]"
	Tables flowtable.Tables
	Rel    netkat.DConfig
}

// NES is a network event structure (Definition 5): an event structure
// (E, con, ⊢) plus the map g from event-sets to configurations. The
// consistency predicate and enabling relation are derived from the family
// of event-sets F(T) via Theorem 1.1.12 of Winskel's "Event Structures":
//
//	con(X)  ⇔  X ⊆ F for some F in the family
//	X ⊢ e   ⇔  con(X) ∧ ∃Y ⊆ X : Y ∪ {e} in the family
type NES struct {
	Events  []Event
	Configs []Config

	family     map[Set]int // event-set -> config index (the function g)
	familyList []Set       // sorted for deterministic iteration
	armed      sync.Map    // Set -> Set: ArmedFrom memo (see ArmedFrom)

	idxOnce sync.Once // lazy inverted family index (see admitIdx)
	idx     *admitIndex
}

// admitIndex is the inverted family index behind Admit: for each event,
// the members containing it. Built lazily on the first replay (program
// swaps are where large candidate sets appear) and read-only afterwards.
type admitIndex struct {
	occursIn [][]int32 // event ID -> ascending indices into familyList
}

// admitIdx returns the inverted family index, building it once.
func (n *NES) admitIdx() *admitIndex {
	n.idxOnce.Do(func() {
		ix := &admitIndex{occursIn: make([][]int32, MaxEvents)}
		for j, f := range n.familyList {
			for _, e := range f.Elems() {
				ix.occursIn[e] = append(ix.occursIn[e], int32(j))
			}
		}
		n.idx = ix
	})
	return n.idx
}

// New builds an NES from the event universe, the family of event-sets
// (each mapped to its configuration index), and the configurations.
// The family must contain the empty set, and every referenced config
// index must exist.
func New(events []Event, family map[Set]int, configs []Config) (*NES, error) {
	if len(events) > MaxEvents {
		return nil, fmt.Errorf("nes: %d events exceed the %d-event tag capacity", len(events), MaxEvents)
	}
	if _, ok := family[Empty]; !ok {
		return nil, fmt.Errorf("nes: family does not contain the empty event-set")
	}
	n := &NES{Events: events, Configs: configs, family: map[Set]int{}}
	for s, c := range family {
		if c < 0 || c >= len(configs) {
			return nil, fmt.Errorf("nes: event-set %v maps to unknown config %d", s, c)
		}
		n.family[s] = c
		n.familyList = append(n.familyList, s)
	}
	sort.Slice(n.familyList, func(i, j int) bool { return n.familyList[i].Less(n.familyList[j]) })
	return n, nil
}

// Family returns the family of event-sets in sorted order.
func (n *NES) Family() []Set { return append([]Set{}, n.familyList...) }

// Con is the consistency predicate: X is consistent iff it is contained
// in some member of the family. This is downward-closed by construction
// (Definition 3's requirement on con).
func (n *NES) Con(x Set) bool {
	for _, f := range n.familyList {
		if x.SubsetOf(f) {
			return true
		}
	}
	return false
}

// Enables is the enabling relation X ⊢ e. Unfolding the least-relation
// definition in Section 3.1, X ⊢ e holds iff con(X) and some family member
// F contains e with F \ {e} ⊆ X — spelled as the allocation-free
// F \ X ⊆ {e} so one call never materializes an intermediate set.
func (n *NES) Enables(x Set, e int) bool {
	if !n.Con(x) {
		return false
	}
	for _, f := range n.familyList {
		if f.Has(e) && f.diffWithin(x, e) {
			return true
		}
	}
	return false
}

// ConfigAt returns g(X): the configuration index for an event-set. The
// second result is false when X is not in the family (for
// finitely-complete families this cannot happen for any consistent union
// of family members, which is what the runtime maintains).
func (n *NES) ConfigAt(x Set) (int, bool) {
	c, ok := n.family[x]
	return c, ok
}

// ArmedFrom returns the events e ∉ known with known ⊢ e and
// con(known ∪ {e}) — the events "armed" to fire from one knowledge set,
// independent of any packet. Detection (NewlyEnabled, and the dataplane
// engine's flat hop loop) intersects this with the events a packet's
// arrival matches; factoring the family walks out lets them be memoized
// per knowledge set, so the per-packet cost of detection is a bitset
// probe instead of an Enables/Con enumeration per candidate event. The
// memo is append-only and safe for concurrent use; a program's reachable
// knowledge sets are bounded by its family, so it stays small.
// A per-candidate Enables enumeration here would make a cache miss
// O(|E| · |family|) set scans — seconds per fresh knowledge set at the
// 10x program scale (bandwidth-cap-2000 has 2002 events, and every
// event firing creates a fresh knowledge set). Instead one pass over
// the family collects exactly the enabled events: for e ∉ known,
// known ⊢ e ⇔ some member F has F \ known = {e} (the F \ known = ∅
// case would put e inside known). Only the consistency of each
// candidate is checked individually, and candidates are few.
func (n *NES) ArmedFrom(known Set) Set {
	if a, ok := n.armed.Load(known); ok {
		return a.(Set)
	}
	out := Empty
	if n.Con(known) {
		for _, f := range n.familyList {
			if e, ok := f.minusSingleton(known); ok && !out.Has(e) && n.Con(known.With(e)) {
				out = out.With(e)
			}
		}
	}
	a, _ := n.armed.LoadOrStore(known, out)
	return a.(Set)
}

// NewlyEnabled returns the events e ∉ known that the located packet
// matches and that are enabled and consistent from `known`: the set E' of
// the SWITCH rule in Figure 7. (Membership is decided per event against
// `known` alone, so filtering through ArmedFrom is exact.)
func (n *NES) NewlyEnabled(known Set, lp netkat.LocatedPacket) Set {
	armed := n.ArmedFrom(known)
	if armed == Empty {
		return Empty
	}
	out := Empty
	for _, ev := range n.Events {
		if armed.Has(ev.ID) && ev.Matches(lp) {
			out = out.With(ev.ID)
		}
	}
	return out
}

// Replay folds a candidate event-set into the NES by canonical
// event-history replay: starting from the empty view, events are admitted
// in ascending-ID passes whenever they are enabled and keep the view
// consistent, iterating until no further candidate can be admitted. The
// result is the largest prefix of the candidates' knowledge that forms a
// valid execution of *this* NES — the state-mapping rule live program
// swaps use to carry one program's established event knowledge into its
// successor (docs/CONTROLLER.md). Replay is deterministic: the admitted
// set depends only on the candidate set, because family membership, not
// admission order, decides consistency.
func (n *NES) Replay(candidates Set) Set {
	return n.Admit(Empty, candidates)
}

// Admit is Replay starting from an established view: candidate events are
// folded into view in ascending-ID fixpoint passes, each admitted only
// when enabled from and consistent with what is already held. The view
// grows monotonically — admission can never invalidate knowledge the view
// already has — which is what makes the live-mapping rule of a program
// swap sound while the view keeps evolving.
// Admit runs in counting form: a direct Enables/Con per candidate per
// pass is O(|C|² · |family|) set scans — seconds for the thousands of
// carried events a 10x-scale swap replays at its flip barrier. Instead
// the family is folded once into per-member deficits (|F \ view|,
// maintained incrementally as admissions land) so both predicates
// become walks of the members containing the candidate:
//
//	view ⊢ e           ⇔  some F ∋ e has |F \ view| = 1 (that one is e)
//	con(view ∪ {e})    ⇔  some F ∋ e has view ⊆ F
//
// The traversal order (ascending-ID passes to a fixpoint) is exactly
// the definition above, so the admitted set is unchanged.
func (n *NES) Admit(view, candidates Set) Set {
	els := candidates.Elems()
	if len(els) == 0 {
		return view
	}
	ix := n.admitIdx()
	deficit := make([]int32, len(n.familyList)) // |F_j \ view| at entry
	viewIn := make([]bool, len(n.familyList))   // view ⊆ F_j at entry
	conView := false
	for j, f := range n.familyList {
		deficit[j] = int32(f.MinusCount(view))
		viewIn[j] = view.SubsetOf(f)
		conView = conView || viewIn[j]
	}
	if !conView {
		return view // inconsistent views enable nothing
	}
	inview := make([]int32, len(n.familyList)) // admitted events inside F_j
	var admitted int32
	for {
		changed := false
		for _, e := range els {
			if view.Has(e) || e >= len(ix.occursIn) {
				continue
			}
			occ := ix.occursIn[e]
			enabled := false
			for _, j := range occ {
				if deficit[j]-inview[j] == 1 {
					enabled = true
					break
				}
			}
			if !enabled {
				continue
			}
			con := false
			for _, j := range occ {
				if viewIn[j] && inview[j] == admitted {
					con = true
					break
				}
			}
			if !con {
				continue
			}
			view = view.With(e)
			admitted++
			for _, j := range occ {
				inview[j]++
			}
			changed = true
		}
		if !changed {
			return view
		}
	}
}

// EventSets computes the event-sets of the underlying event structure per
// Definition 4 (consistent and reachable via the enabling relation), by
// BFS from the empty set. For families produced by the ETS conversion this
// equals the family itself; the equality is checked by tests.
func (n *NES) EventSets() []Set {
	seen := map[Set]bool{Empty: true}
	queue := []Set{Empty}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, ev := range n.Events {
			if s.Has(ev.ID) {
				continue
			}
			t := s.With(ev.ID)
			if seen[t] {
				continue
			}
			if n.Enables(s, ev.ID) && n.Con(t) {
				seen[t] = true
				queue = append(queue, t)
			}
		}
	}
	out := make([]Set, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// maxSequences bounds allowed-sequence enumeration.
const maxSequences = 200000

// AllowedSequences enumerates every nonempty event sequence allowed by the
// NES (Section 2: each prefix consistent and enabled). The result includes
// non-maximal sequences, as Definition 6 quantifies over all of them.
func (n *NES) AllowedSequences() ([][]int, error) {
	var out [][]int
	var cur []int
	var rec func(s Set) error
	rec = func(s Set) error {
		if len(out) > maxSequences {
			return fmt.Errorf("nes: more than %d allowed sequences", maxSequences)
		}
		for _, ev := range n.Events {
			if s.Has(ev.ID) {
				continue
			}
			t := s.With(ev.ID)
			if !n.Enables(s, ev.ID) || !n.Con(t) {
				continue
			}
			cur = append(cur, ev.ID)
			out = append(out, append([]int{}, cur...))
			if err := rec(t); err != nil {
				return err
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if err := rec(Empty); err != nil {
		return nil, err
	}
	return out, nil
}

// minIncWorkBound caps the hitting-set recursion.
const minIncWorkBound = 1 << 22

// MinimallyInconsistent returns every minimally-inconsistent set: an
// inconsistent set all of whose proper subsets are consistent (Section 2,
// "Locality Restrictions").
//
// A set is consistent iff it is contained in some family member, so X is
// inconsistent iff it intersects the complement E \ F of every family
// member F — i.e. X is a hitting set of the complement hypergraph. The
// minimally-inconsistent sets are exactly its minimal hitting sets, which
// are enumerated by branching on the elements of the first un-hit edge.
// This replaces the former exhaustive 2^|E| scan (capped at 20 events) and
// scales to the occurrence-renamed universes of the large sweeps
// (bandwidth-cap-200 has 201 events), whose chain-shaped families resolve
// immediately: the full set is a member, its complement is empty, and no
// hitting set exists.
func (n *NES) MinimallyInconsistent() ([]Set, error) {
	all := Empty
	for _, ev := range n.Events {
		all = all.With(ev.ID)
	}
	// Complement edges, keeping only the minimal ones (a superset edge is
	// hit whenever its subset is).
	var edges []Set
	for _, f := range n.familyList {
		c := all.Minus(f)
		if c == Empty {
			return nil, nil // the full universe is consistent
		}
		edges = append(edges, c)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Count() < edges[j].Count() })
	var minimalEdges []Set
	for _, c := range edges {
		redundant := false
		for _, m := range minimalEdges {
			if m.SubsetOf(c) {
				redundant = true
				break
			}
		}
		if !redundant {
			minimalEdges = append(minimalEdges, c)
		}
	}
	edges = minimalEdges

	hitsAll := func(x Set) bool {
		for _, c := range edges {
			if x.Minus(c) == x { // x ∩ c == ∅
				return false
			}
		}
		return true
	}

	work := 0
	seen := map[Set]bool{}
	var found []Set
	var rec func(cur Set, from int) error
	rec = func(cur Set, from int) error {
		if work++; work > minIncWorkBound {
			return fmt.Errorf("nes: minimal-inconsistency enumeration exceeded %d steps", minIncWorkBound)
		}
		next := -1
		for i := from; i < len(edges); i++ {
			if cur.Minus(edges[i]) == cur {
				next = i
				break
			}
		}
		if next == -1 {
			if !seen[cur] {
				seen[cur] = true
				found = append(found, cur)
			}
			return nil
		}
		for _, e := range edges[next].Elems() {
			if err := rec(cur.With(e), next+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(Empty, 0); err != nil {
		return nil, err
	}
	// The recursion reaches every minimal hitting set but may also emit
	// non-minimal ones (a later branch element can subsume an earlier
	// choice); keep exactly the sets all of whose proper subsets miss an
	// edge.
	var out []Set
	for _, x := range found {
		minimal := true
		for _, e := range x.Elems() {
			if hitsAll(x.Without(e)) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// LocallyDetermined reports whether every minimally-inconsistent set has
// all of its events at the same switch — the condition that makes the NES
// efficiently implementable without synchronization (Section 2, and the
// premise of Lemma 3 / Theorem 1).
func (n *NES) LocallyDetermined() (bool, error) {
	mis, err := n.MinimallyInconsistent()
	if err != nil {
		return false, err
	}
	for _, s := range mis {
		elems := s.Elems()
		if len(elems) <= 1 {
			continue
		}
		sw := n.Events[elems[0]].Loc.Switch
		for _, e := range elems[1:] {
			if n.Events[e].Loc.Switch != sw {
				return false, nil
			}
		}
	}
	return true, nil
}

// String summarizes the NES.
func (n *NES) String() string {
	s := fmt.Sprintf("NES: %d events, %d event-sets, %d configs\n", len(n.Events), len(n.familyList), len(n.Configs))
	for _, ev := range n.Events {
		s += fmt.Sprintf("  e%d = %v\n", ev.ID, ev)
	}
	for _, f := range n.familyList {
		s += fmt.Sprintf("  g(%v) = C%d (%s)\n", f, n.family[f], n.Configs[n.family[f]].Label)
	}
	return s
}
