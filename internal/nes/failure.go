package nes

import "eventnet/internal/netkat"

// EventKind classifies an event by what its guard observes.
type EventKind int

const (
	// KindPacket is an ordinary data-driven event.
	KindPacket EventKind = iota
	// KindLinkFail is the arrival of a link-failure notification: the
	// guard requires the reserved netkat.FieldLinkDown field.
	KindLinkFail
	// KindLinkRecover is the arrival of a link-recovery notification.
	KindLinkRecover
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case KindLinkFail:
		return "link-fail"
	case KindLinkRecover:
		return "link-recover"
	}
	return "packet"
}

// Kind classifies the event by inspecting its guard for the reserved
// failure-notification fields. A guard requiring both linkdown and linkup
// cannot arise from a well-formed notification; linkdown wins.
func (e Event) Kind() EventKind {
	if _, ok := e.Guard.Eq(netkat.FieldLinkDown); ok {
		return KindLinkFail
	}
	if _, ok := e.Guard.Eq(netkat.FieldLinkUp); ok {
		return KindLinkRecover
	}
	return KindPacket
}

// FailedLink returns the directed link a failure or recovery event is
// about, decoded from the notification field its guard requires. The
// third result is false for ordinary packet events.
func (e Event) FailedLink() (src, dst netkat.Location, ok bool) {
	field := ""
	switch e.Kind() {
	case KindLinkFail:
		field = netkat.FieldLinkDown
	case KindLinkRecover:
		field = netkat.FieldLinkUp
	default:
		return netkat.Location{}, netkat.Location{}, false
	}
	id, _ := e.Guard.Eq(field)
	src, dst = netkat.LinkOfID(id)
	return src, dst, true
}

// FailureEvents returns the IDs of the NES's link-failure and -recovery
// events, in ascending order.
func (n *NES) FailureEvents() []int {
	var out []int
	for _, ev := range n.Events {
		if ev.Kind() != KindPacket {
			out = append(out, ev.ID)
		}
	}
	return out
}
