package runtime

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/trace"
)

// These tests demonstrate the impossibility results of Section 2
// (Lemmas 1 and 2): they construct the adversarial NESs from the proof
// sketches and exhibit the dilemma concretely — any bounded-time decision
// at the remote switch can be made wrong by some schedule, which is why
// the locally-determined restriction and the happens-before weakening are
// necessary rather than stylistic.

// lemma1NES builds the Lemma 1 structure: events e1 (at switch A=1) and
// e2 (at switch B=2) each individually enabled, con({e1,e2}) false — a
// non-locally-determined NES.
func lemma1NES(t *testing.T) *nes.NES {
	t.Helper()
	g1 := netkat.NewConj()
	g1.AddEq("a", 1)
	g2 := netkat.NewConj()
	g2.AddEq("a", 2)
	events := []nes.Event{
		{ID: 0, Guard: g1, Loc: netkat.Location{Switch: 1, Port: 1}, Occurrence: 1},
		{ID: 1, Guard: g2, Loc: netkat.Location{Switch: 2, Port: 1}, Occurrence: 1},
	}
	family := map[nes.Set]int{
		nes.Empty:        0,
		nes.Singleton(0): 1,
		nes.Singleton(1): 2,
	}
	configs := []nes.Config{{ID: 0, Label: "init"}, {ID: 1, Label: "e1-won"}, {ID: 2, Label: "e2-won"}}
	n, err := nes.New(events, family, configs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestLemma1NonLocalNES: the NES is correctly flagged as not locally
// determined, and the B-side dilemma is real: when a packet matching e2
// arrives at B, the local decision differs depending on remote state that
// B cannot have heard about — two executions identical at B diverge.
func TestLemma1NonLocalNES(t *testing.T) {
	n := lemma1NES(t)
	ld, err := n.LocallyDetermined()
	if err != nil {
		t.Fatal(err)
	}
	if ld {
		t.Fatal("cross-switch conflict classified as locally determined")
	}
	mis, err := n.MinimallyInconsistent()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 1 || mis[0] != nes.Singleton(0).With(1) {
		t.Fatalf("minimally-inconsistent sets: %v", mis)
	}

	// Case #2 of the proof sketch: e1 has not occurred; B must fire e2.
	lpB := netkat.LocatedPacket{Pkt: netkat.Packet{"a": 2}, Loc: netkat.Location{Switch: 2, Port: 1}}
	if got := n.NewlyEnabled(nes.Empty, lpB); got != nes.Singleton(1) {
		t.Fatalf("case 2: B should fire e2, got %v", got)
	}
	// Case #1: e1 occurred at A — with that knowledge B must NOT fire.
	if got := n.NewlyEnabled(nes.Singleton(0), lpB); got != nes.Empty {
		t.Fatalf("case 1: B must not fire e2 after e1, got %v", got)
	}
	// The two cases are indistinguishable at B without waiting for
	// knowledge of A's state: B's local view is Empty in both. Whatever
	// bounded-time rule B uses, one of the two schedules convicts it.
}

// TestLemma2StrongUpdate: a strong update (immediately after e, ALL
// packets processed in C2) is violated by the Figure 7 implementation on
// the firewall-like two-switch NES — the packet entering at the remote
// switch right after the event is still processed by C1, which
// event-driven consistency permits but strong update forbids. This shows
// strong updates require switch B to either buffer or risk wrongness.
func TestLemma2StrongUpdate(t *testing.T) {
	// Reuse the firewall app through the public pipeline: event at s4,
	// configurations differ at s4 for incoming traffic — and s1 for
	// nothing; take B = s1's view: inject at H1 right after the event.
	a := apps.Firewall()
	n := buildNES(t, a)
	m := New(n, a.Topo, 3, false)

	// Fire the event: H1 -> H4 arrives at s4.
	if err := m.Inject("H1", pkt(apps.H(4))); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if m.SwitchView(4) != nes.Singleton(0) {
		t.Fatal("event did not fire")
	}

	// Immediately after e occurred, s1 has NOT heard (nothing has flowed
	// back through it yet): its view is still empty, so a packet entering
	// at H1 right now would be stamped with C1's predecessor — violating
	// "immediately after e, the network processes all packets in C2".
	if m.SwitchView(1) != nes.Empty {
		t.Fatalf("s1 heard about the event with no traffic back through it: %v", m.SwitchView(1))
	}
	if got := m.gAt(m.SwitchView(1)); got != 0 {
		t.Fatalf("s1 would stamp config %d; strong update would demand 1", got)
	}

	// Yet the run is perfectly fine under event-driven consistency, and
	// once traffic does flow back (H4 -> H1 crosses s1 carrying the
	// digest), s1 catches up — the happens-before weakening in action.
	if err := m.Inject("H4", pkt(apps.H(1))); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if len(m.DeliveredTo("H1")) != 1 {
		t.Fatal("post-event incoming packet dropped at the event switch")
	}
	if m.SwitchView(1) != nes.Singleton(0) {
		t.Fatalf("s1 did not hear via the digest: %v", m.SwitchView(1))
	}
	nt := m.NetTrace()
	if err := trace.CheckNES(nt, n, a.Topo.HostLocs()); err != nil {
		t.Fatalf("event-driven consistency rejected the run: %v", err)
	}
}
