// Package runtime executes network event structures with the operational
// semantics of Figure 7 of the paper: switches with per-port input/output
// queues and a local event-set, packets carrying a configuration tag and
// an event digest, and a controller with a receive queue. The rules
// IN, OUT, SWITCH, LINK, CTRLRECV and CTRLSEND are implemented directly;
// a seeded scheduler picks among enabled rule instances, so property tests
// can explore many interleavings (the executions quantified over by
// Theorem 1).
//
// Every execution records the corresponding network trace (Section 4.3:
// a single packet is processed at each step, so the network trace can be
// read off the execution), which the oracle in internal/trace judges.
package runtime

import (
	"fmt"
	"math/rand"
	"sort"

	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
	"eventnet/internal/trace"
)

// Packet is an in-flight packet: header fields plus the metadata of
// Section 4.1 — the configuration tag (version) and the event digest.
type Packet struct {
	Fields netkat.Packet
	Config int     // pkt.C: index of the configuration that must process it
	Digest nes.Set // pkt.digest: events the packet has heard about
	tidx   int     // trace index of the packet's latest recorded location
}

// SwitchState is one switch: ID, input/output queue maps, and the local
// view E of the global event-set.
type SwitchState struct {
	ID     int
	In     map[int][]Packet
	Out    map[int][]Packet
	Events nes.Set
}

// Delivery is a packet received by a host.
type Delivery struct {
	Host   string
	Fields netkat.Packet
}

// Machine is the (Q, R, S) state of Figure 7 plus trace bookkeeping.
type Machine struct {
	NES  *nes.NES
	Topo *topo.Topology

	Q, R     nes.Set
	Switches map[int]*SwitchState

	// CtrlAssist enables the CTRLRECV/CTRLSEND rules (the optional
	// controller broadcast optimization of Section 4.1).
	CtrlAssist bool

	Deliveries []Delivery

	nt      trace.NetTrace
	parents []int
	rng     *rand.Rand
	plan    *dataplane.Plan    // compiled per-(config, switch) matchers, shared per NES
	obuf    []flowtable.Output // switchStep scratch; a Machine is single-goroutine
}

// New builds a machine for the NES over its topology. Forwarding runs
// through the NES's compiled indexed matchers (dataplane.PlanFor), which
// are built once per NES and shared by every machine over it.
func New(n *nes.NES, t *topo.Topology, seed int64, ctrlAssist bool) *Machine {
	m := &Machine{
		NES:        n,
		Topo:       t,
		Switches:   map[int]*SwitchState{},
		CtrlAssist: ctrlAssist,
		rng:        rand.New(rand.NewSource(seed)),
		plan:       dataplane.PlanFor(n),
	}
	for _, sw := range t.Switches {
		m.Switches[sw] = &SwitchState{ID: sw, In: map[int][]Packet{}, Out: map[int][]Packet{}}
	}
	return m
}

// record appends a directed trace point with the given parent (-1 for a
// root) and returns its index.
func (m *Machine) record(fields netkat.Packet, loc netkat.Location, out bool, parent int) int {
	idx := m.nt.Append(netkat.DPacket{Pkt: fields.Clone(), Loc: loc, Out: out})
	m.parents = append(m.parents, parent)
	return idx
}

// gAt returns the configuration index g(E) for a switch's event view. For
// views produced purely by digest gossip E is always in the family; a
// partial controller push can produce a view strictly between family
// members, in which case the unique largest family member contained in E
// is used (it exists because all of E's family subsets share the upper
// bound "all events so far", so finite-completeness makes them directed).
func (m *Machine) gAt(e nes.Set) int {
	if c, ok := m.NES.ConfigAt(e); ok {
		return c
	}
	best := nes.Empty
	for _, f := range m.NES.Family() {
		if f.SubsetOf(e) && best.SubsetOf(f) {
			best = f
		}
	}
	c, _ := m.NES.ConfigAt(best)
	return c
}

// Inject performs the IN rule: a packet enters from the named host, is
// stamped with the tag of the edge switch's current configuration, and is
// queued at the attachment port.
func (m *Machine) Inject(host string, fields netkat.Packet) error {
	h, ok := m.Topo.HostByName(host)
	if !ok {
		return fmt.Errorf("runtime: unknown host %q", host)
	}
	sw := m.Switches[h.Attach.Switch]
	root := m.record(fields, h.Loc(), true, -1)
	pkt := Packet{
		Fields: fields.Clone(),
		Config: m.gAt(sw.Events),
		Digest: nes.Empty,
		tidx:   root,
	}
	sw.In[h.Attach.Port] = append(sw.In[h.Attach.Port], pkt)
	return nil
}

// action is one enabled rule instance.
type action struct {
	kind string // "switch", "link", "out", "ctrlrecv", "ctrlsend"
	sw   int
	port int
	ev   int
}

// enabled lists every enabled rule instance, deterministically ordered.
func (m *Machine) enabled() []action {
	var out []action
	sws := make([]int, 0, len(m.Switches))
	for sw := range m.Switches {
		sws = append(sws, sw)
	}
	sort.Ints(sws)
	for _, swid := range sws {
		sw := m.Switches[swid]
		for _, p := range sortedPorts(sw.In) {
			if len(sw.In[p]) > 0 {
				out = append(out, action{kind: "switch", sw: swid, port: p})
			}
		}
		for _, p := range sortedPorts(sw.Out) {
			if len(sw.Out[p]) == 0 {
				continue
			}
			src := netkat.Location{Switch: swid, Port: p}
			if lk, ok := m.Topo.LinkFrom(src); ok {
				if m.Topo.IsHostNode(lk.Dst.Switch) {
					out = append(out, action{kind: "out", sw: swid, port: p})
				} else {
					out = append(out, action{kind: "link", sw: swid, port: p})
				}
			}
		}
	}
	if m.CtrlAssist {
		if m.Q != nes.Empty {
			out = append(out, action{kind: "ctrlrecv"})
		}
		if m.R != nes.Empty {
			for _, swid := range sws {
				if !m.R.SubsetOf(m.Switches[swid].Events) {
					out = append(out, action{kind: "ctrlsend", sw: swid})
				}
			}
		}
	}
	return out
}

func sortedPorts(qm map[int][]Packet) []int {
	out := make([]int, 0, len(qm))
	for p := range qm {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Step performs one randomly chosen enabled rule instance. It reports
// false when the machine is quiescent.
func (m *Machine) Step() bool {
	acts := m.enabled()
	if len(acts) == 0 {
		return false
	}
	a := acts[m.rng.Intn(len(acts))]
	m.perform(a)
	return true
}

func (m *Machine) perform(a action) {
	switch a.kind {
	case "switch":
		m.switchStep(a.sw, a.port)
	case "link":
		m.linkStep(a.sw, a.port)
	case "out":
		m.outStep(a.sw, a.port)
	case "ctrlrecv":
		// Move one event from the controller queue into the controller.
		es := m.Q.Elems()
		e := es[m.rng.Intn(len(es))]
		m.Q = m.Q.Without(e)
		m.R = m.R.With(e)
	case "ctrlsend":
		// Push the controller's view to one switch (the periodic
		// broadcast of Section 4.1).
		m.Switches[a.sw].Events = m.Switches[a.sw].Events.Union(m.R)
	}
}

// switchStep is the SWITCH rule: learn from the packet's digest, detect
// newly enabled events the packet matches, forward using the packet's
// tagged configuration, and stamp the outputs' digests.
func (m *Machine) switchStep(swid, port int) {
	sw := m.Switches[swid]
	pkt := sw.In[port][0]
	sw.In[port] = sw.In[port][1:]

	loc := netkat.Location{Switch: swid, Port: port}
	ingress := m.record(pkt.Fields, loc, false, pkt.tidx)

	known := sw.Events.Union(pkt.Digest)
	lp := netkat.LocatedPacket{Pkt: pkt.Fields, Loc: loc}
	newly := m.NES.NewlyEnabled(known, lp)

	// Forward with the packet's tagged configuration, through its
	// compiled matcher.
	m.obuf = m.obuf[:0]
	if mt := m.plan.Matcher(pkt.Config, swid); mt != nil {
		m.obuf = mt.Process(m.obuf, pkt.Fields, port, 0)
	}
	outs := m.obuf

	// State and digest updates (Figure 7, SWITCH).
	oldE := sw.Events
	sw.Events = sw.Events.Union(newly).Union(pkt.Digest)
	m.Q = m.Q.Union(newly)
	outDigest := pkt.Digest.Union(oldE).Union(newly)

	for _, o := range outs {
		egress := m.record(o.Pkt, netkat.Location{Switch: swid, Port: o.Port}, true, ingress)
		sw.Out[o.Port] = append(sw.Out[o.Port], Packet{
			Fields: o.Pkt,
			Config: pkt.Config,
			Digest: outDigest,
			tidx:   egress,
		})
	}
}

// linkStep is the LINK rule: move the head packet across the physical
// link into the neighbor's input queue.
func (m *Machine) linkStep(swid, port int) {
	sw := m.Switches[swid]
	pkt := sw.Out[port][0]
	sw.Out[port] = sw.Out[port][1:]
	lk, _ := m.Topo.LinkFrom(netkat.Location{Switch: swid, Port: port})
	dst := m.Switches[lk.Dst.Switch]
	dst.In[lk.Dst.Port] = append(dst.In[lk.Dst.Port], pkt)
}

// outStep is the OUT rule: deliver the head packet to the attached host.
func (m *Machine) outStep(swid, port int) {
	sw := m.Switches[swid]
	pkt := sw.Out[port][0]
	sw.Out[port] = sw.Out[port][1:]
	lk, _ := m.Topo.LinkFrom(netkat.Location{Switch: swid, Port: port})
	h, _ := m.Topo.HostByID(lk.Dst.Switch)
	m.record(pkt.Fields, h.Loc(), false, pkt.tidx)
	m.Deliveries = append(m.Deliveries, Delivery{Host: h.Name, Fields: pkt.Fields.Clone()})
}

// maxSteps bounds RunToQuiescence.
const maxSteps = 1000000

// RunToQuiescence steps until no rule is enabled.
func (m *Machine) RunToQuiescence() error {
	for i := 0; i < maxSteps; i++ {
		if !m.Step() {
			return nil
		}
	}
	return fmt.Errorf("runtime: machine did not quiesce within %d steps", maxSteps)
}

// NetTrace reconstructs the recorded network trace: the located-packet
// sequence plus the family of packet trees (one root-to-leaf index path
// per tree branch).
func (m *Machine) NetTrace() *trace.NetTrace {
	children := map[int][]int{}
	hasChild := make([]bool, len(m.nt.Packets))
	for i, p := range m.parents {
		if p >= 0 {
			children[p] = append(children[p], i)
			hasChild[p] = true
		}
	}
	nt := &trace.NetTrace{Packets: m.nt.Packets}
	var path []int
	var walk func(i int)
	walk = func(i int) {
		path = append(path, i)
		if !hasChild[i] {
			nt.Trees = append(nt.Trees, append([]int{}, path...))
		} else {
			for _, c := range children[i] {
				walk(c)
			}
		}
		path = path[:len(path)-1]
	}
	for i, p := range m.parents {
		if p == -1 {
			walk(i)
		}
	}
	return nt
}

// DeliveredTo returns the packets delivered to the named host.
func (m *Machine) DeliveredTo(host string) []netkat.Packet {
	var out []netkat.Packet
	for _, d := range m.Deliveries {
		if d.Host == host {
			out = append(out, d.Fields)
		}
	}
	return out
}

// SwitchView returns switch sw's current event view (for convergence
// observations).
func (m *Machine) SwitchView(sw int) nes.Set { return m.Switches[sw].Events }
