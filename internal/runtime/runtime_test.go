package runtime

import (
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/trace"
)

func buildNES(t *testing.T, a apps.App) *nes.NES {
	t.Helper()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("Build(%s): %v", a.Name, err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatalf("ToNES(%s): %v", a.Name, err)
	}
	return n
}

func pkt(dst int) netkat.Packet { return netkat.Packet{apps.FieldDst: dst} }

func checkTrace(t *testing.T, m *Machine, n *nes.NES, a apps.App) {
	t.Helper()
	nt := m.NetTrace()
	hosts := a.Topo.HostLocs()
	if err := nt.Validate(hosts); err != nil {
		t.Fatalf("%s: invalid network trace: %v", a.Name, err)
	}
	if err := trace.CheckNES(nt, n, hosts); err != nil {
		t.Fatalf("%s: trace violates Definition 6: %v", a.Name, err)
	}
}

// TestFirewallBehavior drives the canonical firewall scenario of
// Figure 11(a): H4->H1 blocked, H1->H4 allowed (firing the event), then
// H4->H1 allowed.
func TestFirewallBehavior(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	m := New(n, a.Topo, 1, false)

	// 1. H4 pings H1: dropped.
	if err := m.Inject("H4", pkt(apps.H(1))); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if got := m.DeliveredTo("H1"); len(got) != 0 {
		t.Fatalf("H4->H1 delivered before event: %v", got)
	}

	// 2. H1 pings H4: delivered, event fires at s4.
	if err := m.Inject("H1", pkt(apps.H(4))); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if got := m.DeliveredTo("H4"); len(got) != 1 {
		t.Fatalf("H1->H4 not delivered: %v", got)
	}
	if m.SwitchView(4) != nes.Singleton(0) {
		t.Fatalf("s4 did not record the event: %v", m.SwitchView(4))
	}

	// 3. H4 pings H1 again: now delivered.
	if err := m.Inject("H4", pkt(apps.H(1))); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if got := m.DeliveredTo("H1"); len(got) != 1 {
		t.Fatalf("H4->H1 not delivered after event: %v", got)
	}
	checkTrace(t, m, n, a)
}

// TestLearningSwitchBehavior checks Figure 12(a): H4->H1 traffic floods to
// H1 and H2 until H1's reply reaches s4, then goes only to H1.
func TestLearningSwitchBehavior(t *testing.T) {
	a := apps.LearningSwitch()
	n := buildNES(t, a)
	m := New(n, a.Topo, 2, false)

	m.Inject("H4", pkt(apps.H(1)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if len(m.DeliveredTo("H1")) != 1 || len(m.DeliveredTo("H2")) != 1 {
		t.Fatalf("flood: H1=%d H2=%d", len(m.DeliveredTo("H1")), len(m.DeliveredTo("H2")))
	}

	// H1 replies: the event (dst=H4 at 4:1) fires.
	m.Inject("H1", pkt(apps.H(4)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}

	// Further H4->H1 traffic goes only to H1.
	m.Inject("H4", pkt(apps.H(1)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if len(m.DeliveredTo("H1")) != 2 {
		t.Fatalf("H1 deliveries after learning: %d", len(m.DeliveredTo("H1")))
	}
	if len(m.DeliveredTo("H2")) != 1 {
		t.Fatalf("H2 still flooded after learning: %d", len(m.DeliveredTo("H2")))
	}
	checkTrace(t, m, n, a)
}

// TestAuthenticationBehavior checks Figure 13(a): H4 can reach H3 only
// after contacting H1 then H2 in order.
func TestAuthenticationBehavior(t *testing.T) {
	a := apps.Authentication()
	n := buildNES(t, a)
	m := New(n, a.Topo, 3, false)
	run := func(host string, dst int) {
		t.Helper()
		m.Inject(host, pkt(dst))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}

	run("H4", apps.H(3)) // blocked
	run("H4", apps.H(2)) // blocked (wrong order)
	if len(m.DeliveredTo("H3")) != 0 || len(m.DeliveredTo("H2")) != 0 {
		t.Fatalf("premature deliveries: H3=%d H2=%d", len(m.DeliveredTo("H3")), len(m.DeliveredTo("H2")))
	}
	run("H4", apps.H(1)) // allowed; event 1 fires at s1
	if len(m.DeliveredTo("H1")) != 1 {
		t.Fatalf("H1 deliveries: %d", len(m.DeliveredTo("H1")))
	}
	run("H1", apps.H(4)) // echo reply carries the digest back to s4
	run("H4", apps.H(3)) // still blocked: only H1 contacted so far
	if len(m.DeliveredTo("H3")) != 0 {
		t.Fatal("H3 reachable after only H1")
	}
	run("H4", apps.H(2)) // allowed; event 2 fires at s2
	if len(m.DeliveredTo("H2")) != 1 {
		t.Fatalf("H2 deliveries: %d", len(m.DeliveredTo("H2")))
	}
	run("H2", apps.H(4)) // echo reply propagates event 2 to s4
	run("H4", apps.H(3)) // now allowed
	if len(m.DeliveredTo("H3")) != 1 {
		t.Fatalf("H3 deliveries after auth: %d", len(m.DeliveredTo("H3")))
	}
	checkTrace(t, m, n, a)
}

// TestBandwidthCapBehavior checks Figure 14(a): with cap n, exactly n
// request/reply exchanges succeed.
func TestBandwidthCapBehavior(t *testing.T) {
	const cap = 4
	a := apps.BandwidthCap(cap)
	n := buildNES(t, a)
	m := New(n, a.Topo, 4, false)

	for i := 0; i < cap+3; i++ {
		// Request from H1, then H4's reply.
		m.Inject("H1", pkt(apps.H(4)))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
		m.Inject("H4", pkt(apps.H(1)))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.DeliveredTo("H4")); got != cap+3 {
		t.Fatalf("outgoing deliveries: %d (cap must not block outgoing)", got)
	}
	if got := len(m.DeliveredTo("H1")); got != cap {
		t.Fatalf("replies delivered: %d, want exactly %d", got, cap)
	}
	checkTrace(t, m, n, a)
}

// TestIDSBehavior checks Figure 15(a): H4 reaches everyone until it scans
// H1 then H2, after which H3 is cut off.
func TestIDSBehavior(t *testing.T) {
	a := apps.IDS()
	n := buildNES(t, a)
	m := New(n, a.Topo, 5, false)
	run := func(dst int) {
		t.Helper()
		m.Inject("H4", pkt(dst))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	reply := func(host string) {
		t.Helper()
		m.Inject(host, pkt(apps.H(4)))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	run(apps.H(3)) // allowed initially
	reply("H3")
	if len(m.DeliveredTo("H3")) != 1 {
		t.Fatalf("H3 blocked too early: %d", len(m.DeliveredTo("H3")))
	}
	run(apps.H(1)) // event 1 at s1
	reply("H1")    // digest reaches s4
	run(apps.H(2)) // event 2 at s2 — suspicious scan complete
	reply("H2")    // digest reaches s4
	run(apps.H(3)) // must be blocked now
	if len(m.DeliveredTo("H3")) != 1 {
		t.Fatalf("H3 deliveries after scan: %d, want 1", len(m.DeliveredTo("H3")))
	}
	checkTrace(t, m, n, a)
}

// TestRingBehavior: traffic H1->H2 flows clockwise; after the signal
// packet the configuration flips and traffic still flows (now
// counterclockwise).
func TestRingBehavior(t *testing.T) {
	a := apps.Ring(3)
	n := buildNES(t, a)
	m := New(n, a.Topo, 6, false)

	m.Inject("H1", pkt(apps.H(2)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if len(m.DeliveredTo("H2")) != 1 {
		t.Fatalf("clockwise delivery failed: %d", len(m.DeliveredTo("H2")))
	}
	// Signal packet fires the event at switch 2.
	m.Inject("H1", netkat.Packet{apps.FieldSig: 1})
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if m.SwitchView(2) != nes.Singleton(0) {
		t.Fatalf("switch 2 did not record the event: %v", m.SwitchView(2))
	}
	// H1->H2 now requires switch 1 to know about the event; it learns via
	// the reply path (H2->H1 passes switches d+1..2d and 1). Drive traffic
	// until the flip propagates, then confirm delivery continues.
	for i := 0; i < 10; i++ {
		m.Inject("H2", pkt(apps.H(1)))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	before := len(m.DeliveredTo("H2"))
	m.Inject("H1", pkt(apps.H(2)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if len(m.DeliveredTo("H2")) != before+1 {
		t.Fatalf("counterclockwise delivery failed: %d -> %d", before, len(m.DeliveredTo("H2")))
	}
	checkTrace(t, m, n, a)
}

// scenario is a randomized injection plan for property testing.
type scenario struct {
	app   apps.App
	sends []struct {
		host string
		pkt  netkat.Packet
	}
}

func randScenario(a apps.App, hosts []string, dsts []int, r *rand.Rand, n int) scenario {
	s := scenario{app: a}
	for i := 0; i < n; i++ {
		s.sends = append(s.sends, struct {
			host string
			pkt  netkat.Packet
		}{hosts[r.Intn(len(hosts))], pkt(dsts[r.Intn(len(dsts))])})
	}
	return s
}

// TestTheorem1RandomSchedules is the empirical validation of Theorem 1:
// across many seeds, injection orders, interleavings, and controller
// assistance settings, every execution of the Figure 7 machine produces a
// network trace that is correct with respect to the NES (Definition 6).
func TestTheorem1RandomSchedules(t *testing.T) {
	cases := []struct {
		app   apps.App
		hosts []string
		dsts  []int
	}{
		{apps.Firewall(), []string{"H1", "H4"}, []int{apps.H(1), apps.H(4)}},
		{apps.LearningSwitch(), []string{"H1", "H2", "H4"}, []int{apps.H(1), apps.H(4)}},
		{apps.Authentication(), []string{"H1", "H2", "H3", "H4"}, []int{apps.H(1), apps.H(2), apps.H(3), apps.H(4)}},
		{apps.BandwidthCap(3), []string{"H1", "H4"}, []int{apps.H(1), apps.H(4)}},
		{apps.IDS(), []string{"H1", "H2", "H3", "H4"}, []int{apps.H(1), apps.H(2), apps.H(3), apps.H(4)}},
		{apps.WalledGarden(), []string{"H1", "H2", "H3", "H4"}, []int{apps.H(1), apps.H(2), apps.H(3), apps.H(4)}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.app.Name, func(t *testing.T) {
			n := buildNES(t, c.app)
			hosts := c.app.Topo.HostLocs()
			for seed := int64(0); seed < 30; seed++ {
				r := rand.New(rand.NewSource(seed))
				sc := randScenario(c.app, c.hosts, c.dsts, r, 2+r.Intn(5))
				m := New(n, c.app.Topo, seed*7+1, seed%2 == 0)
				for _, send := range sc.sends {
					// Interleave scheduling with injections.
					for i := 0; i < r.Intn(8); i++ {
						m.Step()
					}
					if err := m.Inject(send.host, send.pkt); err != nil {
						t.Fatal(err)
					}
				}
				if err := m.RunToQuiescence(); err != nil {
					t.Fatal(err)
				}
				nt := m.NetTrace()
				if err := nt.Validate(hosts); err != nil {
					t.Fatalf("seed %d: invalid trace: %v", seed, err)
				}
				if err := trace.CheckNES(nt, n, hosts); err != nil {
					t.Fatalf("seed %d: Definition 6 violated: %v\ntrace: %v", seed, err, nt.Packets)
				}
			}
		})
	}
}

// TestOracleConvictsEarlyDelivery hand-builds the classic broken trace —
// H4->H1 delivered although no event ever occurred — and checks the
// oracle rejects it (the uncoordinated failure of Figure 11(b)).
func TestOracleConvictsEarlyDelivery(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	h4, _ := a.Topo.HostByName("H4")
	h1, _ := a.Topo.HostByName("H1")
	loc := func(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }
	p := pkt(apps.H(1))
	nt := &trace.NetTrace{}
	nt.Append(netkat.DPacket{Pkt: p, Loc: h4.Loc(), Out: true})
	nt.Append(netkat.DPacket{Pkt: p, Loc: loc(4, 2)})
	nt.Append(netkat.DPacket{Pkt: p, Loc: loc(4, 1), Out: true})
	nt.Append(netkat.DPacket{Pkt: p, Loc: loc(1, 1)})
	nt.Append(netkat.DPacket{Pkt: p, Loc: loc(1, 2), Out: true})
	nt.Append(netkat.DPacket{Pkt: p, Loc: h1.Loc()})
	nt.Trees = [][]int{{0, 1, 2, 3, 4, 5}}
	hosts := a.Topo.HostLocs()
	if err := nt.Validate(hosts); err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckNES(nt, n, hosts); err == nil {
		t.Fatal("oracle accepted an H4->H1 delivery with no prior event")
	}
}

// TestOracleConvictsLateDrop builds the other broken behavior: the event
// fires and is delivered to H4, yet a later H4->H1 packet is dropped (the
// "update too late" failure).
func TestOracleConvictsLateDrop(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	h1, _ := a.Topo.HostByName("H1")
	h4, _ := a.Topo.HostByName("H4")
	loc := func(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }
	out := pkt(apps.H(4))
	back := pkt(apps.H(1))
	nt := &trace.NetTrace{}
	// H1 -> H4, firing the event at 4:1 and delivered to H4.
	nt.Append(netkat.DPacket{Pkt: out, Loc: h1.Loc(), Out: true}) // 0
	nt.Append(netkat.DPacket{Pkt: out, Loc: loc(1, 2)})           // 1
	nt.Append(netkat.DPacket{Pkt: out, Loc: loc(1, 1), Out: true})
	nt.Append(netkat.DPacket{Pkt: out, Loc: loc(4, 1)}) // 3: the event
	nt.Append(netkat.DPacket{Pkt: out, Loc: loc(4, 2), Out: true})
	nt.Append(netkat.DPacket{Pkt: out, Loc: h4.Loc()}) // 5: delivered
	// H4 -> H1 afterwards, dropped at s4 ingress.
	nt.Append(netkat.DPacket{Pkt: back, Loc: h4.Loc(), Out: true}) // 6
	nt.Append(netkat.DPacket{Pkt: back, Loc: loc(4, 2)})           // 7: dropped
	nt.Trees = [][]int{{0, 1, 2, 3, 4, 5}, {6, 7}}
	hosts := a.Topo.HostLocs()
	if err := nt.Validate(hosts); err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckNES(nt, n, hosts); err == nil {
		t.Fatal("oracle accepted a post-event H4->H1 drop (update too late)")
	}
}

// TestMulticastTraceTree: the learning-switch flood records a branching
// packet tree (one root, two leaves), and the oracle accepts it.
func TestMulticastTraceTree(t *testing.T) {
	a := apps.LearningSwitch()
	n := buildNES(t, a)
	m := New(n, a.Topo, 11, false)
	m.Inject("H4", pkt(apps.H(1)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	nt := m.NetTrace()
	if len(nt.Trees) != 2 {
		t.Fatalf("flood should yield 2 root-to-leaf paths, got %d", len(nt.Trees))
	}
	if nt.Trees[0][0] != nt.Trees[1][0] {
		t.Fatalf("branches do not share the root: %v", nt.Trees)
	}
	if err := nt.Validate(a.Topo.HostLocs()); err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckNES(nt, n, a.Topo.HostLocs()); err != nil {
		t.Fatal(err)
	}
}

// TestControllerAssistConvergence: with CtrlAssist, the controller
// propagates the event to switches that never see tagged traffic.
func TestControllerAssistConvergence(t *testing.T) {
	a := apps.Authentication()
	n := buildNES(t, a)
	m := New(n, a.Topo, 13, true)
	// Fire event 1 at s1 (H4 -> H1).
	m.Inject("H4", pkt(apps.H(1)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	// Quiescence includes controller delivery: every switch must know e0,
	// including s2 and s3, which no tagged packet ever traversed.
	for _, sw := range a.Topo.Switches {
		if m.SwitchView(sw) == nes.Empty {
			t.Errorf("switch %d never heard about the event despite controller assist", sw)
		}
	}
	checkTrace(t, m, n, a)
}

// TestDigestPropagationWithoutController: without assistance, only the
// switches on the packet's path (and the event switch) know the event.
func TestDigestPropagationWithoutController(t *testing.T) {
	a := apps.Authentication()
	n := buildNES(t, a)
	m := New(n, a.Topo, 13, false)
	m.Inject("H4", pkt(apps.H(1)))
	if err := m.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	// The event fires at s1 on arrival; s4 processed the packet BEFORE
	// the event, so only s1 knows.
	if m.SwitchView(1) == nes.Empty {
		t.Error("s1 (event switch) does not know its own event")
	}
	for _, sw := range []int{2, 3, 4} {
		if m.SwitchView(sw) != nes.Empty {
			t.Errorf("switch %d heard about the event with no causal path", sw)
		}
	}
}

// TestDistributedFirewallConcurrentEvents: both events can fire in either
// order across different runs; every interleaving satisfies Definition 6
// (the diamond of Figure 3(a) executing for real).
func TestDistributedFirewallConcurrentEvents(t *testing.T) {
	a := apps.DistributedFirewall()
	n := buildNES(t, a)
	hosts := a.Topo.HostLocs()
	sawOrder := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		m := New(n, a.Topo, seed, false)
		// Inject both opening packets concurrently, then the returns.
		m.Inject("H1", netkat.Packet{apps.FieldDst: apps.H(4), apps.FieldSrc: apps.H(1)})
		m.Inject("H2", netkat.Packet{apps.FieldDst: apps.H(4), apps.FieldSrc: apps.H(2)})
		for i := 0; i < int(seed%7); i++ {
			m.Step()
		}
		m.Inject("H4", netkat.Packet{apps.FieldDst: apps.H(1)})
		m.Inject("H4", netkat.Packet{apps.FieldDst: apps.H(2)})
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
		nt := m.NetTrace()
		if err := nt.Validate(hosts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := trace.CheckNES(nt, n, hosts); err != nil {
			t.Fatalf("seed %d: Definition 6 violated: %v", seed, err)
		}
		// Record which event s4 learned first (its view grows 0 -> 1 -> 2
		// events; the packet order decides).
		sawOrder[m.SwitchView(4).String()] = true
	}
	if len(sawOrder) == 0 {
		t.Fatal("no runs recorded")
	}
}

// TestWalledGardenBehavior: guest blocked from H2 until portal contact.
func TestWalledGardenBehavior(t *testing.T) {
	a := apps.WalledGarden()
	n := buildNES(t, a)
	m := New(n, a.Topo, 21, false)
	send := func(host string, dst int) {
		t.Helper()
		m.Inject(host, pkt(dst))
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	send("H4", apps.H(2))
	if len(m.DeliveredTo("H2")) != 0 {
		t.Fatal("wall breached before portal contact")
	}
	send("H4", apps.H(1)) // portal contact: event at s1
	send("H1", apps.H(4)) // portal reply carries the digest back to s4
	send("H4", apps.H(2))
	if len(m.DeliveredTo("H2")) != 1 {
		t.Fatalf("H2 deliveries after portal contact: %d", len(m.DeliveredTo("H2")))
	}
	checkTrace(t, m, n, a)
}
