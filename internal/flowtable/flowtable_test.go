package flowtable

import (
	"math/rand"
	"testing"

	"eventnet/internal/netkat"
)

func TestVersionGuard(t *testing.T) {
	g := ExactGuard(2, 2)
	if !g.Matches(2) || g.Matches(3) || g.Matches(0) {
		t.Error("exact guard broken")
	}
	wild := VersionGuard{Value: 0b10, Mask: 0b10}
	if !wild.Matches(0b10) || !wild.Matches(0b11) || wild.Matches(0b01) {
		t.Error("wildcard guard broken")
	}
	if (VersionGuard{}).String() != "*" {
		t.Error("zero-mask guard should render '*'")
	}
	if got := wild.String(); got != "1*" {
		t.Errorf("guard string: %q", got)
	}
	if got := ExactGuard(1, 2).String(); got != "01" {
		t.Errorf("guard string: %q", got)
	}
}

func TestMatchMatches(t *testing.T) {
	m := Match{
		InPort:   2,
		Fields:   map[string]int{"dst": 104},
		Excludes: map[string][]int{"src": {9}},
	}
	pkt := netkat.Packet{"dst": 104, "src": 1}
	if !m.Matches(pkt, 2, 0) {
		t.Error("match failed")
	}
	if m.Matches(pkt, 1, 0) {
		t.Error("wrong in-port matched")
	}
	if m.Matches(netkat.Packet{"dst": 105}, 2, 0) {
		t.Error("wrong field matched")
	}
	if m.Matches(netkat.Packet{"src": 1}, 2, 0) {
		t.Error("missing field matched equality")
	}
	if m.Matches(netkat.Packet{"dst": 104, "src": 9}, 2, 0) {
		t.Error("excluded value matched")
	}
	// Absent field passes exclusion.
	if !m.Matches(netkat.Packet{"dst": 104}, 2, 0) {
		t.Error("absent field failed exclusion")
	}
}

// TestMatchExcludePorts: wildcard-ingress matches can exclude specific
// ports (emitted by the FDD backend's lo branches on "pt").
func TestMatchExcludePorts(t *testing.T) {
	m := Match{InPort: Wildcard, ExcludePorts: []int{2, 3}, Fields: map[string]int{}, Excludes: map[string][]int{}}
	pkt := netkat.Packet{"dst": 104}
	if !m.Matches(pkt, 1, 0) || !m.Matches(pkt, 4, 0) {
		t.Error("allowed port rejected")
	}
	if m.Matches(pkt, 2, 0) || m.Matches(pkt, 3, 0) {
		t.Error("excluded port matched")
	}
	exact := Match{InPort: 2, Fields: map[string]int{}, Excludes: map[string][]int{}}
	if _, ok := m.Intersect(exact); ok {
		t.Error("intersection with excluded exact port accepted")
	}
	other := Match{InPort: 4, Fields: map[string]int{}, Excludes: map[string][]int{}}
	inter, ok := m.Intersect(other)
	if !ok || inter.InPort != 4 || len(inter.ExcludePorts) != 0 {
		t.Errorf("intersection with allowed exact port: %v %v", inter.Key(), ok)
	}
	if !m.Subsumes(other) {
		t.Error("port exclusion must subsume a pinned non-excluded port")
	}
	if m.Subsumes(exact) {
		t.Error("port exclusion must not subsume its excluded port")
	}
	if m.Key() == (Match{InPort: Wildcard, Fields: map[string]int{}, Excludes: map[string][]int{}}).Key() {
		t.Error("ExcludePorts missing from Key")
	}
	if m.Clone().Key() != m.Key() {
		t.Error("Clone dropped ExcludePorts")
	}
}

func TestMatchIntersectSubsumes(t *testing.T) {
	broad := Match{InPort: 2, Fields: map[string]int{}, Excludes: map[string][]int{}}
	narrow := Match{InPort: 2, Fields: map[string]int{"dst": 7}, Excludes: map[string][]int{}}
	if !broad.Subsumes(narrow) {
		t.Error("broad must subsume narrow")
	}
	if narrow.Subsumes(broad) {
		t.Error("narrow must not subsume broad")
	}
	inter, ok := broad.Intersect(narrow)
	if !ok || inter.Fields["dst"] != 7 {
		t.Errorf("intersection: %v %v", inter, ok)
	}
	disjoint := Match{InPort: 2, Fields: map[string]int{"dst": 8}, Excludes: map[string][]int{}}
	if _, ok := narrow.Intersect(disjoint); ok {
		t.Error("disjoint matches intersected")
	}
	excl := Match{InPort: 2, Fields: map[string]int{}, Excludes: map[string][]int{"dst": {7}}}
	if _, ok := narrow.Intersect(excl); ok {
		t.Error("exclusion-contradicting intersection accepted")
	}
}

// TestIntersectSemantics: a packet is in the intersection region iff it
// matches both.
func TestIntersectSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	randMatch := func() Match {
		m := Match{InPort: Wildcard, Fields: map[string]int{}, Excludes: map[string][]int{}}
		if r.Intn(2) == 0 {
			m.InPort = 1 + r.Intn(2)
		} else if r.Intn(2) == 0 {
			m.ExcludePorts = []int{1 + r.Intn(2)}
		}
		for _, f := range []string{"a", "b"} {
			switch r.Intn(3) {
			case 0:
				m.Fields[f] = r.Intn(3)
			case 1:
				m.Excludes[f] = []int{r.Intn(3)}
			}
		}
		return m
	}
	for i := 0; i < 500; i++ {
		m1, m2 := randMatch(), randMatch()
		inter, ok := m1.Intersect(m2)
		pkt := netkat.Packet{"a": r.Intn(3), "b": r.Intn(3)}
		port := 1 + r.Intn(2)
		both := m1.Matches(pkt, port, 0) && m2.Matches(pkt, port, 0)
		if ok {
			if got := inter.Matches(pkt, port, 0); got != both {
				t.Fatalf("intersection mismatch: m1=%v m2=%v pkt=%v port=%d", m1.Key(), m2.Key(), pkt, port)
			}
		} else if both {
			t.Fatalf("empty intersection but both match: m1=%v m2=%v pkt=%v", m1.Key(), m2.Key(), pkt)
		}
	}
}

func TestTablePriorityAndGroups(t *testing.T) {
	tbl := &Table{}
	tbl.Add(Rule{
		Priority: 1,
		Match:    Match{InPort: Wildcard, Fields: map[string]int{}, Excludes: map[string][]int{}},
		Groups:   []ActionGroup{{Sets: map[string]int{}, OutPort: 9}},
	})
	tbl.Add(Rule{
		Priority: 10,
		Match:    Match{InPort: Wildcard, Fields: map[string]int{"dst": 7}, Excludes: map[string][]int{}},
		Groups: []ActionGroup{
			{Sets: map[string]int{"tos": 5}, OutPort: 1},
			{Sets: map[string]int{}, OutPort: 2},
		},
	})
	outs := tbl.Process(netkat.Packet{"dst": 7}, 0, 0)
	if len(outs) != 2 {
		t.Fatalf("multicast outputs: %v", outs)
	}
	// Group semantics: each group rewrites the packet as it arrived.
	if outs[0].Pkt["tos"] != 5 || outs[0].Port != 1 {
		t.Errorf("group 1: %v", outs[0])
	}
	if _, has := outs[1].Pkt["tos"]; has || outs[1].Port != 2 {
		t.Errorf("group 2 saw group 1's rewrite: %v", outs[1])
	}
	// Lower-priority fallback.
	outs = tbl.Process(netkat.Packet{"dst": 8}, 0, 0)
	if len(outs) != 1 || outs[0].Port != 9 {
		t.Errorf("fallback: %v", outs)
	}
	// Default drop.
	empty := &Table{}
	if outs := empty.Process(netkat.Packet{}, 0, 0); outs != nil {
		t.Errorf("empty table forwarded: %v", outs)
	}
}

func TestTablesAccounting(t *testing.T) {
	ts := Tables{}
	ts.Get(4).Add(Rule{Match: Match{InPort: Wildcard}, Groups: nil})
	ts.Get(1).Add(Rule{Match: Match{InPort: Wildcard}, Groups: nil})
	ts.Get(1).Add(Rule{Match: Match{InPort: 2}, Groups: nil})
	if ts.TotalRules() != 3 {
		t.Errorf("TotalRules: %d", ts.TotalRules())
	}
	sws := ts.Switches()
	if len(sws) != 2 || sws[0] != 1 || sws[1] != 4 {
		t.Errorf("Switches: %v", sws)
	}
}

func TestRuleKeyIgnoresGuardAndPriority(t *testing.T) {
	mk := func(prio int, g VersionGuard) Rule {
		return Rule{
			Priority: prio,
			Match:    Match{InPort: 2, Fields: map[string]int{"dst": 7}, Excludes: map[string][]int{}, Guard: g},
			Groups:   []ActionGroup{{Sets: map[string]int{}, OutPort: 1}},
		}
	}
	a := mk(1, ExactGuard(0, 2))
	b := mk(9, ExactGuard(3, 2))
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}
