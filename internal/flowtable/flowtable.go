// Package flowtable models OpenFlow-style prioritized match-action tables,
// extended with the version (configuration-ID) guards of Section 4.1 and
// the wildcard-masked guards produced by the rule-sharing optimization of
// Section 5.3.
//
// A rule matches a packet when the version guard matches the packet's tag,
// the ingress port matches, every equality field matches, and no excluded
// value matches. Exclusion matches are a simulator convenience standing in
// for the priority-shadowing encoding a hardware compiler would use; rule
// counts reported treat each rule as one TCAM entry either way.
//
// Rule actions are action *groups* (as in OpenFlow group tables): each
// group applies its field rewrites to the packet as it arrived and emits
// one copy. This matches NetKAT union semantics, where each summand of a
// policy rewrites the original packet independently.
package flowtable

import (
	"fmt"
	"sort"
	"strings"

	"eventnet/internal/netkat"
)

// Wildcard is the "any" value for ingress port matches.
const Wildcard = -1

// VersionGuard matches configuration-ID tags: a tag v matches when
// v & Mask == Value & Mask. A zero Mask matches every tag.
type VersionGuard struct {
	Value uint32
	Mask  uint32
}

// ExactGuard returns a guard matching only the given configuration ID,
// using the given number of significant bits.
func ExactGuard(id uint32, bits int) VersionGuard {
	if bits <= 0 {
		bits = 1
	}
	mask := uint32(1)<<uint(bits) - 1
	return VersionGuard{Value: id & mask, Mask: mask}
}

// Matches reports whether the guard admits the given tag.
func (g VersionGuard) Matches(tag uint32) bool { return tag&g.Mask == g.Value&g.Mask }

// String renders the guard as a masked binary pattern, e.g. "1*" for
// value 10 mask 10 over two bits; "*" matches everything.
func (g VersionGuard) String() string {
	if g.Mask == 0 {
		return "*"
	}
	hi := 31
	for hi > 0 && g.Mask&(1<<uint(hi)) == 0 {
		hi--
	}
	var b strings.Builder
	for i := hi; i >= 0; i-- {
		switch {
		case g.Mask&(1<<uint(i)) == 0:
			b.WriteByte('*')
		case g.Value&(1<<uint(i)) != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Match is the match part of a rule.
type Match struct {
	InPort       int              // ingress port, or Wildcard
	ExcludePorts []int            // excluded ingress ports (only with a Wildcard InPort)
	Fields       map[string]int   // required field values
	Excludes     map[string][]int // excluded field values (f != v)
	Guard        VersionGuard
}

// Matches reports whether the match admits a packet with the given fields,
// ingress port, and version tag. A field absent from the packet fails an
// equality match and passes an exclusion match.
func (m Match) Matches(pkt netkat.Packet, inPort int, tag uint32) bool {
	if !m.Guard.Matches(tag) {
		return false
	}
	if m.InPort != Wildcard && m.InPort != inPort {
		return false
	}
	if m.InPort == Wildcard {
		for _, v := range m.ExcludePorts {
			if v == inPort {
				return false
			}
		}
	}
	for f, v := range m.Fields {
		w, ok := pkt[f]
		if !ok || w != v {
			return false
		}
	}
	for f, vs := range m.Excludes {
		w, ok := pkt[f]
		if !ok {
			continue
		}
		for _, v := range vs {
			if w == v {
				return false
			}
		}
	}
	return true
}

// Specificity scores how constrained the match is; more-specific rules get
// higher priority so that overlap-resolution intersections shadow the rules
// they refine.
func (m Match) Specificity() int {
	s := 0
	if m.InPort != Wildcard {
		s += 10
	}
	s += len(m.ExcludePorts)
	s += 10 * len(m.Fields)
	for _, vs := range m.Excludes {
		s += len(vs)
	}
	return s
}

// Key returns a canonical identity for the match, ignoring the guard.
func (m Match) Key() string {
	fs := make([]string, 0, len(m.Fields))
	for f := range m.Fields {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	var b strings.Builder
	fmt.Fprintf(&b, "in=%d;", m.InPort)
	if len(m.ExcludePorts) > 0 {
		ps := append([]int{}, m.ExcludePorts...)
		sort.Ints(ps)
		for _, v := range ps {
			fmt.Fprintf(&b, "in!=%d;", v)
		}
	}
	for _, f := range fs {
		fmt.Fprintf(&b, "%s=%d;", f, m.Fields[f])
	}
	es := make([]string, 0, len(m.Excludes))
	for f := range m.Excludes {
		es = append(es, f)
	}
	sort.Strings(es)
	for _, f := range es {
		vs := append([]int{}, m.Excludes[f]...)
		sort.Ints(vs)
		for _, v := range vs {
			fmt.Fprintf(&b, "%s!=%d;", f, v)
		}
	}
	return b.String()
}

// Clone returns a deep copy of the match.
func (m Match) Clone() Match {
	n := Match{InPort: m.InPort, Guard: m.Guard, Fields: map[string]int{}, Excludes: map[string][]int{}}
	n.ExcludePorts = append(n.ExcludePorts, m.ExcludePorts...)
	for f, v := range m.Fields {
		n.Fields[f] = v
	}
	for f, vs := range m.Excludes {
		n.Excludes[f] = append([]int{}, vs...)
	}
	return n
}

// Intersect computes the intersection of two matches (the region of packets
// both admit). It reports false if the intersection is empty.
func (m Match) Intersect(o Match) (Match, bool) {
	out := m.Clone()
	if o.InPort != Wildcard {
		if out.InPort == Wildcard {
			for _, v := range out.ExcludePorts {
				if v == o.InPort {
					return Match{}, false
				}
			}
			out.InPort = o.InPort
		} else if out.InPort != o.InPort {
			return Match{}, false
		}
	} else {
		for _, v := range o.ExcludePorts {
			if out.InPort == v {
				return Match{}, false
			}
			if out.InPort == Wildcard {
				keep := true
				for _, w := range out.ExcludePorts {
					if w == v {
						keep = false
						break
					}
				}
				if keep {
					out.ExcludePorts = append(out.ExcludePorts, v)
				}
			}
		}
	}
	if out.InPort != Wildcard {
		out.ExcludePorts = nil
	} else {
		sort.Ints(out.ExcludePorts)
	}
	for f, v := range o.Fields {
		if w, ok := out.Fields[f]; ok {
			if w != v {
				return Match{}, false
			}
			continue
		}
		for _, x := range out.Excludes[f] {
			if x == v {
				return Match{}, false
			}
		}
		out.Fields[f] = v
	}
	for f, vs := range o.Excludes {
		for _, v := range vs {
			if w, ok := out.Fields[f]; ok && w == v {
				return Match{}, false
			}
			out.Excludes[f] = append(out.Excludes[f], v)
		}
	}
	// Drop excludes subsumed by equalities and dedup.
	for f := range out.Excludes {
		if _, ok := out.Fields[f]; ok {
			delete(out.Excludes, f)
			continue
		}
		seen := map[int]bool{}
		var vs []int
		for _, v := range out.Excludes[f] {
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		sort.Ints(vs)
		out.Excludes[f] = vs
	}
	return out, true
}

// Subsumes reports whether every packet admitted by o is admitted by m
// (sound syntactic approximation: m's constraints are a subset of o's).
func (m Match) Subsumes(o Match) bool {
	if m.InPort != Wildcard && m.InPort != o.InPort {
		return false
	}
	for _, v := range m.ExcludePorts {
		if o.InPort != Wildcard && o.InPort != v {
			continue // o pins the port to a non-v value; exclusion holds
		}
		found := false
		for _, w := range o.ExcludePorts {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for f, v := range m.Fields {
		if w, ok := o.Fields[f]; !ok || w != v {
			return false
		}
	}
	for f, vs := range m.Excludes {
		for _, v := range vs {
			if w, ok := o.Fields[f]; ok && w != v {
				continue // o pins f to a non-v value; exclusion holds
			}
			found := false
			for _, u := range o.Excludes[f] {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// ActionGroup applies Sets to the packet as it arrived and emits one copy
// on OutPort.
type ActionGroup struct {
	Sets    map[string]int
	OutPort int
}

// Key returns a canonical identity for the group.
func (g ActionGroup) Key() string {
	fs := make([]string, 0, len(g.Sets))
	for f := range g.Sets {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s<-%d,", f, g.Sets[f])
	}
	fmt.Fprintf(&b, "out(%d)", g.OutPort)
	return b.String()
}

// String renders the group.
func (g ActionGroup) String() string { return g.Key() }

// Output is one packet emitted by table processing.
type Output struct {
	Pkt  netkat.Packet
	Port int
}

// RuleIR is the compiler-emitted flat intermediate form of a rule: the
// match's field literals and the groups' assignments as canonically
// ordered parallel arrays. The FDD backend's table extraction walks
// root-leaf paths in canonical test order (ports first, then fields
// alphabetically with ascending values), so it can emit this form for
// free; dataplane lowering then translates names to schema indices by
// direct array walks instead of re-deriving the order from the match
// maps with per-rule sorting. The map form on Match and Groups remains
// authoritative — the scan reference plane and the rule algebra
// (Intersect, Subsumes, the optimizer) read only the maps, and lowering
// from the IR is property-tested equal to lowering from the maps.
//
// Invariants: EqFields is strictly ascending; (NeqFields[i],
// NeqValues[i]) pairs are sorted by field then value, with no entry for
// a field present in EqFields; Groups is parallel to Rule.Groups with
// each SetFields sorted. An IR is immutable once attached and may be
// shared across rule copies whose Match differs only in Guard (guards
// and ports are lowered from the Match itself).
type RuleIR struct {
	EqFields  []string
	EqValues  []int
	NeqFields []string
	NeqValues []int
	Groups    []GroupIR
}

// GroupIR is one action group's assignments in flat form.
type GroupIR struct {
	SetFields []string
	SetValues []int
}

// Rule is one prioritized match-action entry. Higher Priority wins.
// IR, when non-nil, is the compiler's pre-lowered literal form (see
// RuleIR); consumers must treat it as read-only.
type Rule struct {
	Priority int
	Match    Match
	Groups   []ActionGroup // empty means drop
	IR       *RuleIR
}

// Key returns a canonical identity for the rule ignoring its version guard
// and priority — the identity used by the Section 5.3 optimizer, which
// shares identical rules across configurations by widening guards.
func (r Rule) Key() string {
	keys := make([]string, 0, len(r.Groups))
	for _, g := range r.Groups {
		keys = append(keys, g.Key())
	}
	sort.Strings(keys)
	return r.Match.Key() + "->" + strings.Join(keys, "|")
}

// String renders the rule.
func (r Rule) String() string {
	var acts []string
	for _, g := range r.Groups {
		acts = append(acts, g.String())
	}
	if len(acts) == 0 {
		acts = []string{"drop"}
	}
	return fmt.Sprintf("[p%d g=%v %s -> %s]", r.Priority, r.Match.Guard, r.Match.Key(), strings.Join(acts, " ; "))
}

// Apply runs the rule's groups on a packet, returning the emitted copies.
func (r Rule) Apply(pkt netkat.Packet) []Output {
	if len(r.Groups) == 0 {
		return nil
	}
	return r.AppendApply(nil, pkt)
}

// AppendApply appends the rule's emitted copies to dst and returns the
// extended slice. This is the hot-path form: with a reusable dst buffer the
// only allocation left is the single right-sized map a rewriting group
// inherently needs (pass-through groups emit the input packet itself).
// The rewritten copy is built in one pass at its final size rather than
// cloned and then grown, so the scan reference path pays exactly one map
// allocation per rewriting emission — keeping the scan-vs-indexed
// throughput comparison apples-to-apples.
func (r Rule) AppendApply(dst []Output, pkt netkat.Packet) []Output {
	for _, g := range r.Groups {
		cur := pkt
		if len(g.Sets) > 0 {
			cur = make(netkat.Packet, len(pkt)+len(g.Sets))
			for f, v := range pkt {
				cur[f] = v
			}
			for f, v := range g.Sets {
				cur[f] = v
			}
		}
		dst = append(dst, Output{Pkt: cur, Port: g.OutPort})
	}
	return dst
}

// Table is a single switch's flow table, kept sorted by descending
// priority (stable for equal priorities).
type Table struct {
	Rules []Rule
}

// Add appends a rule and restores priority order.
func (t *Table) Add(r Rule) {
	t.Rules = append(t.Rules, r)
	sort.SliceStable(t.Rules, func(i, j int) bool { return t.Rules[i].Priority > t.Rules[j].Priority })
}

// AddAll appends rules and restores priority order with a single sort;
// use it when installing a whole compiled table.
func (t *Table) AddAll(rs []Rule) {
	t.Rules = append(t.Rules, rs...)
	sort.SliceStable(t.Rules, func(i, j int) bool { return t.Rules[i].Priority > t.Rules[j].Priority })
}

// Lookup returns the highest-priority rule matching the packet, if any.
func (t *Table) Lookup(pkt netkat.Packet, inPort int, tag uint32) (Rule, bool) {
	for i := range t.Rules {
		if t.Rules[i].Match.Matches(pkt, inPort, tag) {
			return t.Rules[i], true
		}
	}
	return Rule{}, false
}

// Process runs the packet through the table: the highest-priority matching
// rule fires. It returns the emitted packets, or nil if no rule matches
// (default drop) or the matching rule has no groups.
func (t *Table) Process(pkt netkat.Packet, inPort int, tag uint32) []Output {
	r, ok := t.Lookup(pkt, inPort, tag)
	if !ok {
		return nil
	}
	return r.Apply(pkt)
}

// AppendProcess is Process in append form: emitted packets are appended to
// dst. With a reused buffer the linear-scan path performs no per-call
// allocations beyond the clones rewriting groups require, which keeps the
// scan baseline in throughput comparisons honest.
func (t *Table) AppendProcess(dst []Output, pkt netkat.Packet, inPort int, tag uint32) []Output {
	for i := range t.Rules {
		if t.Rules[i].Match.Matches(pkt, inPort, tag) {
			return t.Rules[i].AppendApply(dst, pkt)
		}
	}
	return dst
}

// Len returns the number of rules.
func (t *Table) Len() int { return len(t.Rules) }

// Tables maps switch ID to its flow table.
type Tables map[int]*Table

// TotalRules returns the rule count summed over all switches — the metric
// reported by the paper's in-text table (18, 43, 72, 158, 152).
func (ts Tables) TotalRules() int {
	n := 0
	for _, t := range ts {
		n += t.Len()
	}
	return n
}

// Get returns the table for a switch, creating it if needed.
func (ts Tables) Get(sw int) *Table {
	t, ok := ts[sw]
	if !ok {
		t = &Table{}
		ts[sw] = t
	}
	return t
}

// Switches returns the switch IDs with tables, sorted.
func (ts Tables) Switches() []int {
	out := make([]int, 0, len(ts))
	for sw := range ts {
		out = append(out, sw)
	}
	sort.Ints(out)
	return out
}

// String renders all tables, for debugging and the snkc CLI.
func (ts Tables) String() string {
	var b strings.Builder
	for _, sw := range ts.Switches() {
		fmt.Fprintf(&b, "switch %d (%d rules):\n", sw, ts[sw].Len())
		for _, r := range ts[sw].Rules {
			fmt.Fprintf(&b, "  %v\n", r)
		}
	}
	return b.String()
}
