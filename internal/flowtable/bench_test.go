package flowtable

import (
	"testing"

	"eventnet/internal/netkat"
)

// benchTable builds an n-rule table shaped like a compiled configuration:
// exact in-port rules discriminating on dst, one wildcard-port rule with an
// exclusion, and a low-priority drop region.
func benchTable(n int) *Table {
	t := &Table{}
	var rs []Rule
	for i := 0; i < n; i++ {
		rs = append(rs, Rule{
			Priority: 10 + i,
			Match:    Match{InPort: 2, Fields: map[string]int{"dst": 100 + i}},
			Groups:   []ActionGroup{{Sets: map[string]int{"pt": 1}, OutPort: 1}},
		})
	}
	rs = append(rs, Rule{
		Priority: 5,
		Match:    Match{InPort: Wildcard, ExcludePorts: []int{9}, Excludes: map[string][]int{"dst": {100}}},
		Groups:   []ActionGroup{{OutPort: 3}},
	})
	t.AddAll(rs)
	return t
}

// BenchmarkTableScanLookup is the reference number for the linear-scan
// matcher: it guards the satellite requirement that hot-path refactors for
// the indexed dataplane leave the scan itself no slower (compare medians
// across PRs; see docs/BENCHMARKS.md).
func BenchmarkTableScanLookup(b *testing.B) {
	t := benchTable(32)
	pkt := netkat.Packet{"dst": 100, "src": 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(pkt, 2, 0); !ok {
			b.Fatal("no match")
		}
	}
}

// BenchmarkTableAppendProcess measures the full scan-and-apply path in its
// buffer-reusing form; the only allocation per op is the clone the
// rewriting action group inherently needs.
func BenchmarkTableAppendProcess(b *testing.B) {
	t := benchTable(32)
	pkt := netkat.Packet{"dst": 116, "src": 7}
	var buf []Output
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = t.AppendProcess(buf[:0], pkt, 2, 0)
		if len(buf) != 1 {
			b.Fatal("unexpected outputs")
		}
	}
}
