// Package optimize implements the rule-sharing optimization of
// Section 5.3 of the paper: configurations are assigned numeric IDs and
// arranged at the leaves of a complete binary trie; a rule shared by all
// configurations under a trie node is installed once, guarded by the
// node's wildcarded configuration-ID mask, instead of once per
// configuration.
//
// The package provides the paper's polynomial greedy heuristic (pair
// nodes level by level, maximizing the total size of the paired
// intersections) and an exhaustive optimal assignment for small numbers
// of configurations, used to evaluate the heuristic's quality.
package optimize

import (
	"fmt"
	"math/bits"
	"sort"

	"eventnet/internal/flowtable"
)

// RuleSet is a set of rule IDs (indices into a rule universe).
type RuleSet map[int]bool

// NewRuleSet builds a rule set from IDs.
func NewRuleSet(ids ...int) RuleSet {
	s := RuleSet{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Clone returns an independent copy.
func (s RuleSet) Clone() RuleSet {
	t := make(RuleSet, len(s))
	for id := range s {
		t[id] = true
	}
	return t
}

// Intersect returns s ∩ t.
func (s RuleSet) Intersect(t RuleSet) RuleSet {
	out := RuleSet{}
	for id := range s {
		if t[id] {
			out[id] = true
		}
	}
	return out
}

// Minus returns s \ t.
func (s RuleSet) Minus(t RuleSet) RuleSet {
	out := RuleSet{}
	for id := range s {
		if !t[id] {
			out[id] = true
		}
	}
	return out
}

// Node is a trie node: a wildcarded guard covering its leaves, and the
// intersection of the rule sets of its children.
type Node struct {
	Guard    flowtable.VersionGuard
	Rules    RuleSet // intersection of children (full set at leaves)
	Children [2]*Node
	Config   int  // leaf: index into the input configuration slice; -1 otherwise
	HasReal  bool // some leaf below is a real (non-padding) configuration
}

// Trie is the result of an assignment of configurations to leaves.
type Trie struct {
	Root   *Node
	Bits   int   // tree depth (configuration-ID width)
	Leaves []int // leaf order: Leaves[id] = input config index placed at ID id
}

// TotalRules counts the rules needed with sharing: each node installs the
// rules in its set that its parent does not already provide. Subtrees
// containing only padding configurations install nothing (no packet is
// ever tagged with their IDs).
func (t *Trie) TotalRules() int {
	var walk func(n *Node, parent RuleSet) int
	walk = func(n *Node, parent RuleSet) int {
		if n == nil || !n.HasReal {
			return 0
		}
		own := len(n.Rules.Minus(parent))
		return own + walk(n.Children[0], n.Rules) + walk(n.Children[1], n.Rules)
	}
	return walk(t.Root, RuleSet{})
}

// GuardedRules enumerates the (guard, rule-ID) pairs the trie installs —
// one entry per shared rule with its wildcarded guard.
func (t *Trie) GuardedRules() []struct {
	Guard flowtable.VersionGuard
	Rule  int
} {
	var out []struct {
		Guard flowtable.VersionGuard
		Rule  int
	}
	var walk func(n *Node, parent RuleSet)
	walk = func(n *Node, parent RuleSet) {
		if n == nil || !n.HasReal {
			return
		}
		own := n.Rules.Minus(parent)
		ids := make([]int, 0, len(own))
		for id := range own {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			out = append(out, struct {
				Guard flowtable.VersionGuard
				Rule  int
			}{n.Guard, id})
		}
		walk(n.Children[0], n.Rules)
		walk(n.Children[1], n.Rules)
	}
	walk(t.Root, RuleSet{})
	return out
}

// pad rounds the configuration count up to a power of two by adding dummy
// configurations containing every rule in the universe (as prescribed in
// Section 5.3), so they share maximally and cost nothing extra at interior
// nodes.
func pad(configs []RuleSet) ([]RuleSet, []int) {
	n := len(configs)
	size := 1
	for size < n {
		size *= 2
	}
	universe := RuleSet{}
	for _, c := range configs {
		for id := range c {
			universe[id] = true
		}
	}
	out := make([]RuleSet, size)
	orig := make([]int, size)
	for i := 0; i < size; i++ {
		if i < n {
			out[i] = configs[i].Clone()
			orig[i] = i
		} else {
			out[i] = universe.Clone()
			orig[i] = -1
		}
	}
	return out, orig
}

// buildFromOrder constructs the trie for a fixed leaf order.
func buildFromOrder(leaves []RuleSet, orig []int) *Trie {
	n := len(leaves)
	bitsN := bits.Len(uint(n - 1))
	if n == 1 {
		bitsN = 1
	}
	nodes := make([]*Node, n)
	for i := range leaves {
		cfg := -1
		if i < len(orig) {
			cfg = orig[i]
		}
		nodes[i] = &Node{
			Guard:   flowtable.ExactGuard(uint32(i), bitsN),
			Rules:   leaves[i].Clone(),
			Config:  cfg,
			HasReal: cfg >= 0,
		}
	}
	level := nodes
	prefix := bitsN
	for len(level) > 1 {
		prefix--
		next := make([]*Node, 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			mask := uint32(0)
			if prefix > 0 {
				mask = ((uint32(1) << uint(prefix)) - 1) << uint(bitsN-prefix)
			}
			parent := &Node{
				Guard:    flowtable.VersionGuard{Value: uint32(i/2) << uint(bitsN-prefix), Mask: mask},
				Rules:    level[i].Rules.Intersect(level[i+1].Rules),
				Children: [2]*Node{level[i], level[i+1]},
				Config:   -1,
				HasReal:  level[i].HasReal || level[i+1].HasReal,
			}
			next = append(next, parent)
		}
		level = next
	}
	leafOrder := make([]int, n)
	copy(leafOrder, orig)
	return &Trie{Root: level[0], Bits: bitsN, Leaves: leafOrder}
}

// Greedy runs the paper's heuristic: build the trie bottom-up, at each
// level pairing nodes to maximize the sum of the cardinalities of the
// paired intersections (largest-intersection-first greedy matching).
func Greedy(configs []RuleSet) (*Trie, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("optimize: no configurations")
	}
	padded, orig := pad(configs)

	type item struct {
		rules RuleSet
		order []RuleSet // leaf rule-sets in left-to-right order
		origs []int
	}
	level := make([]item, len(padded))
	for i, c := range padded {
		level[i] = item{rules: c, order: []RuleSet{padded[i]}, origs: []int{orig[i]}}
	}
	for len(level) > 1 {
		type pair struct {
			i, j, score int
		}
		var pairs []pair
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				pairs = append(pairs, pair{i, j, len(level[i].rules.Intersect(level[j].rules))})
			}
		}
		sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].score > pairs[b].score })
		used := make([]bool, len(level))
		var next []item
		for _, p := range pairs {
			if used[p.i] || used[p.j] {
				continue
			}
			used[p.i], used[p.j] = true, true
			next = append(next, item{
				rules: level[p.i].rules.Intersect(level[p.j].rules),
				order: append(append([]RuleSet{}, level[p.i].order...), level[p.j].order...),
				origs: append(append([]int{}, level[p.i].origs...), level[p.j].origs...),
			})
		}
		level = next
	}
	return buildFromOrder(level[0].order, level[0].origs), nil
}

// optimalLimit is the largest configuration count for which Optimal
// enumerates all leaf orders.
const optimalLimit = 8

// Optimal exhaustively searches leaf orders (for at most 8 configurations)
// and returns a trie minimizing the total rule count. Used to measure how
// close the greedy heuristic gets.
func Optimal(configs []RuleSet) (*Trie, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("optimize: no configurations")
	}
	if len(configs) > optimalLimit {
		return nil, fmt.Errorf("optimize: %d configurations exceed the exhaustive limit %d", len(configs), optimalLimit)
	}
	padded, orig := pad(configs)
	n := len(padded)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var best *Trie
	bestCount := 1 << 30
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			leaves := make([]RuleSet, n)
			origs := make([]int, n)
			for i, id := range idx {
				leaves[i] = padded[id]
				origs[i] = orig[id]
			}
			t := buildFromOrder(leaves, origs)
			if c := t.TotalRules(); c < bestCount {
				bestCount = c
				best = t
			}
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			permute(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	permute(0)
	return best, nil
}

// Naive returns the rule count without sharing: every configuration
// installs all of its rules under an exact guard (the baseline the paper's
// savings percentages are relative to).
func Naive(configs []RuleSet) int {
	total := 0
	for _, c := range configs {
		total += len(c)
	}
	return total
}

// FromTables converts per-configuration flow tables into the rule-set
// representation: rules are identified by (switch, rule-key), so identical
// rules on the same switch in different configurations share an ID.
func FromTables(configs []flowtable.Tables) ([]RuleSet, int) {
	ids := map[string]int{}
	out := make([]RuleSet, len(configs))
	for i, ts := range configs {
		out[i] = RuleSet{}
		for _, sw := range ts.Switches() {
			for _, r := range ts[sw].Rules {
				key := fmt.Sprintf("%d|%s", sw, r.Key())
				id, ok := ids[key]
				if !ok {
					id = len(ids)
					ids[key] = id
				}
				out[i][id] = true
			}
		}
	}
	return out, len(ids)
}
