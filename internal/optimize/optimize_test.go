package optimize

import (
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/flowtable"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
)

// TestPaperTrieExample reproduces the worked example of Section 5.3 /
// Figure 18: C0={r1,r2}, C1={r1,r3}, C2={r2,r3}, C3={r1,r2}; the bad
// arrangement costs 6 rules, the good one 5, and naive costs 8.
func TestPaperTrieExample(t *testing.T) {
	c0 := NewRuleSet(1, 2)
	c1 := NewRuleSet(1, 3)
	c2 := NewRuleSet(2, 3)
	c3 := NewRuleSet(1, 2)
	configs := []RuleSet{c0, c1, c2, c3}

	if n := Naive(configs); n != 8 {
		t.Fatalf("naive = %d, want 8", n)
	}
	// Figure 18(a): order C0, C1, C2, C3 -> 6 rules.
	ta := buildFromOrder([]RuleSet{c0, c1, c2, c3}, []int{0, 1, 2, 3})
	if n := ta.TotalRules(); n != 6 {
		t.Errorf("arrangement (a): %d rules, want 6", n)
	}
	// Figure 18(b): order C0, C3, C1, C2 -> 5 rules.
	tb := buildFromOrder([]RuleSet{c0, c3, c1, c2}, []int{0, 3, 1, 2})
	if n := tb.TotalRules(); n != 5 {
		t.Errorf("arrangement (b): %d rules, want 5", n)
	}

	opt, err := Optimal(configs)
	if err != nil {
		t.Fatal(err)
	}
	if n := opt.TotalRules(); n != 5 {
		t.Errorf("optimal = %d, want 5", n)
	}
	g, err := Greedy(configs)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy heuristic pairs the identical C0/C3 first, reaching the
	// optimum on this instance.
	if n := g.TotalRules(); n != 5 {
		t.Errorf("greedy = %d, want 5", n)
	}
}

// TestGreedyNeverWorseThanNaive and never better than a correct lower
// bound; the guarded rules must reconstruct each configuration exactly.
func TestGreedyCorrectAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		nCfg := 2 + r.Intn(7)
		pool := 6 + r.Intn(10)
		configs := make([]RuleSet, nCfg)
		for i := range configs {
			configs[i] = RuleSet{}
			for id := 0; id < pool; id++ {
				if r.Intn(3) == 0 {
					configs[i][id] = true
				}
			}
		}
		g, err := Greedy(configs)
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalRules() > Naive(configs) {
			t.Fatalf("greedy (%d) worse than naive (%d)", g.TotalRules(), Naive(configs))
		}
		// Semantic preservation: for each original config at leaf id, the
		// union of guarded rules whose guard matches id equals the config.
		for id, cfgIdx := range g.Leaves {
			if cfgIdx < 0 {
				continue
			}
			got := RuleSet{}
			for _, gr := range g.GuardedRules() {
				if gr.Guard.Matches(uint32(id)) {
					got[gr.Rule] = true
				}
			}
			want := configs[cfgIdx]
			if len(got) != len(want) {
				t.Fatalf("config %d: reconstructed %d rules, want %d", cfgIdx, len(got), len(want))
			}
			for rid := range want {
				if !got[rid] {
					t.Fatalf("config %d: missing rule %d", cfgIdx, rid)
				}
			}
		}
	}
}

// TestGreedyVsOptimal measures the heuristic against brute force on small
// instances: it must be within 25% of optimal and usually equal.
func TestGreedyVsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	worse := 0
	for trial := 0; trial < 25; trial++ {
		configs := make([]RuleSet, 4)
		for i := range configs {
			configs[i] = RuleSet{}
			for id := 0; id < 8; id++ {
				if r.Intn(2) == 0 {
					configs[i][id] = true
				}
			}
		}
		g, err := Greedy(configs)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(configs)
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalRules() < o.TotalRules() {
			t.Fatalf("greedy (%d) beat 'optimal' (%d) — optimal search is broken", g.TotalRules(), o.TotalRules())
		}
		if g.TotalRules() > o.TotalRules() {
			worse++
			if float64(g.TotalRules()) > 1.25*float64(o.TotalRules()) {
				t.Fatalf("greedy (%d) more than 25%% above optimal (%d)", g.TotalRules(), o.TotalRules())
			}
		}
	}
	t.Logf("greedy suboptimal on %d/25 instances", worse)
}

// TestFromTablesAppReduction applies the optimizer to the paper's
// applications: rule counts must strictly decrease for every multi-config
// app, mirroring the paper's 18->16, 43->27, 72->46, 158->101, 152->133.
func TestFromTablesAppReduction(t *testing.T) {
	for _, a := range apps.All() {
		e, err := ets.Build(a.Prog, a.Topo)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		var tabs []flowtable.Tables
		for _, v := range e.Vertices {
			tabs = append(tabs, v.Tables)
		}
		configs, _ := FromTables(tabs)
		naive := Naive(configs)
		g, err := Greedy(configs)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		got := g.TotalRules()
		if got >= naive {
			t.Errorf("%s: no reduction (%d -> %d)", a.Name, naive, got)
		}
		t.Logf("%s: %d -> %d rules (%.0f%% saved)", a.Name, naive, got, 100*float64(naive-got)/float64(naive))
	}
}

// TestFromTablesFDDRuleSharing checks the trie heuristic over rules
// emitted by each compiler backend explicitly: identical rules across
// configurations must collapse to shared IDs (the universe is smaller
// than the naive count), and guard widening must keep reducing totals on
// the FDD backend's disjoint-match tables just as on the DNF reference.
func TestFromTablesFDDRuleSharing(t *testing.T) {
	for _, backend := range []nkc.Backend{nkc.BackendFDD, nkc.BackendDNF} {
		comp := nkc.NewCompilerWith(backend)
		for _, a := range []apps.App{apps.Firewall(), apps.IDS()} {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			var tabs []flowtable.Tables
			for _, k := range states {
				tables, err := comp.Compile(stateful.Project(a.Prog.Cmd, k), a.Topo)
				if err != nil {
					t.Fatalf("%s/%v: %v", backend, a.Name, err)
				}
				tabs = append(tabs, tables)
			}
			configs, universe := FromTables(tabs)
			naive := Naive(configs)
			if universe >= naive {
				t.Errorf("%s/%s: no cross-configuration rule sharing (universe %d, naive %d)", backend, a.Name, universe, naive)
			}
			g, err := Greedy(configs)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.TotalRules(); got >= naive {
				t.Errorf("%s/%s: trie did not reduce (%d -> %d)", backend, a.Name, naive, got)
			}
		}
	}
}

func TestGuardRendering(t *testing.T) {
	g := flowtable.VersionGuard{Value: 0b10, Mask: 0b10}
	if s := g.String(); s != "1*" {
		t.Errorf("guard 1*: got %q", s)
	}
	g = flowtable.ExactGuard(3, 2)
	if s := g.String(); s != "11" {
		t.Errorf("guard 11: got %q", s)
	}
	if !g.Matches(3) || g.Matches(2) {
		t.Error("exact guard matching broken")
	}
}

// TestGuardedRulesPaperGuards: the Figure 18(b) arrangement yields the
// paper's guards — (0*)r1, (0*)r2, (1*)r3, (10)r1, (11)r2.
func TestGuardedRulesPaperGuards(t *testing.T) {
	c0 := NewRuleSet(1, 2)
	c3 := NewRuleSet(1, 2)
	c1 := NewRuleSet(1, 3)
	c2 := NewRuleSet(2, 3)
	tr := buildFromOrder([]RuleSet{c0, c3, c1, c2}, []int{0, 3, 1, 2})
	got := map[string]bool{}
	for _, gr := range tr.GuardedRules() {
		got[gr.Guard.String()+"r"+itoa(gr.Rule)] = true
	}
	for _, want := range []string{"0*r1", "0*r2", "1*r3", "10r1", "11r2"} {
		if !got[want] {
			t.Errorf("missing guarded rule %s (got %v)", want, got)
		}
	}
	if len(got) != 5 {
		t.Errorf("guarded rules: %v", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
