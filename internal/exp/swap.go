package exp

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// SwapResult carries the audit counters alongside the result table (the
// tests assert on them; the table is what experiments prints).
type SwapResult struct {
	Table *Table
	// Mixed counts deliveries that contradict their injection's stamp or
	// its program's netkat.Eval prediction — any packet that touched both
	// programs' rules would land here. Dropped counts Eval-predicted
	// deliveries that never arrived.
	Mixed, Dropped int
	// SteadyPPS is the mean of the two programs' steady-state forwarding
	// rates (a transition forwards a blend of both); TransitionPPS is the
	// rate inside the flip->retire drain windows.
	SteadyPPS     float64
	TransitionPPS float64
}

// Swap is the live-update experiment: bandwidth-cap-40 forwards a
// LoadGen stream on a served engine while the controller repeatedly
// hot-swaps the program (40 -> 80 -> 40 -> ...), each swap staged with a
// full batch mid-journey so the drain window is never empty. It reports:
//
//   - steady-state forwarding rate of both programs (the transition
//     forwards a blend, so the baseline is their mean);
//   - the rate inside the flip->retire windows and its ratio to steady;
//   - per-swap latency (stage->retire) and drain-window length;
//   - a full per-packet consistency audit: every delivery is checked
//     against netkat.Eval of the exact program generation its stamp pins
//     it to, so a single packet forwarded by mixed rule sets — or
//     dropped by the transition — is counted.
//
// packets sets the steady-state stream length per program; the
// transition phase feeds the same stream continuously across `swaps`
// swaps. Methodology notes live in docs/BENCHMARKS.md.
func Swap(packets int) *SwapResult {
	a40 := apps.BandwidthCap(40)
	a80 := apps.BandwidthCap(80)
	const workers = 2
	const batch = 8192
	const swaps = 6

	c := ctrl.New(a40.Topo, ctrl.Options{Workers: workers})
	defer c.Close()
	if err := c.Load(a40.Name, a40.Prog); err != nil {
		panic(err)
	}
	e := c.Engine()
	progs := []*ctrl.Program{c.Current()} // epoch -> program

	lg := dataplane.NewLoadGen(c.Current().NES, a40.Topo, 11)
	stream := lg.Injections(4096)

	// stamps[id] records each injection's stamp; the injection itself is
	// reconstructible from the repeating stream (audit bookkeeping must
	// stay allocation-light so its GC debt does not land in the drain
	// windows being measured). The id counter, the batch construction that
	// reads it, and the stamps append all run inside e.Do (barrier-serial):
	// the transition phase calls injectBatch from the feeder goroutine and
	// the swap loop concurrently, and the audit's stamps[i] <-> id i
	// correspondence only holds if ids are allocated in the same serial
	// order the stamps land.
	var stamps []dataplane.Stamp
	id := 0
	injectBatch := func(k int) {
		e.Do(func() {
			base := id
			id += k
			ins := make([]dataplane.Injection, k)
			for j := 0; j < k; j++ {
				in := stream[(base+j)%len(stream)]
				f := in.Fields.Clone()
				f["id"] = base + j
				ins[j] = dataplane.Injection{Host: in.Host, Fields: f}
			}
			sts, errs := e.InjectBatch(ins)
			if errs != nil {
				for _, err := range errs {
					if err != nil {
						panic(err)
					}
				}
			}
			stamps = append(stamps, sts...)
		})
	}
	swapTo := func(a apps.App) ctrl.SwapReport {
		rep, err := c.Swap(a.Name, a.Prog)
		if err != nil {
			panic(err)
		}
		progs = append(progs, c.Current())
		return rep
	}
	steady := func() float64 {
		injectBatch(batch) // warm
		e.Quiesce()
		s0 := e.Snapshot()
		t0 := time.Now()
		for spent := 0; spent < packets; spent += batch {
			injectBatch(batch)
		}
		e.Quiesce()
		return float64(e.Snapshot().Processed-s0.Processed) / time.Since(t0).Seconds()
	}

	// Steady-state rate of each program, interleaved around a warm-up
	// swap cycle (quiet swaps between, excluded from the transition
	// metrics). Medians over windows follow the repo's benchmark
	// methodology: this container's timing is noisy, so every reported
	// rate is a median, not a single window.
	steady40s := []float64{steady()}
	swapTo(a80)
	steady80s := []float64{steady()}
	swapTo(a40)
	steady40s = append(steady40s, steady())
	swapTo(a80)
	steady80s = append(steady80s, steady())
	swapTo(a40)
	steady40, steady80 := median(steady40s), median(steady80s)
	steadyMean := (steady40 + steady80) / 2

	// Transition phase: a feeder keeps the line rate up, and each swap is
	// staged right after a fresh batch was admitted, so the flip always
	// lands with a full generation of the old program mid-journey. The
	// compile/steady phases' GC debt is flushed first so it is not
	// collected inside the windows being measured.
	runtime.GC()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			injectBatch(batch)
		}
	}()
	var windowPPS []float64
	var drainedHops int64
	var transDur, latency time.Duration
	var carried int
	targets := []apps.App{a80, a40}
	for i := 0; i < swaps; i++ {
		injectBatch(batch) // guarantee in-flight depth at the flip
		rep := swapTo(targets[i%2])
		if rep.TransitionMS > 0 {
			windowPPS = append(windowPPS, float64(rep.TransitionHops)/(rep.TransitionMS/1000))
		}
		drainedHops += rep.DrainedHops
		transDur += time.Duration(rep.TransitionMS * float64(time.Millisecond))
		latency += time.Duration(rep.LatencyMS * float64(time.Millisecond))
		carried += rep.CarriedEvents
	}
	close(stop)
	<-done
	e.Quiesce()

	transPPS := median(windowPPS)

	mixed, dropped := auditDeliveries(a40.Topo, progs, stream, stamps, e.CopyDeliveries(0))

	ratio := 0.0
	if steadyMean > 0 {
		ratio = 100 * transPPS / steadyMean
	}
	t := &Table{
		Title: "Live swap: bandwidth-cap-40 <-> 80 under LoadGen traffic (served engine, 2 workers)",
		Columns: []string{"app", "packets", "swaps", "steady40_pps", "steady80_pps", "transition_pps", "ratio_pct",
			"swap_latency_ms", "transition_ms", "drained_hops", "carried_events", "mixed", "dropped"},
	}
	t.Rows = append(t.Rows, []string{
		a40.Name, fmt.Sprint(id), fmt.Sprint(swaps),
		fmt.Sprintf("%.0f", steady40), fmt.Sprintf("%.0f", steady80),
		fmt.Sprintf("%.0f", transPPS), fmt.Sprintf("%.1f", ratio),
		fmt.Sprintf("%.3f", float64(latency.Microseconds())/1000/swaps),
		fmt.Sprintf("%.3f", float64(transDur.Microseconds())/1000/swaps),
		fmt.Sprint(drainedHops), fmt.Sprint(carried), fmt.Sprint(mixed), fmt.Sprint(dropped),
	})
	return &SwapResult{Table: t, Mixed: mixed, Dropped: dropped, SteadyPPS: steadyMean, TransitionPPS: transPPS}
}

// median returns the median of a sample (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// auditDeliveries verifies per-packet consistency: every delivery must
// carry its injection's stamp, and every injection's delivery set must
// equal exactly what netkat.Eval predicts for the stamped program
// generation and configuration.
func auditDeliveries(tp *topo.Topology, progs []*ctrl.Program, stream []dataplane.Injection, stamps []dataplane.Stamp, deliveries []dataplane.Delivery) (mixed, dropped int) {
	byID := map[int][]dataplane.Delivery{}
	for _, d := range deliveries {
		i, ok := d.Fields["id"]
		if !ok {
			mixed++
			continue
		}
		byID[i] = append(byID[i], d)
	}
	// The id field rides through every rewrite untouched, so predictions
	// are memoized with id stripped: one Eval per distinct (program
	// generation, version, host, header fields) instead of one per packet.
	memo := map[string]map[string]bool{}
	for i, st := range stamps {
		if st.Epoch < 0 || st.Epoch >= len(progs) {
			mixed++
			continue
		}
		in := stream[i%len(stream)]
		base := in.Fields.Clone()
		delete(base, "id")
		mk := fmt.Sprintf("%d|%d|%s|%s", st.Epoch, st.Version, in.Host, base.Key())
		want, ok := memo[mk]
		if !ok {
			want = evalDeliveries(tp, progs[st.Epoch], in.Host, base, st)
			memo[mk] = want
		}
		got := map[string]bool{}
		for _, d := range byID[i] {
			if d.Stamp != st {
				mixed++
				continue
			}
			df := d.Fields.Clone()
			delete(df, "id")
			key := d.Host + "|" + df.Key()
			if !want[key] || got[key] {
				mixed++
				continue
			}
			got[key] = true
		}
		dropped += len(want) - len(got)
	}
	return mixed, dropped
}

// evalDeliveries is the reference prediction for one injection under its
// stamp.
func evalDeliveries(tp *topo.Topology, p *ctrl.Program, host string, fields netkat.Packet, st dataplane.Stamp) map[string]bool {
	state, ok := p.StateOf(st.Version)
	if !ok {
		return nil
	}
	pol := stateful.Project(p.Prog.Cmd, state)
	h, _ := tp.HostByName(host)
	out := map[string]bool{}
	for _, lp := range netkat.Eval(pol, netkat.LocatedPacket{Pkt: fields, Loc: h.Attach}) {
		if lk, ok := tp.LinkFrom(lp.Loc); ok {
			if hh, isHost := tp.HostByID(lk.Dst.Switch); isHost {
				out[hh.Name+"|"+lp.Pkt.Key()] = true
			}
		}
	}
	return out
}
