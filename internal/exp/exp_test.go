package exp

import (
	"strconv"
	"testing"
)

// TestFig10Shape: correct plane drops 0 at every delay; uncoordinated
// drops at least 1 even at 0 ms and does not shrink as delay grows.
func TestFig10Shape(t *testing.T) {
	tbl := Fig10(1000, 500, 2)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	prev := -1
	for _, r := range tbl.Rows {
		u, _ := strconv.Atoi(r[1])
		c, _ := strconv.Atoi(r[2])
		if c != 0 {
			t.Errorf("delay %s: correct plane dropped %d packets", r[0], c)
		}
		if u < 1 {
			t.Errorf("delay %s: uncoordinated dropped %d, want >= 1", r[0], u)
		}
		if u < prev {
			t.Errorf("drops shrank with delay: %d after %d", u, prev)
		}
		prev = u
	}
}

// TestFig11Shape: the correct timeline blocks H4->H1 before the event and
// allows everything after; the uncoordinated one drops some H1->H4 pings.
func TestFig11Shape(t *testing.T) {
	tl := Fig11()
	for _, p := range tl.Correct {
		switch {
		case p.Flow == "H4-H1" && p.Time < 2.0:
			if p.OK {
				t.Errorf("correct: pre-event H4-H1 ping at %.2f succeeded", p.Time)
			}
		case p.Flow == "H1-H4":
			if !p.OK {
				t.Errorf("correct: H1-H4 ping at %.2f dropped", p.Time)
			}
		case p.Flow == "H4-H1" && p.Time >= 3.5:
			if !p.OK {
				t.Errorf("correct: post-event H4-H1 ping at %.2f dropped", p.Time)
			}
		}
	}
	uncoordDrops := 0
	for _, p := range tl.Uncoord {
		if p.Flow == "H1-H4" && !p.OK {
			uncoordDrops++
		}
	}
	if uncoordDrops == 0 {
		t.Error("uncoordinated timeline shows no H1-H4 drops")
	}
}

// TestFig12Shape: the correct plane floods at most two packets to H2; the
// uncoordinated plane floods more.
func TestFig12Shape(t *testing.T) {
	tbl := Fig12()
	correctH2, _ := strconv.Atoi(tbl.Rows[0][2])
	uncoordH2, _ := strconv.Atoi(tbl.Rows[1][2])
	if correctH2 < 1 || correctH2 > 2 {
		t.Errorf("correct flood count to H2: %d", correctH2)
	}
	if uncoordH2 <= correctH2 {
		t.Errorf("uncoordinated flooded %d <= correct %d", uncoordH2, correctH2)
	}
}

// TestFig14Shape: correct = exactly 10; uncoordinated > 10.
func TestFig14Shape(t *testing.T) {
	tbl := Fig14()
	correct, _ := strconv.Atoi(tbl.Rows[0][2])
	uncoord, _ := strconv.Atoi(tbl.Rows[1][2])
	if correct != 10 {
		t.Errorf("correct cap: %d pings succeeded, want 10", correct)
	}
	if uncoord <= 10 {
		t.Errorf("uncoordinated cap: %d pings succeeded, want > 10", uncoord)
	}
}

// TestFig13Fig15Shapes: the final H4->H3 burst must fail under the
// correct plane in both apps (auth: never authorized in script order;
// IDS: blocked after the scan); the uncoordinated IDS lets some through.
func TestFig13Fig15Shapes(t *testing.T) {
	tl13 := Fig13()
	// Authentication script contacts H2 before H1, so H3 opens only after
	// the 4.5s H4-H2 burst; the 5.5s H4-H3 burst must succeed, earlier
	// H4-H3 bursts must fail.
	for _, p := range tl13.Correct {
		if p.Flow == "H4-H3" && p.Time < 5.0 && p.OK {
			t.Errorf("auth correct: premature H4-H3 success at %.2f", p.Time)
		}
		if p.Flow == "H4-H3" && p.Time >= 5.5 && !p.OK {
			t.Errorf("auth correct: authorized H4-H3 ping at %.2f dropped", p.Time)
		}
	}

	tl15 := Fig15()
	for _, p := range tl15.Correct {
		if p.Flow == "H4-H3" && p.Time < 1.0 && !p.OK {
			t.Errorf("ids correct: initial H4-H3 ping at %.2f dropped", p.Time)
		}
		if p.Flow == "H4-H3" && p.Time >= 5.5 && p.OK {
			t.Errorf("ids correct: post-scan H4-H3 ping at %.2f succeeded", p.Time)
		}
	}
	lateOK := 0
	for _, p := range tl15.Uncoord {
		if p.Flow == "H4-H3" && p.Time >= 5.5 && p.OK {
			lateOK++
		}
	}
	if lateOK == 0 {
		t.Log("note: uncoordinated IDS blocked all late H4-H3 pings in this run (install landed early)")
	}
}

// TestFig16aShape: overhead positive and below 10% at every diameter.
func TestFig16aShape(t *testing.T) {
	tbl := Fig16a([]int{2, 4})
	for _, r := range tbl.Rows {
		oh, _ := strconv.ParseFloat(r[3], 64)
		if oh <= 0 || oh > 10 {
			t.Errorf("diameter %s: overhead %.1f%% outside (0,10]", r[0], oh)
		}
	}
}

// TestFig16bShape: gossip discovery grows with diameter; controller
// assistance is never slower than gossip at the largest diameter.
func TestFig16bShape(t *testing.T) {
	tbl := Fig16b([]int{3, 6})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	small, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	large, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	largeCtrl, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if large <= small {
		t.Errorf("max discovery did not grow: %.4f -> %.4f", small, large)
	}
	if largeCtrl >= large {
		t.Errorf("controller assist slower than gossip: %.4f vs %.4f", largeCtrl, large)
	}
}

// TestFig17Shape: average savings in the 20-45%% band around the paper's
// 32%%.
func TestFig17Shape(t *testing.T) {
	tbl := Fig17(10, 42)
	last := tbl.Rows[len(tbl.Rows)-1]
	saved, _ := strconv.ParseFloat(last[3], 64)
	if saved < 15 || saved > 55 {
		t.Errorf("average savings %.1f%%, want in [15, 55] around the paper's 32%%", saved)
	}
}

// TestTables: compile and optimize tables cover all five apps and the
// optimizer strictly reduces every app.
func TestTables(t *testing.T) {
	c := TableCompile()
	if len(c.Rows) != 5 {
		t.Fatalf("compile rows: %d", len(c.Rows))
	}
	o := TableOptimize()
	for _, r := range o.Rows {
		orig, _ := strconv.Atoi(r[1])
		opt, _ := strconv.Atoi(r[2])
		if opt >= orig {
			t.Errorf("%s: optimizer did not reduce (%d -> %d)", r[0], orig, opt)
		}
	}
}

// TestThroughputShape: the throughput sweep covers every app, reports
// positive rates, and the indexed matcher beats the scan where tables are
// big enough for indexing to matter (the cap-200 acceptance row).
func TestThroughputShape(t *testing.T) {
	tbl := Throughput(50000)
	if len(tbl.Rows) != 8 {
		t.Fatalf("throughput rows: %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		scan, _ := strconv.ParseFloat(r[2], 64)
		idx, _ := strconv.ParseFloat(r[3], 64)
		if scan <= 0 || idx <= 0 {
			t.Errorf("%s: non-positive rate (scan %v, indexed %v)", r[0], r[2], r[3])
		}
		if r[0] == "bandwidth-cap-200" && idx < 4*scan {
			t.Errorf("bandwidth-cap-200: indexed %v pps not clearly faster than scan %v pps", r[3], r[2])
		}
	}
}

// TestSwapExperiment: the live-swap experiment's consistency audit must
// be perfectly clean — zero packets dropped by the transition and zero
// packets whose deliveries contradict their stamped program generation —
// and the harness must report positive rates. (The >=90% throughput
// acceptance is a timing property; it is measured by `experiments -only
// swap` and recorded in docs/BENCHMARKS.md rather than asserted under
// arbitrary CI load.)
func TestSwapExperiment(t *testing.T) {
	res := Swap(8192)
	if res.Mixed != 0 {
		t.Fatalf("swap audit found %d mixed-version deliveries", res.Mixed)
	}
	if res.Dropped != 0 {
		t.Fatalf("swap transition dropped %d predicted deliveries", res.Dropped)
	}
	if res.SteadyPPS <= 0 || res.TransitionPPS <= 0 {
		t.Fatalf("non-positive rates: steady %.0f, transition %.0f", res.SteadyPPS, res.TransitionPPS)
	}
	if len(res.Table.Rows) != 1 || len(res.Table.Rows[0]) != len(res.Table.Columns) {
		t.Fatalf("malformed result table: %+v", res.Table)
	}
}

// TestScaleShape: the multi-core sweep runs end to end at a small packet
// budget, emits one row per (procs, workers) cell with positive rates,
// and its determinism witness passes (Scale errors out otherwise). The
// near-linear speedup acceptance is a multi-core timing property,
// measured by `experiments -only scale-cores` on the CI multi-core job
// rather than asserted under arbitrary load here.
func TestScaleShape(t *testing.T) {
	res, err := Scale(4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash == 0 {
		t.Fatal("determinism witness hashed nothing")
	}
	if len(res.Points) == 0 || len(res.Table.Rows) != len(res.Points) {
		t.Fatalf("malformed sweep: %d points, %d rows", len(res.Points), len(res.Table.Rows))
	}
	for _, p := range res.Points {
		if p.PPS <= 0 || p.NsHop <= 0 || p.Speedup <= 0 {
			t.Fatalf("non-positive cell: %+v", p)
		}
	}
}
