package exp

import (
	"fmt"

	"eventnet/internal/chaos"
	"eventnet/internal/obs"
)

// ChaosResult carries the chaos audit table plus the counters the CLI
// and tests gate on.
type ChaosResult struct {
	Table      *Table
	Audited    int
	Violations int
	// Reproducers holds one minimized reproducer line per violating run
	// (see docs/CHAOS.md); empty when every run is clean. FlightDumps is
	// parallel to it: the deterministic flight record of each minimized
	// reproducer's replay.
	Reproducers []string
	FlightDumps []*obs.FlightDump
}

// Chaos is the standing differential audit as an experiment: every
// scenario family × every seed, one synchronous audited run each, plus a
// served-engine run for the swap-bearing scenarios. Each row reports the
// op mix, the audited delivery count and the two violation counters;
// rows with violations carry a minimized reproducer in the result.
func Chaos(rounds int, seeds []int64, workers int) (*ChaosResult, error) {
	t := &Table{
		Title: fmt.Sprintf("Chaos audit: %d rounds/run, %d workers, every delivery checked against Eval", rounds, workers),
		Columns: []string{"scenario", "mode", "seed", "ops", "injected", "audited",
			"fails", "recovers", "storms", "swaps", "mixed", "dropped"},
	}
	out := &ChaosResult{Table: t}
	addRow := func(mode string, r *chaos.Result) {
		t.Rows = append(t.Rows, []string{
			r.Scenario, mode, fmt.Sprint(r.Seed), fmt.Sprint(r.Ops),
			fmt.Sprint(r.Injected), fmt.Sprint(r.Audited),
			fmt.Sprint(r.Fails), fmt.Sprint(r.Recovers), fmt.Sprint(r.Storms), fmt.Sprint(r.Swaps),
			fmt.Sprint(r.Mixed), fmt.Sprint(r.Dropped),
		})
		out.Audited += r.Audited
		out.Violations += r.Violations()
	}
	for _, name := range chaos.Scenarios() {
		for _, seed := range seeds {
			s, err := chaos.NewSchedule(name, seed, rounds)
			if err != nil {
				return nil, err
			}
			res, repro, dump, err := chaos.Audit(s, chaos.Options{Workers: workers})
			if err != nil {
				return nil, err
			}
			addRow("sync", res)
			if repro != nil {
				out.Reproducers = append(out.Reproducers, repro.Reproducer())
				out.FlightDumps = append(out.FlightDumps, dump)
			}
		}
	}
	// Served-engine pass: controller-driven swaps under asynchronous
	// barriers, audit-only (no determinism claim there).
	for _, name := range []string{"storm-swap", "wan-failover"} {
		s, err := chaos.NewSchedule(name, seeds[0], rounds/2)
		if err != nil {
			return nil, err
		}
		res, err := chaos.RunServed(s, chaos.Options{Workers: workers, Batched: true})
		if err != nil {
			return nil, err
		}
		addRow("served", res)
	}
	return out, nil
}
