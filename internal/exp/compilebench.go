package exp

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
)

// CompileBenchResult carries the submit->swap p50 alongside the tables
// so the CI gate can assert on it without reparsing its own output.
type CompileBenchResult struct {
	Compile *Table
	Swap    *Table
	// SwapP50MS is the median wall-clock of a warm ctrl.Swap call (submit
	// to retired) on the served cap-2000 engine under injection load —
	// the number the sub-5ms acceptance gate reads from
	// BENCH_compile.json.
	SwapP50MS float64
}

// CompileBench is the compiler-memory benchmark behind BENCH_compile.json
// (docs/BENCHMARKS.md). Two legs:
//
// The compile leg builds the bandwidth-cap-80/200/2000 ETS end-to-end
// (ets.BuildWithOptions + ToNES, all cores — this is a wall-clock
// benchmark, unlike the scheduling-independent 1-worker `scale`
// trajectory) and reports the interned pipeline's cache hit rates and
// memory: hash-consed nodes, dense-interner entries, and FDD arena slab
// bytes.
//
// The swap leg answers "how long does a submit->swap take at 10x program
// scale, served, under load": bandwidth-cap-2000 forwards a LoadGen
// stream on a served engine while the controller alternates
// cap-2000 <-> cap-2001. The first cycle pays both programs' compiles
// and the staged merged install; the timed swaps after it are what a
// steady operator sees — memoized program, cached staging, flip and
// drain. swap_p50_ms is wall-clock around the ctrl.Swap call
// (submit->retired, including generation-barrier waits, which dominate
// on few-core machines); latency_p50_ms is the controller's own
// stage->retire SwapReport.LatencyMS for the same swaps.
func CompileBench(swaps int) *CompileBenchResult {
	workers := runtime.NumCPU()
	ct := &Table{
		Title:   "Compile bench: interned, arena-backed pipeline end-to-end (all cores)",
		Columns: []string{"app", "states", "workers", "compile_ns", "table_hit_pct", "seg_hit_pct", "strands", "fdd_nodes", "intern_entries", "arena_bytes"},
	}
	for _, a := range []apps.App{apps.BandwidthCap(80), apps.BandwidthCap(200), apps.BandwidthCap(2000)} {
		start := time.Now()
		e, stats, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: workers})
		if err != nil {
			panic(err)
		}
		if _, err := e.ToNES(); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		ct.Rows = append(ct.Rows, []string{
			a.Name, fmt.Sprint(stats.States), fmt.Sprint(workers),
			fmt.Sprint(elapsed.Nanoseconds()),
			fmt.Sprintf("%.1f", hitPct(stats.Cache.TableHits, stats.Cache.TableMisses)),
			fmt.Sprintf("%.1f", hitPct(stats.Cache.SegmentHits, stats.Cache.SegmentMisses)),
			fmt.Sprint(stats.Cache.Strands), fmt.Sprint(stats.Cache.FDDNodes),
			fmt.Sprint(stats.Cache.InternEntries), fmt.Sprint(stats.Cache.ArenaBytes),
		})
	}

	a0 := apps.BandwidthCap(2000)
	a1 := apps.BandwidthCap(2001)
	c := ctrl.New(a0.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load(a0.Name, a0.Prog); err != nil {
		panic(err)
	}
	e := c.Engine()
	lg := dataplane.NewLoadGen(c.Current().NES, a0.Topo, 17)
	stream := lg.Injections(2048)
	// Generation-sized batches: big enough that every flip drains real
	// in-flight traffic, small enough that the pre-flip barrier wait (one
	// generation) stays out of the way of the swap being measured.
	const batch = 512
	inject := func() {
		ins := make([]dataplane.Injection, batch)
		for j := range ins {
			in := stream[j%len(stream)]
			ins[j] = dataplane.Injection{Host: in.Host, Fields: in.Fields.Clone()}
		}
		e.Do(func() {
			if _, errs := e.InjectBatch(ins); errs != nil {
				for _, err := range errs {
					if err != nil {
						panic(err)
					}
				}
			}
		})
	}

	// The feeder keeps the line rate up for the whole leg: a swap's drain
	// completes at a generation boundary, and generations only turn while
	// traffic flows.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			inject()
		}
	}()

	// Warm cycle: compiles cap-2001, stages both merged-pair directions,
	// warms both plans. Excluded from the timed swaps below.
	firstSwap := time.Now()
	if _, err := c.Swap(a1.Name, a1.Prog); err != nil {
		panic(err)
	}
	coldMS := float64(time.Since(firstSwap).Microseconds()) / 1000
	if _, err := c.Swap(a0.Name, a0.Prog); err != nil {
		panic(err)
	}

	targets := []apps.App{a1, a0}
	var wallMS, latMS []float64
	for i := 0; i < swaps; i++ {
		inject() // a full batch mid-journey, so every flip drains real traffic
		tgt := targets[i%2]
		t0 := time.Now()
		rep, err := c.Swap(tgt.Name, tgt.Prog)
		if err != nil {
			panic(err)
		}
		wallMS = append(wallMS, float64(time.Since(t0).Microseconds())/1000)
		latMS = append(latMS, rep.LatencyMS)
	}
	close(stop)
	<-done
	e.Quiesce()

	p50 := median(wallMS)
	st := &Table{
		Title:   "Submit->swap at 10x scale: served bandwidth-cap-2000 <-> 2001 under LoadGen traffic",
		Columns: []string{"app", "swaps", "swap_p50_ms", "swap_p95_ms", "latency_p50_ms", "cold_swap_ms"},
	}
	st.Rows = append(st.Rows, []string{
		a0.Name, fmt.Sprint(swaps),
		fmt.Sprintf("%.3f", p50), fmt.Sprintf("%.3f", p95of(wallMS)), fmt.Sprintf("%.3f", median(latMS)),
		fmt.Sprintf("%.3f", coldMS),
	})
	return &CompileBenchResult{Compile: ct, Swap: st, SwapP50MS: p50}
}

// p95of returns the 95th-percentile value of xs.
func p95of(xs []float64) float64 {
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	return sorted[(len(sorted)*95)/100]
}

// hitPct renders hits/(hits+misses) as a percentage (0 when idle).
func hitPct(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
