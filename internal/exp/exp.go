// Package exp regenerates every table and figure of the paper's
// evaluation (Section 5). Each Fig*/Table* function runs the workload on
// the simulator (or the compiler/optimizer) and returns the same rows or
// series the paper plots; cmd/experiments prints them and EXPERIMENTS.md
// records paper-vs-measured.
package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/obs"
	"eventnet/internal/optimize"
	"eventnet/internal/sim"
)

// parallelFor runs f(0..n-1) on a bounded worker pool (at most one worker
// per CPU). The experiment sweeps are embarrassingly parallel — each
// point builds its own simulator seeded deterministically — so results
// are identical to the sequential run.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// BuildNES compiles an application to its NES.
func BuildNES(a apps.App) (*nes.NES, error) {
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		return nil, err
	}
	return e.ToNES()
}

// Table is a generic result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig10 sweeps the uncoordinated install delay on the stateful firewall
// and counts incorrectly-dropped packets, with the correct (tagged)
// implementation as the baseline (always 0). `runs` executions per delay
// point, delays from 0 to maxDelayMs in stepMs increments.
func Fig10(maxDelayMs, stepMs, runs int) *Table {
	t := &Table{
		Title:   "Figure 10: Stateful Firewall — impact of delay (total incorrectly-dropped packets)",
		Columns: []string{"delay_ms", "uncoordinated_drops", "correct_drops"},
	}
	a := apps.Firewall()
	n, err := BuildNES(a)
	if err != nil {
		panic(err)
	}
	points := maxDelayMs/stepMs + 1
	rows := make([][]string, points)
	parallelFor(points, func(i int) {
		d := i * stepMs
		uncoord := 0
		correct := 0
		for r := 0; r < runs; r++ {
			uncoord += firewallDrops(a, n, sim.PlaneKindUncoord, float64(d)/1000, int64(r+1))
			correct += firewallDrops(a, n, sim.PlaneKindTagged, float64(d)/1000, int64(r+1))
		}
		rows[i] = []string{fmt.Sprint(d), fmt.Sprint(uncoord), fmt.Sprint(correct)}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

// firewallDrops runs the Figure 10/11 workload: H1 pings H4; replies
// dropped at s4 are the incorrect drops.
func firewallDrops(a apps.App, n *nes.NES, kind sim.PlaneKind, installDelay float64, seed int64) int {
	p := sim.DefaultParams()
	p.InstallDelay = installDelay
	s := sim.New(a.Topo, sim.NewPlane(kind, n), p, seed)
	sim.EnableEcho(s, "H4")
	st := sim.StartPings(s, "H1", "H4", 0.5, 0.1, 20, 0)
	s.Run(installDelay + 6)
	return st.Dropped()
}

// TimelinePoint is one ping outcome in a Figure 11-15 timeline.
type TimelinePoint struct {
	Time float64
	Flow string
	OK   bool
}

// Timeline is a Figure 11-15 style result: ping outcomes over time for
// the correct and uncoordinated planes.
type Timeline struct {
	Title            string
	Correct, Uncoord []TimelinePoint
}

// String renders the timeline compactly.
func (tl *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", tl.Title)
	render := func(name string, pts []TimelinePoint) {
		fmt.Fprintf(&b, "-- %s --\n", name)
		for _, p := range pts {
			mark := "OK"
			if !p.OK {
				mark = "drop"
			}
			fmt.Fprintf(&b, "t=%5.2fs  %-8s %s\n", p.Time, p.Flow, mark)
		}
	}
	render("correct (event-driven consistent)", tl.Correct)
	render("uncoordinated", tl.Uncoord)
	return b.String()
}

// pingScript describes one scripted ping burst.
type pingScript struct {
	src, dst string
	start    float64
	count    int
	flow     string
}

// runTimeline executes the scripted pings under both planes.
func runTimeline(a apps.App, title string, echoHosts []string, scripts []pingScript, horizon float64) *Timeline {
	n, err := BuildNES(a)
	if err != nil {
		panic(err)
	}
	run := func(kind sim.PlaneKind) []TimelinePoint {
		p := sim.DefaultParams()
		p.InstallDelay = 2.0 // the few-seconds controller delay of Section 5.1
		s := sim.New(a.Topo, sim.NewPlane(kind, n), p, 1)
		for _, h := range echoHosts {
			sim.EnableEcho(s, h)
		}
		var stats []*sim.PingStats
		for i, sc := range scripts {
			stats = append(stats, sim.StartPings(s, sc.src, sc.dst, sc.start, 0.25, sc.count, 1000*(i+1)))
		}
		s.Run(horizon)
		var pts []TimelinePoint
		for i, st := range stats {
			for _, pg := range st.Pings {
				pts = append(pts, TimelinePoint{Time: pg.SentAt, Flow: scripts[i].flow, OK: pg.Replied})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
		return pts
	}
	return &Timeline{Title: title, Correct: run(sim.PlaneKindTagged), Uncoord: run(sim.PlaneKindUncoord)}
}

// Fig11 is the stateful firewall timeline.
func Fig11() *Timeline {
	return runTimeline(apps.Firewall(),
		"Figure 11: Stateful Firewall — correct vs uncoordinated",
		[]string{"H1", "H4"},
		[]pingScript{
			{src: "H4", dst: "H1", start: 0.5, count: 4, flow: "H4-H1"},
			{src: "H1", dst: "H4", start: 2.0, count: 4, flow: "H1-H4"},
			{src: "H4", dst: "H1", start: 3.5, count: 4, flow: "H4-H1"},
		}, 8)
}

// Fig12 is the learning switch: packets delivered to H1/H2 over time.
func Fig12() *Table {
	t := &Table{
		Title:   "Figure 12: Learning Switch — packets sent to H1 and H2",
		Columns: []string{"plane", "to_H1", "to_H2(flood)"},
	}
	a := apps.LearningSwitch()
	n, err := BuildNES(a)
	if err != nil {
		panic(err)
	}
	run := func(kind sim.PlaneKind) (int, int) {
		p := sim.DefaultParams()
		p.InstallDelay = 2.0
		s := sim.New(a.Topo, sim.NewPlane(kind, n), p, 1)
		sim.EnableEcho(s, "H1")
		sim.StartPings(s, "H4", "H1", 0.5, 0.25, 10, 0)
		s.Run(6)
		return len(s.DeliveredTo("H1")), len(s.DeliveredTo("H2"))
	}
	h1c, h2c := run(sim.PlaneKindTagged)
	h1u, h2u := run(sim.PlaneKindUncoord)
	t.Rows = append(t.Rows,
		[]string{"correct", fmt.Sprint(h1c), fmt.Sprint(h2c)},
		[]string{"uncoordinated", fmt.Sprint(h1u), fmt.Sprint(h2u)})
	return t
}

// Fig13 is the authentication timeline.
func Fig13() *Timeline {
	return runTimeline(apps.Authentication(),
		"Figure 13: Authentication — correct vs uncoordinated",
		[]string{"H1", "H2", "H3", "H4"},
		[]pingScript{
			{src: "H4", dst: "H3", start: 0.5, count: 2, flow: "H4-H3"},
			{src: "H4", dst: "H2", start: 1.5, count: 2, flow: "H4-H2"},
			{src: "H4", dst: "H1", start: 2.5, count: 2, flow: "H4-H1"},
			{src: "H4", dst: "H3", start: 3.5, count: 2, flow: "H4-H3"},
			{src: "H4", dst: "H2", start: 4.5, count: 2, flow: "H4-H2"},
			{src: "H4", dst: "H3", start: 5.5, count: 2, flow: "H4-H3"},
		}, 10)
}

// Fig14 is the bandwidth cap: successful pings under cap n=10.
func Fig14() *Table {
	t := &Table{
		Title:   "Figure 14: Bandwidth Cap (n=10) — successful H1-H4 pings",
		Columns: []string{"plane", "pings_sent", "pings_succeeded"},
	}
	a := apps.BandwidthCap(10)
	n, err := BuildNES(a)
	if err != nil {
		panic(err)
	}
	run := func(kind sim.PlaneKind) int {
		p := sim.DefaultParams()
		p.InstallDelay = 2.0
		s := sim.New(a.Topo, sim.NewPlane(kind, n), p, 1)
		sim.EnableEcho(s, "H4")
		st := sim.StartPings(s, "H1", "H4", 0.5, 0.25, 18, 0)
		s.Run(10)
		return st.Succeeded()
	}
	t.Rows = append(t.Rows,
		[]string{"correct", "18", fmt.Sprint(run(sim.PlaneKindTagged))},
		[]string{"uncoordinated", "18", fmt.Sprint(run(sim.PlaneKindUncoord))})
	return t
}

// Fig15 is the IDS timeline.
func Fig15() *Timeline {
	return runTimeline(apps.IDS(),
		"Figure 15: Intrusion Detection — correct vs uncoordinated",
		[]string{"H1", "H2", "H3", "H4"},
		[]pingScript{
			{src: "H4", dst: "H3", start: 0.5, count: 2, flow: "H4-H3"},
			{src: "H4", dst: "H2", start: 1.5, count: 2, flow: "H4-H2"},
			{src: "H4", dst: "H1", start: 2.5, count: 2, flow: "H4-H1"},
			{src: "H4", dst: "H3", start: 3.5, count: 2, flow: "H4-H3"},
			{src: "H4", dst: "H2", start: 4.5, count: 2, flow: "H4-H2"},
			{src: "H4", dst: "H3", start: 5.5, count: 2, flow: "H4-H3"},
		}, 10)
}

// Fig16a measures ring bandwidth vs diameter for the tagged plane against
// the untagged reference (the paper's unmodified OpenFlow switches).
func Fig16a(diameters []int) *Table {
	t := &Table{
		Title:   "Figure 16a: Ring bandwidth vs diameter",
		Columns: []string{"diameter", "ref_MBps", "tagged_MBps", "overhead_pct", "udp_loss_pct"},
	}
	rows := make([][]string, len(diameters))
	// Build the NESs on the caller's goroutine so a compile failure
	// panics where callers can recover; only the sims run on the pool.
	nesses := make([]*nes.NES, len(diameters))
	for i, d := range diameters {
		n, err := BuildNES(apps.Ring(d))
		if err != nil {
			panic(err)
		}
		nesses[i] = n
	}
	parallelFor(len(diameters), func(i int) {
		d := diameters[i]
		a := apps.Ring(d)
		n := nesses[i]
		run := func(tagBytes int, extraProc float64) (float64, float64) {
			pl := sim.NewTaggedPlane(n)
			pl.TagBytes = tagBytes
			pl.ExtraProc = extraProc
			p := sim.DefaultParams()
			p.SwitchProcTime = 120e-6 // software switches are CPU-bound
			s := sim.New(a.Topo, pl, p, 1)
			rate := 1.05 / p.SwitchProcTime // mild overload: small UDP loss, as in the paper
			b := sim.StartBulk(s, "H1", "H2", 0.1, 2.0, rate, 0)
			s.Run(3)
			return b.Goodput(), b.LossPct()
		}
		refGp, _ := run(0, 0)
		tagGp, loss := run(12, 0.05)
		rows[i] = []string{
			fmt.Sprint(d),
			fmt.Sprintf("%.2f", refGp/1e6),
			fmt.Sprintf("%.2f", tagGp/1e6),
			fmt.Sprintf("%.1f", 100*(refGp-tagGp)/refGp),
			fmt.Sprintf("%.1f", loss),
		}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

// Fig16b measures event-discovery time on the ring, with and without
// controller assistance.
func Fig16b(diameters []int) *Table {
	t := &Table{
		Title:   "Figure 16b: Ring event discovery time vs diameter",
		Columns: []string{"diameter", "max_s", "avg_s", "max_ctrl_s", "avg_ctrl_s"},
	}
	rows := make([][]string, len(diameters))
	nesses := make([]*nes.NES, len(diameters))
	for i, d := range diameters {
		n, err := BuildNES(apps.Ring(d))
		if err != nil {
			panic(err)
		}
		nesses[i] = n
	}
	parallelFor(len(diameters), func(i int) {
		d := diameters[i]
		row := []string{fmt.Sprint(d)}
		for _, assist := range []bool{false, true} {
			a := apps.Ring(d)
			n := nesses[i]
			p := sim.DefaultParams()
			p.CtrlAssist = assist
			pl := sim.NewTaggedPlane(n)
			s := sim.New(a.Topo, pl, p, 1)
			sim.EnableEcho(s, "H2")
			sim.StartPings(s, "H1", "H2", 0, 0.05, 400, 0)
			s.At(1.0, func() { s.Send("H1", netkat.Packet{apps.FieldSig: 1, sim.FieldSrc: apps.H(1)}) })
			s.Run(25)
			max, sum, cnt := 0.0, 0.0, 0
			for _, sw := range a.Topo.Switches {
				if at, ok := pl.DiscoveryTime(sw, 0); ok {
					delay := at - 1.0
					sum += delay
					cnt++
					if delay > max {
						max = delay
					}
				}
			}
			avg := 0.0
			if cnt > 0 {
				avg = sum / float64(cnt)
			}
			row = append(row, fmt.Sprintf("%.4f", max), fmt.Sprintf("%.4f", avg))
		}
		rows[i] = row
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

// Fig17 runs the rule-sharing heuristic on random configuration sets
// (64 configurations drawn from a 20-rule universe) and reports original
// vs optimized rule counts.
func Fig17(trials int, seed int64) *Table {
	t := &Table{
		Title:   "Figure 17: rule-sharing heuristic on 64 random configurations",
		Columns: []string{"trial", "original_rules", "heuristic_rules", "saved_pct"},
	}
	rng := rand.New(rand.NewSource(seed))
	totalOrig, totalOpt := 0, 0
	for trial := 0; trial < trials; trial++ {
		configs := make([]optimize.RuleSet, 64)
		for i := range configs {
			configs[i] = optimize.RuleSet{}
			for id := 0; id < 20; id++ {
				if rng.Intn(10) < 3 {
					configs[i][id] = true
				}
			}
		}
		orig := optimize.Naive(configs)
		g, err := optimize.Greedy(configs)
		if err != nil {
			panic(err)
		}
		opt := g.TotalRules()
		totalOrig += orig
		totalOpt += opt
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(trial), fmt.Sprint(orig), fmt.Sprint(opt),
			fmt.Sprintf("%.1f", 100*float64(orig-opt)/float64(orig)),
		})
	}
	t.Rows = append(t.Rows, []string{
		"avg", fmt.Sprint(totalOrig / trials), fmt.Sprint(totalOpt / trials),
		fmt.Sprintf("%.1f", 100*float64(totalOrig-totalOpt)/float64(totalOrig)),
	})
	return t
}

// TableCompile reproduces the in-text compilation table of Section 5.1:
// compile time and total rules for each application.
func TableCompile() *Table {
	t := &Table{
		Title:   "Section 5.1 (in text): compile time and rule counts",
		Columns: []string{"app", "states", "events", "compile_s", "rules"},
	}
	for _, a := range apps.All() {
		start := time.Now()
		e, err := ets.Build(a.Prog, a.Topo)
		if err != nil {
			panic(err)
		}
		n, err := e.ToNES()
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Seconds()
		rules := 0
		for _, c := range n.Configs {
			rules += c.Tables.TotalRules()
		}
		t.Rows = append(t.Rows, []string{
			a.Name, fmt.Sprint(len(e.Vertices)), fmt.Sprint(len(e.Events)),
			fmt.Sprintf("%.4f", elapsed), fmt.Sprint(rules),
		})
	}
	return t
}

// TableCompileScale runs the large-sweep compilation scenarios opened by
// the incremental sharded pipeline (bandwidth-cap-80/200 and IDS on a
// fat-tree fabric — all beyond the old 64-event tag or the old
// from-scratch compile budget), reporting the incremental engine's cache
// effectiveness next to the compile time. The sweep is the benchmark
// trajectory tracked across PRs via `experiments -json -only scale`
// (docs/BENCHMARKS.md).
func TableCompileScale() *Table {
	t := &Table{
		Title:   "Scale sweep: incremental ETS compilation beyond the paper's sizes",
		Columns: []string{"app", "states", "events", "compile_s", "rules", "seg_hit_pct", "strands", "fdd_nodes"},
	}
	for _, a := range append(apps.Scale(), apps.Scale10()...) {
		start := time.Now()
		// One worker: cache attribution is per-worker, so the hit rates and
		// store sizes in the tracked trajectory stay scheduling-independent
		// and comparable across machines (docs/BENCHMARKS.md). The Scale10
		// rows ride at the same worker count: the interned int-keyed memos
		// make even bandwidth-cap-2000 a seconds-scale single-worker build.
		e, stats, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 1})
		if err != nil {
			panic(err)
		}
		// Include the NES conversion so compile_s means the same thing as
		// in TableCompile's column.
		if _, err := e.ToNES(); err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Seconds()
		rules := 0
		for _, v := range e.Vertices {
			rules += v.Tables.TotalRules()
		}
		segTotal := stats.Cache.SegmentHits + stats.Cache.SegmentMisses
		segPct := 0.0
		if segTotal > 0 {
			segPct = 100 * float64(stats.Cache.SegmentHits) / float64(segTotal)
		}
		t.Rows = append(t.Rows, []string{
			a.Name, fmt.Sprint(stats.States), fmt.Sprint(stats.Events),
			fmt.Sprintf("%.4f", elapsed), fmt.Sprint(rules),
			fmt.Sprintf("%.1f", segPct), fmt.Sprint(stats.Cache.Strands), fmt.Sprint(stats.Cache.FDDNodes),
		})
	}
	return t
}

// Throughput measures dataplane forwarding rates: a seeded probe stream
// is pushed through each application's merged (all-configurations,
// version-guarded) tables, once through the compiled indexed matchers of
// internal/dataplane and once through the priority-ordered linear scan,
// and the packets/sec of both are reported with the speedup. probes sets
// the timed stream length (the stream repeats as needed).
//
// Two further columns capture *engine* overhead rather than raw matcher
// cost: a seeded injection workload is run to quiescence on a
// single-worker dataplane.Engine (flat interned packets, event
// detection, digest gossip, the deterministic merge) and the end-to-end
// switch-hop cost is reported as ns_hop_engine with its allocation rate
// as allocs_hop_engine (heap allocations per hop, including the
// ingress-boundary interning — the steady-state hop loop itself is
// allocation-free, see BenchmarkEngineHopLoop). One row per application;
// with -json this is the NDJSON throughput trajectory tracked across
// PRs (docs/BENCHMARKS.md).
//
// The ns_hop_obs and obs_ratio columns repeat the engine leg with the
// full observability layer attached — sharded metrics, 1/64 journey
// tracing, the flight recorder, and a live bus subscriber draining the
// feed — in the same process on the same workload. obs_ratio =
// ns_hop_obs / ns_hop_engine is the telemetry overhead CI gates at 1.05
// (docs/OBSERVABILITY.md). p50_hop_ns/p99_hop_ns come from that leg's
// hop-latency histogram via obs.Histogram.Quantile — the same estimator
// `netctl top` runs on /metrics scrape deltas.
func Throughput(probes int) *Table {
	t := &Table{
		Title:   "Dataplane throughput: compiled indexed matchers vs linear scan (merged tables), plus engine hop cost",
		Columns: []string{"app", "rules", "pps_scan", "pps_indexed", "speedup", "ns_hop_engine", "allocs_hop_engine", "ns_hop_obs", "obs_ratio", "p50_hop_ns", "p99_hop_ns"},
	}
	cases := apps.All()
	cases = append(cases, apps.BandwidthCap(40), apps.BandwidthCap(200), apps.IDSFatTree(4))
	for _, a := range cases {
		n, err := BuildNES(a)
		if err != nil {
			panic(err)
		}
		merged := dataplane.Merged(n)
		indexed := map[int]dataplane.Matcher{}
		scan := map[int]dataplane.Matcher{}
		rules := 0
		for _, sw := range merged.Switches() {
			indexed[sw] = dataplane.Compile(merged[sw])
			scan[sw] = dataplane.Scan{Table: merged[sw]}
			rules += merged[sw].Len()
		}
		lg := dataplane.NewLoadGen(n, a.Topo, 11)
		var stream []dataplane.Probe
		for _, p := range lg.Probes(4096) {
			if indexed[p.Switch] != nil {
				stream = append(stream, p)
			}
		}
		measure := func(ms map[int]dataplane.Matcher) float64 {
			var buf []flowtable.Output
			// Warm caches, then time.
			for i := 0; i < len(stream); i++ {
				p := &stream[i]
				buf = ms[p.Switch].Process(buf[:0], p.Fields, p.InPort, p.Tag)
			}
			start := time.Now()
			for i := 0; i < probes; i++ {
				p := &stream[i%len(stream)]
				buf = ms[p.Switch].Process(buf[:0], p.Fields, p.InPort, p.Tag)
			}
			return float64(probes) / time.Since(start).Seconds()
		}
		ppsScan := measure(scan)
		ppsIdx := measure(indexed)

		// Engine leg: inject a seeded workload round by round and run to
		// quiescence; ns and heap allocations per switch-hop, measured
		// over the whole run (ingress and egress boundaries included —
		// that is the engine overhead this column exists to track). The
		// same leg runs twice, bare and with full telemetry attached.
		engineLeg := func(o *obs.Obs) (nsHop, allocsHop float64) {
			eng := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 1, Obs: o})
			elg := dataplane.NewLoadGen(n, a.Topo, 17)
			batch := elg.Injections(256)
			runBatch := func() {
				if _, errs := eng.InjectBatch(batch); errs != nil {
					for _, err := range errs {
						if err != nil {
							panic(err)
						}
					}
				}
				if err := eng.Run(); err != nil {
					panic(err)
				}
			}
			runBatch() // warm rings, plans, buffers
			rounds := probes / (len(batch) * 16)
			if rounds < 2 {
				rounds = 2
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			h0 := eng.Processed()
			start := time.Now()
			for i := 0; i < rounds; i++ {
				runBatch()
			}
			elapsed := time.Since(start)
			hops := eng.Processed() - h0
			runtime.ReadMemStats(&m1)
			return float64(elapsed.Nanoseconds()) / float64(hops),
				float64(m1.Mallocs-m0.Mallocs) / float64(hops)
		}
		nsHop, allocsHop := engineLeg(nil)

		// Telemetry leg: the netd defaults (metrics on, 1/64 tracing, the
		// flight recorder, a subscriber actively draining the feed).
		o := &obs.Obs{
			Metrics:        obs.NewMetrics(1),
			Bus:            obs.NewBus(),
			Trace:          obs.NewTracer(obs.DefaultSample, 1),
			Flight:         obs.NewFlight(0, 1),
			DeliverySample: 16,
		}
		sub := o.Bus.Subscribe(1024)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range sub.C {
			}
		}()
		nsHopObs, _ := engineLeg(o)
		sub.Close()
		<-drained
		hopHist := o.Metrics.Histogram(obs.HistHopNs)

		t.Rows = append(t.Rows, []string{
			a.Name, fmt.Sprint(rules),
			fmt.Sprintf("%.0f", ppsScan), fmt.Sprintf("%.0f", ppsIdx),
			fmt.Sprintf("%.1f", ppsIdx/ppsScan),
			fmt.Sprintf("%.1f", nsHop), fmt.Sprintf("%.2f", allocsHop),
			fmt.Sprintf("%.1f", nsHopObs), fmt.Sprintf("%.3f", nsHopObs/nsHop),
			fmt.Sprintf("%.0f", hopHist.Quantile(0.50)), fmt.Sprintf("%.0f", hopHist.Quantile(0.99)),
		})
	}
	return t
}

// Trace demonstrates sampled packet journey tracing: a seeded workload
// runs with every packet traced, and each sampled journey is flattened
// to one row per hop record — the exact canonical order the engine
// stitches at merge time. `experiments -only trace` prints it; the same
// records stream live on netd's /watch feed (docs/OBSERVABILITY.md).
func Trace(packets int) *Table {
	t := &Table{
		Title:   "Sampled packet journeys (firewall, every injection traced)",
		Columns: []string{"trace", "inject_host", "gen", "seq", "kind", "switch", "rank", "out", "to_host"},
	}
	a := apps.Firewall()
	n, err := BuildNES(a)
	if err != nil {
		panic(err)
	}
	o := &obs.Obs{Metrics: obs.NewMetrics(2), Bus: obs.NewBus(), Trace: obs.NewTracer(1, 2)}
	sub := o.Bus.Subscribe(4096, obs.KindTrace)
	eng := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: 2, Obs: o})
	lg := dataplane.NewLoadGen(n, a.Topo, 23)
	for _, in := range lg.Injections(packets) {
		if err := eng.Inject(in.Host, in.Fields); err != nil {
			panic(err)
		}
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	sub.Close()
	for ev := range sub.C {
		j := ev.Trace
		if j == nil {
			continue
		}
		for _, h := range j.Hops {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(j.ID), j.Host, fmt.Sprint(h.Gen), fmt.Sprint(h.Seq),
				h.Kind, fmt.Sprint(h.Switch), fmt.Sprint(h.Rank), fmt.Sprint(h.Out), h.Host,
			})
		}
	}
	return t
}

// TableOptimize reproduces the in-text optimization results of
// Section 5.3: per-application rule counts before and after the trie
// heuristic (the paper's 18->16, 43->27, 72->46, 158->101, 152->133).
func TableOptimize() *Table {
	t := &Table{
		Title:   "Section 5.3 (in text): rule reduction per application",
		Columns: []string{"app", "original", "optimized", "saved_pct"},
	}
	for _, a := range apps.All() {
		e, err := ets.Build(a.Prog, a.Topo)
		if err != nil {
			panic(err)
		}
		var tabs []flowtable.Tables
		for _, v := range e.Vertices {
			tabs = append(tabs, v.Tables)
		}
		configs, _ := optimize.FromTables(tabs)
		orig := optimize.Naive(configs)
		g, err := optimize.Greedy(configs)
		if err != nil {
			panic(err)
		}
		opt := g.TotalRules()
		t.Rows = append(t.Rows, []string{
			a.Name, fmt.Sprint(orig), fmt.Sprint(opt),
			fmt.Sprintf("%.1f", 100*float64(orig-opt)/float64(orig)),
		})
	}
	return t
}
