package exp

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
)

// ScalePoint is one cell of the multi-core sweep: the engine-forward
// throughput of the bandwidth-cap-200 workload at one (GOMAXPROCS,
// workers) combination.
type ScalePoint struct {
	Procs   int     `json:"procs"`
	Workers int     `json:"workers"`
	PPS     float64 `json:"pps"`    // packets forwarded to completion per second
	NsHop   float64 `json:"ns_hop"` // wall ns per switch-hop
	Speedup float64 `json:"speedup"` // vs workers=1 at the same GOMAXPROCS
}

// ScaleResult is the multi-core scaling sweep plus its determinism
// witness: Hash fingerprints the stamped delivery sequence of a fixed
// reference workload, verified bit-identical at every worker count
// before any throughput is measured.
type ScaleResult struct {
	Table  *Table       `json:"-"`
	Points []ScalePoint `json:"points"`
	Hash   uint64       `json:"delivery_hash"`
}

// scaleHash fingerprints a stamped delivery sequence.
func scaleHash(ds []dataplane.Delivery) uint64 {
	h := fnv.New64a()
	for _, d := range ds {
		fmt.Fprintf(h, "%s|%s|%d.%d;", d.Host, d.Fields.Key(), d.Stamp.Epoch, d.Stamp.Version)
	}
	return h.Sum64()
}

// Scale is the multi-core throughput sweep (`experiments -only
// scale-cores`): batched engine forward on bandwidth-cap-200 across a
// GOMAXPROCS × workers matrix. Each point injects ~packets packets in
// 512-packet batches and runs to quiescence; pps and ns/hop come from
// the timed region only (the engine is warmed first). Before measuring,
// the delivery sequence of a fixed workload is checked bit-identical at
// every swept worker count — scaling that changed observable behavior
// would be a bug, not a result. Near-linear speedup needs real cores:
// on a single-CPU host every point degenerates to ~1×.
func Scale(packets int) (*ScaleResult, error) {
	a := apps.BandwidthCap(200)
	n, err := BuildNES(a)
	if err != nil {
		return nil, err
	}
	maxProcs := runtime.NumCPU()
	procsSet := []int{}
	for _, p := range []int{1, 2, 4, 8, 16} {
		if p <= maxProcs {
			procsSet = append(procsSet, p)
		}
	}
	if last := procsSet[len(procsSet)-1]; last != maxProcs {
		procsSet = append(procsSet, maxProcs)
	}
	workersSet := []int{1, 2, 4, 8, 16}

	// Determinism witness first, independent of GOMAXPROCS.
	res := &ScaleResult{}
	witness := func(workers int) uint64 {
		e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: workers})
		lg := dataplane.NewLoadGen(n, a.Topo, 23)
		for r := 0; r < 3; r++ {
			if _, errs := e.InjectBatch(lg.Injections(200)); errs != nil {
				panic(errs)
			}
			if err := e.Run(); err != nil {
				panic(err)
			}
		}
		return scaleHash(e.Deliveries())
	}
	res.Hash = witness(1)
	for _, w := range workersSet[1:] {
		if h := witness(w); h != res.Hash {
			return nil, fmt.Errorf("exp: scale sweep nondeterministic: workers=1 hash %x, workers=%d hash %x", res.Hash, w, h)
		}
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	t := &Table{
		Title: fmt.Sprintf("Multi-core engine forward: bandwidth-cap-200, batched ingress, ~%d packets/point (host has %d CPUs)",
			packets, maxProcs),
		Columns: []string{"procs", "workers", "pps", "ns_hop", "speedup_vs_w1"},
	}
	res.Table = t
	for _, procs := range procsSet {
		runtime.GOMAXPROCS(procs)
		var base float64
		for _, workers := range workersSet {
			e := dataplane.NewEngine(n, a.Topo, dataplane.Options{Workers: workers, DeliveryLog: 1 << 14})
			lg := dataplane.NewLoadGen(n, a.Topo, 23)
			batch := lg.Injections(512)
			round := func() {
				if _, errs := e.InjectBatch(batch); errs != nil {
					panic(errs)
				}
				if err := e.Run(); err != nil {
					panic(err)
				}
			}
			round() // warm rings, free lists, emission index
			h0 := e.Processed()
			injected := 0
			start := time.Now()
			for injected < packets {
				round()
				injected += len(batch)
			}
			elapsed := time.Since(start).Seconds()
			hops := e.Processed() - h0
			p := ScalePoint{
				Procs:   procs,
				Workers: workers,
				PPS:     float64(injected) / elapsed,
				NsHop:   elapsed * 1e9 / float64(hops),
			}
			if workers == 1 {
				base = p.PPS
			}
			p.Speedup = p.PPS / base
			res.Points = append(res.Points, p)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(procs), fmt.Sprint(workers),
				fmt.Sprintf("%.0f", p.PPS), fmt.Sprintf("%.1f", p.NsHop), fmt.Sprintf("%.2f", p.Speedup),
			})
		}
	}
	return res, nil
}
