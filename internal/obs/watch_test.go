package obs

import "testing"

// drainAlerts collects whatever alert events a subscriber has buffered.
func drainAlerts(sub *Sub) []Event {
	var out []Event
	for {
		select {
		case ev := <-sub.C:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestWatchdogQueueSaturation: raise on threshold, publish the
// transition once, refresh while hot, clear when the queue drains.
func TestWatchdogQueueSaturation(t *testing.T) {
	m := NewMetrics(0)
	b := NewBus()
	sub := b.Subscribe(16, KindAlert)
	defer sub.Close()
	w := NewWatchdog(WatchOptions{PendingMax: 10})

	m.SetGauge(GaugePending, 5)
	w.Check(1, m, b)
	if len(w.Active()) != 0 {
		t.Fatalf("below threshold: active = %v", w.Active())
	}

	m.SetGauge(GaugePending, 25)
	w.Check(2, m, b)
	act := w.Active()
	if len(act) != 1 || act[0].Name != AlertQueueSaturation {
		t.Fatalf("active = %v, want one queue_saturation", act)
	}
	if act[0].Value != 25 || act[0].Threshold != 10 || act[0].SinceGen != 2 {
		t.Errorf("alert = %+v, want value 25 threshold 10 since gen 2", act[0])
	}
	if got := m.Counter(CtrAlerts); got != 1 {
		t.Errorf("CtrAlerts = %d, want 1", got)
	}
	if got := m.Gauge(GaugeAlertsActive); got != 1 {
		t.Errorf("alerts_active = %d, want 1", got)
	}

	// Still firing: the value refreshes, but no second raise is
	// published or counted.
	m.SetGauge(GaugePending, 40)
	w.Check(3, m, b)
	if act := w.Active(); act[0].Value != 40 || act[0].SinceGen != 2 {
		t.Errorf("refreshed alert = %+v, want value 40, since_gen still 2", act[0])
	}
	if got := m.Counter(CtrAlerts); got != 1 {
		t.Errorf("CtrAlerts after refresh = %d, want still 1", got)
	}

	m.SetGauge(GaugePending, 0)
	w.Check(4, m, b)
	if len(w.Active()) != 0 {
		t.Fatalf("after drain: active = %v, want none", w.Active())
	}
	if got := m.Gauge(GaugeAlertsActive); got != 0 {
		t.Errorf("alerts_active = %d, want 0", got)
	}
	if w.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", w.Fired())
	}

	evs := drainAlerts(sub)
	if len(evs) != 2 {
		t.Fatalf("published %d alert events, want raise+clear", len(evs))
	}
	if evs[0].Phase != "raise" || evs[0].Note != AlertQueueSaturation || evs[0].Alert == nil {
		t.Errorf("event 0 = %+v, want the raise", evs[0])
	}
	if evs[1].Phase != "clear" || evs[1].Alert.SinceGen != 2 {
		t.Errorf("event 1 = %+v, want the clear carrying since_gen 2", evs[1])
	}
}

// TestWatchdogDropRate: windowed, not cumulative — a burst raises, a
// quiet window clears, regardless of lifetime totals.
func TestWatchdogDropRate(t *testing.T) {
	m := NewMetrics(0)
	w := NewWatchdog(WatchOptions{DropWindowMax: 10})

	m.SetGauge(GaugeWatchDropped, 5)
	w.Check(1, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("5 drops/window: active = %v", w.Active())
	}
	// Drops accrue across all three shed points: bus, trace ring,
	// truncated journeys.
	m.SetGauge(GaugeWatchDropped, 9)
	m.Add(CtrTraceRecDrops, 4)
	m.Add(CtrTracesTruncated, 3)
	w.Check(2, m, nil)
	act := w.Active()
	if len(act) != 1 || act[0].Name != AlertDropRate || act[0].Value != 11 {
		t.Fatalf("active = %v, want drop_rate at 11 (4+4+3 this window)", act)
	}
	// Quiet window: cumulative totals unchanged -> delta 0 -> clear.
	w.Check(3, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("quiet window: active = %v, want none", w.Active())
	}
}

// TestWatchdogSwapDrainOverrun: measured in generations observed
// draining, cleared the boundary the drain finishes.
func TestWatchdogSwapDrainOverrun(t *testing.T) {
	m := NewMetrics(0)
	w := NewWatchdog(WatchOptions{SwapDrainGens: 10})

	m.SetGauge(GaugeSwapDraining, 1)
	w.Check(100, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("drain just started: active = %v", w.Active())
	}
	w.Check(105, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("5 gens in: active = %v", w.Active())
	}
	w.Check(111, m, nil)
	act := w.Active()
	if len(act) != 1 || act[0].Name != AlertSwapDrainOverrun || act[0].Value != 11 {
		t.Fatalf("active = %v, want swap_drain_overrun spanning 11 gens", act)
	}
	m.SetGauge(GaugeSwapDraining, 0)
	w.Check(112, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("drain finished: active = %v", w.Active())
	}
	// A fresh drain restarts the span from its own first boundary.
	m.SetGauge(GaugeSwapDraining, 1)
	w.Check(200, m, nil)
	w.Check(205, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("second drain, 5 gens in: active = %v", w.Active())
	}
}

// TestWatchdogTTLSpike: windowed TTL-drop delta.
func TestWatchdogTTLSpike(t *testing.T) {
	m := NewMetrics(0)
	w := NewWatchdog(WatchOptions{TTLWindowMax: 100})

	m.Add(CtrTTLDrops, 50)
	w.Check(1, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("50 TTL drops/window: active = %v", w.Active())
	}
	m.Add(CtrTTLDrops, 150)
	w.Check(2, m, nil)
	act := w.Active()
	if len(act) != 1 || act[0].Name != AlertTTLSpike || act[0].Value != 150 {
		t.Fatalf("active = %v, want ttl_spike at 150", act)
	}
	w.Check(3, m, nil)
	if len(w.Active()) != 0 {
		t.Fatalf("quiet window: active = %v", w.Active())
	}
}

// TestWatchdogDefaults: zero options take the documented defaults, and
// a nil-metrics Check is a no-op.
func TestWatchdogDefaults(t *testing.T) {
	w := NewWatchdog(WatchOptions{})
	o := w.Options()
	if o.PendingMax != 32768 || o.DropWindowMax != 256 || o.SwapDrainGens != 65536 || o.TTLWindowMax != 512 {
		t.Errorf("defaults = %+v", o)
	}
	w.Check(1, nil, nil) // must not panic
	if len(w.Active()) != 0 || w.Fired() != 0 {
		t.Error("nil-metrics Check changed state")
	}
}
