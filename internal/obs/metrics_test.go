package obs

import (
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11}, {1 << 39, 39}, {1<<62 + 1, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		// The defining property: v fits under its bucket's bound, and (for
		// v > 1 below the clamp) not under the previous one.
		b := bucketOf(c.v)
		if c.v > 0 && c.v <= 1<<62 && c.v > BucketBound(b) {
			t.Errorf("bucketOf(%d) = %d but bound %d < v", c.v, b, BucketBound(b))
		}
	}
}

func TestShardFoldAndDirect(t *testing.T) {
	m := NewMetrics(2)
	m.Shard(0).Inc(CtrHops)
	m.Shard(0).Add(CtrHops, 9)
	m.Shard(1).Add(CtrHops, 5)
	m.Shard(1).Observe(HistHopNs, 100)
	m.Shard(0).ObserveN(HistHopNs, 100, 3)
	if got := m.Counter(CtrHops); got != 0 {
		t.Fatalf("counter visible before fold: %d", got)
	}
	m.Fold()
	if got := m.Counter(CtrHops); got != 15 {
		t.Fatalf("CtrHops = %d, want 15", got)
	}
	if got := m.HistCount(HistHopNs); got != 4 {
		t.Fatalf("HistHopNs count = %d, want 4", got)
	}
	if got := m.HistSum(HistHopNs); got != 400 {
		t.Fatalf("HistHopNs sum = %d, want 400", got)
	}
	// Folding is a delta publish: a second fold adds nothing.
	m.Fold()
	if got := m.Counter(CtrHops); got != 15 {
		t.Fatalf("second fold changed CtrHops to %d", got)
	}
	// Direct writes compose with folded ones.
	m.Add(CtrHops, 5)
	if got := m.Counter(CtrHops); got != 20 {
		t.Fatalf("direct Add: CtrHops = %d, want 20", got)
	}
	m.SetGauge(GaugePending, 7)
	if got := m.Gauge(GaugePending); got != 7 {
		t.Fatalf("GaugePending = %d, want 7", got)
	}
}

func TestShardOpsDoNotAllocate(t *testing.T) {
	m := NewMetrics(1)
	s := m.Shard(0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Inc(CtrHops)
		s.Add(CtrDeliveries, 3)
		s.Observe(HistHopNs, 120)
		s.ObserveN(HistDeliveryNs, 4096, 7)
	}); n != 0 {
		t.Fatalf("shard hot-path ops allocate %.3f times per run; want 0", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics(1)
	m.Add(CtrHops, 42)
	m.SetGauge(GaugeEpoch, 3)
	m.Observe(HistHopNs, 100) // bucket 7 (le 128)
	m.Observe(HistHopNs, 100)
	m.Observe(HistHopNs, 1)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE eventnet_hops_total counter",
		"eventnet_hops_total 42",
		"# TYPE eventnet_epoch gauge",
		"eventnet_epoch 3",
		"# TYPE eventnet_hop_ns histogram",
		"eventnet_hop_ns_bucket{le=\"1\"} 1",
		"eventnet_hop_ns_bucket{le=\"128\"} 3",
		"eventnet_hop_ns_bucket{le=\"+Inf\"} 3",
		"eventnet_hop_ns_sum 201",
		"eventnet_hop_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cumulative buckets never decrease.
	if strings.Contains(out, "le=\"64\"} 3") && !strings.Contains(out, "le=\"128\"} 3") {
		t.Error("cumulative bucket ordering broken")
	}
}

func TestEnsureShardsKeepsIdentity(t *testing.T) {
	m := NewMetrics(1)
	s0 := m.Shard(0)
	s0.Inc(CtrHops)
	m.EnsureShards(4)
	if m.Shard(0) != s0 {
		t.Fatal("EnsureShards replaced an existing shard")
	}
	m.Fold()
	if got := m.Counter(CtrHops); got != 1 {
		t.Fatalf("CtrHops = %d after growth, want 1", got)
	}
}

func TestObsEnabled(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil Obs reports enabled")
	}
	if (&Obs{}).Enabled() {
		t.Fatal("empty Obs reports enabled")
	}
	if !(&Obs{Metrics: NewMetrics(1)}).Enabled() {
		t.Fatal("metrics-only Obs reports disabled")
	}
}
