package obs

import (
	"encoding/json"
	"testing"
)

// TestFlightShardOverflow: the ring keeps the most recent records,
// counts evictions, and tracks the newest evicted generation (the
// truncation watermark).
func TestFlightShardOverflow(t *testing.T) {
	f := NewFlight(4, 1)
	s := f.Shard(0)
	for g := int64(1); g <= 10; g++ {
		s.Add(FlightRec{Kind: FlightDeliver, Gen: g, Seq: g})
	}
	if s.evicted != 6 {
		t.Errorf("evicted = %d, want 6", s.evicted)
	}
	if s.lastEvictGen != 6 {
		t.Errorf("lastEvictGen = %d, want 6 (the newest overwritten record)", s.lastEvictGen)
	}
	if f.Evicted() != 6 {
		t.Errorf("Flight.Evicted = %d, want 6", f.Evicted())
	}
	d := f.Dump()
	if !d.Truncated || d.TruncatedGen != 6 {
		t.Fatalf("dump truncation = (%v, gen %d), want (true, gen 6)", d.Truncated, d.TruncatedGen)
	}
	if len(d.Records) != 4 {
		t.Fatalf("dump has %d records, want the 4 surviving (gens 7-10)", len(d.Records))
	}
	for i, r := range d.Records {
		if want := int64(7 + i); r.Gen != want {
			t.Errorf("record %d: gen %d, want %d", i, r.Gen, want)
		}
	}
	if d.Evicted != 6 {
		t.Errorf("dump Evicted = %d, want 6", d.Evicted)
	}
}

// TestFlightDumpCutoffSpansShards: one overflowing shard truncates the
// *whole* dump at its watermark — records other shards still hold below
// the cutoff are discarded and counted, so the dump is a complete
// suffix, never a ragged sample.
func TestFlightDumpCutoffSpansShards(t *testing.T) {
	f := NewFlight(4, 2)
	a, b := f.Shard(0), f.Shard(1)
	for g := int64(1); g <= 8; g++ {
		a.Add(FlightRec{Kind: FlightDeliver, Gen: g, Seq: g})
	}
	// Shard b never overflows but holds old generations.
	b.Add(FlightRec{Kind: FlightDeliver, Gen: 2, Seq: 100})
	b.Add(FlightRec{Kind: FlightDeliver, Gen: 7, Seq: 101})
	d := f.Dump()
	if !d.Truncated || d.TruncatedGen != 4 {
		t.Fatalf("truncation = (%v, gen %d), want (true, gen 4)", d.Truncated, d.TruncatedGen)
	}
	for _, r := range d.Records {
		if r.Gen <= 4 {
			t.Errorf("record at gen %d survived below the cutoff", r.Gen)
		}
	}
	// 4 evicted by ring overwrite + shard a's gen<=4 survivors... all
	// overwritten already; shard b contributes its gen-2 record to the
	// cutoff count.
	if d.Evicted != 5 {
		t.Errorf("Evicted = %d, want 5 (4 overwritten + 1 cut)", d.Evicted)
	}
}

// TestFlightSerial: serial records get a monotone Branch tiebreak, and
// a negative Gen (the controller's stage phase has no engine generation
// in hand) is backfilled with the newest generation seen, keeping ring
// writes nondecreasing in Gen.
func TestFlightSerial(t *testing.T) {
	f := NewFlight(8, 0)
	f.Serial(FlightRec{Kind: FlightSwap, Phase: "flip", Gen: 5})
	f.Serial(FlightRec{Kind: FlightSwap, Phase: "stage", Gen: -1})
	f.Serial(FlightRec{Kind: FlightStats, Gen: 7})
	d := f.Dump()
	if len(d.Records) != 3 {
		t.Fatalf("dump has %d records, want 3", len(d.Records))
	}
	// Canonical order: gen 5 flip, gen 5 stage (backfilled), gen 7 stats.
	if d.Records[0].Phase != "flip" || d.Records[0].Gen != 5 {
		t.Errorf("record 0 = %+v, want the gen-5 flip", d.Records[0])
	}
	if d.Records[1].Phase != "stage" || d.Records[1].Gen != 5 {
		t.Errorf("record 1 = %+v, want the stage backfilled to gen 5", d.Records[1])
	}
	if d.Records[0].Branch >= d.Records[1].Branch {
		t.Errorf("serial Branch not monotone: %d then %d", d.Records[0].Branch, d.Records[1].Branch)
	}
	if d.Records[2].Kind != "stats" || d.Records[2].Gen != 7 {
		t.Errorf("record 2 = %+v, want the gen-7 stats", d.Records[2])
	}
}

// TestFlightDumpRepeatable: dumping does not consume the recorder.
func TestFlightDumpRepeatable(t *testing.T) {
	f := NewFlight(8, 1)
	f.Shard(0).Add(FlightRec{Kind: FlightDetect, Gen: 1, Seq: 1, Bits: "\x05"})
	a, _ := json.Marshal(f.Dump())
	b, _ := json.Marshal(f.Dump())
	if string(a) != string(b) {
		t.Fatalf("repeated dumps differ:\n%s\n%s", a, b)
	}
}

// TestFlightBitsetDecode: detection records decode the raw nes.Set
// bitset into ascending event IDs on the wire.
func TestFlightBitsetDecode(t *testing.T) {
	f := NewFlight(8, 1)
	f.Shard(0).Add(FlightRec{Kind: FlightDetect, Gen: 1, Seq: 1, Bits: "\x05\x01"}) // bits 0,2,8
	d := f.Dump()
	got := d.Records[0].Events
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("Events = %v, want [0 2 8]", got)
	}
}

// TestFlightShardAddDoesNotAllocate: the hot-path write contract. The
// hop loop stays zero-alloc with the recorder on only if Add is a plain
// store.
func TestFlightShardAddDoesNotAllocate(t *testing.T) {
	f := NewFlight(64, 1)
	s := f.Shard(0)
	r := FlightRec{Kind: FlightDeliver, Gen: 1, Seq: 2, Host: "H1"}
	if n := testing.AllocsPerRun(1000, func() { s.Add(r) }); n != 0 {
		t.Fatalf("FlightShard.Add allocates %.1f/op, want 0", n)
	}
}

// TestFlightDefaults: capacity defaulting and shard growth.
func TestFlightDefaults(t *testing.T) {
	f := NewFlight(0, 0)
	if f.Cap() != DefaultFlightCap {
		t.Errorf("Cap = %d, want DefaultFlightCap", f.Cap())
	}
	f.EnsureShards(3)
	if f.Shard(2) == nil {
		t.Error("EnsureShards(3) did not create shard 2")
	}
	if d := f.Dump(); len(d.Records) != 0 || d.Truncated {
		t.Errorf("fresh recorder dumps %+v, want empty untruncated", d)
	}
}
