package obs

import (
	"slices"
	"sync"
)

// Flight recorder: bounded per-worker rings of full-fidelity recent
// history — every delivery with its stamp, every detection, every swap
// phase, and the chunk-boundary stats deltas — always on, overwritten
// circularly so the moments *before* an anomaly are recoverable after
// the fact (a wedged swap, a chaos violation, a SIGQUIT).
//
// The write contract is the metrics Shard contract: FlightShard.Add is
// a plain store into a preallocated ring, written by exactly one worker
// goroutine between boundaries, so the hop loop stays zero-alloc with
// the recorder enabled (CI-pinned by TestEngineHopLoopZeroAllocObs).
// Serial engine contexts (swap flips, boundary stats) and the
// controller's stage phase write through a mutex-guarded serial ring
// instead — they are off the hot path, and the stage record arrives
// from the Swap caller's goroutine.
//
// Dump stitches every ring into the canonical (Gen, Seq, Kind, Branch)
// order — the same total order the delivery merge and the tracer use —
// and normalizes ring overflow to a *generation cutoff*: because each
// ring is written in nondecreasing generation order, every record newer
// than the newest evicted generation (across all rings) is provably
// still present in its ring, so the dump after the cutoff is a
// complete, execution-deterministic suffix of history. Records carry no
// wall-clock stamps, so equal executions dump bit-identically at any
// worker count (TestEngineFlightDeterminism).

// FlightKind classifies one flight record. The numeric order is the
// canonical-sort tiebreak at equal (Gen, Seq): a detection sorts before
// the delivery the same consumed packet produced, and serial records
// (swap, stats) sort after the generation's packet records.
type FlightKind uint8

const (
	FlightDetect FlightKind = iota
	FlightDeliver
	FlightSwap
	FlightStats
)

var flightKindNames = [...]string{
	FlightDetect:  "detect",
	FlightDeliver: "deliver",
	FlightSwap:    "swap",
	FlightStats:   "stats",
}

// String returns the record kind's wire name.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown"
}

// FlightRec is one flat flight record, shaped for a plain-store ring
// write on the hop loop (the only pointers are string headers, copied
// without allocating, and the Stats pointer, set only by serial-context
// records). It deliberately carries no timestamp: flight dumps must be
// bit-identical across equal executions, and wall-clock stamps are the
// one field that never is.
type FlightRec struct {
	Kind    FlightKind
	Switch  int32
	Branch  int32
	From    int32 // FlightSwap: old epoch
	To      int32 // FlightSwap: new epoch
	Epoch   int32
	Version int32
	Gen     int64
	Seq     int64
	Host    string      // FlightDeliver: destination host
	Phase   string      // FlightSwap: stage|flip|drain|retire
	Bits    string      // FlightDetect: the raw nes.Set bitset
	Stats   *StatsDelta // FlightStats only (serial context)
}

// FlightShard is one worker's circular record ring. Unlike a TraceShard
// (which drops new records on overflow, because a journey missing its
// oldest hops can never be stitched), a flight ring overwrites its
// *oldest* records: the recorder's job is to retain the most recent
// history at the moment someone asks for it.
type FlightShard struct {
	recs    []FlightRec
	n       uint64 // total records ever written
	evicted int64  // records overwritten
	// lastEvictGen is the generation of the newest overwritten record.
	// Ring writes arrive in nondecreasing generation order (each worker's
	// gen only advances), so this is the shard's truncation watermark:
	// every record with Gen > lastEvictGen is still in the ring.
	lastEvictGen int64
}

// Add appends a record, overwriting the oldest on overflow. A plain
// store plus ring arithmetic; never allocates.
func (s *FlightShard) Add(r FlightRec) {
	i := int(s.n % uint64(len(s.recs)))
	if s.n >= uint64(len(s.recs)) {
		s.evicted++
		s.lastEvictGen = s.recs[i].Gen
	}
	s.recs[i] = r
	s.n++
}

// DefaultFlightCap is the per-ring record capacity default.
const DefaultFlightCap = 4096

// Flight is the recorder: per-worker rings written with plain stores on
// the hot path, plus one mutex-guarded serial ring for boundary and
// controller records. Dump requires worker-ring writers to be quiescent
// (the engine dumps inside Do); the serial ring is safe at any time.
type Flight struct {
	cap    int
	shards []*FlightShard

	mu        sync.Mutex // guards the serial ring and its counters
	serial    FlightShard
	serialSeq int32 // deterministic Branch tiebreak for serial records
	serialGen int64 // newest generation seen by the serial ring
}

// NewFlight builds a recorder with per-ring capacity capPerRing
// (<=0 uses DefaultFlightCap) and `workers` preallocated worker rings.
func NewFlight(capPerRing, workers int) *Flight {
	if capPerRing <= 0 {
		capPerRing = DefaultFlightCap
	}
	f := &Flight{cap: capPerRing}
	f.serial.recs = make([]FlightRec, capPerRing)
	f.EnsureShards(workers)
	return f
}

// Cap returns the per-ring record capacity.
func (f *Flight) Cap() int { return f.cap }

// EnsureShards grows the worker-ring set to at least n.
func (f *Flight) EnsureShards(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.shards) < n {
		f.shards = append(f.shards, &FlightShard{recs: make([]FlightRec, f.cap)})
	}
}

// Shard returns worker i's ring (EnsureShards must have covered i).
func (f *Flight) Shard(i int) *FlightShard {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[i]
}

// Evicted returns the total records overwritten across every ring.
// Worker rings are read without synchronization, so call only where
// ring writers are quiescent (the engine's boundary, or Do).
func (f *Flight) Evicted() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.serial.evicted
	for _, s := range f.shards {
		n += s.evicted
	}
	return n
}

// Serial records from a serial context: engine boundaries (flips,
// retires, stats deltas) and the controller's stage phase. The record's
// Branch is overwritten with a monotone counter, giving simultaneous
// serial records a deterministic canonical-sort tiebreak. A negative
// Gen (a writer with no engine generation in hand, like the
// controller's stage phase) is backfilled with the newest generation
// the ring has seen, which also keeps the ring's writes nondecreasing
// in Gen — the invariant the truncation watermark rests on.
func (f *Flight) Serial(r FlightRec) {
	f.mu.Lock()
	f.serialSeq++
	r.Branch = f.serialSeq
	if r.Gen < 0 {
		r.Gen = f.serialGen
	} else if r.Gen > f.serialGen {
		f.serialGen = r.Gen
	}
	f.serial.Add(r)
	f.mu.Unlock()
}

// FlightWireRec is one flight record in dump (wire) form.
type FlightWireRec struct {
	Kind    string      `json:"kind"`
	Gen     int64       `json:"gen"`
	Seq     int64       `json:"seq"`
	Branch  int32       `json:"branch"`
	Switch  int32       `json:"switch,omitempty"`
	Epoch   int32       `json:"epoch"`
	Version int32       `json:"version,omitempty"`
	Host    string      `json:"host,omitempty"`
	Events  []int       `json:"events,omitempty"`
	Phase   string      `json:"phase,omitempty"`
	From    int32       `json:"from,omitempty"`
	To      int32       `json:"to,omitempty"`
	Stats   *StatsDelta `json:"stats,omitempty"`
}

// FlightDump is the stitched recorder state. When any ring overflowed,
// Truncated is set, TruncatedGen is the cutoff generation, and Records
// holds only the complete suffix with Gen > TruncatedGen; Evicted
// counts every record lost to overwriting or the cutoff filter.
type FlightDump struct {
	RingCap      int             `json:"ring_cap"`
	Records      []FlightWireRec `json:"records"`
	Truncated    bool            `json:"truncated,omitempty"`
	TruncatedGen int64           `json:"truncated_gen,omitempty"`
	Evicted      int64           `json:"evicted,omitempty"`
}

// Dump stitches every ring into canonical order. The caller must
// guarantee worker-ring writers are quiescent (the engine runs Dump at
// a barrier via Do); Serial writers need no coordination. The recorder
// is not consumed: dumping is repeatable and never clears a ring.
func (f *Flight) Dump() *FlightDump {
	f.mu.Lock()
	shards := make([]*FlightShard, 0, len(f.shards)+1)
	shards = append(shards, f.shards...)
	shards = append(shards, &f.serial)

	var recs []FlightRec
	evicted := int64(0)
	cutGen := int64(-1)
	truncated := false
	for _, s := range shards {
		n := int(s.n)
		if n > len(s.recs) {
			n = len(s.recs)
		}
		recs = append(recs, s.recs[:n]...)
		if s.evicted > 0 {
			truncated = true
			evicted += s.evicted
			if s.lastEvictGen > cutGen {
				cutGen = s.lastEvictGen
			}
		}
	}
	f.mu.Unlock()

	d := &FlightDump{RingCap: f.cap}
	if truncated {
		// Apply the generation cutoff: a shard that overflowed retains an
		// unknown prefix of each generation at or below its watermark, but
		// every generation above the *maximum* watermark is complete in
		// every shard. Records at or below it are discarded (and counted)
		// so the dump is a deterministic suffix, not a ragged sample.
		kept := recs[:0]
		for _, r := range recs {
			if r.Gen > cutGen {
				kept = append(kept, r)
			} else {
				evicted++
			}
		}
		recs = kept
		d.Truncated, d.TruncatedGen, d.Evicted = true, cutGen, evicted
	}
	slices.SortFunc(recs, func(a, b FlightRec) int {
		if a.Gen != b.Gen {
			return int(a.Gen - b.Gen)
		}
		if a.Seq != b.Seq {
			return int(a.Seq - b.Seq)
		}
		if a.Kind != b.Kind {
			return int(a.Kind) - int(b.Kind)
		}
		return int(a.Branch - b.Branch)
	})
	d.Records = make([]FlightWireRec, len(recs))
	for i := range recs {
		r := &recs[i]
		d.Records[i] = FlightWireRec{
			Kind: r.Kind.String(), Gen: r.Gen, Seq: r.Seq, Branch: r.Branch,
			Switch: r.Switch, Epoch: r.Epoch, Version: r.Version,
			Host: r.Host, Events: bitsetElems(r.Bits), Phase: r.Phase,
			From: r.From, To: r.To, Stats: r.Stats,
		}
	}
	return d
}

// bitsetElems decodes a little-endian bitset (the nes.Set encoding: 8
// events per byte) into ascending event IDs. Kept local so obs stays
// dependency-free; the encoding is pinned by internal/nes.
func bitsetElems(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for i := 0; i < len(s); i++ {
		b := s[i]
		for j := 0; j < 8; j++ {
			if b&(1<<uint(j)) != 0 {
				out = append(out, i*8+j)
			}
		}
	}
	return out
}
