package obs

import "testing"

func TestTracerSamplingCadence(t *testing.T) {
	tr := NewTracer(4, 1)
	var ids []int32
	for i := 0; i < 16; i++ {
		if id := tr.Sample("H1", int64(i), 0, 0, 0); id != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("sampled %d of 16 at rate 1/4, want 4", len(ids))
	}
	for i, id := range ids {
		if id != int32(i+1) {
			t.Fatalf("trace IDs not dense: %v", ids)
		}
	}
}

// TestTracerStitchFanOut drives a fan-out journey through the active
// count: one injection forwards into two copies, one is delivered, one
// is dropped — the journey completes exactly when both are consumed.
func TestTracerStitchFanOut(t *testing.T) {
	tr := NewTracer(1, 2)
	id := tr.Sample("H1", 1, 0, 0, 0)
	if id == 0 {
		t.Fatal("rate-1 tracer declined to sample")
	}
	// Hop 1 (worker 0): consume seq 1, emit 2 copies.
	tr.Shard(0).Add(HopRec{Trace: id, Kind: HopForward, Switch: 1, Rank: 0, Out: 2, Gen: 1, Seq: 1})
	done, drops := tr.Flush(1)
	if len(done) != 0 || drops != 0 {
		t.Fatalf("journey completed early: %v", done)
	}
	// Hop 2, split across workers: copy seq 2 delivered (consuming rec
	// Out=0 plus an informational deliver rec), copy seq 3 dropped.
	tr.Shard(1).Add(HopRec{Trace: id, Kind: HopForward, Switch: 2, Rank: 1, Out: 0, Gen: 2, Seq: 2})
	tr.Shard(1).Add(HopRec{Trace: id, Kind: HopDeliver, Switch: 2, Host: "H2", Gen: 2, Seq: 2})
	tr.Shard(0).Add(HopRec{Trace: id, Kind: HopRuleDrop, Switch: 3, Rank: -1, Gen: 2, Seq: 3})
	done, _ = tr.Flush(2)
	if len(done) != 1 {
		t.Fatalf("got %d journeys, want 1", len(done))
	}
	j := done[0]
	if j.Truncated {
		t.Fatal("converged journey marked truncated")
	}
	if len(j.Hops) != 4 {
		t.Fatalf("journey has %d hops, want 4", len(j.Hops))
	}
	// Canonical order: (gen, seq, kind, branch).
	wantKinds := []string{"forward", "forward", "deliver", "drop"}
	for i, h := range j.Hops {
		if h.Kind != wantKinds[i] {
			t.Fatalf("hop %d kind %q, want %q (%+v)", i, h.Kind, wantKinds[i], j.Hops)
		}
	}
	if tr.Pending() != 0 {
		t.Fatalf("%d journeys still pending", tr.Pending())
	}
}

func TestTracerRingOverflowCountsAndAgesOut(t *testing.T) {
	tr := NewTracer(1, 1)
	id := tr.Sample("H1", 1, 0, 0, 0)
	s := tr.Shard(0)
	// Overflow the ring: capacity + 10 forward records that keep the
	// journey alive.
	for i := 0; i < traceRingCap+10; i++ {
		s.Add(HopRec{Trace: id, Kind: HopForward, Out: 1, Gen: 1, Seq: int64(i + 1)})
	}
	done, drops := tr.Flush(1)
	if drops != 10 {
		t.Fatalf("recorded %d ring drops, want 10", drops)
	}
	if len(done) != 0 {
		t.Fatal("journey with lost records converged")
	}
	// It never converges; the stale sweep evicts it as truncated.
	done, _ = tr.Flush(1 + staleGens + 1)
	if len(done) != 1 || !done[0].Truncated {
		t.Fatalf("aged-out journey not emitted truncated: %v", done)
	}
}

func TestTracerPendingBound(t *testing.T) {
	tr := NewTracer(1, 1)
	for i := 0; i < maxPending+50; i++ {
		tr.Sample("H1", int64(i), 0, 0, 0)
	}
	if tr.Pending() != maxPending {
		t.Fatalf("pending = %d, want capped at %d", tr.Pending(), maxPending)
	}
}

func TestTraceShardAddDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1, 1)
	s := tr.Shard(0)
	rec := HopRec{Trace: 1, Kind: HopForward, Switch: 2, Out: 1, Gen: 3, Seq: 4, Host: "H1"}
	if n := testing.AllocsPerRun(1000, func() { s.Add(rec); s.n = 0 }); n != 0 {
		t.Fatalf("TraceShard.Add allocates %.3f times; want 0", n)
	}
}
