package obs

// Histogram is a point-in-time snapshot of one histogram's folded
// state, in the shared power-of-two bucket layout (bucket 0 counts
// observations <= 1; bucket i>0 counts (2^(i-1), 2^i]). Snapshots are
// plain values: subtract two to get a windowed histogram, estimate
// quantiles with Quantile — the shared estimator behind `netctl top`
// and the exp.Throughput p50/p99 columns.
type Histogram struct {
	Count [HistBuckets]int64
	Sum   int64
}

// Histogram snapshots histogram h's folded totals.
func (m *Metrics) Histogram(h Hist) Histogram {
	var out Histogram
	for b := 0; b < HistBuckets; b++ {
		out.Count[b] = m.hist[h].count[b].Load()
	}
	out.Sum = m.hist[h].sum.Load()
	return out
}

// Total returns the snapshot's observation count.
func (h Histogram) Total() int64 {
	var n int64
	for b := 0; b < HistBuckets; b++ {
		n += h.Count[b]
	}
	return n
}

// Sub returns the windowed histogram h - prev: the observations that
// arrived between the two snapshots.
func (h Histogram) Sub(prev Histogram) Histogram {
	out := Histogram{Sum: h.Sum - prev.Sum}
	for b := 0; b < HistBuckets; b++ {
		out.Count[b] = h.Count[b] - prev.Count[b]
	}
	return out
}

// Mean returns the snapshot's arithmetic mean (0 when empty). Unlike
// Quantile it is exact: the sum is tracked, not bucketed.
func (h Histogram) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Sum) / float64(t)
}

// Quantile estimates the p-th quantile (p in [0,1]) by log-linear
// interpolation: the target rank's bucket is found on the cumulative
// counts, then the estimate interpolates linearly between the bucket's
// bounds — log-spaced bounds, linear within. The error is bounded by
// the bucket's width (a factor of two), which is the resolution this
// layout buys for 40 fixed slots; the unit tests pin known
// distributions to exactly that tolerance. An empty histogram
// estimates 0.
func (h Histogram) Quantile(p float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := float64(0)
	for i := 0; i < HistBuckets; i++ {
		c := float64(h.Count[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			hi := float64(BucketBound(i))
			return lo + (rank-cum)/c*(hi-lo)
		}
		cum += c
	}
	return float64(BucketBound(HistBuckets - 1))
}
