package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds on the bus. Kept as strings because they go straight to
// NDJSON/SSE; the engine publishes events only at boundaries, so the
// strings never touch the hop loop.
const (
	KindDelivery = "delivery" // a sampled host delivery
	KindEvent    = "event"    // an event detection
	KindSwap     = "swap"     // a swap phase transition (stage/flip/drain/retire)
	KindStats    = "stats"    // a chunk-boundary stats delta
	KindTrace    = "trace"    // a stitched packet journey
	KindMeta     = "meta"     // stream metadata (subscribe banner, heartbeats)
	KindAlert    = "alert"    // a watchdog alert transition (raise/clear)
	KindShutdown = "shutdown" // terminal event: the daemon is shutting down
)

// StatsDelta is the payload of a KindStats event: what changed since
// the previous boundary the engine published from.
type StatsDelta struct {
	Generations int64 `json:"generations"`
	Hops        int64 `json:"hops"`
	Injections  int64 `json:"injections"`
	Deliveries  int64 `json:"deliveries"`
	RuleDrops   int64 `json:"rule_drops"`
	TTLDrops    int64 `json:"ttl_drops"`
	Events      int64 `json:"events"`
	DrainedHops int64 `json:"drained_hops"`
	Pending     int64 `json:"pending"`
	DeliveryLog int64 `json:"delivery_log"`
}

// Event is one record on the ops feed. It is a flat union over all
// kinds: every event carries Seq/TNs/Kind, and Gen/Epoch are always
// serialized (a watcher auditing a swap needs "epoch":0 to be visible,
// not omitted). Kind-specific fields are pointers/slices left nil when
// absent.
type Event struct {
	Seq  int64  `json:"seq"`
	TNs  int64  `json:"t_ns"`
	Kind string `json:"kind"`
	Gen  int64  `json:"gen"`
	Epoch int   `json:"epoch"`

	// KindDelivery, KindEvent
	Version   int            `json:"version,omitempty"`
	Host      string         `json:"host,omitempty"`
	Switch    int            `json:"switch,omitempty"`
	PacketSeq int64          `json:"packet_seq,omitempty"`
	Branch    int32          `json:"branch,omitempty"`
	Events    []int          `json:"events,omitempty"`
	Fields    map[string]int `json:"fields,omitempty"`

	// KindSwap
	Phase     string  `json:"phase,omitempty"` // stage|flip|drain|retire
	From      int     `json:"from,omitempty"`
	To        int     `json:"to,omitempty"`
	Inflight  int64   `json:"inflight,omitempty"`
	CompileMS float64 `json:"compile_ms,omitempty"`

	// KindStats
	Stats *StatsDelta `json:"stats,omitempty"`

	// KindAlert (Phase carries raise|clear, Note the alert name)
	Alert *Alert `json:"alert,omitempty"`

	// KindTrace
	Trace *Journey `json:"trace,omitempty"`

	// KindMeta
	Note    string `json:"note,omitempty"`
	Dropped int64  `json:"dropped,omitempty"` // cumulative drops for this subscriber
}

// Sub is one subscriber's bounded feed. Read events from C; call Close
// to unsubscribe (after which C is closed).
type Sub struct {
	C       chan Event
	bus     *Bus
	id      int64
	kinds   map[string]bool // nil = all kinds
	dropped atomic.Int64
}

// Dropped returns how many events this subscriber has lost to
// backpressure so far.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Close unsubscribes and closes C. Safe to call once; concurrent with
// Publish.
func (s *Sub) Close() {
	s.bus.mu.Lock()
	if _, ok := s.bus.subs[s.id]; ok {
		delete(s.bus.subs, s.id)
		close(s.C)
	}
	s.bus.mu.Unlock()
}

// Bus fans events out to subscribers without ever blocking the
// publisher: each subscriber owns a bounded buffered channel, and an
// event that finds a full buffer is dropped and counted (per-subscriber
// and bus-wide) rather than enqueued. There is no replay buffer — a
// subscriber sees only events published after it subscribed, so a
// stream can never serve records from an epoch retired before the
// subscription existed.
type Bus struct {
	mu     sync.Mutex
	subs   map[int64]*Sub
	nextID int64

	seq     atomic.Int64
	dropped atomic.Int64 // bus-wide drops across all subscribers

	// now stamps TNs on published events; replaceable in tests.
	now func() int64
}

// NewBus builds an empty bus.
func NewBus() *Bus {
	return &Bus{
		subs: make(map[int64]*Sub),
		now:  func() int64 { return time.Now().UnixNano() },
	}
}

// Subscribe registers a consumer with the given buffer capacity
// (minimum 1) receiving only the listed kinds (none = all kinds).
func (b *Bus) Subscribe(buf int, kinds ...string) *Sub {
	if buf < 1 {
		buf = 1
	}
	s := &Sub{C: make(chan Event, buf), bus: b}
	if len(kinds) > 0 {
		s.kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			s.kinds[k] = true
		}
	}
	b.mu.Lock()
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	b.mu.Unlock()
	return s
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return n
}

// Dropped returns the cumulative bus-wide drop count.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// CountDropped folds externally-dropped events (e.g. detection-ring
// overflow in the engine) into the bus-wide drop count.
func (b *Bus) CountDropped(n int64) { b.dropped.Add(n) }

// Active reports whether any subscriber is listening — publishers can
// skip building payloads when nobody is watching.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return n > 0
}

// Publish stamps the event (Seq, TNs) and offers it to every
// subscriber. It never blocks: a full subscriber buffer drops the
// event and bumps the drop counters. Returns the stamped sequence
// number.
func (b *Bus) Publish(ev Event) int64 {
	ev.Seq = b.seq.Add(1)
	if ev.TNs == 0 {
		ev.TNs = b.now()
	}
	b.mu.Lock()
	for _, s := range b.subs {
		if s.kinds != nil && !s.kinds[ev.Kind] {
			continue
		}
		select {
		case s.C <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	return ev.Seq
}
