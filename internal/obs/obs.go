// Package obs is the zero-dependency observability layer: sharded
// counters and fixed-bucket histograms (metrics.go), a bounded
// drop-counting event bus for the streaming ops feed (bus.go), and
// sampled packet journey tracing (trace.go).
//
// The package is designed around the engine's bulk-synchronous
// execution model, and its concurrency contract mirrors the engine's:
//
//   - Hot-path writes (Shard counter/histogram updates, Tracer.Add) are
//     plain stores into preallocated per-worker shards — no locks, no
//     atomics, no maps, no interface boxing, and no allocation, so the
//     engine's zero-alloc hop-loop guarantee holds with metrics and
//     tracing enabled (CI-gated by TestEngineHopLoopZeroAllocObs).
//   - Folding (Metrics.Fold, Tracer.Flush) happens at the engine's
//     chunk boundaries, where workers are quiescent; the fold publishes
//     shard values into atomics that readers (the /metrics handler, the
//     stats-delta publisher) may scrape at any time.
//   - Bus.Publish never blocks: a slow consumer overflows its own
//     bounded buffer and the overflow is counted, never propagated back
//     into a generation barrier.
//
// Nothing in this package influences the delivery sequence: metrics are
// write-only from the engine's point of view, the bus is fed at
// boundaries, and trace records ride alongside packets without touching
// forwarding state. The determinism matrix and the chaos audit pass
// bit-identically with the full layer enabled (internal/dataplane's
// obs tests pin this).
//
// See docs/OBSERVABILITY.md for the metric catalog, the event and trace
// record formats, and the sampling semantics.
package obs

// Obs bundles the observability hooks an engine (or controller) is
// constructed with. Any nil component is disabled at zero cost; a nil
// *Obs disables the whole layer.
type Obs struct {
	// Metrics receives counters and histograms. Shared freely across
	// engine generations (a hot-swap keeps the same Metrics).
	Metrics *Metrics
	// Bus receives the streaming ops feed: sampled deliveries, event
	// detections, swap phase transitions, chunk-boundary stats deltas,
	// and stitched packet journeys.
	Bus *Bus
	// Trace samples packet journeys (nil = tracing off).
	Trace *Tracer
	// Flight is the always-on flight recorder: bounded per-worker rings
	// of full-fidelity recent history, dumped on demand (nil = off).
	Flight *Flight
	// Watch derives alert events from metric deltas at chunk boundaries
	// (nil = no watchdog). Requires Metrics to do anything.
	Watch *Watchdog
	// DeliverySample publishes every Nth host delivery on the Bus
	// (0 = no delivery events). Sampling is counted over the merged
	// per-worker logs at boundaries, so it costs the hop loop nothing.
	DeliverySample int
}

// Enabled reports whether any component is live.
func (o *Obs) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Bus != nil || o.Trace != nil ||
		o.Flight != nil || o.Watch != nil)
}
