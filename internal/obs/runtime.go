package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// Go runtime exposition: a small curated slice of runtime/metrics
// rendered in Prometheus text form, appended to /metrics after the
// eventnet_ registry. Sampling happens at scrape time (runtime/metrics
// reads are cheap and allocation-light); nothing here touches the
// engine.

// runtimeSample is one exported runtime metric: the runtime/metrics
// name, the exposition name, and how to render it.
type runtimeSample struct {
	src  string
	name string
	help string
	typ  string // counter | gauge
}

var runtimeScalars = []runtimeSample{
	{"/memory/classes/heap/objects:bytes", "eventnet_go_heap_objects_bytes", "Bytes of live heap objects.", "gauge"},
	{"/memory/classes/total:bytes", "eventnet_go_memory_total_bytes", "Total bytes mapped by the Go runtime.", "gauge"},
	{"/sched/goroutines:goroutines", "eventnet_go_goroutines", "Live goroutines.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "eventnet_go_gc_cycles_total", "Completed GC cycles.", "counter"},
	{"/gc/heap/allocs:bytes", "eventnet_go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", "counter"},
}

var runtimeHists = []runtimeSample{
	{"/gc/pauses:seconds", "eventnet_go_gc_pause", "Stop-the-world GC pause latency.", ""},
	{"/sched/latencies:seconds", "eventnet_go_sched_latency", "Goroutine scheduling latency (runnable to running).", ""},
}

// float64HistQuantile estimates the p-th quantile of a runtime/metrics
// Float64Histogram by the same bucket-interpolation rule as
// Histogram.Quantile. Infinite edge buckets clamp to their finite
// bound.
func float64HistQuantile(h *metrics.Float64Histogram, p float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := float64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				lo = 0
			}
			if math.IsInf(hi, 1) {
				return lo
			}
			return lo + (rank-cum)/fc*(hi-lo)
		}
		cum += fc
	}
	return 0
}

// WriteRuntimeMetrics renders the curated runtime metrics — heap and
// total memory, goroutines, GC cycles and allocation volume, and
// p50/p99 of GC pause and scheduler latency — in Prometheus text
// format. Metrics absent from the running Go version are skipped.
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]metrics.Sample, 0, len(runtimeScalars)+len(runtimeHists))
	for _, s := range runtimeScalars {
		samples = append(samples, metrics.Sample{Name: s.src})
	}
	for _, s := range runtimeHists {
		samples = append(samples, metrics.Sample{Name: s.src})
	}
	metrics.Read(samples)
	for i, s := range runtimeScalars {
		v := samples[i].Value
		var n uint64
		switch v.Kind() {
		case metrics.KindUint64:
			n = v.Uint64()
		default:
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			s.name, s.help, s.name, s.typ, s.name, n); err != nil {
			return err
		}
	}
	for i, s := range runtimeHists {
		v := samples[len(runtimeScalars)+i].Value
		if v.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := v.Float64Histogram()
		for _, q := range []struct {
			p    float64
			name string
		}{{0.50, "p50"}, {0.99, "p99"}} {
			name := fmt.Sprintf("%s_%s_seconds", s.name, q.name)
			if _, err := fmt.Fprintf(w, "# HELP %s %s (%s estimate)\n# TYPE %s gauge\n%s %g\n",
				name, s.help, q.name, name, name, float64HistQuantile(h, q.p)); err != nil {
				return err
			}
		}
	}
	return nil
}
