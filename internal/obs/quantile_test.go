package obs

import (
	"math"
	"testing"
)

// The estimator's contract: the error is bounded by the winning
// bucket's width, a factor of two. Every test pins a known distribution
// inside exactly that tolerance — an estimate outside (true/2, true*2]
// means the wrong bucket won or the interpolation is broken.

// withinBucket asserts the estimate lands in the bucket holding the
// true value: (2^(k-1), 2^k] where k = bucketOf(true).
func withinBucket(t *testing.T, what string, got float64, want int64) {
	t.Helper()
	b := bucketOf(want)
	lo := float64(0)
	if b > 0 {
		lo = float64(BucketBound(b - 1))
	}
	hi := float64(BucketBound(b))
	if got <= lo || got > hi {
		t.Errorf("%s: estimate %.1f outside the true value's bucket (%.0f, %.0f] (true %d)", what, got, lo, hi, want)
	}
}

// TestQuantilePointMass: every observation is the same value, so every
// quantile must land in that value's bucket.
func TestQuantilePointMass(t *testing.T) {
	m := NewMetrics(0)
	for i := 0; i < 1000; i++ {
		m.Observe(HistHopNs, 100)
	}
	h := m.Histogram(HistHopNs)
	if h.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", h.Total())
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		withinBucket(t, "point mass", h.Quantile(p), 100)
	}
	if got := h.Mean(); got != 100 {
		t.Errorf("Mean = %v, want exactly 100 (the sum is tracked, not bucketed)", got)
	}
}

// TestQuantileUniform: 1..1024 once each. The power-of-two layout makes
// the interpolated estimates exact here: half of each bucket's range
// holds half its mass.
func TestQuantileUniform(t *testing.T) {
	m := NewMetrics(0)
	for v := int64(1); v <= 1024; v++ {
		m.Observe(HistDeliveryNs, v)
	}
	h := m.Histogram(HistDeliveryNs)
	if got := h.Quantile(0.5); got != 512 {
		t.Errorf("uniform p50 = %v, want exactly 512", got)
	}
	p99 := h.Quantile(0.99)
	withinBucket(t, "uniform p99", p99, 1014)
	if math.Abs(p99-1013.76) > 0.01 {
		t.Errorf("uniform p99 = %v, want 1013.76 (rank interpolation inside the top bucket)", p99)
	}
}

// TestQuantileBimodal: a fast mode and a slow tail must be separated —
// p50 reports the fast mode, p99 the tail.
func TestQuantileBimodal(t *testing.T) {
	m := NewMetrics(0)
	for i := 0; i < 900; i++ {
		m.Observe(HistHopNs, 10)
	}
	for i := 0; i < 100; i++ {
		m.Observe(HistHopNs, 1000)
	}
	h := m.Histogram(HistHopNs)
	withinBucket(t, "bimodal p50", h.Quantile(0.5), 10)
	withinBucket(t, "bimodal p99", h.Quantile(0.99), 1000)
}

// TestQuantileEdges: empty histograms and out-of-range p must not
// panic or produce garbage.
func TestQuantileEdges(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	h.Count[3] = 10 // all mass in (4, 8]
	for _, p := range []float64{-1, 0, 1, 2} {
		if got := h.Quantile(p); got < 4 || got > 8 {
			t.Errorf("Quantile(%v) = %v, want within (4, 8]", p, got)
		}
	}
}

// TestHistogramSub: the windowed difference isolates what happened
// between two snapshots — the basis of `netctl top`.
func TestHistogramSub(t *testing.T) {
	m := NewMetrics(0)
	for i := 0; i < 100; i++ {
		m.Observe(HistHopNs, 1000) // old epoch: slow
	}
	before := m.Histogram(HistHopNs)
	for i := 0; i < 100; i++ {
		m.Observe(HistHopNs, 10) // new window: fast
	}
	d := m.Histogram(HistHopNs).Sub(before)
	if d.Total() != 100 {
		t.Fatalf("windowed Total = %d, want 100", d.Total())
	}
	withinBucket(t, "windowed p99", d.Quantile(0.99), 10)
	if got := d.Mean(); got != 10 {
		t.Errorf("windowed Mean = %v, want 10", got)
	}
}
