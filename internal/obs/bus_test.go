package obs

import (
	"sync"
	"testing"
)

func TestBusPublishOrderAndFilter(t *testing.T) {
	b := NewBus()
	all := b.Subscribe(16)
	swaps := b.Subscribe(16, KindSwap)
	b.Publish(Event{Kind: KindStats})
	b.Publish(Event{Kind: KindSwap, Phase: "flip"})
	b.Publish(Event{Kind: KindDelivery})
	all.Close()
	swaps.Close()
	var kinds []string
	var seqs []int64
	for ev := range all.C {
		kinds = append(kinds, ev.Kind)
		seqs = append(seqs, ev.Seq)
	}
	if len(kinds) != 3 || kinds[0] != KindStats || kinds[1] != KindSwap || kinds[2] != KindDelivery {
		t.Fatalf("unfiltered subscriber got %v", kinds)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seqs not increasing: %v", seqs)
		}
	}
	var got []string
	for ev := range swaps.C {
		got = append(got, ev.Kind)
	}
	if len(got) != 1 || got[0] != KindSwap {
		t.Fatalf("kind-filtered subscriber got %v", got)
	}
}

func TestBusSlowConsumerDropsWithoutBlocking(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2) // tiny buffer, nobody reading
	for i := 0; i < 100; i++ {
		b.Publish(Event{Kind: KindStats}) // must never block
	}
	if got := s.Dropped(); got != 98 {
		t.Fatalf("subscriber dropped %d, want 98", got)
	}
	if got := b.Dropped(); got != 98 {
		t.Fatalf("bus-wide dropped %d, want 98", got)
	}
	// The buffered events are still readable.
	s.Close()
	n := 0
	for range s.C {
		n++
	}
	if n != 2 {
		t.Fatalf("read %d buffered events, want 2", n)
	}
}

func TestBusCloseConcurrentWithPublish(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				b.Publish(Event{Kind: KindStats})
			}
		}()
	}
	for i := 0; i < 50; i++ {
		s := b.Subscribe(4)
		go func() {
			for range s.C {
			}
		}()
		s.Close()
	}
	wg.Wait()
	if b.Subscribers() != 0 {
		t.Fatalf("%d subscribers left after closing all", b.Subscribers())
	}
	s := b.Subscribe(1)
	if !b.Active() {
		t.Fatal("bus with a subscriber reports inactive")
	}
	s.Close()
	s.Close() // double close must be safe
	if b.Active() {
		t.Fatal("bus with no subscribers reports active")
	}
}
