package obs

import (
	"strings"
	"testing"
)

// TestWriteRuntimeMetrics: the runtime exposition emits the documented
// families in valid Prometheus text shape (every sample line's metric
// has a TYPE header).
func TestWriteRuntimeMetrics(t *testing.T) {
	var b strings.Builder
	if err := WriteRuntimeMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"eventnet_go_goroutines",
		"eventnet_go_gc_cycles_total",
		"eventnet_go_heap_objects_bytes",
		"eventnet_go_gc_pause_p99_seconds",
		"eventnet_go_sched_latency_p50_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
	typed := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 4 && f[0] == "#" && f[1] == "TYPE" {
			typed[f[2]] = true
			continue
		}
		if len(f) == 2 && !strings.HasPrefix(line, "#") {
			name := f[0]
			if !typed[name] {
				t.Errorf("sample %q has no TYPE header", name)
			}
		}
	}
}
