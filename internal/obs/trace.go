package obs

import "slices"

// Packet journey tracing. A sampled injection gets a trace ID; the hop
// loop appends one flat HopRec per consumed packet copy (and one per
// delivery) into a preallocated per-worker ring with plain writes; the
// engine flushes the rings at chunk boundaries, where the tracer
// stitches records into complete journeys by active-copy counting:
//
//	active := 1                      // the injected packet
//	forward/drop rec: active += Out-1 // consumed one copy, emitted Out
//	deliver rec:      informational   // the consuming rec already counted it
//
// When active reaches zero every copy of the journey has been accounted
// for and the journey is emitted. A journey whose records were lost to
// ring overflow never converges; it is evicted after staleGens
// generations and emitted with Truncated set.

// HopKind classifies one trace record.
type HopKind uint8

const (
	// HopForward: the copy was forwarded; Out ring-bound copies emitted
	// (deliveries excluded — they get their own HopDeliver records).
	HopForward HopKind = iota
	// HopDeliver: one emitted copy was delivered to Host. Informational;
	// the emitting HopForward record carries the active-count effect.
	HopDeliver
	// HopTTLDrop: the copy was discarded by the forwarding-loop TTL.
	HopTTLDrop
	// HopRuleDrop: the copy was dropped by a default-drop lookup, or
	// every emission left the modeled network.
	HopRuleDrop
	// HopStale: the copy was stamped by an epoch with no live table
	// (retired epoch, or a switch absent from the configuration).
	HopStale
)

var hopKindNames = [...]string{
	HopForward:  "forward",
	HopDeliver:  "deliver",
	HopTTLDrop:  "ttl_drop",
	HopRuleDrop: "drop",
	HopStale:    "stale",
}

// String returns the record kind's wire name.
func (k HopKind) String() string {
	if int(k) < len(hopKindNames) {
		return hopKindNames[k]
	}
	return "unknown"
}

// HopRec is one flat trace record, sized and shaped for a plain-store
// append on the hop loop (no pointers except the Host string header,
// which is only set on deliver records and copies without allocating).
type HopRec struct {
	Trace   int32
	Kind    HopKind
	Switch  int32 // switch ID (not index)
	InPort  int32
	Rank    int32 // winning rule rank; -1 when no rule matched
	Out     int32 // ring-bound copies emitted (HopForward)
	Branch  int32
	Epoch   int32
	Version int32
	Gen     int64
	Seq     int64
	Host    string // HopDeliver only
}

// JHop is one journey hop in wire form.
type JHop struct {
	Kind    string `json:"kind"`
	Switch  int32  `json:"switch"`
	InPort  int32  `json:"in_port"`
	Rank    int32  `json:"rank"`
	Out     int32  `json:"out,omitempty"`
	Branch  int32  `json:"branch"`
	Epoch   int32  `json:"epoch"`
	Version int32  `json:"version"`
	Gen     int64  `json:"gen"`
	Seq     int64  `json:"seq"`
	Host    string `json:"host,omitempty"`
}

// Journey is one stitched packet trace: the sampled injection's
// identity plus every hop record of every copy, in the canonical
// (Gen, Seq, Kind, Branch) order.
type Journey struct {
	ID        int64  `json:"id"`
	Host      string `json:"host"` // injection host
	Gen       int64  `json:"gen"`  // injection generation
	Seq       int64  `json:"seq"`  // injection sequence number
	Epoch     int    `json:"epoch"`
	Version   int    `json:"version"`
	Hops      []JHop `json:"hops"`
	Truncated bool   `json:"truncated,omitempty"`
}

// TraceShard is one worker's preallocated record ring. Add is a plain
// store — the shard must be written by exactly one goroutine between
// flushes, exactly like a metrics Shard.
type TraceShard struct {
	recs  []HopRec
	n     int
	drops int64
}

// Add appends a record, dropping (and counting) on overflow. Never
// allocates.
func (s *TraceShard) Add(r HopRec) {
	if s.n < len(s.recs) {
		s.recs[s.n] = r
		s.n++
		return
	}
	s.drops++
}

// Tracer bounds and defaults.
const (
	// DefaultSample traces one injection in 64.
	DefaultSample = 64
	// traceRingCap is each worker ring's record capacity per flush window.
	traceRingCap = 4096
	// maxPending bounds in-flight journeys; Sample declines beyond it.
	maxPending = 1024
	// staleGens evicts a journey that has not converged within this many
	// generations of its injection (records lost to ring overflow).
	staleGens = 4096
)

// pendingJourney is one journey being stitched. Records stay in flat
// form until completion, when they are sorted into canonical order and
// converted to wire form once.
type pendingJourney struct {
	j      *Journey
	recs   []HopRec
	active int32
}

// Tracer samples injections and stitches their journeys. Sample and
// Flush run in serial engine contexts (injection boundaries and chunk
// boundaries respectively); only TraceShard.Add runs on worker hot
// paths.
type Tracer struct {
	every   int64 // sample every Nth injection
	seen    int64
	nextID  int64
	shards  []*TraceShard
	pending map[int32]*pendingJourney
	orphans int64 // records whose journey was already evicted
}

// NewTracer builds a tracer sampling every `every`-th injection
// (<=0 uses DefaultSample) with `workers` preallocated shards.
func NewTracer(every, workers int) *Tracer {
	if every <= 0 {
		every = DefaultSample
	}
	t := &Tracer{every: int64(every), pending: make(map[int32]*pendingJourney)}
	t.EnsureShards(workers)
	return t
}

// Every returns the sampling interval.
func (t *Tracer) Every() int { return int(t.every) }

// EnsureShards grows the shard set to at least n.
func (t *Tracer) EnsureShards(n int) {
	for len(t.shards) < n {
		t.shards = append(t.shards, &TraceShard{recs: make([]HopRec, traceRingCap)})
	}
}

// Shard returns worker i's record ring.
func (t *Tracer) Shard(i int) *TraceShard { return t.shards[i] }

// Pending returns the number of journeys currently being stitched.
func (t *Tracer) Pending() int { return len(t.pending) }

// Orphans returns how many hop records arrived after their journey was
// already evicted (cumulative). Serial context only, like Flush.
func (t *Tracer) Orphans() int64 { return t.orphans }

// Sample decides whether this injection is traced, returning its trace
// ID (0 = untraced). Serial context only (the engine injects at
// boundaries).
func (t *Tracer) Sample(host string, seq, gen int64, epoch, version int) int32 {
	t.seen++
	if t.seen%t.every != 0 || len(t.pending) >= maxPending {
		return 0
	}
	t.nextID++
	id := int32(t.nextID)
	t.pending[id] = &pendingJourney{
		j: &Journey{
			ID: t.nextID, Host: host, Gen: gen, Seq: seq,
			Epoch: epoch, Version: version,
		},
		active: 1,
	}
	return id
}

// Flush drains every shard ring, folds the records into their pending
// journeys, and returns the journeys that completed (or aged out, with
// Truncated set) plus the number of records dropped to ring overflow
// since the last flush. gen is the engine's current generation. Serial
// context only; shard writers must be quiescent.
func (t *Tracer) Flush(gen int64) (done []*Journey, recDrops int64) {
	for _, s := range t.shards {
		for i := 0; i < s.n; i++ {
			r := &s.recs[i]
			pj, ok := t.pending[r.Trace]
			if !ok {
				t.orphans++
				continue
			}
			pj.recs = append(pj.recs, *r)
			if r.Kind != HopDeliver {
				pj.active += r.Out - 1
			}
		}
		s.n = 0
		recDrops += s.drops
		s.drops = 0
	}
	var doneP []*pendingJourney
	for id, pj := range t.pending {
		if pj.active <= 0 {
			doneP = append(doneP, pj)
			delete(t.pending, id)
		} else if gen-pj.j.Gen > staleGens {
			pj.j.Truncated = true
			doneP = append(doneP, pj)
			delete(t.pending, id)
		}
	}
	// The pending map's iteration order is not deterministic; the
	// journey IDs are.
	slices.SortFunc(doneP, func(a, b *pendingJourney) int { return int(a.j.ID - b.j.ID) })
	for _, pj := range doneP {
		// Canonical hop order: generation, then the copy's seq within it,
		// then record kind (the consuming record ahead of its deliveries),
		// then emission branch — a unique, worker-count-independent key.
		slices.SortFunc(pj.recs, func(a, b HopRec) int {
			if a.Gen != b.Gen {
				return int(a.Gen - b.Gen)
			}
			if a.Seq != b.Seq {
				return int(a.Seq - b.Seq)
			}
			if a.Kind != b.Kind {
				return int(a.Kind) - int(b.Kind)
			}
			return int(a.Branch - b.Branch)
		})
		pj.j.Hops = make([]JHop, len(pj.recs))
		for i := range pj.recs {
			r := &pj.recs[i]
			pj.j.Hops[i] = JHop{
				Kind: r.Kind.String(), Switch: r.Switch, InPort: r.InPort,
				Rank: r.Rank, Out: r.Out, Branch: r.Branch,
				Epoch: r.Epoch, Version: r.Version, Gen: r.Gen, Seq: r.Seq,
				Host: r.Host,
			}
		}
		done = append(done, pj.j)
	}
	return done, recDrops
}
