package obs

import "sync"

// Self-watchdog: alert derivation from metric deltas. Check runs in the
// engine's serial boundary context (flushObs), computes what moved
// since the previous boundary, and compares against thresholds; alerts
// are published on the bus as KindAlert events (phase "raise"/"clear",
// on transitions only, never per boundary) and exposed through Active
// for /healthz degradation reasons. The watchdog is an observer like
// everything else in this package: it reads folded atomics, touches no
// engine state, and a nil *Watchdog costs nothing.

// Alert names (the catalog; see docs/OPS.md).
const (
	AlertQueueSaturation  = "queue_saturation"   // pending packets over threshold
	AlertDropRate         = "drop_rate"          // bus + trace drops per window over threshold
	AlertSwapDrainOverrun = "swap_drain_overrun" // a swap draining past the generation budget
	AlertTTLSpike         = "ttl_spike"          // TTL drops per window over threshold
)

// Alert is one active (or just-transitioned) watchdog alert.
type Alert struct {
	Name      string `json:"name"`
	Value     int64  `json:"value"` // the measurement that crossed the threshold
	Threshold int64  `json:"threshold"`
	SinceGen  int64  `json:"since_gen"`
}

// WatchOptions are the watchdog thresholds; zero values take defaults.
type WatchOptions struct {
	// PendingMax raises queue_saturation when the pending-packets gauge
	// reaches it. Default 32768.
	PendingMax int64
	// DropWindowMax raises drop_rate when the drops accrued since the
	// previous boundary — bus-wide /watch drops, detection-ring overflow,
	// trace-ring overflow, and truncated journeys — reach it. Default 256.
	DropWindowMax int64
	// SwapDrainGens raises swap_drain_overrun when a swap stays draining
	// across this many generations. Default 65536.
	SwapDrainGens int64
	// TTLWindowMax raises ttl_spike when the TTL drops accrued since the
	// previous boundary reach it. Default 512.
	TTLWindowMax int64
}

func (o WatchOptions) withDefaults() WatchOptions {
	if o.PendingMax <= 0 {
		o.PendingMax = 32768
	}
	if o.DropWindowMax <= 0 {
		o.DropWindowMax = 256
	}
	if o.SwapDrainGens <= 0 {
		o.SwapDrainGens = 65536
	}
	if o.TTLWindowMax <= 0 {
		o.TTLWindowMax = 512
	}
	return o
}

// Watchdog derives alerts from metric deltas at chunk boundaries.
// Check must be called from one goroutine at a time (the engine's
// serial boundary); Active and ActiveNames are safe from any goroutine.
type Watchdog struct {
	opts WatchOptions

	mu     sync.Mutex
	active map[string]*Alert

	// Previous-boundary snapshots for the windowed alerts.
	lastDrops int64
	lastTTL   int64
	drainGen  int64 // generation a drain was first observed at; -1 = none
	fired     int64 // alerts raised, ever
}

// NewWatchdog builds a watchdog with the given thresholds.
func NewWatchdog(o WatchOptions) *Watchdog {
	return &Watchdog{opts: o.withDefaults(), active: map[string]*Alert{}, drainGen: -1}
}

// Options returns the effective (defaulted) thresholds.
func (w *Watchdog) Options() WatchOptions { return w.opts }

// Fired returns how many alerts have been raised over the watchdog's
// lifetime.
func (w *Watchdog) Fired() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Active returns the currently-active alerts, sorted by name.
func (w *Watchdog) Active() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, 0, len(w.active))
	for _, name := range []string{AlertDropRate, AlertQueueSaturation, AlertSwapDrainOverrun, AlertTTLSpike} {
		if a := w.active[name]; a != nil {
			out = append(out, *a)
		}
	}
	return out
}

// set raises or clears one alert, publishing the transition on the bus
// (phase "raise"/"clear") and counting raises into CtrAlerts.
func (w *Watchdog) set(m *Metrics, b *Bus, gen int64, name string, firing bool, value, threshold int64) {
	cur := w.active[name]
	switch {
	case firing && cur == nil:
		a := &Alert{Name: name, Value: value, Threshold: threshold, SinceGen: gen}
		w.active[name] = a
		w.fired++
		if m != nil {
			m.Inc(CtrAlerts)
		}
		if b.Active() {
			b.Publish(Event{Kind: KindAlert, Phase: "raise", Gen: gen, Note: name, Alert: a})
		}
	case firing:
		cur.Value = value // refresh the measurement while it stays hot
	case cur != nil:
		delete(w.active, name)
		if b.Active() {
			b.Publish(Event{Kind: KindAlert, Phase: "clear", Gen: gen, Note: name,
				Alert: &Alert{Name: name, Value: value, Threshold: threshold, SinceGen: cur.SinceGen}})
		}
	}
}

// Check runs one boundary evaluation. m is required (deltas come from
// the folded atomics); b may be nil (no transition events, Active still
// tracks). Serial context only.
func (w *Watchdog) Check(gen int64, m *Metrics, b *Bus) {
	if m == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	pending := m.Gauge(GaugePending)
	w.set(m, b, gen, AlertQueueSaturation, pending >= w.opts.PendingMax, pending, w.opts.PendingMax)

	// Drop rate: everything the telemetry layer sheds under pressure —
	// /watch subscriber overflow (bus-wide, including folded
	// detection-ring overflow), trace-ring overflow, and journeys emitted
	// truncated — as one per-window delta.
	drops := m.Gauge(GaugeWatchDropped) + m.Counter(CtrTraceRecDrops) + m.Counter(CtrTracesTruncated)
	d := drops - w.lastDrops
	w.lastDrops = drops
	w.set(m, b, gen, AlertDropRate, d >= w.opts.DropWindowMax, d, w.opts.DropWindowMax)

	// Swap drain overrun: generations observed draining, not wall time —
	// boundary cadence is the watchdog's clock.
	if m.Gauge(GaugeSwapDraining) != 0 {
		if w.drainGen < 0 {
			w.drainGen = gen
		}
		span := gen - w.drainGen
		w.set(m, b, gen, AlertSwapDrainOverrun, span >= w.opts.SwapDrainGens, span, w.opts.SwapDrainGens)
	} else {
		w.drainGen = -1
		w.set(m, b, gen, AlertSwapDrainOverrun, false, 0, w.opts.SwapDrainGens)
	}

	ttl := m.Counter(CtrTTLDrops)
	td := ttl - w.lastTTL
	w.lastTTL = ttl
	w.set(m, b, gen, AlertTTLSpike, td >= w.opts.TTLWindowMax, td, w.opts.TTLWindowMax)

	m.SetGauge(GaugeAlertsActive, int64(len(w.active)))
}
