package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter identifies one monotonic counter. Counters are enum-indexed
// (not name-keyed): the hot path increments a slot of a preallocated
// array, and names exist only at the exposition boundary.
type Counter int

const (
	CtrHops Counter = iota // switch-hops executed
	CtrGenerations
	CtrInjections
	CtrDeliveries
	CtrRuleDrops    // packets dropped by a default-drop lookup
	CtrTTLDrops     // packets discarded by the forwarding-loop TTL
	CtrDrainedHops  // old-epoch hops during swap transitions
	CtrEventsFired  // event detections (events, not packets)
	CtrSwapFlips
	CtrSwapRetires
	CtrCompiles
	CtrCompileTableHits
	CtrCompileTableMisses
	CtrCompileSegHits
	CtrCompileSegMisses
	CtrChaosRuns
	CtrChaosAudited
	CtrChaosMixed
	CtrChaosDropped
	CtrTraces          // stitched journeys emitted
	CtrTracesTruncated // journeys emitted incomplete (ring drop or age-out)
	CtrTraceRecDrops   // per-worker trace-ring overflow drops
	CtrAlerts          // watchdog alerts raised
	numCounters
)

var counterNames = [numCounters]string{
	CtrHops:               "hops",
	CtrGenerations:        "generations",
	CtrInjections:         "injections",
	CtrDeliveries:         "deliveries",
	CtrRuleDrops:          "rule_drops",
	CtrTTLDrops:           "ttl_drops",
	CtrDrainedHops:        "drained_hops",
	CtrEventsFired:        "events_fired",
	CtrSwapFlips:          "swap_flips",
	CtrSwapRetires:        "swap_retires",
	CtrCompiles:           "compiles",
	CtrCompileTableHits:   "compile_table_hits",
	CtrCompileTableMisses: "compile_table_misses",
	CtrCompileSegHits:     "compile_segment_hits",
	CtrCompileSegMisses:   "compile_segment_misses",
	CtrChaosRuns:          "chaos_runs",
	CtrChaosAudited:       "chaos_audited",
	CtrChaosMixed:         "chaos_mixed",
	CtrChaosDropped:       "chaos_dropped",
	CtrTraces:             "traces",
	CtrTracesTruncated:    "traces_truncated",
	CtrTraceRecDrops:      "trace_record_drops",
	CtrAlerts:             "alerts",
}

var counterHelp = [numCounters]string{
	CtrHops:               "Switch-hops executed by the forwarding engine.",
	CtrGenerations:        "Bulk-synchronous generations executed.",
	CtrInjections:         "Packets admitted at ingress.",
	CtrDeliveries:         "Packets delivered to hosts.",
	CtrRuleDrops:          "Packets dropped by a default-drop table lookup.",
	CtrTTLDrops:           "Packets discarded by the forwarding-loop TTL.",
	CtrDrainedHops:        "Old-epoch hops executed while a swap drained.",
	CtrEventsFired:        "Event detections (counted per event, not per packet).",
	CtrSwapFlips:          "Program swaps flipped at a generation barrier.",
	CtrSwapRetires:        "Program swaps fully drained and retired.",
	CtrCompiles:           "Program compilations through the controller.",
	CtrCompileTableHits:   "Whole-configuration compiler cache hits (nkc.CacheStats).",
	CtrCompileTableMisses: "Whole-configuration compiler cache misses.",
	CtrCompileSegHits:     "Per-segment FDD cache hits.",
	CtrCompileSegMisses:   "Per-segment FDD cache misses.",
	CtrChaosRuns:          "Chaos-audit runs recorded.",
	CtrChaosAudited:       "Chaos-audited deliveries (each checked against Eval).",
	CtrChaosMixed:         "Chaos audit violations: mis-stamped or unpredicted deliveries.",
	CtrChaosDropped:       "Chaos audit violations: predicted deliveries that never arrived.",
	CtrTraces:             "Sampled packet journeys stitched and emitted.",
	CtrTracesTruncated:    "Journeys emitted incomplete (trace-ring drop or age-out).",
	CtrTraceRecDrops:      "Trace hop records dropped to per-worker ring overflow.",
	CtrAlerts:             "Watchdog alerts raised (transitions to firing, not boundaries spent firing).",
}

// Gauge identifies one point-in-time value, set at engine boundaries or
// by the exposition handler.
type Gauge int

const (
	GaugePending Gauge = iota // packets queued in rings
	GaugeEpoch                // current ingress program epoch
	GaugePrograms             // live program epochs (2 while draining)
	GaugeSwapDraining         // 1 while a transition is draining
	GaugeDeliveryLog          // retained deliveries (incl. unmerged tails)
	GaugeFDDNodes             // compiler hash-consed node store size
	GaugeStrands              // compiler distinct strand executions
	GaugeInternEntries        // compiler interner entries (atoms + keys + sigs)
	GaugeArenaBytes           // compiler FDD arena slab bytes
	GaugeArenaHighWater       // largest arena across cache generations
	GaugeWatchSubscribers
	GaugeWatchDropped  // events dropped across all /watch subscribers
	GaugeTracePending  // journeys currently being stitched
	GaugeTraceOrphans  // hop records whose journey was already evicted
	GaugeFlightEvicted // flight records overwritten across all rings
	GaugeAlertsActive  // watchdog alerts currently firing
	numGauges
)

var gaugeNames = [numGauges]string{
	GaugePending:          "pending_packets",
	GaugeEpoch:            "epoch",
	GaugePrograms:         "live_programs",
	GaugeSwapDraining:     "swap_draining",
	GaugeDeliveryLog:      "delivery_log",
	GaugeFDDNodes:         "compiler_fdd_nodes",
	GaugeStrands:          "compiler_strands",
	GaugeInternEntries:    "compiler_intern_entries",
	GaugeArenaBytes:       "compiler_arena_bytes",
	GaugeArenaHighWater:   "compiler_arena_high_water_bytes",
	GaugeWatchSubscribers: "watch_subscribers",
	GaugeWatchDropped:     "watch_dropped",
	GaugeTracePending:     "trace_pending_journeys",
	GaugeTraceOrphans:     "trace_orphan_records",
	GaugeFlightEvicted:    "flight_evicted_records",
	GaugeAlertsActive:     "alerts_active",
}

var gaugeHelp = [numGauges]string{
	GaugePending:          "Packets currently queued in switch ingress rings.",
	GaugeEpoch:            "Current ingress program epoch.",
	GaugePrograms:         "Live program epochs (2 while a swap drains).",
	GaugeSwapDraining:     "1 while a program transition is draining, else 0.",
	GaugeDeliveryLog:      "Deliveries retained in the engine log.",
	GaugeFDDNodes:         "Hash-consed FDD node store size of the compiler cache.",
	GaugeStrands:          "Distinct symbolic strand executions in the compiler cache.",
	GaugeInternEntries:    "Dense-interner entries in the compiler cache (field/value atoms, segment keys, guard signatures).",
	GaugeArenaBytes:       "FDD arena slab bytes allocated by the compiler cache.",
	GaugeArenaHighWater:   "Largest FDD arena observed across compiler cache generations.",
	GaugeWatchSubscribers: "Active /watch stream subscribers.",
	GaugeWatchDropped:     "Events dropped to slow /watch consumers (cumulative).",
	GaugeTracePending:     "Sampled journeys currently being stitched.",
	GaugeTraceOrphans:     "Trace hop records arriving after their journey was evicted (cumulative).",
	GaugeFlightEvicted:    "Flight-recorder records overwritten across all rings (cumulative).",
	GaugeAlertsActive:     "Watchdog alerts currently firing.",
}

// Hist identifies one fixed-bucket histogram. All histograms share the
// same power-of-two bucket layout: bucket i counts observations
// v <= 2^i (see bucketOf), which makes observation a bits.Len64 away
// and keeps the shard a flat array.
type Hist int

const (
	HistHopNs        Hist = iota // per-hop forwarding latency
	HistDeliveryNs               // inject -> delivery latency
	HistGenOccupancy             // packets processed per generation
	HistQueueDepth               // ring depth at drain time
	HistSwapDrainNs              // swap flip -> retire duration
	HistCompileNs                // program compile duration
	numHists
)

var histNames = [numHists]string{
	HistHopNs:        "hop_ns",
	HistDeliveryNs:   "delivery_latency_ns",
	HistGenOccupancy: "generation_occupancy",
	HistQueueDepth:   "queue_depth",
	HistSwapDrainNs:  "swap_drain_ns",
	HistCompileNs:    "compile_ns",
}

var histHelp = [numHists]string{
	HistHopNs:        "Per-switch-hop forwarding latency in nanoseconds (per-worker drain time over hops drained).",
	HistDeliveryNs:   "Injection-to-delivery latency in nanoseconds.",
	HistGenOccupancy: "Packets processed per bulk-synchronous generation.",
	HistQueueDepth:   "Switch ingress ring depth at drain time.",
	HistSwapDrainNs:  "Swap flip-to-retire drain duration in nanoseconds.",
	HistCompileNs:    "Program compilation duration in nanoseconds.",
}

// HistBuckets is the bucket count of every histogram: bucket i counts
// observations v <= 2^i, so 40 buckets cover ~18 minutes in
// nanoseconds — far beyond any latency this system produces — while a
// whole shard histogram stays a few cache lines.
const HistBuckets = 40

// bucketOf returns the histogram bucket of an observation: the smallest
// i with v <= 2^i, clamped to the last bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (the
// Prometheus `le` label value).
func BucketBound(i int) int64 { return int64(1) << uint(i) }

// histShard is one histogram's per-worker half: plain writes only.
type histShard struct {
	count [HistBuckets]int64
	sum   int64
}

// Shard is one worker's private metrics shard. All methods are plain
// writes with no synchronization: a shard must be written by exactly
// one goroutine between folds, and Fold must run with shard writers
// quiescent (the engine folds at chunk boundaries). No method
// allocates.
type Shard struct {
	ctr  [numCounters]int64
	hist [numHists]histShard
}

// Inc adds one to a counter.
func (s *Shard) Inc(c Counter) { s.ctr[c]++ }

// Add adds n to a counter.
func (s *Shard) Add(c Counter, n int64) { s.ctr[c] += n }

// Observe records one observation.
func (s *Shard) Observe(h Hist, v int64) {
	hs := &s.hist[h]
	hs.count[bucketOf(v)]++
	hs.sum += v
}

// ObserveN records n observations of value v with one bucket write —
// how the engine folds a drained batch's per-hop latency without
// touching the histogram once per hop.
func (s *Shard) ObserveN(h Hist, v, n int64) {
	hs := &s.hist[h]
	hs.count[bucketOf(v)] += n
	hs.sum += v * n
}

// histAtomic is one histogram's published half.
type histAtomic struct {
	count [HistBuckets]atomic.Int64
	sum   atomic.Int64
}

// Metrics is the process-wide registry: per-worker shards written on
// the hot path, folded into atomics at engine boundaries, scraped by
// WritePrometheus at any time. Direct methods (Add, Observe, SetGauge)
// write the atomics and are safe from any goroutine — they are for
// serial/boundary contexts (controller, chaos harness, netd handlers),
// not the hop loop.
type Metrics struct {
	mu     sync.Mutex
	shards []*Shard

	ctr   [numCounters]atomic.Int64
	gauge [numGauges]atomic.Int64
	hist  [numHists]histAtomic
}

// NewMetrics builds a registry with the given number of preallocated
// shards (grown on demand by EnsureShards).
func NewMetrics(shards int) *Metrics {
	m := &Metrics{}
	m.EnsureShards(shards)
	return m
}

// EnsureShards grows the shard set to at least n (existing shards keep
// their identity, so an engine restart or hot-swap never loses counts).
func (m *Metrics) EnsureShards(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.shards) < n {
		m.shards = append(m.shards, &Shard{})
	}
}

// Shard returns worker i's shard (EnsureShards must have covered i).
func (m *Metrics) Shard(i int) *Shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shards[i]
}

// Fold publishes and zeroes every shard's deltas. The caller must
// guarantee shard writers are quiescent (the engine calls it at chunk
// boundaries); concurrent readers are always safe.
func (m *Metrics) Fold() {
	m.mu.Lock()
	shards := m.shards
	m.mu.Unlock()
	for _, s := range shards {
		for c := Counter(0); c < numCounters; c++ {
			if v := s.ctr[c]; v != 0 {
				m.ctr[c].Add(v)
				s.ctr[c] = 0
			}
		}
		for h := Hist(0); h < numHists; h++ {
			hs := &s.hist[h]
			for b := 0; b < HistBuckets; b++ {
				if v := hs.count[b]; v != 0 {
					m.hist[h].count[b].Add(v)
					hs.count[b] = 0
				}
			}
			if hs.sum != 0 {
				m.hist[h].sum.Add(hs.sum)
				hs.sum = 0
			}
		}
	}
}

// Add adds n to a counter directly (atomic; serial-context use).
func (m *Metrics) Add(c Counter, n int64) { m.ctr[c].Add(n) }

// Inc adds one to a counter directly.
func (m *Metrics) Inc(c Counter) { m.ctr[c].Add(1) }

// Counter reads a counter's folded value.
func (m *Metrics) Counter(c Counter) int64 { return m.ctr[c].Load() }

// SetGauge sets a gauge.
func (m *Metrics) SetGauge(g Gauge, v int64) { m.gauge[g].Store(v) }

// Gauge reads a gauge.
func (m *Metrics) Gauge(g Gauge) int64 { return m.gauge[g].Load() }

// Observe records one observation directly (atomic; serial-context use).
func (m *Metrics) Observe(h Hist, v int64) {
	m.hist[h].count[bucketOf(v)].Add(1)
	m.hist[h].sum.Add(v)
}

// HistCount returns a histogram's folded observation count.
func (m *Metrics) HistCount(h Hist) int64 {
	var n int64
	for b := 0; b < HistBuckets; b++ {
		n += m.hist[h].count[b].Load()
	}
	return n
}

// HistSum returns a histogram's folded observation sum.
func (m *Metrics) HistSum(h Hist) int64 { return m.hist[h].sum.Load() }

// WritePrometheus renders every metric in the Prometheus text
// exposition format (metric names are prefixed "eventnet_"; histograms
// emit cumulative buckets up to the highest populated bound plus +Inf).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	for c := Counter(0); c < numCounters; c++ {
		name := "eventnet_" + counterNames[c] + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, counterHelp[c], name, name, m.ctr[c].Load()); err != nil {
			return err
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		name := "eventnet_" + gaugeNames[g]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			name, gaugeHelp[g], name, name, m.gauge[g].Load()); err != nil {
			return err
		}
	}
	for h := Hist(0); h < numHists; h++ {
		name := "eventnet_" + histNames[h]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, histHelp[h], name); err != nil {
			return err
		}
		top := 0
		for b := 0; b < HistBuckets; b++ {
			if m.hist[h].count[b].Load() != 0 {
				top = b
			}
		}
		cum := int64(0)
		for b := 0; b <= top; b++ {
			cum += m.hist[h].count[b].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(b), cum); err != nil {
				return err
			}
		}
		total := m.HistCount(h)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, total, name, m.hist[h].sum.Load(), name, total); err != nil {
			return err
		}
	}
	return nil
}
