package netkat

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Conj is a satisfiable-by-construction conjunction of equality and
// inequality literals over packet fields (including "sw" and "pt"). It is
// the formula representation used by the compiler's path normal form and by
// event guards extracted from Stateful NetKAT programs (Figure 6).
//
// The zero value is not ready to use; call NewConj.
type Conj struct {
	eq  map[string]int          // field -> required value
	neq map[string]map[int]bool // field -> excluded values
}

// NewConj returns the empty (always-true) conjunction.
func NewConj() *Conj {
	return &Conj{eq: map[string]int{}, neq: map[string]map[int]bool{}}
}

// Clone returns an independent copy.
func (c *Conj) Clone() *Conj {
	d := NewConj()
	for f, v := range c.eq {
		d.eq[f] = v
	}
	for f, vs := range c.neq {
		m := map[int]bool{}
		for v := range vs {
			m[v] = true
		}
		d.neq[f] = m
	}
	return d
}

// AddEq conjoins the literal f = v. It reports false if the result is
// unsatisfiable (c is left unspecified in that case).
func (c *Conj) AddEq(f string, v int) bool {
	if w, ok := c.eq[f]; ok {
		return w == v
	}
	if c.neq[f][v] {
		return false
	}
	c.eq[f] = v
	delete(c.neq, f) // f = v subsumes all inequalities on f
	return true
}

// AddNeq conjoins the literal f != v. It reports false if the result is
// unsatisfiable.
func (c *Conj) AddNeq(f string, v int) bool {
	if w, ok := c.eq[f]; ok {
		return w != v
	}
	if c.neq[f] == nil {
		c.neq[f] = map[int]bool{}
	}
	c.neq[f][v] = true
	return true
}

// Exists strips every literal mentioning field f (the operation written
// (∃f : ϕ) in Figure 6 of the paper).
func (c *Conj) Exists(f string) {
	delete(c.eq, f)
	delete(c.neq, f)
}

// Eq returns the required value for field f, if any.
func (c *Conj) Eq(f string) (int, bool) {
	v, ok := c.eq[f]
	return v, ok
}

// Neq returns the sorted excluded values for field f.
func (c *Conj) Neq(f string) []int {
	var out []int
	for v := range c.neq[f] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// EqFields returns the sorted fields constrained by equality.
func (c *Conj) EqFields() []string {
	out := make([]string, 0, len(c.eq))
	for f := range c.eq {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// NeqFields returns the sorted fields constrained by inequality.
func (c *Conj) NeqFields() []string {
	out := make([]string, 0, len(c.neq))
	for f := range c.neq {
		if len(c.neq[f]) > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// Eval reports whether the conjunction holds of the located packet,
// resolving "sw" and "pt" against the location.
func (c *Conj) Eval(lp LocatedPacket) bool {
	get := func(f string) (int, bool) {
		switch f {
		case FieldSw:
			return lp.Loc.Switch, true
		case FieldPt:
			return lp.Loc.Port, true
		default:
			v, ok := lp.Pkt[f]
			return v, ok
		}
	}
	for f, v := range c.eq {
		w, ok := get(f)
		if !ok || w != v {
			return false
		}
	}
	for f, vs := range c.neq {
		w, ok := get(f)
		if !ok {
			continue // an absent field trivially differs from any value
		}
		if vs[w] {
			return false
		}
	}
	return true
}

// MergeWith conjoins d into c, reporting false on contradiction.
func (c *Conj) MergeWith(d *Conj) bool {
	for f, v := range d.eq {
		if !c.AddEq(f, v) {
			return false
		}
	}
	for f, vs := range d.neq {
		for v := range vs {
			if !c.AddNeq(f, v) {
				return false
			}
		}
	}
	return true
}

// ToPred converts the conjunction to an equivalent Pred.
func (c *Conj) ToPred() Pred {
	var parts []Pred
	for _, f := range c.EqFields() {
		parts = append(parts, Test{Field: f, Value: c.eq[f]})
	}
	for _, f := range c.NeqFields() {
		for _, v := range c.Neq(f) {
			parts = append(parts, Not{Test{Field: f, Value: v}})
		}
	}
	return AndAll(parts...)
}

// Key returns a canonical string; equal conjunctions have equal keys.
// It is on the hot path of event extraction and compilation, so it is
// written with appends rather than fmt.
func (c *Conj) Key() string {
	buf := make([]byte, 0, 16*(len(c.eq)+len(c.neq)))
	for _, f := range c.EqFields() {
		buf = append(buf, f...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, int64(c.eq[f]), 10)
		buf = append(buf, ';')
	}
	for _, f := range c.NeqFields() {
		for _, v := range c.Neq(f) {
			buf = append(buf, f...)
			buf = append(buf, '!', '=')
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ';')
		}
	}
	return string(buf)
}

// String renders the conjunction in concrete syntax; the empty conjunction
// prints as "true".
func (c *Conj) String() string {
	var parts []string
	for _, f := range c.EqFields() {
		parts = append(parts, fmt.Sprintf("%s=%d", f, c.eq[f]))
	}
	for _, f := range c.NeqFields() {
		for _, v := range c.Neq(f) {
			parts = append(parts, fmt.Sprintf("%s!=%d", f, v))
		}
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " & ")
}
