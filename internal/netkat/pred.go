package netkat

import "fmt"

// Pred is a NetKAT predicate (a test): a boolean formula over packet
// header fields plus the location pseudo-fields "sw" and "pt".
type Pred interface {
	isPred()
	// Eval reports whether the predicate holds of the located packet.
	Eval(lp LocatedPacket) bool
	String() string
}

// True is the always-true test.
type True struct{}

// False is the always-false test (drop, as a policy).
type False struct{}

// Test is the equality test field = value. Field may be a header field or
// one of the pseudo-fields "sw"/"pt", which test the packet's location.
type Test struct {
	Field string
	Value int
}

// Not is boolean negation.
type Not struct{ P Pred }

// And is boolean conjunction.
type And struct{ L, R Pred }

// Or is boolean disjunction.
type Or struct{ L, R Pred }

func (True) isPred()  {}
func (False) isPred() {}
func (Test) isPred()  {}
func (Not) isPred()   {}
func (And) isPred()   {}
func (Or) isPred()    {}

// Eval implements Pred.
func (True) Eval(LocatedPacket) bool { return true }

// Eval implements Pred.
func (False) Eval(LocatedPacket) bool { return false }

// Eval implements Pred.
func (t Test) Eval(lp LocatedPacket) bool {
	switch t.Field {
	case FieldSw:
		return lp.Loc.Switch == t.Value
	case FieldPt:
		return lp.Loc.Port == t.Value
	default:
		v, ok := lp.Pkt[t.Field]
		return ok && v == t.Value
	}
}

// Eval implements Pred.
func (n Not) Eval(lp LocatedPacket) bool { return !n.P.Eval(lp) }

// Eval implements Pred.
func (a And) Eval(lp LocatedPacket) bool { return a.L.Eval(lp) && a.R.Eval(lp) }

// Eval implements Pred.
func (o Or) Eval(lp LocatedPacket) bool { return o.L.Eval(lp) || o.R.Eval(lp) }

func (True) String() string   { return "true" }
func (False) String() string  { return "false" }
func (t Test) String() string { return fmt.Sprintf("%s=%d", t.Field, t.Value) }
func (n Not) String() string  { return "!" + parenPred(n.P, 3) }
func (a And) String() string  { return parenPred(a.L, 2) + " & " + parenPred(a.R, 2) }
func (o Or) String() string   { return parenPred(o.L, 1) + " | " + parenPred(o.R, 1) }

// predLevel returns the binding strength of a predicate's top operator.
func predLevel(p Pred) int {
	switch p.(type) {
	case Or:
		return 1
	case And:
		return 2
	case Not:
		return 3
	default:
		return 4
	}
}

func parenPred(p Pred, level int) string {
	if predLevel(p) < level {
		return "(" + p.String() + ")"
	}
	return p.String()
}

// AndAll folds a list of predicates with And; the empty list is True.
func AndAll(ps ...Pred) Pred {
	var out Pred = True{}
	for i, p := range ps {
		if i == 0 {
			out = p
		} else {
			out = And{out, p}
		}
	}
	return out
}

// OrAll folds a list of predicates with Or; the empty list is False.
func OrAll(ps ...Pred) Pred {
	var out Pred = False{}
	for i, p := range ps {
		if i == 0 {
			out = p
		} else {
			out = Or{out, p}
		}
	}
	return out
}
