package netkat

import "fmt"

// Policy is a NetKAT command: a relation on located packets built from
// tests, field assignments, union, sequencing, iteration, and links.
type Policy interface {
	isPolicy()
	String() string
}

// Filter lifts a predicate to a policy: pass the packet iff the test holds.
type Filter struct{ P Pred }

// Assign is the field assignment x <- n. Assigning "pt" moves the packet to
// another port of the same switch; assigning "sw" is rejected by Validate.
type Assign struct {
	Field string
	Value int
}

// Union is p + q: the union of the two packet-processing behaviors.
type Union struct{ L, R Policy }

// Seq is p ; q: run q on each result of p.
type Seq struct{ L, R Policy }

// Star is p*: true + p + p;p + ... (reflexive transitive closure).
type Star struct{ P Policy }

// Link is the link definition (n1:m1) -> (n2:m2): it forwards a packet
// located at Src across a physical link to Dst.
type Link struct {
	Src, Dst Location
}

func (Filter) isPolicy() {}
func (Assign) isPolicy() {}
func (Union) isPolicy()  {}
func (Seq) isPolicy()    {}
func (Star) isPolicy()   {}
func (Link) isPolicy()   {}

func (f Filter) String() string { return f.P.String() }
func (a Assign) String() string { return fmt.Sprintf("%s<-%d", a.Field, a.Value) }
func (u Union) String() string  { return parenPol(u.L, 1) + " + " + parenPol(u.R, 1) }
func (s Seq) String() string    { return parenPol(s.L, 2) + "; " + parenPol(s.R, 2) }
func (s Star) String() string   { return parenPol(s.P, 3) + "*" }
func (l Link) String() string   { return fmt.Sprintf("(%v)=>(%v)", l.Src, l.Dst) }

func polLevel(p Policy) int {
	switch p.(type) {
	case Union:
		return 1
	case Seq:
		return 2
	default:
		return 3
	}
}

func parenPol(p Policy, level int) string {
	if polLevel(p) < level {
		return "(" + p.String() + ")"
	}
	return p.String()
}

// ID is the identity policy (the test true).
func ID() Policy { return Filter{True{}} }

// Drop is the empty policy (the test false).
func Drop() Policy { return Filter{False{}} }

// UnionAll folds policies with Union; the empty list is Drop.
func UnionAll(ps ...Policy) Policy {
	if len(ps) == 0 {
		return Drop()
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Union{out, p}
	}
	return out
}

// SeqAll folds policies with Seq; the empty list is ID.
func SeqAll(ps ...Policy) Policy {
	if len(ps) == 0 {
		return ID()
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Seq{out, p}
	}
	return out
}

// Validate checks static well-formedness: no assignment to "sw" and no
// negative field values (the compiler reserves negatives as wildcards).
func Validate(p Policy) error {
	switch q := p.(type) {
	case Filter:
		return validatePred(q.P)
	case Assign:
		if q.Field == FieldSw {
			return fmt.Errorf("netkat: assignment to sw is not allowed; use a Link")
		}
		if q.Value < 0 {
			return fmt.Errorf("netkat: negative value in assignment %v", q)
		}
		return nil
	case Union:
		if err := Validate(q.L); err != nil {
			return err
		}
		return Validate(q.R)
	case Seq:
		if err := Validate(q.L); err != nil {
			return err
		}
		return Validate(q.R)
	case Star:
		return Validate(q.P)
	case Link:
		return nil
	default:
		return fmt.Errorf("netkat: unknown policy node %T", p)
	}
}

func validatePred(p Pred) error {
	switch q := p.(type) {
	case Test:
		if q.Value < 0 {
			return fmt.Errorf("netkat: negative value in test %v", q)
		}
		return nil
	case Not:
		return validatePred(q.P)
	case And:
		if err := validatePred(q.L); err != nil {
			return err
		}
		return validatePred(q.R)
	case Or:
		if err := validatePred(q.L); err != nil {
			return err
		}
		return validatePred(q.R)
	default:
		return nil
	}
}

// Links returns every Link node occurring in the policy, in syntax order.
func Links(p Policy) []Link {
	var out []Link
	var walk func(Policy)
	walk = func(p Policy) {
		switch q := p.(type) {
		case Union:
			walk(q.L)
			walk(q.R)
		case Seq:
			walk(q.L)
			walk(q.R)
		case Star:
			walk(q.P)
		case Link:
			out = append(out, q)
		}
	}
	walk(p)
	return out
}

// HasLinks reports whether any Link node occurs in the policy.
func HasLinks(p Policy) bool {
	switch q := p.(type) {
	case Union:
		return HasLinks(q.L) || HasLinks(q.R)
	case Seq:
		return HasLinks(q.L) || HasLinks(q.R)
	case Star:
		return HasLinks(q.P)
	case Link:
		return true
	default:
		return false
	}
}

// FieldsOf returns every header field name mentioned by the policy
// (excluding the pseudo-fields sw and pt), sorted.
func FieldsOf(p Policy) []string {
	set := map[string]bool{}
	var walkPred func(Pred)
	walkPred = func(p Pred) {
		switch q := p.(type) {
		case Test:
			if q.Field != FieldSw && q.Field != FieldPt {
				set[q.Field] = true
			}
		case Not:
			walkPred(q.P)
		case And:
			walkPred(q.L)
			walkPred(q.R)
		case Or:
			walkPred(q.L)
			walkPred(q.R)
		}
	}
	var walk func(Policy)
	walk = func(p Policy) {
		switch q := p.(type) {
		case Filter:
			walkPred(q.P)
		case Assign:
			if q.Field != FieldSw && q.Field != FieldPt {
				set[q.Field] = true
			}
		case Union:
			walk(q.L)
			walk(q.R)
		case Seq:
			walk(q.L)
			walk(q.R)
		case Star:
			walk(q.P)
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
