package netkat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lp(sw, pt int, fields map[string]int) LocatedPacket {
	p := Packet{}
	for k, v := range fields {
		p[k] = v
	}
	return LocatedPacket{Pkt: p, Loc: Location{Switch: sw, Port: pt}}
}

func TestPredEval(t *testing.T) {
	x := lp(1, 2, map[string]int{"dst": 4, "src": 1})
	cases := []struct {
		p    Pred
		want bool
	}{
		{True{}, true},
		{False{}, false},
		{Test{"dst", 4}, true},
		{Test{"dst", 5}, false},
		{Test{"missing", 0}, false},
		{Test{FieldSw, 1}, true},
		{Test{FieldSw, 2}, false},
		{Test{FieldPt, 2}, true},
		{Not{Test{"dst", 4}}, false},
		{And{Test{"dst", 4}, Test{"src", 1}}, true},
		{And{Test{"dst", 4}, Test{"src", 2}}, false},
		{Or{Test{"dst", 9}, Test{"src", 1}}, true},
		{Or{Test{"dst", 9}, Test{"src", 9}}, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(x); got != c.want {
			t.Errorf("%v.Eval = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEvalFilterAssign(t *testing.T) {
	x := lp(1, 2, map[string]int{"dst": 4})
	got := Eval(Seq{Filter{Test{"dst", 4}}, Assign{"dst", 7}}, x)
	if len(got) != 1 || got[0].Pkt["dst"] != 7 {
		t.Fatalf("got %v", got)
	}
	if x.Pkt["dst"] != 4 {
		t.Fatalf("input mutated: %v", x)
	}
	if got := Eval(Seq{Filter{Test{"dst", 5}}, Assign{"dst", 7}}, x); len(got) != 0 {
		t.Fatalf("filter failed to drop: %v", got)
	}
}

func TestEvalAssignPt(t *testing.T) {
	x := lp(1, 2, nil)
	got := Eval(Assign{FieldPt, 9}, x)
	if len(got) != 1 || got[0].Loc != (Location{1, 9}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalLink(t *testing.T) {
	l := Link{Src: Location{1, 1}, Dst: Location{4, 1}}
	if got := Eval(l, lp(1, 1, nil)); len(got) != 1 || got[0].Loc != (Location{4, 1}) {
		t.Fatalf("got %v", got)
	}
	if got := Eval(l, lp(1, 2, nil)); len(got) != 0 {
		t.Fatalf("link fired at wrong location: %v", got)
	}
}

func TestEvalUnionDedup(t *testing.T) {
	x := lp(1, 2, map[string]int{"dst": 4})
	got := Eval(Union{ID(), ID()}, x)
	if len(got) != 1 {
		t.Fatalf("union did not dedup: %v", got)
	}
}

func TestEvalStar(t *testing.T) {
	// (dst=0; dst<-1 + dst=1; dst<-2)* from dst=0 yields {0,1,2}.
	p := Star{Union{
		Seq{Filter{Test{"dst", 0}}, Assign{"dst", 1}},
		Seq{Filter{Test{"dst", 1}}, Assign{"dst", 2}},
	}}
	got := Eval(p, lp(1, 1, map[string]int{"dst": 0}))
	if len(got) != 3 {
		t.Fatalf("star: got %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Assign{FieldSw, 3}); err == nil {
		t.Error("assignment to sw accepted")
	}
	if err := Validate(Assign{"dst", -1}); err == nil {
		t.Error("negative assignment accepted")
	}
	if err := Validate(Filter{Test{"dst", -2}}); err == nil {
		t.Error("negative test accepted")
	}
	if err := Validate(Seq{Filter{True{}}, Assign{"dst", 3}}); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

// randPred generates a random predicate over a small field/value universe.
func randPred(r *rand.Rand, depth int) Pred {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return True{}
		case 1:
			return False{}
		default:
			return Test{Field: []string{"a", "b", FieldPt}[r.Intn(3)], Value: r.Intn(3)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not{randPred(r, depth-1)}
	case 1:
		return And{randPred(r, depth-1), randPred(r, depth-1)}
	default:
		return Or{randPred(r, depth-1), randPred(r, depth-1)}
	}
}

func randLP(r *rand.Rand) LocatedPacket {
	return lp(r.Intn(3), r.Intn(3), map[string]int{"a": r.Intn(3), "b": r.Intn(3)})
}

func TestPredBooleanLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func(name string, f func(p, q Pred, x LocatedPacket) bool) {
		for i := 0; i < 500; i++ {
			p, q, x := randPred(r, 3), randPred(r, 3), randLP(r)
			if !f(p, q, x) {
				t.Fatalf("%s violated for p=%v q=%v x=%v", name, p, q, x)
			}
		}
	}
	check("double negation", func(p, _ Pred, x LocatedPacket) bool {
		return Not{Not{p}}.Eval(x) == p.Eval(x)
	})
	check("de morgan", func(p, q Pred, x LocatedPacket) bool {
		return Not{And{p, q}}.Eval(x) == Or{Not{p}, Not{q}}.Eval(x)
	})
	check("excluded middle", func(p, _ Pred, x LocatedPacket) bool {
		return Or{p, Not{p}}.Eval(x)
	})
}

// randPolicy generates a random link-free policy.
func randPolicy(r *rand.Rand, depth int) Policy {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Filter{randPred(r, 1)}
		case 1:
			return Assign{Field: []string{"a", "b", FieldPt}[r.Intn(3)], Value: r.Intn(3)}
		default:
			return ID()
		}
	}
	switch r.Intn(4) {
	case 0:
		return Union{randPolicy(r, depth-1), randPolicy(r, depth-1)}
	case 1:
		return Seq{randPolicy(r, depth-1), randPolicy(r, depth-1)}
	case 2:
		return Star{randPolicy(r, depth-2)}
	default:
		return Filter{randPred(r, depth-1)}
	}
}

func evalEqual(p, q Policy, x LocatedPacket) bool {
	a, b := Eval(p, x), Eval(q, x)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestKATLaws checks a selection of KAT axioms on random policies/packets.
func TestKATLaws(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		p := randPolicy(r, 3)
		q := randPolicy(r, 3)
		s := randPolicy(r, 3)
		x := randLP(r)
		if !evalEqual(Union{p, q}, Union{q, p}, x) {
			t.Fatalf("union commutativity: p=%v q=%v", p, q)
		}
		if !evalEqual(Union{p, p}, p, x) {
			t.Fatalf("union idempotence: p=%v", p)
		}
		if !evalEqual(Seq{p, Union{q, s}}, Union{Seq{p, q}, Seq{p, s}}, x) {
			t.Fatalf("left distributivity: p=%v q=%v s=%v", p, q, s)
		}
		if !evalEqual(Seq{Union{p, q}, s}, Union{Seq{p, s}, Seq{q, s}}, x) {
			t.Fatalf("right distributivity: p=%v q=%v s=%v", p, q, s)
		}
		if !evalEqual(Seq{ID(), p}, p, x) || !evalEqual(Seq{p, ID()}, p, x) {
			t.Fatalf("identity: p=%v", p)
		}
		if !evalEqual(Seq{Drop(), p}, Drop(), x) {
			t.Fatalf("annihilation: p=%v", p)
		}
	}
}

// TestStarUnrolling checks p* = 1 + p;p* pointwise.
func TestStarUnrolling(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		p := randPolicy(r, 2)
		x := randLP(r)
		if !evalEqual(Star{p}, Union{ID(), Seq{p, Star{p}}}, x) {
			t.Fatalf("star unrolling: p=%v x=%v", p, x)
		}
	}
}

func TestConjOps(t *testing.T) {
	c := NewConj()
	if !c.AddEq("a", 1) || !c.AddNeq("b", 2) {
		t.Fatal("adds failed")
	}
	if c.AddEq("a", 2) {
		t.Error("contradictory eq accepted")
	}
	c = NewConj()
	c.AddNeq("a", 1)
	if c.AddEq("a", 1) {
		t.Error("eq against neq accepted")
	}
	c = NewConj()
	c.AddEq("a", 1)
	if !c.AddNeq("a", 2) {
		t.Error("compatible neq rejected")
	}
	c = NewConj()
	c.AddEq("a", 1)
	c.AddNeq("b", 2)
	c.Exists("a")
	if _, ok := c.Eq("a"); ok {
		t.Error("Exists did not strip eq")
	}
	if len(c.Neq("b")) != 1 {
		t.Error("Exists stripped wrong field")
	}
}

func TestConjEvalMatchesPred(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		c := NewConj()
		var pred Pred = True{}
		for i := 0; i < 4; i++ {
			field := []string{"a", "b", FieldPt}[r.Intn(3)]
			v := r.Intn(3)
			if r.Intn(2) == 0 {
				if !c.AddEq(field, v) {
					continue
				}
				pred = And{pred, Test{field, v}}
			} else {
				if !c.AddNeq(field, v) {
					continue
				}
				pred = And{pred, Not{Test{field, v}}}
			}
		}
		x := randLP(r)
		return c.Eval(x) == pred.Eval(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConjKeyCanonical(t *testing.T) {
	a := NewConj()
	a.AddEq("x", 1)
	a.AddNeq("y", 2)
	b := NewConj()
	b.AddNeq("y", 2)
	b.AddEq("x", 1)
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestPolicyStringRoundtripParens(t *testing.T) {
	p := Union{Seq{Filter{Test{"dst", 4}}, Assign{FieldPt, 1}}, Filter{And{Test{"a", 1}, Or{Test{"b", 2}, Test{"b", 3}}}}}
	s := p.String()
	if s == "" {
		t.Fatal("empty string")
	}
	want := "dst=4; pt<-1 + a=1 & (b=2 | b=3)"
	if s != want {
		t.Errorf("got %q, want %q", s, want)
	}
}

func TestDPacket(t *testing.T) {
	in := DPacket{Pkt: Packet{"dst": 104}, Loc: Location{Switch: 4, Port: 1}}
	out := DPacket{Pkt: Packet{"dst": 104}, Loc: Location{Switch: 4, Port: 1}, Out: true}
	if in.Key() == out.Key() {
		t.Error("direction not part of the key")
	}
	if in.Equal(out) {
		t.Error("direction ignored by Equal")
	}
	if !in.Equal(DPacket{Pkt: Packet{"dst": 104}, Loc: Location{Switch: 4, Port: 1}}) {
		t.Error("Equal broken")
	}
	if in.LP().Loc != in.Loc || !in.LP().Pkt.Equal(in.Pkt) {
		t.Error("LP projection broken")
	}
}

func TestLocationOrder(t *testing.T) {
	a := Location{Switch: 1, Port: 2}
	b := Location{Switch: 1, Port: 3}
	c := Location{Switch: 2, Port: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("Less ordering broken")
	}
	if a.String() != "1:2" {
		t.Errorf("String: %q", a.String())
	}
}

func TestPacketKeyCanonical(t *testing.T) {
	p := Packet{"b": 2, "a": 1}
	q := Packet{"a": 1, "b": 2}
	if p.Key() != q.Key() {
		t.Error("Key not canonical")
	}
	if p.String() != "{a=1, b=2}" {
		t.Errorf("String: %q", p.String())
	}
}
