package netkat

import "fmt"

// DPacket is a directed located packet: a trace point of the operational
// model. Out=false means the packet is arriving at Loc (switch ingress, or
// delivery into a host); Out=true means it is leaving Loc (switch egress,
// or emission from a host). The direction disambiguates the two roles a
// physical port plays, so the configuration relation has no spurious
// steps (e.g. a packet dropped at its ingress port must have no
// C-successor, even though a link into the attached host leaves the same
// port).
type DPacket struct {
	Pkt Packet
	Loc Location
	Out bool
}

// Key returns a canonical string usable as a set key.
func (d DPacket) Key() string {
	dir := "in"
	if d.Out {
		dir = "out"
	}
	return d.Loc.String() + dir + "|" + d.Pkt.Key()
}

// Equal reports whether two directed packets agree on direction, location
// and fields.
func (d DPacket) Equal(o DPacket) bool {
	return d.Out == o.Out && d.Loc == o.Loc && d.Pkt.Equal(o.Pkt)
}

// LP returns the undirected located packet.
func (d DPacket) LP() LocatedPacket { return LocatedPacket{Pkt: d.Pkt, Loc: d.Loc} }

// String renders the directed packet.
func (d DPacket) String() string {
	arrow := "->"
	if d.Out {
		arrow = "<-"
	}
	return fmt.Sprintf("(%v %s %v)", d.Pkt, arrow, d.Loc)
}

// DConfig is a network configuration C as a relation on directed located
// packets (Section 2): switch processing maps ingress points to egress
// points within a switch, and link traversal (including host links) maps
// egress points to the far end's ingress point.
type DConfig interface {
	DStep(d DPacket) []DPacket
}
