package netkat

import "testing"

func benchPolicy() Policy {
	// A firewall-shaped policy: two guarded paths.
	return Union{
		L: SeqAll(
			Filter{P: And{L: Test{Field: FieldPt, Value: 2}, R: Test{Field: "dst", Value: 104}}},
			Assign{Field: FieldPt, Value: 1},
			Link{Src: Location{Switch: 1, Port: 1}, Dst: Location{Switch: 4, Port: 1}},
			Assign{Field: FieldPt, Value: 2},
		),
		R: SeqAll(
			Filter{P: And{L: Test{Field: FieldPt, Value: 2}, R: Test{Field: "dst", Value: 101}}},
			Assign{Field: FieldPt, Value: 1},
			Link{Src: Location{Switch: 4, Port: 1}, Dst: Location{Switch: 1, Port: 1}},
			Assign{Field: FieldPt, Value: 2},
		),
	}
}

func BenchmarkEval(b *testing.B) {
	p := benchPolicy()
	lp := LocatedPacket{Pkt: Packet{"dst": 104}, Loc: Location{Switch: 1, Port: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eval(p, lp)
	}
}

func BenchmarkEvalStar(b *testing.B) {
	p := Star{P: Union{
		L: Seq{L: Filter{P: Test{Field: "c", Value: 0}}, R: Assign{Field: "c", Value: 1}},
		R: Seq{L: Filter{P: Test{Field: "c", Value: 1}}, R: Assign{Field: "c", Value: 2}},
	}}
	lp := LocatedPacket{Pkt: Packet{"c": 0}, Loc: Location{Switch: 1, Port: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eval(p, lp)
	}
}

func BenchmarkConjEval(b *testing.B) {
	c := NewConj()
	c.AddEq("dst", 104)
	c.AddNeq("src", 9)
	lp := LocatedPacket{Pkt: Packet{"dst": 104, "src": 1}, Loc: Location{Switch: 4, Port: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Eval(lp)
	}
}

func BenchmarkPacketClone(b *testing.B) {
	p := Packet{"dst": 104, "src": 101, "kind": 1, "id": 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Clone()
	}
}
