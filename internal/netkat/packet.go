// Package netkat implements the core NetKAT network programming language:
// packets, locations, predicates, policies, and a reference denotational
// evaluator. It corresponds to the static (stateless) fragment used in
// "Event-Driven Network Programming" (PLDI 2016), Section 3.2.
//
// A policy denotes a function from a located packet to a set of located
// packets. The special fields "sw" and "pt" refer to the packet's current
// switch and port; "pt" may be assigned, "sw" may only change by crossing
// a Link.
package netkat

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Location identifies a switch-port pair n:m (written n:m in the paper).
type Location struct {
	Switch int
	Port   int
}

// String renders the location in the paper's n:m notation.
func (l Location) String() string {
	return strconv.Itoa(l.Switch) + ":" + strconv.Itoa(l.Port)
}

// Less gives a total order on locations, used for deterministic iteration.
func (l Location) Less(o Location) bool {
	if l.Switch != o.Switch {
		return l.Switch < o.Switch
	}
	return l.Port < o.Port
}

// Packet is a record of numeric header fields {f1; f2; ...; fn}.
// The map is never mutated in place by the evaluator; use Clone/With.
type Packet map[string]int

// Clone returns an independent copy of the packet.
func (p Packet) Clone() Packet {
	q := make(Packet, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// With returns a copy of the packet with field f set to v (pkt[f <- v]).
func (p Packet) With(f string, v int) Packet {
	q := p.Clone()
	q[f] = v
	return q
}

// Equal reports whether two packets have identical fields and values.
func (p Packet) Equal(q Packet) bool {
	if len(p) != len(q) {
		return false
	}
	for k, v := range p {
		w, ok := q[k]
		if !ok || w != v {
			return false
		}
	}
	return true
}

// Fields returns the field names in sorted order.
func (p Packet) Fields() []string {
	fs := make([]string, 0, len(p))
	for k := range p {
		fs = append(fs, k)
	}
	sort.Strings(fs)
	return fs
}

// Key returns a canonical string usable as a map key for packet sets.
// Hot path (evaluator and simulator packet sets): appends, no fmt.
func (p Packet) Key() string {
	buf := make([]byte, 0, 16*len(p))
	for _, f := range p.Fields() {
		buf = append(buf, f...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, int64(p[f]), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// String renders the packet as {f1=v1, f2=v2, ...}.
func (p Packet) String() string {
	var parts []string
	for _, f := range p.Fields() {
		parts = append(parts, fmt.Sprintf("%s=%d", f, p[f]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// LocatedPacket pairs a packet with its current location (pkt, sw, pt).
type LocatedPacket struct {
	Pkt Packet
	Loc Location
}

// Key returns a canonical string usable as a map key for sets of located
// packets.
func (lp LocatedPacket) Key() string {
	return lp.Loc.String() + "|" + lp.Pkt.Key()
}

// Equal reports whether two located packets agree on location and fields.
func (lp LocatedPacket) Equal(o LocatedPacket) bool {
	return lp.Loc == o.Loc && lp.Pkt.Equal(o.Pkt)
}

// String renders the located packet as (pkt @ n:m).
func (lp LocatedPacket) String() string {
	return fmt.Sprintf("(%v @ %v)", lp.Pkt, lp.Loc)
}

// SortLocated sorts a slice of located packets into canonical order.
func SortLocated(lps []LocatedPacket) {
	sort.Slice(lps, func(i, j int) bool { return lps[i].Key() < lps[j].Key() })
}

// FieldSw and FieldPt are the special location pseudo-fields.
const (
	FieldSw = "sw"
	FieldPt = "pt"
)

// FieldLinkDown and FieldLinkUp are the reserved header fields of
// link-failure and link-recovery notifications: a packet carrying
// linkdown = LinkID(src, dst) announces that the physical link (src, dst)
// has failed, and linkup announces its recovery. Failure and recovery are
// thereby ordinary events in the paper's sense — the arrival of a packet
// satisfying a guard over these fields at a deciding switch — so the
// whole event-structure machinery (consistency, enabling, occurrence
// renaming, replay across program swaps) covers failover for free.
const (
	FieldLinkDown = "linkdown"
	FieldLinkUp   = "linkup"
)

// linkIDRadix bounds each location component of a LinkID encoding. Base
// 128 keeps the largest encodable ID (~2.7e8) inside the int32 header
// value domain the flat dataplane interns.
const linkIDRadix = 128

// LinkID encodes a directed physical link as a single header value for
// the linkdown/linkup notification fields. Each of the four location
// components must be below 128; the encoding is injective, so distinct
// links never alias.
func LinkID(src, dst Location) int {
	for _, v := range [4]int{src.Switch, src.Port, dst.Switch, dst.Port} {
		if v < 0 || v >= linkIDRadix {
			panic(fmt.Sprintf("netkat: link component %d outside [0,%d) is not LinkID-encodable", v, linkIDRadix))
		}
	}
	return ((src.Switch*linkIDRadix+src.Port)*linkIDRadix+dst.Switch)*linkIDRadix + dst.Port
}

// LinkOfID decodes a LinkID back to its directed link endpoints.
func LinkOfID(id int) (src, dst Location) {
	dst.Port = id % linkIDRadix
	id /= linkIDRadix
	dst.Switch = id % linkIDRadix
	id /= linkIDRadix
	src.Port = id % linkIDRadix
	src.Switch = id / linkIDRadix
	return src, dst
}
