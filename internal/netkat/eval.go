package netkat

import "fmt"

// StarBound caps Star fixpoint iteration; exceeding it indicates a policy
// whose closure does not stabilize on the given packet (e.g. an unbounded
// counter), which the supported fragment rules out.
const StarBound = 10000

// Eval runs the reference denotational semantics: it applies policy p to
// the located packet lp and returns the resulting set of located packets in
// canonical (sorted, deduplicated) order.
func Eval(p Policy, lp LocatedPacket) []LocatedPacket {
	set := evalSet(p, map[string]LocatedPacket{lp.Key(): lp})
	out := make([]LocatedPacket, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	SortLocated(out)
	return out
}

// evalSet applies p pointwise to a set of located packets.
func evalSet(p Policy, in map[string]LocatedPacket) map[string]LocatedPacket {
	switch q := p.(type) {
	case Filter:
		out := map[string]LocatedPacket{}
		for k, lp := range in {
			if q.P.Eval(lp) {
				out[k] = lp
			}
		}
		return out
	case Assign:
		out := map[string]LocatedPacket{}
		for _, lp := range in {
			nlp := applyAssign(q, lp)
			out[nlp.Key()] = nlp
		}
		return out
	case Union:
		l := evalSet(q.L, in)
		r := evalSet(q.R, in)
		for k, v := range r {
			l[k] = v
		}
		return l
	case Seq:
		return evalSet(q.R, evalSet(q.L, in))
	case Star:
		acc := map[string]LocatedPacket{}
		for k, v := range in {
			acc[k] = v
		}
		frontier := acc
		for i := 0; ; i++ {
			if i > StarBound {
				panic(fmt.Sprintf("netkat: Star did not stabilize within %d iterations", StarBound))
			}
			next := evalSet(q.P, frontier)
			grew := false
			fresh := map[string]LocatedPacket{}
			for k, v := range next {
				if _, ok := acc[k]; !ok {
					acc[k] = v
					fresh[k] = v
					grew = true
				}
			}
			if !grew {
				return acc
			}
			frontier = fresh
		}
	case Link:
		out := map[string]LocatedPacket{}
		for _, lp := range in {
			if lp.Loc == q.Src {
				nlp := LocatedPacket{Pkt: lp.Pkt, Loc: q.Dst}
				out[nlp.Key()] = nlp
			}
		}
		return out
	default:
		panic(fmt.Sprintf("netkat: unknown policy node %T", p))
	}
}

func applyAssign(a Assign, lp LocatedPacket) LocatedPacket {
	switch a.Field {
	case FieldPt:
		return LocatedPacket{Pkt: lp.Pkt, Loc: Location{Switch: lp.Loc.Switch, Port: a.Value}}
	case FieldSw:
		panic("netkat: assignment to sw (should be rejected by Validate)")
	default:
		return LocatedPacket{Pkt: lp.Pkt.With(a.Field, a.Value), Loc: lp.Loc}
	}
}

// EquivOn reports whether two policies produce identical output sets on
// every provided input packet. It is the semantic-equivalence helper used
// by the compiler's property tests.
func EquivOn(p, q Policy, inputs []LocatedPacket) bool {
	for _, lp := range inputs {
		a := Eval(p, lp)
		b := Eval(q, lp)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
	}
	return true
}
