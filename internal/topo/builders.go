package topo

import (
	"fmt"

	"eventnet/internal/netkat"
)

// Host node IDs are offset well above switch IDs so they never collide.
const hostIDBase = 100

// HostID returns the conventional node ID for host Hn.
func HostID(n int) int { return hostIDBase + n }

func loc(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }

// Firewall builds the two-switch topology of Figures 1 and 8(a,d):
// H1 - s1:2, s1:1 - s4:1, s4:2 - H4.
func Firewall() *Topology {
	t := New()
	t.AddSwitch(1)
	t.AddSwitch(4)
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// LearningSwitch builds the three-switch topology of Figure 8(b):
// s4 is the hub; H1 behind s1, H2 behind s2, H4 at s4.
// Links: (1:1)-(4:1), (2:1)-(4:3). Hosts at port 2 of their switch.
func LearningSwitch() *Topology {
	t := New()
	for _, s := range []int{1, 2, 4} {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddBiLink(loc(2, 1), loc(4, 3))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(2), "H2", loc(2, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// Star builds the four-switch topology of Figure 8(c,e): s4 is the hub with
// H4; H1, H2, H3 behind s1, s2, s3. Links: (1:1)-(4:1), (2:1)-(4:3),
// (3:1)-(4:4). Hosts at port 2.
func Star() *Topology {
	t := New()
	for _, s := range []int{1, 2, 3, 4} {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddBiLink(loc(2, 1), loc(4, 3))
	t.AddBiLink(loc(3, 1), loc(4, 4))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(2), "H2", loc(2, 2))
	t.AddHost(HostID(3), "H3", loc(3, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// wideFatTreeSwitchBase offsets the switch IDs of fat-trees too wide for
// the 1..hostIDBase switch range (k > 8): their switches are numbered
// from this base upward, clear of every host ID any fabric can produce
// (k=16 uses hosts 101..1124), while the k <= 8 trees keep the historical
// compact numbering.
const wideFatTreeSwitchBase = 10000

// FatTree builds a k-ary fat-tree (Al-Fahres/leaf-spine style data-center
// fabric): (k/2)^2 core switches, k pods of k/2 aggregation and k/2 edge
// switches, and k/2 hosts per edge switch (k^3/4 hosts total, named
// H1..Hn in pod order). Port conventions: on an edge switch, ports
// 1..k/2 face hosts and k/2+1..k face aggregation; on an aggregation
// switch, ports 1..k/2 face edges and k/2+1..k face cores; on a core
// switch, port p+1 faces pod p. k must be even. For k <= 8 switch IDs are
// the compact 1..(k/2)^2+k^2 range below the host-ID base; wider fabrics
// (k=16 needs 320 switches) number their switches from
// wideFatTreeSwitchBase so they cannot collide with host IDs.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d is not a positive even number", k))
	}
	half := k / 2
	core := half * half
	base := 0
	if core+k*k >= hostIDBase {
		base = wideFatTreeSwitchBase
	}
	// Switch numbering: cores base+1..base+core, then per pod p (0-based)
	// the aggregation switches base+core+p*k+1..+half followed by the edge
	// switches base+core+p*k+half+1..base+core+(p+1)*k.
	aggID := func(p, i int) int { return base + core + p*k + 1 + i }
	edgeID := func(p, j int) int { return base + core + p*k + half + 1 + j }
	t := New()
	for s := 1; s <= core+k*k; s++ {
		t.AddSwitch(base + s)
	}
	host := 1
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			e := edgeID(p, j)
			// Edge <-> aggregation.
			for i := 0; i < half; i++ {
				t.AddBiLink(loc(e, half+1+i), loc(aggID(p, i), 1+j))
			}
			// Hosts.
			for h := 0; h < half; h++ {
				t.AddHost(HostID(host), fmt.Sprintf("H%d", host), loc(e, 1+h))
				host++
			}
		}
		// Aggregation <-> core: aggregation i serves cores i*half+1..(i+1)*half.
		for i := 0; i < half; i++ {
			for m := 0; m < half; m++ {
				t.AddBiLink(loc(aggID(p, i), half+1+m), loc(base+i*half+m+1, p+1))
			}
		}
	}
	return t
}

// ShortestPath returns a minimum-hop chain of switch-to-switch links from
// switch `from` to switch `to` (BFS over the link list in declaration
// order, so the chosen path is deterministic). The second result is false
// when no path exists; a switch's path to itself is the empty chain.
func (t *Topology) ShortestPath(from, to int) ([]Link, bool) {
	if from == to {
		return nil, true
	}
	prev := map[int]Link{} // switch -> link that first reached it
	seen := map[int]bool{from: true}
	frontier := []int{from}
	for len(frontier) > 0 {
		var next []int
		for _, sw := range frontier {
			for _, lk := range t.Links {
				if lk.Src.Switch != sw || seen[lk.Dst.Switch] {
					continue
				}
				seen[lk.Dst.Switch] = true
				prev[lk.Dst.Switch] = lk
				if lk.Dst.Switch == to {
					var path []Link
					for at := to; at != from; at = prev[at].Src.Switch {
						path = append([]Link{prev[at]}, path...)
					}
					return path, true
				}
				next = append(next, lk.Dst.Switch)
			}
		}
		frontier = next
	}
	return nil, false
}

// ShortestPathAvoiding is ShortestPath restricted to links outside
// `banned` (directed: ban both directions to exclude a bidirectional
// link). The BFS and tie-breaking are identical to ShortestPath, so the
// result is deterministic.
func (t *Topology) ShortestPathAvoiding(from, to int, banned map[Link]bool) ([]Link, bool) {
	if from == to {
		return nil, true
	}
	prev := map[int]Link{}
	seen := map[int]bool{from: true}
	frontier := []int{from}
	for len(frontier) > 0 {
		var next []int
		for _, sw := range frontier {
			for _, lk := range t.Links {
				if lk.Src.Switch != sw || seen[lk.Dst.Switch] || banned[lk] {
					continue
				}
				seen[lk.Dst.Switch] = true
				prev[lk.Dst.Switch] = lk
				if lk.Dst.Switch == to {
					var path []Link
					for at := to; at != from; at = prev[at].Src.Switch {
						path = append([]Link{prev[at]}, path...)
					}
					return path, true
				}
				next = append(next, lk.Dst.Switch)
			}
		}
		frontier = next
	}
	return nil, false
}

// Diamond builds the minimal failover topology: H1 behind s1, H2 behind
// s4, a primary path s1-s2-s4 and a link-disjoint backup path s1-s3-s4,
// plus a monitor host M on s1 (the failure-notification source).
//
//	H1 - s1:3   s1:1 - s2:1, s2:2 - s4:1   (primary)
//	M  - s1:4   s1:2 - s3:1, s3:2 - s4:2   (backup)
//	H2 - s4:3
func Diamond() *Topology {
	t := New()
	for _, s := range []int{1, 2, 3, 4} {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(2, 1))
	t.AddBiLink(loc(2, 2), loc(4, 1))
	t.AddBiLink(loc(1, 2), loc(3, 1))
	t.AddBiLink(loc(3, 2), loc(4, 2))
	t.AddHost(HostID(1), "H1", loc(1, 3))
	t.AddHost(HostID(2), "H2", loc(4, 3))
	t.AddHost(HostID(9), "M", loc(1, 4))
	return t
}

// WAN builds a wide-area-style six-switch graph with two link-disjoint
// equal-cost three-hop paths between the H1 site (s1) and the H2 site
// (s4) — the ECMP shape whose path choice a failover program flips:
//
//	primary  s1:1 - s2:1, s2:2 - s3:1, s3:2 - s4:1
//	backup   s1:2 - s5:1, s5:2 - s6:1, s6:2 - s4:2
//
// H1 sits at s1:3, H2 at s4:3, and the monitor M at s1:4.
func WAN() *Topology {
	t := New()
	for s := 1; s <= 6; s++ {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(2, 1))
	t.AddBiLink(loc(2, 2), loc(3, 1))
	t.AddBiLink(loc(3, 2), loc(4, 1))
	t.AddBiLink(loc(1, 2), loc(5, 1))
	t.AddBiLink(loc(5, 2), loc(6, 1))
	t.AddBiLink(loc(6, 2), loc(4, 2))
	t.AddHost(HostID(1), "H1", loc(1, 3))
	t.AddHost(HostID(2), "H2", loc(4, 3))
	t.AddHost(HostID(9), "M", loc(1, 4))
	return t
}

// Ring builds the synthetic ring of Section 5.2 with the given diameter
// (number of switches between H1 and H2 going one way). The ring has
// 2*diameter switches numbered 1..2d; switch i connects to i+1 (mod). H1 is
// attached to switch 1, H2 to switch diameter+1, both at port 3. Port 1 of
// each switch faces clockwise (toward i+1), port 2 counterclockwise.
func Ring(diameter int) *Topology {
	n := 2 * diameter
	t := New()
	for i := 1; i <= n; i++ {
		t.AddSwitch(i)
	}
	for i := 1; i <= n; i++ {
		next := i%n + 1
		t.AddBiLink(loc(i, 1), loc(next, 2))
	}
	t.AddHost(HostID(1), "H1", loc(1, 3))
	t.AddHost(HostID(2), "H2", loc(diameter+1, 3))
	return t
}
