package topo

import "eventnet/internal/netkat"

// Host node IDs are offset well above switch IDs so they never collide.
const hostIDBase = 100

// HostID returns the conventional node ID for host Hn.
func HostID(n int) int { return hostIDBase + n }

func loc(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }

// Firewall builds the two-switch topology of Figures 1 and 8(a,d):
// H1 - s1:2, s1:1 - s4:1, s4:2 - H4.
func Firewall() *Topology {
	t := New()
	t.AddSwitch(1)
	t.AddSwitch(4)
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// LearningSwitch builds the three-switch topology of Figure 8(b):
// s4 is the hub; H1 behind s1, H2 behind s2, H4 at s4.
// Links: (1:1)-(4:1), (2:1)-(4:3). Hosts at port 2 of their switch.
func LearningSwitch() *Topology {
	t := New()
	for _, s := range []int{1, 2, 4} {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddBiLink(loc(2, 1), loc(4, 3))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(2), "H2", loc(2, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// Star builds the four-switch topology of Figure 8(c,e): s4 is the hub with
// H4; H1, H2, H3 behind s1, s2, s3. Links: (1:1)-(4:1), (2:1)-(4:3),
// (3:1)-(4:4). Hosts at port 2.
func Star() *Topology {
	t := New()
	for _, s := range []int{1, 2, 3, 4} {
		t.AddSwitch(s)
	}
	t.AddBiLink(loc(1, 1), loc(4, 1))
	t.AddBiLink(loc(2, 1), loc(4, 3))
	t.AddBiLink(loc(3, 1), loc(4, 4))
	t.AddHost(HostID(1), "H1", loc(1, 2))
	t.AddHost(HostID(2), "H2", loc(2, 2))
	t.AddHost(HostID(3), "H3", loc(3, 2))
	t.AddHost(HostID(4), "H4", loc(4, 2))
	return t
}

// Ring builds the synthetic ring of Section 5.2 with the given diameter
// (number of switches between H1 and H2 going one way). The ring has
// 2*diameter switches numbered 1..2d; switch i connects to i+1 (mod). H1 is
// attached to switch 1, H2 to switch diameter+1, both at port 3. Port 1 of
// each switch faces clockwise (toward i+1), port 2 counterclockwise.
func Ring(diameter int) *Topology {
	n := 2 * diameter
	t := New()
	for i := 1; i <= n; i++ {
		t.AddSwitch(i)
	}
	for i := 1; i <= n; i++ {
		next := i%n + 1
		t.AddBiLink(loc(i, 1), loc(next, 2))
	}
	t.AddHost(HostID(1), "H1", loc(1, 3))
	t.AddHost(HostID(2), "H2", loc(diameter+1, 3))
	return t
}
