package topo

import "testing"

func TestDiamondAndWANValidate(t *testing.T) {
	for _, tp := range []*Topology{Diamond(), WAN()} {
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"H1", "H2", "M"} {
			if _, ok := tp.HostByName(name); !ok {
				t.Fatalf("missing host %s", name)
			}
		}
	}
}

func TestDiamondDisjointPaths(t *testing.T) {
	tp := Diamond()
	primary, ok := tp.ShortestPath(1, 4)
	if !ok || len(primary) != 2 {
		t.Fatalf("primary path: %v, %v", primary, ok)
	}
	banned := map[Link]bool{}
	for _, l := range primary {
		banned[l] = true
		banned[Link{Src: l.Dst, Dst: l.Src}] = true
	}
	backup, ok := tp.ShortestPathAvoiding(1, 4, banned)
	if !ok || len(backup) != 2 {
		t.Fatalf("backup path: %v, %v", backup, ok)
	}
	for _, b := range backup {
		if banned[b] {
			t.Fatalf("backup reuses banned link %v", b)
		}
	}
}

func TestWANEqualCostDisjointPaths(t *testing.T) {
	tp := WAN()
	primary, ok := tp.ShortestPath(1, 4)
	if !ok || len(primary) != 3 {
		t.Fatalf("primary path: %v, %v", primary, ok)
	}
	banned := map[Link]bool{}
	for _, l := range primary {
		banned[l] = true
		banned[Link{Src: l.Dst, Dst: l.Src}] = true
	}
	backup, ok := tp.ShortestPathAvoiding(1, 4, banned)
	if !ok || len(backup) != len(primary) {
		t.Fatalf("backup path not equal-cost: %v vs %v", backup, primary)
	}
}

func TestShortestPathAvoidingNoPath(t *testing.T) {
	tp := Firewall()
	banned := map[Link]bool{
		{Src: loc(1, 1), Dst: loc(4, 1)}: true,
	}
	if p, ok := tp.ShortestPathAvoiding(1, 4, banned); ok {
		t.Fatalf("expected no path, got %v", p)
	}
	// Unbanned direction still routes 4 -> 1.
	if _, ok := tp.ShortestPathAvoiding(4, 1, banned); !ok {
		t.Fatal("reverse direction should be unaffected")
	}
}

// TestFatTreeArities checks the compact k<=8 numbering and the wide k=16
// numbering: both validate, hosts count k^3/4, and wide switch IDs are
// clear of the host-ID range.
func TestFatTreeArities(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		tp := FatTree(k)
		if err := tp.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantHosts := k * k * k / 4
		if len(tp.Hosts) != wantHosts {
			t.Fatalf("k=%d: %d hosts, want %d", k, len(tp.Hosts), wantHosts)
		}
		wantSwitches := (k/2)*(k/2) + k*k
		if len(tp.Switches) != wantSwitches {
			t.Fatalf("k=%d: %d switches, want %d", k, len(tp.Switches), wantSwitches)
		}
		if k > 8 {
			for _, s := range tp.Switches {
				if s < wideFatTreeSwitchBase {
					t.Fatalf("k=%d: switch %d below the wide base", k, s)
				}
			}
		} else if tp.Switches[wantSwitches-1] >= hostIDBase {
			t.Fatalf("k=%d: compact switch IDs reach the host base", k)
		}
		// Any two hosts are connected through the fabric.
		h1 := tp.Hosts[0]
		hn := tp.Hosts[len(tp.Hosts)-1]
		path, ok := tp.ShortestPath(h1.Attach.Switch, hn.Attach.Switch)
		if !ok || len(path) != 4 {
			t.Fatalf("k=%d: cross-pod path %v, %v (want 4 hops)", k, path, ok)
		}
	}
}
