package topo

import (
	"testing"

	"eventnet/internal/netkat"
)

func TestBuildersValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		t    *Topology
	}{
		{"firewall", Firewall()},
		{"learning-switch", LearningSwitch()},
		{"star", Star()},
		{"ring-2", Ring(2)},
		{"ring-8", Ring(8)},
	} {
		if err := tc.t.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestFirewallShape(t *testing.T) {
	tp := Firewall()
	if len(tp.Switches) != 2 || len(tp.Hosts) != 2 {
		t.Fatalf("shape: %v switches, %v hosts", tp.Switches, tp.Hosts)
	}
	h1, ok := tp.HostByName("H1")
	if !ok || h1.Attach != (netkat.Location{Switch: 1, Port: 2}) {
		t.Errorf("H1: %v", h1)
	}
	lk, ok := tp.LinkFrom(netkat.Location{Switch: 1, Port: 1})
	if !ok || lk.Dst != (netkat.Location{Switch: 4, Port: 1}) {
		t.Errorf("s1 link: %v", lk)
	}
	// Host link both ways.
	lk, ok = tp.LinkFrom(h1.Loc())
	if !ok || lk.Dst != h1.Attach {
		t.Errorf("host uplink: %v", lk)
	}
	lk, ok = tp.LinkFrom(h1.Attach)
	if !ok || lk.Dst != h1.Loc() {
		t.Errorf("host downlink: %v", lk)
	}
}

func TestRingShape(t *testing.T) {
	d := 3
	tp := Ring(d)
	if len(tp.Switches) != 2*d {
		t.Fatalf("switches: %v", tp.Switches)
	}
	// Clockwise closure: following port 1 from switch 1 visits every
	// switch and returns.
	cur := 1
	for i := 0; i < 2*d; i++ {
		lk, ok := tp.LinkFrom(netkat.Location{Switch: cur, Port: 1})
		if !ok {
			t.Fatalf("no clockwise link from %d", cur)
		}
		cur = lk.Dst.Switch
	}
	if cur != 1 {
		t.Fatalf("ring does not close: ended at %d", cur)
	}
	if h2, ok := tp.HostByName("H2"); !ok || h2.Attach.Switch != d+1 {
		t.Errorf("H2 attach: %v", h2)
	}
}

func TestValidateRejects(t *testing.T) {
	tp := New()
	tp.AddSwitch(1)
	tp.AddHost(1, "H1", netkat.Location{Switch: 1, Port: 2}) // ID collides
	if err := tp.Validate(); err == nil {
		t.Error("host/switch ID collision accepted")
	}
	// AddHost auto-registers the attachment switch, so a dangling
	// attachment can only arise from a hand-built value.
	tp2 := &Topology{Switches: []int{1}, Hosts: []Host{{ID: HostID(1), Name: "H1", Attach: netkat.Location{Switch: 9, Port: 2}}}}
	if err := tp2.Validate(); err == nil {
		t.Error("dangling attachment accepted")
	}
	tp3 := New()
	tp3.AddSwitch(1)
	tp3.AddSwitch(2)
	tp3.AddSwitch(3)
	tp3.AddBiLink(netkat.Location{Switch: 1, Port: 1}, netkat.Location{Switch: 2, Port: 1})
	tp3.AddBiLink(netkat.Location{Switch: 1, Port: 1}, netkat.Location{Switch: 3, Port: 1})
	if err := tp3.Validate(); err == nil {
		t.Error("two links from one port accepted")
	}
}

func TestHostLocs(t *testing.T) {
	tp := Star()
	locs := tp.HostLocs()
	if len(locs) != 4 {
		t.Errorf("host locs: %v", locs)
	}
	for _, h := range tp.Hosts {
		if !locs[h.Loc()] {
			t.Errorf("missing %s", h.Name)
		}
	}
}
