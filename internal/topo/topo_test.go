package topo

import (
	"testing"

	"eventnet/internal/netkat"
)

func TestBuildersValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		t    *Topology
	}{
		{"firewall", Firewall()},
		{"learning-switch", LearningSwitch()},
		{"star", Star()},
		{"ring-2", Ring(2)},
		{"ring-8", Ring(8)},
	} {
		if err := tc.t.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestFirewallShape(t *testing.T) {
	tp := Firewall()
	if len(tp.Switches) != 2 || len(tp.Hosts) != 2 {
		t.Fatalf("shape: %v switches, %v hosts", tp.Switches, tp.Hosts)
	}
	h1, ok := tp.HostByName("H1")
	if !ok || h1.Attach != (netkat.Location{Switch: 1, Port: 2}) {
		t.Errorf("H1: %v", h1)
	}
	lk, ok := tp.LinkFrom(netkat.Location{Switch: 1, Port: 1})
	if !ok || lk.Dst != (netkat.Location{Switch: 4, Port: 1}) {
		t.Errorf("s1 link: %v", lk)
	}
	// Host link both ways.
	lk, ok = tp.LinkFrom(h1.Loc())
	if !ok || lk.Dst != h1.Attach {
		t.Errorf("host uplink: %v", lk)
	}
	lk, ok = tp.LinkFrom(h1.Attach)
	if !ok || lk.Dst != h1.Loc() {
		t.Errorf("host downlink: %v", lk)
	}
}

func TestRingShape(t *testing.T) {
	d := 3
	tp := Ring(d)
	if len(tp.Switches) != 2*d {
		t.Fatalf("switches: %v", tp.Switches)
	}
	// Clockwise closure: following port 1 from switch 1 visits every
	// switch and returns.
	cur := 1
	for i := 0; i < 2*d; i++ {
		lk, ok := tp.LinkFrom(netkat.Location{Switch: cur, Port: 1})
		if !ok {
			t.Fatalf("no clockwise link from %d", cur)
		}
		cur = lk.Dst.Switch
	}
	if cur != 1 {
		t.Fatalf("ring does not close: ended at %d", cur)
	}
	if h2, ok := tp.HostByName("H2"); !ok || h2.Attach.Switch != d+1 {
		t.Errorf("H2 attach: %v", h2)
	}
}

func TestValidateRejects(t *testing.T) {
	tp := New()
	tp.AddSwitch(1)
	tp.AddHost(1, "H1", netkat.Location{Switch: 1, Port: 2}) // ID collides
	if err := tp.Validate(); err == nil {
		t.Error("host/switch ID collision accepted")
	}
	// AddHost auto-registers the attachment switch, so a dangling
	// attachment can only arise from a hand-built value.
	tp2 := &Topology{Switches: []int{1}, Hosts: []Host{{ID: HostID(1), Name: "H1", Attach: netkat.Location{Switch: 9, Port: 2}}}}
	if err := tp2.Validate(); err == nil {
		t.Error("dangling attachment accepted")
	}
	tp3 := New()
	tp3.AddSwitch(1)
	tp3.AddSwitch(2)
	tp3.AddSwitch(3)
	tp3.AddBiLink(netkat.Location{Switch: 1, Port: 1}, netkat.Location{Switch: 2, Port: 1})
	tp3.AddBiLink(netkat.Location{Switch: 1, Port: 1}, netkat.Location{Switch: 3, Port: 1})
	if err := tp3.Validate(); err == nil {
		t.Error("two links from one port accepted")
	}
}

func TestHostLocs(t *testing.T) {
	tp := Star()
	locs := tp.HostLocs()
	if len(locs) != 4 {
		t.Errorf("host locs: %v", locs)
	}
	for _, h := range tp.Hosts {
		if !locs[h.Loc()] {
			t.Errorf("missing %s", h.Name)
		}
	}
}

func TestFatTree(t *testing.T) {
	k := 4
	tp := FatTree(k)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	core := (k / 2) * (k / 2)
	if got, want := len(tp.Switches), core+k*k; got != want {
		t.Fatalf("switches: %d want %d", got, want)
	}
	if got, want := len(tp.Hosts), k*k*k/4; got != want {
		t.Fatalf("hosts: %d want %d", got, want)
	}
	// A k-ary fat-tree has k^3/4 edge-agg and k^3/4 agg-core bidirectional
	// pairs: k^3 unidirectional links.
	if got, want := len(tp.Links), k*k*k; got != want {
		t.Fatalf("links: %d want %d", got, want)
	}
	// Every host pair is connected by a path, and intra-pod paths are
	// shorter than inter-pod ones.
	h1, _ := tp.HostByName("H1")
	h2, _ := tp.HostByName("H2")   // same edge switch
	h3, _ := tp.HostByName("H3")   // same pod, other edge
	h16, _ := tp.HostByName("H16") // other pod
	if p, ok := tp.ShortestPath(h1.Attach.Switch, h2.Attach.Switch); !ok || len(p) != 0 {
		t.Fatalf("same-edge path: %v %v", p, ok)
	}
	if p, ok := tp.ShortestPath(h1.Attach.Switch, h3.Attach.Switch); !ok || len(p) != 2 {
		t.Fatalf("intra-pod path: %v %v", p, ok)
	}
	p, ok := tp.ShortestPath(h1.Attach.Switch, h16.Attach.Switch)
	if !ok || len(p) != 4 {
		t.Fatalf("inter-pod path: %v %v", p, ok)
	}
	// The path is a connected chain of real links.
	for i := 1; i < len(p); i++ {
		if p[i].Src.Switch != p[i-1].Dst.Switch {
			t.Fatalf("path not a chain: %v", p)
		}
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	tp := New()
	tp.AddSwitch(1)
	tp.AddSwitch(2)
	if _, ok := tp.ShortestPath(1, 2); ok {
		t.Fatal("found a path in a disconnected graph")
	}
	if p, ok := tp.ShortestPath(1, 1); !ok || p != nil {
		t.Fatal("self path should be the empty chain")
	}
}
