// Package topo models network topologies: switches, hosts, and
// unidirectional physical links, plus builders for the topologies used in
// the paper's evaluation (Figure 8) and the synthetic ring (Section 5.2).
//
// Hosts are modeled as nodes with a single port 0; a host is attached to an
// edge switch by a bidirectional link between host:0 and switch:port.
package topo

import (
	"fmt"
	"sort"

	"eventnet/internal/netkat"
)

// Link is a unidirectional physical link (lsrc, ldst).
type Link struct {
	Src, Dst netkat.Location
}

// Host is a packet source/sink attached to an edge switch.
type Host struct {
	ID     int    // node ID of the host itself
	Name   string // e.g. "H1"
	Attach netkat.Location
}

// Loc returns the host's own location (port 0 of the host node).
func (h Host) Loc() netkat.Location { return netkat.Location{Switch: h.ID, Port: 0} }

// Topology is a set of switches, hosts, and links.
type Topology struct {
	Switches []int
	Hosts    []Host
	Links    []Link // switch-to-switch links only; host links are derived
}

// New returns an empty topology.
func New() *Topology { return &Topology{} }

// AddSwitch registers a switch ID (idempotent).
func (t *Topology) AddSwitch(id int) {
	for _, s := range t.Switches {
		if s == id {
			return
		}
	}
	t.Switches = append(t.Switches, id)
	sort.Ints(t.Switches)
}

// AddBiLink adds links in both directions between two switch ports.
func (t *Topology) AddBiLink(a, b netkat.Location) {
	t.AddSwitch(a.Switch)
	t.AddSwitch(b.Switch)
	t.Links = append(t.Links, Link{Src: a, Dst: b}, Link{Src: b, Dst: a})
}

// AddHost attaches a named host to a switch port.
func (t *Topology) AddHost(id int, name string, attach netkat.Location) {
	t.AddSwitch(attach.Switch)
	t.Hosts = append(t.Hosts, Host{ID: id, Name: name, Attach: attach})
}

// HostByName returns the host with the given name.
func (t *Topology) HostByName(name string) (Host, bool) {
	for _, h := range t.Hosts {
		if h.Name == name {
			return h, true
		}
	}
	return Host{}, false
}

// HostByID returns the host with the given node ID.
func (t *Topology) HostByID(id int) (Host, bool) {
	for _, h := range t.Hosts {
		if h.ID == id {
			return h, true
		}
	}
	return Host{}, false
}

// IsHostNode reports whether the node ID belongs to a host.
func (t *Topology) IsHostNode(id int) bool {
	_, ok := t.HostByID(id)
	return ok
}

// HostLocs returns the set of host locations (used by the trace oracle to
// identify trace starting points).
func (t *Topology) HostLocs() map[netkat.Location]bool {
	m := map[netkat.Location]bool{}
	for _, h := range t.Hosts {
		m[h.Loc()] = true
	}
	return m
}

// AllLinks returns every unidirectional link including host-switch links in
// both directions.
func (t *Topology) AllLinks() []Link {
	out := append([]Link{}, t.Links...)
	for _, h := range t.Hosts {
		out = append(out, Link{Src: h.Loc(), Dst: h.Attach}, Link{Src: h.Attach, Dst: h.Loc()})
	}
	return out
}

// LinkFrom returns the link leaving the given location, if any. Topologies
// in this package have at most one link per (node, port) direction.
func (t *Topology) LinkFrom(src netkat.Location) (Link, bool) {
	for _, lk := range t.AllLinks() {
		if lk.Src == src {
			return lk, true
		}
	}
	return Link{}, false
}

// Validate checks structural sanity: link endpoints are registered
// switches, host IDs do not collide with switch IDs, and no two links leave
// the same port.
func (t *Topology) Validate() error {
	sw := map[int]bool{}
	for _, s := range t.Switches {
		sw[s] = true
	}
	for _, h := range t.Hosts {
		if sw[h.ID] {
			return fmt.Errorf("topo: host %s ID %d collides with a switch ID", h.Name, h.ID)
		}
		if !sw[h.Attach.Switch] {
			return fmt.Errorf("topo: host %s attaches to unknown switch %d", h.Name, h.Attach.Switch)
		}
	}
	seen := map[netkat.Location]bool{}
	for _, lk := range t.AllLinks() {
		if !sw[lk.Src.Switch] && !t.IsHostNode(lk.Src.Switch) {
			return fmt.Errorf("topo: link source %v is not a node", lk.Src)
		}
		if !sw[lk.Dst.Switch] && !t.IsHostNode(lk.Dst.Switch) {
			return fmt.Errorf("topo: link destination %v is not a node", lk.Dst)
		}
		if seen[lk.Src] {
			return fmt.Errorf("topo: two links leave %v", lk.Src)
		}
		seen[lk.Src] = true
	}
	return nil
}
