package chaos

import (
	"fmt"

	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
)

// RunServed replays a schedule against a served engine — supervisor
// goroutine, asynchronous boundaries — with program swaps going through
// the controller's northbound Swap path, the integration surface the
// synchronous runner cannot cover. Boundary placement is
// timing-dependent in served mode, so the delivery Hash is not
// comparable across runs; the audit invariant (Mixed == Dropped == 0)
// must hold regardless. Options.Batched switches the in-boundary
// injection loop to Engine.InjectBatch; Options.ChunkGens rides through
// to the engine.
func RunServed(s Schedule, o Options) (*Result, error) {
	sc, err := buildScenario(s.Scenario)
	if err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 2
	}
	c := ctrl.New(sc.tp, ctrl.Options{Workers: workers, Mode: o.Mode, ChunkGens: o.ChunkGens, Obs: o.Obs})
	defer c.Close()
	if err := c.Load(sc.progs[0].Name, sc.progs[0].Prog); err != nil {
		return nil, err
	}
	e := c.Engine()
	ctrlProgs := []*ctrl.Program{c.Current()} // epoch -> program

	lg := dataplane.NewLoadGen(c.Current().NES, sc.tp, s.Seed)
	traffic, arrivals := lg.Derive(1), lg.Derive(2)

	res := &Result{Scenario: s.Scenario, Seed: s.Seed, Workers: workers, Ops: len(s.Ops)}
	var recs []injRecord
	cur := 0

	// Injections are applied inside e.Do so the stamp recording is
	// barrier-serial with the engine's own bookkeeping.
	injectBatch := func(ins []dataplane.Injection) error {
		var ierr error
		e.Do(func() {
			if o.Batched {
				batch := make([]dataplane.Injection, len(ins))
				for i, in := range ins {
					f := in.Fields.Clone()
					f["id"] = len(recs) + i
					batch[i] = dataplane.Injection{Host: in.Host, Fields: f}
				}
				stamps, errs := e.InjectBatch(batch)
				for i := range batch {
					if errs != nil && errs[i] != nil {
						ierr = errs[i]
						return
					}
					recs = append(recs, injRecord{host: batch[i].Host, fields: batch[i].Fields, stamp: stamps[i]})
					res.Injected++
				}
				return
			}
			for _, in := range ins {
				f := in.Fields.Clone()
				f["id"] = len(recs)
				st, err := e.InjectStamped(in.Host, f)
				if err != nil {
					ierr = err
					return
				}
				recs = append(recs, injRecord{host: in.Host, fields: f, stamp: st})
				res.Injected++
			}
		})
		return ierr
	}
	one := func(host string, fields netkat.Packet) error {
		return injectBatch([]dataplane.Injection{{Host: host, Fields: fields}})
	}

	for _, op := range s.Ops {
		kind := op.Kind
		if sc.monitor == "" && (kind == OpFail || kind == OpRecover) {
			kind = OpBurst
		}
		if len(sc.progs) == 1 && kind == OpSwap {
			kind = OpBurst
		}
		var err error
		switch kind {
		case OpBurst, OpStep:
			k := arrivals.BatchSizes(1, sc.dist, sc.mean)[0]
			err = injectBatch(steer(sc, traffic.Injections(k)))
		case OpFail:
			res.Fails++
			err = one(sc.monitor, sc.failPkt.Clone())
		case OpRecover:
			res.Recovers++
			err = one(sc.monitor, sc.recoverPkt.Clone())
		case OpStorm:
			res.Storms++
			k := sc.mean + arrivals.BatchSizes(1, sc.dist, sc.mean)[0]
			ins := make([]dataplane.Injection, 0, k)
			for i := 0; i < k; i++ {
				h, f := sc.storm(i)
				ins = append(ins, dataplane.Injection{Host: h, Fields: f})
			}
			err = injectBatch(ins)
		case OpSwap:
			res.Swaps++
			// Keep traffic in flight across the flip, then swap through
			// the controller (compile + event mapping + staged drain).
			if err = injectBatch(steer(sc, traffic.Injections(sc.mean))); err != nil {
				break
			}
			next := (cur + 1) % len(sc.progs)
			if _, err = c.Swap(sc.progs[next].Name, sc.progs[next].Prog); err != nil {
				break
			}
			ctrlProgs = append(ctrlProgs, c.Current())
			cur = next
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: served %s seed %d: %w", s.Scenario, s.Seed, err)
		}
	}
	e.Quiesce()

	ds := e.CopyDeliveries(0)
	stateOf := func(epoch, version int) (stateful.Cmd, stateful.State, string, bool) {
		if epoch < 0 || epoch >= len(ctrlProgs) {
			return nil, nil, "", false
		}
		p := ctrlProgs[epoch]
		state, ok := p.StateOf(version)
		if !ok {
			return nil, nil, "", false
		}
		return p.Prog.Cmd, state, p.Name, true
	}
	res.Mixed, res.Dropped = audit(sc.tp, stateOf, recs, ds)
	res.Audited = len(ds)
	res.Hops = e.Snapshot().Processed
	res.Hash = deliveryHash(ds)
	o.record(res)
	return res, nil
}
