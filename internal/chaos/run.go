package chaos

import (
	"fmt"
	"hash/fnv"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/netkat"
	"eventnet/internal/nes"
	"eventnet/internal/obs"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Options configure a chaos run.
type Options struct {
	Workers int
	Mode    dataplane.Mode
	// Batched drives every burst and storm through InjectBatch instead
	// of per-packet InjectStamped. The delivery sequence must be
	// bit-identical either way — the ingress-equivalence axis of the
	// determinism matrix.
	Batched bool
	// ChunkGens overrides the engine's generations-per-chunk cap (0 =
	// engine default). Chunking must be unobservable in the delivery
	// sequence; the torture tests randomize it per run.
	ChunkGens int
	// Obs, when non-nil, is threaded into the engine under test (the
	// audit must pass with full telemetry attached) and receives the
	// run's audit counters: CtrChaosRuns, CtrChaosAudited, CtrChaosMixed,
	// CtrChaosDropped.
	Obs *obs.Obs
}

// record folds a finished run's audit outcome into the metrics layer.
func (o Options) record(res *Result) {
	if o.Obs == nil || o.Obs.Metrics == nil {
		return
	}
	m := o.Obs.Metrics
	m.Inc(obs.CtrChaosRuns)
	m.Add(obs.CtrChaosAudited, int64(res.Audited))
	m.Add(obs.CtrChaosMixed, int64(res.Mixed))
	m.Add(obs.CtrChaosDropped, int64(res.Dropped))
}

// Result is the outcome of one chaos run. Mixed and Dropped are the two
// halves of the audit invariant: Mixed counts deliveries that contradict
// their injection's stamp or its stamped program's netkat.Eval
// prediction; Dropped counts Eval-predicted deliveries that never
// arrived. Both must be zero — failures here are program events, so the
// engine has no legitimate reason to lose a packet.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Workers  int    `json:"workers"`
	Ops      int    `json:"ops"`
	Injected int    `json:"injected"`
	Audited  int    `json:"audited"` // deliveries checked against Eval
	Fails    int    `json:"fails"`
	Recovers int    `json:"recovers"`
	Storms   int    `json:"storms"`
	Swaps    int    `json:"swaps"`
	Mixed    int    `json:"mixed"`
	Dropped  int    `json:"dropped"`
	Hops     int64  `json:"hops"`
	// Hash fingerprints the exact delivery sequence (host, fields, stamp,
	// in order); bit-identical runs have equal hashes.
	Hash uint64 `json:"hash"`
}

// Violations is the total audit failure count.
func (r *Result) Violations() int { return r.Mixed + r.Dropped }

// prog is one compiled program of a scenario rotation.
type prog struct {
	app apps.App
	et  *ets.ETS
	n   *nes.NES
}

// injRecord is one injection's audit record.
type injRecord struct {
	host   string
	fields netkat.Packet
	stamp  dataplane.Stamp
}

func compileScenario(sc *scenario) ([]prog, error) {
	out := make([]prog, 0, len(sc.progs))
	for _, a := range sc.progs {
		et, err := ets.Build(a.Prog, a.Topo)
		if err != nil {
			return nil, fmt.Errorf("chaos: compile %s: %w", a.Name, err)
		}
		n, err := et.ToNES()
		if err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", a.Name, err)
		}
		out = append(out, prog{app: a, et: et, n: n})
	}
	return out, nil
}

// Run replays a schedule on a synchronous engine and audits every
// delivery. The run is fully deterministic: equal (schedule, options)
// produce equal Results, and the delivery Hash is identical at any
// worker count on either matcher plane.
func Run(s Schedule, o Options) (*Result, error) {
	sc, err := buildScenario(s.Scenario)
	if err != nil {
		return nil, err
	}
	progs, err := compileScenario(sc)
	if err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1
	}
	e := dataplane.NewEngine(progs[0].n, sc.tp, dataplane.Options{Workers: workers, Mode: o.Mode, ChunkGens: o.ChunkGens, Obs: o.Obs})

	// Two independent traffic streams derived from the schedule seed: one
	// for injection contents, one for arrival (batch-size) draws. The
	// derivation rule (dataplane.LoadGen.Derive) guarantees neighboring
	// seeds cannot alias.
	lg := dataplane.NewLoadGen(progs[0].n, sc.tp, s.Seed)
	traffic, arrivals := lg.Derive(1), lg.Derive(2)

	res := &Result{Scenario: s.Scenario, Seed: s.Seed, Workers: workers, Ops: len(s.Ops)}
	var recs []injRecord
	epochProg := []int{0} // epoch -> index into progs
	cur := 0

	inject := func(host string, fields netkat.Packet) error {
		fields["id"] = len(recs)
		st, err := e.InjectStamped(host, fields)
		if err != nil {
			return err
		}
		recs = append(recs, injRecord{host: host, fields: fields, stamp: st})
		res.Injected++
		return nil
	}
	// injectAll admits a pre-built batch either per-packet or through the
	// batched ingress, per Options.Batched; both paths must be
	// delivery-equivalent.
	injectAll := func(ins []dataplane.Injection) error {
		if !o.Batched {
			for _, in := range ins {
				if err := inject(in.Host, in.Fields); err != nil {
					return err
				}
			}
			return nil
		}
		for i := range ins {
			ins[i].Fields["id"] = len(recs) + i
		}
		stamps, errs := e.InjectBatch(ins)
		for i := range ins {
			if errs != nil && errs[i] != nil {
				return errs[i]
			}
			recs = append(recs, injRecord{host: ins[i].Host, fields: ins[i].Fields, stamp: stamps[i]})
			res.Injected++
		}
		return nil
	}
	burst := func() error {
		k := arrivals.BatchSizes(1, sc.dist, sc.mean)[0]
		return injectAll(steer(sc, traffic.Injections(k)))
	}
	drain := func() error { return e.Run() }

	for _, op := range s.Ops {
		kind := op.Kind
		// Ops a scenario cannot express degrade to plain bursts so any
		// schedule replays on any scenario.
		if sc.monitor == "" && (kind == OpFail || kind == OpRecover) {
			kind = OpBurst
		}
		if len(progs) == 1 && kind == OpSwap {
			kind = OpBurst
		}
		var err error
		switch kind {
		case OpBurst:
			if err = burst(); err == nil {
				err = drain()
			}
		case OpFail:
			res.Fails++
			if err = inject(sc.monitor, sc.failPkt.Clone()); err == nil {
				err = drain()
			}
		case OpRecover:
			res.Recovers++
			if err = inject(sc.monitor, sc.recoverPkt.Clone()); err == nil {
				err = drain()
			}
		case OpStorm:
			res.Storms++
			k := sc.mean + arrivals.BatchSizes(1, sc.dist, sc.mean)[0]
			ins := make([]dataplane.Injection, k)
			for i := range ins {
				h, f := sc.storm(i)
				ins[i] = dataplane.Injection{Host: h, Fields: f}
			}
			if err = injectAll(ins); err == nil {
				err = drain()
			}
		case OpSwap:
			res.Swaps++
			// A fresh batch one generation into its journey guarantees
			// the flip lands with old-epoch packets in flight.
			if err = burst(); err != nil {
				break
			}
			e.Step(1)
			next := (cur + 1) % len(progs)
			mapping, _ := ctrl.EventMapping(progs[cur].n, progs[next].n)
			if _, err = e.StageSwap(dataplane.SwapSpec{NES: progs[next].n, MapEvent: mapping}); err != nil {
				break
			}
			epochProg = append(epochProg, next)
			cur = next
			err = drain()
		case OpStep:
			if err = burst(); err != nil {
				break
			}
			e.Step(op.N)
			err = drain()
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: %s seed %d: %w", s.Scenario, s.Seed, err)
		}
	}
	if err := drain(); err != nil {
		return nil, err
	}

	ds := e.Deliveries()
	stateOf := func(epoch, version int) (stateful.Cmd, stateful.State, string, bool) {
		if epoch < 0 || epoch >= len(epochProg) {
			return nil, nil, "", false
		}
		p := progs[epochProg[epoch]]
		if version < 0 || version >= len(p.et.Vertices) {
			return nil, nil, "", false
		}
		return p.app.Prog.Cmd, p.et.Vertices[version].State, p.app.Name, true
	}
	res.Mixed, res.Dropped = audit(sc.tp, stateOf, recs, ds)
	res.Audited = len(ds)
	res.Hops = e.Processed()
	res.Hash = deliveryHash(ds)
	o.record(res)
	return res, nil
}

// steer rewrites three of every four LoadGen draws onto the scenario's
// routable data pair (alternating direction), keeping every fourth draw
// as uniform cross-host noise. LoadGen samples all host pairs uniformly,
// which on a sparse failover program is mostly unroutable — routable
// traffic must dominate for the audit to see real deliveries, but the
// noise share keeps the predicted-drop paths exercised too.
func steer(sc *scenario, ins []dataplane.Injection) []dataplane.Injection {
	if sc.srcHost == "" {
		return ins
	}
	src, _ := sc.tp.HostByName(sc.srcHost)
	dst, _ := sc.tp.HostByName(sc.dstHost)
	for i := range ins {
		switch i % 4 {
		case 3: // noise
		case 1:
			ins[i].Host = sc.dstHost
			ins[i].Fields["dst"], ins[i].Fields["src"] = src.ID, dst.ID
		default:
			ins[i].Host = sc.srcHost
			ins[i].Fields["dst"], ins[i].Fields["src"] = dst.ID, src.ID
		}
	}
	return ins
}

// deliveryHash fingerprints the exact delivery sequence.
func deliveryHash(ds []dataplane.Delivery) uint64 {
	h := fnv.New64a()
	for _, d := range ds {
		fmt.Fprintf(h, "%s|%s|%d.%d;", d.Host, d.Fields.Key(), d.Stamp.Epoch, d.Stamp.Version)
	}
	return h.Sum64()
}

// audit is the differential check: every delivery must carry its
// injection's stamp, and every injection's delivery set must equal
// exactly what netkat.Eval predicts for the stamped program generation
// and configuration (the methodology of internal/exp's swap audit,
// generalized over arbitrary program rotations).
func audit(tp *topo.Topology, stateOf func(epoch, version int) (stateful.Cmd, stateful.State, string, bool),
	recs []injRecord, ds []dataplane.Delivery) (mixed, dropped int) {
	byID := map[int][]dataplane.Delivery{}
	for _, d := range ds {
		id, ok := d.Fields["id"]
		if !ok {
			mixed++
			continue
		}
		byID[id] = append(byID[id], d)
	}
	// The id field rides through every rewrite untouched, so predictions
	// are memoized with id stripped: one Eval per distinct (program,
	// version, host, header fields).
	memo := map[string]map[string]bool{}
	for i, r := range recs {
		cmd, state, progKey, ok := stateOf(r.stamp.Epoch, r.stamp.Version)
		if !ok {
			mixed++
			continue
		}
		base := r.fields.Clone()
		delete(base, "id")
		mk := fmt.Sprintf("%s|%d|%s|%s", progKey, r.stamp.Version, r.host, base.Key())
		want, hit := memo[mk]
		if !hit {
			want = evalPredict(tp, cmd, state, r.host, base)
			memo[mk] = want
		}
		got := map[string]bool{}
		for _, d := range byID[i] {
			if d.Stamp != r.stamp {
				mixed++
				continue
			}
			df := d.Fields.Clone()
			delete(df, "id")
			key := d.Host + "|" + df.Key()
			if !want[key] || got[key] {
				mixed++
				continue
			}
			got[key] = true
		}
		dropped += len(want) - len(got)
	}
	return mixed, dropped
}

// evalPredict is the reference prediction for one injection under its
// stamped configuration.
func evalPredict(tp *topo.Topology, cmd stateful.Cmd, state stateful.State, host string, fields netkat.Packet) map[string]bool {
	pol := stateful.Project(cmd, state)
	h, _ := tp.HostByName(host)
	out := map[string]bool{}
	for _, lp := range netkat.Eval(pol, netkat.LocatedPacket{Pkt: fields, Loc: h.Attach}) {
		if lk, ok := tp.LinkFrom(lp.Loc); ok {
			if hh, isHost := tp.HostByID(lk.Dst.Switch); isHost {
				out[hh.Name+"|"+lp.Pkt.Key()] = true
			}
		}
	}
	return out
}
