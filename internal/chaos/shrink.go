package chaos

import (
	"fmt"

	"eventnet/internal/dataplane"
	"eventnet/internal/obs"
)

// Shrink returns the length of the shortest prefix of ops for which
// `violates` holds, or -1 if even the full schedule is clean. It assumes
// violations are monotone in the prefix — true for the chaos audit,
// which is cumulative: once a violating delivery exists, appending ops
// cannot erase it — so a binary search over prefix lengths suffices
// (O(log n) replays instead of O(n)).
func Shrink(ops []Op, violates func([]Op) bool) int {
	if len(ops) == 0 || !violates(ops) {
		return -1
	}
	lo, hi := 1, len(ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if violates(ops[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Audit runs a schedule and, if the run violates the delivery invariant,
// minimizes it: the returned Schedule (nil when the run is clean) is the
// shortest violating prefix, ready to print via Reproducer and replay
// via Run. Alongside the reproducer comes its flight dump: the minimal
// schedule replayed once more with a flight recorder attached, so the
// violation ships with the full-fidelity history that produced it. The
// dump is deterministic — the replay engine is synchronous, the
// recorder carries no wall-clock state, and an equal reproducer dumps
// bit-identically at any worker count.
func Audit(s Schedule, o Options) (*Result, *Schedule, *obs.FlightDump, error) {
	res, err := Run(s, o)
	if err != nil || res.Violations() == 0 {
		return res, nil, nil, err
	}
	var probeErr error
	n := Shrink(s.Ops, func(ops []Op) bool {
		r, err := Run(Schedule{Scenario: s.Scenario, Seed: s.Seed, Ops: ops}, o)
		if err != nil {
			probeErr = err
			return false
		}
		return r.Violations() > 0
	})
	if probeErr != nil {
		return res, nil, nil, fmt.Errorf("chaos: shrink replay: %w", probeErr)
	}
	min := Schedule{Scenario: s.Scenario, Seed: s.Seed, Ops: s.Ops[:n]}
	ro := o
	ro.Obs = &obs.Obs{Flight: obs.NewFlight(0, max(o.Workers, 1))}
	if _, err := Run(min, ro); err != nil {
		return res, &min, nil, fmt.Errorf("chaos: flight replay: %w", err)
	}
	return res, &min, ro.Obs.Flight.Dump(), nil
}

// CheckDeterminism replays a schedule at every given worker count on
// both matcher planes, with both per-packet and batched ingress, and
// verifies the delivery sequence — hosts, header fields, stamps, order —
// is bit-identical throughout.
func CheckDeterminism(s Schedule, workerCounts []int) error {
	var ref *Result
	var refDesc string
	for _, m := range []dataplane.Mode{dataplane.ModeIndexed, dataplane.ModeScan} {
		for _, batched := range []bool{false, true} {
			for _, w := range workerCounts {
				r, err := Run(s, Options{Workers: w, Mode: m, Batched: batched})
				if err != nil {
					return err
				}
				desc := fmt.Sprintf("workers=%d mode=%v batched=%v", w, m, batched)
				if ref == nil {
					ref, refDesc = r, desc
					continue
				}
				if r.Hash != ref.Hash || r.Audited != ref.Audited {
					return fmt.Errorf("chaos: %s seed %d nondeterministic: %s got %d deliveries hash %x, %s got %d hash %x",
						s.Scenario, s.Seed, refDesc, ref.Audited, ref.Hash, desc, r.Audited, r.Hash)
				}
			}
		}
	}
	return nil
}
