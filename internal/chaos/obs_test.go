package chaos

import (
	"encoding/json"
	"os"
	"testing"

	"eventnet/internal/obs"
)

// chaosObs is the full telemetry stack sized for w workers: metrics,
// bus, per-packet tracing, flight recorder, watchdog.
func chaosObs(w int) *obs.Obs {
	return &obs.Obs{
		Metrics:        obs.NewMetrics(w),
		Bus:            obs.NewBus(),
		Trace:          obs.NewTracer(1, w),
		Flight:         obs.NewFlight(0, w),
		Watch:          obs.NewWatchdog(obs.WatchOptions{}),
		DeliverySample: 1,
	}
}

// TestChaosWithObsIdenticalAndClean replays one schedule twice — obs off
// and obs fully on (metrics, per-packet tracing, flight recorder,
// watchdog, a deliberately starved bus subscriber) — and requires the
// bit-identical delivery hash, a clean audit, and the run's counters
// folded into the metrics layer. This is the standing proof that
// telemetry is an observer, not a participant.
func TestChaosWithObsIdenticalAndClean(t *testing.T) {
	s, err := NewSchedule("storm-swap", 13, 80)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(s, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := chaosObs(4)
	sub := o.Bus.Subscribe(2) // starved: nearly everything drops
	res, err := Run(s, Options{Workers: 4, Obs: o})
	sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != base.Hash {
		t.Fatalf("obs-on delivery hash %x != obs-off %x", res.Hash, base.Hash)
	}
	if res.Violations() != 0 {
		t.Fatalf("obs-on run violated the audit: %d mixed, %d dropped", res.Mixed, res.Dropped)
	}
	if got := o.Metrics.Counter(obs.CtrChaosRuns); got != 1 {
		t.Fatalf("CtrChaosRuns = %d, want 1", got)
	}
	if got := o.Metrics.Counter(obs.CtrChaosAudited); got != int64(res.Audited) {
		t.Fatalf("CtrChaosAudited = %d, want %d", got, res.Audited)
	}
	if o.Metrics.Counter(obs.CtrChaosMixed) != 0 || o.Metrics.Counter(obs.CtrChaosDropped) != 0 {
		t.Fatal("violation counters non-zero on a clean run")
	}
	if o.Metrics.Counter(obs.CtrDeliveries) != int64(res.Audited) {
		t.Fatalf("CtrDeliveries = %d, audit saw %d", o.Metrics.Counter(obs.CtrDeliveries), res.Audited)
	}
}

// TestChaosObsHashInvariance widens the observer property to the scale
// the acceptance criteria demand: the chaos delivery hash is identical
// with the full telemetry stack attached and detached, at 1, 2, 4 and
// 8 workers.
func TestChaosObsHashInvariance(t *testing.T) {
	for _, name := range []string{"storm-swap", "failover-diamond"} {
		s, err := NewSchedule(name, 5, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			base, err := Run(s, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(s, Options{Workers: w, Obs: chaosObs(w)})
			if err != nil {
				t.Fatal(err)
			}
			if got.Hash != base.Hash {
				t.Errorf("%s @ %d workers: obs-on hash %x != obs-off hash %x — telemetry perturbed the execution",
					name, w, got.Hash, base.Hash)
			}
			if got.Audited == 0 {
				t.Fatalf("%s @ %d workers: audited nothing", name, w)
			}
		}
	}
}

// TestChaosFlightReplayDeterminism: replaying a schedule with a
// flight-only Obs (the configuration Audit attaches to a shrunk
// violator) produces the bit-identical dump every time — the property
// that makes a reproducer's attached flight record trustworthy.
func TestChaosFlightReplayDeterminism(t *testing.T) {
	s, err := NewSchedule("storm-swap", 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for i := 0; i < 3; i++ {
		o := Options{Workers: 2, Obs: &obs.Obs{Flight: obs.NewFlight(0, 2)}}
		if _, err := Run(s, o); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(o.Obs.Flight.Dump())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if string(ref) != string(b) {
			t.Fatalf("replay %d produced a different flight dump", i)
		}
	}
	if len(ref) <= len("{}") {
		t.Fatal("empty dump; test is vacuous")
	}
}

// TestChaosFlightDumpArtifact writes the flight dump of a fixed-seed
// run to $CHAOS_FLIGHT_DUMP for CI to upload as a build artifact; it
// skips everywhere else.
func TestChaosFlightDumpArtifact(t *testing.T) {
	path := os.Getenv("CHAOS_FLIGHT_DUMP")
	if path == "" {
		t.Skip("CHAOS_FLIGHT_DUMP not set")
	}
	s, err := NewSchedule("storm-swap", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Workers: 2, Obs: &obs.Obs{Flight: obs.NewFlight(0, 2)}}
	if _, err := Run(s, o); err != nil {
		t.Fatal(err)
	}
	d := o.Obs.Flight.Dump()
	if len(d.Records) == 0 {
		t.Fatal("empty dump; the artifact would be useless")
	}
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d flight records to %s", len(d.Records), path)
}
