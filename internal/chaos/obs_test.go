package chaos

import (
	"testing"

	"eventnet/internal/obs"
)

// TestChaosWithObsIdenticalAndClean replays one schedule twice — obs off
// and obs fully on (metrics, per-packet tracing, a deliberately starved
// bus subscriber) — and requires the bit-identical delivery hash, a
// clean audit, and the run's counters folded into the metrics layer.
// This is the standing proof that telemetry is an observer, not a
// participant.
func TestChaosWithObsIdenticalAndClean(t *testing.T) {
	s, err := NewSchedule("storm-swap", 13, 80)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(s, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Obs{
		Metrics:        obs.NewMetrics(4),
		Bus:            obs.NewBus(),
		Trace:          obs.NewTracer(1, 4),
		DeliverySample: 1,
	}
	sub := o.Bus.Subscribe(2) // starved: nearly everything drops
	res, err := Run(s, Options{Workers: 4, Obs: o})
	sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != base.Hash {
		t.Fatalf("obs-on delivery hash %x != obs-off %x", res.Hash, base.Hash)
	}
	if res.Violations() != 0 {
		t.Fatalf("obs-on run violated the audit: %d mixed, %d dropped", res.Mixed, res.Dropped)
	}
	if got := o.Metrics.Counter(obs.CtrChaosRuns); got != 1 {
		t.Fatalf("CtrChaosRuns = %d, want 1", got)
	}
	if got := o.Metrics.Counter(obs.CtrChaosAudited); got != int64(res.Audited) {
		t.Fatalf("CtrChaosAudited = %d, want %d", got, res.Audited)
	}
	if o.Metrics.Counter(obs.CtrChaosMixed) != 0 || o.Metrics.Counter(obs.CtrChaosDropped) != 0 {
		t.Fatal("violation counters non-zero on a clean run")
	}
	if o.Metrics.Counter(obs.CtrDeliveries) != int64(res.Audited) {
		t.Fatalf("CtrDeliveries = %d, audit saw %d", o.Metrics.Counter(obs.CtrDeliveries), res.Audited)
	}
}
