package chaos

import (
	"testing"

	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// TestChaosSmoke is the standing audit: every scenario family, two seeds
// each, every delivery checked against netkat.Eval of its stamped
// program. The run must be violation-free and must audit a six-figure
// delivery count so the invariant is exercised at scale, not anecdote.
func TestChaosSmoke(t *testing.T) {
	rounds, seeds := 800, []int64{1, 2}
	if testing.Short() {
		rounds, seeds = 150, []int64{1}
	}
	totalAudited := 0
	for _, name := range Scenarios() {
		for _, seed := range seeds {
			s, err := NewSchedule(name, seed, rounds)
			if err != nil {
				t.Fatal(err)
			}
			res, repro, _, err := Audit(s, Options{Workers: 2})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.Violations() != 0 {
				t.Errorf("%s seed %d: %d mixed, %d dropped — reproducer: %s",
					name, seed, res.Mixed, res.Dropped, repro.Reproducer())
			}
			if res.Audited == 0 {
				t.Fatalf("%s seed %d: audited nothing", name, seed)
			}
			totalAudited += res.Audited
		}
	}
	if want := 120000; !testing.Short() && totalAudited < want {
		t.Errorf("smoke audited %d deliveries, want >= %d", totalAudited, want)
	}
}

// TestChaosDeterminism: the same schedule produces the bit-identical
// delivery sequence at 1, 2 and 4 workers on both matcher planes, for
// every scenario family.
func TestChaosDeterminism(t *testing.T) {
	for _, name := range Scenarios() {
		s, err := NewSchedule(name, 7, 120)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckDeterminism(s, []int{1, 2, 4}); err != nil {
			t.Error(err)
		}
	}
}

// TestChaosServed: the schedule replayed through a served engine with
// controller-driven swaps stays violation-free (scheduling is
// timing-dependent there, so only the audit — not the hash — is
// asserted). Both ingress paths are covered: per-packet InjectStamped
// and batched InjectBatch inside the boundary.
func TestChaosServed(t *testing.T) {
	for _, name := range []string{"storm-swap", "wan-failover"} {
		for _, batched := range []bool{false, true} {
			s, err := NewSchedule(name, 3, 120)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunServed(s, Options{Workers: 2, Batched: batched})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violations() != 0 {
				t.Errorf("%s served batched=%v: %d mixed, %d dropped", name, batched, res.Mixed, res.Dropped)
			}
			if res.Audited == 0 || res.Swaps == 0 {
				t.Errorf("%s served batched=%v: audited=%d swaps=%d — degenerate run", name, batched, res.Audited, res.Swaps)
			}
		}
	}
}

// TestShrink: the minimizer finds the exact shortest violating prefix
// via its monotone binary search, and reports -1 on clean schedules.
func TestShrink(t *testing.T) {
	ops := make([]Op, 50)
	probes := 0
	n := Shrink(ops, func(p []Op) bool { probes++; return len(p) >= 17 })
	if n != 17 {
		t.Fatalf("Shrink = %d, want 17", n)
	}
	if probes > 10 {
		t.Fatalf("Shrink used %d probes for 50 ops — not binary", probes)
	}
	if n := Shrink(ops, func(p []Op) bool { return false }); n != -1 {
		t.Fatalf("clean schedule: Shrink = %d, want -1", n)
	}
	if n := Shrink(ops, func(p []Op) bool { return len(p) >= 1 }); n != 1 {
		t.Fatalf("first-op violation: Shrink = %d, want 1", n)
	}
	if n := Shrink(nil, func(p []Op) bool { return true }); n != -1 {
		t.Fatalf("empty schedule: Shrink = %d, want -1", n)
	}
}

// TestReproducerRoundTrip: the violation reproducer line parses back to
// the schedule it encodes, and a clean Audit returns no reproducer.
func TestReproducerRoundTrip(t *testing.T) {
	s, err := NewSchedule("failover-diamond", 11, 40)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReproducer(s.Reproducer())
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != s.Scenario || got.Seed != s.Seed || len(got.Ops) != len(s.Ops) {
		t.Fatalf("round trip lost data: %+v vs %+v", got, s)
	}
	for i := range got.Ops {
		if got.Ops[i] != s.Ops[i] {
			t.Fatalf("op %d: %+v vs %+v", i, got.Ops[i], s.Ops[i])
		}
	}
	res, repro, _, err := Audit(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations() != 0 || repro != nil {
		t.Fatalf("clean schedule produced a reproducer: %v", repro)
	}
	if _, err := ParseReproducer("{not json"); err == nil {
		t.Fatal("bad reproducer line must not parse")
	}
}

// TestAuditDetectsTampering: the audit is differential, not decorative —
// feed it a doctored delivery log and it must flag both failure modes
// (an unpredicted delivery, and a predicted delivery gone missing).
func TestAuditDetectsTampering(t *testing.T) {
	sc, err := buildScenario("storm-swap")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := compileScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	stateOf := func(epoch, version int) (stateful.Cmd, stateful.State, string, bool) {
		p := progs[0]
		if epoch != 0 || version < 0 || version >= len(p.et.Vertices) {
			return nil, nil, "", false
		}
		return p.app.Prog.Cmd, p.et.Vertices[version].State, p.app.Name, true
	}
	// In state 0, H1 -> H4 is routed: Eval predicts exactly one delivery.
	rec := injRecord{
		host:   "H1",
		fields: netkat.Packet{"dst": topo.HostID(4), "id": 0},
		stamp:  dataplane.Stamp{Epoch: 0, Version: 0},
	}
	good := dataplane.Delivery{
		Host:   "H4",
		Fields: netkat.Packet{"dst": topo.HostID(4), "id": 0},
		Stamp:  rec.stamp,
	}
	if m, d := audit(sc.tp, stateOf, []injRecord{rec}, []dataplane.Delivery{good}); m != 0 || d != 0 {
		t.Fatalf("clean log flagged: mixed=%d dropped=%d", m, d)
	}
	// Missing delivery -> dropped.
	if m, d := audit(sc.tp, stateOf, []injRecord{rec}, nil); m != 0 || d != 1 {
		t.Fatalf("missing delivery: mixed=%d dropped=%d, want 0/1", m, d)
	}
	// Wrong host -> mixed (and the predicted one is also missing).
	bad := good
	bad.Host = "H1"
	if m, d := audit(sc.tp, stateOf, []injRecord{rec}, []dataplane.Delivery{bad}); m != 1 || d != 1 {
		t.Fatalf("diverted delivery: mixed=%d dropped=%d, want 1/1", m, d)
	}
	// Wrong stamp -> mixed.
	bad = good
	bad.Stamp.Version = 1
	if m, _ := audit(sc.tp, stateOf, []injRecord{rec}, []dataplane.Delivery{bad}); m != 1 {
		t.Fatalf("restamped delivery: mixed=%d, want 1", m)
	}
	// Duplicate delivery -> mixed.
	if m, _ := audit(sc.tp, stateOf, []injRecord{rec}, []dataplane.Delivery{good, good}); m != 1 {
		t.Fatalf("duplicated delivery: mixed=%d, want 1", m)
	}
}

// BenchmarkChaos is the CI smoke entry point: one fixed-seed storm-swap
// schedule per iteration (run with -benchtime=1x in CI). It reports
// audited deliveries per op for trend tracking.
func BenchmarkChaos(b *testing.B) {
	s, err := NewSchedule("storm-swap", 1, 400)
	if err != nil {
		b.Fatal(err)
	}
	audited := 0
	for i := 0; i < b.N; i++ {
		res, err := Run(s, Options{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations() != 0 {
			b.Fatalf("violations: %d mixed, %d dropped", res.Mixed, res.Dropped)
		}
		audited += res.Audited
	}
	b.ReportMetric(float64(audited)/float64(b.N), "audited/op")
}
