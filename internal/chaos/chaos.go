// Package chaos is the standing differential audit of the whole stack: a
// seeded, deterministic harness that interleaves link-failure and
// -recovery events, bursty and heavy-tailed traffic, event storms and
// live program hot-swaps against a dataplane.Engine, and checks every
// single delivery against the reference semantics — netkat.Eval of the
// exact program generation and configuration the packet's stamp pins it
// to. Any divergence (a delivery Eval does not predict, or an
// Eval-predicted delivery that never arrives) is a violation, and the
// harness minimizes the schedule to the shortest violating prefix and
// prints a reproducer (scenario, seed, prefix) that replays it exactly.
//
// Failures are modeled as first-class program events, not as engine
// mutations: a monitor host injects a notification packet carrying the
// reserved linkdown/linkup header (see internal/stateful/failure.go), the
// failover program routes it through a state-updating link, and the
// network flips to its backup paths with exactly the per-packet
// consistency guarantees of any other event. The engine is untouched, so
// the audit invariant stays total: nothing is ever legitimately dropped.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"eventnet/internal/apps"
	"eventnet/internal/dataplane"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// OpKind is one kind of schedule operation.
type OpKind int

const (
	// OpBurst injects a traffic batch (sized by the scenario's arrival
	// distribution) and runs it to completion.
	OpBurst OpKind = iota
	// OpFail injects one link-failure notification from the monitor.
	OpFail
	// OpRecover injects one link-recovery notification.
	OpRecover
	// OpStorm injects an event-dense batch: notification spam on failover
	// scenarios, capped-destination floods on threshold scenarios.
	OpStorm
	// OpSwap injects a batch, advances the engine one generation so the
	// batch is mid-journey, then hot-swaps to the next program in the
	// scenario's rotation (event knowledge carried via ctrl.EventMapping)
	// and drains — the packets in flight finish under their old stamps.
	OpSwap
	// OpStep injects a small batch and advances the engine N generations
	// before draining, shifting every later op's barrier alignment.
	OpStep
)

var opNames = map[OpKind]string{
	OpBurst: "burst", OpFail: "fail", OpRecover: "recover",
	OpStorm: "storm", OpSwap: "swap", OpStep: "step",
}

// String renders the op kind.
func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one schedule operation.
type Op struct {
	Kind OpKind `json:"kind"`
	N    int    `json:"n,omitempty"` // generations for OpStep, ignored otherwise
}

// Schedule is a fully reproducible chaos run: the scenario fixes the
// programs, topology and traffic shape; the seed fixes every random draw;
// the op list fixes the interleaving. Equal schedules produce equal
// delivery sequences at any worker count.
type Schedule struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Ops      []Op   `json:"ops"`
}

// Reproducer renders the schedule as the one-line JSON form the harness
// prints on violation; see docs/CHAOS.md for how to replay it.
func (s Schedule) Reproducer() string {
	b, _ := json.Marshal(s)
	return string(b)
}

// ParseReproducer parses a Reproducer line back into a Schedule.
func ParseReproducer(line string) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal([]byte(line), &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: bad reproducer: %w", err)
	}
	return s, nil
}

// scenario fixes everything about a chaos family except the seed and the
// op interleaving.
type scenario struct {
	name  string
	progs []apps.App // swap rotation; progs[0] is initial
	tp    *topo.Topology
	dist  dataplane.ArrivalDist
	mean  int // target injections per burst

	// Failure-notification surface; empty for non-failover scenarios.
	monitor    string
	failPkt    netkat.Packet
	recoverPkt netkat.Packet

	// Routable data pair: when set, most burst draws are steered onto it
	// (LoadGen samples all host pairs uniformly, which on a sparse
	// failover program is mostly unroutable noise — noise is kept, but as
	// the minority share).
	srcHost, dstHost string

	// storm builds one event-dense injection for storm round i.
	storm func(i int) (host string, fields netkat.Packet)
}

// Scenarios returns the names of the built-in scenario families:
//
//   - failover-diamond: failure-only chaos on the minimal primary/backup
//     topology (FailoverDiamond) under bursty arrivals.
//   - storm-swap: event storms and mid-flight hot-swaps between
//     bandwidth-cap-40 and bandwidth-cap-80 under heavy-tailed arrivals —
//     the swap direction with no-image events exercises knowledge loss.
//   - wan-failover: failures, recoveries and hot-swaps between
//     FailoverWAN programs with different cycle horizons (their event
//     mapping has genuine no-image entries) on the ECMP WAN graph.
//   - fattree-failover: failure-only chaos on a k=4 fat-tree fabric
//     under heavy-tailed arrivals.
func Scenarios() []string {
	return []string{"failover-diamond", "storm-swap", "wan-failover", "fattree-failover"}
}

func buildScenario(name string) (*scenario, error) {
	failover := func(fs []apps.Failover, dist dataplane.ArrivalDist, mean int) *scenario {
		f := fs[0]
		var rot []apps.App
		for _, x := range fs {
			rot = append(rot, x.App)
		}
		return &scenario{
			name: name, progs: rot, tp: f.Topo, dist: dist, mean: mean,
			monitor: f.Monitor, failPkt: f.FailPkt, recoverPkt: f.RecoverPkt,
			srcHost: f.Src, dstHost: f.Dst,
			storm: func(i int) (string, netkat.Packet) {
				if i%2 == 0 {
					return f.Monitor, f.FailPkt.Clone()
				}
				return f.Monitor, f.RecoverPkt.Clone()
			},
		}
	}
	switch name {
	case "failover-diamond":
		return failover([]apps.Failover{apps.FailoverDiamond(8)}, dataplane.ArrivalBursty, 24), nil
	case "wan-failover":
		// Different cycle horizons: swapping 6 -> 2 drops the tail
		// fail/recover events (no image under ctrl.EventMapping).
		return failover([]apps.Failover{apps.FailoverWAN(6), apps.FailoverWAN(2)}, dataplane.ArrivalBursty, 24), nil
	case "fattree-failover":
		return failover([]apps.Failover{apps.FailoverFatTree(4, 4)}, dataplane.ArrivalHeavyTail, 16), nil
	case "storm-swap":
		a40, a80 := apps.BandwidthCap(40), apps.BandwidthCap(80)
		return &scenario{
			name: name, progs: []apps.App{a40, a80}, tp: a40.Topo,
			dist: dataplane.ArrivalHeavyTail, mean: 32,
			storm: func(i int) (string, netkat.Packet) {
				// Flood the capped direction so threshold events fire in
				// dense succession.
				return "H1", netkat.Packet{"dst": topo.HostID(4), "src": topo.HostID(1)}
			},
		}, nil
	}
	return nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Scenarios())
}

// NewSchedule draws a seeded op interleaving for a scenario: `rounds` ops
// with scenario-appropriate weights. Equal (scenario, seed, rounds) yield
// equal schedules.
func NewSchedule(scenarioName string, seed int64, rounds int) (Schedule, error) {
	sc, err := buildScenario(scenarioName)
	if err != nil {
		return Schedule{}, err
	}
	// The schedule rng is independent of the traffic rng (the runner
	// derives that from the same seed through a different stream).
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	hasNotif := sc.monitor != ""
	multi := len(sc.progs) > 1
	ops := make([]Op, 0, rounds)
	for i := 0; i < rounds; i++ {
		r := rng.Intn(100)
		switch {
		case hasNotif && r < 14:
			ops = append(ops, Op{Kind: OpFail})
		case hasNotif && r < 28:
			ops = append(ops, Op{Kind: OpRecover})
		case r < 38:
			ops = append(ops, Op{Kind: OpStorm})
		case multi && r < 50:
			ops = append(ops, Op{Kind: OpSwap})
		case r < 58:
			ops = append(ops, Op{Kind: OpStep, N: 1 + rng.Intn(3)})
		default:
			ops = append(ops, Op{Kind: OpBurst})
		}
	}
	return Schedule{Scenario: scenarioName, Seed: seed, Ops: ops}, nil
}
