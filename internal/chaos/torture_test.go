package chaos

import (
	"fmt"
	"math/rand"
	"testing"
)

// Chunked-barrier torture: the chunk budget must be unobservable. A
// chunk groups up to ChunkGens generations between boundaries, so
// shrinking it to 1 forces a boundary after every generation while 64
// lets swaps flip and old epochs retire deep inside a chunk — if the
// in-chunk retirement accounting, the per-epoch push tallies, or the
// phaser rendezvous leaked anything observable, these runs would
// diverge or the differential audit would flag mixed/dropped packets.

// TestChunkInvariance: the same schedule hashes bit-identically at
// every chunk budget × worker count, both ingress paths.
func TestChunkInvariance(t *testing.T) {
	for _, name := range Scenarios() {
		s, err := NewSchedule(name, 13, 100)
		if err != nil {
			t.Fatal(err)
		}
		var refHash uint64
		var refDesc string
		for _, cg := range []int{0, 1, 2, 7, 64} {
			for _, w := range []int{1, 3} {
				for _, batched := range []bool{false, true} {
					r, err := Run(s, Options{Workers: w, ChunkGens: cg, Batched: batched})
					if err != nil {
						t.Fatal(err)
					}
					desc := fmt.Sprintf("chunk=%d workers=%d batched=%v", cg, w, batched)
					if refDesc == "" {
						refHash, refDesc = r.Hash, desc
						continue
					}
					if r.Hash != refHash {
						t.Fatalf("%s: chunking observable: %s hash %x, %s hash %x",
							name, refDesc, refHash, desc, r.Hash)
					}
				}
			}
		}
	}
}

// TestChunkTorture: randomized chunk budgets, worker counts, ingress
// modes and op mixes — heavy on swaps staged while traffic is in flight
// — each run fully audited (every delivery checked against Eval,
// mixed=0 and dropped=0). A violating run is shrunk to its shortest
// violating prefix and reported as a one-line reproducer.
func TestChunkTorture(t *testing.T) {
	rounds := 120
	runs := 12
	if testing.Short() {
		rounds, runs = 60, 6
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < runs; i++ {
		name := Scenarios()[rng.Intn(len(Scenarios()))]
		o := Options{
			Workers:   1 + rng.Intn(4),
			ChunkGens: []int{1, 2, 3, 5, 8, 64}[rng.Intn(6)],
			Batched:   rng.Intn(2) == 1,
		}
		s, err := NewSchedule(name, int64(1000+i), rounds)
		if err != nil {
			t.Fatal(err)
		}
		res, repro, _, err := Audit(s, o)
		if err != nil {
			t.Fatalf("%s chunk=%d workers=%d: %v", name, o.ChunkGens, o.Workers, err)
		}
		if res.Violations() != 0 {
			t.Errorf("%s chunk=%d workers=%d batched=%v: %d mixed, %d dropped — reproducer: %s",
				name, o.ChunkGens, o.Workers, o.Batched, res.Mixed, res.Dropped, repro.Reproducer())
		}
		if res.Audited == 0 {
			t.Fatalf("%s: audited nothing — torture is vacuous", name)
		}
	}
}

// TestChunkTortureServed: the served engine with a tiny chunk budget and
// controller-driven swaps — boundary requests from the supervisor land
// mid-chunk, so chunks genuinely end early on boundReq, the path the
// synchronous runner cannot reach. Audit-only (served scheduling is
// timing-dependent).
func TestChunkTortureServed(t *testing.T) {
	for _, name := range []string{"storm-swap", "wan-failover"} {
		for _, cg := range []int{1, 4} {
			s, err := NewSchedule(name, 17, 80)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunServed(s, Options{Workers: 3, ChunkGens: cg, Batched: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violations() != 0 {
				t.Errorf("%s served chunk=%d: %d mixed, %d dropped", name, cg, res.Mixed, res.Dropped)
			}
			if res.Audited == 0 || res.Swaps == 0 {
				t.Errorf("%s served chunk=%d: audited=%d swaps=%d — degenerate run", name, cg, res.Audited, res.Swaps)
			}
		}
	}
}
