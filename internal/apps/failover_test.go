package apps

import (
	"fmt"
	"testing"

	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/netkat"
	"eventnet/internal/nes"
)

func failoverCases(cycles int) []Failover {
	return []Failover{
		FailoverDiamond(cycles),
		FailoverWAN(cycles),
		FailoverFatTree(4, cycles),
	}
}

// TestFailoverPrograms: the failover state chain has 2*cycles+1 states,
// and the extracted events are exactly the alternating fail/recover
// notifications about the advertised link.
func TestFailoverPrograms(t *testing.T) {
	const cycles = 2
	for _, f := range failoverCases(cycles) {
		if err := f.Topo.Validate(); err != nil {
			t.Fatalf("%s: topology: %v", f.Name, err)
		}
		states, _, err := f.Prog.ReachableStates()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if want := 2*cycles + 1; len(states) != want {
			t.Fatalf("%s: %d states, want %d", f.Name, len(states), want)
		}
		et, err := ets.Build(f.Prog, f.Topo)
		if err != nil {
			t.Fatalf("%s: ets: %v", f.Name, err)
		}
		n, err := et.ToNES()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		fails, recovers := 0, 0
		for _, id := range n.FailureEvents() {
			ev := n.Events[id]
			src, dst, ok := ev.FailedLink()
			if !ok || src != f.Failed.Src || dst != f.Failed.Dst {
				t.Fatalf("%s: event %d decodes to (%v,%v), want %v", f.Name, id, src, dst, f.Failed)
			}
			switch ev.Kind() {
			case nes.KindLinkFail:
				fails++
			case nes.KindLinkRecover:
				recovers++
			}
		}
		if fails != cycles || recovers != cycles {
			t.Fatalf("%s: %d fail / %d recover events, want %d each", f.Name, fails, recovers, cycles)
		}
	}
}

// TestFailoverNoTrafficOnFailedLink is the static half of the failover
// safety property: in every odd (failed) state, no compiled rule on
// either endpoint of the failed link emits onto it, in either direction —
// while the even states' configurations do use the link (so the check is
// not vacuous).
func TestFailoverNoTrafficOnFailedLink(t *testing.T) {
	for _, f := range failoverCases(2) {
		et, err := ets.Build(f.Prog, f.Topo)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		emitsOn := func(v ets.Vertex, sw, pt int) bool {
			tab := v.Tables[sw]
			if tab == nil {
				return false
			}
			for _, r := range tab.Rules {
				for _, g := range r.Groups {
					if g.OutPort == pt {
						return true
					}
				}
			}
			return false
		}
		evenUses := false
		for _, v := range et.Vertices {
			fwd := emitsOn(v, f.Failed.Src.Switch, f.Failed.Src.Port)
			rev := emitsOn(v, f.Failed.Dst.Switch, f.Failed.Dst.Port)
			if f.FailedState(v.State) {
				if fwd || rev {
					t.Fatalf("%s: state %v emits onto failed link %v (fwd=%v rev=%v)",
						f.Name, v.State, f.Failed, fwd, rev)
				}
			} else if fwd && rev {
				evenUses = true
			}
		}
		if !evenUses {
			t.Fatalf("%s: no even state uses the primary link — vacuous property", f.Name)
		}
	}
}

// driveFailover runs a disciplined fail/recover schedule against a fresh
// engine: data both ways, a failure notification, data (whose reverse
// direction gossips the new state back to the ingress switches), a
// recovery notification, data again — per cycle. Every injection ends in
// exactly one delivery. Returns the deliveries and the injection count.
func driveFailover(t *testing.T, f Failover, et *ets.ETS, opts dataplane.Options) ([]dataplane.Delivery, int) {
	t.Helper()
	n, err := et.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	e := dataplane.NewEngine(n, f.Topo, opts)
	srcH, _ := f.Topo.HostByName(f.Src)
	dstH, ok := f.Topo.HostByName(f.Dst)
	if !ok {
		t.Fatalf("%s: no host %s", f.Name, f.Dst)
	}
	injected, id := 0, 0
	data := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, p := range []struct {
				host string
				dst  int
			}{{f.Src, dstH.ID}, {f.Dst, srcH.ID}} {
				id++
				if err := e.Inject(p.host, netkat.Packet{FieldDst: p.dst, "id": id}); err != nil {
					t.Fatal(err)
				}
				injected++
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	notify := func(pkt netkat.Packet) {
		if err := e.Inject(f.Monitor, pkt.Clone()); err != nil {
			t.Fatal(err)
		}
		injected++
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < f.Cycles; c++ {
		data(2)
		notify(f.FailPkt)
		data(2) // reverse data gossips the failure back to the ingress side
		data(2) // forwarded in the failed state
		notify(f.RecoverPkt)
		data(2) // gossip the recovery
		data(2)
	}
	data(1)
	return e.Deliveries(), injected
}

func fingerprints(ds []dataplane.Delivery) []string {
	fps := make([]string, len(ds))
	for i, d := range ds {
		fps[i] = fmt.Sprintf("%s|%s|%d.%d", d.Host, d.Fields.Key(), d.Stamp.Epoch, d.Stamp.Version)
	}
	return fps
}

// TestFailoverDeliveryDeterminism is the dynamic half of the failover
// property (and the determinism obligation the chaos harness relies on):
// the exact delivery sequence — hosts, header fields, stamps — is
// bit-identical at 1, 2 and 4 workers on both matcher planes, nothing is
// dropped, and the run demonstrably forwards traffic in failed states.
func TestFailoverDeliveryDeterminism(t *testing.T) {
	cases := []Failover{FailoverDiamond(2), FailoverWAN(2)}
	if !testing.Short() {
		cases = append(cases, FailoverFatTree(4, 1))
	}
	for _, f := range cases {
		et, err := ets.Build(f.Prog, f.Topo)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		var ref []string
		for _, mode := range []dataplane.Mode{dataplane.ModeIndexed, dataplane.ModeScan} {
			for _, workers := range []int{1, 2, 4} {
				ds, injected := driveFailover(t, f, et, dataplane.Options{Workers: workers, Mode: mode})
				if len(ds) != injected {
					t.Fatalf("%s w=%d mode=%v: %d deliveries for %d injections",
						f.Name, workers, mode, len(ds), injected)
				}
				fps := fingerprints(ds)
				if ref == nil {
					ref = fps
					// The reference run must deliver data in an odd
					// (failed) state, or the schedule never exercised
					// the backup path.
					odd := 0
					for _, d := range ds {
						if f.FailedState(et.Vertices[d.Stamp.Version].State) {
							odd++
						}
					}
					if odd == 0 {
						t.Fatalf("%s: no delivery in a failed state", f.Name)
					}
					continue
				}
				if len(fps) != len(ref) {
					t.Fatalf("%s w=%d mode=%v: %d deliveries, want %d", f.Name, workers, mode, len(fps), len(ref))
				}
				for i := range fps {
					if fps[i] != ref[i] {
						t.Fatalf("%s w=%d mode=%v: delivery %d = %q, want %q",
							f.Name, workers, mode, i, fps[i], ref[i])
					}
				}
			}
		}
	}
}
