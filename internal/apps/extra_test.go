package apps

import (
	"testing"

	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
)

// TestWalledGardenStates: two states; H2/H3 reachable only after the
// portal contact.
func TestWalledGardenStates(t *testing.T) {
	a := WalledGarden()
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || len(edges) != 1 {
		t.Fatalf("shape: %d states, %d edges", len(states), len(edges))
	}
	if edges[0].Loc != (netkat.Location{Switch: 1, Port: 1}) {
		t.Errorf("event at %v, want 1:1", edges[0].Loc)
	}
	guestToH2 := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(2)}, Loc: netkat.Location{Switch: 4, Port: 2}}
	c0 := stateful.Project(a.Prog.Cmd, stateful.State{0})
	if got := netkat.Eval(c0, guestToH2); len(got) != 0 {
		t.Errorf("garden wall breached in state [0]: %v", got)
	}
	c1 := stateful.Project(a.Prog.Cmd, stateful.State{1})
	if got := netkat.Eval(c1, guestToH2); len(got) != 1 {
		t.Errorf("H2 unreachable after portal contact: %v", got)
	}
}

// TestDistributedFirewallDiamond: the state graph is the Figure 3(a)
// diamond — four states, four edges, two events.
func TestDistributedFirewallDiamond(t *testing.T) {
	a := DistributedFirewall()
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 || len(edges) != 4 {
		t.Fatalf("shape: %d states, %d edges", len(states), len(edges))
	}
	// The two events commute: [1,1] is reached on both paths.
	keys := map[string]bool{}
	for _, s := range states {
		keys[s.Key()] = true
	}
	for _, want := range []string{"[0,0]", "[1,0]", "[0,1]", "[1,1]"} {
		if !keys[want] {
			t.Errorf("missing state %s", want)
		}
	}
	// Independence: e1's guard constrains src=H1, e2's src=H2, at
	// different ports of s4.
	locs := map[netkat.Location]bool{}
	for _, e := range edges {
		locs[e.Loc] = true
	}
	if !locs[netkat.Location{Switch: 4, Port: 1}] || !locs[netkat.Location{Switch: 4, Port: 3}] {
		t.Errorf("event locations: %v", locs)
	}
}
