package apps

import (
	"testing"

	"eventnet/internal/ets"
	"eventnet/internal/netkat"
	"eventnet/internal/runtime"
	"eventnet/internal/stateful"
	"eventnet/internal/trace"
)

// TestWalledGardenStates: two states; H2/H3 reachable only after the
// portal contact.
func TestWalledGardenStates(t *testing.T) {
	a := WalledGarden()
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || len(edges) != 1 {
		t.Fatalf("shape: %d states, %d edges", len(states), len(edges))
	}
	if edges[0].Loc != (netkat.Location{Switch: 1, Port: 1}) {
		t.Errorf("event at %v, want 1:1", edges[0].Loc)
	}
	guestToH2 := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(2)}, Loc: netkat.Location{Switch: 4, Port: 2}}
	c0 := stateful.Project(a.Prog.Cmd, stateful.State{0})
	if got := netkat.Eval(c0, guestToH2); len(got) != 0 {
		t.Errorf("garden wall breached in state [0]: %v", got)
	}
	c1 := stateful.Project(a.Prog.Cmd, stateful.State{1})
	if got := netkat.Eval(c1, guestToH2); len(got) != 1 {
		t.Errorf("H2 unreachable after portal contact: %v", got)
	}
}

// TestDistributedFirewallDiamond: the state graph is the Figure 3(a)
// diamond — four states, four edges, two events.
func TestDistributedFirewallDiamond(t *testing.T) {
	a := DistributedFirewall()
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 || len(edges) != 4 {
		t.Fatalf("shape: %d states, %d edges", len(states), len(edges))
	}
	// The two events commute: [1,1] is reached on both paths.
	keys := map[string]bool{}
	for _, s := range states {
		keys[s.Key()] = true
	}
	for _, want := range []string{"[0,0]", "[1,0]", "[0,1]", "[1,1]"} {
		if !keys[want] {
			t.Errorf("missing state %s", want)
		}
	}
	// Independence: e1's guard constrains src=H1, e2's src=H2, at
	// different ports of s4.
	locs := map[netkat.Location]bool{}
	for _, e := range edges {
		locs[e.Loc] = true
	}
	if !locs[netkat.Location{Switch: 4, Port: 1}] || !locs[netkat.Location{Switch: 4, Port: 3}] {
		t.Errorf("event locations: %v", locs)
	}
}

// TestIDSFatTree: the IDS state machine lifted to the fat-tree fabric has
// the same three-state chain as the paper's IDS, with events at the
// targets' edge switches, and its end-to-end behavior enforces the cutoff:
// after scanning H1 then H2, the monitor can no longer reach H3.
func TestIDSFatTree(t *testing.T) {
	a := IDSFatTree(4)
	if err := a.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("states: %v", states)
	}
	// Both scan events are observed at the targets' edge switch (packets
	// arrive there on an upstream port, which is where the event fires).
	h1, _ := a.Topo.HostByName("H1")
	h2, _ := a.Topo.HostByName("H2")
	sws := map[int]bool{}
	for _, e := range edges {
		sws[e.Loc.Switch] = true
	}
	for _, want := range []int{h1.Attach.Switch, h2.Attach.Switch} {
		if !sws[want] {
			t.Fatalf("missing event at switch %d (have %v)", want, sws)
		}
	}
	// Behavior: before the scan sequence the monitor reaches H3; after
	// scanning H1 then H2, H3 is cut off while H1 stays reachable.
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	mon := "H16"
	m := runtime.New(n, a.Topo, 1, false)
	send := func(src string, dst int) {
		if err := m.Inject(src, netkat.Packet{FieldDst: H(dst)}); err != nil {
			t.Fatal(err)
		}
		if err := m.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	}
	send(mon, 3)
	if n := len(m.DeliveredTo("H3")); n != 1 {
		t.Fatalf("pre-scan H3 deliveries: %d", n)
	}
	// Scan H1 then H2; each target replies, and the reply's event digest
	// teaches the monitor's edge switch about the scans on its way back
	// (the paper's coordination-free propagation — without the replies,
	// old-configuration packets from the monitor would correctly keep
	// flowing under the pre-scan tables).
	send(mon, 1)
	send("H1", 16)
	send(mon, 2)
	send("H2", 16)
	send(mon, 3)
	if n := len(m.DeliveredTo("H3")); n != 1 {
		t.Fatalf("post-scan H3 deliveries: %d (cutoff failed)", n)
	}
	send(mon, 1)
	if n := len(m.DeliveredTo("H1")); n != 2 {
		t.Fatalf("H1 deliveries: %d", n)
	}
	if err := trace.CheckNES(m.NetTrace(), n, a.Topo.HostLocs()); err != nil {
		t.Fatalf("trace inconsistent: %v", err)
	}
}
