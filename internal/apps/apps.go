// Package apps contains the event-driven network applications evaluated in
// the paper (Section 5, Figures 8-9): the stateful firewall, learning
// switch, authentication, bandwidth cap, and intrusion detection system,
// plus the synthetic ring of Section 5.2. Each application bundles the
// topology of Figure 8 with the Stateful NetKAT program of Figure 9,
// transliterated into this repository's AST.
//
// Host addresses use the convention Hn = 100+n in the "dst" field (the
// paper's ip_dst).
package apps

import (
	"fmt"

	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Field names used by the applications.
const (
	FieldDst = "dst" // the paper's ip_dst
	FieldSig = "sig" // ring reconfiguration signal
)

// H returns the address of host Hn (the value carried in dst).
func H(n int) int { return topo.HostID(n) }

// App bundles a Stateful NetKAT program with its topology.
type App struct {
	Name string
	Topo *topo.Topology
	Prog stateful.Program
}

func loc(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }

func ptEq(v int) stateful.Pred  { return stateful.PTest{Field: netkat.FieldPt, Value: v} }
func dstEq(v int) stateful.Pred { return stateful.PTest{Field: FieldDst, Value: v} }
func stEq(v int) stateful.Pred  { return stateful.PState{Index: 0, Value: v} }
func stNeq(v int) stateful.Pred { return stateful.PNot{P: stateful.PState{Index: 0, Value: v}} }
func ptTo(v int) stateful.Cmd   { return stateful.CAssign{Field: netkat.FieldPt, Value: v} }
func test(p stateful.Pred) stateful.Cmd {
	return stateful.CPred{P: p}
}
func and(ps ...stateful.Pred) stateful.Pred {
	out := ps[0]
	for _, p := range ps[1:] {
		out = stateful.PAnd{L: out, R: p}
	}
	return out
}
func link(a, b netkat.Location) stateful.Cmd { return stateful.CLink{Src: a, Dst: b} }
func linkSt(a, b netkat.Location, v int) stateful.Cmd {
	return stateful.CLinkState{Src: a, Dst: b, Sets: []stateful.StateSet{{Index: 0, Value: v}}}
}

// Firewall is the stateful firewall of Figure 9(a): outgoing H1->H4
// traffic is always allowed; incoming H4->H1 traffic is allowed only after
// an outgoing packet has reached s4.
//
//	pt=2 & dst=H4; pt<-1; (state=[0]; (1:1)=>(4:1)<state<-[1]>
//	                       + state!=[0]; (1:1)=>(4:1)); pt<-2
//	+ pt=2 & dst=H1; state=[1]; pt<-1; (4:1)=>(1:1); pt<-2
func Firewall() App {
	out := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(4)))),
		ptTo(1),
		stateful.UnionC(
			stateful.SeqC(test(stEq(0)), linkSt(loc(1, 1), loc(4, 1), 1)),
			stateful.SeqC(test(stNeq(0)), link(loc(1, 1), loc(4, 1))),
		),
		ptTo(2),
	)
	in := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		test(stEq(1)),
		ptTo(1),
		link(loc(4, 1), loc(1, 1)),
		ptTo(2),
	)
	return App{
		Name: "firewall",
		Topo: topo.Firewall(),
		Prog: stateful.Program{Cmd: stateful.UnionC(out, in), Init: stateful.State{0}},
	}
}

// LearningSwitch is Figure 9(b): traffic from H4 to H1 is flooded (to both
// H1 and H2) until H4's traffic is answered, at which point s4 has
// "learned" H1's location and forwards point-to-point.
//
//	pt=2 & dst=H1; (pt<-1; (4:1)=>(1:1) + state=[0]; pt<-3; (4:3)=>(2:1)); pt<-2
//	+ pt=2 & dst=H4; pt<-1; (1:1)=>(4:1)<state<-[1]>; pt<-2
//	+ pt=2; pt<-1; (2:1)=>(4:3); pt<-2
func LearningSwitch() App {
	flood := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		stateful.UnionC(
			stateful.SeqC(ptTo(1), link(loc(4, 1), loc(1, 1))),
			stateful.SeqC(test(stEq(0)), ptTo(3), link(loc(4, 3), loc(2, 1))),
		),
		ptTo(2),
	)
	learn := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(4)))),
		ptTo(1),
		linkSt(loc(1, 1), loc(4, 1), 1),
		ptTo(2),
	)
	fromH2 := stateful.SeqC(
		test(ptEq(2)),
		ptTo(1),
		link(loc(2, 1), loc(4, 3)),
		ptTo(2),
	)
	return App{
		Name: "learning-switch",
		Topo: topo.LearningSwitch(),
		Prog: stateful.Program{Cmd: stateful.UnionC(flood, learn, fromH2), Init: stateful.State{0}},
	}
}

// Authentication is Figure 9(c): untrusted H4 must contact H1 and then H2
// (in that order) before it may reach H3.
//
//	state=[0] & pt=2 & dst=H1; pt<-1; (4:1)=>(1:1)<state<-[1]>; pt<-2
//	+ state=[1] & pt=2 & dst=H2; pt<-3; (4:3)=>(2:1)<state<-[2]>; pt<-2
//	+ state=[2] & pt=2 & dst=H3; pt<-4; (4:4)=>(3:1); pt<-2
//	+ pt=2; pt<-1; ((1:1)=>(4:1) + (2:1)=>(4:3) + (3:1)=>(4:4)); pt<-2
func Authentication() App {
	b1 := stateful.SeqC(
		test(and(stEq(0), ptEq(2), dstEq(H(1)))),
		ptTo(1),
		linkSt(loc(4, 1), loc(1, 1), 1),
		ptTo(2),
	)
	b2 := stateful.SeqC(
		test(and(stEq(1), ptEq(2), dstEq(H(2)))),
		ptTo(3),
		linkSt(loc(4, 3), loc(2, 1), 2),
		ptTo(2),
	)
	b3 := stateful.SeqC(
		test(and(stEq(2), ptEq(2), dstEq(H(3)))),
		ptTo(4),
		link(loc(4, 4), loc(3, 1)),
		ptTo(2),
	)
	back := stateful.SeqC(
		test(ptEq(2)),
		ptTo(1),
		stateful.UnionC(
			link(loc(1, 1), loc(4, 1)),
			link(loc(2, 1), loc(4, 3)),
			link(loc(3, 1), loc(4, 4)),
		),
		ptTo(2),
	)
	return App{
		Name: "authentication",
		Topo: topo.Star(),
		Prog: stateful.Program{Cmd: stateful.UnionC(b1, b2, b3, back), Init: stateful.State{0}},
	}
}

// BandwidthCap is Figure 9(d) with cap n: outgoing H1->H4 traffic is
// always allowed and counted at s4; once n+1 outgoing packets have
// arrived, the incoming H4->H1 path is disabled (so exactly n
// request/reply exchanges succeed).
//
//	pt=2 & dst=H4; pt<-1; ( state=[0]; (1:1)=>(4:1)<state<-[1]>
//	                      + ... + state=[n]; (1:1)=>(4:1)<state<-[n+1]>
//	                      + state=[n+1]; (1:1)=>(4:1) ); pt<-2
//	+ pt=2 & dst=H1; state!=[n+1]; pt<-1; (4:1)=>(1:1); pt<-2
func BandwidthCap(n int) App {
	var counters []stateful.Cmd
	for i := 0; i <= n; i++ {
		counters = append(counters, stateful.SeqC(test(stEq(i)), linkSt(loc(1, 1), loc(4, 1), i+1)))
	}
	counters = append(counters, stateful.SeqC(test(stEq(n+1)), link(loc(1, 1), loc(4, 1))))
	out := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(4)))),
		ptTo(1),
		stateful.UnionC(counters...),
		ptTo(2),
	)
	in := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		test(stNeq(n+1)),
		ptTo(1),
		link(loc(4, 1), loc(1, 1)),
		ptTo(2),
	)
	return App{
		Name: fmt.Sprintf("bandwidth-cap-%d", n),
		Topo: topo.Firewall(),
		Prog: stateful.Program{Cmd: stateful.UnionC(out, in), Init: stateful.State{0}},
	}
}

// IDS is Figure 9(e): all traffic is initially allowed, but if H4 scans
// H1 and then H2 (in that order), access to H3 is cut off.
//
//	pt=2 & dst=H1; pt<-1; (state=[0]; (4:1)=>(1:1)<state<-[1]>
//	                      + state!=[0]; (4:1)=>(1:1)); pt<-2
//	+ pt=2 & dst=H2; pt<-3; (state=[1]; (4:3)=>(2:1)<state<-[2]>
//	                        + state!=[1]; (4:3)=>(2:1)); pt<-2
//	+ pt=2 & dst=H3; pt<-4; state!=[2]; (4:4)=>(3:1); pt<-2
//	+ pt=2; pt<-1; ((1:1)=>(4:1) + (2:1)=>(4:3) + (3:1)=>(4:4)); pt<-2
func IDS() App {
	b1 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		ptTo(1),
		stateful.UnionC(
			stateful.SeqC(test(stEq(0)), linkSt(loc(4, 1), loc(1, 1), 1)),
			stateful.SeqC(test(stNeq(0)), link(loc(4, 1), loc(1, 1))),
		),
		ptTo(2),
	)
	b2 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(2)))),
		ptTo(3),
		stateful.UnionC(
			stateful.SeqC(test(stEq(1)), linkSt(loc(4, 3), loc(2, 1), 2)),
			stateful.SeqC(test(stNeq(1)), link(loc(4, 3), loc(2, 1))),
		),
		ptTo(2),
	)
	b3 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(3)))),
		ptTo(4),
		test(stNeq(2)),
		link(loc(4, 4), loc(3, 1)),
		ptTo(2),
	)
	back := stateful.SeqC(
		test(ptEq(2)),
		ptTo(1),
		stateful.UnionC(
			link(loc(1, 1), loc(4, 1)),
			link(loc(2, 1), loc(4, 3)),
			link(loc(3, 1), loc(4, 4)),
		),
		ptTo(2),
	)
	return App{
		Name: "ids",
		Topo: topo.Star(),
		Prog: stateful.Program{Cmd: stateful.UnionC(b1, b2, b3, back), Init: stateful.State{0}},
	}
}

// Ring is the synthetic application of Section 5.2: hosts H1 and H2 sit on
// opposite sides of a ring of 2*diameter switches. Initially H1->H2
// traffic is forwarded clockwise; when switch 2 detects the arrival of a
// signal packet (sig=1), the configuration flips to counterclockwise.
// H2->H1 traffic is always forwarded clockwise (continuing around the
// ring), so that in steady state every switch sees data traffic — the
// gossip channel for event dissemination measured in Figure 16(b).
func Ring(diameter int) App {
	n := 2 * diameter
	next := func(i int) int { return i%n + 1 } // clockwise neighbor
	prev := func(i int) int { return (i+n-2)%n + 1 }

	// Clockwise H1->H2 in state 0: switches 1, 2, ..., d+1.
	var cw []stateful.Cmd
	cw = append(cw, test(and(ptEq(3), dstEq(H(2)))), test(stEq(0)))
	for i := 1; i <= diameter; i++ {
		cw = append(cw, ptTo(1), link(loc(i, 1), loc(next(i), 2)))
	}
	cw = append(cw, ptTo(3))

	// Counterclockwise H1->H2 in state 1: switches 1, 2d, ..., d+1.
	var ccw []stateful.Cmd
	ccw = append(ccw, test(and(ptEq(3), dstEq(H(2)))), test(stEq(1)))
	for i := 1; i != diameter+1; i = prev(i) {
		ccw = append(ccw, ptTo(2), link(loc(i, 2), loc(prev(i), 1)))
	}
	ccw = append(ccw, ptTo(3))

	// H2->H1 always clockwise: switches d+1, ..., 2d, 1.
	var back []stateful.Cmd
	back = append(back, test(and(ptEq(3), dstEq(H(1)))))
	for i := diameter + 1; i != 1; i = next(i) {
		back = append(back, ptTo(1), link(loc(i, 1), loc(next(i), 2)))
	}
	back = append(back, ptTo(3))

	// Signal packet: flips the state; the event is its arrival at 2:2.
	sig := stateful.SeqC(
		test(and(ptEq(3), stateful.PTest{Field: FieldSig, Value: 1})),
		test(stEq(0)),
		ptTo(1),
		linkSt(loc(1, 1), loc(2, 2), 1),
	)

	return App{
		Name: fmt.Sprintf("ring-%d", diameter),
		Topo: topo.Ring(diameter),
		Prog: stateful.Program{
			Cmd:  stateful.UnionC(stateful.SeqC(cw...), stateful.SeqC(ccw...), stateful.SeqC(back...), sig),
			Init: stateful.State{0},
		},
	}
}

// All returns the five paper applications (with the paper's n=10 cap).
func All() []App {
	return []App{Firewall(), LearningSwitch(), Authentication(), BandwidthCap(10), IDS()}
}
