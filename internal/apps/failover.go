package apps

import (
	"fmt"

	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Failover applications: a primary/backup path pair whose selection is
// flipped by first-class link-failure and -recovery events (see
// internal/stateful/failure.go for the event model). The program's state
// is a chain 0, 1, ..., 2*cycles — even states route over the primary
// path, odd states over the link-disjoint backup — advanced by the
// arrival of linkdown/linkup notifications from a monitor host. Each
// fail/recover pair reuses the same guard and location, so repeated
// cycles exercise the NES's occurrence renaming, and the chain keeps the
// ETS acyclic for any cycle count.

// Failover bundles a failover App with the metadata a chaos driver needs:
// the notification source, the notification header fields, and the
// directed primary link the program treats as failed in its odd states.
type Failover struct {
	App
	Src, Dst   string        // the data-traffic host pair
	Monitor    string        // notification-source host
	Failed     topo.Link     // primary link that fails (odd states avoid it)
	FailPkt    netkat.Packet // header fields of a failure notification
	RecoverPkt netkat.Packet // header fields of a recovery notification
	Cycles     int           // fail/recover cycles before the chain ends
}

// FailedState reports whether a state vector of the failover program is
// an odd (failed, backup-routing) state.
func (f Failover) FailedState(s stateful.State) bool { return s.Get(0)%2 == 1 }

// reversePath reverses a chain of bidirectional-link hops.
func reversePath(path []topo.Link) []topo.Link {
	out := make([]topo.Link, len(path))
	for i, l := range path {
		out[len(path)-1-i] = topo.Link{Src: l.Dst, Dst: l.Src}
	}
	return out
}

// pathCmds appends one (pt<-out; link; retest) triple per hop of a path.
// Hop eventAt (or none if -1) crosses a state-updating link setting
// state(0) <- stUpd. The per-hop retest keeps each branch's tables
// disjoint from branches sharing fabric links (see routeChain).
func pathCmds(cmds []stateful.Cmd, path []topo.Link, eventAt, stUpd int, retest stateful.Pred) []stateful.Cmd {
	for i, l := range path {
		cmds = append(cmds, ptTo(l.Src.Port))
		if i == eventAt {
			cmds = append(cmds, stateful.CLinkState{Src: l.Src, Dst: l.Dst, Sets: []stateful.StateSet{{Index: 0, Value: stUpd}}})
		} else {
			cmds = append(cmds, link(l.Src, l.Dst))
		}
		cmds = append(cmds, test(retest))
	}
	return cmds
}

// buildFailover assembles the failover program. primary[failIdx] is the
// link that fails; its failure is detected at primary[failIdx-1].Dst (the
// switch upstream of the break, so failIdx must be >= 1), and recovery is
// detected at backup[0].Dst. Both notifications travel from the monitor
// to the dst host, so every notification journey ends in an audited
// delivery.
func buildFailover(name string, tp *topo.Topology, srcH, dstH, monitor string, primary, backup []topo.Link, failIdx, cycles int) Failover {
	host := func(n string) topo.Host {
		h, ok := tp.HostByName(n)
		if !ok {
			panic(fmt.Sprintf("apps: unknown host %q", n))
		}
		return h
	}
	hs, hd, hm := host(srcH), host(dstH), host(monitor)
	if failIdx < 1 || failIdx >= len(primary) {
		panic(fmt.Sprintf("apps: failover fail index %d outside [1,%d)", failIdx, len(primary)))
	}
	if cycles < 1 {
		panic("apps: failover needs at least one fail/recover cycle")
	}
	failed := primary[failIdx]
	downT := stateful.LinkDownTest(failed.Src, failed.Dst)
	upT := stateful.LinkUpTest(failed.Src, failed.Dst)
	rprimary, rbackup := reversePath(primary), reversePath(backup)

	dataBranch := func(st int, from, to topo.Host, path []topo.Link) stateful.Cmd {
		d := dstEq(to.ID)
		cmds := []stateful.Cmd{test(and(ptEq(from.Attach.Port), d, stEq(st)))}
		cmds = pathCmds(cmds, path, -1, 0, d)
		cmds = append(cmds, ptTo(to.Attach.Port))
		return stateful.SeqC(cmds...)
	}
	notifBranch := func(st int, guard stateful.Pred, path []topo.Link, eventAt, next int) stateful.Cmd {
		cmds := []stateful.Cmd{test(and(ptEq(hm.Attach.Port), guard, stEq(st)))}
		cmds = pathCmds(cmds, path, eventAt, next, guard)
		cmds = append(cmds, ptTo(hd.Attach.Port))
		return stateful.SeqC(cmds...)
	}

	var branches []stateful.Cmd
	for c := 0; c <= cycles; c++ {
		even := 2 * c
		branches = append(branches,
			dataBranch(even, hs, hd, primary),
			dataBranch(even, hd, hs, rprimary),
		)
		if c == cycles {
			break
		}
		odd := even + 1
		branches = append(branches,
			notifBranch(even, downT, primary, failIdx-1, odd),
			dataBranch(odd, hs, hd, backup),
			dataBranch(odd, hd, hs, rbackup),
			notifBranch(odd, upT, backup, 0, even+2),
		)
	}
	id := netkat.LinkID(failed.Src, failed.Dst)
	return Failover{
		App: App{
			Name: name,
			Topo: tp,
			Prog: stateful.Program{Cmd: stateful.UnionC(branches...), Init: stateful.State{0}},
		},
		Src:        srcH,
		Dst:        dstH,
		Monitor:    monitor,
		Failed:     failed,
		FailPkt:    netkat.Packet{netkat.FieldLinkDown: id},
		RecoverPkt: netkat.Packet{netkat.FieldLinkUp: id},
		Cycles:     cycles,
	}
}

// FailoverDiamond is failover on the minimal diamond: primary s1-s2-s4,
// backup s1-s3-s4, the s2->s4 link failing. Failure is detected at s2,
// recovery at s3.
func FailoverDiamond(cycles int) Failover {
	primary := []topo.Link{
		{Src: loc(1, 1), Dst: loc(2, 1)},
		{Src: loc(2, 2), Dst: loc(4, 1)},
	}
	backup := []topo.Link{
		{Src: loc(1, 2), Dst: loc(3, 1)},
		{Src: loc(3, 2), Dst: loc(4, 2)},
	}
	return buildFailover(fmt.Sprintf("failover-diamond-%d", cycles),
		topo.Diamond(), "H1", "H2", "M", primary, backup, 1, cycles)
}

// FailoverWAN is failover on the six-switch WAN graph: two link-disjoint
// equal-cost three-hop paths (the ECMP pair), the s3->s4 link failing.
// Failure is detected at s3, recovery at s5.
func FailoverWAN(cycles int) Failover {
	primary := []topo.Link{
		{Src: loc(1, 1), Dst: loc(2, 1)},
		{Src: loc(2, 2), Dst: loc(3, 1)},
		{Src: loc(3, 2), Dst: loc(4, 1)},
	}
	backup := []topo.Link{
		{Src: loc(1, 2), Dst: loc(5, 1)},
		{Src: loc(5, 2), Dst: loc(6, 1)},
		{Src: loc(6, 2), Dst: loc(4, 2)},
	}
	return buildFailover(fmt.Sprintf("failover-wan-%d", cycles),
		topo.WAN(), "H1", "H2", "M", primary, backup, 2, cycles)
}

// FailoverFatTree is failover on a k-ary fat-tree: H1 (first edge switch)
// sends to the fabric's last host over the deterministic shortest path;
// the path's aggregation->core uplink fails, and the backup path routes
// through the surviving core. H2, on H1's edge switch, is the monitor.
func FailoverFatTree(k, cycles int) Failover {
	tp := topo.FatTree(k)
	if k < 4 {
		panic(fmt.Sprintf("apps: FailoverFatTree needs arity >= 4, got %d", k))
	}
	src, _ := tp.HostByName("H1")
	dstName := fmt.Sprintf("H%d", k*k*k/4)
	dst, _ := tp.HostByName(dstName)
	primary, ok := tp.ShortestPath(src.Attach.Switch, dst.Attach.Switch)
	if !ok || len(primary) < 3 {
		panic("apps: fat-tree fabric path missing")
	}
	const failIdx = 1 // the aggregation->core uplink
	banned := map[topo.Link]bool{
		primary[failIdx]: true,
		{Src: primary[failIdx].Dst, Dst: primary[failIdx].Src}: true,
	}
	backup, ok := tp.ShortestPathAvoiding(src.Attach.Switch, dst.Attach.Switch, banned)
	if !ok {
		panic("apps: fat-tree has no backup path")
	}
	return buildFailover(fmt.Sprintf("failover-fattree-%d-%d", k, cycles),
		tp, "H1", dstName, "H2", primary, backup, failIdx, cycles)
}
