package apps

import (
	"fmt"

	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Extension applications beyond the paper's five case studies: the walled
// garden comes from the Section 5 Protocols/Security category list, and
// the distributed firewall realizes the Figure 3(a) diamond — two
// *independent* events whose order differs between executions — which the
// paper discusses but does not evaluate.

// FieldSrc is the source-address field used by the extension apps.
const FieldSrc = "src"

func srcEq(v int) stateful.Pred { return stateful.PTest{Field: FieldSrc, Value: v} }

// WalledGarden: guest H4 initially reaches only the portal H1; once it
// has contacted the portal (packet from H4 arriving at s1), the rest of
// the internal network (H2, H3) opens up.
//
//	pt=2 & dst=H1; pt<-1; (state=[0]; (4:1)=>(1:1)<state<-[1]>
//	                      + state!=[0]; (4:1)=>(1:1)); pt<-2
//	+ state=[1] & pt=2 & dst=H2; pt<-3; (4:3)=>(2:1); pt<-2
//	+ state=[1] & pt=2 & dst=H3; pt<-4; (4:4)=>(3:1); pt<-2
//	+ pt=2; pt<-1; ((1:1)=>(4:1) + (2:1)=>(4:3) + (3:1)=>(4:4)); pt<-2
func WalledGarden() App {
	portal := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		ptTo(1),
		stateful.UnionC(
			stateful.SeqC(test(stEq(0)), linkSt(loc(4, 1), loc(1, 1), 1)),
			stateful.SeqC(test(stNeq(0)), link(loc(4, 1), loc(1, 1))),
		),
		ptTo(2),
	)
	toH2 := stateful.SeqC(
		test(and(stEq(1), ptEq(2), dstEq(H(2)))),
		ptTo(3),
		link(loc(4, 3), loc(2, 1)),
		ptTo(2),
	)
	toH3 := stateful.SeqC(
		test(and(stEq(1), ptEq(2), dstEq(H(3)))),
		ptTo(4),
		link(loc(4, 4), loc(3, 1)),
		ptTo(2),
	)
	back := stateful.SeqC(
		test(ptEq(2)),
		ptTo(1),
		stateful.UnionC(
			link(loc(1, 1), loc(4, 1)),
			link(loc(2, 1), loc(4, 3)),
			link(loc(3, 1), loc(4, 4)),
		),
		ptTo(2),
	)
	return App{
		Name: "walled-garden",
		Topo: topo.Star(),
		Prog: stateful.Program{Cmd: stateful.UnionC(portal, toH2, toH3, back), Init: stateful.State{0}},
	}
}

// routeChain builds the command steering a packet from srcHost's edge
// switch to dstHost's host port along the topology's deterministic
// shortest path: a guard on the source attachment port and the
// destination address, then one (pt<-out; link) pair per hop. When
// stUpd >= 0 the final link — whose arrival at the destination edge
// switch is the observable event — carries the state update state(0)<-stUpd.
func routeChain(tp *topo.Topology, srcHost, dstHost string, dst int, stUpd int) stateful.Cmd {
	hs, ok := tp.HostByName(srcHost)
	if !ok {
		panic(fmt.Sprintf("apps: unknown host %q", srcHost))
	}
	hd, ok := tp.HostByName(dstHost)
	if !ok {
		panic(fmt.Sprintf("apps: unknown host %q", dstHost))
	}
	links, ok := tp.ShortestPath(hs.Attach.Switch, hd.Attach.Switch)
	if !ok || len(links) == 0 {
		panic(fmt.Sprintf("apps: no multi-hop route from %s to %s", srcHost, dstHost))
	}
	cmds := []stateful.Cmd{test(and(ptEq(hs.Attach.Port), dstEq(dst)))}
	for i, l := range links {
		cmds = append(cmds, ptTo(l.Src.Port))
		if i == len(links)-1 && stUpd >= 0 {
			cmds = append(cmds, linkSt(l.Src, l.Dst, stUpd))
		} else {
			cmds = append(cmds, link(l.Src, l.Dst))
		}
		// Re-test the destination after every hop. Semantically the test is
		// idempotent (dst is never rewritten), but it keeps it in each
		// hop's match, so routes to different hosts that share fabric
		// links compile to disjoint rules instead of merging into
		// multicast at the switches where they diverge.
		cmds = append(cmds, test(dstEq(dst)))
	}
	cmds = append(cmds, ptTo(hd.Attach.Port))
	return stateful.SeqC(cmds...)
}

// IDSFatTree lifts the Figure 9(e) intrusion-detection state machine onto
// a k-ary fat-tree fabric: the monitor host (the fabric's last host)
// scans H1 and then H2 — each detected by the arrival of its multi-hop
// flow at the target's edge switch — after which the monitor's access to
// H3 is cut off. Every flow is routed over the fabric's deterministic
// shortest path, so configurations span edge, aggregation, and core
// switches, exercising the compiler on data-center-scale topologies
// rather than the paper's one-hop stars.
func IDSFatTree(k int) App {
	if k < 4 {
		// k=2 yields only 2 hosts; the IDS needs H1-H3 plus a monitor on
		// a different edge switch.
		panic(fmt.Sprintf("apps: IDSFatTree needs arity >= 4, got %d", k))
	}
	tp := topo.FatTree(k)
	mon := fmt.Sprintf("H%d", k*k*k/4)

	scan1 := stateful.UnionC(
		stateful.SeqC(test(stEq(0)), routeChain(tp, mon, "H1", H(1), 1)),
		stateful.SeqC(test(stNeq(0)), routeChain(tp, mon, "H1", H(1), -1)),
	)
	scan2 := stateful.UnionC(
		stateful.SeqC(test(stEq(1)), routeChain(tp, mon, "H2", H(2), 2)),
		stateful.SeqC(test(stNeq(1)), routeChain(tp, mon, "H2", H(2), -1)),
	)
	reach3 := stateful.SeqC(test(stNeq(2)), routeChain(tp, mon, "H3", H(3), -1))
	monN := k * k * k / 4
	back := stateful.UnionC(
		routeChain(tp, "H1", mon, H(monN), -1),
		routeChain(tp, "H2", mon, H(monN), -1),
		routeChain(tp, "H3", mon, H(monN), -1),
	)
	return App{
		Name: fmt.Sprintf("ids-fattree-%d", k),
		Topo: tp,
		Prog: stateful.Program{
			Cmd:  stateful.UnionC(scan1, scan2, reach3, back),
			Init: stateful.State{0},
		},
	}
}

// Scale returns the large-sweep applications opened by the incremental
// compilation pipeline: bandwidth caps far past the 64-event tag word
// and intrusion detection on a data-center fabric.
func Scale() []App {
	return []App{BandwidthCap(80), BandwidthCap(200), IDSFatTree(4)}
}

// Scale10 returns the 10x workloads opened by the interned, arena-backed
// compiler: a bandwidth cap an order of magnitude past the Scale sweep
// (2002 reachable states) and intrusion detection on a 125-switch
// k=10 fat tree. Both must compile interactively — they are the rows
// behind BENCH_compile.json and the sub-5ms submit->swap gate
// (docs/BENCHMARKS.md).
func Scale10() []App {
	return []App{BandwidthCap(2000), IDSFatTree(10)}
}

// DistributedFirewall: H1 and H2 each independently open their own
// return path from H4 by sending outgoing traffic — two independent
// events (at s4's ports 1 and 3) forming the Figure 3(a) diamond:
// the events can occur in either order, and different switches may
// observe them in different orders, all of which are correct.
//
//	pt=2 & dst=H4 & src=H1; pt<-1; (state(0)=0; (1:1)=>(4:1)<state(0)<-1>
//	                               + state(0)!=0; (1:1)=>(4:1)); pt<-2
//	+ pt=2 & dst=H4 & src=H2; pt<-1; (state(1)=0; (2:1)=>(4:3)<state(1)<-1>
//	                                 + state(1)!=0; (2:1)=>(4:3)); pt<-2
//	+ pt=2 & dst=H1; state(0)=1; pt<-1; (4:1)=>(1:1); pt<-2
//	+ pt=2 & dst=H2; state(1)=1; pt<-3; (4:3)=>(2:1); pt<-2
func DistributedFirewall() App {
	st := func(i, v int) stateful.Pred { return stateful.PState{Index: i, Value: v} }
	stN := func(i, v int) stateful.Pred { return stateful.PNot{P: stateful.PState{Index: i, Value: v}} }
	lnkSt := func(a, b int, ap, bp, idx int) stateful.Cmd {
		return stateful.CLinkState{
			Src:  loc(a, ap),
			Dst:  loc(b, bp),
			Sets: []stateful.StateSet{{Index: idx, Value: 1}},
		}
	}
	out1 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(4)), srcEq(H(1)))),
		ptTo(1),
		stateful.UnionC(
			stateful.SeqC(test(st(0, 0)), lnkSt(1, 4, 1, 1, 0)),
			stateful.SeqC(test(stN(0, 0)), link(loc(1, 1), loc(4, 1))),
		),
		ptTo(2),
	)
	out2 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(4)), srcEq(H(2)))),
		ptTo(1),
		stateful.UnionC(
			stateful.SeqC(test(st(1, 0)), lnkSt(2, 4, 1, 3, 1)),
			stateful.SeqC(test(stN(1, 0)), link(loc(2, 1), loc(4, 3))),
		),
		ptTo(2),
	)
	in1 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(1)))),
		test(st(0, 1)),
		ptTo(1),
		link(loc(4, 1), loc(1, 1)),
		ptTo(2),
	)
	in2 := stateful.SeqC(
		test(and(ptEq(2), dstEq(H(2)))),
		test(st(1, 1)),
		ptTo(3),
		link(loc(4, 3), loc(2, 1)),
		ptTo(2),
	)
	return App{
		Name: "distributed-firewall",
		Topo: topo.LearningSwitch(),
		Prog: stateful.Program{Cmd: stateful.UnionC(out1, out2, in1, in2), Init: stateful.State{0, 0}},
	}
}
