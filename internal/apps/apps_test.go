package apps

import (
	"testing"

	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
)

// TestAllValid: topologies validate and programs enumerate their expected
// state spaces.
func TestAllValid(t *testing.T) {
	wantStates := map[string]int{
		"firewall":         2,
		"learning-switch":  2,
		"authentication":   3,
		"bandwidth-cap-10": 12,
		"ids":              3,
	}
	for _, a := range All() {
		if err := a.Topo.Validate(); err != nil {
			t.Errorf("%s: topology: %v", a.Name, err)
		}
		states, _, err := a.Prog.ReachableStates()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if want := wantStates[a.Name]; len(states) != want {
			t.Errorf("%s: %d states, want %d", a.Name, len(states), want)
		}
	}
}

// TestFirewallProjections: the two firewall configurations forward as the
// paper describes — C[0] outgoing only, C[1] both directions.
func TestFirewallProjections(t *testing.T) {
	a := Firewall()
	outPkt := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(4)}, Loc: netkat.Location{Switch: 1, Port: 2}}
	backPkt := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(1)}, Loc: netkat.Location{Switch: 4, Port: 2}}

	c0 := stateful.Project(a.Prog.Cmd, stateful.State{0})
	c1 := stateful.Project(a.Prog.Cmd, stateful.State{1})

	if got := netkat.Eval(c0, outPkt); len(got) != 1 || got[0].Loc != (netkat.Location{Switch: 4, Port: 2}) {
		t.Errorf("C[0] outgoing: %v", got)
	}
	if got := netkat.Eval(c0, backPkt); len(got) != 0 {
		t.Errorf("C[0] must drop incoming: %v", got)
	}
	if got := netkat.Eval(c1, backPkt); len(got) != 1 || got[0].Loc != (netkat.Location{Switch: 1, Port: 2}) {
		t.Errorf("C[1] incoming: %v", got)
	}
}

// TestLearningSwitchFloodProjection: in state [0] traffic to H1 reaches
// both H1's and H2's egress; in state [1] only H1's.
func TestLearningSwitchFloodProjection(t *testing.T) {
	a := LearningSwitch()
	pkt := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(1)}, Loc: netkat.Location{Switch: 4, Port: 2}}
	c0 := stateful.Project(a.Prog.Cmd, stateful.State{0})
	if got := netkat.Eval(c0, pkt); len(got) != 2 {
		t.Errorf("state [0] flood: %v", got)
	}
	c1 := stateful.Project(a.Prog.Cmd, stateful.State{1})
	got := netkat.Eval(c1, pkt)
	if len(got) != 1 || got[0].Loc != (netkat.Location{Switch: 1, Port: 2}) {
		t.Errorf("state [1] unicast: %v", got)
	}
}

// TestBandwidthCapChain: counting transitions move 0 -> 1 -> ... -> n+1
// and stop.
func TestBandwidthCapChain(t *testing.T) {
	a := BandwidthCap(3)
	states, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 5 || len(edges) != 4 {
		t.Fatalf("chain: %d states, %d edges", len(states), len(edges))
	}
	// Final state drops incoming but still forwards outgoing.
	cLast := stateful.Project(a.Prog.Cmd, stateful.State{4})
	outPkt := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(4)}, Loc: netkat.Location{Switch: 1, Port: 2}}
	backPkt := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(1)}, Loc: netkat.Location{Switch: 4, Port: 2}}
	if got := netkat.Eval(cLast, outPkt); len(got) != 1 {
		t.Errorf("capped state must forward outgoing: %v", got)
	}
	if got := netkat.Eval(cLast, backPkt); len(got) != 0 {
		t.Errorf("capped state must drop incoming: %v", got)
	}
}

// TestRingPaths: in state [0] H1->H2 follows the clockwise arc; in state
// [1] the counterclockwise arc; replies always clockwise.
func TestRingPaths(t *testing.T) {
	d := 3
	a := Ring(d)
	fwd := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(2)}, Loc: netkat.Location{Switch: 1, Port: 3}}
	dst := netkat.Location{Switch: d + 1, Port: 3}
	for _, k := range []stateful.State{{0}, {1}} {
		c := stateful.Project(a.Prog.Cmd, k)
		got := netkat.Eval(c, fwd)
		if len(got) != 1 || got[0].Loc != dst {
			t.Errorf("state %v: H1->H2 = %v, want %v", k, got, dst)
		}
	}
	back := netkat.LocatedPacket{Pkt: netkat.Packet{FieldDst: H(1)}, Loc: netkat.Location{Switch: d + 1, Port: 3}}
	c0 := stateful.Project(a.Prog.Cmd, stateful.State{0})
	got := netkat.Eval(c0, back)
	if len(got) != 1 || got[0].Loc != (netkat.Location{Switch: 1, Port: 3}) {
		t.Errorf("H2->H1: %v", got)
	}
}

// TestRingSignalEdge: the only event edge is the signal arrival at 2:2.
func TestRingSignalEdge(t *testing.T) {
	a := Ring(4)
	_, edges, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Fatalf("edges: %v", edges)
	}
	e := edges[0]
	if e.Loc != (netkat.Location{Switch: 2, Port: 2}) {
		t.Errorf("event loc: %v", e.Loc)
	}
	if v, ok := e.Guard.Eq(FieldSig); !ok || v != 1 {
		t.Errorf("event guard: %v", e.Guard)
	}
}
