// Package verify implements static reachability checking for compiled
// event-driven network programs — the complementary verification
// direction the paper points to in Section 6 (Lopes et al.'s reachability
// checking for stateful programs). Queries run over the configuration
// relation of each ETS state, so properties can be checked in every
// reachable state of the program and across its transitions:
//
//	isolation     — packets from A never reach B
//	connectivity  — packets from A do reach B
//	waypointing   — every A-to-B path traverses a given switch
//
// together with AG (holds in every reachable state) and per-state
// quantifiers over the ETS.
package verify

import (
	"fmt"

	"eventnet/internal/ets"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
)

// maxVisited bounds reachability exploration per query.
const maxVisited = 100000

// Checker answers reachability queries over an ETS.
type Checker struct {
	E *ets.ETS
}

// New builds a checker.
func New(e *ets.ETS) *Checker { return &Checker{E: e} }

// config returns the configuration relation of vertex v.
func (c *Checker) config(v int) netkat.DConfig {
	return &nkc.CompiledConfig{Tables: c.E.Vertices[v].Tables, Topo: c.E.Topo}
}

// Trace is a witness path: the directed points a packet visits.
type Trace []netkat.DPacket

// String renders the witness compactly.
func (tr Trace) String() string {
	s := ""
	for i, d := range tr {
		if i > 0 {
			s += " -> "
		}
		s += d.Loc.String()
	}
	return s
}

// Reach explores the configuration relation of state v from the named
// source host with the given packet, returning every visited directed
// point and, if the destination host is reached, a witness path.
// avoidSwitch, if nonnegative, removes a switch from the exploration
// (used for waypoint checking).
func (c *Checker) Reach(v int, fromHost, toHost string, pkt netkat.Packet, avoidSwitch int) (bool, Trace, error) {
	from, ok := c.E.Topo.HostByName(fromHost)
	if !ok {
		return false, nil, fmt.Errorf("verify: unknown host %q", fromHost)
	}
	to, ok := c.E.Topo.HostByName(toHost)
	if !ok {
		return false, nil, fmt.Errorf("verify: unknown host %q", toHost)
	}
	cfg := c.config(v)
	start := netkat.DPacket{Pkt: pkt, Loc: from.Loc(), Out: true}
	goal := to.Loc()

	type qitem struct {
		d    netkat.DPacket
		prev int
	}
	queue := []qitem{{d: start, prev: -1}}
	seen := map[string]bool{start.Key(): true}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi].d
		if cur.Loc == goal && !cur.Out {
			// Rebuild the witness.
			var rev Trace
			for i := qi; i >= 0; i = queue[i].prev {
				rev = append(rev, queue[i].d)
			}
			tr := make(Trace, len(rev))
			for i := range rev {
				tr[i] = rev[len(rev)-1-i]
			}
			return true, tr, nil
		}
		if cur.Loc.Switch == avoidSwitch {
			continue
		}
		for _, next := range cfg.DStep(cur) {
			if next.Loc.Switch == from.ID && !next.Out {
				continue // bounced back to the source host
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			queue = append(queue, qitem{d: next, prev: qi})
			if len(queue) > maxVisited {
				return false, nil, fmt.Errorf("verify: exploration exceeded %d states", maxVisited)
			}
		}
	}
	return false, nil, nil
}

// Prop is a named property of one ETS state.
type Prop struct {
	Name  string
	Check func(c *Checker, v int) error
}

// Isolation asserts packets with the given fields from one host never
// reach another.
func Isolation(fromHost, toHost string, pkt netkat.Packet) Prop {
	return Prop{
		Name: fmt.Sprintf("isolation(%s -/-> %s, %v)", fromHost, toHost, pkt),
		Check: func(c *Checker, v int) error {
			ok, tr, err := c.Reach(v, fromHost, toHost, pkt, -1)
			if err != nil {
				return err
			}
			if ok {
				return fmt.Errorf("reachable via %v", tr)
			}
			return nil
		},
	}
}

// Connectivity asserts packets with the given fields from one host do
// reach another.
func Connectivity(fromHost, toHost string, pkt netkat.Packet) Prop {
	return Prop{
		Name: fmt.Sprintf("connectivity(%s -> %s, %v)", fromHost, toHost, pkt),
		Check: func(c *Checker, v int) error {
			ok, _, err := c.Reach(v, fromHost, toHost, pkt, -1)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("unreachable")
			}
			return nil
		},
	}
}

// Waypoint asserts that whenever the destination is reachable, every path
// traverses the given switch: removing the switch must break
// reachability.
func Waypoint(fromHost, toHost string, pkt netkat.Packet, sw int) Prop {
	return Prop{
		Name: fmt.Sprintf("waypoint(%s -> %s via s%d)", fromHost, toHost, sw),
		Check: func(c *Checker, v int) error {
			ok, _, err := c.Reach(v, fromHost, toHost, pkt, -1)
			if err != nil {
				return err
			}
			if !ok {
				return nil // vacuous: nothing to waypoint
			}
			bypass, tr, err := c.Reach(v, fromHost, toHost, pkt, sw)
			if err != nil {
				return err
			}
			if bypass {
				return fmt.Errorf("bypass exists: %v", tr)
			}
			return nil
		},
	}
}

// StateViolation reports a property failing at a specific ETS state.
type StateViolation struct {
	State string
	Prop  string
	Err   error
}

func (v *StateViolation) Error() string {
	return fmt.Sprintf("verify: state %s: %s: %v", v.State, v.Prop, v.Err)
}

// AG checks that a property holds in every reachable state of the ETS
// (the "always globally" modality over the transition system).
func (c *Checker) AG(p Prop) error {
	for _, v := range c.E.Vertices {
		if err := p.Check(c, v.ID); err != nil {
			return &StateViolation{State: v.State.Key(), Prop: p.Name, Err: err}
		}
	}
	return nil
}

// AtState checks a property at the state with the given vector key (e.g.
// "[0]").
func (c *Checker) AtState(stateKey string, p Prop) error {
	for _, v := range c.E.Vertices {
		if v.State.Key() == stateKey {
			if err := p.Check(c, v.ID); err != nil {
				return &StateViolation{State: stateKey, Prop: p.Name, Err: err}
			}
			return nil
		}
	}
	return fmt.Errorf("verify: no state %s", stateKey)
}

// TransitionCheck verifies a relation between the configurations before
// and after every ETS transition — e.g. "each transition only ever opens
// paths" for monotone applications.
func (c *Checker) TransitionCheck(name string, check func(c *Checker, from, to int) error) error {
	for _, ed := range c.E.Edges {
		if err := check(c, ed.From, ed.To); err != nil {
			return fmt.Errorf("verify: transition %s -> %s: %s: %w",
				c.E.Vertices[ed.From].State, c.E.Vertices[ed.To].State, name, err)
		}
	}
	return nil
}
