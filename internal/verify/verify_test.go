package verify

import (
	"strings"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/netkat"
)

func build(t *testing.T, a apps.App) *Checker {
	t.Helper()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return New(e)
}

func pkt(dst int) netkat.Packet { return netkat.Packet{apps.FieldDst: dst} }

// TestFirewallReachability: the firewall's security invariant, checked
// statically per state: in [0] incoming traffic is isolated; in [1] it is
// connected; outgoing traffic is connected in every state.
func TestFirewallReachability(t *testing.T) {
	c := build(t, apps.Firewall())
	if err := c.AtState("[0]", Isolation("H4", "H1", pkt(apps.H(1)))); err != nil {
		t.Error(err)
	}
	if err := c.AtState("[1]", Connectivity("H4", "H1", pkt(apps.H(1)))); err != nil {
		t.Error(err)
	}
	if err := c.AG(Connectivity("H1", "H4", pkt(apps.H(4)))); err != nil {
		t.Error(err)
	}
	// The isolation property must NOT hold globally (state [1] opens it).
	if err := c.AG(Isolation("H4", "H1", pkt(apps.H(1)))); err == nil {
		t.Error("AG isolation held although state [1] opens the path")
	}
}

// TestReachWitness: the witness path lists the expected hops.
func TestReachWitness(t *testing.T) {
	c := build(t, apps.Firewall())
	ok, tr, err := c.Reach(0, "H1", "H4", pkt(apps.H(4)), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("H1 -> H4 unreachable in state [0]")
	}
	want := "101:0 -> 1:2 -> 1:1 -> 4:1 -> 4:2 -> 104:0"
	if got := tr.String(); got != want {
		t.Errorf("witness %q, want %q", got, want)
	}
}

// TestAuthenticationStates: H3 reachable from H4 only in state [2].
func TestAuthenticationStates(t *testing.T) {
	c := build(t, apps.Authentication())
	for _, tc := range []struct {
		state string
		open  bool
	}{
		{"[0]", false}, {"[1]", false}, {"[2]", true},
	} {
		p := Connectivity("H4", "H3", pkt(apps.H(3)))
		err := c.AtState(tc.state, p)
		if tc.open && err != nil {
			t.Errorf("state %s: %v", tc.state, err)
		}
		if !tc.open && err == nil {
			t.Errorf("state %s: H4 -> H3 open too early", tc.state)
		}
	}
}

// TestIDSStates: H3 reachable until the scan completes.
func TestIDSStates(t *testing.T) {
	c := build(t, apps.IDS())
	if err := c.AtState("[0]", Connectivity("H4", "H3", pkt(apps.H(3)))); err != nil {
		t.Error(err)
	}
	if err := c.AtState("[1]", Connectivity("H4", "H3", pkt(apps.H(3)))); err != nil {
		t.Error(err)
	}
	if err := c.AtState("[2]", Isolation("H4", "H3", pkt(apps.H(3)))); err != nil {
		t.Error(err)
	}
}

// TestWaypoint: in the star topology every H4-to-H1 path must traverse
// the hub s4.
func TestWaypoint(t *testing.T) {
	c := build(t, apps.IDS())
	if err := c.AG(Waypoint("H4", "H1", pkt(apps.H(1)), 4)); err != nil {
		t.Error(err)
	}
	// A bogus waypoint (s2 is not on the H4->H1 path) must be rejected in
	// states where the path is open.
	err := c.AtState("[0]", Waypoint("H4", "H1", pkt(apps.H(1)), 2))
	if err == nil {
		t.Error("s2 accepted as waypoint for H4 -> H1")
	} else if !strings.Contains(err.Error(), "bypass") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestRingPathsDiffer: H1 -> H2 is connected in both ring states, but the
// witness paths use opposite arcs.
func TestRingPathsDiffer(t *testing.T) {
	c := build(t, apps.Ring(3))
	ok0, tr0, err := c.Reach(0, "H1", "H2", pkt(apps.H(2)), -1)
	if err != nil || !ok0 {
		t.Fatalf("state 0: %v %v", ok0, err)
	}
	ok1, tr1, err := c.Reach(1, "H1", "H2", pkt(apps.H(2)), -1)
	if err != nil || !ok1 {
		t.Fatalf("state 1: %v %v", ok1, err)
	}
	if tr0.String() == tr1.String() {
		t.Errorf("both states use the same arc: %v", tr0)
	}
	// Clockwise passes switch 2; counterclockwise passes switch 2d = 6.
	if !strings.Contains(tr0.String(), "2:") {
		t.Errorf("clockwise witness: %v", tr0)
	}
	if !strings.Contains(tr1.String(), "6:") {
		t.Errorf("counterclockwise witness: %v", tr1)
	}
}

// TestMonotoneTransitions: the firewall and authentication programs only
// ever open paths along transitions (never close them), while the IDS and
// bandwidth cap close paths — check via TransitionCheck.
func TestMonotoneTransitions(t *testing.T) {
	opensOnly := func(pairs [][2]string, pktOf func(string) netkat.Packet) func(c *Checker, from, to int) error {
		return func(c *Checker, from, to int) error {
			for _, pr := range pairs {
				before, _, err := c.Reach(from, pr[0], pr[1], pktOf(pr[1]), -1)
				if err != nil {
					return err
				}
				after, _, err := c.Reach(to, pr[0], pr[1], pktOf(pr[1]), -1)
				if err != nil {
					return err
				}
				if before && !after {
					return &StateViolation{State: "transition", Prop: "monotone", Err: errClosed{pr[0], pr[1]}}
				}
			}
			return nil
		}
	}
	pktOf := func(h string) netkat.Packet {
		switch h {
		case "H1":
			return pkt(apps.H(1))
		case "H4":
			return pkt(apps.H(4))
		default:
			return pkt(apps.H(3))
		}
	}
	fw := build(t, apps.Firewall())
	if err := fw.TransitionCheck("opens-only", opensOnly([][2]string{{"H1", "H4"}, {"H4", "H1"}}, pktOf)); err != nil {
		t.Errorf("firewall not monotone: %v", err)
	}
	ids := build(t, apps.IDS())
	if err := ids.TransitionCheck("opens-only", opensOnly([][2]string{{"H4", "H3"}}, pktOf)); err == nil {
		t.Error("IDS classified monotone although it revokes H3 access")
	}
}

type errClosed [2]string

func (e errClosed) Error() string { return "path " + e[0] + "->" + e[1] + " closed by transition" }

// TestWalledGardenVerify: the garden invariant per state.
func TestWalledGardenVerify(t *testing.T) {
	c := build(t, apps.WalledGarden())
	if err := c.AtState("[0]", Isolation("H4", "H2", pkt(apps.H(2)))); err != nil {
		t.Error(err)
	}
	if err := c.AtState("[1]", Connectivity("H4", "H2", pkt(apps.H(2)))); err != nil {
		t.Error(err)
	}
	// The portal is reachable in every state.
	if err := c.AG(Connectivity("H4", "H1", pkt(apps.H(1)))); err != nil {
		t.Error(err)
	}
}

func BenchmarkReach(b *testing.B) {
	a := apps.IDS()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		b.Fatal(err)
	}
	c := New(e)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, _, err := c.Reach(0, "H4", "H3", pkt(apps.H(3)), -1)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
