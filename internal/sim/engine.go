// Package sim is a discrete-event network simulator: the substitute for
// the paper's Mininet testbed (Section 5). It models link latency,
// per-byte serialization, finite egress backlogs, and per-packet switch
// processing time, and runs two data planes over compiled NES
// configurations:
//
//   - Tagged: the paper's correct implementation strategy (Section 4) —
//     packets carry a configuration tag and an event digest, switches keep
//     a local event view and react to local events immediately;
//   - Uncoordinated: the baseline — events are reported to a controller,
//     which pushes new configurations to switches after a delay, in an
//     unpredictable order (Section 5's comparison strategy).
//
// Workload drivers (ping with echo responders, bulk transfers) and
// measurement hooks reproduce the quantities plotted in Figures 10-16.
package sim

import (
	"container/heap"
	"math/rand"

	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
	"eventnet/internal/trace"
)

// Params are the physical constants of a simulation.
type Params struct {
	LinkLatency    float64 // seconds per hop (propagation)
	LinkBandwidth  float64 // bytes per second
	SwitchProcTime float64 // seconds per packet of base processing
	MaxLinkBacklog float64 // seconds of queued serialization before drop
	MaxSwBacklog   float64 // seconds of queued switch processing before drop
	PayloadBytes   int     // application payload per packet

	// Uncoordinated-plane knobs.
	CtrlLatency   float64 // switch-to-controller notification latency
	InstallDelay  float64 // controller-to-switch install delay (the Figure 10 sweep)
	InstallJitter float64 // extra random install delay per switch

	// Tagged-plane controller assistance (Figure 16b).
	CtrlAssist bool
}

// DefaultParams models a modest software-switch testbed: 1 ms links,
// 100 Mbit/s (12.5 MB/s) bandwidth, 10 us switch processing, 1400-byte
// payloads.
func DefaultParams() Params {
	return Params{
		LinkLatency:    1e-3,
		LinkBandwidth:  12.5e6,
		SwitchProcTime: 10e-6,
		MaxLinkBacklog: 20e-3,
		MaxSwBacklog:   20e-3,
		PayloadBytes:   1400,
		CtrlLatency:    5e-3,
		InstallDelay:   0,
		InstallJitter:  2e-3,
	}
}

// Meta is the per-packet metadata a data plane attaches (the tag and
// digest of Section 4.1; unused by the uncoordinated plane). The digest
// is an event-set bitmask of whatever width the NES's event universe
// needs (nes.Set), so programs are not limited to 64 events.
type Meta struct {
	Version int
	Digest  nes.Set
}

// Out is one packet a data plane emits from a switch.
type Out struct {
	Fields netkat.Packet
	Port   int
	Meta   Meta
}

// Plane is a data-plane implementation.
type Plane interface {
	// Inject stamps a packet entering the network at the given edge switch.
	Inject(s *Sim, sw int, fields netkat.Packet) Meta
	// Process handles a packet arriving at a switch ingress port.
	Process(s *Sim, sw, inPort int, fields netkat.Packet, meta Meta) []Out
	// HeaderOverhead is the extra on-the-wire bytes per packet.
	HeaderOverhead() int
	// ProcFactor scales the per-packet switch processing time (tag and
	// register operations make the fast path marginally slower).
	ProcFactor() float64
}

// Delivery is a packet received by a host, with its arrival time.
type Delivery struct {
	Host   string
	Fields netkat.Packet
	Time   float64
}

// event is one scheduled action.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Sim is the simulation state.
type Sim struct {
	Topo   *topo.Topology
	Params Params
	Plane  Plane
	Rand   *rand.Rand

	now      float64
	seq      int64
	queue    eventHeap
	linkFree map[netkat.Location]float64 // egress serialization availability
	swFree   map[int]float64             // switch processing availability

	Delivered []Delivery
	Dropped   int // packets dropped due to backlog overflow

	// Record enables network-trace recording for oracle checking. The
	// recorded trace assumes a loss-free run (congestion drops leave
	// truncated packet trees the formalism does not model).
	Record  bool
	nt      trace.NetTrace
	parents []int

	// onReceive handlers per host (echo responders, counters).
	onReceive map[string]func(s *Sim, fields netkat.Packet, at float64)
}

// New builds a simulation over the topology with the given plane.
func New(t *topo.Topology, plane Plane, p Params, seed int64) *Sim {
	return &Sim{
		Topo:      t,
		Params:    p,
		Plane:     plane,
		Rand:      rand.New(rand.NewSource(seed)),
		linkFree:  map[netkat.Location]float64{},
		swFree:    map[int]float64{},
		onReceive: map[string]func(*Sim, netkat.Packet, float64){},
	}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at an absolute time (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a relative delay.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue is empty or the horizon is
// reached.
func (s *Sim) Run(horizon float64) {
	for {
		ev, ok := s.queue.Peek()
		if !ok || ev.at > horizon {
			s.now = horizon
			return
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		ev.fn()
	}
}

// OnReceive registers a handler invoked when the named host receives a
// packet (after any previously registered handler).
func (s *Sim) OnReceive(host string, fn func(s *Sim, fields netkat.Packet, at float64)) {
	prev := s.onReceive[host]
	s.onReceive[host] = func(s *Sim, f netkat.Packet, at float64) {
		if prev != nil {
			prev(s, f, at)
		}
		fn(s, f, at)
	}
}

// record appends a directed trace point (when recording is on).
func (s *Sim) record(fields netkat.Packet, loc netkat.Location, out bool, parent int) int {
	if !s.Record {
		return -1
	}
	idx := s.nt.Append(netkat.DPacket{Pkt: fields.Clone(), Loc: loc, Out: out})
	s.parents = append(s.parents, parent)
	return idx
}

// NetTrace reconstructs the recorded network trace (Record must have been
// set before the run): the point sequence plus one root-to-leaf index
// path per packet-tree branch.
func (s *Sim) NetTrace() *trace.NetTrace {
	children := map[int][]int{}
	hasChild := make([]bool, len(s.nt.Packets))
	for i, p := range s.parents {
		if p >= 0 {
			children[p] = append(children[p], i)
			hasChild[p] = true
		}
	}
	nt := &trace.NetTrace{Packets: s.nt.Packets}
	var path []int
	var walk func(i int)
	walk = func(i int) {
		path = append(path, i)
		if !hasChild[i] {
			nt.Trees = append(nt.Trees, append([]int{}, path...))
		} else {
			for _, c := range children[i] {
				walk(c)
			}
		}
		path = path[:len(path)-1]
	}
	for i, p := range s.parents {
		if p == -1 {
			walk(i)
		}
	}
	return nt
}

// wireBytes is the on-the-wire size of a packet.
func (s *Sim) wireBytes() int { return s.Params.PayloadBytes + s.Plane.HeaderOverhead() }

// transmit sends a packet out of an egress location across its link,
// modeling serialization, backlog-overflow drops, and propagation. tidx
// is the packet's latest recorded trace point (-1 when not recording).
func (s *Sim) transmit(src netkat.Location, fields netkat.Packet, meta Meta, tidx int) {
	lk, ok := s.Topo.LinkFrom(src)
	if !ok {
		return // unconnected port: packet leaves the modeled network
	}
	free := s.linkFree[src]
	if free < s.now {
		free = s.now
	}
	if free-s.now > s.Params.MaxLinkBacklog {
		s.Dropped++
		return
	}
	tx := float64(s.wireBytes()) / s.Params.LinkBandwidth
	s.linkFree[src] = free + tx
	arrive := free + tx + s.Params.LinkLatency
	dst := lk.Dst
	s.At(arrive, func() {
		if h, isHost := s.Topo.HostByID(dst.Switch); isHost {
			s.record(fields, h.Loc(), false, tidx)
			s.Delivered = append(s.Delivered, Delivery{Host: h.Name, Fields: fields, Time: s.now})
			if fn := s.onReceive[h.Name]; fn != nil {
				fn(s, fields, s.now)
			}
			return
		}
		s.arriveAtSwitch(dst.Switch, dst.Port, fields, meta, tidx)
	})
}

// arriveAtSwitch queues the packet for processing at a switch, dropping
// it if the switch's processing backlog exceeds its queue capacity.
// Ingress and egress trace points are recorded at processing time, so
// the recorded order at each switch matches the processing order the
// happens-before relation depends on.
func (s *Sim) arriveAtSwitch(sw, port int, fields netkat.Packet, meta Meta, tidx int) {
	start := s.swFree[sw]
	if start < s.now {
		start = s.now
	}
	if start-s.now > s.Params.MaxSwBacklog {
		s.Dropped++
		return
	}
	done := start + s.Params.SwitchProcTime*s.Plane.ProcFactor()
	s.swFree[sw] = done
	s.At(done, func() {
		ingress := s.record(fields, netkat.Location{Switch: sw, Port: port}, false, tidx)
		for _, o := range s.Plane.Process(s, sw, port, fields, meta) {
			egress := s.record(o.Fields, netkat.Location{Switch: sw, Port: o.Port}, true, ingress)
			s.transmit(netkat.Location{Switch: sw, Port: o.Port}, o.Fields, o.Meta, egress)
		}
	})
}

// Send emits a packet from the named host into the network.
func (s *Sim) Send(host string, fields netkat.Packet) {
	h, ok := s.Topo.HostByName(host)
	if !ok {
		return
	}
	meta := s.Plane.Inject(s, h.Attach.Switch, fields)
	// Host link: serialization plus propagation from the host NIC.
	free := s.linkFree[h.Loc()]
	if free < s.now {
		free = s.now
	}
	if free-s.now > s.Params.MaxLinkBacklog {
		s.Dropped++
		return
	}
	tx := float64(s.wireBytes()) / s.Params.LinkBandwidth
	s.linkFree[h.Loc()] = free + tx
	root := s.record(fields, h.Loc(), true, -1)
	arrive := free + tx + s.Params.LinkLatency
	s.At(arrive, func() {
		s.arriveAtSwitch(h.Attach.Switch, h.Attach.Port, fields, meta, root)
	})
}

// DeliveredTo returns deliveries to a host.
func (s *Sim) DeliveredTo(host string) []Delivery {
	var out []Delivery
	for _, d := range s.Delivered {
		if d.Host == host {
			out = append(out, d)
		}
	}
	return out
}
