package sim

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/trace"
)

func buildNES(t *testing.T, a apps.App) *nes.NES {
	t.Helper()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("Build(%s): %v", a.Name, err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatalf("ToNES(%s): %v", a.Name, err)
	}
	return n
}

// TestEngineBasics: a single packet crosses the firewall topology with
// plausible timing (two switch hops, three links).
func TestEngineBasics(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	s := New(a.Topo, NewTaggedPlane(n), DefaultParams(), 1)
	s.At(0, func() {
		s.Send("H1", netkat.Packet{FieldDst: apps.H(4), FieldSrc: apps.H(1)})
	})
	s.Run(1)
	got := s.DeliveredTo("H4")
	if len(got) != 1 {
		t.Fatalf("deliveries: %d", len(got))
	}
	// 3 links x (latency + serialization) + 2 switch hops.
	tx := float64(s.wireBytes()) / s.Params.LinkBandwidth
	min := 3 * s.Params.LinkLatency
	max := 3*(s.Params.LinkLatency+tx) + 2*s.Params.SwitchProcTime*s.Plane.ProcFactor() + 1e-9
	if at := got[0].Time; at < min || at > max {
		t.Fatalf("delivery at %v, want in [%v, %v]", at, min, max)
	}
}

// TestFirewallTaggedCorrect reproduces Figure 11(a): H4->H1 fails before
// the event, H1->H4 succeeds and fires the event, H4->H1 succeeds after.
func TestFirewallTaggedCorrect(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	s := New(a.Topo, NewTaggedPlane(n), DefaultParams(), 1)
	EnableEcho(s, "H1")
	EnableEcho(s, "H4")

	early := StartPings(s, "H4", "H1", 0.0, 0.1, 5, 1000) // before event
	out := StartPings(s, "H1", "H4", 1.0, 0.1, 5, 2000)   // fires event
	late := StartPings(s, "H4", "H1", 2.0, 0.1, 5, 3000)  // after event
	s.Run(5)

	if got := early.Succeeded(); got != 0 {
		t.Errorf("pre-event H4->H1 pings succeeded: %d", got)
	}
	if got := out.Succeeded(); got != 5 {
		t.Errorf("H1->H4 pings succeeded: %d/5 (replies must not be dropped by the correct plane)", got)
	}
	if got := late.Succeeded(); got != 5 {
		t.Errorf("post-event H4->H1 pings succeeded: %d/5", got)
	}
}

// TestFirewallUncoordinatedDrops reproduces Figure 11(b)/Figure 10: the
// uncoordinated baseline drops at least one reply even with zero install
// delay, and more as the delay grows.
func TestFirewallUncoordinatedDrops(t *testing.T) {
	drops := func(installDelay float64) int {
		a := apps.Firewall()
		n := buildNES(t, a)
		p := DefaultParams()
		p.InstallDelay = installDelay
		s := New(a.Topo, NewUncoordPlane(n), p, 1)
		EnableEcho(s, "H4")
		out := StartPings(s, "H1", "H4", 1.0, 0.1, 20, 0)
		s.Run(10)
		return out.Dropped()
	}
	d0 := drops(0)
	if d0 < 1 {
		t.Errorf("uncoordinated with 0ms delay dropped %d pings, want >= 1", d0)
	}
	d1 := drops(1.0)
	if d1 <= d0 {
		t.Errorf("drops did not grow with delay: %d (0s) vs %d (1s)", d0, d1)
	}
}

// TestLearningSwitchFloodStops: packets to H1 are flooded to H2 only
// until H1's reply reaches s4 (Figure 12).
func TestLearningSwitchFloodStops(t *testing.T) {
	a := apps.LearningSwitch()
	n := buildNES(t, a)
	s := New(a.Topo, NewTaggedPlane(n), DefaultParams(), 1)
	EnableEcho(s, "H1")
	StartPings(s, "H4", "H1", 0, 0.2, 10, 0)
	s.Run(5)
	h2 := len(s.DeliveredTo("H2"))
	if h2 == 0 {
		t.Error("no flooding at all (first packet should reach H2)")
	}
	if h2 > 2 {
		t.Errorf("flooding continued after learning: %d packets at H2", h2)
	}
	if got := len(s.DeliveredTo("H1")); got != 10 {
		t.Errorf("H1 received %d/10", got)
	}
}

// TestLearningSwitchUncoordFloodsLonger: the baseline keeps flooding
// until the controller installs the new configuration.
func TestLearningSwitchUncoordFloodsLonger(t *testing.T) {
	a := apps.LearningSwitch()
	n := buildNES(t, a)
	p := DefaultParams()
	p.InstallDelay = 1.0
	s := New(a.Topo, NewUncoordPlane(n), p, 1)
	EnableEcho(s, "H1")
	StartPings(s, "H4", "H1", 0, 0.2, 10, 0)
	s.Run(5)
	if h2 := len(s.DeliveredTo("H2")); h2 <= 2 {
		t.Errorf("uncoordinated flood stopped too early: %d packets at H2", h2)
	}
}

// TestBandwidthCapExact: the tagged plane lets exactly n exchanges
// through (Figure 14a) while the uncoordinated baseline overshoots
// (Figure 14b).
func TestBandwidthCapExact(t *testing.T) {
	const capN = 10
	a := apps.BandwidthCap(capN)
	n := buildNES(t, a)

	s := New(a.Topo, NewTaggedPlane(n), DefaultParams(), 1)
	EnableEcho(s, "H4")
	st := StartPings(s, "H1", "H4", 0, 0.2, capN+8, 0)
	s.Run(10)
	if got := st.Succeeded(); got != capN {
		t.Errorf("tagged: %d pings succeeded, want exactly %d", got, capN)
	}

	p := DefaultParams()
	p.InstallDelay = 1.0
	su := New(a.Topo, NewUncoordPlane(n), p, 1)
	EnableEcho(su, "H4")
	stu := StartPings(su, "H1", "H4", 0, 0.2, capN+8, 0)
	su.Run(10)
	if got := stu.Succeeded(); got <= capN {
		t.Errorf("uncoordinated: %d pings succeeded, want > %d (cap exceeded)", got, capN)
	}
}

// TestRingBandwidthOverhead: tagged goodput is within a few percent of
// the untagged reference on the ring (Figure 16a).
func TestRingBandwidthOverhead(t *testing.T) {
	a := apps.Ring(4)
	n := buildNES(t, a)

	run := func(plane Plane) float64 {
		p := DefaultParams()
		// Software switches are CPU-bound: per-packet processing is the
		// bottleneck (as in the paper's modified OpenFlow reference
		// switch), so the tag/register work shows up as goodput loss.
		p.SwitchProcTime = 120e-6
		s := New(a.Topo, plane, p, 1)
		rate := 1.05 / p.SwitchProcTime // saturate the bottleneck switch
		b := StartBulk(s, "H1", "H2", 0.1, 2.0, rate, 0)
		s.Run(3)
		return b.Goodput()
	}
	tagged := run(NewTaggedPlane(n))
	ref := NewTaggedPlane(n)
	ref.TagBytes = 0
	ref.ExtraProc = 0
	plain := run(ref)
	if tagged <= 0 || plain <= 0 {
		t.Fatalf("no goodput: tagged=%v plain=%v", tagged, plain)
	}
	overhead := 100 * (plain - tagged) / plain
	if overhead <= 0 || overhead > 10 {
		t.Errorf("tagged overhead %.1f%%, want within (0, 10]%%", overhead)
	}
	t.Logf("goodput: plain=%.2f MB/s tagged=%.2f MB/s overhead=%.1f%%", plain/1e6, tagged/1e6, overhead)
}

// TestRingConvergence: event discovery time grows with gossip distance
// and shrinks with controller assist (Figure 16b).
func TestRingConvergence(t *testing.T) {
	discover := func(diameter int, assist bool) (max float64, all bool) {
		a := apps.Ring(diameter)
		n := buildNES(t, a)
		p := DefaultParams()
		p.CtrlAssist = assist
		plane := NewTaggedPlane(n)
		s := New(a.Topo, plane, p, 1)
		EnableEcho(s, "H2")
		// Background traffic in both directions carries digests.
		StartPings(s, "H1", "H2", 0, 0.05, 200, 0)
		// Signal at t=1.
		s.At(1.0, func() { s.Send("H1", netkat.Packet{apps.FieldSig: 1, FieldSrc: apps.H(1)}) })
		s.Run(12)
		max = 0
		all = true
		for _, sw := range a.Topo.Switches {
			at, ok := plane.DiscoveryTime(sw, 0)
			if !ok {
				all = false
				continue
			}
			if d := at - 1.0; d > max {
				max = d
			}
		}
		return max, all
	}
	gossipSmall, okS := discover(2, false)
	gossipLarge, okL := discover(6, false)
	assisted, okA := discover(6, true)
	if !okS || !okL || !okA {
		t.Fatalf("not all switches discovered the event: %v %v %v", okS, okL, okA)
	}
	if gossipLarge <= gossipSmall {
		t.Errorf("discovery time did not grow with diameter: %v (d=2) vs %v (d=6)", gossipSmall, gossipLarge)
	}
	if assisted >= gossipLarge {
		t.Errorf("controller assist did not help: %v vs %v", assisted, gossipLarge)
	}
	t.Logf("max discovery: d=2 gossip %.3fs, d=6 gossip %.3fs, d=6 assisted %.3fs", gossipSmall, gossipLarge, assisted)
}

// TestBacklogDrops: a sender far above capacity overflows the bounded
// queues and the drop counter records it.
func TestBacklogDrops(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	p := DefaultParams()
	p.SwitchProcTime = 200e-6
	s := New(a.Topo, NewTaggedPlane(n), p, 1)
	b := StartBulk(s, "H1", "H4", 0, 1.0, 3/p.SwitchProcTime, 0)
	s.Run(3)
	if s.Dropped == 0 {
		t.Fatal("3x overload produced no drops")
	}
	if b.LossPct() <= 0 {
		t.Fatalf("loss: %.2f%%", b.LossPct())
	}
	if b.PacketsRecv+s.Dropped != b.PacketsSent {
		t.Fatalf("accounting: sent %d, recv %d, dropped %d", b.PacketsSent, b.PacketsRecv, s.Dropped)
	}
}

// TestUncoordInstallTime: the baseline records when each switch received
// the post-event configuration, after the configured delay.
func TestUncoordInstallTime(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	p := DefaultParams()
	p.InstallDelay = 0.5
	pl := NewUncoordPlane(n)
	s := New(a.Topo, pl, p, 1)
	EnableEcho(s, "H4")
	StartPings(s, "H1", "H4", 0.1, 0.2, 3, 0)
	s.Run(5)
	for _, sw := range []int{1, 4} {
		at, ok := pl.InstallTime(sw, 0)
		if !ok {
			t.Fatalf("switch %d never received the new configuration", sw)
		}
		// Event ~0.105s + ctrl latency + install delay.
		if at < 0.1+p.CtrlLatency+p.InstallDelay {
			t.Errorf("switch %d installed too early: %v", sw, at)
		}
	}
	if pl.Installed(4) == 0 {
		t.Error("s4 still on the initial configuration")
	}
}

// TestRunHorizon: Run stops at the horizon and resumes correctly.
func TestRunHorizon(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	s := New(a.Topo, NewTaggedPlane(n), DefaultParams(), 1)
	fired := []float64{}
	s.At(1.0, func() { fired = append(fired, s.Now()) })
	s.At(2.0, func() { fired = append(fired, s.Now()) })
	s.Run(1.5)
	if len(fired) != 1 || s.Now() != 1.5 {
		t.Fatalf("after first horizon: fired=%v now=%v", fired, s.Now())
	}
	s.Run(3)
	if len(fired) != 2 || fired[1] != 2.0 {
		t.Fatalf("after second horizon: fired=%v", fired)
	}
}

// TestOracleEndToEnd is the headline closing-the-loop test: the *timed*
// simulator records network traces, and the Definition 6 oracle accepts
// every tagged-plane execution while convicting the uncoordinated
// baseline on the same workload — the paper's central claim, measured on
// an actual execution rather than a hand-built trace.
func TestOracleEndToEnd(t *testing.T) {
	a := apps.Firewall()
	n := buildNES(t, a)
	hosts := a.Topo.HostLocs()

	run := func(kind PlaneKind) *Sim {
		p := DefaultParams()
		p.InstallDelay = 2.0
		s := New(a.Topo, NewPlane(kind, n), p, 1)
		s.Record = true
		EnableEcho(s, "H4")
		StartPings(s, "H1", "H4", 0.5, 0.3, 4, 0)
		s.Run(10)
		return s
	}

	tagged := run(PlaneKindTagged)
	nt := tagged.NetTrace()
	if err := nt.Validate(hosts); err != nil {
		t.Fatalf("tagged trace invalid: %v", err)
	}
	if err := trace.CheckNES(nt, n, hosts); err != nil {
		t.Fatalf("tagged execution violates Definition 6: %v", err)
	}

	uncoord := run(PlaneKindUncoord)
	ntU := uncoord.NetTrace()
	if err := ntU.Validate(hosts); err != nil {
		t.Fatalf("uncoordinated trace invalid: %v", err)
	}
	if err := trace.CheckNES(ntU, n, hosts); err == nil {
		t.Fatal("uncoordinated execution passed the Definition 6 oracle")
	} else {
		t.Logf("uncoordinated convicted: %v", err)
	}
}

// TestOracleEndToEndAllApps: tagged-plane executions of every application
// under the ping workloads satisfy Definition 6.
func TestOracleEndToEndAllApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			n := buildNES(t, a)
			p := DefaultParams()
			s := New(a.Topo, NewTaggedPlane(n), p, 1)
			s.Record = true
			for _, h := range a.Topo.Hosts {
				EnableEcho(s, h.Name)
			}
			// Ping each host pair that exists in the app's topology.
			id := 0
			for _, src := range a.Topo.Hosts {
				for _, dst := range a.Topo.Hosts {
					if src.Name == dst.Name {
						continue
					}
					StartPings(s, src.Name, dst.Name, 0.2*float64(id), 0.35, 2, 1000*id)
					id++
				}
			}
			s.Run(20)
			nt := s.NetTrace()
			hosts := a.Topo.HostLocs()
			if err := nt.Validate(hosts); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if err := trace.CheckNES(nt, n, hosts); err != nil {
				t.Fatalf("Definition 6 violated: %v", err)
			}
		})
	}
}
