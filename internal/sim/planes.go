package sim

import (
	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
)

// TaggedPlane is the paper's implementation strategy (Section 4) in the
// timed simulator: per-switch event views, packet tags selecting the
// processing configuration, digests implementing the happens-before
// propagation, and optional controller broadcast.
type TaggedPlane struct {
	NES *nes.NES

	// Overhead of the version tag, digest, and encapsulation on the wire,
	// and the relative cost of the extra per-packet register and tag
	// operations on the switch fast path.
	TagBytes   int
	ExtraProc  float64 // e.g. 0.05 for +5% processing time
	views      map[int]nes.Set
	discovered map[int]map[int]float64 // switch -> event -> first-known time
	ctrl       nes.Set
	plan       *dataplane.Plan
	obuf       []flowtable.Output // per-sim scratch; Sim is single-goroutine
}

// NewTaggedPlane builds the correct plane with default overhead figures
// (12 bytes of tag+digest encapsulation, 5% extra fast-path work; the
// paper reports the end-to-end effect as ~6% bandwidth overhead).
// Forwarding runs through the compiled indexed matchers of
// internal/dataplane; use NewTaggedPlaneMode for the linear-scan
// reference.
func NewTaggedPlane(n *nes.NES) *TaggedPlane {
	return NewTaggedPlaneMode(n, dataplane.ModeIndexed)
}

// NewTaggedPlaneMode builds the tagged plane with an explicit forwarding
// mode (the cmd/netsim -dataplane selector).
func NewTaggedPlaneMode(n *nes.NES, mode dataplane.Mode) *TaggedPlane {
	return &TaggedPlane{
		NES:        n,
		TagBytes:   12,
		ExtraProc:  0.05,
		views:      map[int]nes.Set{},
		discovered: map[int]map[int]float64{},
		plan:       dataplane.PlanForMode(n, mode),
	}
}

// HeaderOverhead implements Plane.
func (p *TaggedPlane) HeaderOverhead() int { return p.TagBytes }

// ProcFactor implements Plane.
func (p *TaggedPlane) ProcFactor() float64 { return 1 + p.ExtraProc }

// View returns a switch's current event view.
func (p *TaggedPlane) View(sw int) nes.Set { return p.views[sw] }

// DiscoveryTime returns when a switch first learned about an event, and
// whether it has.
func (p *TaggedPlane) DiscoveryTime(sw, event int) (float64, bool) {
	t, ok := p.discovered[sw][event]
	return t, ok
}

// learn unions events into a switch's view, recording discovery times.
func (p *TaggedPlane) learn(s *Sim, sw int, events nes.Set) {
	cur := p.views[sw]
	fresh := events.Minus(cur)
	if fresh == nes.Empty {
		return
	}
	p.views[sw] = cur.Union(fresh)
	if p.discovered[sw] == nil {
		p.discovered[sw] = map[int]float64{}
	}
	for _, e := range fresh.Elems() {
		if _, ok := p.discovered[sw][e]; !ok {
			p.discovered[sw][e] = s.Now()
		}
	}
}

// gAt mirrors runtime.Machine.gAt: the configuration for a view, falling
// back to the largest family member below it.
func (p *TaggedPlane) gAt(e nes.Set) int {
	if c, ok := p.NES.ConfigAt(e); ok {
		return c
	}
	best := nes.Empty
	for _, f := range p.NES.Family() {
		if f.SubsetOf(e) && best.SubsetOf(f) {
			best = f
		}
	}
	c, _ := p.NES.ConfigAt(best)
	return c
}

// Inject implements Plane: the IN rule's tag stamping.
func (p *TaggedPlane) Inject(_ *Sim, sw int, _ netkat.Packet) Meta {
	return Meta{Version: p.gAt(p.views[sw]), Digest: nes.Empty}
}

// Process implements Plane: the SWITCH rule.
func (p *TaggedPlane) Process(s *Sim, sw, inPort int, fields netkat.Packet, meta Meta) []Out {
	digest := meta.Digest
	p.learn(s, sw, digest)
	known := p.views[sw].Union(digest)
	lp := netkat.LocatedPacket{Pkt: fields, Loc: netkat.Location{Switch: sw, Port: inPort}}
	newly := p.NES.NewlyEnabled(known, lp)
	oldView := p.views[sw]
	if newly != nes.Empty {
		p.learn(s, sw, newly)
		if s.Params.CtrlAssist {
			// Notify the controller; it broadcasts its view to every
			// switch (CTRLRECV/CTRLSEND with one round trip each).
			ev := newly
			s.After(s.Params.CtrlLatency, func() {
				p.ctrl = p.ctrl.Union(ev)
				view := p.ctrl
				for _, other := range s.Topo.Switches {
					osw := other
					s.After(s.Params.CtrlLatency+s.Rand.Float64()*s.Params.InstallJitter, func() {
						p.learn(s, osw, view)
					})
				}
			})
		}
	}
	outDigest := digest.Union(oldView).Union(newly)

	m := p.plan.Matcher(meta.Version, sw)
	if m == nil {
		return nil
	}
	p.obuf = m.Process(p.obuf[:0], fields, inPort, 0)
	var outs []Out
	for _, o := range p.obuf {
		outs = append(outs, Out{
			Fields: o.Pkt,
			Port:   o.Port,
			Meta:   Meta{Version: meta.Version, Digest: outDigest},
		})
	}
	return outs
}

// UncoordPlane is the uncoordinated-update baseline of Section 5: events
// are detected and sent to the controller, which pushes updated
// configurations to switches after a delay and in arbitrary order.
// Packets carry no metadata; each switch forwards with whatever
// configuration it currently has installed.
type UncoordPlane struct {
	NES *nes.NES

	installed map[int]int // switch -> installed config index
	ctrlSet   nes.Set     // controller's view of occurred events
	pendingEv nes.Set     // events already reported (avoid duplicates)
	installAt map[int]map[int]float64
	plan      *dataplane.Plan
	obuf      []flowtable.Output
}

// NewUncoordPlane builds the baseline plane.
func NewUncoordPlane(n *nes.NES) *UncoordPlane {
	return NewUncoordPlaneMode(n, dataplane.ModeIndexed)
}

// NewUncoordPlaneMode builds the baseline plane with an explicit
// forwarding mode.
func NewUncoordPlaneMode(n *nes.NES, mode dataplane.Mode) *UncoordPlane {
	return &UncoordPlane{
		NES:       n,
		installed: map[int]int{},
		installAt: map[int]map[int]float64{},
		plan:      dataplane.PlanForMode(n, mode),
	}
}

// HeaderOverhead implements Plane: no tags on the wire.
func (p *UncoordPlane) HeaderOverhead() int { return 0 }

// ProcFactor implements Plane.
func (p *UncoordPlane) ProcFactor() float64 { return 1 }

// Installed returns the switch's current configuration index.
func (p *UncoordPlane) Installed(sw int) int { return p.installed[sw] }

// InstallTime returns when a switch received the configuration reflecting
// an event.
func (p *UncoordPlane) InstallTime(sw, event int) (float64, bool) {
	t, ok := p.installAt[sw][event]
	return t, ok
}

// Inject implements Plane: no stamping.
func (p *UncoordPlane) Inject(*Sim, int, netkat.Packet) Meta { return Meta{} }

// Process implements Plane: forward with the switch's installed
// configuration; report matching enabled events to the controller, which
// pushes the new configuration to all switches after InstallDelay (+
// jitter), in effect an unpredictable order.
func (p *UncoordPlane) Process(s *Sim, sw, inPort int, fields netkat.Packet, _ Meta) []Out {
	lp := netkat.LocatedPacket{Pkt: fields, Loc: netkat.Location{Switch: sw, Port: inPort}}
	// Event detection against the controller's state (the controller is
	// the only component tracking events in this baseline). Detection is
	// immediate at the switch, but the reaction is remote.
	newly := p.NES.NewlyEnabled(p.ctrlSet.Union(p.pendingEv), lp)
	if newly != nes.Empty {
		p.pendingEv = p.pendingEv.Union(newly)
		ev := newly
		s.After(s.Params.CtrlLatency, func() {
			p.ctrlSet = p.ctrlSet.Union(ev)
			target := p.ctrlSet
			cfg, ok := p.NES.ConfigAt(target)
			if !ok {
				return
			}
			for _, other := range s.Topo.Switches {
				osw := other
				delay := s.Params.InstallDelay + s.Rand.Float64()*s.Params.InstallJitter
				s.After(delay, func() {
					p.installed[osw] = cfg
					if p.installAt[osw] == nil {
						p.installAt[osw] = map[int]float64{}
					}
					for _, e := range target.Elems() {
						if _, seen := p.installAt[osw][e]; !seen {
							p.installAt[osw][e] = s.Now()
						}
					}
				})
			}
		})
	}

	m := p.plan.Matcher(p.installed[sw], sw)
	if m == nil {
		return nil
	}
	p.obuf = m.Process(p.obuf[:0], fields, inPort, 0)
	var outs []Out
	for _, o := range p.obuf {
		outs = append(outs, Out{Fields: o.Pkt, Port: o.Port})
	}
	return outs
}

// PlaneKind selects a data-plane implementation.
type PlaneKind int

// Plane kinds.
const (
	PlaneKindTagged PlaneKind = iota
	PlaneKindUncoord
)

// NewPlane builds a plane of the given kind for an NES, forwarding
// through the compiled indexed matchers.
func NewPlane(k PlaneKind, n *nes.NES) Plane {
	return NewPlaneMode(k, n, dataplane.ModeIndexed)
}

// NewPlaneMode builds a plane of the given kind with an explicit
// dataplane mode (indexed matchers or the linear-scan reference).
func NewPlaneMode(k PlaneKind, n *nes.NES, mode dataplane.Mode) Plane {
	if k == PlaneKindUncoord {
		return NewUncoordPlaneMode(n, mode)
	}
	return NewTaggedPlaneMode(n, mode)
}
