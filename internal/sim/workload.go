package sim

import (
	"eventnet/internal/netkat"
)

// Field names used by workloads. FieldKind distinguishes echo requests
// (1) from replies (2); the applications' policies do not match on these,
// so they ride along transparently.
const (
	FieldSrc  = "src"
	FieldDst  = "dst"
	FieldKind = "kind"
	FieldID   = "id"

	KindRequest = 1
	KindReply   = 2
)

// Ping is one echo exchange's outcome.
type Ping struct {
	ID      int
	SentAt  float64
	ReplyAt float64
	Replied bool
	Reached bool // the request was delivered to the target
	ReachAt float64
}

// PingStats tracks a ping workload.
type PingStats struct {
	Pings []Ping
	byID  map[int]int
}

// Succeeded returns how many pings completed (request delivered and reply
// received).
func (ps *PingStats) Succeeded() int {
	n := 0
	for _, p := range ps.Pings {
		if p.Replied {
			n++
		}
	}
	return n
}

// Dropped returns how many pings did not complete.
func (ps *PingStats) Dropped() int { return len(ps.Pings) - ps.Succeeded() }

// EnableEcho makes the named host answer echo requests: on receiving a
// kind=1 packet it emits a kind=2 packet back to the source address.
func EnableEcho(s *Sim, host string) {
	h, ok := s.Topo.HostByName(host)
	if !ok {
		return
	}
	self := h.ID
	s.OnReceive(host, func(s *Sim, fields netkat.Packet, _ float64) {
		if fields[FieldKind] != KindRequest {
			return
		}
		src, ok := fields[FieldSrc]
		if !ok {
			return
		}
		reply := netkat.Packet{
			FieldDst:  src,
			FieldSrc:  self,
			FieldKind: KindReply,
			FieldID:   fields[FieldID],
		}
		s.Send(host, reply)
	})
}

// StartPings schedules `count` echo requests from src to dst, spaced by
// `interval`, starting at `start`. IDs begin at idBase so concurrent
// workloads stay distinguishable. The destination must have EnableEcho.
func StartPings(s *Sim, src, dst string, start, interval float64, count, idBase int) *PingStats {
	stats := &PingStats{byID: map[int]int{}}
	hs, _ := s.Topo.HostByName(src)
	hd, ok := s.Topo.HostByName(dst)
	if !ok {
		return stats
	}
	// Track request arrivals at dst and replies back at src.
	s.OnReceive(dst, func(sm *Sim, fields netkat.Packet, at float64) {
		if fields[FieldKind] != KindRequest || fields[FieldSrc] != hs.ID {
			return
		}
		if i, ok := stats.byID[fields[FieldID]]; ok && !stats.Pings[i].Reached {
			stats.Pings[i].Reached = true
			stats.Pings[i].ReachAt = at
		}
	})
	s.OnReceive(src, func(sm *Sim, fields netkat.Packet, at float64) {
		if fields[FieldKind] != KindReply || fields[FieldSrc] != hd.ID {
			return
		}
		if i, ok := stats.byID[fields[FieldID]]; ok && !stats.Pings[i].Replied {
			stats.Pings[i].Replied = true
			stats.Pings[i].ReplyAt = at
		}
	})
	for i := 0; i < count; i++ {
		id := idBase + i
		at := start + float64(i)*interval
		s.At(at, func() {
			stats.byID[id] = len(stats.Pings)
			stats.Pings = append(stats.Pings, Ping{ID: id, SentAt: s.Now()})
			s.Send(src, netkat.Packet{
				FieldDst:  hd.ID,
				FieldSrc:  hs.ID,
				FieldKind: KindRequest,
				FieldID:   id,
			})
		})
	}
	return stats
}

// Bulk is a bulk-transfer measurement.
type Bulk struct {
	BytesDelivered int
	PacketsSent    int
	PacketsRecv    int
	Duration       float64
}

// Goodput returns delivered payload bytes per second.
func (b *Bulk) Goodput() float64 {
	if b.Duration <= 0 {
		return 0
	}
	return float64(b.BytesDelivered) / b.Duration
}

// LossPct returns the percentage of sent packets not delivered.
func (b *Bulk) LossPct() float64 {
	if b.PacketsSent == 0 {
		return 0
	}
	return 100 * float64(b.PacketsSent-b.PacketsRecv) / float64(b.PacketsSent)
}

// StartBulk runs a one-way bulk transfer (the iperf stand-in of
// Figure 16a): src sends fixed-size packets to dst at the given rate
// (packets/second) from `start` for `duration` seconds. Only deliveries
// inside the [start, start+duration] window count toward goodput, so a
// saturating sender measures the path's sustainable rate. Returns the
// measurement, valid after the simulation runs past start+duration.
func StartBulk(s *Sim, src, dst string, start, duration, rate float64, idBase int) *Bulk {
	b := &Bulk{Duration: duration}
	hs, _ := s.Topo.HostByName(src)
	hd, ok := s.Topo.HostByName(dst)
	if !ok {
		return b
	}
	cutoff := start + duration
	s.OnReceive(dst, func(sm *Sim, fields netkat.Packet, at float64) {
		if fields[FieldSrc] != hs.ID || fields[FieldKind] != 0 {
			return
		}
		b.PacketsRecv++
		if at <= cutoff {
			b.BytesDelivered += sm.Params.PayloadBytes
		}
	})
	interval := 1.0 / rate
	n := int(duration * rate)
	for i := 0; i < n; i++ {
		id := idBase + i
		s.At(start+float64(i)*interval, func() {
			b.PacketsSent++
			s.Send(src, netkat.Packet{FieldDst: hd.ID, FieldSrc: hs.ID, FieldID: id})
		})
	}
	return b
}
