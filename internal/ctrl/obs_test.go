package ctrl_test

import (
	"testing"
	"time"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/netkat"
	"eventnet/internal/obs"
)

// TestControllerObsSwapPhases checks the controller-plus-engine phase
// feed end to end: one hot swap publishes stage, then flip, then retire
// (with optional drain events in between), and the controller records
// compile metrics for each fresh build.
func TestControllerObsSwapPhases(t *testing.T) {
	fw := apps.Firewall()
	o := &obs.Obs{Metrics: obs.NewMetrics(1), Bus: obs.NewBus()}
	sub := o.Bus.Subscribe(256, obs.KindSwap)
	c := ctrl.New(fw.Topo, ctrl.Options{Workers: 2, Obs: o})
	defer c.Close()
	if err := c.Load("firewall", fw.Prog); err != nil {
		t.Fatal(err)
	}
	if err := c.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	capp := apps.BandwidthCap(3)
	if _, err := c.Swap(capp.Name, capp.Prog); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	sub.Close()

	var phases []string
	for ev := range sub.C {
		phases = append(phases, ev.Phase)
	}
	if len(phases) < 3 || phases[0] != "stage" {
		t.Fatalf("swap phases = %v, want stage first", phases)
	}
	if phases[1] != "flip" || phases[len(phases)-1] != "retire" {
		t.Fatalf("swap phases = %v, want stage, flip, ..., retire", phases)
	}
	for _, p := range phases[2 : len(phases)-1] {
		if p != "drain" {
			t.Fatalf("unexpected phase %q between flip and retire: %v", p, phases)
		}
	}

	// Two fresh builds (firewall, cap) went through the compile pipeline.
	if got := o.Metrics.Counter(obs.CtrCompiles); got != 2 {
		t.Fatalf("CtrCompiles = %d, want 2", got)
	}
	if got := o.Metrics.HistCount(obs.HistCompileNs); got != 2 {
		t.Fatalf("HistCompileNs count = %d, want 2", got)
	}
	lookups := o.Metrics.Counter(obs.CtrCompileTableHits) + o.Metrics.Counter(obs.CtrCompileTableMisses)
	if lookups == 0 {
		t.Fatal("no compile cache lookups recorded")
	}
	if o.Metrics.Gauge(obs.GaugeFDDNodes) == 0 {
		t.Fatal("GaugeFDDNodes = 0 after two builds")
	}
	if o.Metrics.Gauge(obs.GaugeInternEntries) == 0 {
		t.Fatal("GaugeInternEntries = 0 after two builds")
	}
	if o.Metrics.Gauge(obs.GaugeArenaBytes) == 0 {
		t.Fatal("GaugeArenaBytes = 0 after two builds")
	}
	if hw, b := o.Metrics.Gauge(obs.GaugeArenaHighWater), o.Metrics.Gauge(obs.GaugeArenaBytes); hw < b {
		t.Fatalf("GaugeArenaHighWater = %d below current arena %d", hw, b)
	}

	// Swapping back to the memoized firewall is an LRU hit: no new
	// compile is recorded.
	if _, err := c.Swap("firewall", fw.Prog); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter(obs.CtrCompiles); got != 2 {
		t.Fatalf("memo-hit swap recorded a compile: CtrCompiles = %d", got)
	}
}

// TestControllerHealth pins the no-round-trip health probe across the
// controller lifecycle: degraded before Load, healthy while serving,
// degraded again once the engine stops.
func TestControllerHealth(t *testing.T) {
	fw := apps.Firewall()
	c := ctrl.New(fw.Topo, ctrl.Options{Workers: 1, SwapTimeout: time.Second})
	if ok, reason := c.Health(); ok || reason != "no program loaded" {
		t.Fatalf("pre-Load Health = %v %q", ok, reason)
	}
	if err := c.Load("firewall", fw.Prog); err != nil {
		t.Fatal(err)
	}
	if ok, reason := c.Health(); !ok {
		t.Fatalf("serving controller unhealthy: %q", reason)
	}
	c.Close()
	if ok, reason := c.Health(); ok || reason != "engine stopped" {
		t.Fatalf("post-Close Health = %v %q", ok, reason)
	}
}
