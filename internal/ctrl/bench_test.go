package ctrl_test

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
)

// BenchmarkSwap measures no-load swap latency end to end: delta compile
// through the cross-generation cache, staged install, flip, drain (empty)
// and retire, alternating between two revisions of the bandwidth cap.
// The under-traffic numbers live in exp.Swap (experiments -only swap).
func BenchmarkSwap(b *testing.B) {
	a := apps.BandwidthCap(40)
	rev := apps.BandwidthCap(41)
	c := ctrl.New(a.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load(a.Name, a.Prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := rev
		if i%2 == 1 {
			target = a
		}
		if _, err := c.Swap(target.Name, target.Prog); err != nil {
			b.Fatal(err)
		}
	}
}
