package ctrl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// compileProgram builds a ctrl.Program without a controller (tests drive
// the engine synchronously for determinism).
func compileProgram(t testing.TB, a apps.App) *ctrl.Program {
	t.Helper()
	e, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("%s: ets.Build: %v", a.Name, err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatalf("%s: ToNES: %v", a.Name, err)
	}
	return &ctrl.Program{Name: a.Name, Prog: a.Prog, ETS: e, NES: n}
}

// expectedSet computes the deliveries netkat.Eval predicts for an
// injection under its stamp: the program named by the stamp's epoch,
// projected at the state behind the stamp's version, applied to the
// packet at the ingress attachment port. Journey outputs at host-facing
// ports are deliveries.
func expectedSet(t *testing.T, p *ctrl.Program, tp *topo.Topology, host string, fields netkat.Packet, st dataplane.Stamp) map[string]bool {
	t.Helper()
	state, ok := p.StateOf(st.Version)
	if !ok {
		t.Fatalf("stamp version %d out of range for %s", st.Version, p.Name)
	}
	pol := stateful.Project(p.Prog.Cmd, state)
	h, _ := tp.HostByName(host)
	out := map[string]bool{}
	for _, lp := range netkat.Eval(pol, netkat.LocatedPacket{Pkt: fields, Loc: h.Attach}) {
		if lk, ok := tp.LinkFrom(lp.Loc); ok {
			if hh, isHost := tp.HostByID(lk.Dst.Switch); isHost {
				out[hh.Name+"|"+lp.Pkt.Key()] = true
			}
		}
	}
	return out
}

type injection struct {
	host   string
	fields netkat.Packet
}

// runSwapScenario drives a deterministic randomized scenario on a
// synchronous engine: seeded traffic rounds, a swap staged at a seeded
// round with packets mid-journey (Step leaves them between hops), then a
// drain. It verifies per-packet consistency — every delivery carries its
// injection's stamp, and the delivery set of every injection equals
// exactly what netkat.Eval predicts for the stamped program — and
// returns the full delivery sequence for cross-worker comparison.
func runSwapScenario(t *testing.T, old, new_ *ctrl.Program, tp *topo.Topology, seed int64, workers int, mode dataplane.Mode) []dataplane.Delivery {
	t.Helper()
	e := dataplane.NewEngine(old.NES, tp, dataplane.Options{Workers: workers, Mode: mode})
	mapping, _ := ctrl.EventMapping(old.NES, new_.NES)

	r := rand.New(rand.NewSource(seed))
	hosts := append([]topo.Host{}, tp.Hosts...)

	const rounds = 8
	swapRound := 1 + r.Intn(rounds-2)
	var sw *dataplane.Swap
	stamps := map[int]dataplane.Stamp{}
	injected := map[int]injection{}
	id := 0
	for round := 0; round < rounds; round++ {
		if round == swapRound {
			var err error
			sw, err = e.StageSwap(dataplane.SwapSpec{NES: new_.NES, MapEvent: mapping})
			if err != nil {
				t.Fatalf("StageSwap: %v", err)
			}
		}
		for j, k := 0, 2+r.Intn(4); j < k; j++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			f := netkat.Packet{"dst": dst.ID, "src": src.ID, "id": id}
			st, err := e.InjectStamped(src.Name, f)
			if err != nil {
				t.Fatal(err)
			}
			stamps[id] = st
			injected[id] = injection{host: src.Name, fields: f.Clone()}
			id++
		}
		// Partial progress: packets stay mid-journey across rounds, so the
		// flip lands with both epochs in flight.
		e.Step(r.Intn(3))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sw.Done():
	default:
		t.Fatal("swap did not complete after the network drained")
	}

	byID := map[int][]dataplane.Delivery{}
	for _, d := range e.Deliveries() {
		i, ok := d.Fields["id"]
		if !ok {
			t.Fatalf("delivery without id: %v", d)
		}
		if d.Stamp != stamps[i] {
			t.Fatalf("packet %d delivered under stamp %+v but was injected under %+v: journey mixed rule sets", i, d.Stamp, stamps[i])
		}
		byID[i] = append(byID[i], d)
	}
	for i, in := range injected {
		p := old
		if stamps[i].Epoch != 0 {
			p = new_
		}
		want := expectedSet(t, p, tp, in.host, in.fields, stamps[i])
		got := map[string]bool{}
		for _, d := range byID[i] {
			key := d.Host + "|" + d.Fields.Key()
			if got[key] {
				t.Fatalf("packet %d delivered twice as %s", i, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("packet %d (stamp %+v, program %s): delivered %v, Eval predicts %v", i, stamps[i], p.Name, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("packet %d: Eval predicts %s, not delivered", i, k)
			}
		}
	}
	return e.Deliveries()
}

// swapPairs are the program transitions the properties quantify over:
// a cross-application swap (firewall -> bandwidth cap, sharing the
// outgoing-arrival event) and a same-application revision (cap raise).
func swapPairs(t *testing.T) [][2]*ctrl.Program {
	fw := compileProgram(t, apps.Firewall())
	cap8 := compileProgram(t, apps.BandwidthCap(8))
	cap6 := compileProgram(t, apps.BandwidthCap(6))
	cap12 := compileProgram(t, apps.BandwidthCap(12))
	return [][2]*ctrl.Program{
		{fw, cap8},
		{cap6, cap12},
		{cap12, fw}, // downgrade: most new-program events have no counterpart
	}
}

// TestSwapPerPacketConsistency is the acceptance property for live swaps:
// across randomized swap points, no packet journey ever mixes P and P'
// rules — every delivery matches its injection's stamped program exactly,
// verified against netkat.Eval on both programs — under both forwarding
// planes. Run with -race in CI.
func TestSwapPerPacketConsistency(t *testing.T) {
	tp := topo.Firewall()
	for _, pair := range swapPairs(t) {
		for _, mode := range []dataplane.Mode{dataplane.ModeIndexed, dataplane.ModeScan} {
			name := fmt.Sprintf("%s->%s/%v", pair[0].Name, pair[1].Name, mode)
			t.Run(name, func(t *testing.T) {
				for seed := int64(1); seed <= 12; seed++ {
					runSwapScenario(t, pair[0], pair[1], tp, seed, 1+int(seed)%4, mode)
				}
			})
		}
	}
}

// TestSwapDeterministicAcrossWorkers: the delivery sequence of a swap
// scenario — including stamps — is bit-identical at 1, 2 and 4 workers,
// and identical between the indexed and scan planes.
func TestSwapDeterministicAcrossWorkers(t *testing.T) {
	tp := topo.Firewall()
	pair := swapPairs(t)[0]
	for seed := int64(1); seed <= 4; seed++ {
		base := runSwapScenario(t, pair[0], pair[1], tp, seed, 1, dataplane.ModeIndexed)
		if len(base) == 0 {
			t.Fatalf("seed %d delivered nothing; scenario is vacuous", seed)
		}
		for _, w := range []int{2, 4} {
			got := runSwapScenario(t, pair[0], pair[1], tp, seed, w, dataplane.ModeIndexed)
			assertSameDeliveries(t, base, got, fmt.Sprintf("seed %d workers %d", seed, w))
		}
		scan := runSwapScenario(t, pair[0], pair[1], tp, seed, 4, dataplane.ModeScan)
		assertSameDeliveries(t, base, scan, fmt.Sprintf("seed %d scan plane", seed))
	}
}

func assertSameDeliveries(t *testing.T, a, b []dataplane.Delivery, ctx string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d deliveries", ctx, len(a), len(b))
	}
	for i := range a {
		if a[i].Host != b[i].Host || a[i].Stamp != b[i].Stamp || !a[i].Fields.Equal(b[i].Fields) {
			t.Fatalf("%s: delivery %d differs: %+v vs %+v", ctx, i, a[i], b[i])
		}
	}
}

// TestControllerSwapCarriesKnowledge drives the served controller
// end-to-end: the firewall's established event knowledge (the opened
// return path) survives a swap to the bandwidth cap — the cap starts
// counting from the firewall's history instead of resetting — and a swap
// back to the firewall carries it again.
func TestControllerSwapCarriesKnowledge(t *testing.T) {
	fw := apps.Firewall()
	c := ctrl.New(fw.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load("firewall", fw.Prog); err != nil {
		t.Fatal(err)
	}

	// Open the return path under the firewall.
	if err := c.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if got := len(c.DeliveredTo("H4")); got != 1 {
		t.Fatalf("outgoing not delivered: %d", got)
	}

	capApp := apps.BandwidthCap(3)
	rep, err := c.Swap(capApp.Name, capApp.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MappedEvents != 1 {
		t.Fatalf("firewall's event should map into the cap: %+v", rep)
	}
	if rep.CarriedEvents == 0 {
		t.Fatalf("no knowledge carried at the flip: %+v", rep)
	}

	// The cap inherited count=1: the return path is open immediately.
	if err := c.Inject("H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)}); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if got := len(c.DeliveredTo("H1")); got != 1 {
		t.Fatalf("return path closed after swap: carried knowledge lost (%d delivered)", got)
	}

	// Swap back: the cap's history maps onto the firewall's single event.
	rep2, err := c.Swap("firewall", fw.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CarriedEvents == 0 {
		t.Fatalf("swap back carried nothing: %+v", rep2)
	}
	if err := c.Inject("H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4), "id": 2}); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if got := len(c.DeliveredTo("H1")); got != 2 {
		t.Fatalf("return path closed after swapping back (%d delivered)", got)
	}
	st := c.Status()
	if st.Program != "firewall" || st.Epoch != 2 || len(st.Swaps) != 2 {
		t.Fatalf("status after two swaps: %+v", st)
	}
}

// TestSwapRejectsConcurrent: only one transition may be active.
func TestSwapRejectsConcurrent(t *testing.T) {
	fw := compileProgram(t, apps.Firewall())
	cap8 := compileProgram(t, apps.BandwidthCap(8))
	e := dataplane.NewEngine(fw.NES, topo.Firewall(), dataplane.Options{})
	// Keep a packet in flight so the first swap stays draining.
	if err := e.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)}); err != nil {
		t.Fatal(err)
	}
	e.Step(1)
	mapping, _ := ctrl.EventMapping(fw.NES, cap8.NES)
	if _, err := e.StageSwap(dataplane.SwapSpec{NES: cap8.NES, MapEvent: mapping}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StageSwap(dataplane.SwapSpec{NES: fw.NES}); err == nil {
		t.Fatal("second concurrent swap accepted")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
