// Package ctrl is the live-update controller: it owns a running
// dataplane.Engine and replaces its Stateful NetKAT program at runtime
// with per-packet consistency — the Reitblatt-style two-phase update
// discipline the paper's version tags already encode, extended across
// *programs* with Section 4's tag/digest semantics.
//
// A swap of the running program P for an incoming P' proceeds as:
//
//  1. compile P' through the incremental pipeline, reusing FDDs,
//     segments and whole configurations across swap generations
//     (nkc.ProgramCache), so revisions compile as deltas;
//  2. install P' tables behind fresh version guards (the
//     dataplane.MergedPair staged shape — phase one, invisible to
//     in-flight traffic);
//  3. at a generation barrier, atomically flip ingress tagging to P'
//     and map each switch's established event knowledge into P' by
//     canonical event-history replay (nes.Replay);
//  4. drain: in-flight P-tagged packets finish their journeys under P
//     rules exclusively, while detections they still make are carried
//     into P' views through the event mapping;
//  5. once nothing P-tagged remains, retire P and invalidate its plan.
//
// Forwarding never pauses, and no packet journey ever mixes P and P'
// rules. See docs/CONTROLLER.md for the state-mapping rule and why the
// discipline preserves the paper's Theorem 1 per program generation.
package ctrl

import (
	"fmt"
	"sync"
	"time"

	"eventnet/internal/dataplane"
	"eventnet/internal/ets"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
	"eventnet/internal/obs"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Options configure a Controller.
type Options struct {
	// Workers is the engine's forwarding worker count (and the compile
	// pool size). Defaults to 1.
	Workers int
	// Mode selects the engine's forwarding implementation.
	Mode dataplane.Mode
	// SwapTimeout bounds how long Swap waits for the old program to
	// drain. Defaults to 30s.
	SwapTimeout time.Duration
	// DeliveryLog bounds the engine's retained delivery log (0 =
	// unlimited; long-running daemons must set it — see
	// dataplane.Options.DeliveryLog).
	DeliveryLog int
	// ChunkGens caps the engine's generations per chunk between
	// boundaries (0 = engine default; see dataplane.Options.ChunkGens).
	// Swap-drain accounting is exact regardless: flips land at chunk
	// edges and retirement is decided inside the chunk, at the
	// generation that drained the last old-epoch packet.
	ChunkGens int
	// Obs, when non-nil, is threaded into the engine and also fed by the
	// controller itself: compile timings and cache hit rates on fresh
	// builds, swap "stage" phase events on the bus, program-count and
	// store-size gauges. See docs/OBSERVABILITY.md.
	Obs *obs.Obs
	// OnWedgeDump, when set alongside Obs.Flight, receives the flight
	// dump taken automatically the first time Health observes a wedged
	// swap (draining past SwapTimeout). Called from its own goroutine,
	// once per wedge.
	OnWedgeDump func(*obs.FlightDump)
}

// Program is one compiled program generation.
type Program struct {
	Name    string
	Prog    stateful.Program
	ETS     *ets.ETS
	NES     *nes.NES
	Stats   ets.Stats
	Compile time.Duration
}

// StateOf returns the state vector behind a configuration tag (tags are
// ETS vertex IDs), for mapping a delivery stamp back to a projected
// policy.
func (p *Program) StateOf(version int) (stateful.State, bool) {
	if version < 0 || version >= len(p.ETS.Vertices) {
		return nil, false
	}
	return p.ETS.Vertices[version].State, true
}

// SwapReport describes one completed swap.
type SwapReport struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	CompileMS float64 `json:"compile_ms"`
	// States/Events/Rules describe the incoming program.
	States int `json:"states"`
	Events int `json:"events"`
	Rules  int `json:"rules"`
	// StagedRules is the size of the phase-one staged install: both
	// programs' rules behind disjoint version guards (MergedPair), the
	// physical table a deployment would hold during the transition.
	StagedRules int `json:"staged_rules"`
	TagOffset   int `json:"tag_offset"`
	// MappedEvents counts old events with a counterpart in the new
	// program; CarriedEvents is the knowledge actually admitted into the
	// new views at the flip barrier (summed over switches).
	MappedEvents  int `json:"mapped_events"`
	CarriedEvents int `json:"carried_events"`
	// LatencyMS is stage-to-retire wall time; TransitionMS the flip-to-
	// retire drain window; the hop counts cover that window.
	LatencyMS      float64 `json:"latency_ms"`
	TransitionMS   float64 `json:"transition_ms"`
	FlipGen        int64   `json:"flip_gen"`
	RetireGen      int64   `json:"retire_gen"`
	TransitionHops int64   `json:"transition_hops"`
	DrainedHops    int64   `json:"drained_hops"`
}

// Status is the controller's monitoring view.
type Status struct {
	Program  string             `json:"program"`
	Epoch    int                `json:"epoch"`
	Swapping bool               `json:"swapping"`
	Swaps    []SwapReport       `json:"swaps,omitempty"`
	Engine   dataplane.Snapshot `json:"engine"`
}

// Controller owns a served dataplane engine and hot-swaps its program.
// All methods are safe for concurrent use; swaps are serialized.
type Controller struct {
	mu     sync.Mutex // guards cur, swaps, progs, staged, eng
	swapMu sync.Mutex // serializes Swap end to end (compile -> retire)
	topo   *topo.Topology
	opts   Options
	cache  *nkc.ProgramCache
	eng    *dataplane.Engine
	cur    *Program
	swaps  []SwapReport
	close  sync.Once

	// progs memoizes compiled program generations by canonical program
	// text, most-recently-used last. Swapping back to a recent program is
	// then allocation-free: the same NES instance returns, its compiled
	// plan is still cached, and the staged merged tables are reused — on
	// a busy controller the A<->B ping-pong costs no compile work and no
	// GC debt at all. Plans are invalidated when their generation falls
	// out of this window (or at Close), never while it might swap back in.
	progs  []*Program
	staged map[[2]*nes.NES]stagedTables

	// swapStart is the wall time of the in-flight swap's StageSwap call,
	// zero when none is draining. Health uses it to distinguish a healthy
	// drain from a wedged one without an engine round trip. wedgeDumped
	// marks that the current wedge's automatic flight dump has been
	// taken; it resets whenever swapStart clears.
	swapStart   time.Time
	wedgeDumped bool
}

// stagedTables caches the phase-one merged install per program pair.
type stagedTables struct {
	rules  int
	offset int
}

// progMemoLimit bounds the retained program generations.
const progMemoLimit = 8

// New builds a controller for a topology. Load a first program before
// injecting traffic.
func New(t *topo.Topology, o Options) *Controller {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.SwapTimeout <= 0 {
		o.SwapTimeout = 30 * time.Second
	}
	return &Controller{topo: t, opts: o, cache: nkc.NewProgramCache(), staged: map[[2]*nes.NES]stagedTables{}}
}

// progKey is a program's memo identity: its canonical rendering plus the
// initial state (the topology and backend are fixed per controller).
func progKey(p stateful.Program) string {
	return p.Init.Key() + "|" + p.Cmd.String()
}

// Compile runs a program through the incremental pipeline, sharing the
// controller's cross-generation compiler cache, and memoizes whole
// generations: recompiling an unchanged program returns the same
// *Program — same NES identity, same cached plan.
func (c *Controller) Compile(name string, p stateful.Program) (*Program, error) {
	key := progKey(p)
	c.mu.Lock()
	for i, g := range c.progs {
		if progKey(g.Prog) == key {
			c.progs = append(append(c.progs[:i:i], c.progs[i+1:]...), g) // refresh LRU position
			c.mu.Unlock()
			return g, nil
		}
	}
	c.mu.Unlock()

	start := time.Now()
	e, stats, err := ets.BuildWithOptions(p, c.topo, ets.Options{Workers: c.opts.Workers, Cache: c.cache})
	if err != nil {
		return nil, fmt.Errorf("ctrl: compiling %s: %w", name, err)
	}
	n, err := e.ToNES()
	if err != nil {
		return nil, fmt.Errorf("ctrl: converting %s: %w", name, err)
	}
	g := &Program{Name: name, Prog: p, ETS: e, NES: n, Stats: stats, Compile: time.Since(start)}
	if m := c.metrics(); m != nil {
		// Memo hits above return before this point, so these record fresh
		// builds only. stats.Cache hit/miss counters are already this
		// build's deltas (ets.BuildWithOptions subtracts the pre-build
		// snapshot); Strands/FDDNodes are absolute store sizes.
		m.Inc(obs.CtrCompiles)
		m.Observe(obs.HistCompileNs, g.Compile.Nanoseconds())
		m.Add(obs.CtrCompileTableHits, stats.Cache.TableHits)
		m.Add(obs.CtrCompileTableMisses, stats.Cache.TableMisses)
		m.Add(obs.CtrCompileSegHits, stats.Cache.SegmentHits)
		m.Add(obs.CtrCompileSegMisses, stats.Cache.SegmentMisses)
		m.SetGauge(obs.GaugeFDDNodes, stats.Cache.FDDNodes)
		m.SetGauge(obs.GaugeStrands, stats.Cache.Strands)
		m.SetGauge(obs.GaugeInternEntries, stats.Cache.InternEntries)
		m.SetGauge(obs.GaugeArenaBytes, stats.Cache.ArenaBytes)
		hw := c.cache.ArenaHighWater() // cross-generation, survives cache resets
		if stats.Cache.ArenaHighWater > hw {
			hw = stats.Cache.ArenaHighWater
		}
		m.SetGauge(obs.GaugeArenaHighWater, hw)
	}
	c.mu.Lock()
	c.progs = append(c.progs, g)
	for len(c.progs) > progMemoLimit {
		evicted := c.progs[0]
		c.progs = c.progs[1:]
		if evicted != c.cur {
			c.dropGeneration(evicted)
		}
	}
	c.mu.Unlock()
	return g, nil
}

// dropGeneration releases a retired program generation's cached
// artifacts: its compiled plan (dataplane.Invalidate — without this the
// plan cache would pin every program the controller ever ran) and its
// staged merged tables.
func (c *Controller) dropGeneration(g *Program) {
	dataplane.Invalidate(g.NES)
	for k := range c.staged {
		if k[0] == g.NES || k[1] == g.NES {
			delete(c.staged, k)
		}
	}
}

// Load compiles and installs the first program and starts the engine in
// served mode. It can be called once.
func (c *Controller) Load(name string, p stateful.Program) error {
	np, err := c.Compile(name, p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil {
		return fmt.Errorf("ctrl: a program is already loaded; use Swap")
	}
	c.cur = np
	c.eng = dataplane.NewEngine(np.NES, c.topo, dataplane.Options{
		Workers:     c.opts.Workers,
		Mode:        c.opts.Mode,
		DeliveryLog: c.opts.DeliveryLog,
		ChunkGens:   c.opts.ChunkGens,
		Obs:         c.opts.Obs,
	})
	c.eng.Start()
	return nil
}

// EventMapping matches the events of two programs by identity — guard,
// location, and occurrence number — returning old-ID -> new-ID (-1 for
// no counterpart) and the number of mapped events. This is the canonical
// correspondence behind the swap's state mapping: an old event and its
// counterpart denote the *same observable packet arrival*, so knowledge
// of one is knowledge of the other.
func EventMapping(old, new_ *nes.NES) ([]int, int) {
	idx := make(map[string]int, len(new_.Events))
	for _, ev := range new_.Events {
		idx[eventKey(ev)] = ev.ID
	}
	size := 0
	for _, ev := range old.Events {
		if ev.ID+1 > size {
			size = ev.ID + 1
		}
	}
	m := make([]int, size)
	for i := range m {
		m[i] = -1
	}
	mapped := 0
	for _, ev := range old.Events {
		if id, ok := idx[eventKey(ev)]; ok {
			m[ev.ID] = id
			mapped++
		}
	}
	return m, mapped
}

// eventKey is an event's swap-stable identity.
func eventKey(ev nes.Event) string {
	return fmt.Sprintf("%s@%v#%d", ev.Guard.Key(), ev.Loc, ev.Occurrence)
}

// Swap hot-swaps the running program: compile, stage, flip at a barrier,
// drain, retire. It blocks until the old program has fully drained (or
// SwapTimeout passes) and returns the completed swap's report.
// Forwarding continues throughout. Swaps are fully serialized — a
// concurrent Swap waits rather than computing its event mapping against
// a predecessor that is about to change.
func (c *Controller) Swap(name string, p stateful.Program) (SwapReport, error) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()

	np, err := c.Compile(name, p)
	if err != nil {
		return SwapReport{}, err
	}

	c.mu.Lock()
	if c.eng == nil {
		c.mu.Unlock()
		return SwapReport{}, fmt.Errorf("ctrl: no program loaded")
	}
	old := c.cur
	eng := c.eng
	pair := [2]*nes.NES{old.NES, np.NES}
	stg, haveStaged := c.staged[pair]
	c.mu.Unlock()

	// Phase one: the staged install — both programs' rules behind
	// disjoint exact version guards. The engine forwards through the
	// equivalent per-epoch compiled plans (the guard-partition
	// equivalence is property-tested in internal/dataplane); the merged
	// shape is what a switch deployment would install, and its size is
	// the transition's rule-memory cost. Both the merged tables and the
	// new plan are warmed *before* the flip, so the barrier installs,
	// never compiles — and both are memoized, so a swap back is free.
	if !haveStaged {
		tables, off := dataplane.MergedPair(old.NES, np.NES)
		stg = stagedTables{rules: tables.TotalRules(), offset: off}
		c.mu.Lock()
		c.staged[pair] = stg
		c.mu.Unlock()
	}
	dataplane.PlanFor(np.NES)

	mapping, mapped := EventMapping(old.NES, np.NES)
	if b := c.bus(); b.Active() {
		b.Publish(obs.Event{
			Kind: obs.KindSwap, Phase: "stage",
			Note:      old.Name + " -> " + name,
			CompileMS: float64(np.Compile.Microseconds()) / 1000,
		})
	}
	if f := c.flight(); f != nil {
		// Gen -1: the controller has no engine generation in hand; the
		// serial ring backfills the newest it has seen.
		f.Serial(obs.FlightRec{Kind: obs.FlightSwap, Phase: "stage", Gen: -1})
	}
	c.mu.Lock()
	c.swapStart = time.Now()
	c.mu.Unlock()
	sw, err := eng.StageSwap(dataplane.SwapSpec{NES: np.NES, MapEvent: mapping})
	if err != nil {
		c.mu.Lock()
		c.swapStart = time.Time{}
		c.wedgeDumped = false
		c.mu.Unlock()
		return SwapReport{}, err
	}
	// The flip has happened: the engine's ingress program *is* np from
	// here on, so reconcile cur immediately — even if the drain outlasts
	// the timeout below, Status and the next swap's event mapping must
	// describe the program actually running.
	c.mu.Lock()
	c.cur = np
	c.mu.Unlock()
	select {
	case <-sw.Done():
		c.mu.Lock()
		c.swapStart = time.Time{}
		c.wedgeDumped = false
		c.mu.Unlock()
	case <-time.After(c.opts.SwapTimeout):
		// Leave swapStart set — Health reports the wedge — but clear it if
		// the drain does eventually finish.
		go func() {
			<-sw.Done()
			c.mu.Lock()
			c.swapStart = time.Time{}
			c.wedgeDumped = false
			c.mu.Unlock()
		}()
		return SwapReport{}, fmt.Errorf("ctrl: swap %s -> %s flipped but did not drain within %v", old.Name, name, c.opts.SwapTimeout)
	}
	st := sw.Stats()

	// Phase two complete. The retired generation stays memoized for a
	// swap back; its plan is invalidated when it falls out of the memo
	// window (dropGeneration) rather than eagerly, so the A<->B ping-pong
	// of a busy controller never recompiles anything.
	c.mu.Lock()
	defer c.mu.Unlock()

	rules := 0
	for _, cfg := range np.NES.Configs {
		rules += cfg.Tables.TotalRules()
	}
	rep := SwapReport{
		From:           old.Name,
		To:             name,
		CompileMS:      float64(np.Compile.Microseconds()) / 1000,
		States:         len(np.NES.Configs),
		Events:         len(np.NES.Events),
		Rules:          rules,
		StagedRules:    stg.rules,
		TagOffset:      stg.offset,
		MappedEvents:   mapped,
		CarriedEvents:  st.CarriedEvents,
		LatencyMS:      float64(st.RetiredAt.Sub(st.StagedAt).Microseconds()) / 1000,
		TransitionMS:   float64(st.RetiredAt.Sub(st.FlipAt).Microseconds()) / 1000,
		FlipGen:        st.FlipGen,
		RetireGen:      st.RetireGen,
		TransitionHops: st.TransitionHops,
		DrainedHops:    st.DrainedHops,
	}
	c.swaps = append(c.swaps, rep)
	return rep, nil
}

// Inject queues a packet from the named host; it is admitted and stamped
// at the engine's next generation barrier.
func (c *Controller) Inject(host string, fields netkat.Packet) error {
	eng := c.engine()
	if eng == nil {
		return fmt.Errorf("ctrl: no program loaded")
	}
	return eng.InjectAsync(host, fields)
}

// InjectBatch queues a batch of packets for admission at one engine
// boundary: validation runs here per packet, and the admissible packets
// cost one supervisor round trip total. The returned slice follows
// dataplane.InjectAsyncBatch's convention — nil when every packet was
// admitted, otherwise errs[i] non-nil marks the rejected packets (the
// rest of the batch is still admitted).
func (c *Controller) InjectBatch(ins []dataplane.Injection) []error {
	eng := c.engine()
	if eng == nil {
		errs := make([]error, len(ins))
		for i := range errs {
			errs[i] = fmt.Errorf("ctrl: no program loaded")
		}
		return errs
	}
	return eng.InjectAsyncBatch(ins)
}

// Quiesce blocks until the engine has drained all queued traffic.
func (c *Controller) Quiesce() {
	if eng := c.engine(); eng != nil {
		eng.Quiesce()
	}
}

// DeliveredTo returns the packets delivered to a host so far
// (barrier-consistent).
func (c *Controller) DeliveredTo(host string) []netkat.Packet {
	eng := c.engine()
	if eng == nil {
		return nil
	}
	var out []netkat.Packet
	for _, d := range eng.CopyDeliveries(0) {
		if d.Host == host {
			out = append(out, d.Fields)
		}
	}
	return out
}

// Status returns the controller's monitoring view.
func (c *Controller) Status() Status {
	c.mu.Lock()
	name := ""
	if c.cur != nil {
		name = c.cur.Name
	}
	swaps := append([]SwapReport{}, c.swaps...)
	eng := c.eng
	c.mu.Unlock()
	s := Status{Program: name, Swaps: swaps}
	if eng != nil {
		s.Engine = eng.Snapshot()
		s.Epoch = s.Engine.Epoch
		s.Swapping = s.Engine.Swapping
	}
	return s
}

// Current returns the running program (nil before Load).
func (c *Controller) Current() *Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Engine exposes the underlying engine for experiments and tests.
func (c *Controller) Engine() *dataplane.Engine { return c.engine() }

func (c *Controller) engine() *dataplane.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng
}

// Topology returns the controller's topology.
func (c *Controller) Topology() *topo.Topology { return c.topo }

func (c *Controller) metrics() *obs.Metrics {
	if c.opts.Obs == nil {
		return nil
	}
	return c.opts.Obs.Metrics
}

// bus returns the controller's event bus, possibly nil (Bus.Publish and
// Bus.Active are nil-safe).
func (c *Controller) bus() *obs.Bus {
	if c.opts.Obs == nil {
		return nil
	}
	return c.opts.Obs.Bus
}

// flight returns the controller's flight recorder, possibly nil.
func (c *Controller) flight() *obs.Flight {
	if c.opts.Obs == nil {
		return nil
	}
	return c.opts.Obs.Flight
}

// watchdog returns the controller's watchdog, possibly nil.
func (c *Controller) watchdog() *obs.Watchdog {
	if c.opts.Obs == nil {
		return nil
	}
	return c.opts.Obs.Watch
}

// Alerts returns the watchdog's currently-firing alerts (nil without a
// watchdog).
func (c *Controller) Alerts() []obs.Alert {
	w := c.watchdog()
	if w == nil {
		return nil
	}
	return w.Active()
}

// FlightDump stitches the flight recorder's rings, through an engine
// barrier when one is serving (quiescent worker rings) and directly
// otherwise. Nil without a recorder.
func (c *Controller) FlightDump() *obs.FlightDump {
	f := c.flight()
	if f == nil {
		return nil
	}
	if eng := c.engine(); eng != nil {
		return eng.FlightDump()
	}
	return f.Dump()
}

// Health reports liveness without an engine barrier round trip, so it
// stays truthful even when the engine is wedged: ok is false with a
// reason when no program is loaded, the engine has stopped serving, or
// an in-flight swap has been draining longer than SwapTimeout.
func (c *Controller) Health() (bool, string) {
	c.mu.Lock()
	eng := c.eng
	swapStart := c.swapStart
	c.mu.Unlock()
	switch {
	case eng == nil:
		return false, "no program loaded"
	case !eng.Serving():
		return false, "engine stopped"
	case !swapStart.IsZero() && time.Since(swapStart) > c.opts.SwapTimeout:
		c.wedgeDump()
		return false, fmt.Sprintf("swap draining for %s (timeout %s)", time.Since(swapStart).Round(time.Millisecond), c.opts.SwapTimeout)
	}
	return true, "ok"
}

// wedgeDump takes the wedged swap's automatic flight dump: once per
// wedge, from its own goroutine (the dump crosses an engine barrier;
// Health must stay a non-blocking probe). The dump goes to the
// OnWedgeDump hook when one is set.
func (c *Controller) wedgeDump() {
	if c.flight() == nil {
		return
	}
	c.mu.Lock()
	already := c.wedgeDumped
	c.wedgeDumped = true
	c.mu.Unlock()
	if already {
		return
	}
	go func() {
		d := c.FlightDump()
		if d != nil && c.opts.OnWedgeDump != nil {
			c.opts.OnWedgeDump(d)
		}
	}()
}

// Close stops the engine and releases every memoized generation's cached
// plan. Idempotent; safe before Load.
func (c *Controller) Close() {
	c.close.Do(func() {
		if eng := c.engine(); eng != nil {
			eng.Stop()
		}
		c.mu.Lock()
		for _, g := range c.progs {
			c.dropGeneration(g)
		}
		c.progs = nil
		c.mu.Unlock()
	})
}
