package ctrl_test

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/ets"
	"eventnet/internal/nes"
)

// compileNES compiles an app straight to its NES.
func compileNES(t *testing.T, a apps.App) *nes.NES {
	t.Helper()
	et, err := ets.Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("compile %s: %v", a.Name, err)
	}
	n, err := et.ToNES()
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return n
}

// mapSet pushes an old-program event set through a swap mapping,
// dropping events with no image — exactly what the engine does before
// handing the survivors to the new program's Replay.
func mapSet(s nes.Set, mapping []int) nes.Set {
	out := nes.Empty
	for _, id := range s.Elems() {
		if id < len(mapping) && mapping[id] >= 0 {
			out = out.With(mapping[id])
		}
	}
	return out
}

// TestEventMappingNoImage: replay across a program swap where part of
// the event history has no image in the new program. FailoverWAN(6)
// tolerates six fail/recover cycles, FailoverWAN(2) only two, so the
// first two cycles' events map across and the tail is genuinely
// image-less. The mapped survivors of any valid old history must replay
// fully on the new program, and image-less knowledge must carry nothing.
func TestEventMappingNoImage(t *testing.T) {
	oldN := compileNES(t, apps.FailoverWAN(6).App)
	newN := compileNES(t, apps.FailoverWAN(2).App)

	mapping, mapped := ctrl.EventMapping(oldN, newN)
	if mapped == 0 || mapped >= len(oldN.Events) {
		t.Fatalf("mapped %d of %d old events — want a proper nonempty subset", mapped, len(oldN.Events))
	}
	noImage := 0
	for _, ev := range oldN.Events {
		if mapping[ev.ID] < 0 {
			noImage++
		}
	}
	if noImage == 0 {
		t.Fatal("no image-less events: the scenario does not exercise the -1 path")
	}
	if mapped+noImage != len(oldN.Events) {
		t.Fatalf("mapping accounts for %d+%d of %d events", mapped, noImage, len(oldN.Events))
	}

	// The full old history is a valid execution, so its image must be
	// admitted in full: dropping the tail cannot strand the mapped prefix.
	full := nes.Empty
	for _, ev := range oldN.Events {
		full = full.With(ev.ID)
	}
	if got := oldN.Replay(full); got != full {
		t.Fatalf("full old history does not replay on its own program: %v", got)
	}
	cand := mapSet(full, mapping)
	if cand.Count() != mapped {
		t.Fatalf("image of full history has %d events, want %d", cand.Count(), mapped)
	}
	if got := newN.Replay(cand); got != cand {
		t.Fatalf("mapped history stranded on the new program: Replay(%v) = %v", cand, got)
	}

	// A view made only of image-less events maps to nothing: the swap
	// restarts that knowledge from scratch rather than guessing.
	tail := nes.Empty
	for _, ev := range oldN.Events {
		if mapping[ev.ID] < 0 {
			tail = tail.With(ev.ID)
		}
	}
	if got := mapSet(tail, mapping); got != nes.Empty {
		t.Fatalf("image-less events mapped to %v", got)
	}

	// Post-mapping replay still enforces execution order: some mapped
	// event depends on an enabler, so its singleton image must be
	// stranded by the new program's Replay.
	stranded := false
	for _, id := range cand.Elems() {
		if newN.Replay(nes.Empty.With(id)) == nes.Empty {
			stranded = true
			break
		}
	}
	if !stranded {
		t.Fatal("every mapped event replays alone — the prefix check is vacuous here")
	}

	// A self-swap maps every event onto itself: identity is the fixpoint
	// of the mapping, so repeated same-program swaps never lose history.
	selfMap, selfMapped := ctrl.EventMapping(oldN, oldN)
	if selfMapped != len(oldN.Events) {
		t.Fatalf("self-mapping lost events: %d of %d", selfMapped, len(oldN.Events))
	}
	for _, ev := range oldN.Events {
		if selfMap[ev.ID] != ev.ID {
			t.Fatalf("self-mapping moved event %d to %d", ev.ID, selfMap[ev.ID])
		}
	}
}
