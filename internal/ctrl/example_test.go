package ctrl_test

import (
	"fmt"

	"eventnet/internal/apps"
	"eventnet/internal/ctrl"
	"eventnet/internal/netkat"
)

// Example hot-swaps the stateful firewall for a bandwidth cap on a live
// controller. The firewall's established event knowledge — H1 has
// contacted H4, so the return path is open — survives the swap through
// the event mapping: the cap starts counting from the firewall's
// history, and H4's reply is delivered immediately after the swap
// instead of being dropped by a freshly-reset program.
func Example() {
	fw := apps.Firewall()
	c := ctrl.New(fw.Topo, ctrl.Options{Workers: 2})
	defer c.Close()
	if err := c.Load("firewall", fw.Prog); err != nil {
		panic(err)
	}

	// Outgoing traffic opens the return path under the firewall.
	c.Inject("H1", netkat.Packet{"dst": apps.H(4), "src": apps.H(1)})
	c.Quiesce()

	capp := apps.BandwidthCap(3)
	rep, err := c.Swap(capp.Name, capp.Prog)
	if err != nil {
		panic(err)
	}
	fmt.Printf("swap %s -> %s: %d mapped, %d carried, %d staged rules\n",
		rep.From, rep.To, rep.MappedEvents, rep.CarriedEvents, rep.StagedRules)

	// The reply flows under the new program without re-establishing state.
	c.Inject("H4", netkat.Packet{"dst": apps.H(1), "src": apps.H(4)})
	c.Quiesce()
	fmt.Printf("H1 received %d after the swap\n", len(c.DeliveredTo("H1")))

	st := c.Status()
	fmt.Printf("running %s at epoch %d\n", st.Program, st.Epoch)
	// Output:
	// swap firewall -> bandwidth-cap-3: 1 mapped, 1 carried, 24 staged rules
	// H1 received 1 after the swap
	// running bandwidth-cap-3 at epoch 1
}
