package ets

// The incremental, sharded ETS construction engine. Build used to run in
// two barriers — a serial BFS over the reachable states, then a worker
// pool compiling every state's configuration from scratch — and the
// state count, not per-table compile time, dominated end-to-end cost for
// stateful programs. The engine here overlaps the two phases on a
// work-stealing pool over state shards: each worker pops a state from
// its own shard (stealing from neighbors when empty), extracts its event
// edges, enqueues newly discovered successors onto their home shards
// (keyed by canonical state hash, deduplicated lock-free through one
// sync.Map), and immediately compiles the state's configuration with its
// per-worker incremental compiler (nkc.ProgramCompiler), so exploration
// and compilation interleave instead of running in a barrier per phase.
//
// Invariants (documented in docs/PIPELINE.md):
//
//   - Dedup: a state key enters the seen map exactly once
//     (sync.Map.LoadOrStore), so each state is explored and compiled by
//     exactly one worker and the discovered-state count is exact.
//   - Shard affinity: a state's home shard is a pure function of its
//     canonical key, so re-discovery from different parents races only on
//     the dedup map, never on a queue.
//   - Termination: `pending` counts discovered-but-unprocessed states;
//     it reaches zero exactly when every queue is empty and no worker is
//     mid-state, at which point the pool wakes and exits.
//   - Determinism: workers record results keyed by state; the final
//     vertex numbering, edge list, and event renaming are reconstructed
//     by a sequential canonical BFS over the recorded edges, so the
//     resulting ETS is byte-identical to the old serial construction no
//     matter how the concurrent phase interleaved.
import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"eventnet/internal/flowtable"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Options tunes BuildWithOptions. The zero value selects one worker (and
// shard) per CPU.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS. One worker also fixes
	// one shard per worker. A single worker makes cache statistics
	// deterministic (useful for examples and tests).
	Workers int
	// Cache, when non-nil, is a cross-build compiler cache: the root
	// incremental compiler and the whole-configuration cache come from it
	// instead of being created fresh, so successive builds — the program
	// revisions of a live controller — reuse FDDs, segments, and whole
	// tables across generations. The cache serializes builds (its FDD
	// context is single-goroutine); the resulting ETS is byte-identical
	// with and without a cache. Hit/miss stats reported for a cached
	// build count only that build's lookups, while Strands/FDDNodes
	// report the shared stores' cumulative sizes.
	Cache *nkc.ProgramCache
}

// Stats reports what one Build did: the explored graph and the
// effectiveness of the cross-state compilation caches (per-worker stats
// summed; see nkc.CacheStats for field meanings).
type Stats struct {
	States int
	Edges  int
	Events int
	// Configs is the number of distinct table sets actually compiled
	// (shared-cache population); States - Configs states reused a whole
	// configuration by guard signature.
	Configs int
	Steals  int64
	Cache   nkc.CacheStats
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("%d states, %d edges, %d events, %d distinct configs; %s",
		s.States, s.Edges, s.Events, s.Configs, s.Cache)
}

// builder is the shared state of one concurrent build.
type builder struct {
	prog stateful.Program
	topo *topo.Topology

	shards []shard
	seen   sync.Map // state key -> struct{}
	out    sync.Map // state key -> *explored

	pending    atomic.Int64 // discovered but not fully processed
	discovered atomic.Int64
	steals     atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
	done bool
	err  error
}

// shard is one per-worker queue of states awaiting processing.
type shard struct {
	mu    sync.Mutex
	items []stateful.State
}

// explored is the recorded outcome for one state.
type explored struct {
	state  stateful.State
	edges  []stateful.Edge // non-self, in Events order (sorted by key)
	tables flowtable.Tables
}

// BuildWithOptions constructs the ETS with explicit options, returning
// build statistics alongside. See Build for semantics.
func BuildWithOptions(p stateful.Program, t *topo.Topology, o Options) (*ETS, Stats, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	backend := nkc.DefaultBackend

	b := &builder{prog: p, topo: t, shards: make([]shard, workers)}
	b.cond = sync.NewCond(&b.mu)

	initKey := p.Init.Key()
	b.seen.Store(initKey, struct{}{})
	b.discovered.Store(1)
	b.pending.Store(1)
	b.shards[shardOf(initKey, workers)].push(p.Init.Clone())

	// One skeleton extraction (validation, strand split, guard indexes)
	// for the whole pool; the other workers fork it, sharing the
	// immutable parts and owning their hash-consing context. With a
	// cross-build cache, the root compiler and the shared table cache
	// persist across builds instead.
	var (
		sc     *nkc.SharedCache
		pc0    *nkc.ProgramCompiler
		before nkc.CacheStats
		err    error
	)
	if o.Cache != nil {
		pc0, sc, err = o.Cache.Acquire(backend, p.Cmd, t)
		if err != nil {
			return nil, Stats{}, err
		}
		defer o.Cache.Release()
		before = pc0.Stats()
	} else {
		sc = nkc.NewSharedCache()
		pc0, err = nkc.NewProgramCompilerWith(backend, p.Cmd, t, sc)
		if err != nil {
			return nil, Stats{}, err
		}
	}
	pcs := make([]*nkc.ProgramCompiler, workers)
	pcs[0] = pc0
	for w := 1; w < workers; w++ {
		pcs[w] = pc0.Fork()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b.work(w, pcs[w])
		}(w)
	}
	wg.Wait()

	if b.err != nil {
		return nil, Stats{}, b.err
	}

	e, stats, err := b.assemble()
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Steals = b.steals.Load()
	stats.Configs = sc.Len()
	for _, pc := range pcs {
		stats.Cache.Add(pc.Stats())
	}
	// A cached root compiler's counters accumulate across builds; report
	// only this build's lookups (store sizes stay absolute by design).
	stats.Cache.TableHits -= before.TableHits
	stats.Cache.TableMisses -= before.TableMisses
	stats.Cache.SegmentHits -= before.SegmentHits
	stats.Cache.SegmentMisses -= before.SegmentMisses
	return e, stats, nil
}

// shardOf maps a canonical state key to its home shard.
func shardOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func (s *shard) push(k stateful.State) {
	s.mu.Lock()
	s.items = append(s.items, k)
	s.mu.Unlock()
}

// pop takes from the tail (LIFO: the freshest, cache-warmest state).
func (s *shard) pop() (stateful.State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.items)
	if n == 0 {
		return nil, false
	}
	k := s.items[n-1]
	s.items = s.items[:n-1]
	return k, true
}

// steal takes from the head (FIFO: the oldest, least contended end).
func (s *shard) steal() (stateful.State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return nil, false
	}
	k := s.items[0]
	s.items = s.items[1:]
	return k, true
}

// work is one worker's loop: pop or steal a state, process it, repeat
// until the build completes or fails.
func (b *builder) work(w int, pc *nkc.ProgramCompiler) {
	for {
		k, ok := b.next(w)
		if !ok {
			return
		}
		if err := b.process(k, pc); err != nil {
			b.fail(err)
			return
		}
		if b.pending.Add(-1) == 0 {
			b.finishBuild()
		}
	}
}

// next returns the next state for worker w, blocking while the queues are
// empty but work is still pending elsewhere.
func (b *builder) next(w int) (stateful.State, bool) {
	for {
		if k, ok := b.tryTake(w); ok {
			return k, true
		}
		b.mu.Lock()
		if b.done {
			b.mu.Unlock()
			return nil, false
		}
		if k, ok := b.tryTake(w); ok {
			b.mu.Unlock()
			return k, true
		}
		b.cond.Wait()
		b.mu.Unlock()
	}
}

// tryTake pops from w's own shard, then steals round-robin.
func (b *builder) tryTake(w int) (stateful.State, bool) {
	if k, ok := b.shards[w].pop(); ok {
		return k, true
	}
	n := len(b.shards)
	for i := 1; i < n; i++ {
		if k, ok := b.shards[(w+i)%n].steal(); ok {
			b.steals.Add(1)
			return k, true
		}
	}
	return nil, false
}

// process explores one state (event extraction + successor discovery) and
// compiles its configuration.
func (b *builder) process(k stateful.State, pc *nkc.ProgramCompiler) error {
	es, err := stateful.Events(b.prog.Cmd, k)
	if err != nil {
		return err
	}
	res := &explored{state: k}
	for _, e := range es {
		if e.To.Equal(e.From) {
			// A self-loop updates the state to itself; it is not a
			// transition in the ETS sense.
			continue
		}
		res.edges = append(res.edges, e)
		key := e.To.Key()
		if _, dup := b.seen.LoadOrStore(key, struct{}{}); !dup {
			if b.discovered.Add(1) > stateful.MaxStates {
				return fmt.Errorf("ets: more than %d reachable states", stateful.MaxStates)
			}
			b.pending.Add(1)
			b.shards[shardOf(key, len(b.shards))].push(e.To.Clone())
			b.mu.Lock()
			b.cond.Signal()
			b.mu.Unlock()
		}
	}
	tbl, err := pc.Compile(k)
	if err != nil {
		return fmt.Errorf("ets: compiling configuration for state %v: %w", k, err)
	}
	res.tables = tbl
	b.out.Store(k.Key(), res)
	return nil
}

// fail records the first error and wakes the pool.
func (b *builder) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.done = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// finishBuild marks completion and wakes the pool.
func (b *builder) finishBuild() {
	b.mu.Lock()
	b.done = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// assemble rebuilds the deterministic ETS from the concurrent phase's
// per-state records: a sequential canonical BFS fixes vertex numbering
// (identical to the old serial explorer), edges are sorted by canonical
// key, and occurrence renaming runs as before.
func (b *builder) assemble() (*ETS, Stats, error) {
	order := []string{b.prog.Init.Key()}
	pos := map[string]int{order[0]: 0}
	var all []stateful.Edge
	for qi := 0; qi < len(order); qi++ {
		v, ok := b.out.Load(order[qi])
		if !ok {
			return nil, Stats{}, fmt.Errorf("ets: state %s explored but not recorded", order[qi])
		}
		res := v.(*explored)
		for _, e := range res.edges {
			all = append(all, e)
			key := e.To.Key()
			if _, ok := pos[key]; !ok {
				pos[key] = len(order)
				order = append(order, key)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key() < all[j].Key() })

	e := &ETS{Init: 0, Topo: b.topo}
	e.Vertices = make([]Vertex, len(order))
	for i, key := range order {
		v, _ := b.out.Load(key)
		res := v.(*explored)
		e.Vertices[i] = Vertex{ID: i, State: res.state, Tables: res.tables}
	}

	var raw []rawEdge
	for _, ed := range all {
		f, ok := pos[ed.From.Key()]
		if !ok {
			continue
		}
		t2, ok := pos[ed.To.Key()]
		if !ok {
			return nil, Stats{}, fmt.Errorf("ets: edge target state %v not reachable", ed.To)
		}
		raw = append(raw, rawEdge{from: f, to: t2, guardKey: ed.Guard.Key() + "@" + ed.Loc.String(), guard: ed.Guard, loc: ed.Loc})
	}

	if err := checkAcyclic(len(e.Vertices), raw, e.Init); err != nil {
		return nil, Stats{}, err
	}
	if err := e.finish(raw); err != nil {
		return nil, Stats{}, err
	}
	return e, Stats{States: len(e.Vertices), Edges: len(e.Edges), Events: len(e.Events)}, nil
}
