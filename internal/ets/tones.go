package ets

import (
	"fmt"

	"eventnet/internal/nes"
	"eventnet/internal/nkc"
)

// maxPaths bounds path enumeration during family construction.
const maxPaths = 200000

// Family computes F(T): the set of event-sets collected along every path
// from the initial vertex (Section 3.1), each mapped to the vertex where
// its paths end. It enforces the two ETS-to-NES conditions:
//
//  1. every event-set corresponds to exactly one configuration, and
//  2. the family is finite-complete (pairwise least upper bounds exist
//     whenever an upper bound does).
func (e *ETS) Family() (map[nes.Set]int, error) {
	adj := map[int][]Edge{}
	for _, ed := range e.Edges {
		adj[ed.From] = append(adj[ed.From], ed)
	}
	family := map[nes.Set]int{}
	paths := 0
	var dfs func(v int, s nes.Set) error
	dfs = func(v int, s nes.Set) error {
		paths++
		if paths > maxPaths {
			return fmt.Errorf("ets: more than %d paths during family construction", maxPaths)
		}
		if prev, ok := family[s]; ok && prev != v {
			// Condition 1: all paths with the same event-set must end at
			// states labeled with the same configuration.
			if e.Vertices[prev].Tables.String() != e.Vertices[v].Tables.String() {
				return fmt.Errorf("ets: event-set %v reaches two different configurations (states %v and %v)",
					s, e.Vertices[prev].State, e.Vertices[v].State)
			}
		} else {
			family[s] = v
		}
		for _, ed := range adj[v] {
			if s.Has(ed.Event) {
				// Re-occurrence along a path would need renaming beyond
				// what occurrence counting produced; cannot happen in an
				// acyclic ETS with consistent counts.
				return fmt.Errorf("ets: event %d repeats along a path", ed.Event)
			}
			if err := dfs(ed.To, s.With(ed.Event)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(e.Init, nes.Empty); err != nil {
		return nil, err
	}
	if err := checkFiniteComplete(family); err != nil {
		return nil, err
	}
	return family, nil
}

// checkFiniteComplete verifies condition 2 of Section 3.1: for any two
// family members with an upper bound in the family, their union is also a
// member. (Pairwise closure implies the condition for arbitrary finite
// collections by induction, the family being finite.)
func checkFiniteComplete(family map[nes.Set]int) error {
	sets := make([]nes.Set, 0, len(family))
	for s := range family {
		sets = append(sets, s)
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			u := sets[i].Union(sets[j])
			hasUpper := false
			for _, b := range sets {
				if u.SubsetOf(b) {
					hasUpper = true
					break
				}
			}
			if !hasUpper {
				continue
			}
			if _, ok := family[u]; !ok {
				return fmt.Errorf("ets: family is not finite-complete: %v and %v have an upper bound but %v is missing (the Figure 3(c) violation)",
					sets[i], sets[j], u)
			}
		}
	}
	return nil
}

// ToNES converts the ETS to a network event structure (Section 3.1): the
// family becomes the consistency predicate and enabling relation via
// Winskel's Theorem 1.1.12, and g maps each event-set to the configuration
// of the vertex its paths reach.
func (e *ETS) ToNES() (*nes.NES, error) {
	family, err := e.Family()
	if err != nil {
		return nil, err
	}
	configs := make([]nes.Config, len(e.Vertices))
	for i, v := range e.Vertices {
		configs[i] = nes.Config{
			ID:     i,
			Label:  v.State.Key(),
			Tables: v.Tables,
			Rel:    &nkc.CompiledConfig{Tables: v.Tables, Topo: e.Topo},
		}
	}
	return nes.New(e.Events, family, configs)
}

// String summarizes the ETS.
func (e *ETS) String() string {
	s := fmt.Sprintf("ETS: %d states, %d transitions, %d events (initial %v)\n",
		len(e.Vertices), len(e.Edges), len(e.Events), e.Vertices[e.Init].State)
	for _, ed := range e.Edges {
		s += fmt.Sprintf("  %v --%v--> %v\n", e.Vertices[ed.From].State, e.Events[ed.Event], e.Vertices[ed.To].State)
	}
	return s
}
