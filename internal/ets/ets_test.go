package ets

import (
	"strings"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

func build(t *testing.T, a apps.App) *ETS {
	t.Helper()
	e, err := Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatalf("Build(%s): %v", a.Name, err)
	}
	return e
}

// TestFirewallETS checks the paper's description: the firewall ETS is
// {<[0]> --(dst=H4, 4:1)--> <[1]>}.
func TestFirewallETS(t *testing.T) {
	e := build(t, apps.Firewall())
	if len(e.Vertices) != 2 || len(e.Edges) != 1 || len(e.Events) != 1 {
		t.Fatalf("shape: %d vertices, %d edges, %d events\n%v", len(e.Vertices), len(e.Edges), len(e.Events), e)
	}
	ev := e.Events[0]
	if ev.Loc != (netkat.Location{Switch: 4, Port: 1}) {
		t.Errorf("event location %v, want 4:1", ev.Loc)
	}
	if v, ok := ev.Guard.Eq(apps.FieldDst); !ok || v != apps.H(4) {
		t.Errorf("event guard %v, want dst=H4", ev.Guard)
	}
	if !e.Vertices[e.Init].State.Equal(stateful.State{0}) {
		t.Errorf("initial state %v", e.Vertices[e.Init].State)
	}
}

// TestAuthenticationETS: {<[0]> --(dst=H1,1:1)--> <[1]> --(dst=H2,2:1)--> <[2]>}.
func TestAuthenticationETS(t *testing.T) {
	e := build(t, apps.Authentication())
	if len(e.Vertices) != 3 || len(e.Edges) != 2 || len(e.Events) != 2 {
		t.Fatalf("shape: %d vertices, %d edges, %d events\n%v", len(e.Vertices), len(e.Edges), len(e.Events), e)
	}
	locs := map[netkat.Location]bool{}
	for _, ev := range e.Events {
		locs[ev.Loc] = true
	}
	if !locs[netkat.Location{Switch: 1, Port: 1}] || !locs[netkat.Location{Switch: 2, Port: 1}] {
		t.Errorf("event locations: %v", locs)
	}
}

// TestBandwidthCapETS: the n=10 cap yields a 12-state chain of renamed
// occurrences of the same (dst=H4, 4:1) event (Section 5.1).
func TestBandwidthCapETS(t *testing.T) {
	e := build(t, apps.BandwidthCap(10))
	if len(e.Vertices) != 12 || len(e.Edges) != 11 || len(e.Events) != 11 {
		t.Fatalf("shape: %d vertices, %d edges, %d events", len(e.Vertices), len(e.Edges), len(e.Events))
	}
	// All events share guard and location but have distinct occurrences.
	occ := map[int]bool{}
	for _, ev := range e.Events {
		if ev.Loc != (netkat.Location{Switch: 4, Port: 1}) {
			t.Errorf("event loc %v", ev.Loc)
		}
		if occ[ev.Occurrence] {
			t.Errorf("duplicate occurrence %d", ev.Occurrence)
		}
		occ[ev.Occurrence] = true
	}
}

// TestIDSETS mirrors the paper: 3 states, events at 1:1 then 2:1.
func TestIDSETS(t *testing.T) {
	e := build(t, apps.IDS())
	if len(e.Vertices) != 3 || len(e.Edges) != 2 {
		t.Fatalf("shape: %d vertices, %d edges\n%v", len(e.Vertices), len(e.Edges), e)
	}
}

// TestLearningSwitchETS: two states, one event at 4:1.
func TestLearningSwitchETS(t *testing.T) {
	e := build(t, apps.LearningSwitch())
	if len(e.Vertices) != 2 || len(e.Edges) != 1 {
		t.Fatalf("shape: %d vertices, %d edges\n%v", len(e.Vertices), len(e.Edges), e)
	}
	if e.Events[0].Loc != (netkat.Location{Switch: 4, Port: 1}) {
		t.Errorf("event loc %v", e.Events[0].Loc)
	}
}

// TestRingETS: two states, one event at 2:2.
func TestRingETS(t *testing.T) {
	e := build(t, apps.Ring(3))
	if len(e.Vertices) != 2 || len(e.Edges) != 1 {
		t.Fatalf("shape: %d vertices, %d edges\n%v", len(e.Vertices), len(e.Edges), e)
	}
	if e.Events[0].Loc != (netkat.Location{Switch: 2, Port: 2}) {
		t.Errorf("event loc %v", e.Events[0].Loc)
	}
}

// TestAppsToNES: all five applications convert to valid, locally
// determined NESs whose event-sets (Definition 4) coincide with the
// family.
func TestAppsToNES(t *testing.T) {
	for _, a := range apps.All() {
		e := build(t, a)
		n, err := e.ToNES()
		if err != nil {
			t.Fatalf("%s: ToNES: %v", a.Name, err)
		}
		ld, err := n.LocallyDetermined()
		if err != nil {
			t.Fatalf("%s: LocallyDetermined: %v", a.Name, err)
		}
		if !ld {
			t.Errorf("%s: not locally determined", a.Name)
		}
		family := n.Family()
		sets := n.EventSets()
		if len(family) != len(sets) {
			t.Fatalf("%s: family (%d) and Definition-4 event-sets (%d) differ:\nfamily=%v\nsets=%v",
				a.Name, len(family), len(sets), family, sets)
		}
		for i := range family {
			if family[i] != sets[i] {
				t.Fatalf("%s: family member %v != event-set %v", a.Name, family[i], sets[i])
			}
		}
	}
}

// TestFirewallNESShape matches the worked example of Section 5.1:
// {E0 = {} -> E1 = {(dst=H4, 4:1)}}.
func TestFirewallNESShape(t *testing.T) {
	n, err := build(t, apps.Firewall()).ToNES()
	if err != nil {
		t.Fatal(err)
	}
	family := n.Family()
	if len(family) != 2 {
		t.Fatalf("family: %v", family)
	}
	if family[0] != nes.Empty || family[1] != nes.Singleton(0) {
		t.Fatalf("family: %v", family)
	}
	if c, ok := n.ConfigAt(nes.Empty); !ok || n.Configs[c].Label != "[0]" {
		t.Errorf("g(empty) = %v", c)
	}
	if c, ok := n.ConfigAt(nes.Singleton(0)); !ok || n.Configs[c].Label != "[1]" {
		t.Errorf("g({e0}) = %v", c)
	}
}

// TestFiniteCompletenessViolation builds the Figure 3(c) ETS, which
// violates finite-completeness, and checks it is rejected: e1 and e3 both
// below {e1,e4,e3} but {e1,e3} missing. We encode it directly with a
// hand-built program: three independent events cannot produce it, so we
// construct the family through a diamond-with-extra-event program and
// assert rejection.
func TestFiniteCompletenessViolation(t *testing.T) {
	// state encodes progress: two racing chains over distinct events where
	// the combined set only exists with the interposed e4:
	//   [0,0] --e1@s1--> [1,0] --e4@s2--> [1,2] --e3@s3--> [1,3]
	//   [0,0] --e3@s3--> [0,3]
	// Family: {}, {e1}, {e1,e4}, {e1,e4,e3}, {e3}; {e1} and {e3} have the
	// upper bound {e1,e4,e3} but {e1,e3} is absent.
	tp := topo.New()
	for _, s := range []int{1, 2, 3} {
		tp.AddSwitch(s)
	}
	tp.AddBiLink(netkat.Location{Switch: 1, Port: 1}, netkat.Location{Switch: 2, Port: 1})
	tp.AddBiLink(netkat.Location{Switch: 2, Port: 2}, netkat.Location{Switch: 3, Port: 1})
	tp.AddHost(topo.HostID(1), "H1", netkat.Location{Switch: 1, Port: 2})
	tp.AddHost(topo.HostID(3), "H3", netkat.Location{Switch: 3, Port: 2})

	st := func(i, v int) stateful.Pred { return stateful.PState{Index: i, Value: v} }
	prog := stateful.UnionC(
		// e1: packet a=1 from H1 arriving at s2 flips state(0) 0->1.
		// Disabled once e3 has occurred (state(2)=3), so the family never
		// contains {e1, e3}.
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.PAnd{L: st(0, 0), R: st(2, 0)}, R: stateful.PTest{Field: "a", Value: 1}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.CLinkState{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 2, Port: 1}, Sets: []stateful.StateSet{{Index: 0, Value: 1}}},
		),
		// e4: packet a=4 arriving at s3, only after e1.
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.PAnd{L: st(0, 1), R: st(1, 0)}, R: stateful.PTest{Field: "a", Value: 4}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 2},
			stateful.CLinkState{Src: netkat.Location{Switch: 2, Port: 2}, Dst: netkat.Location{Switch: 3, Port: 1}, Sets: []stateful.StateSet{{Index: 1, Value: 2}}},
		),
		// e3: packet a=3 arriving at s2 from s3 side; enabled initially and
		// after e4 — producing the incomplete family.
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.POr{L: stateful.PAnd{L: st(0, 0), R: st(1, 0)}, R: st(1, 2)}, R: stateful.PTest{Field: "a", Value: 3}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.CLinkState{Src: netkat.Location{Switch: 3, Port: 1}, Dst: netkat.Location{Switch: 2, Port: 2}, Sets: []stateful.StateSet{{Index: 2, Value: 3}}},
		),
	)
	e, err := Build(stateful.Program{Cmd: prog, Init: stateful.State{0, 0, 0}}, tp)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_, err = e.Family()
	if err == nil || !strings.Contains(err.Error(), "finite-complete") {
		t.Fatalf("expected finite-completeness rejection, got %v", err)
	}
}

// TestConfigUniquenessViolation: two events writing the same state index
// with different values make the event-set {e1,e2} reach different
// configurations depending on order — violating condition 1 of
// Section 3.1.
func TestConfigUniquenessViolation(t *testing.T) {
	tp := topo.Firewall()
	mkEdge := func(field, val int, stVal int) stateful.Cmd {
		return stateful.SeqC(
			stateful.CPred{P: stateful.PTest{Field: "a", Value: val}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.CLinkState{
				Src:  netkat.Location{Switch: 1, Port: 1},
				Dst:  netkat.Location{Switch: 4, Port: 1},
				Sets: []stateful.StateSet{{Index: 0, Value: stVal}},
			},
			stateful.CAssign{Field: netkat.FieldPt, Value: 2},
		)
	}
	// e1 (a=1) sets state(0)<-1; e2 (a=2) sets state(0)<-2; both enabled
	// in every state, so [1,2] vs [2,1] orders end in different states.
	// Forwarding differs between states so the configurations differ too.
	differ := stateful.SeqC(
		stateful.CPred{P: stateful.PAnd{L: stateful.PState{Index: 0, Value: 1}, R: stateful.PTest{Field: netkat.FieldPt, Value: 2}}},
		stateful.CPred{P: stateful.PTest{Field: "b", Value: 9}},
		stateful.CAssign{Field: netkat.FieldPt, Value: 1},
		stateful.CLink{Src: netkat.Location{Switch: 4, Port: 1}, Dst: netkat.Location{Switch: 1, Port: 1}},
		stateful.CAssign{Field: netkat.FieldPt, Value: 2},
	)
	prog := stateful.Program{
		Cmd:  stateful.UnionC(mkEdge(0, 1, 1), mkEdge(0, 2, 2), differ),
		Init: stateful.State{0},
	}
	e, err := Build(prog, tp)
	if err != nil {
		// Also acceptable: the builder may reject the program earlier
		// (the two orders give the same vertex different occurrence
		// counts), as long as it does not silently accept it.
		t.Logf("rejected at build: %v", err)
		return
	}
	if _, err := e.Family(); err == nil {
		t.Fatal("order-dependent configurations accepted")
	}
}

// TestDiamondNES: the distributed firewall converts to the Figure 3(a)
// diamond NES — four event-sets, two independent events, locally
// determined, with both interleavings allowed.
func TestDiamondNES(t *testing.T) {
	a := apps.DistributedFirewall()
	e := build(t, a)
	n, err := e.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Family()) != 4 || len(n.Events) != 2 {
		t.Fatalf("family %v, events %d", n.Family(), len(n.Events))
	}
	seqs, err := n.AllowedSequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 { // e0; e1; e0,e1; e1,e0
		t.Fatalf("allowed sequences: %v", seqs)
	}
	ld, err := n.LocallyDetermined()
	if err != nil {
		t.Fatal(err)
	}
	if !ld {
		t.Fatal("independent events flagged non-local")
	}
	mis, err := n.MinimallyInconsistent()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("diamond has inconsistent sets: %v", mis)
	}
}

// TestWalledGardenNES: two event-sets, valid and local.
func TestWalledGardenNES(t *testing.T) {
	n, err := build(t, apps.WalledGarden()).ToNES()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Family()) != 2 {
		t.Fatalf("family: %v", n.Family())
	}
}
