package ets

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// toggleProgram builds a cyclic two-state program over the firewall
// topology: arrivals of a=1 packets at 4:1 toggle the state back and
// forth. Both events occur at the same switch, so the SCC satisfies the
// locality restriction.
func toggleProgram() (stateful.Program, *topo.Topology) {
	tp := topo.Firewall()
	lnk := func(v int) stateful.Cmd {
		return stateful.CLinkState{
			Src:  netkat.Location{Switch: 1, Port: 1},
			Dst:  netkat.Location{Switch: 4, Port: 1},
			Sets: []stateful.StateSet{{Index: 0, Value: v}},
		}
	}
	prog := stateful.UnionC(
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.PTest{Field: netkat.FieldPt, Value: 2}, R: stateful.PTest{Field: "a", Value: 1}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.UnionC(
				stateful.SeqC(stateful.CPred{P: stateful.PState{Index: 0, Value: 0}}, lnk(1)),
				stateful.SeqC(stateful.CPred{P: stateful.PState{Index: 0, Value: 1}}, lnk(0)),
			),
			stateful.CAssign{Field: netkat.FieldPt, Value: 2},
		),
	)
	return stateful.Program{Cmd: prog, Init: stateful.State{0}}, tp
}

// crossSwitchToggle: the same loop but with the two events at different
// switches — violating per-SCC locality.
func crossSwitchToggle() (stateful.Program, *topo.Topology) {
	tp := topo.Firewall()
	prog := stateful.UnionC(
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.PState{Index: 0, Value: 0}, R: stateful.PTest{Field: "a", Value: 1}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.CLinkState{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}, Sets: []stateful.StateSet{{Index: 0, Value: 1}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 2},
		),
		stateful.SeqC(
			stateful.CPred{P: stateful.PAnd{L: stateful.PState{Index: 0, Value: 1}, R: stateful.PTest{Field: "a", Value: 2}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 1},
			stateful.CLinkState{Src: netkat.Location{Switch: 4, Port: 1}, Dst: netkat.Location{Switch: 1, Port: 1}, Sets: []stateful.StateSet{{Index: 0, Value: 0}}},
			stateful.CAssign{Field: netkat.FieldPt, Value: 2},
		),
	)
	return stateful.Program{Cmd: prog, Init: stateful.State{0}}, tp
}

func TestBuildRejectsLoops(t *testing.T) {
	prog, tp := toggleProgram()
	if _, err := Build(prog, tp); err == nil {
		t.Fatal("cyclic ETS accepted by the loop-free builder")
	}
}

func TestAnalyzeLoops(t *testing.T) {
	prog, _ := toggleProgram()
	rep, err := AnalyzeLoops(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasLoops {
		t.Fatal("toggle loop not detected")
	}
	if !rep.LocalityOK {
		t.Fatal("same-switch loop flagged non-local")
	}
	found := false
	for _, s := range rep.SCCs {
		if len(s.States) == 2 {
			found = true
			if len(s.EventSwitches) != 1 || s.EventSwitches[0] != 4 {
				t.Errorf("SCC event switches: %v", s.EventSwitches)
			}
		}
	}
	if !found {
		t.Fatalf("two-state SCC missing: %+v", rep.SCCs)
	}

	cross, _ := crossSwitchToggle()
	rep, err = AnalyzeLoops(cross)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalityOK {
		t.Fatal("cross-switch loop passed the locality check")
	}

	// Loop-free programs report no loops.
	a := apps.Firewall()
	rep, err = AnalyzeLoops(a.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasLoops {
		t.Fatal("firewall reported loops")
	}
}

// TestBuildUnrolled: unrolling the toggle to 3 rounds produces a chain
// 0 -> 1 -> 0' -> 1' with renamed occurrences, which converts to a valid
// NES.
func TestBuildUnrolled(t *testing.T) {
	prog, tp := toggleProgram()
	e, err := BuildUnrolled(prog, tp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Vertices) != 4 || len(e.Edges) != 3 || len(e.Events) != 3 {
		t.Fatalf("shape: %d vertices, %d edges, %d events\n%v", len(e.Vertices), len(e.Edges), len(e.Events), e)
	}
	// Occurrences 1 and 2 of the 0->1 guard, occurrence 1 of the other.
	occ := map[string]int{}
	for _, ev := range e.Events {
		key := ev.Guard.Key()
		if ev.Occurrence > occ[key] {
			occ[key] = ev.Occurrence
		}
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Family()) != 4 {
		t.Fatalf("family: %v", n.Family())
	}
	ld, err := n.LocallyDetermined()
	if err != nil {
		t.Fatal(err)
	}
	if !ld {
		t.Fatal("unrolled toggle not locally determined")
	}
}

// TestBuildUnrolledMatchesBuild: on a loop-free program with enough
// rounds, unrolling yields the same shape as the direct builder.
func TestBuildUnrolledMatchesBuild(t *testing.T) {
	a := apps.Authentication()
	direct, err := Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := BuildUnrolled(a.Prog, a.Topo, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Vertices) != len(unrolled.Vertices) ||
		len(direct.Edges) != len(unrolled.Edges) ||
		len(direct.Events) != len(unrolled.Events) {
		t.Fatalf("shapes differ: direct %d/%d/%d vs unrolled %d/%d/%d",
			len(direct.Vertices), len(direct.Edges), len(direct.Events),
			len(unrolled.Vertices), len(unrolled.Edges), len(unrolled.Events))
	}
}

// TestUnrolledToggleRuns: the unrolled toggle executes on the Figure 7
// machine; each a=1 packet flips the configuration until the unroll bound
// is exhausted.
func TestUnrolledToggleRuns(t *testing.T) {
	prog, tp := toggleProgram()
	e, err := BuildUnrolled(prog, tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.ToNES()
	if err != nil {
		t.Fatal(err)
	}
	// The initial and second configurations have distinct labels but the
	// same state content alternates.
	if e.Vertices[0].State.Key() != "[0]" || e.Vertices[1].State.Key() != "[1]" {
		t.Fatalf("vertex states: %v %v", e.Vertices[0].State, e.Vertices[1].State)
	}
	if c, ok := n.ConfigAt(nes.Empty); !ok || n.Configs[c].Label != "[0]" {
		t.Fatal("initial config wrong")
	}
}
