package ets_test

import (
	"fmt"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
)

// ExampleBuild compiles the bandwidth-cap application with cap 20 (22
// reachable states) on a single worker and reports the incremental
// engine's cache statistics: adjacent states differ only in which
// counter guard holds, so nearly every strand segment is reused by its
// structural (segment rendering, guard signature) key — including across
// strand positions that contain the same link-free command — and the
// whole run performs just four distinct symbolic strand executions.
// (With the default worker count the same tables come out, but hit/miss
// attribution across workers is scheduling-dependent.)
func ExampleBuild() {
	a := apps.BandwidthCap(20)
	e, stats, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("states=%d events=%d\n", len(e.Vertices), len(e.Events))
	fmt.Printf("segment cache: %d hits / %d misses\n", stats.Cache.SegmentHits, stats.Cache.SegmentMisses)
	fmt.Printf("distinct strand executions: %d\n", stats.Cache.Strands)
	// Output:
	// states=22 events=21
	// segment cache: 965 hits / 47 misses
	// distinct strand executions: 4
}
