package ets

import (
	"testing"

	"eventnet/internal/apps"
)

// BenchmarkBuild isolates ETS construction (exploration + incremental
// compilation, without the NES conversion) on the stateful-scale
// workloads. CHANGES.md tracks the trajectory: at PR 1 the from-scratch
// pipeline took ~15.3 ms on bandwidth-cap-80 (measured on this container
// with only the event-set cap lifted); the incremental sharded engine
// landed at ~3.7 ms.
func BenchmarkBuild(b *testing.B) {
	cases := []apps.App{apps.IDS(), apps.BandwidthCap(80), apps.BandwidthCap(200), apps.IDSFatTree(4)}
	for _, a := range cases {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(a.Prog, a.Topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
