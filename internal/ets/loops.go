package ets

import (
	"fmt"
	"sort"

	"eventnet/internal/nes"

	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Loop support (Section 3.1): the paper's core development assumes
// loop-free ETSs, and sketches two extensions — enforcing the locality
// restriction on every (non-singleton) strongly-connected component so
// that event occurrences can be timestamped at a single switch, and
// unrolling loops by renaming repeated events. This file implements both:
// AnalyzeLoops computes the SCC structure and checks per-SCC locality, and
// BuildUnrolled produces a loop-free ETS by bounding the number of
// transitions, with each traversal of a loop yielding fresh renamed event
// occurrences.

// SCC is one strongly-connected component of the state graph.
type SCC struct {
	States    []string // state-vector keys
	Singleton bool     // single state with no self-loop
	// EventSwitches are the switches where the SCC's internal events
	// occur; locality requires a single switch for non-singleton SCCs.
	EventSwitches []int
}

// LoopReport summarizes the loop structure of a program's state graph.
type LoopReport struct {
	SCCs     []SCC
	HasLoops bool
	// LocalityOK reports whether every non-singleton SCC has all its
	// internal events at one switch (the paper's condition for the
	// timestamping implementation).
	LocalityOK bool
}

// AnalyzeLoops computes the SCC structure of the program's reachable
// state graph.
func AnalyzeLoops(p stateful.Program) (*LoopReport, error) {
	states, edges, err := p.ReachableStates()
	if err != nil {
		return nil, err
	}
	idx := map[string]int{}
	for i, s := range states {
		idx[s.Key()] = i
	}
	adj := make([][]int, len(states))
	type edgeInfo struct {
		from, to int
		sw       int
	}
	var einfo []edgeInfo
	for _, e := range edges {
		f, t := idx[e.From.Key()], idx[e.To.Key()]
		adj[f] = append(adj[f], t)
		einfo = append(einfo, edgeInfo{from: f, to: t, sw: e.Loc.Switch})
	}

	comp := tarjan(len(states), adj)
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	members := make([][]int, nComp)
	for v, c := range comp {
		members[c] = append(members[c], v)
	}

	report := &LoopReport{LocalityOK: true}
	for _, vs := range members {
		scc := SCC{Singleton: len(vs) == 1}
		for _, v := range vs {
			scc.States = append(scc.States, states[v].Key())
		}
		sort.Strings(scc.States)
		swSet := map[int]bool{}
		for _, e := range einfo {
			if comp[e.from] == comp[e.to] && comp[e.from] == comp[vs[0]] {
				swSet[e.sw] = true
				scc.Singleton = false
			}
		}
		for sw := range swSet {
			scc.EventSwitches = append(scc.EventSwitches, sw)
		}
		sort.Ints(scc.EventSwitches)
		if !scc.Singleton {
			report.HasLoops = true
			if len(scc.EventSwitches) > 1 {
				report.LocalityOK = false
			}
		}
		report.SCCs = append(report.SCCs, scc)
	}
	sort.Slice(report.SCCs, func(i, j int) bool { return report.SCCs[i].States[0] < report.SCCs[j].States[0] })
	return report, nil
}

// tarjan computes strongly-connected components, returning a component
// index per vertex.
func tarjan(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	counter, nComp := 0, 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == unvisited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strong(v)
		}
	}
	return comp
}

// maxUnrollVertices bounds the unrolled state space.
const maxUnrollVertices = 10000

// BuildUnrolled builds a loop-free ETS from a (possibly cyclic) program
// by bounding the number of transitions to maxRounds: vertices are
// (state, transitions-taken) pairs, so each traversal of a loop produces
// fresh renamed event occurrences — the Section 3.1 unrolling. The
// resulting NES is a sound under-approximation: it implements the program
// faithfully for executions with at most maxRounds events.
func BuildUnrolled(p stateful.Program, t *topo.Topology, maxRounds int) (*ETS, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("ets: maxRounds must be positive")
	}
	e := &ETS{Init: 0, Topo: t}

	type key struct {
		state string
		round int
	}
	vid := map[key]int{}
	compiled := map[string]Vertex{} // per-state compile cache (shared tables)
	// Incremental compiler: unrolled copies of a state share its guard
	// signature, so every revisit is a whole-table cache hit.
	pc, err := nkc.NewProgramCompiler(p.Cmd, t, nil)
	if err != nil {
		return nil, err
	}
	var raw []rawEdge

	addVertex := func(k stateful.State, round int) (int, error) {
		kk := key{state: k.Key(), round: round}
		if id, ok := vid[kk]; ok {
			return id, nil
		}
		base, ok := compiled[k.Key()]
		if !ok {
			tables, err := pc.Compile(k)
			if err != nil {
				return 0, fmt.Errorf("ets: compiling configuration for state %v: %w", k, err)
			}
			base = Vertex{State: k, Tables: tables}
			compiled[k.Key()] = base
		}
		id := len(e.Vertices)
		if id >= maxUnrollVertices {
			return 0, fmt.Errorf("ets: unrolled state space exceeds %d vertices", maxUnrollVertices)
		}
		e.Vertices = append(e.Vertices, Vertex{ID: id, State: base.State, Tables: base.Tables})
		vid[kk] = id
		return id, nil
	}

	initID, err := addVertex(p.Init, 0)
	if err != nil {
		return nil, err
	}
	type qitem struct {
		state stateful.State
		round int
		id    int
	}
	queue := []qitem{{state: p.Init, round: 0, id: initID}}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.round >= maxRounds {
			continue
		}
		edges, err := stateful.Events(p.Cmd, cur.state)
		if err != nil {
			return nil, err
		}
		for _, ed := range edges {
			if ed.To.Equal(ed.From) {
				continue
			}
			toID, ok := vid[key{state: ed.To.Key(), round: cur.round + 1}]
			if !ok {
				toID, err = addVertex(ed.To, cur.round+1)
				if err != nil {
					return nil, err
				}
				queue = append(queue, qitem{state: ed.To, round: cur.round + 1, id: toID})
			}
			raw = append(raw, rawEdge{
				from:     cur.id,
				to:       toID,
				guardKey: ed.Guard.Key() + "@" + ed.Loc.String(),
				guard:    ed.Guard,
				loc:      ed.Loc,
			})
		}
	}
	if err := checkAcyclic(len(e.Vertices), raw, e.Init); err != nil {
		return nil, err
	}
	if err := e.finish(raw); err != nil {
		return nil, err
	}
	return e, nil
}

// finish performs occurrence renaming and event-ID assignment over raw
// edges (shared by Build and BuildUnrolled).
func (e *ETS) finish(raw []rawEdge) error {
	counts := make([]map[string]int, len(e.Vertices))
	counts[e.Init] = map[string]int{}
	order := []int{e.Init}
	seen := map[int]bool{e.Init: true}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, r := range raw {
			if r.from != v {
				continue
			}
			next := map[string]int{}
			for k2, c := range counts[v] {
				next[k2] = c
			}
			next[r.guardKey]++
			if !seen[r.to] {
				seen[r.to] = true
				counts[r.to] = next
				order = append(order, r.to)
			} else if !sameCounts(counts[r.to], next) {
				return fmt.Errorf("ets: ambiguous event occurrence counts at state %v (two paths disagree)", e.Vertices[r.to].State)
			}
		}
	}
	eventID := map[string]int{}
	for _, v := range order {
		for _, r := range raw {
			if r.from != v {
				continue
			}
			occ := counts[v][r.guardKey] + 1
			key := fmt.Sprintf("%s#%d", r.guardKey, occ)
			id, ok := eventID[key]
			if !ok {
				id = len(e.Events)
				if id >= nes.MaxEvents {
					return fmt.Errorf("ets: program needs more than %d events", nes.MaxEvents)
				}
				eventID[key] = id
				e.Events = append(e.Events, nes.Event{ID: id, Guard: r.guard, Loc: r.loc, Occurrence: occ})
			}
			e.Edges = append(e.Edges, Edge{From: r.from, To: r.to, Event: id})
		}
	}
	sort.Slice(e.Edges, func(i, j int) bool {
		if e.Edges[i].From != e.Edges[j].From {
			return e.Edges[i].From < e.Edges[j].From
		}
		return e.Edges[i].Event < e.Edges[j].Event
	})
	return nil
}
