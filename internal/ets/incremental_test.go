package ets

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
)

// incrementalApps are the correctness set for the incremental engine: the
// five paper applications, the ring, and the scale workloads.
func incrementalApps() []apps.App {
	out := apps.All()
	out = append(out, apps.Ring(3), apps.WalledGarden(), apps.DistributedFirewall(), apps.IDSFatTree(4), apps.BandwidthCap(40))
	return out
}

// TestIncrementalMatchesFromScratch is the acceptance property for the
// delta path: on every reachable state of every application, the tables
// the incremental engine produced are byte-identical to a from-scratch
// CompileFDD of the projected policy. Together with the existing
// CompileFDD-vs-DNF relational property (nkc.TestCompileFDDMatchesDNFOnApps,
// which drives both backends' tables as configuration relations on every
// reachable state), this pins the incremental path to the DNF oracle too.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	for _, a := range incrementalApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			e, err := Build(a.Prog, a.Topo)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range e.Vertices {
				pol := stateful.Project(a.Prog.Cmd, v.State)
				scratch, err := nkc.CompileFDD(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: from-scratch compile: %v", v.State, err)
				}
				if got, want := v.Tables.String(), scratch.String(); got != want {
					t.Fatalf("state %v: incremental tables differ from from-scratch FDD tables\nincremental:\n%s\nscratch:\n%s", v.State, got, want)
				}
			}
		})
	}
}

// TestIncrementalMatchesDNFRuleCounts: the incremental path preserves the
// FDD backend's exact rule-count agreement with the DNF oracle on the
// paper's five applications.
func TestIncrementalMatchesDNFRuleCounts(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			e, err := Build(a.Prog, a.Topo)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range e.Vertices {
				pol := stateful.Project(a.Prog.Cmd, v.State)
				dnf, err := nkc.CompileDNF(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: DNF compile: %v", v.State, err)
				}
				if got, want := v.Tables.TotalRules(), dnf.TotalRules(); got != want {
					t.Fatalf("state %v: %d rules incremental vs %d DNF", v.State, got, want)
				}
			}
		})
	}
}

// TestBuildDeterministic: the sharded work-stealing engine produces the
// same ETS — vertex numbering, tables, edges, and renamed events — for
// any worker count, including oversubscribed pools.
func TestBuildDeterministic(t *testing.T) {
	for _, a := range incrementalApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			ref, _, err := BuildWithOptions(a.Prog, a.Topo, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				e, _, err := BuildWithOptions(a.Prog, a.Topo, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if e.String() != ref.String() {
					t.Fatalf("workers=%d: ETS differs from single-worker build\n%s\nvs\n%s", workers, e.String(), ref.String())
				}
				if len(e.Vertices) != len(ref.Vertices) {
					t.Fatalf("workers=%d: vertex count", workers)
				}
				for i := range e.Vertices {
					if e.Vertices[i].Tables.String() != ref.Vertices[i].Tables.String() {
						t.Fatalf("workers=%d: tables of vertex %d differ", workers, i)
					}
				}
			}
		})
	}
}

// TestBuildDNFBackend: the engine respects the backend selector — with
// the DNF reference backend forced, the build still succeeds and agrees
// with per-state CompileDNF.
func TestBuildDNFBackend(t *testing.T) {
	old := nkc.DefaultBackend
	nkc.DefaultBackend = nkc.BackendDNF
	defer func() { nkc.DefaultBackend = old }()
	a := apps.Firewall()
	e, err := Build(a.Prog, a.Topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Vertices {
		dnf, err := nkc.CompileDNF(stateful.Project(a.Prog.Cmd, v.State), a.Topo)
		if err != nil {
			t.Fatal(err)
		}
		if v.Tables.String() != dnf.String() {
			t.Fatalf("state %v: DNF-backend build differs from CompileDNF", v.State)
		}
	}
}

// TestBuildStats: the stats of a single-worker build account exactly for
// the explored graph.
func TestBuildStats(t *testing.T) {
	a := apps.BandwidthCap(10)
	e, stats, err := BuildWithOptions(a.Prog, a.Topo, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.States != len(e.Vertices) || stats.Edges != len(e.Edges) || stats.Events != len(e.Events) {
		t.Fatalf("stats %v disagree with ETS shape %d/%d/%d", stats, len(e.Vertices), len(e.Edges), len(e.Events))
	}
	if stats.Cache.TableMisses != int64(stats.Configs) {
		t.Fatalf("distinct configs %d vs table misses %d", stats.Configs, stats.Cache.TableMisses)
	}
	if stats.Cache.TableHits+stats.Cache.TableMisses != int64(stats.States) {
		t.Fatalf("table lookups %d+%d do not cover %d states",
			stats.Cache.TableHits, stats.Cache.TableMisses, stats.States)
	}
	if stats.Steals != 0 {
		t.Fatalf("single worker stole %d items", stats.Steals)
	}
}
