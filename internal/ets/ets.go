// Package ets implements event-driven transition systems (Definition 7 of
// the paper): graphs whose vertices are labeled with network
// configurations and whose edges are labeled with events. It builds an ETS
// from a Stateful NetKAT program (Section 3.3), checks the two conditions
// under which the ETS's family of event-sets forms a valid NES
// (Section 3.1), and performs the conversion to an NES.
package ets

import (
	"fmt"
	"runtime"
	"sync"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/nkc"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Vertex is an ETS node: a state vector together with its configuration
// (both as a projected NetKAT policy and as compiled flow tables).
type Vertex struct {
	ID     int
	State  stateful.State
	Policy netkat.Policy
	Tables flowtable.Tables
}

// Edge is an ETS transition labeled with an event occurrence.
type Edge struct {
	From, To int // vertex IDs
	Event    int // event ID in the ETS's event universe
}

// ETS is an event-driven transition system.
type ETS struct {
	Vertices []Vertex
	Edges    []Edge
	Events   []nes.Event
	Init     int
	Topo     *topo.Topology
}

// Build constructs the ETS of a Stateful NetKAT program over a topology
// (the ETS(p) function of Section 3.3): vertices are the reachable state
// vectors with their projected-and-compiled configurations; edges carry
// occurrence-renamed events (Section 3.1's renaming for events encountered
// multiple times along an execution).
func Build(p stateful.Program, t *topo.Topology) (*ETS, error) {
	states, edges, err := p.ReachableStates()
	if err != nil {
		return nil, err
	}
	e := &ETS{Init: 0, Topo: t}
	vid := map[string]int{}
	verts, err := compileVertices(p, t, states)
	if err != nil {
		return nil, err
	}
	e.Vertices = verts
	for i, k := range states {
		vid[k.Key()] = i
	}

	// Adjacency on raw (un-renamed) edges.
	var raw []rawEdge
	for _, ed := range edges {
		f, ok := vid[ed.From.Key()]
		if !ok {
			continue
		}
		t2, ok := vid[ed.To.Key()]
		if !ok {
			return nil, fmt.Errorf("ets: edge target state %v not reachable", ed.To)
		}
		raw = append(raw, rawEdge{from: f, to: t2, guardKey: ed.Guard.Key() + "@" + ed.Loc.String(), guard: ed.Guard, loc: ed.Loc})
	}

	if err := checkAcyclic(len(e.Vertices), raw, e.Init); err != nil {
		return nil, err
	}
	if err := e.finish(raw); err != nil {
		return nil, err
	}
	return e, nil
}

// compileVertices projects and compiles every reachable state's
// configuration on a bounded worker pool (at most one worker per CPU).
// Per-state compiles are independent — Project is pure and each
// nkc.Compile builds its own FDD context — so the ETS build scales with
// cores; vertex order (and hence every downstream ID) is preserved.
func compileVertices(p stateful.Program, t *topo.Topology, states []stateful.State) ([]Vertex, error) {
	verts := make([]Vertex, len(states))
	errs := make([]error, len(states))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(states) {
		workers = len(states)
	}
	if workers <= 1 {
		comp := nkc.NewCompiler()
		for i, k := range states {
			compileVertex(comp, p, t, k, i, verts, errs)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				comp := nkc.NewCompiler()
				for i := range idx {
					compileVertex(comp, p, t, states[i], i, verts, errs)
				}
			}()
		}
		for i := range states {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return verts, nil
}

func compileVertex(comp *nkc.Compiler, p stateful.Program, t *topo.Topology, k stateful.State, i int, verts []Vertex, errs []error) {
	pol := stateful.Project(p.Cmd, k)
	tables, err := comp.Compile(pol, t)
	if err != nil {
		errs[i] = fmt.Errorf("ets: compiling configuration for state %v: %w", k, err)
		return
	}
	verts[i] = Vertex{ID: i, State: k, Policy: pol, Tables: tables}
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// rawEdge is an un-renamed transition during ETS construction.
type rawEdge struct {
	from, to int
	guardKey string
	guard    *netkat.Conj
	loc      netkat.Location
}

// checkAcyclic rejects ETSs with loops (this paper's implementation, like
// the paper's prototype, handles loop-free ETSs; Section 3.1 sketches the
// SCC/timestamp extension).
func checkAcyclic(nv int, raw []rawEdge, init int) error {
	adj := make(map[int][]int, nv)
	for _, r := range raw {
		adj[r.from] = append(adj[r.from], r.to)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, nv)
	var dfs func(v int) error
	dfs = func(v int) error {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				return fmt.Errorf("ets: the transition system has a loop through state %d (loop-free ETSs required)", w)
			case white:
				if err := dfs(w); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	return dfs(init)
}
