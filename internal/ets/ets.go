// Package ets implements event-driven transition systems (Definition 7 of
// the paper): graphs whose vertices are labeled with network
// configurations and whose edges are labeled with events. It builds an ETS
// from a Stateful NetKAT program (Section 3.3), checks the two conditions
// under which the ETS's family of event-sets forms a valid NES
// (Section 3.1), and performs the conversion to an NES.
//
// Construction runs on an incremental, sharded engine (build.go):
// reachable-state exploration and per-state configuration compilation
// overlap on a work-stealing pool, and per-worker nkc.ProgramCompilers
// reuse FDDs and tables across states through guard-signature caches —
// see docs/PIPELINE.md for the full pipeline, the cache design, and the
// sharding/dedup invariants.
package ets

import (
	"fmt"

	"eventnet/internal/flowtable"
	"eventnet/internal/nes"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Vertex is an ETS node: a state vector together with its compiled
// configuration. The projected NetKAT policy is not materialized (it is
// derivable as stateful.Project(cmd, State) and was dead weight at scale
// — an O(|program|) AST per state); Tables may be shared between vertices
// whose states project identically and must be treated as immutable.
type Vertex struct {
	ID     int
	State  stateful.State
	Tables flowtable.Tables
}

// Edge is an ETS transition labeled with an event occurrence.
type Edge struct {
	From, To int // vertex IDs
	Event    int // event ID in the ETS's event universe
}

// ETS is an event-driven transition system.
type ETS struct {
	Vertices []Vertex
	Edges    []Edge
	Events   []nes.Event
	Init     int
	Topo     *topo.Topology
}

// Build constructs the ETS of a Stateful NetKAT program over a topology
// (the ETS(p) function of Section 3.3): vertices are the reachable state
// vectors with their projected-and-compiled configurations; edges carry
// occurrence-renamed events (Section 3.1's renaming for events encountered
// multiple times along an execution). Exploration and compilation run on
// the incremental sharded engine (see BuildWithOptions); the result is
// deterministic regardless of worker count.
func Build(p stateful.Program, t *topo.Topology) (*ETS, error) {
	e, _, err := BuildWithOptions(p, t, Options{})
	return e, err
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// rawEdge is an un-renamed transition during ETS construction.
type rawEdge struct {
	from, to int
	guardKey string
	guard    *netkat.Conj
	loc      netkat.Location
}

// checkAcyclic rejects ETSs with loops (this paper's implementation, like
// the paper's prototype, handles loop-free ETSs; Section 3.1 sketches the
// SCC/timestamp extension).
func checkAcyclic(nv int, raw []rawEdge, init int) error {
	adj := make(map[int][]int, nv)
	for _, r := range raw {
		adj[r.from] = append(adj[r.from], r.to)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, nv)
	var dfs func(v int) error
	dfs = func(v int) error {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				return fmt.Errorf("ets: the transition system has a loop through state %d (loop-free ETSs required)", w)
			case white:
				if err := dfs(w); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	return dfs(init)
}
