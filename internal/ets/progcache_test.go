package ets_test

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/nkc"
)

// assertSameETS compares two builds structurally (states, tables, edges,
// events).
func assertSameETS(t *testing.T, a, b *ets.ETS, ctx string) {
	t.Helper()
	if len(a.Vertices) != len(b.Vertices) || len(a.Edges) != len(b.Edges) || len(a.Events) != len(b.Events) {
		t.Fatalf("%s: shape differs: %d/%d/%d vs %d/%d/%d", ctx,
			len(a.Vertices), len(a.Edges), len(a.Events), len(b.Vertices), len(b.Edges), len(b.Events))
	}
	for i := range a.Vertices {
		if a.Vertices[i].State.Key() != b.Vertices[i].State.Key() {
			t.Fatalf("%s: vertex %d state %v vs %v", ctx, i, a.Vertices[i].State, b.Vertices[i].State)
		}
		if a.Vertices[i].Tables.String() != b.Vertices[i].Tables.String() {
			t.Fatalf("%s: vertex %d tables differ", ctx, i)
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", ctx, i, a.Edges[i], b.Edges[i])
		}
	}
}

// TestBuildWithProgramCache: the cross-generation compiler cache behind
// live swaps. A cached build is byte-identical to an uncached one; a
// rebuild of the same program compiles nothing; and a *revision* (cap 40
// -> cap 41) compiles as a delta — it re-enters ToFDD for strictly fewer
// segments than a cold build, because the structural segment memo is
// shared across programs.
func TestBuildWithProgramCache(t *testing.T) {
	cache := nkc.NewProgramCache()
	a := apps.BandwidthCap(40)

	cached, s1, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameETS(t, plain, cached, "cached vs uncached")
	if s1.Cache.TableMisses == 0 {
		t.Fatalf("first cached build did no work: %+v", s1.Cache)
	}

	// Same program again: the swap-back path. Nothing recompiles.
	again, s2, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	assertSameETS(t, plain, again, "rebuild")
	if s2.Cache.TableMisses != 0 || s2.Cache.SegmentMisses != 0 {
		t.Fatalf("rebuild recompiled: %+v", s2.Cache)
	}

	// A revision: cap 41 shares every counter segment up to 40 with the
	// cached program, so warm segment misses are strictly fewer than cold.
	b := apps.BandwidthCap(41)
	if _, s3, err := ets.BuildWithOptions(b.Prog, b.Topo, ets.Options{Workers: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	} else {
		cold := nkc.NewProgramCache()
		_, s4, err := ets.BuildWithOptions(b.Prog, b.Topo, ets.Options{Workers: 1, Cache: cold})
		if err != nil {
			t.Fatal(err)
		}
		if s3.Cache.SegmentMisses >= s4.Cache.SegmentMisses {
			t.Fatalf("revision did not compile as a delta: warm %d misses, cold %d", s3.Cache.SegmentMisses, s4.Cache.SegmentMisses)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d programs, want 2", cache.Len())
	}

	// Multi-worker cached builds stay deterministic.
	multi, _, err := ets.BuildWithOptions(a.Prog, a.Topo, ets.Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	assertSameETS(t, plain, multi, "cached 4-worker")
}
