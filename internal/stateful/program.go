package stateful

import (
	"fmt"
	"sort"
)

// Program is a Stateful NetKAT program together with its initial state
// vector ~k0.
type Program struct {
	Cmd  Cmd
	Init State
}

// MaxStates bounds reachable-state enumeration, here and in the sharded
// explorer of internal/ets.
const MaxStates = 4096

// ReachableStates explores the state space from the initial vector via the
// program's event-edges, returning the reachable states in BFS order and
// every edge between reachable states.
func (p Program) ReachableStates() ([]State, []Edge, error) {
	seen := map[string]bool{p.Init.Key(): true}
	order := []State{p.Init.Clone()}
	var edges []Edge
	queue := []State{p.Init.Clone()}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		es, err := Events(p.Cmd, k)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range es {
			if e.To.Equal(e.From) {
				// A self-loop updates the state to itself; it is not a
				// transition in the ETS sense.
				continue
			}
			edges = append(edges, e)
			if !seen[e.To.Key()] {
				seen[e.To.Key()] = true
				order = append(order, e.To.Clone())
				queue = append(queue, e.To.Clone())
				if len(order) > MaxStates {
					return nil, nil, fmt.Errorf("stateful: more than %d reachable states", MaxStates)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Key() < edges[j].Key() })
	return order, edges, nil
}

// StateIndices returns the sorted state-vector indices mentioned by the
// program (tests and link updates).
func StateIndices(c Cmd) []int {
	set := map[int]bool{}
	var walkPred func(Pred)
	walkPred = func(p Pred) {
		switch q := p.(type) {
		case PState:
			set[q.Index] = true
		case PNot:
			walkPred(q.P)
		case PAnd:
			walkPred(q.L)
			walkPred(q.R)
		case POr:
			walkPred(q.L)
			walkPred(q.R)
		}
	}
	var walk func(Cmd)
	walk = func(c Cmd) {
		switch q := c.(type) {
		case CPred:
			walkPred(q.P)
		case CUnion:
			walk(q.L)
			walk(q.R)
		case CSeq:
			walk(q.L)
			walk(q.R)
		case CStar:
			walk(q.P)
		case CLinkState:
			for _, s := range q.Sets {
				set[s.Index] = true
			}
		}
	}
	walk(c)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// VecPred builds the vector-equality test state = [v0, v1, ...] as a
// conjunction of indexed state tests (the state=[n] sugar of Figure 9).
func VecPred(vals ...int) Pred {
	var out Pred = PTrue{}
	for i, v := range vals {
		t := PState{Index: i, Value: v}
		if i == 0 {
			out = t
		} else {
			out = PAnd{out, t}
		}
	}
	return out
}

// VecSets builds the vector assignment state <- [v0, v1, ...] as a list of
// per-index updates for a CLinkState.
func VecSets(vals ...int) []StateSet {
	out := make([]StateSet, len(vals))
	for i, v := range vals {
		out[i] = StateSet{Index: i, Value: v}
	}
	return out
}

// SeqC folds commands with CSeq; the empty list is the test true.
func SeqC(cs ...Cmd) Cmd {
	if len(cs) == 0 {
		return CPred{PTrue{}}
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = CSeq{out, c}
	}
	return out
}

// UnionC folds commands with CUnion; the empty list is the test false.
func UnionC(cs ...Cmd) Cmd {
	if len(cs) == 0 {
		return CPred{PFalse{}}
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = CUnion{out, c}
	}
	return out
}
