package stateful

import (
	"reflect"
	"testing"
)

func guardProg() Cmd {
	return UnionC(
		SeqC(CPred{P: PState{Index: 0, Value: 0}}, CAssign{Field: "x", Value: 1}),
		SeqC(CPred{P: PNot{P: PState{Index: 1, Value: 2}}}, CAssign{Field: "x", Value: 2}),
		CStar{P: CPred{P: PAnd{L: PState{Index: 0, Value: 3}, R: PTest{Field: "y", Value: 1}}}},
	)
}

func TestCollectGuards(t *testing.T) {
	g := CollectGuards(guardProg())
	want := []GuardTest{{0, 0}, {0, 3}, {1, 2}}
	if !reflect.DeepEqual(g.Tests(), want) {
		t.Fatalf("tests: %v", g.Tests())
	}
	if g.Len() != 3 {
		t.Fatalf("len: %d", g.Len())
	}
	if CollectGuards(CAssign{Field: "x", Value: 1}).Len() != 0 {
		t.Fatal("state-free command has guards")
	}
}

// TestSigProjectionInvariant: equal signatures imply structurally equal
// projections — the soundness condition for every signature-keyed cache.
func TestSigProjectionInvariant(t *testing.T) {
	c := guardProg()
	g := CollectGuards(c)
	states := []State{{0, 0}, {0, 2}, {3, 1}, {1, 2}, {0, 5}, {9, 9}, {3, 2}}
	for _, a := range states {
		for _, b := range states {
			sameSig := g.Sig(a) == g.Sig(b)
			sameProj := reflect.DeepEqual(Project(c, a), Project(c, b))
			if sameSig != sameProj {
				t.Fatalf("states %v/%v: sameSig=%v sameProj=%v", a, b, sameSig, sameProj)
			}
			if sameSig != (len(g.Diff(a, b)) == 0) {
				t.Fatalf("states %v/%v: Diff disagrees with Sig", a, b)
			}
		}
	}
}

func TestGuardDiff(t *testing.T) {
	g := CollectGuards(guardProg())
	// [0,x] -> [3,x]: state(0)=0 flips off, state(0)=3 flips on.
	d := g.Diff(State{0, 7}, State{3, 7})
	if !reflect.DeepEqual(d, []GuardTest{{0, 0}, {0, 3}}) {
		t.Fatalf("diff: %v", d)
	}
	if g.Diff(State{0, 1}, State{0, 1}) != nil {
		t.Fatal("self diff nonempty")
	}
	// Flipping index 1 to the tested value 2 changes only that test.
	d = g.Diff(State{0, 1}, State{0, 2})
	if !reflect.DeepEqual(d, []GuardTest{{1, 2}}) {
		t.Fatalf("diff: %v", d)
	}
}

func TestSigPacking(t *testing.T) {
	// More than 8 tests exercises multi-byte packing.
	var cs []Cmd
	for i := 0; i < 12; i++ {
		cs = append(cs, CPred{P: PState{Index: i, Value: 1}})
	}
	g := CollectGuards(UnionC(cs...))
	if g.Len() != 12 {
		t.Fatalf("len: %d", g.Len())
	}
	all := make(State, 12)
	for i := range all {
		all[i] = 1
	}
	if g.Sig(all) == g.Sig(State{}) {
		t.Fatal("distinct truth vectors share a signature")
	}
	if len(g.Sig(all)) != 2 {
		t.Fatalf("12 tests should pack into 2 bytes, got %d", len(g.Sig(all)))
	}
}
