package stateful

import (
	"math/rand"
	"testing"

	"eventnet/internal/netkat"
)

func loc(sw, pt int) netkat.Location { return netkat.Location{Switch: sw, Port: pt} }

func TestStateOps(t *testing.T) {
	s := State{0, 1}
	if s.Get(0) != 0 || s.Get(1) != 1 || s.Get(5) != 0 {
		t.Error("Get broken")
	}
	u := s.With(2, 7)
	if u.Get(2) != 7 || s.Get(2) != 0 {
		t.Error("With must not mutate")
	}
	if !s.Equal(State{0, 1, 0}) {
		t.Error("Equal must zero-pad")
	}
	if s.Key() != "[0,1]" {
		t.Errorf("Key: %q", s.Key())
	}
}

// TestProjectFigure5 checks the projection rules: state tests resolve
// against k, and state-updating links erase to plain links.
func TestProjectFigure5(t *testing.T) {
	c := SeqC(
		CPred{P: PState{Index: 0, Value: 1}},
		CLinkState{Src: loc(1, 1), Dst: loc(4, 1), Sets: []StateSet{{Index: 0, Value: 2}}},
	)
	p0 := Project(c, State{0})
	p1 := Project(c, State{1})
	lp := netkat.LocatedPacket{Pkt: netkat.Packet{}, Loc: loc(1, 1)}
	if got := netkat.Eval(p0, lp); len(got) != 0 {
		t.Errorf("state [0]: test should project to false, got %v", got)
	}
	if got := netkat.Eval(p1, lp); len(got) != 1 || got[0].Loc != loc(4, 1) {
		t.Errorf("state [1]: link should fire, got %v", got)
	}
}

// TestProjectNegatedState: state(0)!=0 is true exactly when k(0) != 0.
func TestProjectNegatedState(t *testing.T) {
	c := CPred{P: PNot{P: PState{Index: 0, Value: 0}}}
	lp := netkat.LocatedPacket{Pkt: netkat.Packet{}, Loc: loc(1, 1)}
	if got := netkat.Eval(Project(c, State{0}), lp); len(got) != 0 {
		t.Error("negated state test true in state [0]")
	}
	if got := netkat.Eval(Project(c, State{3}), lp); len(got) != 1 {
		t.Error("negated state test false in state [3]")
	}
}

// TestEventsFigure6 checks event extraction on the firewall shape: the
// guard collects field tests, ignores sw/pt, and respects state guards.
func TestEventsFigure6(t *testing.T) {
	c := SeqC(
		CPred{P: PAnd{L: PTest{Field: netkat.FieldPt, Value: 2}, R: PTest{Field: "dst", Value: 104}}},
		CAssign{Field: netkat.FieldPt, Value: 1},
		UnionC(
			SeqC(CPred{P: PState{Index: 0, Value: 0}}, CLinkState{Src: loc(1, 1), Dst: loc(4, 1), Sets: []StateSet{{Index: 0, Value: 1}}}),
			SeqC(CPred{P: PNot{P: PState{Index: 0, Value: 0}}}, CLink{Src: loc(1, 1), Dst: loc(4, 1)}),
		),
		CAssign{Field: netkat.FieldPt, Value: 2},
	)
	edges, err := Events(c, State{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Fatalf("edges in state [0]: %v", edges)
	}
	e := edges[0]
	if e.Loc != loc(4, 1) {
		t.Errorf("event location: %v", e.Loc)
	}
	if v, ok := e.Guard.Eq("dst"); !ok || v != 104 {
		t.Errorf("guard: %v", e.Guard)
	}
	if _, ok := e.Guard.Eq(netkat.FieldPt); ok {
		t.Errorf("guard must not constrain pt: %v", e.Guard)
	}
	if !e.To.Equal(State{1}) {
		t.Errorf("target state: %v", e.To)
	}
	// In state [1] the state guard kills the event branch.
	edges, err = Events(c, State{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Fatalf("edges in state [1]: %v", edges)
	}
}

// TestEventsAssignmentStripsField: an assignment existentially quantifies
// the field in the accumulated guard (the (∃f : ϕ) ∧ f=n rule).
func TestEventsAssignmentStripsField(t *testing.T) {
	c := SeqC(
		CPred{P: PTest{Field: "a", Value: 1}},
		CAssign{Field: "a", Value: 2},
		CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 0, Value: 1}}},
	)
	edges, err := Events(c, State{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Fatalf("edges: %v", edges)
	}
	if v, ok := edges[0].Guard.Eq("a"); !ok || v != 2 {
		t.Errorf("guard after assignment: %v", edges[0].Guard)
	}
}

// TestEventsContradictionKillsBranch: a=1; a=2 contributes nothing.
func TestEventsContradictionKillsBranch(t *testing.T) {
	c := SeqC(
		CPred{P: PTest{Field: "a", Value: 1}},
		CPred{P: PTest{Field: "a", Value: 2}},
		CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 0, Value: 1}}},
	)
	edges, err := Events(c, State{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Fatalf("contradictory branch produced edges: %v", edges)
	}
}

// TestEventsDisjunctionSplits: (a=1 | a=2) produces two event edges with
// distinct guards.
func TestEventsDisjunctionSplits(t *testing.T) {
	c := SeqC(
		CPred{P: POr{L: PTest{Field: "a", Value: 1}, R: PTest{Field: "a", Value: 2}}},
		CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 0, Value: 1}}},
	)
	edges, err := Events(c, State{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("edges: %v", edges)
	}
}

// TestEventsStar: event extraction under iteration reaches a fixpoint and
// finds the edge.
func TestEventsStar(t *testing.T) {
	body := UnionC(
		CAssign{Field: "a", Value: 1},
		SeqC(CPred{P: PTest{Field: "a", Value: 1}}, CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 0, Value: 1}}}),
	)
	edges, err := Events(CStar{P: body}, State{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		// One edge with guard a=1 (before assignment), one with guard
		// true∧a=1 after the assignment path — deduplicated by key they
		// may coincide; accept 1 or 2 but not 0.
		if len(edges) == 0 {
			t.Fatalf("no edges under star")
		}
	}
}

// TestReachableStates on a two-counter chain.
func TestReachableStates(t *testing.T) {
	c := UnionC(
		SeqC(CPred{P: PState{Index: 0, Value: 0}}, CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 0, Value: 1}}}),
		SeqC(CPred{P: PState{Index: 0, Value: 1}}, CLinkState{Src: loc(2, 1), Dst: loc(1, 1), Sets: []StateSet{{Index: 0, Value: 2}}}),
	)
	states, edges, err := Program{Cmd: c, Init: State{0}}.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 || len(edges) != 2 {
		t.Fatalf("states %v, edges %v", states, edges)
	}
}

func TestStateIndices(t *testing.T) {
	c := UnionC(
		CPred{P: PState{Index: 3, Value: 0}},
		CLinkState{Src: loc(1, 1), Dst: loc(2, 1), Sets: []StateSet{{Index: 1, Value: 1}}},
	)
	got := StateIndices(c)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("StateIndices: %v", got)
	}
}

// TestProjectEvalAgreement: for random programs, projecting then
// evaluating is insensitive to state indices the program does not test.
func TestProjectEvalAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		c := randLinkFreeCmd(r, 3)
		lp := netkat.LocatedPacket{
			Pkt: netkat.Packet{"a": r.Intn(3), "b": r.Intn(3)},
			Loc: loc(1+r.Intn(2), 1+r.Intn(2)),
		}
		// Indices beyond those used must not matter.
		k1 := State{0, 1}
		k2 := State{0, 1, 9, 9}
		usesBeyond := false
		for _, idx := range StateIndices(c) {
			if idx >= 2 {
				usesBeyond = true
			}
		}
		if usesBeyond {
			continue
		}
		if !netkat.EquivOn(Project(c, k1), Project(c, k2), []netkat.LocatedPacket{lp}) {
			t.Fatalf("projection depends on unused state: %v", c)
		}
	}
}

func randLinkFreeCmd(r *rand.Rand, depth int) Cmd {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return CPred{P: PTest{Field: []string{"a", "b"}[r.Intn(2)], Value: r.Intn(3)}}
		case 1:
			return CPred{P: PState{Index: r.Intn(2), Value: r.Intn(2)}}
		default:
			return CAssign{Field: []string{"a", "b"}[r.Intn(2)], Value: r.Intn(3)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return CUnion{L: randLinkFreeCmd(r, depth-1), R: randLinkFreeCmd(r, depth-1)}
	case 1:
		return CSeq{L: randLinkFreeCmd(r, depth-1), R: randLinkFreeCmd(r, depth-1)}
	default:
		return CPred{P: PNot{P: PState{Index: r.Intn(2), Value: r.Intn(2)}}}
	}
}
