package stateful

import "sort"

// GuardTest is one state test state(Index) = Value occurring in a program.
type GuardTest struct {
	Index, Value int
}

// GuardIndex is the set of distinct state tests occurring in a command,
// in canonical order. Projection ⟦p⟧k resolves exactly these tests against
// the state vector (and changes nothing else), so two states with equal
// truth vectors over the index project to structurally identical NetKAT
// policies — the key fact behind cross-state configuration reuse: the
// compiler caches per-state artifacts by Sig instead of by state vector,
// and a state re-enters compilation only for the sub-policies whose
// guards actually flipped (Diff) relative to an already-compiled state.
type GuardIndex struct {
	tests []GuardTest
}

// CollectGuards builds the guard index of a command: every distinct
// state(Index) = Value test in its predicates (including under negation).
func CollectGuards(c Cmd) *GuardIndex {
	set := map[GuardTest]bool{}
	var walkPred func(Pred)
	walkPred = func(p Pred) {
		switch q := p.(type) {
		case PState:
			set[GuardTest{Index: q.Index, Value: q.Value}] = true
		case PNot:
			walkPred(q.P)
		case PAnd:
			walkPred(q.L)
			walkPred(q.R)
		case POr:
			walkPred(q.L)
			walkPred(q.R)
		}
	}
	var walk func(Cmd)
	walk = func(c Cmd) {
		switch q := c.(type) {
		case CPred:
			walkPred(q.P)
		case CUnion:
			walk(q.L)
			walk(q.R)
		case CSeq:
			walk(q.L)
			walk(q.R)
		case CStar:
			walk(q.P)
		}
	}
	walk(c)
	g := &GuardIndex{tests: make([]GuardTest, 0, len(set))}
	for t := range set {
		g.tests = append(g.tests, t)
	}
	sort.Slice(g.tests, func(i, j int) bool {
		if g.tests[i].Index != g.tests[j].Index {
			return g.tests[i].Index < g.tests[j].Index
		}
		return g.tests[i].Value < g.tests[j].Value
	})
	return g
}

// Len returns the number of distinct state tests.
func (g *GuardIndex) Len() int { return len(g.tests) }

// Tests returns the tests in canonical order.
func (g *GuardIndex) Tests() []GuardTest { return append([]GuardTest{}, g.tests...) }

// Sig returns the truth vector of the indexed tests under state k, packed
// 8 tests per byte. States with equal signatures have structurally
// identical projections, so Sig is a sound (and, over reachable states,
// cheap) cache key for every projection-derived artifact.
func (g *GuardIndex) Sig(k State) string {
	if len(g.tests) == 0 {
		return ""
	}
	return string(g.AppendSig(nil, k))
}

// AppendSig appends the packed truth vector (the Sig encoding) to dst
// and returns the extended slice. Callers on the compilation hot path
// reuse one scratch buffer across states instead of allocating a string
// per lookup; the interner turns the bytes into a dense id without
// copying on hits.
func (g *GuardIndex) AppendSig(dst []byte, k State) []byte {
	if len(g.tests) == 0 {
		return dst
	}
	off := len(dst)
	for n := (len(g.tests) + 7) / 8; n > 0; n-- {
		dst = append(dst, 0)
	}
	for i, t := range g.tests {
		if k.Get(t.Index) == t.Value {
			dst[off+i/8] |= 1 << uint(i%8)
		}
	}
	return dst
}

// Diff returns the tests whose truth value differs between states a and
// b — the guard delta behind a segment's signature change when moving
// along an ETS edge. The compiler itself triggers recompilation by
// signature lookup (Sig); Diff is the diagnostic view of the same fact,
// used by tests to pin Sig's semantics.
func (g *GuardIndex) Diff(a, b State) []GuardTest {
	var out []GuardTest
	for _, t := range g.tests {
		if (a.Get(t.Index) == t.Value) != (b.Get(t.Index) == t.Value) {
			out = append(out, t)
		}
	}
	return out
}
