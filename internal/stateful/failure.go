package stateful

import "eventnet/internal/netkat"

// First-class link-failure and -recovery events. A failure is modeled the
// way everything else in this system is modeled: as the arrival of a
// packet. A monitor injects a notification carrying the reserved
// netkat.FieldLinkDown (or FieldLinkUp) header set to the failed link's
// LinkID; the program routes the notification through a state-updating
// link whose Dst is the deciding switch, so the event-extraction of
// Figure 6 yields an event guarded by the notification fields and located
// where the failure is observed. Everything downstream — NES consistency,
// occurrence renaming of repeated fail/recover cycles, knowledge replay
// across live program swaps — then applies to failures unchanged.

// LinkDownTest is the predicate linkdown = LinkID(src, dst): the guard of
// a failure notification for the directed link (src, dst).
func LinkDownTest(src, dst netkat.Location) Pred {
	return PTest{Field: netkat.FieldLinkDown, Value: netkat.LinkID(src, dst)}
}

// LinkUpTest is the predicate linkup = LinkID(src, dst): the guard of a
// recovery notification for the directed link (src, dst).
func LinkUpTest(src, dst netkat.Location) Pred {
	return PTest{Field: netkat.FieldLinkUp, Value: netkat.LinkID(src, dst)}
}
