// Package stateful implements Stateful NetKAT (Section 3.2 of the paper):
// NetKAT extended with a global vector-valued state variable. A stateful
// program compactly denotes a collection of static NetKAT configurations —
// one per state-vector value, extracted by Project (the ⟦p⟧k function of
// Figure 5) — together with the event-labeled transitions between them,
// extracted by Events (the ⟪p⟫k function of Figure 6).
package stateful

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"eventnet/internal/netkat"
)

// State is a value ~k of the global state vector.
type State []int

// Clone returns an independent copy.
func (s State) Clone() State { return append(State{}, s...) }

// With returns a copy with index m set to n, growing the vector if needed.
func (s State) With(m, n int) State {
	t := s.Clone()
	for len(t) <= m {
		t = append(t, 0)
	}
	t[m] = n
	return t
}

// Get returns the value at index m (0 if beyond the vector's length).
func (s State) Get(m int) int {
	if m < len(s) {
		return s[m]
	}
	return 0
}

// Key returns a canonical map key.
func (s State) Key() string {
	buf := make([]byte, 0, 2+4*len(s))
	buf = append(buf, '[')
	for i, v := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	buf = append(buf, ']')
	return string(buf)
}

// Equal reports pointwise equality (implicitly zero-padded).
func (s State) Equal(o State) bool {
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if s.Get(i) != o.Get(i) {
			return false
		}
	}
	return true
}

// String renders the state in the paper's [v0,v1,...] notation.
func (s State) String() string { return s.Key() }

// Pred is a Stateful NetKAT test: a boolean formula over header fields and
// the global state vector.
type Pred interface {
	isSPred()
	String() string
}

// PTrue is the test true.
type PTrue struct{}

// PFalse is the test false.
type PFalse struct{}

// PTest is the header test field = value (fields include sw and pt).
type PTest struct {
	Field string
	Value int
}

// PState is the state test state(Index) = Value.
type PState struct {
	Index int
	Value int
}

// PNot is negation.
type PNot struct{ P Pred }

// PAnd is conjunction.
type PAnd struct{ L, R Pred }

// POr is disjunction.
type POr struct{ L, R Pred }

func (PTrue) isSPred()  {}
func (PFalse) isSPred() {}
func (PTest) isSPred()  {}
func (PState) isSPred() {}
func (PNot) isSPred()   {}
func (PAnd) isSPred()   {}
func (POr) isSPred()    {}

func (PTrue) String() string    { return "true" }
func (PFalse) String() string   { return "false" }
func (t PTest) String() string  { return fmt.Sprintf("%s=%d", t.Field, t.Value) }
func (t PState) String() string { return fmt.Sprintf("state(%d)=%d", t.Index, t.Value) }
func (n PNot) String() string   { return "!" + parenP(n.P, 3) }
func (a PAnd) String() string   { return parenP(a.L, 2) + " & " + parenP(a.R, 2) }
func (o POr) String() string    { return parenP(o.L, 1) + " | " + parenP(o.R, 1) }

func plevel(p Pred) int {
	switch p.(type) {
	case POr:
		return 1
	case PAnd:
		return 2
	case PNot:
		return 3
	default:
		return 4
	}
}

func parenP(p Pred, level int) string {
	if plevel(p) < level {
		return "(" + p.String() + ")"
	}
	return p.String()
}

// StateSet is a vector assignment carried by a link: state(Index) <- Value
// for each entry, applied simultaneously.
type StateSet struct {
	Index int
	Value int
}

// Cmd is a Stateful NetKAT command.
type Cmd interface {
	isCmd()
	String() string
}

// CPred lifts a test to a command.
type CPred struct{ P Pred }

// CAssign is the field assignment x <- n.
type CAssign struct {
	Field string
	Value int
}

// CUnion is p + q.
type CUnion struct{ L, R Cmd }

// CSeq is p ; q.
type CSeq struct{ L, R Cmd }

// CStar is p*.
type CStar struct{ P Cmd }

// CLink is the plain link definition (n1:m1) -> (n2:m2).
type CLink struct{ Src, Dst netkat.Location }

// CLinkState is the event-generating link definition
// (n1:m1) -> (n2:m2) <state(m) <- n, ...>: crossing it updates the global
// state, and the arrival of the packet at Dst is the triggering event.
type CLinkState struct {
	Src, Dst netkat.Location
	Sets     []StateSet
}

func (CPred) isCmd()      {}
func (CAssign) isCmd()    {}
func (CUnion) isCmd()     {}
func (CSeq) isCmd()       {}
func (CStar) isCmd()      {}
func (CLink) isCmd()      {}
func (CLinkState) isCmd() {}

func (c CPred) String() string   { return c.P.String() }
func (c CAssign) String() string { return fmt.Sprintf("%s<-%d", c.Field, c.Value) }
func (c CUnion) String() string  { return parenC(c.L, 1) + " + " + parenC(c.R, 1) }
func (c CSeq) String() string    { return parenC(c.L, 2) + "; " + parenC(c.R, 2) }
func (c CStar) String() string {
	if starSafe(c.P) {
		return c.P.String() + "*"
	}
	return "(" + c.P.String() + ")*"
}

// starSafe reports whether a command prints as a single postfix-star
// operand without parentheses (matching the parser, where '*' binds
// tighter than '&' and '|' but looser than '!').
func starSafe(c Cmd) bool {
	switch q := c.(type) {
	case CAssign, CLink, CLinkState:
		return true
	case CPred:
		switch q.P.(type) {
		case PAnd, POr:
			return false
		default:
			return true
		}
	default:
		return false
	}
}
func (c CLink) String() string { return fmt.Sprintf("(%v)=>(%v)", c.Src, c.Dst) }
func (c CLinkState) String() string {
	parts := make([]string, len(c.Sets))
	for i, s := range c.Sets {
		parts[i] = fmt.Sprintf("state(%d)<-%d", s.Index, s.Value)
	}
	return fmt.Sprintf("(%v)=>(%v)<%s>", c.Src, c.Dst, strings.Join(parts, ", "))
}

func clevel(c Cmd) int {
	switch c.(type) {
	case CUnion:
		return 1
	case CSeq:
		return 2
	default:
		return 3
	}
}

func parenC(c Cmd, level int) string {
	if clevel(c) < level {
		return "(" + c.String() + ")"
	}
	return c.String()
}

// Project extracts the standard NetKAT program ⟦p⟧k for state vector k
// (Figure 5): state tests are resolved against k and link state-updates
// are erased, leaving the plain link.
func Project(c Cmd, k State) netkat.Policy {
	switch q := c.(type) {
	case CPred:
		return netkat.Filter{P: projectPred(q.P, k)}
	case CAssign:
		return netkat.Assign{Field: q.Field, Value: q.Value}
	case CUnion:
		return netkat.Union{L: Project(q.L, k), R: Project(q.R, k)}
	case CSeq:
		return netkat.Seq{L: Project(q.L, k), R: Project(q.R, k)}
	case CStar:
		return netkat.Star{P: Project(q.P, k)}
	case CLink:
		return netkat.Link{Src: q.Src, Dst: q.Dst}
	case CLinkState:
		return netkat.Link{Src: q.Src, Dst: q.Dst}
	default:
		panic(fmt.Sprintf("stateful: unknown command %T", c))
	}
}

func projectPred(p Pred, k State) netkat.Pred {
	switch q := p.(type) {
	case PTrue:
		return netkat.True{}
	case PFalse:
		return netkat.False{}
	case PTest:
		return netkat.Test{Field: q.Field, Value: q.Value}
	case PState:
		if k.Get(q.Index) == q.Value {
			return netkat.True{}
		}
		return netkat.False{}
	case PNot:
		return netkat.Not{P: projectPred(q.P, k)}
	case PAnd:
		return netkat.And{L: projectPred(q.L, k), R: projectPred(q.R, k)}
	case POr:
		return netkat.Or{L: projectPred(q.L, k), R: projectPred(q.R, k)}
	default:
		panic(fmt.Sprintf("stateful: unknown predicate %T", p))
	}
}

// Edge is one event-edge extracted from a program: in state From, the
// arrival at Loc of a packet satisfying Guard moves the system to state To
// (the tuple (~k, (ϕ, s2, p2), ~k[m ↦ n]) of Figure 6).
type Edge struct {
	From  State
	Guard *netkat.Conj
	Loc   netkat.Location
	To    State
	key   string // canonical identity, cached at construction (Edge is immutable after)
}

// Key returns a canonical identity for deduplication. Edges built by
// event extraction carry a precomputed key; zero-value edges (e.g. built
// directly in tests) fall back to computing it.
func (e Edge) Key() string {
	if e.key != "" {
		return e.key
	}
	return e.From.Key() + "|" + e.Guard.Key() + "@" + e.Loc.String() + "|" + e.To.Key()
}

// String renders the edge.
func (e Edge) String() string {
	return fmt.Sprintf("%v --(%v @ %v)--> %v", e.From, e.Guard, e.Loc, e.To)
}

// result is the (D, P) pair threaded through the Figure 6 recursion:
// event-edges plus the set of updated test conjunctions.
type result struct {
	edges []Edge
	phis  []*netkat.Conj
}

func (r result) union(o result) result {
	if len(o.edges) == 0 && len(o.phis) == 0 {
		return r
	}
	if len(r.edges) == 0 && len(r.phis) == 0 {
		return o
	}
	seenE := make(map[string]bool, len(r.edges)+len(o.edges))
	edges := make([]Edge, 0, len(r.edges)+len(o.edges))
	for _, es := range [2][]Edge{r.edges, o.edges} {
		for _, e := range es {
			k := e.Key()
			if !seenE[k] {
				seenE[k] = true
				edges = append(edges, e)
			}
		}
	}
	seenP := make(map[string]bool, len(r.phis)+len(o.phis))
	phis := make([]*netkat.Conj, 0, len(r.phis)+len(o.phis))
	for _, cs := range [2][]*netkat.Conj{r.phis, o.phis} {
		for _, c := range cs {
			k := c.Key()
			if !seenP[k] {
				seenP[k] = true
				phis = append(phis, c)
			}
		}
	}
	return result{edges: edges, phis: phis}
}

// starEventBound caps the F^j fixpoint of Figure 6 for p*.
const starEventBound = 100

// Events computes ⟪p⟫k true: the event-edges leaving state k, together
// with the final test conjunctions (Figure 6).
func Events(c Cmd, k State) ([]Edge, error) {
	r, err := events(c, k, netkat.NewConj())
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(r.edges))
	for i, e := range r.edges {
		keys[i] = e.Key()
	}
	sort.Sort(&edgesByKey{edges: r.edges, keys: keys})
	return r.edges, nil
}

// edgesByKey sorts edges by precomputed canonical key.
type edgesByKey struct {
	edges []Edge
	keys  []string
}

func (s *edgesByKey) Len() int           { return len(s.edges) }
func (s *edgesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *edgesByKey) Swap(i, j int) {
	s.edges[i], s.edges[j] = s.edges[j], s.edges[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// events is ⟪c⟫k ϕ. It propagates the conjunction of tests seen so far and
// records an event-edge at each state-updating link.
func events(c Cmd, k State, phi *netkat.Conj) (result, error) {
	switch q := c.(type) {
	case CPred:
		return eventsPred(q.P, k, phi, false)
	case CAssign:
		// ⟪f <- n⟫k ϕ = ({}, {(∃f : ϕ) ∧ f=n}). Event guards range over
		// header fields only (an event is matched by sw/pt separately), so
		// port assignments leave ϕ unchanged.
		if q.Field == netkat.FieldPt || q.Field == netkat.FieldSw {
			return result{phis: []*netkat.Conj{phi.Clone()}}, nil
		}
		c2 := phi.Clone()
		c2.Exists(q.Field)
		if !c2.AddEq(q.Field, q.Value) {
			return result{}, nil
		}
		return result{phis: []*netkat.Conj{c2}}, nil
	case CUnion:
		l, err := events(q.L, k, phi)
		if err != nil {
			return result{}, err
		}
		r, err := events(q.R, k, phi)
		if err != nil {
			return result{}, err
		}
		return l.union(r), nil
	case CSeq:
		// Kleisli composition: run q.L, then q.R from each resulting ϕ.
		l, err := events(q.L, k, phi)
		if err != nil {
			return result{}, err
		}
		out := result{edges: l.edges}
		for _, p2 := range l.phis {
			r, err := events(q.R, k, p2)
			if err != nil {
				return result{}, err
			}
			out = out.union(r)
		}
		return out, nil
	case CStar:
		// ⊔j F^j_p(ϕ, k), iterated to a fixpoint.
		acc := result{phis: []*netkat.Conj{phi.Clone()}}
		frontier := acc.phis
		for i := 0; i < starEventBound; i++ {
			var next result
			for _, p2 := range frontier {
				r, err := events(q.P, k, p2)
				if err != nil {
					return result{}, err
				}
				next = next.union(r)
			}
			before := len(acc.edges) + len(acc.phis)
			merged := acc.union(next)
			if len(merged.edges)+len(merged.phis) == before {
				return acc, nil
			}
			// New frontier: phis not previously seen.
			seen := map[string]bool{}
			for _, c := range acc.phis {
				seen[c.Key()] = true
			}
			frontier = nil
			for _, c := range merged.phis {
				if !seen[c.Key()] {
					frontier = append(frontier, c)
				}
			}
			acc = merged
		}
		return result{}, fmt.Errorf("stateful: star event extraction did not stabilize within %d iterations", starEventBound)
	case CLink:
		return result{phis: []*netkat.Conj{phi.Clone()}}, nil
	case CLinkState:
		to := k.Clone()
		for _, s := range q.Sets {
			to = to.With(s.Index, s.Value)
		}
		e := Edge{From: k.Clone(), Guard: phi.Clone(), Loc: q.Dst, To: to}
		e.key = e.Key() // precompute while e.key is empty; cached thereafter
		return result{edges: []Edge{e}, phis: []*netkat.Conj{phi.Clone()}}, nil
	default:
		return result{}, fmt.Errorf("stateful: unknown command %T", c)
	}
}

// eventsPred handles tests, following Figure 6: field tests extend ϕ,
// sw/pt tests leave it unchanged, state tests are resolved against k, and
// negation is pushed inward.
func eventsPred(p Pred, k State, phi *netkat.Conj, neg bool) (result, error) {
	switch q := p.(type) {
	case PTrue:
		if neg {
			return result{}, nil
		}
		return result{phis: []*netkat.Conj{phi.Clone()}}, nil
	case PFalse:
		if neg {
			return result{phis: []*netkat.Conj{phi.Clone()}}, nil
		}
		return result{}, nil
	case PTest:
		// ⟪sw = n⟫ and ⟪pt = n⟫ do not constrain the event guard
		// (Figure 6 maps them to ⟪true⟫): the event's location is fixed by
		// the link, not by where the test happened.
		if q.Field == netkat.FieldSw || q.Field == netkat.FieldPt {
			return result{phis: []*netkat.Conj{phi.Clone()}}, nil
		}
		c2 := phi.Clone()
		ok := false
		if neg {
			ok = c2.AddNeq(q.Field, q.Value)
		} else {
			ok = c2.AddEq(q.Field, q.Value)
		}
		if !ok {
			return result{}, nil
		}
		return result{phis: []*netkat.Conj{c2}}, nil
	case PState:
		holds := k.Get(q.Index) == q.Value
		if neg {
			holds = !holds
		}
		if holds {
			return result{phis: []*netkat.Conj{phi.Clone()}}, nil
		}
		return result{}, nil
	case PNot:
		return eventsPred(q.P, k, phi, !neg)
	case PAnd:
		if neg {
			// ¬(a ∧ b) = ¬a ∨ ¬b
			return eventsPred(POr{PNot{q.L}, PNot{q.R}}, k, phi, false)
		}
		// a ∧ b = a ; b
		l, err := eventsPred(q.L, k, phi, false)
		if err != nil {
			return result{}, err
		}
		out := result{edges: l.edges}
		for _, p2 := range l.phis {
			r, err := eventsPred(q.R, k, p2, false)
			if err != nil {
				return result{}, err
			}
			out = out.union(r)
		}
		return out, nil
	case POr:
		if neg {
			// ¬(a ∨ b) = ¬a ∧ ¬b
			return eventsPred(PAnd{PNot{q.L}, PNot{q.R}}, k, phi, false)
		}
		l, err := eventsPred(q.L, k, phi, false)
		if err != nil {
			return result{}, err
		}
		r, err := eventsPred(q.R, k, phi, false)
		if err != nil {
			return result{}, err
		}
		return l.union(r), nil
	default:
		return result{}, fmt.Errorf("stateful: unknown predicate %T", p)
	}
}
