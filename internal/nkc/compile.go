package nkc

import (
	"fmt"
	"sort"
	"sync"

	"eventnet/internal/dataplane"
	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// hopRule is one per-switch rule produced by symbolic strand execution,
// before multicast merging and overlap resolution.
type hopRule struct {
	sw    int
	match flowtable.Match
	group flowtable.ActionGroup
}

// errInfeasible signals a statically contradictory strand instance; such
// instances simply contribute no rules.
var errInfeasible = fmt.Errorf("nkc: infeasible strand instance")

// Backend selects the table-generation backend.
type Backend int

const (
	// BackendFDD compiles through hash-consed forwarding decision
	// diagrams (fdd.go, fdd_table.go) — the default.
	BackendFDD Backend = iota
	// BackendDNF compiles through DNF/path normal form and strand
	// distribution — the original pipeline, kept as the reference
	// oracle for equivalence testing.
	BackendDNF
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendFDD:
		return "fdd"
	case BackendDNF:
		return "dnf"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// DefaultBackend is the backend used by Compile. Tools (cmd/snkc) may
// override it; tests needing a specific backend call CompileFDD or
// CompileDNF directly.
var DefaultBackend = BackendFDD

// Compile translates a (state-free) policy into per-switch flow tables
// over the given topology using the default backend. The tables realize
// exactly the relation denoted by the policy, as checked by property
// tests against netkat.Eval.
func Compile(p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	return CompileWith(DefaultBackend, p, t)
}

// CompileWith compiles with an explicit backend.
func CompileWith(b Backend, p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	if b == BackendDNF {
		return CompileDNF(p, t)
	}
	return CompileFDD(p, t)
}

// Compiler carries reusable backend state across Compile calls. For the
// FDD backend the hash-consing context (and with it every node and
// combinator memo) is shared, so compiling the per-state configurations
// of one program — which are largely identical policies — costs little
// more than compiling one of them. A Compiler is not safe for concurrent
// use; parallel builds give each worker its own.
type Compiler struct {
	backend Backend
	ctx     *FDDCtx
}

// NewCompiler returns a Compiler for the default backend.
func NewCompiler() *Compiler { return NewCompilerWith(DefaultBackend) }

// NewCompilerWith returns a Compiler for an explicit backend.
func NewCompilerWith(b Backend) *Compiler {
	c := &Compiler{backend: b}
	if b == BackendFDD {
		c.ctx = NewFDDCtx()
	}
	return c
}

// Compile translates a policy into per-switch flow tables.
func (c *Compiler) Compile(p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	if c.backend == BackendDNF {
		return CompileDNF(p, t)
	}
	return compileFDDCtx(c.ctx, p, t)
}

// CompileDNF is the reference DNF/strand backend: predicates are
// normalized to DNF, link-free segments to path normal form, union is
// distributed over sequence into strands, and overlapping matches are
// resolved by a fixpoint. Both normal forms are exponential in the worst
// case; prefer the FDD backend except as a cross-check.
func CompileDNF(p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	if err := netkat.Validate(p); err != nil {
		return nil, err
	}
	strands, err := ExtractStrands(p)
	if err != nil {
		return nil, err
	}
	var hops []hopRule
	for _, s := range strands {
		hs, err := compileStrand(s, t.Switches)
		if err != nil {
			return nil, err
		}
		hops = append(hops, hs...)
	}
	return assembleTables(hops)
}

// maxChoices bounds the per-strand cartesian expansion of segment paths.
const maxChoices = 100000

// compileStrand enumerates every combination of one path per segment and
// symbolically executes each combination into hop rules.
func compileStrand(s Strand, allSwitches []int) ([]hopRule, error) {
	total := 1
	for _, seg := range s.Segments {
		total *= len(seg.Paths)
		if total > maxChoices {
			return nil, fmt.Errorf("nkc: strand expands to more than %d path combinations", maxChoices)
		}
	}
	var out []hopRule
	choice := make([]Path, len(s.Segments))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(s.Segments) {
			hs, err := execChoice(choice, s.Links, allSwitches)
			if err == errInfeasible {
				return nil
			}
			if err != nil {
				return err
			}
			out = append(out, hs...)
			return nil
		}
		for _, p := range s.Segments[i].Paths {
			choice[i] = p
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// execChoice symbolically executes one concrete strand instance: a path
// per segment interleaved with the strand's links. It tracks the values of
// header fields assigned by earlier hops (so later tests against them are
// resolved statically), the packet's current switch and port, and emits
// one rule per hop.
func execChoice(paths []Path, links []netkat.Link, allSwitches []int) ([]hopRule, error) {
	env := map[string]int{}    // header fields assigned so far
	curSw, arrivalPt := -1, -1 // -1 = unknown
	swNeq := map[int]bool{}    // excluded switches while curSw unknown
	var out []hopRule

	for i, p := range paths {
		match := flowtable.Match{InPort: flowtable.Wildcard, Fields: map[string]int{}, Excludes: map[string][]int{}}
		if i > 0 {
			match.InPort = arrivalPt
		}
		// Equality literals.
		for _, f := range p.Cond.EqFields() {
			v, _ := p.Cond.Eq(f)
			switch f {
			case netkat.FieldSw:
				if curSw != -1 {
					if curSw != v {
						return nil, errInfeasible
					}
				} else {
					if swNeq[v] {
						return nil, errInfeasible
					}
					curSw = v
				}
			case netkat.FieldPt:
				if arrivalPt != -1 {
					if arrivalPt != v {
						return nil, errInfeasible
					}
				} else {
					arrivalPt = v
					match.InPort = v
				}
			default:
				if w, ok := env[f]; ok {
					if w != v {
						return nil, errInfeasible
					}
				} else {
					match.Fields[f] = v
				}
			}
		}
		// Inequality literals.
		for _, f := range p.Cond.NeqFields() {
			for _, v := range p.Cond.Neq(f) {
				switch f {
				case netkat.FieldSw:
					if curSw != -1 {
						if curSw == v {
							return nil, errInfeasible
						}
					} else {
						swNeq[v] = true
					}
				case netkat.FieldPt:
					if arrivalPt == -1 {
						// Unknown ingress: match any port except v.
						match.ExcludePorts = appendPortNeq(match.ExcludePorts, v)
					} else if arrivalPt == v {
						return nil, errInfeasible
					}
				default:
					if w, ok := env[f]; ok {
						if w == v {
							return nil, errInfeasible
						}
					} else {
						match.Excludes[f] = append(match.Excludes[f], v)
					}
				}
			}
		}
		// Assignments.
		sets := map[string]int{}
		assignedPt, hasAssignedPt := -1, false
		for f, v := range p.Acts {
			if f == netkat.FieldPt {
				assignedPt, hasAssignedPt = v, true
			} else {
				sets[f] = v
			}
		}
		for f, v := range sets {
			env[f] = v
		}
		effectivePt := arrivalPt
		if hasAssignedPt {
			effectivePt = assignedPt
		}

		if i < len(links) {
			l := links[i]
			if curSw == -1 {
				if swNeq[l.Src.Switch] {
					return nil, errInfeasible
				}
				curSw = l.Src.Switch
			} else if curSw != l.Src.Switch {
				return nil, errInfeasible
			}
			if effectivePt == -1 {
				// No port information: the packet must already be at the
				// link's source port, so match on it as the ingress port.
				for _, x := range match.ExcludePorts {
					if x == l.Src.Port {
						return nil, errInfeasible
					}
				}
				match.ExcludePorts = nil
				arrivalPt = l.Src.Port
				match.InPort = l.Src.Port
				effectivePt = l.Src.Port
			} else if effectivePt != l.Src.Port {
				return nil, errInfeasible
			}
			out = append(out, hopRule{sw: curSw, match: match, group: flowtable.ActionGroup{Sets: sets, OutPort: l.Src.Port}})
			curSw, arrivalPt = l.Dst.Switch, l.Dst.Port
			swNeq = map[int]bool{}
			continue
		}

		// Final hop. A segment is an identity tail when it imposes no
		// tests or rewrites of its own (the ingress port recorded from the
		// preceding link does not count): the journey then ends at the
		// link's destination and the previous hop's rule already emitted.
		segmentEmpty := len(p.Cond.EqFields()) == 0 && len(p.Cond.NeqFields()) == 0 && len(p.Acts) == 0
		if segmentEmpty && len(links) > 0 {
			return out, nil
		}
		if effectivePt == -1 {
			return nil, fmt.Errorf("nkc: strand does not determine an egress port (final segment must assign pt or follow a link)")
		}
		group := flowtable.ActionGroup{Sets: sets, OutPort: effectivePt}
		if curSw != -1 {
			out = append(out, hopRule{sw: curSw, match: match, group: group})
			return out, nil
		}
		// Location-agnostic single-hop policy: install on every switch
		// not explicitly excluded.
		for _, sw := range allSwitches {
			if swNeq[sw] {
				continue
			}
			out = append(out, hopRule{sw: sw, match: match, group: group})
		}
		return out, nil
	}
	return out, nil
}

// appendPortNeq adds an excluded ingress port, deduplicating.
func appendPortNeq(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

// ruleAccum accumulates the action groups attached to one match.
type ruleAccum struct {
	match  flowtable.Match
	groups map[string]flowtable.ActionGroup
}

func (r *ruleAccum) add(g flowtable.ActionGroup) bool {
	k := g.Key()
	if _, ok := r.groups[k]; ok {
		return false
	}
	r.groups[k] = g
	return true
}

func (r *ruleAccum) addAll(o *ruleAccum) bool {
	changed := false
	for _, g := range o.groups {
		if r.add(g) {
			changed = true
		}
	}
	return changed
}

// overlapBound caps overlap-resolution iterations.
const overlapBound = 1000

// assembleTables merges hop rules with identical matches (multicast),
// resolves overlapping matches so that first-match-wins tables implement
// union semantics, and assigns priorities by match specificity.
func assembleTables(hops []hopRule) (flowtable.Tables, error) {
	perSwitch := map[int]map[string]*ruleAccum{}
	for _, h := range hops {
		rules, ok := perSwitch[h.sw]
		if !ok {
			rules = map[string]*ruleAccum{}
			perSwitch[h.sw] = rules
		}
		k := h.match.Key()
		acc, ok := rules[k]
		if !ok {
			acc = &ruleAccum{match: h.match, groups: map[string]flowtable.ActionGroup{}}
			rules[k] = acc
		}
		acc.add(h.group)
	}

	tables := flowtable.Tables{}
	for sw, rules := range perSwitch {
		if err := resolveOverlaps(rules); err != nil {
			return nil, fmt.Errorf("switch %d: %w", sw, err)
		}
		keys := make([]string, 0, len(rules))
		for k := range rules {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		installed := make([]flowtable.Rule, 0, len(keys))
		for _, k := range keys {
			acc := rules[k]
			gks := make([]string, 0, len(acc.groups))
			for gk := range acc.groups {
				gks = append(gks, gk)
			}
			sort.Strings(gks)
			groups := make([]flowtable.ActionGroup, 0, len(gks))
			for _, gk := range gks {
				groups = append(groups, acc.groups[gk])
			}
			installed = append(installed, flowtable.Rule{Priority: acc.match.Specificity(), Match: acc.match, Groups: groups})
		}
		tables.Get(sw).AddAll(installed)
	}
	return tables, nil
}

// resolveOverlaps enforces union semantics under first-match-wins: when
// one match subsumes another, the more specific rule absorbs the broader
// rule's groups; when two matches properly overlap, a rule for the
// intersection region carrying both group sets is added. Iterates to a
// fixpoint (the intersection closure is finite).
func resolveOverlaps(rules map[string]*ruleAccum) error {
	for iter := 0; iter < overlapBound; iter++ {
		changed := false
		keys := make([]string, 0, len(rules))
		for k := range rules {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := rules[keys[i]], rules[keys[j]]
				aSubB := a.match.Subsumes(b.match) // b's region inside a's
				bSubA := b.match.Subsumes(a.match)
				switch {
				case aSubB && bSubA:
					// Same region, different keys (syntactic variants):
					// merge both directions.
					if b.addAll(a) {
						changed = true
					}
					if a.addAll(b) {
						changed = true
					}
				case aSubB:
					if b.addAll(a) {
						changed = true
					}
				case bSubA:
					if a.addAll(b) {
						changed = true
					}
				default:
					inter, ok := a.match.Intersect(b.match)
					if !ok {
						continue
					}
					k := inter.Key()
					acc, exists := rules[k]
					if !exists {
						acc = &ruleAccum{match: inter, groups: map[string]flowtable.ActionGroup{}}
						rules[k] = acc
						changed = true
					}
					if acc.addAll(a) {
						changed = true
					}
					if acc.addAll(b) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("nkc: overlap resolution did not converge within %d iterations", overlapBound)
}

// CompiledConfig realizes a configuration relation C from compiled tables
// plus the topology's links (Section 2: C captures both switch processing
// and link behavior, including host attachment links).
//
// Switch processing runs through lazily compiled dataplane matchers
// (indexed lookup instead of a rule scan) — the relation is driven
// thousands of times per journey by the trace oracle and the model
// checker, so per-table index compilation amortizes immediately.
type CompiledConfig struct {
	Tables flowtable.Tables
	Topo   *topo.Topology
	Tag    uint32 // version tag presented to the tables (0 for unguarded)

	mu       sync.Mutex
	matchers map[int]dataplane.Matcher
}

// matcher returns the compiled matcher for a switch, or false when the
// configuration installs no table there.
func (c *CompiledConfig) matcher(sw int) (dataplane.Matcher, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.matchers == nil {
		c.matchers = make(map[int]dataplane.Matcher, len(c.Tables))
	}
	m, ok := c.matchers[sw]
	if !ok {
		if t, has := c.Tables[sw]; has {
			m = dataplane.Compile(t)
		}
		c.matchers[sw] = m // nil for table-less switches
	}
	return m, m != nil
}

// DStep implements netkat.DConfig: an egress point follows its link (to a
// switch ingress or into a host), a host emission enters the attachment
// port, and a switch ingress is processed by the flow table.
func (c *CompiledConfig) DStep(d netkat.DPacket) []netkat.DPacket {
	var outs []netkat.DPacket
	switch {
	case c.Topo.IsHostNode(d.Loc.Switch):
		if !d.Out {
			return nil // absorbed by the host
		}
		h, _ := c.Topo.HostByID(d.Loc.Switch)
		outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Attach})
	case d.Out:
		if lk, ok := c.Topo.LinkFrom(d.Loc); ok {
			if h, isHost := c.Topo.HostByID(lk.Dst.Switch); isHost {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: h.Loc()})
			} else {
				outs = append(outs, netkat.DPacket{Pkt: d.Pkt, Loc: lk.Dst})
			}
		}
	default:
		if m, ok := c.matcher(d.Loc.Switch); ok {
			for _, o := range m.Process(nil, d.Pkt, d.Loc.Port, c.Tag) {
				outs = append(outs, netkat.DPacket{Pkt: o.Pkt, Loc: netkat.Location{Switch: d.Loc.Switch, Port: o.Port}, Out: true})
			}
		}
	}
	return outs
}
