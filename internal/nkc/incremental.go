package nkc

// Incremental (delta) compilation of Stateful NetKAT programs: the
// per-state configurations of one program are projections of one command
// tree that differ only in the truth values of its state guards, so the
// expensive halves of compilation — strand extraction, per-segment FDD
// translation, symbolic hop execution, per-switch folds, and table
// extraction — are all shareable across states.
//
// A ProgramCompiler extracts the link-strand skeleton from the *stateful*
// command tree once (it is state-independent: projection maps CUnion to
// Union, CSeq to Seq and links to links, so the split is the same for
// every state). Compiling a state then walks the fixed skeleton and
// re-enters ToFDD only for segments whose guard signature — the truth
// vector of the state tests occurring inside that segment — has not been
// seen before; the signature lookup is the recompilation trigger.
// Between a parent and child ETS state a segment's signature changes
// exactly when one of its guards flipped (stateful.GuardIndex.Diff
// exposes that delta for diagnostics and tests), so unchanged strands
// reuse their FDDs, their symbolic execution, and their extracted
// tables by structural key.
// Whole configurations are additionally shared across states (and, via
// SharedCache, across a compiler pool) by program-level signature.
//
// The output is byte-identical to CompileFDD on the projected policy —
// property-tested in internal/ets — because the skeleton split commutes
// with projection and every stage below it is deterministic.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// progSeg is one link-free segment of the program skeleton. key is the
// segment's canonical rendering: together with a guard signature it
// identifies the projected policy structurally, so segment FDDs memoized
// under it are shareable not just across the states of one program but —
// through nkc.ProgramCache — across *programs* that contain the same
// link-free segment (successive revisions of a live-updated program
// typically share most of them).
type progSeg struct {
	id     int
	key    string
	cmd    stateful.Cmd
	guards *stateful.GuardIndex // state tests inside this segment
}

// progStrand is one end-to-end alternative of the program: alternating
// link-free segments and links, len(segs) == len(links)+1.
type progStrand struct {
	segs  []progSeg
	links []netkat.Link
}

// cmdNode kinds mirror linkNode over stateful.Cmd.
type cmdNode struct {
	kind int // lnAtom, lnLink, lnUnion, lnSeq
	cmd  stateful.Cmd
	link netkat.Link
	l, r *cmdNode
}

// annotateCmdLinks reshapes a command around its links exactly as
// annotateLinks does for projected policies (the two walks agree because
// projection preserves union/sequence/link structure).
func annotateCmdLinks(c stateful.Cmd) (*cmdNode, bool, error) {
	switch q := c.(type) {
	case stateful.CPred, stateful.CAssign:
		return &cmdNode{kind: lnAtom, cmd: c}, true, nil
	case stateful.CLink:
		return &cmdNode{kind: lnLink, link: netkat.Link{Src: q.Src, Dst: q.Dst}}, false, nil
	case stateful.CLinkState:
		return &cmdNode{kind: lnLink, link: netkat.Link{Src: q.Src, Dst: q.Dst}}, false, nil
	case stateful.CStar:
		_, pure, err := annotateCmdLinks(q.P)
		if err != nil {
			return nil, false, err
		}
		if !pure {
			return nil, false, fmt.Errorf("nkc: star over a policy containing links is outside the supported fragment")
		}
		return &cmdNode{kind: lnAtom, cmd: c}, true, nil
	case stateful.CUnion:
		l, lp, err := annotateCmdLinks(q.L)
		if err != nil {
			return nil, false, err
		}
		r, rp, err := annotateCmdLinks(q.R)
		if err != nil {
			return nil, false, err
		}
		if lp && rp {
			return &cmdNode{kind: lnAtom, cmd: c}, true, nil
		}
		return &cmdNode{kind: lnUnion, l: l, r: r}, false, nil
	case stateful.CSeq:
		l, lp, err := annotateCmdLinks(q.L)
		if err != nil {
			return nil, false, err
		}
		r, rp, err := annotateCmdLinks(q.R)
		if err != nil {
			return nil, false, err
		}
		if lp && rp {
			return &cmdNode{kind: lnAtom, cmd: c}, true, nil
		}
		return &cmdNode{kind: lnSeq, l: l, r: r}, false, nil
	default:
		return nil, false, fmt.Errorf("nkc: unknown command node %T", c)
	}
}

// cmdElement is one strand element during extraction.
type cmdElement struct {
	isLink bool
	link   netkat.Link
	cmd    stateful.Cmd
}

// extractCmdStrands rewrites the command as a sum of program strands,
// splitting union/sequence structure only where it contains links.
func extractCmdStrands(c stateful.Cmd) ([]progStrand, error) {
	root, _, err := annotateCmdLinks(c)
	if err != nil {
		return nil, err
	}
	var out []progStrand
	var cur []cmdElement
	segID := 0
	var rec func(n *cmdNode, cont func() error) error
	rec = func(n *cmdNode, cont func() error) error {
		switch n.kind {
		case lnAtom:
			cur = append(cur, cmdElement{cmd: n.cmd})
		case lnLink:
			cur = append(cur, cmdElement{isLink: true, link: n.link})
		case lnUnion:
			if err := rec(n.l, cont); err != nil {
				return err
			}
			return rec(n.r, cont)
		default: // lnSeq
			return rec(n.l, func() error { return rec(n.r, cont) })
		}
		err := cont()
		cur = cur[:len(cur)-1]
		return err
	}
	flush := func() error {
		if len(out) >= maxStrands {
			return fmt.Errorf("nkc: policy expands to more than %d strands", maxStrands)
		}
		s := assembleCmdStrand(cur)
		for i := range s.segs {
			s.segs[i].id = segID
			segID++
			s.segs[i].key = s.segs[i].cmd.String()
			s.segs[i].guards = stateful.CollectGuards(s.segs[i].cmd)
		}
		out = append(out, s)
		return nil
	}
	if err := rec(root, flush); err != nil {
		return nil, err
	}
	return out, nil
}

// assembleCmdStrand coalesces consecutive link-free elements with CSeq
// and inserts identity segments around links, mirroring
// assembleLinkStrand so that projecting a segment yields exactly the
// segment the policy-level split would have produced.
func assembleCmdStrand(es []cmdElement) progStrand {
	var s progStrand
	var cur stateful.Cmd
	flush := func() {
		if cur == nil {
			s.segs = append(s.segs, progSeg{cmd: stateful.CPred{P: stateful.PTrue{}}})
		} else {
			s.segs = append(s.segs, progSeg{cmd: cur})
		}
		cur = nil
	}
	for _, e := range es {
		if e.isLink {
			flush()
			s.links = append(s.links, e.link)
		} else if cur == nil {
			cur = e.cmd
		} else {
			cur = stateful.CSeq{L: cur, R: e.cmd}
		}
	}
	flush()
	return s
}

// segMemoKey identifies a segment FDD structurally: the interned id of
// the segment's canonical rendering plus the packed truth vector of the
// state tests inside it. The pair determines the projected policy
// exactly, so the key is sound across states, across compiler
// generations, and across different programs sharing an FDD context and
// interner (nkc.ProgramCache): the interner never reuses ids, so equal
// keys imply equal (rendering, truth vector) pairs. sig is tagged in
// its low bit — segments with at most 63 guards pack their truth bits
// inline (tag 1); larger segments intern the packed bytes and carry the
// dense id (tag 0) — so the two encodings cannot alias.
type segMemoKey struct {
	key uint32
	sig uint64
}

// compilerInterns groups the concurrency-safe interners shared by every
// fork of one ProgramCompiler — and, through ProgramCache, by every
// cached program of one cache generation. Sharing is what lets the
// SharedCache key on dense signature ids: all workers agree on the id
// of a signature because they intern through the same table.
type compilerInterns struct {
	segKeys *Interner // segment canonical rendering -> id
	sigs    *Interner // whole-program guard signature -> id
	segSigs *Interner // oversized per-segment signature bytes -> id
}

func newCompilerInterns() *compilerInterns {
	return &compilerInterns{segKeys: NewInterner(), sigs: NewInterner(), segSigs: NewInterner()}
}

// entries returns the total interner population.
func (ci *compilerInterns) entries() int {
	return ci.segKeys.Len() + ci.sigs.Len() + ci.segSigs.Len()
}

// ProgramCompiler compiles the per-state configurations of one Stateful
// NetKAT program incrementally. It is not safe for concurrent use; a
// worker pool gives each worker its own ProgramCompiler and connects
// them through one SharedCache (CompileAll arranges exactly that), with
// the interners shared so signature ids agree across workers.
type ProgramCompiler struct {
	cmd     stateful.Cmd
	topo    *topo.Topology
	backend Backend

	ctx     *FDDCtx
	strands []progStrand
	guards  *stateful.GuardIndex // whole-program index

	intern     *compilerInterns
	segKeyIDs  []uint32  // per segment id: interned rendering
	segTestPos [][]int32 // per segment id: positions of its guards in the whole-program index

	segMemo map[segMemoKey]*FDD
	local   map[uint32]flowtable.Tables // interned signature id -> tables
	shared  *SharedCache

	sigScratch []byte // whole-program signature buffer, reused per state
	gatherBuf  []byte // oversized segment signature buffer

	stats CacheStats
}

// NewProgramCompiler builds an incremental compiler for a program over a
// topology using the default backend, optionally attached to a shared
// cross-compiler cache (sc may be nil). The command is validated once —
// validity is independent of the state vector, since projection only
// replaces state tests by true/false.
func NewProgramCompiler(c stateful.Cmd, t *topo.Topology, sc *SharedCache) (*ProgramCompiler, error) {
	return NewProgramCompilerWith(DefaultBackend, c, t, sc)
}

// NewProgramCompilerWith builds an incremental compiler for an explicit
// backend. The DNF backend has no delta path (it is the from-scratch
// reference oracle): it projects and runs CompileDNF per distinct guard
// signature, sharing only whole results through the signature cache.
func NewProgramCompilerWith(b Backend, c stateful.Cmd, t *topo.Topology, sc *SharedCache) (*ProgramCompiler, error) {
	pc := &ProgramCompiler{cmd: c, topo: t, backend: b, shared: sc}
	if err := netkat.Validate(stateful.Project(c, stateful.State{})); err != nil {
		return nil, err
	}
	pc.guards = stateful.CollectGuards(c)
	pc.local = map[uint32]flowtable.Tables{}
	pc.intern = newCompilerInterns()
	if b == BackendDNF {
		return pc, nil
	}
	strands, err := extractCmdStrands(c)
	if err != nil {
		return nil, err
	}
	pc.ctx = NewFDDCtx()
	pc.strands = strands
	pc.segMemo = map[segMemoKey]*FDD{}
	pc.indexSegments()
	return pc, nil
}

// indexSegments computes the per-segment interned key ids and the
// positions of each segment's guards within the whole-program index.
// Both are pure functions of the skeleton: forks share the resulting
// slices, and adoptInterns recomputes the ids when a ProgramCache swaps
// in its persistent interner.
func (pc *ProgramCompiler) indexSegments() {
	pos := map[stateful.GuardTest]int32{}
	for i, t := range pc.guards.Tests() {
		pos[t] = int32(i)
	}
	nsegs := 0
	for _, s := range pc.strands {
		nsegs += len(s.segs)
	}
	pc.segKeyIDs = make([]uint32, nsegs)
	pc.segTestPos = make([][]int32, nsegs)
	for _, s := range pc.strands {
		for _, seg := range s.segs {
			pc.segKeyIDs[seg.id] = pc.intern.segKeys.ID(seg.key)
			tests := seg.guards.Tests()
			ps := make([]int32, len(tests))
			for i, t := range tests {
				ps[i] = pos[t]
			}
			pc.segTestPos[seg.id] = ps
		}
	}
}

// adoptInterns re-homes the compiler onto a shared interner set (the
// ProgramCache's persistent one), recomputing the interned segment key
// ids so segMemo keys stay consistent with every other program sharing
// the interner.
func (pc *ProgramCompiler) adoptInterns(in *compilerInterns) {
	pc.intern = in
	for _, s := range pc.strands {
		for _, seg := range s.segs {
			pc.segKeyIDs[seg.id] = in.segKeys.ID(seg.key)
		}
	}
}

// Fork returns a compiler for use on another goroutine of a worker
// pool: it shares this compiler's immutable program skeleton (validated
// command, strands with their guard indexes, segment index, backend,
// interners, shared cache) but owns a fresh hash-consing context and
// memos, so the per-program extraction work is paid once per pool
// rather than once per worker.
func (pc *ProgramCompiler) Fork() *ProgramCompiler {
	n := &ProgramCompiler{
		cmd:        pc.cmd,
		topo:       pc.topo,
		backend:    pc.backend,
		shared:     pc.shared,
		strands:    pc.strands,
		guards:     pc.guards,
		intern:     pc.intern,
		segKeyIDs:  pc.segKeyIDs,
		segTestPos: pc.segTestPos,
		local:      map[uint32]flowtable.Tables{},
	}
	if pc.backend != BackendDNF {
		n.ctx = NewFDDCtx()
		n.segMemo = map[segMemoKey]*FDD{}
	}
	return n
}

// Stats returns this compiler's cache statistics. In a pool, sum the
// workers' stats for the run total.
func (pc *ProgramCompiler) Stats() CacheStats {
	s := pc.stats
	if pc.ctx != nil {
		s.Strands = int64(pc.ctx.StrandCount())
		s.FDDNodes = int64(pc.ctx.NodeCount())
		s.ArenaBytes = pc.ctx.ArenaBytes()
		s.ArenaHighWater = s.ArenaBytes
		s.InternEntries = int64(pc.ctx.AtomCount())
	}
	if pc.intern != nil {
		s.InternEntries += int64(pc.intern.entries())
	}
	return s
}

// segSig packs the truth vector of segment segID's guards under the
// whole-program signature bytes into the tagged segMemoKey.sig form:
// segments with at most 63 guards carry their bits inline (low tag bit
// 1); larger segments intern the gathered bytes (low tag bit 0).
func (pc *ProgramCompiler) segSig(segID int, whole []byte) uint64 {
	pos := pc.segTestPos[segID]
	if len(pos) <= 63 {
		var bits uint64
		for i, p := range pos {
			if whole[p>>3]&(1<<uint(p&7)) != 0 {
				bits |= 1 << uint(i)
			}
		}
		return bits<<1 | 1
	}
	buf := pc.gatherBuf[:0]
	var b byte
	for i, p := range pos {
		if whole[p>>3]&(1<<uint(p&7)) != 0 {
			b |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			buf = append(buf, b)
			b = 0
		}
	}
	if len(pos)%8 != 0 {
		buf = append(buf, b)
	}
	pc.gatherBuf = buf
	return uint64(pc.intern.segSigs.IDBytes(buf)) << 1
}

// Compile returns the flow tables of the configuration projected at state
// k. The result must be treated as immutable: it may be shared with other
// states, other workers (via the SharedCache), and later calls.
func (pc *ProgramCompiler) Compile(k stateful.State) (flowtable.Tables, error) {
	pc.sigScratch = pc.guards.AppendSig(pc.sigScratch[:0], k)
	sig := pc.intern.sigs.IDBytes(pc.sigScratch)
	if t, ok := pc.local[sig]; ok {
		pc.stats.TableHits++
		return t, nil
	}
	if pc.shared != nil {
		if t, ok := pc.shared.lookup(sig); ok {
			pc.stats.TableHits++
			pc.local[sig] = t
			return t, nil
		}
	}
	pc.stats.TableMisses++

	if pc.backend == BackendDNF {
		tables, err := CompileDNF(stateful.Project(pc.cmd, k), pc.topo)
		if err != nil {
			return nil, err
		}
		if pc.shared != nil {
			tables = pc.shared.publish(sig, tables)
		}
		pc.local[sig] = tables
		return tables, nil
	}

	var hops []cachedHop
	for si := range pc.strands {
		s := &pc.strands[si]
		fdds := make([]*FDD, len(s.segs))
		for j := range s.segs {
			seg := &s.segs[j]
			key := segMemoKey{key: pc.segKeyIDs[seg.id], sig: pc.segSig(seg.id, pc.sigScratch)}
			d, ok := pc.segMemo[key]
			if !ok {
				pc.stats.SegmentMisses++
				var err error
				d, err = pc.ctx.ToFDD(stateful.Project(seg.cmd, k))
				if err != nil {
					return nil, err
				}
				pc.segMemo[key] = d
			} else {
				pc.stats.SegmentHits++
			}
			fdds[j] = d
		}
		hs, err := pc.ctx.hopsFor(fdds, s.links, pc.topo.Switches)
		if err != nil {
			return nil, err
		}
		hops = append(hops, hs...)
	}
	tables, err := assembleTablesFDD(pc.ctx, hops)
	if err != nil {
		return nil, err
	}
	if pc.shared != nil {
		tables = pc.shared.publish(sig, tables)
	}
	pc.local[sig] = tables
	return tables, nil
}

// CompileAll compiles the configurations of all given states, sharding
// the state list across workers inside the compiler itself (the layer
// below a pool like internal/ets, which shards whole states the same
// way but owns discovery too). Results are positional: out[i] is the
// tables for states[i]. Workers are this compiler plus workers-1 forks
// connected through the SharedCache, so every worker returns the
// canonical shared instance per signature and the output is
// byte-identical at any worker count — the same canonical-reassembly
// argument as ets.Build, property-tested at 1/2/4/8 workers.
func (pc *ProgramCompiler) CompileAll(states []stateful.State, workers int) ([]flowtable.Tables, error) {
	out := make([]flowtable.Tables, len(states))
	if workers > len(states) {
		workers = len(states)
	}
	if workers <= 1 {
		for i, k := range states {
			t, err := pc.Compile(k)
			if err != nil {
				return nil, err
			}
			out[i] = t
		}
		return out, nil
	}
	if pc.shared == nil {
		// Cross-worker sharing needs a meeting point; attach one for this
		// and future compiles.
		pc.shared = NewSharedCache()
	}
	pcs := make([]*ProgramCompiler, workers)
	pcs[0] = pc
	for w := 1; w < workers; w++ {
		pcs[w] = pc.Fork()
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(states) {
					return
				}
				t, err := pcs[w].Compile(states[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = t
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Fold the forks' lookup counters into the root so Stats() reflects
	// the whole run (store sizes remain the root context's own).
	for w := 1; w < workers; w++ {
		pc.stats.TableHits += pcs[w].stats.TableHits
		pc.stats.TableMisses += pcs[w].stats.TableMisses
		pc.stats.SegmentHits += pcs[w].stats.SegmentHits
		pc.stats.SegmentMisses += pcs[w].stats.SegmentMisses
	}
	return out, nil
}
