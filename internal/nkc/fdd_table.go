package nkc

// FDD-backend compilation: link-strand extraction that distributes union
// over sequence only where links force it, per-segment FDD translation,
// and per-switch table generation by FDD union + direct extraction.
//
// The per-switch diagrams make the DNF backend's two hot spots
// unnecessary: multicast merging happens by unioning leaf action sets,
// and overlap resolution is structural — the root-leaf paths of a
// diagram partition the packet space, so the extracted rules are
// mutually disjoint and any priority assignment is correct.

import (
	"fmt"
	"sort"

	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

// linkStrand is one end-to-end alternative of a policy for the FDD
// backend: alternating link-free policies (kept whole, not normalized)
// and links, with len(Segs) == len(Links)+1.
type linkStrand struct {
	Segs  []netkat.Policy
	Links []netkat.Link
}

// linkNode kinds for the annotated alternation tree.
const (
	lnAtom = iota // maximal link-free subpolicy
	lnLink
	lnUnion
	lnSeq
)

// linkNode is the policy re-shaped around its links: link-free subtrees
// collapse to atoms, so only union/sequence structure that actually
// contains links remains.
type linkNode struct {
	kind int
	pol  netkat.Policy // lnAtom
	link netkat.Link   // lnLink
	l, r *linkNode
}

// annotateLinks builds the linkNode tree in one linear pass, reporting
// whether p is link-free.
func annotateLinks(p netkat.Policy) (*linkNode, bool, error) {
	switch q := p.(type) {
	case netkat.Filter, netkat.Assign:
		return &linkNode{kind: lnAtom, pol: p}, true, nil
	case netkat.Link:
		return &linkNode{kind: lnLink, link: q}, false, nil
	case netkat.Star:
		_, pure, err := annotateLinks(q.P)
		if err != nil {
			return nil, false, err
		}
		if !pure {
			return nil, false, fmt.Errorf("nkc: star over a policy containing links is outside the supported fragment")
		}
		return &linkNode{kind: lnAtom, pol: p}, true, nil
	case netkat.Union:
		l, lp, err := annotateLinks(q.L)
		if err != nil {
			return nil, false, err
		}
		r, rp, err := annotateLinks(q.R)
		if err != nil {
			return nil, false, err
		}
		if lp && rp {
			return &linkNode{kind: lnAtom, pol: p}, true, nil
		}
		return &linkNode{kind: lnUnion, l: l, r: r}, false, nil
	case netkat.Seq:
		l, lp, err := annotateLinks(q.L)
		if err != nil {
			return nil, false, err
		}
		r, rp, err := annotateLinks(q.R)
		if err != nil {
			return nil, false, err
		}
		if lp && rp {
			return &linkNode{kind: lnAtom, pol: p}, true, nil
		}
		return &linkNode{kind: lnSeq, l: l, r: r}, false, nil
	default:
		return nil, false, fmt.Errorf("nkc: unknown policy node %T", p)
	}
}

// extractLinkStrands rewrites a policy as a sum of link strands. Unlike
// ExtractStrands it splits unions and sequences only when they contain
// links, so purely link-free alternation stays inside one segment and is
// normalized by the (memoized) FDD translation instead of by syntactic
// distribution. Alternatives are emitted off a shared element stack, so
// no intermediate sequence products are materialized.
func extractLinkStrands(p netkat.Policy) ([]linkStrand, error) {
	root, _, err := annotateLinks(p)
	if err != nil {
		return nil, err
	}
	var out []linkStrand
	var cur []element
	var rec func(n *linkNode, cont func() error) error
	rec = func(n *linkNode, cont func() error) error {
		switch n.kind {
		case lnAtom:
			cur = append(cur, element{pol: n.pol})
		case lnLink:
			cur = append(cur, element{isLink: true, link: n.link})
		case lnUnion:
			if err := rec(n.l, cont); err != nil {
				return err
			}
			return rec(n.r, cont)
		default: // lnSeq
			return rec(n.l, func() error { return rec(n.r, cont) })
		}
		err := cont()
		cur = cur[:len(cur)-1]
		return err
	}
	flush := func() error {
		if len(out) >= maxStrands {
			return fmt.Errorf("nkc: policy expands to more than %d strands", maxStrands)
		}
		out = append(out, assembleLinkStrand(cur))
		return nil
	}
	if err := rec(root, flush); err != nil {
		return nil, err
	}
	return out, nil
}

// assembleLinkStrand coalesces consecutive link-free elements with Seq and
// inserts identity segments around links.
func assembleLinkStrand(es []element) linkStrand {
	var s linkStrand
	var cur netkat.Policy
	flush := func() {
		if cur == nil {
			s.Segs = append(s.Segs, netkat.ID())
		} else {
			s.Segs = append(s.Segs, cur)
		}
		cur = nil
	}
	for _, e := range es {
		if e.isLink {
			flush()
			s.Links = append(s.Links, e.link)
		} else if cur == nil {
			cur = e.pol
		} else {
			cur = netkat.Seq{L: cur, R: e.pol}
		}
	}
	flush()
	return s
}

// CompileFDD translates a (state-free) policy into per-switch flow tables
// using the forwarding-decision-diagram backend. The tables are
// semantically equivalent to those of CompileDNF (property-tested against
// netkat.Eval), but matches extracted from one switch diagram are
// mutually disjoint, so no overlap-resolution fixpoint is needed.
//
// Batch callers compiling many related policies (e.g. the per-state
// configurations of one program) should use a Compiler, which shares the
// hash-consing context — and therefore the combinator memos — across
// calls.
func CompileFDD(p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	return compileFDDCtx(NewFDDCtx(), p, t)
}

func compileFDDCtx(ctx *FDDCtx, p netkat.Policy, t *topo.Topology) (flowtable.Tables, error) {
	if err := netkat.Validate(p); err != nil {
		return nil, err
	}
	strands, err := extractLinkStrands(p)
	if err != nil {
		return nil, err
	}
	var hops []cachedHop
	for _, s := range strands {
		fdds := make([]*FDD, len(s.Segs))
		for i, seg := range s.Segs {
			d, err := ctx.ToFDD(seg)
			if err != nil {
				return nil, err
			}
			fdds[i] = d
		}
		hs, err := ctx.hopsFor(fdds, s.Links, t.Switches)
		if err != nil {
			return nil, err
		}
		hops = append(hops, hs...)
	}
	return assembleTablesFDD(ctx, hops)
}

// hopsFor runs the symbolic strand execution for one strand given its
// segment diagrams. Execution is a pure function of the diagrams, the
// link skeleton, and the switch set; it is memoized so compiles sharing
// this context (e.g. the per-state configurations of one program) pay for
// each distinct strand once.
func (c *FDDCtx) hopsFor(fdds []*FDD, links []netkat.Link, switches []int) ([]cachedHop, error) {
	key := strandCacheKey(fdds, links, switches)
	hs, ok := c.hopCache[key]
	if !ok {
		segs := make([]PathSet, len(fdds))
		for i, d := range fdds {
			ps, err := d.PathSet()
			if err != nil {
				return nil, err
			}
			segs[i] = ps
		}
		raw, err := compileStrand(Strand{Segments: segs, Links: links}, switches)
		if err != nil {
			return nil, err
		}
		hs = make([]cachedHop, len(raw))
		for i, h := range raw {
			hs[i] = cachedHop{sw: h.sw, d: ruleFDD(c, h.match, h.group)}
		}
		c.hopCache[key] = hs
	}
	return hs, nil
}

// cachedHop is one per-switch hop with its prebuilt single-rule diagram.
type cachedHop struct {
	sw int
	d  *FDD
}

// strandCacheKey identifies a strand by its segment diagram identities
// (stable within one context), its links, and the topology's switch set.
// The key is packed binary — 4 bytes per id — with length-prefixed
// sections so the three variable-length parts cannot alias each other.
func strandCacheKey(fdds []*FDD, links []netkat.Link, switches []int) string {
	buf := make([]byte, 0, 4*len(fdds)+16*len(links)+4*len(switches)+8)
	buf = appendID(buf, len(fdds))
	for _, d := range fdds {
		buf = appendID(buf, d.id)
	}
	buf = appendID(buf, len(links))
	for _, l := range links {
		buf = appendID(buf, l.Src.Switch)
		buf = appendID(buf, l.Src.Port)
		buf = appendID(buf, l.Dst.Switch)
		buf = appendID(buf, l.Dst.Port)
	}
	for _, sw := range switches {
		buf = appendID(buf, sw)
	}
	return string(buf)
}

// ruleFDD builds the single-rule diagram: a spine of tests for the match,
// ending in a leaf whose one action encodes the group (the egress port is
// carried as a "pt" assignment and decoded at extraction).
func ruleFDD(c *FDDCtx, m flowtable.Match, g flowtable.ActionGroup) *FDD {
	type lit struct {
		f  string
		v  int
		eq bool
	}
	var lits []lit
	if m.InPort != flowtable.Wildcard {
		lits = append(lits, lit{f: netkat.FieldPt, v: m.InPort, eq: true})
	} else {
		for _, v := range m.ExcludePorts {
			lits = append(lits, lit{f: netkat.FieldPt, v: v})
		}
	}
	for f, v := range m.Fields {
		lits = append(lits, lit{f: f, v: v, eq: true})
	}
	for f, vs := range m.Excludes {
		for _, v := range vs {
			lits = append(lits, lit{f: f, v: v})
		}
	}
	sort.Slice(lits, func(i, j int) bool { return testLess(lits[i].f, lits[i].v, lits[j].f, lits[j].v) })

	acts := make(map[string]int, len(g.Sets)+1)
	for f, v := range g.Sets {
		acts[f] = v
	}
	acts[netkat.FieldPt] = g.OutPort
	acc := c.mkLeaf([]*Action{c.internAction(acts)})
	for i := len(lits) - 1; i >= 0; i-- {
		if lits[i].eq {
			acc = c.mkNode(lits[i].f, lits[i].v, acc, c.Drop)
		} else {
			acc = c.mkNode(lits[i].f, lits[i].v, c.Drop, acc)
		}
	}
	return acc
}

// assembleTablesFDD unions each switch's hop rules into one diagram and
// extracts a prioritized table from its (disjoint) root-leaf paths.
// Extraction is memoized on the diagram's identity, so configurations
// with identical per-switch behavior share one rule list (the shared
// rules are never mutated downstream).
func assembleTablesFDD(c *FDDCtx, hops []cachedHop) (flowtable.Tables, error) {
	perSwitchIDs := map[int][]byte{}
	perSwitchHops := map[int][]*FDD{}
	for _, h := range hops {
		perSwitchIDs[h.sw] = appendID(perSwitchIDs[h.sw], h.d.id)
		perSwitchHops[h.sw] = append(perSwitchHops[h.sw], h.d)
	}
	perSwitch := map[int]*FDD{}
	for sw, ids := range perSwitchIDs {
		key := string(ids)
		d, ok := c.foldCache[key]
		if !ok {
			d = c.Drop
			for _, hd := range perSwitchHops[sw] {
				d = c.Union(d, hd)
			}
			c.foldCache[key] = d
		}
		perSwitch[sw] = d
	}
	switches := make([]int, 0, len(perSwitch))
	for sw := range perSwitch {
		switches = append(switches, sw)
	}
	sort.Ints(switches)

	tables := flowtable.Tables{}
	for _, sw := range switches {
		d := perSwitch[sw]
		rules, ok := c.ruleCache[d.id]
		if !ok {
			var err error
			rules, err = extractRules(d)
			if err != nil {
				return nil, fmt.Errorf("switch %d: %w", sw, err)
			}
			c.ruleCache[d.id] = rules
		}
		tables.Get(sw).AddAll(rules)
	}
	return tables, nil
}

// extractRules converts a switch diagram to prioritized rules: hi edges
// contribute equalities (an equality on a field supersedes accumulated
// exclusions on it), lo edges contribute exclusions, and empty leaves
// fall through to the table's default drop. The resulting matches
// partition the packet space, so priorities (assigned by specificity for
// readability) never change behavior. The traversal threads one mutable
// literal stack (restored on backtrack) and materializes maps only at
// leaves.
func extractRules(d *FDD) ([]flowtable.Rule, error) {
	var rules []flowtable.Rule
	type pathLit struct {
		f  string
		v  int
		eq bool
	}
	var lits []pathLit
	var walk func(n *FDD) error
	walk = func(n *FDD) error {
		if n.leaf {
			if len(n.acts) == 0 {
				return nil
			}
			m := flowtable.Match{InPort: flowtable.Wildcard, Fields: map[string]int{}, Excludes: map[string][]int{}}
			// The literal stack arrives in canonical test order (ports
			// first, then fields alphabetically with ascending values), so
			// the flat IR is emitted directly: equality fields come out
			// strictly ascending and exclusion pairs sorted by (field,
			// value). An equality on a field supersedes its accumulated
			// exclusions — in a canonical path those are exactly the
			// contiguous tail entries for that field.
			ir := &flowtable.RuleIR{}
			for _, l := range lits {
				switch {
				case l.f == netkat.FieldPt && l.eq:
					m.InPort = l.v
				case l.f == netkat.FieldPt:
					m.ExcludePorts = append(m.ExcludePorts, l.v)
				case l.eq:
					m.Fields[l.f] = l.v
					delete(m.Excludes, l.f) // the equality subsumes prior exclusions
					for k := len(ir.NeqFields); k > 0 && ir.NeqFields[k-1] == l.f; k = len(ir.NeqFields) {
						ir.NeqFields = ir.NeqFields[:k-1]
						ir.NeqValues = ir.NeqValues[:k-1]
					}
					ir.EqFields = append(ir.EqFields, l.f)
					ir.EqValues = append(ir.EqValues, l.v)
				default:
					m.Excludes[l.f] = append(m.Excludes[l.f], l.v)
					ir.NeqFields = append(ir.NeqFields, l.f)
					ir.NeqValues = append(ir.NeqValues, l.v)
				}
			}
			if m.InPort != flowtable.Wildcard {
				m.ExcludePorts = nil
			} else {
				sort.Ints(m.ExcludePorts)
			}
			groups := make([]flowtable.ActionGroup, 0, len(n.acts))
			for _, a := range n.acts {
				out, ok := a.Get(netkat.FieldPt)
				if !ok {
					return fmt.Errorf("nkc: table action %v has no egress port", a)
				}
				sets := a.Sets()
				delete(sets, netkat.FieldPt)
				groups = append(groups, flowtable.ActionGroup{Sets: sets, OutPort: out})
			}
			sort.Slice(groups, func(i, j int) bool { return groups[i].Key() < groups[j].Key() })
			for gi := range groups {
				g := flowtable.GroupIR{SetFields: make([]string, 0, len(groups[gi].Sets))}
				for f := range groups[gi].Sets {
					g.SetFields = append(g.SetFields, f)
				}
				sort.Strings(g.SetFields)
				g.SetValues = make([]int, len(g.SetFields))
				for fi, f := range g.SetFields {
					g.SetValues[fi] = groups[gi].Sets[f]
				}
				ir.Groups = append(ir.Groups, g)
			}
			rules = append(rules, flowtable.Rule{Priority: m.Specificity(), Match: m, Groups: groups, IR: ir})
			return nil
		}
		if n.field == netkat.FieldSw {
			return fmt.Errorf("nkc: switch test %s=%d inside a per-switch diagram", n.field, n.value)
		}
		lits = append(lits, pathLit{f: n.field, v: n.value, eq: true})
		if err := walk(n.hi); err != nil {
			return err
		}
		lits[len(lits)-1].eq = false
		if err := walk(n.lo); err != nil {
			return err
		}
		lits = lits[:len(lits)-1]
		return nil
	}
	if err := walk(d); err != nil {
		return nil, err
	}
	return rules, nil
}
